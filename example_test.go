package repro_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

// The basic workflow: pick a Table II workload, simulate it under two
// designs, and compare.
func Example() {
	wl, err := repro.Workload("doom3", 640, 480)
	if err != nil {
		log.Fatal(err)
	}
	base, err := repro.Simulate(wl, repro.Options{Design: repro.Baseline})
	if err != nil {
		log.Fatal(err)
	}
	atfim, err := repro.Simulate(wl, repro.Options{Design: repro.ATFIM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A-TFIM speedup: %.2fx\n",
		float64(base.Cycles())/float64(atfim.Cycles()))
}

// Sweeping the Section VII-D camera-angle thresholds to choose an
// operating point on the performance-quality curve.
func ExampleSimulate_angleThreshold() {
	wl, _ := repro.Workload("hl2", 640, 480)
	base, _ := repro.Simulate(wl, repro.Options{Design: repro.Baseline})
	for _, th := range []float32{repro.Angle001Pi, repro.Angle005Pi} {
		res, err := repro.Simulate(wl, repro.Options{
			Design:         repro.ATFIM,
			AngleThreshold: th,
		})
		if err != nil {
			log.Fatal(err)
		}
		psnr, _ := repro.PSNR(base.Image, res.Image)
		fmt.Printf("threshold %.4f: %.2fx at %.1f dB\n",
			th, float64(base.Cycles())/float64(res.Cycles()), psnr)
	}
}

// Regenerating one of the paper's figures over a workload set.
func ExampleRegistry() {
	exp, err := repro.Registry().Run(context.Background(), "fig12", repro.MiniSet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.Table.String())
	fmt.Printf("S-TFIM average traffic: %.2fx baseline\n",
		exp.Summary["avg_traffic_stfim"])
}

// Writing a rendered frame to disk for inspection.
func ExampleWritePNG() {
	wl, _ := repro.Workload("riddick", 640, 480)
	res, err := repro.Simulate(wl, repro.Options{Design: repro.BPIM})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("frame.png")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := repro.WritePNG(f, res.Image, wl.Width, wl.Height); err != nil {
		log.Fatal(err)
	}
}
