// Package repro is the public API of the reproduction of "Processing-in-
// Memory Enabled Graphics Processors for 3D Rendering" (Xie et al., HPCA
// 2017). It exposes the four architectures the paper evaluates — the
// GDDR5 baseline GPU, B-PIM (HMC as plain memory), S-TFIM (all texture
// filtering in the HMC logic layer) and A-TFIM (anisotropic filtering
// moved into memory and reordered to run first) — over a functional,
// cycle-accounted rasterization GPU model, plus the complete evaluation
// harness that regenerates every figure and table of the paper.
//
// Quick start:
//
//	wl, _ := repro.Workload("doom3", 640, 480)
//	res, _ := repro.Simulate(wl, repro.Options{Design: repro.ATFIM})
//	fmt.Println(res.FPS(), res.TextureTraffic())
package repro

import (
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/workload"
)

// Design selects one of the paper's four architectures.
type Design = config.Design

// The four designs (Section VII compares them).
const (
	// Baseline is the GDDR5-backed GPU.
	Baseline = config.Baseline
	// BPIM uses an HMC as a plain, faster main memory.
	BPIM = config.BPIM
	// STFIM moves all texture units into the HMC logic layer.
	STFIM = config.STFIM
	// ATFIM moves (reordered) anisotropic filtering into the HMC.
	ATFIM = config.ATFIM
)

// Camera-angle thresholds from Section VII-D (radians).
const (
	Angle0005Pi   = config.Angle0005Pi
	Angle001Pi    = config.Angle001Pi
	Angle005Pi    = config.Angle005Pi
	Angle01Pi     = config.Angle01Pi
	AngleNoRecalc = config.AngleNoRecalc
)

// Options configures a simulation run.
type Options = core.Options

// Result is the outcome of a simulation run.
type Result = core.Result

// Experiment is a regenerated paper figure or table.
type Experiment = core.Experiment

// Tracer collects cycle-stamped spans from the simulator's instrumented
// units. Attach one via Options.Trace; export with WriteChromeTrace. A nil
// *Tracer is valid and inert, and tracing never changes simulated cycle
// counts.
type Tracer = obs.Tracer

// NewTracer builds a trace ring buffer holding up to capacity spans
// (capacity <= 0 selects obs.DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// Snapshot is the stable machine-readable metrics document produced by
// Result.Metrics (schema obs.SchemaVersion).
type Snapshot = obs.Snapshot

// WorkloadSpec is one Table II benchmark.
type WorkloadSpec = workload.Workload

// Workload returns the named game workload at the given resolution.
// Games: doom3, fear, hl2, riddick, wolf.
func Workload(game string, w, h int) (WorkloadSpec, error) {
	return workload.Get(game, w, h)
}

// TableII returns the paper's full benchmark catalog.
func TableII() []WorkloadSpec { return workload.TableII() }

// Simulate renders the workload under the given design and returns its
// performance, traffic, energy and image measurements.
func Simulate(wl WorkloadSpec, opts Options) (*Result, error) {
	return core.Run(wl, opts)
}

// PSNR computes the peak signal-to-noise ratio between two rendered frames
// (the paper's Fig. 15 quality metric; identical frames return 99).
func PSNR(a, b []uint32) (float64, error) { return quality.PSNR(a, b) }

// WritePNG encodes a rendered frame (Result.Image) as a PNG.
func WritePNG(w io.Writer, pix []uint32, width, height int) error {
	return quality.WritePNG(w, pix, width, height)
}

// ExperimentFunc regenerates one of the paper's figures over a workload
// set.
type ExperimentFunc func(wls []WorkloadSpec) (*Experiment, error)

// Experiments returns the full per-figure harness keyed by experiment name
// ("fig2" ... "fig16"); table1/table2/fig7/overhead take no workloads and
// are exposed by StaticExperiments.
func Experiments() map[string]ExperimentFunc {
	return map[string]ExperimentFunc{
		"fig2":  core.Fig2MemoryBreakdown,
		"fig4":  core.Fig4AnisoOff,
		"fig5":  core.Fig5BPIM,
		"fig10": core.Fig10TextureSpeedup,
		"fig11": core.Fig11RenderSpeedup,
		"fig12": core.Fig12MemoryTraffic,
		"fig13": core.Fig13Energy,
		"fig14": core.Fig14ThresholdSpeedup,
		"fig15": core.Fig15ThresholdQuality,
		"fig16": core.Fig16Tradeoff,
	}
}

// StaticExperiments returns the experiments that need no simulation sweep.
func StaticExperiments() map[string]func() *Experiment {
	return map[string]func() *Experiment{
		"table1":   core.Table1Config,
		"table2":   core.Table2Workloads,
		"fig7":     core.Fig7TexelFetches,
		"overhead": core.OverheadAnalysis,
	}
}

// ExperimentNames lists every experiment in presentation order.
func ExperimentNames() []string {
	return []string{"table1", "table2", "fig2", "fig4", "fig5", "fig7",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "overhead"}
}

// RunExperiment regenerates one experiment by name over the given
// workload set (ignored by the static experiments).
func RunExperiment(name string, wls []WorkloadSpec) (*Experiment, error) {
	if f, ok := StaticExperiments()[name]; ok {
		return f(), nil
	}
	if f, ok := Experiments()[name]; ok {
		return f(wls)
	}
	return nil, fmt.Errorf("repro: unknown experiment %q (have %v)", name, ExperimentNames())
}

// QuickSet returns the default evaluation workload set (five games at
// 640x480 plus one 1280x1024 capture); FullSet returns all of Table II.
func QuickSet() []WorkloadSpec { return core.QuickSet() }

// FullSet returns the complete Table II workload set.
func FullSet() []WorkloadSpec { return core.FullSet() }

// MiniSet returns a small set for fast runs.
func MiniSet() []WorkloadSpec { return core.MiniSet() }
