// Package repro is the public API of the reproduction of "Processing-in-
// Memory Enabled Graphics Processors for 3D Rendering" (Xie et al., HPCA
// 2017). It exposes the four architectures the paper evaluates — the
// GDDR5 baseline GPU, B-PIM (HMC as plain memory), S-TFIM (all texture
// filtering in the HMC logic layer) and A-TFIM (anisotropic filtering
// moved into memory and reordered to run first) — over a functional,
// cycle-accounted rasterization GPU model, plus the complete evaluation
// harness that regenerates every figure and table of the paper.
//
// Quick start (v2 API — context-aware, functional options):
//
//	wl, _ := repro.Workload("doom3", 640, 480)
//	res, _ := repro.SimulateContext(ctx, wl, repro.WithDesign(repro.ATFIM))
//	fmt.Println(res.FPS(), res.TextureTraffic())
package repro

import (
	"context"
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/workload"
)

// Design selects one of the paper's four architectures.
type Design = config.Design

// The four designs (Section VII compares them).
const (
	// Baseline is the GDDR5-backed GPU.
	Baseline = config.Baseline
	// BPIM uses an HMC as a plain, faster main memory.
	BPIM = config.BPIM
	// STFIM moves all texture units into the HMC logic layer.
	STFIM = config.STFIM
	// ATFIM moves (reordered) anisotropic filtering into the HMC.
	ATFIM = config.ATFIM
)

// Camera-angle thresholds from Section VII-D (radians).
const (
	Angle0005Pi   = config.Angle0005Pi
	Angle001Pi    = config.Angle001Pi
	Angle005Pi    = config.Angle005Pi
	Angle01Pi     = config.Angle01Pi
	AngleNoRecalc = config.AngleNoRecalc
)

// Options configures a simulation run.
type Options = core.Options

// Result is the outcome of a simulation run.
type Result = core.Result

// Experiment is a regenerated paper figure or table.
type Experiment = core.Experiment

// Tracer collects cycle-stamped spans from the simulator's instrumented
// units. Attach one via Options.Trace; export with WriteChromeTrace. A nil
// *Tracer is valid and inert, and tracing never changes simulated cycle
// counts.
type Tracer = obs.Tracer

// NewTracer builds a trace ring buffer holding up to capacity spans
// (capacity <= 0 selects obs.DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// Snapshot is the stable machine-readable metrics document produced by
// Result.Metrics (schema obs.SchemaVersion).
type Snapshot = obs.Snapshot

// WorkloadSpec is one Table II benchmark.
type WorkloadSpec = workload.Workload

// Workload returns the named game workload at the given resolution.
// Games: doom3, fear, hl2, riddick, wolf.
func Workload(game string, w, h int) (WorkloadSpec, error) {
	return workload.Get(game, w, h)
}

// TableII returns the paper's full benchmark catalog.
func TableII() []WorkloadSpec { return workload.TableII() }

// Option configures a simulation (the v2 functional-option surface).
// Options compose left to right over the zero configuration (Baseline
// design, default thresholds, one frame, default shard count).
type Option func(*Options)

// WithDesign selects the architecture to simulate.
func WithDesign(d Design) Option { return func(o *Options) { o.Design = d } }

// WithShards shards the frame's tile-group scan across n worker
// goroutines (0 = process default, 1 = serial). Results are byte-identical
// at any shard count; this is purely a host-speed knob.
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithAngleThreshold overrides the A-TFIM camera-angle threshold.
func WithAngleThreshold(t float32) Option { return func(o *Options) { o.AngleThreshold = t } }

// WithTracer attaches a cycle-timeline tracer to every instrumented unit.
func WithTracer(tr *Tracer) Option { return func(o *Options) { o.Trace = tr } }

// Progress is a point-in-time report of a frame simulation in flight:
// the pipeline stage, supertile groups merged so far, and cycles
// simulated.
type Progress = core.Progress

// WithProgress attaches a callback receiving in-flight reports while each
// frame simulates. Fragment-stage reports arrive from worker goroutines
// concurrently; fn must be safe for concurrent use and must not block.
// Progress can never perturb simulated results.
func WithProgress(fn func(Progress)) Option { return func(o *Options) { o.Progress = fn } }

// FrameProfile is the pim-render/frameprofile/v1 frame-anatomy artifact:
// per-meter bandwidth timelines merged onto the frame timeline, per-
// supertile-group attribution, and pipeline stage spans. Capture one with
// WithFrameProfile; serialize with its WriteJSON method.
type FrameProfile = obs.FrameProfile

// WithFrameProfile fills dst with a frame-anatomy profile after the run.
// Profiling is runtime-only like WithProgress: it is excluded from cache
// keys and stored results, and simulated outputs are byte-identical with
// and without it.
func WithFrameProfile(dst *FrameProfile) Option { return func(o *Options) { o.Profile = dst } }

// WithFrames renders n consecutive frames (default 1).
func WithFrames(n int) Option { return func(o *Options) { o.Frames = n } }

// WithFrameIndex selects the starting camera frame (default mid-flythrough).
func WithFrameIndex(i int) Option { return func(o *Options) { o.FrameIndex = i } }

// WithAnisoDisabled turns anisotropic filtering off (the Fig. 4 study).
func WithAnisoDisabled() Option { return func(o *Options) { o.DisableAniso = true } }

// WithCompression enables fixed-rate texture block compression.
func WithCompression() Option { return func(o *Options) { o.Compressed = true } }

// WithHMCCubes attaches n HMC cubes (Section V-E's multi-HMC scenario).
func WithHMCCubes(n int) Option { return func(o *Options) { o.HMCCubes = n } }

// WithLinearLayout forces row-major texel addressing (ablation).
func WithLinearLayout() Option { return func(o *Options) { o.LinearLayout = true } }

// WithConsolidationDisabled turns off Child Texel Consolidation (ablation).
func WithConsolidationDisabled() Option { return func(o *Options) { o.DisableConsolidation = true } }

// WithMTUs overrides the S-TFIM MTU count (ablation).
func WithMTUs(n int) Option { return func(o *Options) { o.MTUs = n } }

// NewOptions materializes a configuration from functional options.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// SimulateContext renders the workload under the given options and
// returns its performance, traffic, energy and image measurements.
// Cancellation is observed between frames and at tile-group boundaries
// inside each frame; a canceled run returns ctx.Err().
func SimulateContext(ctx context.Context, wl WorkloadSpec, opts ...Option) (*Result, error) {
	return core.RunContext(ctx, wl, NewOptions(opts...))
}

// Simulate renders the workload under the given design and returns its
// performance, traffic, energy and image measurements.
//
// Deprecated: Simulate is the v1 entry point, kept as a thin wrapper. New
// code should use SimulateContext with functional options, which adds
// cancellation and does not require constructing an Options literal.
func Simulate(wl WorkloadSpec, opts Options) (*Result, error) {
	return core.Run(wl, opts)
}

// PSNR computes the peak signal-to-noise ratio between two rendered frames
// (the paper's Fig. 15 quality metric; identical frames return 99).
func PSNR(a, b []uint32) (float64, error) { return quality.PSNR(a, b) }

// WritePNG encodes a rendered frame (Result.Image) as a PNG.
func WritePNG(w io.Writer, pix []uint32, width, height int) error {
	return quality.WritePNG(w, pix, width, height)
}

// ExperimentFunc regenerates one of the paper's figures over a workload
// set (the v1 signature, kept for the Experiments map).
type ExperimentFunc func(wls []WorkloadSpec) (*Experiment, error)

// ExperimentDef is one registered experiment: a name plus a context-aware
// runner. Static experiments (tables, analytic figures) need no workloads
// or simulation sweep.
type ExperimentDef struct {
	// Name is the registry key ("fig12", "table1", ...).
	Name string
	// Static reports that the experiment runs without simulation and
	// ignores the workload set.
	Static bool

	run func(ctx context.Context, wls []WorkloadSpec) (*Experiment, error)
}

// Run regenerates the experiment over the workload set (ignored when
// Static). Cancellation propagates into every underlying simulation.
func (d ExperimentDef) Run(ctx context.Context, wls []WorkloadSpec) (*Experiment, error) {
	return d.run(ctx, wls)
}

// ExperimentRegistry is the typed v2 experiment catalog: every figure and
// table of the paper in presentation order, addressable by name.
type ExperimentRegistry struct {
	defs   []ExperimentDef
	byName map[string]ExperimentDef
}

func staticDef(name string, f func() *Experiment) ExperimentDef {
	return ExperimentDef{Name: name, Static: true,
		run: func(context.Context, []WorkloadSpec) (*Experiment, error) { return f(), nil }}
}

func sweepDef(name string, f func(context.Context, []workload.Workload) (*core.Experiment, error)) ExperimentDef {
	return ExperimentDef{Name: name,
		run: func(ctx context.Context, wls []WorkloadSpec) (*Experiment, error) { return f(ctx, wls) }}
}

var registry = newRegistry()

func newRegistry() *ExperimentRegistry {
	defs := []ExperimentDef{
		staticDef("table1", core.Table1Config),
		staticDef("table2", core.Table2Workloads),
		sweepDef("fig2", core.Fig2MemoryBreakdown),
		sweepDef("fig4", core.Fig4AnisoOff),
		sweepDef("fig5", core.Fig5BPIM),
		staticDef("fig7", core.Fig7TexelFetches),
		sweepDef("fig10", core.Fig10TextureSpeedup),
		sweepDef("fig11", core.Fig11RenderSpeedup),
		sweepDef("fig12", core.Fig12MemoryTraffic),
		sweepDef("fig13", core.Fig13Energy),
		sweepDef("fig14", core.Fig14ThresholdSpeedup),
		sweepDef("fig15", core.Fig15ThresholdQuality),
		sweepDef("fig16", core.Fig16Tradeoff),
		staticDef("overhead", core.OverheadAnalysis),
	}
	byName := make(map[string]ExperimentDef, len(defs))
	for _, d := range defs {
		byName[d.Name] = d
	}
	return &ExperimentRegistry{defs: defs, byName: byName}
}

// Registry returns the experiment catalog.
func Registry() *ExperimentRegistry { return registry }

// Names lists every experiment in presentation order.
func (r *ExperimentRegistry) Names() []string {
	names := make([]string, len(r.defs))
	for i, d := range r.defs {
		names[i] = d.Name
	}
	return names
}

// Get looks an experiment up by name.
func (r *ExperimentRegistry) Get(name string) (ExperimentDef, bool) {
	d, ok := r.byName[name]
	return d, ok
}

// Run regenerates one experiment by name over the given workload set
// (ignored by the static experiments).
func (r *ExperimentRegistry) Run(ctx context.Context, name string, wls []WorkloadSpec) (*Experiment, error) {
	d, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("repro: unknown experiment %q (have %v)", name, r.Names())
	}
	return d.Run(ctx, wls)
}

// Experiments returns the sweep-based harness keyed by experiment name
// ("fig2" ... "fig16") with the v1 signature; table1/table2/fig7/overhead
// take no workloads and are exposed by StaticExperiments.
//
// Deprecated: use Registry, whose entries are typed and context-aware.
func Experiments() map[string]ExperimentFunc {
	out := map[string]ExperimentFunc{}
	for _, d := range registry.defs {
		if d.Static {
			continue
		}
		d := d
		out[d.Name] = func(wls []WorkloadSpec) (*Experiment, error) {
			return d.Run(context.Background(), wls)
		}
	}
	return out
}

// StaticExperiments returns the experiments that need no simulation sweep.
//
// Deprecated: use Registry; static entries carry Static == true.
func StaticExperiments() map[string]func() *Experiment {
	out := map[string]func() *Experiment{}
	for _, d := range registry.defs {
		if !d.Static {
			continue
		}
		d := d
		out[d.Name] = func() *Experiment {
			exp, err := d.Run(context.Background(), nil)
			if err != nil {
				panic(err) // static experiments cannot fail
			}
			return exp
		}
	}
	return out
}

// ExperimentNames lists every experiment in presentation order.
func ExperimentNames() []string { return registry.Names() }

// RunExperiment regenerates one experiment by name over the given
// workload set (ignored by the static experiments).
//
// Deprecated: use Registry().Run, which accepts a context.
func RunExperiment(name string, wls []WorkloadSpec) (*Experiment, error) {
	return registry.Run(context.Background(), name, wls)
}

// QuickSet returns the default evaluation workload set (five games at
// 640x480 plus one 1280x1024 capture); FullSet returns all of Table II.
func QuickSet() []WorkloadSpec { return core.QuickSet() }

// FullSet returns the complete Table II workload set.
func FullSet() []WorkloadSpec { return core.FullSet() }

// MiniSet returns a small set for fast runs.
func MiniSet() []WorkloadSpec { return core.MiniSet() }
