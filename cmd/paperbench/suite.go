package main

// paperbench -suite: run a declarative pim-render/suite/v1 scenario file
// instead of the registry experiments. Cases fan out across the sweep farm
// (-parallel) and aggregate in declaration order, so the output is
// byte-identical to running each case's spec alone; -write-baseline and
// -check reuse the golden machinery with one baseline document per case.

import (
	"context"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/store"
)

// suiteFlags is the -suite mode parameterization (shared flags resolved in
// main: parallelism, shards and store are process-wide and already set).
type suiteFlags struct {
	path       string
	tags       string
	tier       string
	difficulty string
	jsonOut    bool
	csvOut     bool
	writeBase  string
	checkDir   string
	relTol     float64
}

// runSuite executes the suite and reports whether the run failed.
func runSuite(ctx context.Context, f suiteFlags) bool {
	su, err := repro.LoadSuite(f.path)
	if err != nil {
		fatal(err)
	}
	filter := repro.SuiteFilter{Tier: f.tier, Difficulty: f.difficulty}
	for _, t := range strings.Split(f.tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			filter.Tags = append(filter.Tags, t)
		}
	}
	runner := repro.SuiteRunner{Filter: filter}
	results, err := runner.Run(ctx, su)
	if err != nil {
		fatal(err)
	}
	doc := results.ExperimentSet(su.Name)

	switch {
	case f.jsonOut:
		if err := doc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	case f.csvOut:
		fmt.Println("case,cycles,fps,texture_mb,total_mb,energy_j")
		for i := range results {
			r := &results[i]
			fmt.Printf("%s,%d,%.3f,%.3f,%.3f,%.6f\n", r.Case.ID,
				r.Result.Cycles(), r.Result.Frame.FPS(1.0),
				float64(r.Result.TextureTraffic())/(1<<20),
				float64(r.Result.TotalTraffic())/(1<<20),
				r.Result.Energy.Total())
		}
	default:
		fmt.Printf("suite %s: %d/%d cases selected\n", su.Name, len(results), len(su.Cases))
		fmt.Printf("%-24s %-28s %12s %8s %10s %10s\n",
			"case", "spec", "cycles", "fps", "tex MB", "energy J")
		for i := range results {
			r := &results[i]
			fmt.Printf("%-24s %-28s %12d %8.2f %10.2f %10.4f\n",
				r.Case.ID, r.Case.Spec.Label(), r.Result.Cycles(),
				r.Result.Frame.FPS(1.0),
				float64(r.Result.TextureTraffic())/(1<<20),
				r.Result.Energy.Total())
		}
	}

	if f.writeBase != "" {
		n, err := store.WriteBaselines(f.writeBase, doc)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote %d case baselines to %s\n", n, f.writeBase)
	}
	failed := false
	if f.checkDir != "" {
		rep, err := store.Check(f.checkDir, doc, su.Tolerance(store.Tolerance{Rel: f.relTol}))
		if err != nil {
			fatal(err)
		}
		rep.Write(os.Stderr)
		if rep.Failed() {
			failed = true
		}
	}
	return failed
}
