// Command paperbench regenerates the paper's evaluation: every table and
// figure of Section VII, printed as aligned text tables (optionally CSV).
//
// Usage:
//
//	paperbench                 # all experiments on the quick workload set
//	paperbench -exp fig10      # one experiment
//	paperbench -set full       # the complete Table II sweep (slow)
//	paperbench -csv            # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, or one of "+strings.Join(repro.ExperimentNames(), ", "))
		set      = flag.String("set", "quick", "workload set: mini, quick, full")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut  = flag.Bool("json", false, "emit the experiment set as JSON instead of text")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "render-farm workers for the sweeps (1 = serial)")
	)
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	core.SetSweepParallelism(*parallel)
	wallStart := time.Now()
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
		}
	}()

	var wls []repro.WorkloadSpec
	switch strings.ToLower(*set) {
	case "mini":
		wls = repro.MiniSet()
	case "quick":
		wls = repro.QuickSet()
	case "full":
		wls = repro.FullSet()
	default:
		fatal(fmt.Errorf("unknown workload set %q (mini, quick, full)", *set))
	}

	names := repro.ExperimentNames()
	if *exp != "all" {
		names = []string{*exp}
	}
	doc := obs.NewExperimentSet(strings.ToLower(*set))
	failed := false
	for _, name := range names {
		start := time.Now()
		e, err := repro.RunExperiment(name, wls)
		if err != nil {
			// Keep running the remaining experiments; report the failure
			// and exit non-zero at the end.
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			doc.Errors = append(doc.Errors, fmt.Sprintf("%s: %v", name, err))
			failed = true
			continue
		}
		doc.Experiments = append(doc.Experiments, e.JSONResult())
		if *jsonOut {
			continue
		}
		if *csvOut {
			fmt.Printf("# %s\n%s\n", e.Name, e.Table.CSV())
		} else {
			fmt.Println(e.Table.String())
		}
		if len(e.Summary) > 0 {
			fmt.Printf("summary:")
			for _, k := range sortedKeys(e.Summary) {
				fmt.Printf(" %s=%.3f", k, e.Summary[k])
			}
			fmt.Println()
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut {
		if err := doc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
	reportFarm(time.Since(wallStart))
	if failed {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
		}
		os.Exit(1)
	}
}

// reportFarm prints the sweep farm's parallel win: cumulative worker-busy
// time is what a serial run would have spent simulating, so busy/wall is
// the wall-clock speedup the farm delivered. Goes to stderr so -csv/-json
// stdout stays machine-readable.
func reportFarm(wall time.Duration) {
	f := core.SweepFarm()
	busy := f.BusyTime()
	if busy <= 0 || wall <= 0 {
		return
	}
	c := f.Counters()
	fmt.Fprintf(os.Stderr,
		"farm: %d workers, %d jobs (%d deduped), %v simulated over %v wall — %.2fx vs serial\n",
		f.Workers(), c.Submitted, c.Deduped,
		busy.Round(time.Millisecond), wall.Round(time.Millisecond),
		busy.Seconds()/wall.Seconds())
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
