// Command paperbench regenerates the paper's evaluation: every table and
// figure of Section VII, printed as aligned text tables (optionally CSV).
//
// Usage:
//
//	paperbench                          # all experiments on the quick workload set
//	paperbench -exp fig10               # one experiment
//	paperbench -set full                # the complete Table II sweep (slow)
//	paperbench -csv                     # machine-readable output
//	paperbench -store /var/pimstore     # persist results; reruns skip simulation
//	paperbench -write-baseline golden/  # record the current run as the golden set
//	paperbench -check golden/           # fail (exit 1) if results drift from golden
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all, or one of "+strings.Join(repro.ExperimentNames(), ", "))
		set       = flag.String("set", "quick", "workload set: mini, quick, full")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut   = flag.Bool("json", false, "emit the experiment set as JSON instead of text")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "render-farm workers for the sweeps; must be at least 1 (1 = serial)")
		shards    = flag.Int("shards", 0, "frame tile-scan worker shards per simulation (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
		storeDir  = flag.String("store", "", "durable result-store directory; reruns serve persisted results instead of re-simulating")
		writeBase = flag.String("write-baseline", "", "write each experiment's results as golden baselines into this directory")
		checkDir  = flag.String("check", "", "compare results against golden baselines in this directory; exit non-zero on drift")
		relTol    = flag.Float64("tolerance", store.DefaultRelTol, "relative tolerance for -check summary-metric comparison")
		suitePath = flag.String("suite", "", "run a pim-render/suite/v1 scenario file instead of the registry experiments")
		tags      = flag.String("tags", "", "with -suite: comma list of tags a case must carry to run")
		tier      = flag.String("tier", "", "with -suite: only run cases of this tier (smoke, standard, extended)")
		difficult = flag.String("difficulty", "", "with -suite: only run cases of this difficulty")
		version   = flag.Bool("version", false, "print version and exit")
	)
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Printf("paperbench %s (%s)\n", obs.Version(), obs.GoVersion())
		return
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	if *parallel < 1 {
		fatal(fmt.Errorf("-parallel must be at least 1, got %d", *parallel))
	}
	core.SetSweepParallelism(*parallel)
	core.SetDefaultShards(*shards)
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			fatal(err)
		}
		core.SetResultStore(st)
	}
	wallStart := time.Now()
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
		}
	}()

	// Ctrl-C cancels the in-flight sweep (through the registry's context)
	// instead of killing the process mid-simulation.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	// -suite switches to the declarative scenario path: the suite file
	// supplies the specs, and -tags/-tier/-difficulty select cases.
	if *suitePath != "" {
		failed := runSuite(ctx, suiteFlags{
			path: *suitePath, tags: *tags, tier: *tier, difficulty: *difficult,
			jsonOut: *jsonOut, csvOut: *csvOut,
			writeBase: *writeBase, checkDir: *checkDir, relTol: *relTol,
		})
		reportFarm(time.Since(wallStart))
		reportStore()
		if failed {
			// os.Exit skips the deferred profiler stop; flush it first.
			if err := prof.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench:", err)
			}
			os.Exit(1)
		}
		return
	}

	var wls []repro.WorkloadSpec
	switch strings.ToLower(*set) {
	case "mini":
		wls = repro.MiniSet()
	case "quick":
		wls = repro.QuickSet()
	case "full":
		wls = repro.FullSet()
	default:
		fatal(fmt.Errorf("unknown workload set %q (mini, quick, full)", *set))
	}

	reg := repro.Registry()
	names := reg.Names()
	if *exp != "all" {
		names = []string{*exp}
	}
	doc := obs.NewExperimentSet(strings.ToLower(*set))
	failed := false
	for _, name := range names {
		start := time.Now()
		e, err := reg.Run(ctx, name, wls)
		if err != nil {
			// Keep running the remaining experiments; report the failure
			// and exit non-zero at the end.
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			doc.Errors = append(doc.Errors, fmt.Sprintf("%s: %v", name, err))
			failed = true
			continue
		}
		doc.Experiments = append(doc.Experiments, e.JSONResult())
		if *jsonOut {
			continue
		}
		if *csvOut {
			fmt.Printf("# %s\n%s\n", e.Name, e.Table.CSV())
		} else {
			fmt.Println(e.Table.String())
		}
		if len(e.Summary) > 0 {
			fmt.Printf("summary:")
			for _, k := range sortedKeys(e.Summary) {
				fmt.Printf(" %s=%.3f", k, e.Summary[k])
			}
			fmt.Println()
		}
		// Timing goes to stderr so repeated runs (e.g. cold vs warm store)
		// produce byte-identical stdout.
		fmt.Fprintf(os.Stderr, "(%s in %v)\n", name, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}
	if *jsonOut {
		if err := doc.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *writeBase != "" {
		n, err := store.WriteBaselines(*writeBase, doc)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "paperbench: wrote %d baselines to %s\n", n, *writeBase)
	}
	if *checkDir != "" {
		rep, err := store.Check(*checkDir, doc, store.Tolerance{Rel: *relTol})
		if err != nil {
			fatal(err)
		}
		rep.Write(os.Stderr)
		if rep.Failed() {
			failed = true
		}
	}
	reportFarm(time.Since(wallStart))
	reportStore()
	if failed {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
		}
		os.Exit(1)
	}
}

// reportFarm prints the sweep farm's parallel win: cumulative worker-busy
// time is what a serial run would have spent simulating, so busy/wall is
// the wall-clock speedup the farm delivered. Goes to stderr so -csv/-json
// stdout stays machine-readable.
func reportFarm(wall time.Duration) {
	f := core.SweepFarm()
	busy := f.BusyTime()
	if busy <= 0 || wall <= 0 {
		return
	}
	c := f.Counters()
	fmt.Fprintf(os.Stderr,
		"farm: %d workers, %d jobs (%d deduped), %v simulated over %v wall — %.2fx vs serial\n",
		f.Workers(), c.Submitted, c.Deduped,
		busy.Round(time.Millisecond), wall.Round(time.Millisecond),
		busy.Seconds()/wall.Seconds())
}

// reportStore summarizes durable-store traffic when -store was given: hits
// are simulations skipped entirely, misses were computed and written
// through. Stderr, like the farm line.
func reportStore() {
	st := core.ResultStore()
	if st == nil {
		return
	}
	c := st.Counters()
	fmt.Fprintf(os.Stderr,
		"store: %d hits, %d misses (%d corrupt), %d puts, %d entries / %d bytes on disk\n",
		c.Hits, c.Misses, c.Corrupt, c.Puts, c.Entries, c.Bytes)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
