// Command pimreport renders pim-render JSON artifacts into one
// self-contained HTML report (inline SVG, no scripts or external assets).
//
// It accepts any mix of:
//   - pim-render/frameprofile/v1 files (pimsim -profile-frame out.json),
//     rendered as bandwidth timelines, supertile heatmaps and stage tables,
//     with a side-by-side design comparison when two or more are given;
//   - pim-render/experiments/v1 files (paperbench -json), rendered as
//     tables;
//   - pim-render/trace/v1 files (pimfarm GET /v1/jobs/{id}/trace),
//     rendered as distributed-trace span waterfalls.
//
// Usage:
//
//	pimreport -o report.html baseline.json bpim.json stfim.json atfim.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/dtrace"
	"repro/internal/report"
)

func main() {
	out := flag.String("o", "report.html", "output HTML file (\"-\" for stdout)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Printf("pimreport %s (%s)\n", obs.Version(), obs.GoVersion())
		return
	}
	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no input files (frameprofile or experiments JSON)"))
	}

	var in report.Input
	for _, path := range flag.Args() {
		if err := addFile(&in, path); err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := report.Generate(w, in); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "pimreport: wrote %s (%d profiles, %d experiment sets, %d traces)\n",
			*out, len(in.Profiles), len(in.Experiments), len(in.Traces))
	}
}

// addFile sniffs path's schema and appends it to the right input slot.
func addFile(in *report.Input, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("%s: not a JSON document: %w", path, err)
	}
	switch probe.Schema {
	case obs.FrameProfileSchema:
		p, err := obs.ReadFrameProfile(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		in.Profiles = append(in.Profiles, p)
	case obs.ExperimentSchemaVersion:
		var set obs.ExperimentSet
		if err := json.Unmarshal(data, &set); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		in.Experiments = append(in.Experiments, &set)
	case dtrace.TimelineSchema:
		var tl dtrace.Timeline
		if err := json.Unmarshal(data, &tl); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		in.Traces = append(in.Traces, &tl)
	default:
		return fmt.Errorf("%s: unsupported schema %q (want %s, %s or %s)",
			path, probe.Schema, obs.FrameProfileSchema, obs.ExperimentSchemaVersion, dtrace.TimelineSchema)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimreport:", err)
	os.Exit(1)
}
