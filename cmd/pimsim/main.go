// Command pimsim runs one workload under one of the paper's four designs
// and prints its performance, traffic, energy and quality measurements.
//
// Usage:
//
//	pimsim -game doom3 -width 640 -height 480 -design atfim \
//	       -threshold 0.0314 -png frame.png
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/config"
	"repro/internal/mem"
)

func main() {
	var (
		game       = flag.String("game", "doom3", "workload: doom3, fear, hl2, riddick, wolf")
		width      = flag.Int("width", 640, "render width")
		height     = flag.Int("height", 480, "render height")
		designStr  = flag.String("design", "baseline", "design: baseline, bpim, stfim, atfim")
		threshold  = flag.Float64("threshold", 0, "A-TFIM camera-angle threshold in radians (0 = paper default 0.01pi)")
		noAniso    = flag.Bool("no-aniso", false, "disable anisotropic filtering (Fig 4 study)")
		compressed = flag.Bool("compressed", false, "fixed-rate texture block compression (not with atfim)")
		cubes      = flag.Int("cubes", 1, "number of HMC cubes (Section V-E)")
		frames     = flag.Int("frames", 1, "number of frames to render")
		pngPath    = flag.String("png", "", "write the rendered frame to this PNG file")
		compare    = flag.Bool("psnr", false, "also render the baseline and report PSNR against it")
	)
	flag.Parse()

	design, err := parseDesign(*designStr)
	if err != nil {
		fatal(err)
	}
	wl, err := repro.Workload(*game, *width, *height)
	if err != nil {
		fatal(err)
	}

	opts := repro.Options{
		Design:         design,
		AngleThreshold: float32(*threshold),
		DisableAniso:   *noAniso,
		Compressed:     *compressed,
		HMCCubes:       *cubes,
		Frames:         *frames,
	}
	res, err := repro.Simulate(wl, opts)
	if err != nil {
		fatal(err)
	}

	f := res.Frame
	p := f.Activity.Path
	fmt.Printf("workload        %s (%s, %s)\n", wl.Name(), wl.Library, wl.Engine)
	fmt.Printf("design          %s\n", design)
	fmt.Printf("cycles          %d (%.1f FPS at 1 GHz)\n", f.Cycles, f.FPS(1.0))
	fmt.Printf("fragments       %d (tex requests %d)\n", f.Activity.FragmentCount, p.TexRequests)
	fmt.Printf("filter busy     %.0f cycles (mean latency %.1f)\n", p.FilterTime(), p.MeanLatency())
	fmt.Printf("texture traffic %.2f MB\n", float64(f.Traffic.TextureBytes())/(1<<20))
	fmt.Printf("total traffic   %.2f MB\n", float64(f.Traffic.Total())/(1<<20))
	for c := mem.Class(0); c < mem.NumClasses; c++ {
		fmt.Printf("  %-10s %5.1f%%\n", c, 100*f.Traffic.Share(c))
	}
	fmt.Printf("energy          %.4f J (%s)\n", res.Energy.Total(), energyBreakdown(res))
	if design == config.ATFIM {
		fmt.Printf("offloads        %d (angle recalcs %d)\n", p.OffloadPackets, p.AngleRecalcs)
	}

	if *compare && design != config.Baseline {
		base, err := repro.Simulate(wl, repro.Options{Design: config.Baseline, Frames: *frames})
		if err != nil {
			fatal(err)
		}
		psnr, err := repro.PSNR(base.Image, res.Image)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("PSNR vs base    %.1f dB\n", psnr)
	}

	if *pngPath != "" {
		out, err := os.Create(*pngPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
		if err := repro.WritePNG(out, res.Image, f.Width, f.Height); err != nil {
			fatal(err)
		}
		fmt.Printf("frame written   %s\n", *pngPath)
	}
}

func parseDesign(s string) (repro.Design, error) {
	switch strings.ToLower(s) {
	case "baseline", "base":
		return config.Baseline, nil
	case "bpim", "b-pim":
		return config.BPIM, nil
	case "stfim", "s-tfim":
		return config.STFIM, nil
	case "atfim", "a-tfim":
		return config.ATFIM, nil
	default:
		return 0, fmt.Errorf("unknown design %q (baseline, bpim, stfim, atfim)", s)
	}
}

func energyBreakdown(res *repro.Result) string {
	b := res.Energy
	return fmt.Sprintf("shader %.1f%%, texture %.1f%%, memory %.1f%%, background %.1f%%",
		100*b.Shader/b.Total(),
		100*(b.TextureGPU+b.Caches+b.PIMLogic)/b.Total(),
		100*(b.Links+b.DRAM)/b.Total(),
		100*(b.Background+b.Leakage)/b.Total())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimsim:", err)
	os.Exit(1)
}
