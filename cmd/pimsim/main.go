// Command pimsim runs one workload under one of the paper's four designs
// and prints its performance, traffic, energy and quality measurements.
//
// Usage:
//
//	pimsim -game doom3 -width 640 -height 480 -design atfim \
//	       -threshold 0.0314 -shards 8 -png frame.png
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/obs"
)

func main() {
	var (
		game       = flag.String("game", "doom3", "workload: doom3, fear, hl2, riddick, wolf")
		width      = flag.Int("width", 640, "render width")
		height     = flag.Int("height", 480, "render height")
		designStr  = flag.String("design", "baseline", "design: baseline, bpim, stfim, atfim")
		threshold  = flag.Float64("threshold", 0, "A-TFIM camera-angle threshold in radians (0 = paper default 0.01pi)")
		noAniso    = flag.Bool("no-aniso", false, "disable anisotropic filtering (Fig 4 study)")
		compressed = flag.Bool("compressed", false, "fixed-rate texture block compression (not with atfim)")
		cubes      = flag.Int("cubes", 1, "number of HMC cubes (Section V-E)")
		frames     = flag.Int("frames", 1, "number of frames to render")
		shards     = flag.Int("shards", 0, "frame tile-scan worker shards (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
		pngPath    = flag.String("png", "", "write the rendered frame to this PNG file")
		compare    = flag.Bool("psnr", false, "also render the baseline and report PSNR against it")
		jsonOut    = flag.Bool("json", false, "emit the metrics snapshot as JSON instead of text")
		traceFile  = flag.String("tracefile", "", "write a cycle-timeline trace (Chrome trace-event JSON) to this file")
		profFile   = flag.String("profile-frame", "", "write a pim-render/frameprofile/v1 frame-anatomy JSON (bandwidth timelines, per-supertile attribution) to this file")
		version    = flag.Bool("version", false, "print version and exit")
	)
	var traceCap int
	flag.IntVar(&traceCap, "trace-events", 0, "trace ring capacity in events (0 = default)")
	flag.IntVar(&traceCap, "tracecap", 0, "alias for -trace-events")
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Printf("pimsim %s (%s)\n", obs.Version(), obs.GoVersion())
		return
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "pimsim:", err)
		}
	}()

	// The flags assemble the canonical pim-render/spec/v1 document — the
	// same spec a pimfarm job body or suite case carries — so pimsim keys,
	// caches and simulates identically to every other surface.
	spec := repro.Spec{
		Game:           *game,
		Width:          *width,
		Height:         *height,
		Design:         *designStr,
		AngleThreshold: float32(*threshold),
		DisableAniso:   *noAniso,
		Compressed:     *compressed,
		HMCCubes:       *cubes,
		Frames:         *frames,
		Shards:         *shards,
	}
	design, err := repro.ParseDesign(*designStr)
	if err != nil {
		fatal(err)
	}
	rv, err := spec.Resolve()
	if err != nil {
		fatal(err)
	}
	wl := rv.Workload

	// Ctrl-C cancels the simulation at the next tile-group boundary (the
	// v2 context-aware entry point) instead of killing the process mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Tracing and frame profiling are runtime-only extras layered on top of
	// the spec: they never change simulated results or the cache identity.
	var extra []repro.Option
	var tracer *repro.Tracer
	if *traceFile != "" {
		tracer = repro.NewTracer(traceCap)
		extra = append(extra, repro.WithTracer(tracer))
	}
	var profile *repro.FrameProfile
	if *profFile != "" {
		profile = &repro.FrameProfile{}
		extra = append(extra, repro.WithFrameProfile(profile))
	}
	res, err := repro.SimulateSpec(ctx, &spec, extra...)
	if err != nil {
		fatal(err)
	}

	if profile != nil {
		out, err := os.Create(*profFile)
		if err != nil {
			fatal(err)
		}
		if err := profile.WriteJSON(out); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "frame profile   %s (%d frames)\n", *profFile, len(profile.Frames))
	}

	if tracer != nil {
		out, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeTrace(out); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "pimsim: trace ring wrapped, %d oldest events dropped (raise -trace-events)\n", d)
		}
	}

	// -psnr renders the baseline for comparison; in JSON mode the result
	// becomes a gauge instead of a text line.
	psnr, havePSNR := 0.0, false
	if *compare && design != config.Baseline {
		base, err := repro.SimulateContext(ctx, wl,
			repro.WithDesign(config.Baseline),
			repro.WithFrames(*frames),
			repro.WithShards(*shards))
		if err != nil {
			fatal(err)
		}
		if psnr, err = repro.PSNR(base.Image, res.Image); err != nil {
			fatal(err)
		}
		havePSNR = true
	}

	if *jsonOut {
		snap := res.Metrics()
		if havePSNR {
			snap.Gauge("quality.psnr_vs_baseline_db", psnr)
		}
		if err := snap.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		writePNG(res, *pngPath, os.Stderr)
		return
	}

	f := res.Frame
	p := f.Activity.Path
	fmt.Printf("workload        %s (%s, %s)\n", wl.Name(), wl.Library, wl.Engine)
	fmt.Printf("design          %s\n", design)
	fmt.Printf("cycles          %d (%.1f FPS at 1 GHz)\n", f.Cycles, f.FPS(1.0))
	fmt.Printf("fragments       %d (tex requests %d)\n", f.Activity.FragmentCount, p.TexRequests)
	fmt.Printf("filter busy     %.0f cycles (mean latency %.1f)\n", p.FilterTime(), p.MeanLatency())
	fmt.Printf("texture traffic %.2f MB\n", float64(f.Traffic.TextureBytes())/(1<<20))
	fmt.Printf("total traffic   %.2f MB\n", float64(f.Traffic.Total())/(1<<20))
	for c := mem.Class(0); c < mem.NumClasses; c++ {
		fmt.Printf("  %-10s %5.1f%%\n", c, 100*f.Traffic.Share(c))
	}
	fmt.Printf("energy          %.4f J (%s)\n", res.Energy.Total(), energyBreakdown(res))
	if design == config.ATFIM {
		fmt.Printf("offloads        %d (angle recalcs %d)\n", p.OffloadPackets, p.AngleRecalcs)
	}

	if havePSNR {
		fmt.Printf("PSNR vs base    %.1f dB\n", psnr)
	}

	writePNG(res, *pngPath, os.Stdout)
}

// writePNG dumps the rendered frame when a path was given; the status note
// goes to `note` (stderr in JSON mode, so stdout stays a single document).
func writePNG(res *repro.Result, path string, note *os.File) {
	if path == "" {
		return
	}
	out, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := repro.WritePNG(out, res.Image, res.Frame.Width, res.Frame.Height); err != nil {
		out.Close()
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(note, "frame written   %s\n", path)
}

func energyBreakdown(res *repro.Result) string {
	b := res.Energy
	total := b.Total()
	if total == 0 {
		return "no energy recorded"
	}
	return fmt.Sprintf("shader %.1f%%, texture %.1f%%, memory %.1f%%, background %.1f%%",
		100*b.Shader/total,
		100*(b.TextureGPU+b.Caches+b.PIMLogic)/total,
		100*(b.Links+b.DRAM)/total,
		100*(b.Background+b.Leakage)/total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimsim:", err)
	os.Exit(1)
}
