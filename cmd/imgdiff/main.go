// Command imgdiff compares two rendered PNG frames with the paper's
// quality metrics (PSNR, Section VII-D, plus SSIM for reference).
//
// Usage:
//
//	imgdiff baseline.png atfim.png
package main

import (
	"flag"
	"fmt"
	"image/png"
	"os"

	"repro/internal/obs"
	"repro/internal/quality"
)

func main() {
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: imgdiff [flags] <a.png> <b.png>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "imgdiff:", err)
		}
	}()
	a, wa, ha, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, wb, hb, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if wa != wb || ha != hb {
		fatal(fmt.Errorf("size mismatch: %dx%d vs %dx%d", wa, ha, wb, hb))
	}
	psnr, err := quality.PSNR(a, b)
	if err != nil {
		fatal(err)
	}
	ssim, err := quality.SSIM(a, b)
	if err != nil {
		fatal(err)
	}
	mse, err := quality.MSE(a, b)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("PSNR  %.2f dB\n", psnr)
	fmt.Printf("SSIM  %.4f\n", ssim)
	fmt.Printf("MSE   %.4f\n", mse)
	if psnr >= 70 {
		fmt.Println("verdict: differences imperceptible (PSNR >= 70, Section VII-D)")
	} else if psnr >= 40 {
		fmt.Println("verdict: minor differences")
	} else {
		fmt.Println("verdict: visible differences")
	}
}

func load(path string) ([]uint32, int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%s: %w", path, err)
	}
	bounds := img.Bounds()
	w, h := bounds.Dx(), bounds.Dy()
	pix := make([]uint32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, g, b, a := img.At(bounds.Min.X+x, bounds.Min.Y+y).RGBA()
			pix[y*w+x] = uint32(r>>8) | uint32(g>>8)<<8 | uint32(b>>8)<<16 | uint32(a>>8)<<24
		}
	}
	return pix, w, h, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imgdiff:", err)
	os.Exit(1)
}
