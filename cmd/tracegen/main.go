// Command tracegen captures the procedural game workloads into binary
// trace files (the role ATTILA's captured traces play in the paper) and
// can verify a trace by replaying it.
//
// Usage:
//
//	tracegen -out traces/                 # capture all five games
//	tracegen -game doom3 -out traces/    # one game
//	tracegen -verify traces/doom3-640x480.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/texture"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		game    = flag.String("game", "", "game to capture (empty = all)")
		width   = flag.Int("width", 640, "render width")
		height  = flag.Int("height", 480, "render height")
		outDir  = flag.String("out", ".", "output directory")
		verify  = flag.String("verify", "", "verify an existing trace file and exit")
		version = flag.Bool("version", false, "print version and exit")
	)
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Printf("tracegen %s (%s)\n", obs.Version(), obs.GoVersion())
		return
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
		}
	}()

	if *verify != "" {
		if err := verifyTrace(*verify); err != nil {
			fatal(err)
		}
		return
	}

	games := workload.GameNames()
	if *game != "" {
		games = []string{*game}
	}
	for _, g := range games {
		wl, err := workload.Get(g, *width, *height)
		if err != nil {
			fatal(err)
		}
		sc := wl.Scene()
		path := filepath.Join(*outDir, wl.Name()+".trace")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		hdr := trace.Header{Name: wl.Name(), Width: wl.Width, Height: wl.Height}
		err = trace.Write(f, hdr, sc, sc.TextureSpecs)
		cerr := f.Close()
		if err != nil {
			fatal(err)
		}
		if cerr != nil {
			fatal(cerr)
		}
		info, _ := os.Stat(path)
		fmt.Printf("captured %-22s %6d triangles, %2d textures, %d cameras, %d bytes\n",
			path, sc.NumTriangles(), len(sc.Textures), len(sc.Cameras), info.Size())
	}
}

func verifyTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr, sc, err := trace.Read(f, texture.LayoutMorton)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %s %dx%d, %d triangles, %d textures, %d cameras\n",
		path, hdr.Name, hdr.Width, hdr.Height,
		sc.NumTriangles(), len(sc.Textures), len(sc.Cameras))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
