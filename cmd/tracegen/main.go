// Command tracegen captures the procedural game workloads into binary
// trace files (the role ATTILA's captured traces play in the paper) and
// can verify a trace by replaying it.
//
// Usage:
//
//	tracegen -out traces/                 # capture all five games
//	tracegen -game doom3 -out traces/    # one game
//	tracegen -verify traces/doom3-640x480.trace
//	tracegen -verify t.trace -replay -design atfim -tracefile spans.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/texture"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		game      = flag.String("game", "", "game to capture (empty = all)")
		width     = flag.Int("width", 640, "render width")
		height    = flag.Int("height", 480, "render height")
		outDir    = flag.String("out", ".", "output directory")
		verify    = flag.String("verify", "", "verify an existing trace file and exit")
		replay    = flag.Bool("replay", false, "with -verify: replay the trace through the simulator")
		designStr = flag.String("design", "baseline", "with -replay: design to simulate (baseline, bpim, stfim, atfim)")
		traceFile = flag.String("tracefile", "", "with -replay: write a cycle-timeline trace (Chrome trace-event JSON) to this file")
		version   = flag.Bool("version", false, "print version and exit")
	)
	var traceCap int
	flag.IntVar(&traceCap, "trace-events", 0, "trace ring capacity in events (0 = default)")
	flag.IntVar(&traceCap, "tracecap", 0, "alias for -trace-events")
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Printf("tracegen %s (%s)\n", obs.Version(), obs.GoVersion())
		return
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
		}
	}()

	if *verify != "" {
		if err := verifyTrace(*verify, *replay, *designStr, *traceFile, traceCap); err != nil {
			fatal(err)
		}
		return
	}
	if *replay {
		fatal(fmt.Errorf("-replay requires -verify <trace>"))
	}

	games := workload.GameNames()
	if *game != "" {
		games = []string{*game}
	}
	for _, g := range games {
		wl, err := workload.Get(g, *width, *height)
		if err != nil {
			fatal(err)
		}
		sc := wl.Scene()
		path := filepath.Join(*outDir, wl.Name()+".trace")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		hdr := trace.Header{Name: wl.Name(), Width: wl.Width, Height: wl.Height}
		err = trace.Write(f, hdr, sc, sc.TextureSpecs)
		cerr := f.Close()
		if err != nil {
			fatal(err)
		}
		if cerr != nil {
			fatal(cerr)
		}
		info, _ := os.Stat(path)
		fmt.Printf("captured %-22s %6d triangles, %2d textures, %d cameras, %d bytes\n",
			path, sc.NumTriangles(), len(sc.Textures), len(sc.Cameras), info.Size())
	}
}

func verifyTrace(path string, replay bool, designStr, traceFile string, traceCap int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr, sc, err := trace.Read(f, texture.LayoutMorton)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %s %dx%d, %d triangles, %d textures, %d cameras\n",
		path, hdr.Name, hdr.Width, hdr.Height,
		sc.NumTriangles(), len(sc.Textures), len(sc.Cameras))
	if !replay {
		return nil
	}

	design, err := config.ParseDesign(designStr)
	if err != nil {
		return err
	}
	sc.AssignTextureAddresses(mem.RegionTexture)
	// The header names the workload "game-WxH"; reconstruct the identity
	// the simulator expects (the scene itself comes from the trace, not
	// from the procedural generator).
	wl := workload.Workload{
		Game:   strings.TrimSuffix(hdr.Name, fmt.Sprintf("-%dx%d", hdr.Width, hdr.Height)),
		Width:  hdr.Width,
		Height: hdr.Height,
	}
	opts := core.Options{Design: design}
	var tracer *obs.Tracer
	if traceFile != "" {
		tracer = obs.NewTracer(traceCap)
		opts.Trace = tracer
	}
	res, err := core.RunScene(sc, wl, opts)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s on %s: %d cycles, %d fragments\n",
		wl.Name(), design, res.Cycles(), res.Frame.Activity.FragmentCount)
	if tracer != nil {
		out, err := os.Create(traceFile)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("span trace written to %s (%d events)\n", traceFile, tracer.Len())
		if d := tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr,
				"tracegen: trace ring wrapped, %d oldest events dropped (raise -trace-events)\n", d)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
