package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs/dtrace"
	"repro/internal/suite"
)

// tenantSpec is one entry of the -tenants mix.
type tenantSpec struct {
	// Name is the tenant identity; "anonymous" (or empty) submits with no
	// credentials at all.
	Name string
	// Key, when set, authenticates via "Authorization: Bearer <key>";
	// otherwise the bare name rides in ?tenant=.
	Key string
	// Weight is the tenant's share of arrivals (default 1).
	Weight int
}

// parseTenantSpecs parses the -tenants flag: a comma list of
// name[=key][:weight]. "alice=key-a:3,bob:1" sends 3 of every 4 arrivals
// as alice (authenticated by key) and 1 as bob (bare name).
func parseTenantSpecs(s string) ([]tenantSpec, error) {
	var out []tenantSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec := tenantSpec{Weight: 1}
		if name, w, ok := strings.Cut(part, ":"); ok {
			n, err := strconv.Atoi(w)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("tenant %q: bad weight %q", part, w)
			}
			spec.Weight = n
			part = name
		}
		if name, key, ok := strings.Cut(part, "="); ok {
			if key == "" {
				return nil, fmt.Errorf("tenant %q: empty key", part)
			}
			spec.Key = key
			part = name
		}
		if part == "" {
			return nil, fmt.Errorf("tenant entry with empty name in %q", s)
		}
		spec.Name = part
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty tenant mix %q", s)
	}
	return out, nil
}

// tenantSchedule expands the weighted mix into a repeating arrival
// schedule that interleaves tenants (round-robin by weight) rather than
// sending each tenant's share in a burst.
func tenantSchedule(mix []tenantSpec) []tenantSpec {
	maxW := 0
	for _, t := range mix {
		if t.Weight > maxW {
			maxW = t.Weight
		}
	}
	var sched []tenantSpec
	for round := 0; round < maxW; round++ {
		for _, t := range mix {
			if t.Weight > round {
				sched = append(sched, t)
			}
		}
	}
	return sched
}

// classInteractive reports whether arrival i (0-based) should be
// interactive under the given fraction, by Bresenham accumulation:
// the running interactive count tracks frac*(i+1) with no RNG, so any
// fraction yields a deterministic, evenly interleaved class sequence.
func classInteractive(i int, frac float64, interactiveSoFar int) bool {
	return float64(interactiveSoFar) < frac*float64(i+1)
}

// loadConfig is the resolved load-run parameterization.
type loadConfig struct {
	Target      string
	Rate        float64
	Duration    time.Duration
	Interactive float64
	Tenants     []tenantSpec
	Game        string
	Width       int
	Height      int
	Design      string
	Distinct    int
	BatchFrames int
	Timeout     time.Duration
}

// request builds the job body — the canonical pim-render/spec/v1
// document pimfarm accepts — for a spec index and class shape.
func (c loadConfig) request(frameIndex int, batch bool) suite.Spec {
	b := suite.Spec{
		Game:       c.Game,
		Width:      c.Width,
		Height:     c.Height,
		Design:     c.Design,
		FrameIndex: frameIndex,
		Class:      "interactive",
	}
	if batch {
		b.Class = "batch"
		b.Frames = c.BatchFrames
	}
	return b
}

// sample is one arrival's outcome.
type sample struct {
	Tenant      string
	Class       string
	FrameIndex  int
	Batch       bool
	Status      int     // HTTP status (0 = transport error)
	Reason      string  // 429 reason, when rejected
	AdmitWaitMS float64 // server-reported admission queue wait
	E2EMS       float64 // client-observed submit→result latency
	OK          bool    // job completed successfully
	ResultHash  string  // canonical result hash (OK only)
	JobID       string  // server-assigned job ID (OK only)
	TraceID     string  // distributed-trace ID ("" when unsampled)
	Err         string
}

// jobView is the slice of the pimfarm job response pimload reads.
type jobView struct {
	ID          string          `json:"id"`
	Tenant      string          `json:"tenant"`
	Class       string          `json:"class"`
	AdmitWaitMS float64         `json:"admit_wait_ms"`
	TraceID     string          `json:"trace_id"`
	State       string          `json:"state"`
	Error       string          `json:"error"`
	Result      json.RawMessage `json:"result"`
}

// runLoad drives the open-loop schedule and collects one sample per
// arrival. It returns when every in-flight submission has resolved.
func runLoad(ctx context.Context, cfg loadConfig) ([]sample, time.Duration) {
	client := &http.Client{Timeout: cfg.Timeout}
	sched := tenantSchedule(cfg.Tenants)
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	arrivals := int(cfg.Duration.Seconds() * cfg.Rate)
	if arrivals < 1 {
		arrivals = 1
	}

	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		samples     = make([]sample, 0, arrivals)
		interactive int
	)
	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for i := 0; i < arrivals; i++ {
		tenant := sched[i%len(sched)]
		isInteractive := classInteractive(i, cfg.Interactive, interactive)
		if isInteractive {
			interactive++
		}
		body := cfg.request(i%cfg.Distinct, !isInteractive)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := submitOne(ctx, client, cfg.Target, tenant, body)
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}()
		if i < arrivals-1 {
			select {
			case <-tick.C:
			case <-ctx.Done():
				i = arrivals // stop scheduling; drain what's in flight
			}
		}
	}
	wg.Wait()
	return samples, time.Since(start)
}

// fetchSlowestStages enriches the slowest-requests table with per-stage
// durations from each job's distributed trace (GET /v1/jobs/{id}/trace).
// Best-effort: a job whose trace was unsampled, already pruned, or
// unreachable keeps an empty breakdown rather than failing the report.
func fetchSlowestStages(cfg loadConfig, slowest []slowRequest) {
	client := &http.Client{Timeout: 10 * time.Second}
	for i := range slowest {
		r := &slowest[i]
		if r.TraceID == "" || r.JobID == "" {
			continue
		}
		resp, err := client.Get(cfg.Target + "/v1/jobs/" + r.JobID + "/trace")
		if err != nil {
			continue
		}
		var tl dtrace.Timeline
		err = json.NewDecoder(resp.Body).Decode(&tl)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if stages := tl.StageDurations(); len(stages) > 0 {
			r.StagesMS = stages
		}
	}
}

// submitOne performs one synchronous job submission and classifies the
// outcome.
func submitOne(ctx context.Context, client *http.Client, target string, tenant tenantSpec, body suite.Spec) sample {
	s := sample{
		Tenant:     tenant.Name,
		Class:      body.Class,
		FrameIndex: body.FrameIndex,
		Batch:      body.Class == "batch",
	}
	payload, err := json.Marshal(body)
	if err != nil {
		s.Err = err.Error()
		return s
	}
	url := target + "/v1/jobs?wait=true"
	if tenant.Key == "" && tenant.Name != "" && tenant.Name != "anonymous" {
		url += "&tenant=" + tenant.Name
	}
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(payload))
	if err != nil {
		s.Err = err.Error()
		return s
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant.Key != "" {
		req.Header.Set("Authorization", "Bearer "+tenant.Key)
	}
	begin := time.Now()
	resp, err := client.Do(req)
	s.E2EMS = float64(time.Since(begin)) / float64(time.Millisecond)
	if err != nil {
		s.Err = err.Error()
		return s
	}
	defer resp.Body.Close()
	s.Status = resp.StatusCode

	switch resp.StatusCode {
	case http.StatusOK:
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			s.Err = err.Error()
			return s
		}
		s.AdmitWaitMS = v.AdmitWaitMS
		s.JobID = v.ID
		s.TraceID = v.TraceID
		if v.State != "done" {
			s.Err = fmt.Sprintf("job %s: %s", v.State, v.Error)
			return s
		}
		s.OK = true
		s.ResultHash = resultHash(v.Result)
	case http.StatusTooManyRequests:
		var e struct {
			Reason string `json:"reason"`
			Error  string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		s.Reason = e.Reason
		if s.Reason == "" {
			s.Reason = "overload"
		}
		s.Err = e.Error
	default:
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		s.Err = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, e.Error)
	}
	return s
}
