package main

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestParseTenantSpecs(t *testing.T) {
	got, err := parseTenantSpecs("alice=key-a:3, bob:2 ,anonymous")
	if err != nil {
		t.Fatal(err)
	}
	want := []tenantSpec{
		{Name: "alice", Key: "key-a", Weight: 3},
		{Name: "bob", Weight: 2},
		{Name: "anonymous", Weight: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d specs, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	for _, bad := range []string{"", "alice:0", "alice:x", "=key", ":2", "alice=:3"} {
		if _, err := parseTenantSpecs(bad); err == nil {
			t.Errorf("parseTenantSpecs(%q): want error", bad)
		}
	}
}

func TestTenantSchedule(t *testing.T) {
	sched := tenantSchedule([]tenantSpec{
		{Name: "a", Weight: 3},
		{Name: "b", Weight: 1},
	})
	if len(sched) != 4 {
		t.Fatalf("schedule length = %d, want 4", len(sched))
	}
	counts := map[string]int{}
	for _, s := range sched {
		counts[s.Name]++
	}
	if counts["a"] != 3 || counts["b"] != 1 {
		t.Errorf("schedule counts = %v, want a:3 b:1", counts)
	}
	// Interleaved, not bursty: the first round contains both tenants.
	if sched[0].Name != "a" || sched[1].Name != "b" {
		t.Errorf("schedule not interleaved: %+v", sched)
	}
}

func TestClassInteractiveFraction(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		n, interactive := 1000, 0
		for i := 0; i < n; i++ {
			if classInteractive(i, frac, interactive) {
				interactive++
			}
		}
		if want := int(frac * float64(n)); int(math.Abs(float64(interactive-want))) > 1 {
			t.Errorf("frac %v: %d/%d interactive, want ~%d", frac, interactive, n, want)
		}
	}
}

func TestBuildReport(t *testing.T) {
	cfg := loadConfig{Target: "http://x", Rate: 10}
	samples := []sample{
		{Tenant: "a", Class: "interactive", OK: true, AdmitWaitMS: 5, E2EMS: 100},
		{Tenant: "a", Class: "interactive", OK: true, AdmitWaitMS: 15, E2EMS: 200},
		{Tenant: "b", Class: "batch", OK: true, AdmitWaitMS: 50, E2EMS: 500},
		{Tenant: "b", Class: "batch", Status: 429, Reason: "over_quota"},
		{Tenant: "b", Class: "batch", Status: 500, Err: "boom"},
	}
	rep := buildReport(cfg, samples, 10*time.Second)

	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	s := rep.SLO
	if s.Arrivals != 5 || s.Completed != 3 || s.Rejected != 1 || s.Errors != 1 {
		t.Errorf("totals = %+v", s)
	}
	if s.RejectRate != 0.2 {
		t.Errorf("reject rate = %v, want 0.2", s.RejectRate)
	}
	if s.Goodput != 0.3 {
		t.Errorf("goodput = %v, want 0.3", s.Goodput)
	}
	ic := s.Classes["interactive"]
	if ic.Completed != 2 || ic.AdmitWait.N != 2 || ic.AdmitWait.Max != 15 {
		t.Errorf("interactive class = %+v", ic)
	}
	bt := s.Tenants["b"]
	if bt.Rejected != 1 || bt.RejectReasons["over_quota"] != 1 {
		t.Errorf("tenant b = %+v", bt)
	}

	// Benchmarks carry the quantiles in bench/v1 shape: parsable and
	// positive for classes with completions.
	if len(rep.Benchmarks) == 0 {
		t.Fatal("no benchmark entries")
	}
	found := false
	for _, b := range rep.Benchmarks {
		if b.Name == "LoadSLO/interactive/e2e_p99" {
			found = true
			// Percentile interpolates between the two samples (100, 200 ms).
			if b.NsPerOp < int64(150*time.Millisecond) || b.NsPerOp > int64(200*time.Millisecond) {
				t.Errorf("interactive e2e p99 = %d ns, want within (150ms, 200ms]", b.NsPerOp)
			}
		}
	}
	if !found {
		t.Error("missing LoadSLO/interactive/e2e_p99 benchmark entry")
	}

	// The report round-trips as the shared bench schema.
	body, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var generic struct {
		Schema     string `json:"schema"`
		Benchmarks []struct {
			Name    string `json:"name"`
			NsPerOp int64  `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(body, &generic); err != nil {
		t.Fatal(err)
	}
	if generic.Schema != ReportSchema || len(generic.Benchmarks) != len(rep.Benchmarks) {
		t.Errorf("round-trip = %+v", generic)
	}
}

func TestCollectSlowest(t *testing.T) {
	var samples []sample
	for i := 1; i <= 15; i++ {
		samples = append(samples, sample{
			Tenant: "a", Class: "interactive", OK: true,
			E2EMS: float64(i * 10), JobID: fmt.Sprintf("job-%02d", i),
			TraceID: fmt.Sprintf("trace-%02d", i),
		})
	}
	// Failures never make the table, however slow.
	samples = append(samples, sample{Tenant: "a", Class: "batch", E2EMS: 9999, Status: 500})

	slow := collectSlowest(samples, 10)
	if len(slow) != 10 {
		t.Fatalf("len = %d, want 10", len(slow))
	}
	if slow[0].JobID != "job-15" || slow[0].E2EMS != 150 {
		t.Errorf("slowest = %+v, want job-15 at 150ms", slow[0])
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].E2EMS > slow[i-1].E2EMS {
			t.Fatalf("not sorted desc at %d: %v > %v", i, slow[i].E2EMS, slow[i-1].E2EMS)
		}
	}
	if slow[9].JobID != "job-06" {
		t.Errorf("10th slowest = %s, want job-06", slow[9].JobID)
	}

	// The report embeds and round-trips the table.
	rep := buildReport(loadConfig{}, samples, time.Second)
	if len(rep.SLO.Slowest) != 10 || rep.SLO.Slowest[0].TraceID != "trace-15" {
		t.Errorf("report slowest = %+v", rep.SLO.Slowest)
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	// 1..100 ms: the quantiles land on the expected order statistics.
	var samples []sample
	for i := 1; i <= 100; i++ {
		samples = append(samples, sample{Class: "interactive", OK: true, E2EMS: float64(i)})
	}
	rep := buildReport(loadConfig{}, samples, time.Second)
	q := rep.SLO.Classes["interactive"].E2E
	if q.N != 100 || q.P50 < 49 || q.P50 > 52 || q.P99 < 98 || q.P99 > 100 || q.Max != 100 {
		t.Errorf("quantiles = %+v", q)
	}
}
