package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// ReportSchema is the report's schema tag — the repo's shared bench
// format, so scripts/bench.sh tooling and CI checks parse pimload output
// like any other benchmark document.
const ReportSchema = "pim-render/bench/v1"

// benchEntry is one pim-render/bench/v1 benchmark line.
type benchEntry struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	NsPerOp    int64  `json:"ns_per_op"`
}

// quantiles summarizes one latency distribution in milliseconds.
type quantiles struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// classSLO is one priority class's aggregate outcome.
type classSLO struct {
	Arrivals  int       `json:"arrivals"`
	Completed int       `json:"completed"`
	Rejected  int       `json:"rejected"`
	Errors    int       `json:"errors"`
	AdmitWait quantiles `json:"admit_wait"`
	E2E       quantiles `json:"e2e"`
}

// tenantSLO is one tenant's aggregate outcome.
type tenantSLO struct {
	Arrivals      int            `json:"arrivals"`
	Completed     int            `json:"completed"`
	Rejected      int            `json:"rejected"`
	RejectReasons map[string]int `json:"reject_reasons,omitempty"`
}

// slowRequest is one of the run's slowest completed requests, carrying
// the handle (job ID + trace ID) into the server's distributed-trace
// timeline and — when the trace was fetchable — its per-stage breakdown.
type slowRequest struct {
	JobID   string  `json:"job_id"`
	TraceID string  `json:"trace_id,omitempty"`
	Tenant  string  `json:"tenant"`
	Class   string  `json:"class"`
	E2EMS   float64 `json:"e2e_ms"`
	// StagesMS maps span name → total milliseconds from the job's
	// assembled trace (run, tiers, simulate/<stage>, wire/..., ...).
	StagesMS map[string]float64 `json:"stages_ms,omitempty"`
}

// sloReport is the run-level summary riding alongside the benchmarks.
type sloReport struct {
	Target        string               `json:"target"`
	OfferedRate   float64              `json:"offered_rate_per_sec"`
	DurationSec   float64              `json:"duration_sec"`
	Arrivals      int                  `json:"arrivals"`
	Completed     int                  `json:"completed"`
	Rejected      int                  `json:"rejected"`
	Errors        int                  `json:"errors"`
	RejectRate    float64              `json:"reject_rate"`
	Goodput       float64              `json:"goodput_jobs_per_sec"`
	Classes       map[string]classSLO  `json:"classes"`
	Tenants       map[string]tenantSLO `json:"tenants"`
	Slowest       []slowRequest        `json:"slowest,omitempty"`
	VerifiedSpecs int                  `json:"verified_specs,omitempty"`
}

// report is the full pimload output document.
type report struct {
	Schema     string       `json:"schema"`
	Benchmarks []benchEntry `json:"benchmarks"`
	SLO        *sloReport   `json:"slo"`
}

// buildReport aggregates the run's samples into the report document.
func buildReport(cfg loadConfig, samples []sample, elapsed time.Duration) *report {
	slo := &sloReport{
		Target:      cfg.Target,
		OfferedRate: cfg.Rate,
		DurationSec: elapsed.Seconds(),
		Arrivals:    len(samples),
		Classes:     map[string]classSLO{},
		Tenants:     map[string]tenantSLO{},
	}
	type dists struct{ admit, e2e stats.Distribution }
	classDist := map[string]*dists{}
	for _, s := range samples {
		c := slo.Classes[s.Class]
		tn := slo.Tenants[s.Tenant]
		c.Arrivals++
		tn.Arrivals++
		d := classDist[s.Class]
		if d == nil {
			d = &dists{}
			classDist[s.Class] = d
		}
		switch {
		case s.OK:
			c.Completed++
			tn.Completed++
			slo.Completed++
			d.admit.Observe(s.AdmitWaitMS)
			d.e2e.Observe(s.E2EMS)
		case s.Status == 429:
			c.Rejected++
			tn.Rejected++
			slo.Rejected++
			if tn.RejectReasons == nil {
				tn.RejectReasons = map[string]int{}
			}
			tn.RejectReasons[s.Reason]++
		default:
			c.Errors++
			slo.Errors++
		}
		slo.Classes[s.Class] = c
		slo.Tenants[s.Tenant] = tn
	}
	for class, d := range classDist {
		c := slo.Classes[class]
		c.AdmitWait = summarize(&d.admit)
		c.E2E = summarize(&d.e2e)
		slo.Classes[class] = c
	}
	if len(samples) > 0 {
		slo.RejectRate = float64(slo.Rejected) / float64(len(samples))
	}
	if elapsed > 0 {
		slo.Goodput = float64(slo.Completed) / elapsed.Seconds()
	}
	slo.Slowest = collectSlowest(samples, 10)

	rep := &report{Schema: ReportSchema, SLO: slo}
	classes := make([]string, 0, len(slo.Classes))
	for c := range slo.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		c := slo.Classes[class]
		for _, q := range []struct {
			name string
			v    quantiles
		}{{"admit_wait", c.AdmitWait}, {"e2e", c.E2E}} {
			rep.Benchmarks = append(rep.Benchmarks,
				benchEntry{Name: fmt.Sprintf("LoadSLO/%s/%s_p50", class, q.name), Iterations: q.v.N, NsPerOp: msToNs(q.v.P50)},
				benchEntry{Name: fmt.Sprintf("LoadSLO/%s/%s_p95", class, q.name), Iterations: q.v.N, NsPerOp: msToNs(q.v.P95)},
				benchEntry{Name: fmt.Sprintf("LoadSLO/%s/%s_p99", class, q.name), Iterations: q.v.N, NsPerOp: msToNs(q.v.P99)},
			)
		}
	}
	if slo.Completed > 0 {
		rep.Benchmarks = append(rep.Benchmarks, benchEntry{
			Name:       "LoadSLO/ns_per_completed_job",
			Iterations: slo.Completed,
			NsPerOp:    int64(elapsed) / int64(slo.Completed),
		})
	}
	return rep
}

// collectSlowest picks the n slowest completed requests, slowest first.
// Stage breakdowns are filled in later by fetching each job's trace —
// buildReport itself stays a pure aggregation over the samples.
func collectSlowest(samples []sample, n int) []slowRequest {
	var ok []sample
	for _, s := range samples {
		if s.OK {
			ok = append(ok, s)
		}
	}
	sort.Slice(ok, func(i, j int) bool {
		if ok[i].E2EMS != ok[j].E2EMS {
			return ok[i].E2EMS > ok[j].E2EMS
		}
		return ok[i].JobID < ok[j].JobID
	})
	if len(ok) > n {
		ok = ok[:n]
	}
	out := make([]slowRequest, 0, len(ok))
	for _, s := range ok {
		out = append(out, slowRequest{
			JobID:   s.JobID,
			TraceID: s.TraceID,
			Tenant:  s.Tenant,
			Class:   s.Class,
			E2EMS:   s.E2EMS,
		})
	}
	return out
}

// summarize reduces a distribution to its SLO quantiles.
func summarize(d *stats.Distribution) quantiles {
	if d.N() == 0 {
		return quantiles{}
	}
	return quantiles{
		N:   d.N(),
		P50: d.Percentile(50),
		P95: d.Percentile(95),
		P99: d.Percentile(99),
		Max: d.Percentile(100),
	}
}

func msToNs(ms float64) int64 { return int64(ms * float64(time.Millisecond)) }

// writeReport writes the document as indented JSON.
func writeReport(path string, rep *report) error {
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(body, '\n'), 0o644)
}

// printSummary writes the human-readable run summary.
func printSummary(w io.Writer, rep *report) {
	s := rep.SLO
	fmt.Fprintf(w, "pimload: %d arrivals in %.1fs — %d completed (%.3g/s goodput), %d rejected (%.1f%%), %d errors\n",
		s.Arrivals, s.DurationSec, s.Completed, s.Goodput, s.Rejected, s.RejectRate*100, s.Errors)
	classes := make([]string, 0, len(s.Classes))
	for c := range s.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, class := range classes {
		c := s.Classes[class]
		fmt.Fprintf(w, "  %-11s admit wait p50/p95/p99 = %.0f/%.0f/%.0f ms, e2e p50/p95/p99 = %.0f/%.0f/%.0f ms (%d ok, %d rejected)\n",
			class, c.AdmitWait.P50, c.AdmitWait.P95, c.AdmitWait.P99,
			c.E2E.P50, c.E2E.P95, c.E2E.P99, c.Completed, c.Rejected)
	}
	tenants := make([]string, 0, len(s.Tenants))
	for t := range s.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		t := s.Tenants[name]
		fmt.Fprintf(w, "  tenant %-10s %d arrivals, %d completed, %d rejected %v\n",
			name, t.Arrivals, t.Completed, t.Rejected, t.RejectReasons)
	}
	if len(s.Slowest) > 0 {
		fmt.Fprintf(w, "  slowest %d requests:\n", len(s.Slowest))
		for _, r := range s.Slowest {
			trace := r.TraceID
			if trace == "" {
				trace = "-"
			}
			fmt.Fprintf(w, "    %8.0f ms  %-11s %-10s job=%s trace=%s%s\n",
				r.E2EMS, r.Class, r.Tenant, r.JobID, trace, stageSummary(r.StagesMS))
		}
	}
}

// stageSummary renders the top stage durations of one slow request as a
// trailing "  (run 812ms, simulate/raster 390ms, ...)" annotation. Empty
// when the trace was unsampled or unfetchable.
func stageSummary(stages map[string]float64) string {
	if len(stages) == 0 {
		return ""
	}
	type kv struct {
		name string
		ms   float64
	}
	top := make([]kv, 0, len(stages))
	for name, ms := range stages {
		top = append(top, kv{name, ms})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].ms != top[j].ms {
			return top[i].ms > top[j].ms
		}
		return top[i].name < top[j].name
	})
	if len(top) > 4 {
		top = top[:4]
	}
	parts := make([]string, 0, len(top))
	for _, s := range top {
		parts = append(parts, fmt.Sprintf("%s %.0fms", s.name, s.ms))
	}
	return "  (" + strings.Join(parts, ", ") + ")"
}

// hashJSON canonically hashes a value through its JSON encoding (Go maps
// marshal with sorted keys, so equal documents hash equally).
func hashJSON(v any) string {
	body, err := json.Marshal(v)
	if err != nil {
		return "unhashable:" + err.Error()
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// resultHash canonicalizes a server-returned result document the same
// way snapshotHash canonicalizes a locally computed one: decode to the
// snapshot type, drop the Build provenance stamp, hash the re-encoding.
func resultHash(raw json.RawMessage) string {
	if len(raw) == 0 {
		return ""
	}
	var s obs.Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return "unhashable:" + err.Error()
	}
	s.Build = nil
	return hashJSON(s)
}
