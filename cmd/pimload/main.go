// Command pimload drives a pimfarm endpoint with open-loop load and
// reports admission/latency SLOs. Arrivals are scheduled at a fixed rate
// regardless of how the server is coping (open-loop: a slow server faces
// a growing backlog, not a politely backing-off client), split across a
// tenant mix and an interactive/batch class mix. Every submission is a
// synchronous POST /v1/jobs?wait=true; the report aggregates admission
// wait and end-to-end latency quantiles per class, reject rates per
// tenant, and goodput, as a pim-render/bench/v1 document (with an extra
// "slo" block) so the repo's bench tooling can ingest it.
//
// Usage:
//
//	pimload -target http://localhost:8080 -rate 8 -duration 30s \
//	  -interactive 0.5 -tenants 'alice=key-alice:3,bob:1' -out BENCH_load.json
//
// -verify additionally checks result integrity: every job of the same
// spec must produce the same result under load, and that result must be
// byte-identical to an unloaded serial simulation run in-process.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	var (
		target      = flag.String("target", "http://localhost:8080", "pimfarm base URL")
		rate        = flag.Float64("rate", 8, "open-loop arrival rate (jobs/sec)")
		duration    = flag.Duration("duration", 30*time.Second, "load duration")
		interactive = flag.Float64("interactive", 0.5, "fraction of arrivals submitted as interactive (rest are batch)")
		tenantsSpec = flag.String("tenants", "anonymous", "tenant mix: name[=key][:weight],... (weights default 1)")
		game        = flag.String("game", "doom3", "workload game")
		width       = flag.Int("width", 320, "frame width")
		height      = flag.Int("height", 240, "frame height")
		design      = flag.String("design", "baseline", "design point (baseline, bpim, stfim, atfim)")
		distinct    = flag.Int("distinct", 16, "distinct job specs cycled via frame_index (controls the cache-hit mix)")
		batchFrames = flag.Int("batch-frames", 2, "frames per batch-class job (>= 2 so batch stays inferable)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-request client timeout (admission wait + simulation)")
		out         = flag.String("out", "pimload.json", "SLO report path (pim-render/bench/v1 JSON)")
		verify      = flag.Bool("verify", false, "verify per-spec result consistency under load and byte-identity against an unloaded in-process serial run")
	)
	flag.Parse()

	mix, err := parseTenantSpecs(*tenantsSpec)
	if err != nil {
		fatal(err)
	}
	if *rate <= 0 || *duration <= 0 {
		fatal(fmt.Errorf("need -rate > 0 and -duration > 0 (got %v, %v)", *rate, *duration))
	}
	if *interactive < 0 || *interactive > 1 {
		fatal(fmt.Errorf("-interactive must be in [0,1], got %v", *interactive))
	}
	if *distinct < 1 {
		*distinct = 1
	}
	if *batchFrames < 2 {
		*batchFrames = 2
	}

	cfg := loadConfig{
		Target:      *target,
		Rate:        *rate,
		Duration:    *duration,
		Interactive: *interactive,
		Tenants:     mix,
		Game:        *game,
		Width:       *width,
		Height:      *height,
		Design:      *design,
		Distinct:    *distinct,
		BatchFrames: *batchFrames,
		Timeout:     *timeout,
	}
	fmt.Fprintf(os.Stderr, "pimload: %s for %s at %.3g jobs/s (%d tenants, %.0f%% interactive, %d distinct specs)\n",
		cfg.Target, cfg.Duration, cfg.Rate, len(mix), cfg.Interactive*100, cfg.Distinct)

	samples, elapsed := runLoad(context.Background(), cfg)
	rep := buildReport(cfg, samples, elapsed)
	fetchSlowestStages(cfg, rep.SLO.Slowest)

	if *verify {
		n, err := verifyResults(cfg, samples)
		if err != nil {
			fatal(fmt.Errorf("verify: %w", err))
		}
		rep.SLO.VerifiedSpecs = n
		fmt.Fprintf(os.Stderr, "pimload: verified %d distinct specs byte-identical to unloaded serial run\n", n)
	}

	if err := writeReport(*out, rep); err != nil {
		fatal(err)
	}
	printSummary(os.Stderr, rep)
	fmt.Fprintf(os.Stderr, "pimload: report written to %s\n", *out)
}

// specKey identifies one distinct computation: a frame index at one
// class shape (interactive jobs render one frame; batch jobs sweep
// cfg.BatchFrames, so the two shapes are different cache entries).
type specKey struct {
	FrameIndex int
	Batch      bool
}

// verifyResults checks two properties over the run's completed jobs:
// within the load run, every completion of the same spec carried the same
// result (one hash per spec), and that hash matches an unloaded serial
// in-process simulation of the same spec — the admission layer's
// results-are-byte-identical guarantee, checked end to end.
func verifyResults(cfg loadConfig, samples []sample) (int, error) {
	bySpec := map[specKey]string{}
	for _, s := range samples {
		if !s.OK || s.ResultHash == "" {
			continue
		}
		k := specKey{FrameIndex: s.FrameIndex, Batch: s.Batch}
		if prev, ok := bySpec[k]; ok && prev != s.ResultHash {
			return 0, fmt.Errorf("spec %+v produced divergent results under load (%s vs %s)", k, prev, s.ResultHash)
		}
		bySpec[k] = s.ResultHash
	}
	for k, want := range bySpec {
		sp := cfg.request(k.FrameIndex, k.Batch)
		sp.Shards = 1 // serial: the unloaded reference run
		rv, err := sp.Resolve()
		if err != nil {
			return 0, err
		}
		res, err := core.RunCachedContext(context.Background(), rv.Workload, rv.Options)
		if err != nil {
			return 0, err
		}
		if got := snapshotHash(res.Metrics()); got != want {
			return 0, fmt.Errorf("spec %+v: loaded result differs from unloaded serial simulation (%s vs %s)", k, want, got)
		}
	}
	return len(bySpec), nil
}

// snapshotHash canonicalizes a result snapshot for comparison: the Build
// provenance stamp names the producing binary, not the computation, so it
// is dropped before hashing.
func snapshotHash(s *obs.Snapshot) string {
	c := *s
	c.Build = nil
	return hashJSON(c)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimload:", err)
	os.Exit(1)
}
