package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/farm/admit"
	"repro/internal/farm/dist"
	"repro/internal/obs"
	"repro/internal/obs/dtrace"
	"repro/internal/obs/slogx"
	"repro/internal/obs/telem"
	"repro/internal/store"
	"repro/internal/suite"
)

// The POST /v1/jobs body is the canonical pim-render/spec/v1 simulation
// spec (suite.Spec): the same document pimsim flags build, suite files
// embed per case, dist lease grants carry, and the journal records —
// one wire format, one Spec → core.Options/CacheKey mapping.

// specClass resolves a spec's admission class, inferring one when unset:
// a multi-frame sweep is batch work, a single frame is interactive.
// Class inference is serving policy, so it lives here, not in the spec.
func specClass(sp *suite.Spec) (admit.Class, error) {
	if sp.Class == "" {
		if sp.Frames > 1 {
			return admit.Batch, nil
		}
		return admit.Interactive, nil
	}
	return admit.ParseClass(sp.Class)
}

// jobResponse is the GET /v1/jobs/{id} body: lifecycle view, the original
// request, and — once the job is done — the pim-render/metrics/v1 snapshot.
type jobResponse struct {
	farm.View
	Request *suite.Spec   `json:"request,omitempty"`
	Result  *obs.Snapshot `json:"result,omitempty"`
}

// server is the pimfarm HTTP API over one Farm and, optionally, the
// durable result store backing it.
type server struct {
	farm    *farm.Farm
	store   *store.Store
	mux     *http.ServeMux
	log     *slog.Logger
	metrics *telem.Registry
	pprofOn bool
	reqSeq  atomic.Uint64

	// coord, when set (enableDist), switches job execution to the
	// distributed path: Run closures enqueue on the coordinator and block
	// for a worker's outcome instead of simulating in-process. journal,
	// when set, makes accepted jobs durable — every submission appends an
	// enqueue record and every settled job a terminal record, so a
	// restarted coordinator replays what was in flight.
	coord   *dist.Coordinator
	journal *dist.Journal

	// admit, when set (enableAdmit), gates every POST /v1/jobs through
	// multi-tenant admission control: per-tenant rate limits and quotas,
	// class-ordered bounded queueing, and 429 + Retry-After load shedding.
	// admitTimeout bounds how long one submission may park in the
	// admission queue before it is shed as queue-full.
	admit        *admit.Controller
	admitTimeout time.Duration

	// profiles holds captured frame-anatomy artifacts keyed by job ID
	// (jobs submitted with "profile": true that really simulated). Entries
	// are pruned once the farm no longer retains the job, or — when
	// profileTTL is positive — once they outlive the TTL; pruning runs on
	// every store and read, so the map is bounded without a janitor.
	profiles   sync.Map // string -> profileEntry
	profileTTL time.Duration

	// Distributed tracing (see trace.go). traceSample is the fraction of
	// jobs minted a sampled trace context at submission; traces retains
	// assembled per-job timelines (same pruning discipline as profiles,
	// bounded by traceTTL); tsum aggregates stage durations for GET
	// /v1/traces/summary.
	traceSample float64
	traceTTL    time.Duration
	traces      sync.Map // string -> traceEntry
	tsum        *dtrace.Summary

	// suites tracks accepted suite runs (POST /v1/suites): each is a
	// batch of ordinary farm jobs plus the grouping needed for the
	// suite-level roll-up views. See suites.go.
	suites suiteState
}

// profileEntry is one retained frame-anatomy artifact plus its capture
// time (the TTL clock).
type profileEntry struct {
	fp *obs.FrameProfile
	at time.Time
}

// newServer builds the API handler (httptest mounts it directly); st may be
// nil when the farm runs without persistence. The logger defaults to
// discard and the metrics registry to the process default; main overrides
// them via the exported fields before serving.
func newServer(f *farm.Farm, st *store.Store) *server {
	s := &server{
		farm:        f,
		store:       st,
		mux:         http.NewServeMux(),
		log:         slogx.Discard(),
		metrics:     telem.Default(),
		traceSample: 1,
		tsum:        dtrace.NewSummary(0, 0),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/profile", s.handleProfile)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/traces/summary", s.handleTraceSummary)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/suites", s.handleSuiteSubmit)
	s.mux.HandleFunc("GET /v1/suites", s.handleSuiteList)
	s.mux.HandleFunc("GET /v1/suites/{id}", s.handleSuiteGet)
	s.mux.HandleFunc("GET /v1/suites/{id}/events", s.handleSuiteEvents)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", s.handlePprof)
	// Method-less fallbacks: a known path with the wrong verb answers a JSON
	// 405 with Allow, and anything else a JSON 404 — clients always get a
	// machine-readable error body.
	s.mux.HandleFunc("/v1/jobs", methodNotAllowed("GET, POST"))
	s.mux.HandleFunc("/v1/jobs/{id}", methodNotAllowed("GET, DELETE"))
	s.mux.HandleFunc("/v1/jobs/{id}/events", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/jobs/{id}/profile", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/jobs/{id}/trace", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/traces/summary", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/suites", methodNotAllowed("GET, POST"))
	s.mux.HandleFunc("/v1/suites/{id}", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/suites/{id}/events", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/experiments", methodNotAllowed("GET"))
	s.mux.HandleFunc("/healthz", methodNotAllowed("GET"))
	s.mux.HandleFunc("/varz", methodNotAllowed("GET"))
	s.mux.HandleFunc("/metrics", methodNotAllowed("GET"))
	s.mux.HandleFunc("/", handleUnknown)
	return s
}

// enableAdmit puts the admission controller in front of job submission.
// timeout bounds the in-queue wait per submission (<= 0 selects
// DefaultAdmitTimeout). Admission is scheduling-only: it decides when and
// whether a job enters the farm, never what it computes, so results stay
// byte-identical to an unadmitted run.
func (s *server) enableAdmit(c *admit.Controller, timeout time.Duration) {
	if timeout <= 0 {
		timeout = DefaultAdmitTimeout
	}
	s.admit = c
	s.admitTimeout = timeout
}

// DefaultAdmitTimeout bounds how long a submission may wait in the
// admission queue before it is shed with 429.
const DefaultAdmitTimeout = 30 * time.Second

// enableDist attaches the distributed coordinator: the lease-protocol and
// worker-introspection endpoints are mounted on the server mux (inheriting
// the X-Request-ID / request-log middleware) and every subsequently built
// job dispatches to remote workers instead of simulating in-process.
func (s *server) enableDist(c *dist.Coordinator) {
	s.coord = c
	c.Routes(s.mux)
	s.mux.HandleFunc("/v1/leases", methodNotAllowed("POST"))
	s.mux.HandleFunc("/v1/leases/{id}/renew", methodNotAllowed("POST"))
	s.mux.HandleFunc("/v1/leases/{id}/progress", methodNotAllowed("POST"))
	s.mux.HandleFunc("/v1/leases/{id}/complete", methodNotAllowed("POST"))
	s.mux.HandleFunc("/v1/workers", methodNotAllowed("GET"))
}

// reqIDKey carries the request ID in the request context so error bodies
// (httpError) can echo it without replumbing every handler signature.
type reqIDKey struct{}

// requestID returns the ID ServeHTTP assigned this request ("" outside
// the middleware, e.g. direct handler tests).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey{}).(string)
	return id
}

// sanitizeRequestID validates a client-supplied X-Request-ID: short and
// header/log-safe, or "" to mint a fresh one.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return ""
		}
	}
	return id
}

// ServeHTTP stamps every request with an ID — honoring a well-formed
// client-supplied X-Request-ID so callers can correlate retries — answers
// it in the X-Request-ID response header and in every JSON error body,
// carries a request-scoped logger in the context, and logs one structured
// line per request with the status and duration.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := sanitizeRequestID(r.Header.Get("X-Request-ID"))
	if reqID == "" {
		reqID = fmt.Sprintf("r-%06d", s.reqSeq.Add(1))
	}
	log := s.log.With("req", reqID)
	w.Header().Set("X-Request-ID", reqID)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	ctx := context.WithValue(slogx.WithLogger(r.Context(), log), reqIDKey{}, reqID)
	r = r.WithContext(ctx)
	s.mux.ServeHTTP(sw, r)
	log.Info("request", "method", r.Method, "path", r.URL.Path,
		"status", sw.status, "dur", time.Since(start).Round(time.Microsecond).String())
}

// statusWriter records the response status for the request log. It
// forwards Flush so streaming handlers (SSE) keep working through the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req suite.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	class, err := specClass(&req)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	task, err := s.buildTask(&req, requestID(r))
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	task.Class = class.String()

	// Admission: authenticate the tenant, then hold a slot (parking in the
	// class-ordered queue under load). Rejections — over rate, over quota,
	// queue full, or wait timed out — shed with 429 + Retry-After before
	// the job is journaled or enters the farm. The ticket is held until
	// the job settles, so per-tenant quotas bound work in flight, not
	// merely submissions.
	var ticket *admit.Ticket
	if s.admit != nil {
		tenant, err := s.resolveTenant(r)
		if err != nil {
			httpError(w, r, http.StatusUnauthorized, err)
			return
		}
		actx, cancel := context.WithTimeout(r.Context(), s.admitTimeout)
		ticket, err = s.admit.Admit(actx, tenant, class)
		cancel()
		if err != nil {
			writeOverload(w, r, err)
			return
		}
		task.Tenant = ticket.Tenant()
		task.AdmitWait = ticket.Wait()
	}

	// Bound the wait for queue space so a saturated farm sheds load with
	// 503 instead of hanging the client. (With admission in front the farm
	// queue stays shallow — queueing happens at the admission layer, where
	// priority ordering applies.)
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	job, err := s.submit(ctx, task, &req)
	if err != nil {
		if ticket != nil {
			ticket.Release()
		}
		switch {
		case errors.Is(err, farm.ErrClosed), errors.Is(err, farm.ErrShutdown):
			httpError(w, r, http.StatusServiceUnavailable, errors.New("farm is shutting down"))
		case errors.Is(err, context.DeadlineExceeded):
			httpError(w, r, http.StatusServiceUnavailable, errors.New("job queue is full"))
		default:
			httpError(w, r, http.StatusInternalServerError, err)
		}
		return
	}
	if ticket != nil {
		t := ticket
		go func() {
			<-job.Done()
			t.Release()
		}()
	}

	// ?wait=true turns the submit synchronous: the response carries the
	// finished job (metrics included). A client that hangs up while
	// waiting cancels the job — abandoned work is abandoned promptly.
	if r.URL.Query().Get("wait") == "true" {
		if _, err := job.Wait(r.Context()); err != nil && r.Context().Err() != nil {
			s.farm.Cancel(job.ID())
			httpError(w, r, http.StatusRequestTimeout, fmt.Errorf("client went away: %w", err))
			return
		}
		s.writeJob(w, http.StatusOK, job)
		return
	}
	writeJSON(w, http.StatusAccepted, jobResponse{View: job.View(), Request: &req})
}

// resolveTenant authenticates the submission against the admission
// controller's tenant set: an API key from "Authorization: Bearer <key>"
// (key wins), or a bare ?tenant= name for unkeyed/dev tenants.
func (s *server) resolveTenant(r *http.Request) (*admit.Tenant, error) {
	var key string
	if h := r.Header.Get("Authorization"); h != "" {
		bearer, ok := strings.CutPrefix(h, "Bearer ")
		if !ok {
			return nil, errors.New("authorization header must be \"Bearer <api-key>\"")
		}
		key = strings.TrimSpace(bearer)
	}
	return s.admit.Tenants().Authorize(key, r.URL.Query().Get("tenant"))
}

// writeOverload renders an admission rejection: HTTP 429 with a
// Retry-After header (whole seconds, rounded up) and a machine-readable
// body carrying the precise back-off and reason.
func writeOverload(w http.ResponseWriter, r *http.Request, err error) {
	var oe *admit.OverloadError
	if !errors.As(err, &oe) {
		httpError(w, r, http.StatusServiceUnavailable, err)
		return
	}
	secs := int(math.Ceil(oe.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":          oe.Error(),
		"reason":         oe.Reason.String(),
		"tenant":         oe.Tenant,
		"class":          oe.Class.String(),
		"retry_after_ms": oe.RetryAfter.Milliseconds(),
		"request_id":     requestID(r),
	})
}

// buildTask resolves the spec through the canonical Spec → Options/
// CacheKey mapping and assembles the farm task. The Run closure either
// simulates in-process (single-node mode) or dispatches to the
// distributed coordinator (dist mode); everything else about the job —
// dedup key, SSE lifecycle, retry budget, cache tiers — is identical in
// both modes.
func (s *server) buildTask(req *suite.Spec, origin string) (farm.Task, error) {
	rv, err := req.Resolve()
	if err != nil {
		return farm.Task{}, err
	}
	t := farm.Task{
		Key:    rv.Key,
		Label:  req.Label(),
		Origin: origin,
		Meta:   req,
	}
	// Mint the distributed-trace context, seeded from the origin (the
	// sanitized X-Request-ID, or "journal:<rec>" for replays — a replayed
	// job always gets a fresh trace root, never its ancestor's). Unsampled
	// jobs carry no context at all: zero spans recorded anywhere.
	if tc := dtrace.Mint(origin, s.traceSample); tc.Sampled {
		t.Trace = tc.String()
	}
	if s.coord != nil {
		t.Run = s.distRun(req, t.Key, t.Label)
	} else {
		t.Run = s.localRun(req, rv)
	}
	return t, nil
}

// localRun executes the job in-process through the tiered cache path.
func (s *server) localRun(req *suite.Spec, rv suite.Resolved) func(context.Context) (any, error) {
	return func(runCtx context.Context) (any, error) {
		// The job's own context: canceled by DELETE /v1/jobs/{id},
		// by a waiting client disconnecting, or on forced shutdown.
		// Simulation progress is published onto the job's event stream
		// (GET /v1/jobs/{id}/events); Progress is runtime-only and does
		// not affect cache keys or stored results.
		ropts := rv.Options
		var fp *obs.FrameProfile
		j, hasJob := farm.JobFromContext(runCtx)
		// Sampled jobs record "worker"-side spans here too — in local mode
		// the serving process is the worker, on the same clock, so the
		// assembled timeline has zero skew and no wire spans.
		var rec *dtrace.Recorder
		var stages *dtrace.StageTracker
		if hasJob {
			if tc, ok := dtrace.Parse(j.Trace()); ok && tc.Sampled {
				rec = dtrace.NewRecorder(tc, 0)
				stages = &dtrace.StageTracker{}
			}
		}
		if hasJob {
			ropts.Progress = func(p core.Progress) {
				j.Publish("progress", p)
				stages.Observe(p.Frame, string(p.Stage), time.Now())
			}
		}
		if req.Profile {
			// Frame-anatomy capture (GET /v1/jobs/{id}/profile).
			// Runtime-only, so it is filled only when this job really
			// simulates: a memory/store hit or a singleflight twin
			// leaves it empty and the endpoint answers 404.
			fp = &obs.FrameProfile{}
			ropts.Profile = fp
		}
		runStart := time.Now()
		res, err := core.RunCachedContext(runCtx, rv.Workload, ropts)
		if rec != nil {
			end := time.Now()
			recordRunSpans(rec, stages, runStart, end, err)
			s.recordTrace(dtrace.Assembly{
				Context: rec.Context(), JobID: j.ID(), Label: j.Label(),
				Tenant: j.Tenant(), Class: j.Class(),
				Coordinator: coordSpans(j, runStart, end),
				Worker: &dtrace.WorkerReport{
					Context: j.Trace(), Worker: "local",
					Spans: rec.Spans(), Dropped: rec.Dropped(),
				},
			})
		}
		if err != nil {
			return nil, err
		}
		if fp != nil && hasJob && len(fp.Frames) > 0 {
			s.storeProfile(j.ID(), fp)
		}
		return res, nil
	}
}

// distRun dispatches the job to a remote worker through the coordinator
// and blocks until a worker delivers the outcome. Worker progress
// documents are republished onto the job's SSE stream, so GET
// /v1/jobs/{id}/events behaves identically to single-node mode. Lease
// expiries (worker crashed or stalled) requeue inside the coordinator
// without returning from Run, so the farm's retry budget is spent only on
// genuine execution errors. Canceling the job abandons the dispatch,
// which invalidates any outstanding lease — the worker's next heartbeat
// learns the work is dead and aborts. Frame-anatomy capture ("profile":
// true) is a no-op in dist mode: profiles are runtime artifacts of the
// process that simulates, which is the worker, not the coordinator.
func (s *server) distRun(req *suite.Spec, key, label string) func(context.Context) (any, error) {
	return func(runCtx context.Context) (any, error) {
		spec, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("dist: encode spec: %w", err)
		}
		var onProgress func(json.RawMessage)
		var class, trace, origin string
		j, hasJob := farm.JobFromContext(runCtx)
		if hasJob {
			onProgress = func(raw json.RawMessage) { j.Publish("progress", raw) }
			class = j.Class()
			trace = j.Trace()
			origin = j.Origin()
		}
		enqStart := time.Now()
		id, ch, err := s.coord.Enqueue(dist.Job{
			Key: key, Label: label, Class: class, Spec: spec,
			Origin: origin, Trace: trace, OnProgress: onProgress,
		})
		if err != nil {
			return nil, err
		}
		select {
		case o := <-ch:
			if tc, ok := dtrace.Parse(trace); ok && tc.Sampled {
				s.recordDistTrace(j, tc, &o, enqStart)
			}
			if o.Err != "" {
				return nil, fmt.Errorf("dist: worker %s: %s", o.Worker, o.Err)
			}
			res, err := core.DecodeResultPayload(key, o.Payload)
			if err != nil {
				return nil, fmt.Errorf("dist: worker %s result: %w", o.Worker, err)
			}
			return res, nil
		case <-runCtx.Done():
			s.coord.Abandon(id)
			return nil, runCtx.Err()
		}
	}
}

// submit journals the job (when a journal is attached) and enqueues it on
// the farm. The journal record is settled when the job reaches a terminal
// state; a job accepted but never settled — the coordinator died first —
// replays on the next start.
func (s *server) submit(ctx context.Context, t farm.Task, req *suite.Spec) (*farm.Job, error) {
	var recID string
	if s.journal != nil {
		spec, err := json.Marshal(req)
		if err == nil {
			recID, err = s.journal.Enqueue(t.Key, t.Label, spec)
		}
		if err != nil {
			// Durability is the journal's whole point: refuse the job
			// rather than accept it on a dead disk.
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	job, err := s.farm.Submit(ctx, t)
	if err != nil {
		if recID != "" {
			if terr := s.journal.Terminal(recID, dist.OpCanceled); terr != nil {
				s.log.Error("journal terminal", "rec", recID, "err", terr.Error())
			}
		}
		return nil, err
	}
	if recID != "" {
		go s.settleJournal(job, recID)
	}
	return job, nil
}

// settleJournal writes the journal terminal record once the job settles,
// mapping the farm state to the journal op.
func (s *server) settleJournal(job *farm.Job, recID string) {
	<-job.Done()
	op := dist.OpDone
	switch job.State() {
	case farm.Failed:
		op = dist.OpFailed
	case farm.Canceled:
		op = dist.OpCanceled
	}
	if err := s.journal.Terminal(recID, op); err != nil {
		s.log.Error("journal terminal", "rec", recID, "err", err.Error())
	}
}

// replayJournal resubmits the journal's pending records — jobs that were
// queued or leased when the previous coordinator process died. Each
// replayed job settles the same journal record its original submission
// opened, so recovery is exactly-once: a record replays until some
// incarnation of the job reaches a terminal state, and never again after.
// Records whose spec no longer parses (simulator evolved across the
// restart) are settled as failed rather than wedging the journal.
func (s *server) replayJournal() {
	if s.journal == nil {
		return
	}
	pend := s.journal.Pending()
	if len(pend) == 0 {
		return
	}
	recovered := 0
	for _, rec := range pend {
		var req suite.Spec
		if err := json.Unmarshal(rec.Spec, &req); err != nil {
			s.log.Error("journal replay: bad spec", "rec", rec.ID, "err", err.Error())
			_ = s.journal.Terminal(rec.ID, dist.OpFailed)
			continue
		}
		task, err := s.buildTask(&req, "journal:"+rec.ID)
		if err != nil {
			s.log.Error("journal replay: stale job", "rec", rec.ID, "err", err.Error())
			_ = s.journal.Terminal(rec.ID, dist.OpFailed)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		job, err := s.farm.Submit(ctx, task)
		cancel()
		if err != nil {
			// Leave the record pending: the next restart retries it.
			s.log.Error("journal replay: submit", "rec", rec.ID, "err", err.Error())
			continue
		}
		go s.settleJournal(job, rec.ID)
		recovered++
	}
	s.log.Info("journal replay", "pending", len(pend), "recovered", recovered)
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.farm.Jobs()
	views := make([]farm.View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.farm.Job(r.PathValue("id"))
	if !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	s.writeJob(w, http.StatusOK, j)
}

// handleCancel is DELETE /v1/jobs/{id}: cancel a queued or running job.
// Unknown ids answer 404; jobs already terminal answer 409 (their outcome
// is settled); a successful cancellation answers 200 with the job view.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.farm.Job(id)
	if !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if !s.farm.Cancel(id) {
		httpError(w, r, http.StatusConflict,
			fmt.Errorf("job %s already %s", id, j.State()))
		return
	}
	s.writeJob(w, http.StatusOK, j)
}

// handleExperiments is GET /v1/experiments: the paper's figure/table
// catalog in presentation order (the names RunExperiment accepts).
func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": repro.Registry().Names()})
}

// writeJob renders the full job response: lifecycle view, original
// request, and the metrics snapshot once the job is done.
func (s *server) writeJob(w http.ResponseWriter, status int, j *farm.Job) {
	resp := jobResponse{View: j.View()}
	if req, ok := j.Meta().(*suite.Spec); ok {
		resp.Request = req
	}
	if v, err := j.Result(); err == nil {
		if res, ok := v.(*core.Result); ok {
			resp.Result = res.Metrics()
		}
	}
	writeJSON(w, status, resp)
}

// storeProfile records a finished job's frame-anatomy artifact and prunes
// stale entries (see pruneProfiles).
func (s *server) storeProfile(id string, fp *obs.FrameProfile) {
	s.pruneProfiles()
	s.profiles.Store(id, profileEntry{fp: fp, at: time.Now()})
}

// pruneProfiles drops retained profile artifacts for jobs the farm has
// since evicted and — when a profile TTL is configured — artifacts of
// terminal jobs older than the TTL, so long-retained finished jobs stop
// pinning their (large) frame-anatomy documents. Called from every store
// and read, which bounds the map without a background janitor.
func (s *server) pruneProfiles() {
	live := map[string]bool{}
	for _, j := range s.farm.Jobs() {
		live[j.ID()] = true
	}
	var cut time.Time
	if s.profileTTL > 0 {
		cut = time.Now().Add(-s.profileTTL)
	}
	s.profiles.Range(func(k, v any) bool {
		id := k.(string)
		if !live[id] {
			s.profiles.Delete(k)
			return true
		}
		if e := v.(profileEntry); !cut.IsZero() && e.at.Before(cut) {
			if j, ok := s.farm.Job(id); ok && j.State().Terminal() {
				s.profiles.Delete(k)
			}
		}
		return true
	})
}

// handleProfile is GET /v1/jobs/{id}/profile: the job's captured
// pim-render/frameprofile/v1 artifact. 404 when the job is unknown, was
// not submitted with "profile": true, is not finished, or was served from
// a cache tier (profiles exist only for jobs that really simulated).
func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.farm.Job(id); !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	s.pruneProfiles()
	v, ok := s.profiles.Load(id)
	if !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf(
			"no profile for job %s (submit with \"profile\": true; profiles are captured only when the job simulates rather than hitting a cache tier, and expire after the server's profile TTL)", id))
		return
	}
	writeJSON(w, http.StatusOK, v.(profileEntry).fp)
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleVarz(w http.ResponseWriter, r *http.Request) {
	resp := struct {
		farm.Counters
		Store    *store.Counters      `json:"store,omitempty"`
		RunCache map[string]uint64    `json:"run_cache"`
		BW       map[string][]float64 `json:"bw_utilization,omitempty"`
		// Dist is the coordinator view (queue, lease ops, per-worker
		// liveness); the key cannot be "workers" because farm.Counters
		// already publishes its pool size there.
		Dist *dist.Stats `json:"dist,omitempty"`
		// Admit is the admission-control view: free slots, per-class queue
		// depths and waiters, and per-tenant in-flight holds.
		Admit *admit.Stats `json:"admit,omitempty"`
	}{
		Counters: s.farm.Counters(),
		RunCache: core.RunCacheCounters(),
		BW:       s.latestBWHistograms(),
	}
	if s.store != nil {
		c := s.store.Counters()
		resp.Store = &c
	}
	if s.coord != nil {
		st := s.coord.Stats()
		resp.Dist = &st
	}
	if s.admit != nil {
		st := s.admit.Stats()
		resp.Admit = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// latestBWHistograms returns the bandwidth-meter utilization histograms
// (16 bins over the frame's busy span, per meter) from the most recently
// finished successful job, or nil when no job has completed yet.
func (s *server) latestBWHistograms() map[string][]float64 {
	var (
		newest   time.Time
		snapshot *obs.Snapshot
	)
	for _, j := range s.farm.Jobs() {
		v := j.View()
		if v.State != farm.Done.String() || v.Finished == nil {
			continue
		}
		if snapshot != nil && !v.Finished.After(newest) {
			continue
		}
		if res, err := j.Result(); err == nil {
			if r, ok := res.(*core.Result); ok {
				newest, snapshot = *v.Finished, r.Metrics()
			}
		}
	}
	if snapshot == nil {
		return nil
	}
	bw := make(map[string][]float64)
	for name, bins := range snapshot.Histograms {
		if meter, ok := strings.CutPrefix(name, "bw."); ok {
			bw[meter] = bins
		}
	}
	if len(bw) == 0 {
		return nil
	}
	return bw
}

// handleMetrics is GET /metrics: the process telem registry in Prometheus
// text exposition format (farm, store, core-cache, and live simulation
// instruments all land in the same registry).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	telem.SampleRuntime(s.metrics)
	if s.admit != nil {
		// Burn-rate gauges are sliding-window derived; refresh at scrape
		// time so pim_farm_slo_burn_ratio is current, not last-admission.
		s.admit.BurnRatios()
	}
	s.metrics.Handler().ServeHTTP(w, r)
}

// sseKeepalive is how often an idle event stream emits a comment line so
// intermediaries don't reap the connection.
const sseKeepalive = 15 * time.Second

// handleEvents is GET /v1/jobs/{id}/events: a Server-Sent Events stream of
// the job's lifecycle ("state") and simulation-progress ("progress")
// events. The stream replays retained history, follows the live tail, and
// terminates with an "end" event carrying the final job view once the job
// reaches a terminal state.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.farm.Job(id)
	if !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, r, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	events, unsubscribe := j.Subscribe()
	defer unsubscribe()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case ev, ok := <-events:
			if !ok {
				// Channel closed: the job is terminal (the final "state"
				// event has already been delivered). Close the stream with
				// an explicit terminal event so clients need not infer the
				// outcome from the connection dropping.
				writeSSE(w, "end", 0, j.View())
				fl.Flush()
				return
			}
			writeSSE(w, ev.Type, ev.Seq, ev.Data)
			fl.Flush()
		}
	}
}

// writeSSE renders one Server-Sent Event. Seq 0 omits the id field (used
// by the synthetic terminal "end" event, which is outside the job's
// sequence space).
func writeSSE(w io.Writer, typ string, seq int64, data any) {
	body, err := json.Marshal(data)
	if err != nil {
		body = []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	if seq > 0 {
		fmt.Fprintf(w, "id: %d\n", seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", typ, body)
}

// handlePprof serves net/http/pprof under /debug/pprof/ when the server
// was started with -pprof; otherwise the whole subtree answers 404 so
// profiling endpoints are never exposed by accident.
func (s *server) handlePprof(w http.ResponseWriter, r *http.Request) {
	if !s.pprofOn {
		httpError(w, r, http.StatusNotFound, errors.New("profiling disabled (start pimfarm with -pprof)"))
		return
	}
	switch strings.TrimPrefix(r.URL.Path, "/debug/pprof/") {
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		pprof.Index(w, r)
	}
}

// methodNotAllowed answers a JSON 405 for a known path hit with an
// unregistered verb, advertising the allowed set.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		httpError(w, r, http.StatusMethodNotAllowed,
			fmt.Errorf("method %s not allowed for %s (allowed: %s)", r.Method, r.URL.Path, allow))
	}
}

// handleUnknown answers a JSON 404 for paths outside the API surface.
func handleUnknown(w http.ResponseWriter, r *http.Request) {
	httpError(w, r, http.StatusNotFound, fmt.Errorf("no such endpoint %q", r.URL.Path))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful to do beyond logging.
		slog.Default().Error("encode response", "err", err.Error())
	}
}

// httpError writes the API's JSON error body. Every error response —
// 4xx and 5xx alike — carries the request's X-Request-ID, so a client
// holding only a logged error body can still correlate it with the
// server's request log.
func httpError(w http.ResponseWriter, r *http.Request, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if id := requestID(r); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, status, body)
}
