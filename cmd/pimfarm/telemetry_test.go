package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
)

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	id   string
	typ  string
	data string
}

// readSSE consumes an event stream until it closes, returning every event
// frame (comments are dropped).
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
		dirty  bool
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if dirty {
				events = append(events, cur)
			}
			cur, dirty = sseEvent{}, false
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "id: "):
			cur.id, dirty = strings.TrimPrefix(line, "id: "), true
		case strings.HasPrefix(line, "event: "):
			cur.typ, dirty = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "data: "):
			cur.data, dirty = strings.TrimPrefix(line, "data: "), true
		default:
			t.Errorf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading event stream: %v", err)
	}
	return events
}

// TestJobEventsStream is the live-progress contract: an event stream opened
// on a running job delivers its lifecycle "state" events, at least three
// simulation "progress" events for a multi-shard render, a terminal state,
// and an explicit "end" event — then the stream closes.
func TestJobEventsStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	core.ClearRunCache() // the job must really simulate to emit progress
	ts, _ := newTestServer(t)

	jr, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"atfim","shards":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}

	var progress, states int
	var lastState farm.View
	for _, ev := range events {
		switch ev.typ {
		case "progress":
			progress++
			var p core.Progress
			if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
				t.Fatalf("progress event %q is not a core.Progress: %v", ev.data, err)
			}
			if p.GroupsTotal < 0 || p.Cycles < 0 {
				t.Fatalf("nonsensical progress: %+v", p)
			}
		case "state":
			states++
			if err := json.Unmarshal([]byte(ev.data), &lastState); err != nil {
				t.Fatalf("state event %q is not a farm.View: %v", ev.data, err)
			}
		case "end":
		default:
			t.Errorf("unexpected event type %q", ev.typ)
		}
	}
	if progress < 3 {
		t.Errorf("got %d progress events, want >= 3", progress)
	}
	if states < 2 {
		t.Errorf("got %d state events, want >= 2 (queued/running + terminal)", states)
	}
	if lastState.State != "done" {
		t.Errorf("last state event = %q (%s), want done", lastState.State, lastState.Error)
	}
	last := events[len(events)-1]
	if last.typ != "end" {
		t.Fatalf("stream did not terminate with an end event (got %q)", last.typ)
	}
	var final farm.View
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("end event %q is not a farm.View: %v", last.data, err)
	}
	if final.State != "done" {
		t.Errorf("end event state = %q, want done", final.State)
	}

	// Event ids are strictly increasing within the job.
	prev := 0
	for _, ev := range events {
		if ev.id == "" {
			continue // the synthetic end event carries no id
		}
		var n int
		if _, err := fmt.Sscanf(ev.id, "%d", &n); err != nil {
			t.Fatalf("bad event id %q", ev.id)
		}
		if n <= prev {
			t.Fatalf("event ids not increasing: %d after %d", n, prev)
		}
		prev = n
	}
}

// TestJobEventsCancel proves a canceled job's stream closes with a terminal
// "canceled" state followed by the "end" event — subscribers are never left
// hanging on a job that will not run.
func TestJobEventsCancel(t *testing.T) {
	// One worker: the blocker occupies it so the watched job stays queued
	// until canceled.
	f := farm.New(farm.Config{Workers: 1, QueueDepth: 16})
	ts := httptest.NewServer(newServer(f, nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
	})

	blocker, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"baseline"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	victim, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"bpim"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + victim.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200", dresp.StatusCode)
	}

	events := readSSE(t, resp.Body) // returns only when the stream closes
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want at least a terminal state and end", len(events))
	}
	last := events[len(events)-1]
	if last.typ != "end" {
		t.Fatalf("stream did not terminate with an end event (got %q)", last.typ)
	}
	var final farm.View
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "canceled" {
		t.Errorf("end event state = %q, want canceled", final.State)
	}

	if final := pollJob(t, ts, blocker.ID); final.State != "done" {
		t.Fatalf("blocker state = %s (%s), want done", final.State, final.Error)
	}
}

// TestEventsUnknownJob pins the 404 contract for the events endpoint.
func TestEventsUnknownJob(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	decodeErrorBody(t, resp)
}

// TestMetricsEndpoint is the scrape contract end to end: after a completed
// job, GET /metrics serves valid Prometheus text exposition carrying the
// farm, run-cache, and simulation families with nonzero completions.
func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	ts, _ := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/jobs?wait=true", "application/json",
		strings.NewReader(`{"game":"doom3","width":320,"height":240,"design":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=true status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// The registry is process-wide, so exact counts depend on test order;
	// presence and nonzero floors are the stable contract.
	mustContain := []string{
		"# TYPE pimfarm_jobs_submitted_total counter",
		"# TYPE pimfarm_jobs_completed_total counter",
		`pimfarm_jobs_completed_total{state="done"}`,
		"# TYPE pimfarm_jobs_running gauge",
		"# TYPE pimfarm_job_run_seconds histogram",
		"pimfarm_job_run_seconds_bucket",
		`pim_runcache_requests_total{outcome="`,
		"# TYPE pim_sim_frames_completed_total counter",
		"# TYPE pim_sim_frames_inflight gauge",
	}
	for _, want := range mustContain {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Every non-comment line is `name{labels} value` with a parsable value.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable sample line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil && line[i+1:] != "+Inf" && line[i+1:] != "NaN" {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
	}
}

// TestVarzTelemetryBlocks checks the /varz additions: run-cache tier
// counters always present, bandwidth-meter utilization histograms once a
// job has finished.
func TestVarzTelemetryBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	ts, _ := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/jobs?wait=true", "application/json",
		strings.NewReader(`{"game":"doom3","width":320,"height":240,"design":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=true status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var varz struct {
		RunCache map[string]uint64    `json:"run_cache"`
		BW       map[string][]float64 `json:"bw_utilization"`
	}
	err = json.NewDecoder(resp.Body).Decode(&varz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range []string{"memory", "disk", "compute"} {
		if _, ok := varz.RunCache[tier]; !ok {
			t.Errorf("run_cache missing tier %q", tier)
		}
	}
	if len(varz.BW) == 0 {
		t.Fatal("no bandwidth histograms after a completed job")
	}
	for meter, bins := range varz.BW {
		if len(bins) == 0 {
			t.Errorf("meter %q has empty histogram", meter)
		}
		for _, v := range bins {
			if v < 0 || v > 1 {
				t.Errorf("meter %q has out-of-range utilization %g", meter, v)
			}
		}
	}
}

// TestPprofGate: the pprof subtree answers 404 unless enabled.
func TestPprofGate(t *testing.T) {
	f := farm.New(farm.Config{Workers: 1, QueueDepth: 4})
	s := newServer(f, nil)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
	})

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled pprof status = %d, want 404", resp.StatusCode)
	}
	decodeErrorBody(t, resp)

	s.pprofOn = true
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enabled pprof status = %d, want 200", resp.StatusCode)
	}
}

// TestRequestID: every response carries an X-Request-ID header.
func TestRequestID(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response missing X-Request-ID")
	}
}
