package main

// Distributed-mode tests at the HTTP API level: a coordinator server with
// real dist.Worker loops executing execGrant, exercising the acceptance
// contracts — dist results byte-identical to single-node, a worker killed
// mid-job requeues elsewhere without spending farm retries, and a
// coordinator restart replays journaled jobs exactly once.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/farm/dist"
	"repro/internal/obs/telem"
)

// newDistTestServer builds a coordinator-mode API server: jobs dispatch
// through cfg's coordinator instead of simulating in-process.
func newDistTestServer(t *testing.T, cfg dist.Config) (*httptest.Server, *server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telem.NewRegistry()
	}
	f := farm.New(farm.Config{Workers: 4, QueueDepth: 16})
	api := newServer(f, nil)
	coord := dist.NewCoordinator(cfg)
	api.enableDist(coord)
	ts := httptest.NewServer(api)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
		coord.Close()
	})
	return ts, api
}

// startTestWorker runs a real dist.Worker (the production execGrant) in
// the test process, torn down with the test.
func startTestWorker(t *testing.T, base, id string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	w := &dist.Worker{
		Client: &dist.Client{Base: base, Worker: id},
		Poll:   10 * time.Millisecond,
		Exec:   execGrant,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("worker did not stop")
		}
	})
}

// distVarz is the /varz shape the dist tests read back.
type distVarz struct {
	farm.Counters
	Dist *dist.Stats `json:"dist"`
}

func getVarz(t *testing.T, ts *httptest.Server) distVarz {
	t.Helper()
	resp, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v distVarz
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDistEndToEndMatchesLocal is the core acceptance: the same job run
// through coordinator + remote worker produces a metrics snapshot
// byte-identical to the single-node path, worker progress reaches the SSE
// stream, and the worker shows up in GET /v1/workers and the /varz dist
// block.
func TestDistEndToEndMatchesLocal(t *testing.T) {
	const body = `{"game":"doom3","width":320,"height":240,"design":"bpim"}`

	local, _ := newTestServer(t)
	jr, code := postJob(t, local, body)
	if code != http.StatusAccepted {
		t.Fatalf("local POST = %d", code)
	}
	localFinal := pollJob(t, local, jr.ID)
	if localFinal.State != "done" {
		t.Fatalf("local job: %s (%s)", localFinal.State, localFinal.Error)
	}
	localJSON, err := json.Marshal(localFinal.Result)
	if err != nil {
		t.Fatal(err)
	}

	// The in-process test worker shares the global run cache with the
	// local server above; clear it so the dist job genuinely re-simulates
	// on the worker instead of being a warm memory hit.
	core.ClearRunCache()

	ts, _ := newDistTestServer(t, dist.Config{TTL: time.Minute})
	startTestWorker(t, ts.URL, "e2e-worker")
	jr, code = postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("dist POST = %d", code)
	}
	distFinal := pollJob(t, ts, jr.ID)
	if distFinal.State != "done" {
		t.Fatalf("dist job: %s (%s)", distFinal.State, distFinal.Error)
	}
	distJSON, err := json.Marshal(distFinal.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(localJSON) != string(distJSON) {
		t.Fatalf("dist result differs from local:\nlocal: %.200s\ndist:  %.200s",
			localJSON, distJSON)
	}

	// The worker's progress documents were republished onto the job's SSE
	// stream; replaying the retained history must include at least one.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), "event: progress") {
		t.Error("no progress events on the dist job's SSE stream")
	}
	if !strings.Contains(string(events), "event: end") {
		t.Error("SSE stream did not terminate with an end event")
	}

	// Worker introspection: the executing worker is live and credited.
	resp, err = http.Get(ts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var wl struct {
		Workers []dist.WorkerView `json:"workers"`
	}
	err = json.NewDecoder(resp.Body).Decode(&wl)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Workers) != 1 || wl.Workers[0].ID != "e2e-worker" || !wl.Workers[0].Live {
		t.Fatalf("/v1/workers = %+v", wl.Workers)
	}
	if wl.Workers[0].Completed < 1 {
		t.Fatalf("worker completed = %d, want >= 1", wl.Workers[0].Completed)
	}

	v := getVarz(t, ts)
	if v.Dist == nil {
		t.Fatal("/varz has no dist block in coordinator mode")
	}
	if v.Dist.LeaseOps.Grants < 1 || v.Dist.WorkersLive != 1 {
		t.Fatalf("/varz dist = %+v", v.Dist)
	}

	// A repeated submission in dist mode is served from the result cache —
	// no second lease round-trip.
	grantsBefore := v.Dist.LeaseOps.Grants
	jr2, _ := postJob(t, ts, body)
	dup := pollJob(t, ts, jr2.ID)
	if dup.State != "done" || (!dup.CacheHit && !dup.Deduped) {
		t.Fatalf("duplicate dist submission re-dispatched: %+v", dup.View)
	}
	if v2 := getVarz(t, ts); v2.Dist.LeaseOps.Grants != grantsBefore {
		t.Fatalf("cache-served job granted a lease (%d -> %d)",
			grantsBefore, v2.Dist.LeaseOps.Grants)
	}
}

// TestDistWorkerDeathRequeues: a worker that leases a job and dies without
// a word (kill -9 semantics — no renew, no complete) loses the lease on
// TTL expiry; the job requeues and a healthy worker finishes it, without
// consuming any of the farm's retry budget.
func TestDistWorkerDeathRequeues(t *testing.T) {
	ts, _ := newDistTestServer(t, dist.Config{
		TTL: 150 * time.Millisecond, SweepEvery: 25 * time.Millisecond,
	})

	jr, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"baseline"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}

	// The doomed "worker": a raw client that takes the lease and vanishes.
	doomed := &dist.Client{Base: ts.URL, Worker: "doomed"}
	deadline := time.Now().Add(10 * time.Second)
	var got *dist.Grant
	for time.Now().Before(deadline) {
		g, err := doomed.Lease(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			got = g
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got == nil {
		t.Fatal("job never reached the lease queue")
	}

	startTestWorker(t, ts.URL, "survivor")
	final := pollJob(t, ts, jr.ID)
	if final.State != "done" {
		t.Fatalf("job after worker death: %s (%s)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Cycles <= 0 {
		t.Fatal("requeued job has no real result")
	}

	v := getVarz(t, ts)
	if v.Counters.Retries != 0 {
		t.Fatalf("lease expiry consumed %d farm retries; requeues must be free", v.Counters.Retries)
	}
	if v.Dist.LeaseOps.Expires < 1 || v.Dist.LeaseOps.Requeues < 1 {
		t.Fatalf("lease ops after worker death = %+v", v.Dist.LeaseOps)
	}
	var doomedView *dist.WorkerView
	for i := range v.Dist.Workers {
		if v.Dist.Workers[i].ID == "doomed" {
			doomedView = &v.Dist.Workers[i]
		}
	}
	if doomedView == nil || doomedView.Expired < 1 {
		t.Fatalf("doomed worker view = %+v", doomedView)
	}
}

// TestJournalReplayAcrossServerRestart: a coordinator killed with a job
// accepted but unfinished replays exactly that job on restart, a worker
// completes it, and the settled record never replays again.
func TestJournalReplayAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()

	// Incarnation 1: accept a job with no workers attached, then "crash"
	// (stop serving without any orderly farm/journal shutdown, so no
	// terminal record is ever written).
	f1 := farm.New(farm.Config{Workers: 2, QueueDepth: 16})
	api1 := newServer(f1, nil)
	coord1 := dist.NewCoordinator(dist.Config{TTL: time.Minute, Metrics: telem.NewRegistry()})
	api1.enableDist(coord1)
	jn1, err := dist.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	api1.journal = jn1
	api1.replayJournal()
	ts1 := httptest.NewServer(api1)

	const body = `{"game":"doom3","width":320,"height":240,"design":"stfim"}`
	if _, code := postJob(t, ts1, body); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if n := jn1.Len(); n != 1 {
		t.Fatalf("journal pending after accept = %d, want 1", n)
	}
	ts1.Close() // crash: f1, coord1 and jn1 are deliberately leaked

	// Incarnation 2: reopen the journal, replay, and let a worker finish
	// the recovered job.
	jn2, err := dist.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := jn2.Len(); n != 1 {
		t.Fatalf("journal pending after restart = %d, want exactly 1", n)
	}
	ts2, api2 := newDistTestServer(t, dist.Config{TTL: time.Minute})
	api2.journal = jn2
	api2.replayJournal()
	startTestWorker(t, ts2.URL, "recovery-worker")

	// The replayed job is a fresh farm job whose origin names the journal
	// record it will settle.
	var replayed farm.View
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && replayed.ID == "" {
		resp, err := http.Get(ts2.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []farm.View `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range list.Jobs {
			if strings.HasPrefix(j.Origin, "journal:") {
				replayed = j
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if replayed.ID == "" {
		t.Fatal("no replayed job appeared after restart")
	}
	final := pollJob(t, ts2, replayed.ID)
	if final.State != "done" {
		t.Fatalf("replayed job: %s (%s)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Cycles <= 0 {
		t.Fatal("replayed job has no real result")
	}

	// The terminal record lands asynchronously once the job settles; after
	// it does, a third incarnation has nothing to replay (exactly-once).
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && jn2.Len() != 0 {
		time.Sleep(20 * time.Millisecond)
	}
	if n := jn2.Len(); n != 0 {
		t.Fatalf("journal pending after completion = %d, want 0", n)
	}
	if err := jn2.Close(); err != nil {
		t.Fatal(err)
	}
	jn3, err := dist.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jn3.Close()
	if n := jn3.Len(); n != 0 {
		t.Fatalf("third incarnation would replay %d jobs, want 0", n)
	}
}
