package main

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/dist"
	"repro/internal/obs/dtrace"
)

// Distributed-trace assembly and serving. Every sampled job accumulates
// coordinator-side spans (admission wait, farm queue, dist queue/lease)
// and — in dist mode — a worker-side span report shipped back with the
// completion; recordTrace assembles them into one skew-corrected Chrome
// trace timeline served at GET /v1/jobs/{id}/trace. Tracing is
// observational-only: the context never enters cache keys and results
// are byte-identical with sampling on or off.

// traceEntry is one retained per-job timeline plus its capture time (the
// TTL clock), stored exactly like profile artifacts.
type traceEntry struct {
	tl *dtrace.Timeline
	at time.Time
}

// coordSpans builds the coordinator-side spans common to both execution
// modes: the job root, the admission wait, and the farm queue. runStart
// is when the Run closure began (execution dispatch), end when it
// finished.
func coordSpans(j *farm.Job, runStart, end time.Time) []dtrace.Span {
	v := j.View()
	admitStart := v.Enqueued.Add(-j.AdmitWait())
	root := dtrace.Span{
		Name: "job", StartUS: admitStart.UnixMicro(), EndUS: end.UnixMicro(),
		Attrs: map[string]string{"job": j.ID(), "label": j.Label()},
	}
	if v.Origin != "" {
		root.Attrs["origin"] = v.Origin
	}
	if v.Tenant != "" {
		root.Attrs["tenant"] = v.Tenant
		root.Attrs["class"] = v.Class
	}
	return []dtrace.Span{
		root,
		{Name: "admit", StartUS: admitStart.UnixMicro(), EndUS: v.Enqueued.UnixMicro()},
		{Name: "farm/queue", StartUS: v.Enqueued.UnixMicro(), EndUS: runStart.UnixMicro()},
	}
}

// recordDistTrace assembles one dist-mode execution's timeline: the
// coordinator-side spans plus the worker's span report from the outcome,
// skew-corrected by Assemble using the lease grant/completion stamps.
// Failed outcomes are recorded too — a trace of a failed job is exactly
// when you want the timeline.
func (s *server) recordDistTrace(j *farm.Job, tc dtrace.Context, o *dist.Outcome, enqStart time.Time) {
	if j == nil {
		return
	}
	end := time.Now()
	spans := coordSpans(j, enqStart, end)
	a := dtrace.Assembly{
		Context: tc, JobID: j.ID(), Label: j.Label(),
		Tenant: j.Tenant(), Class: j.Class(),
		Worker: o.Trace,
	}
	if !o.Granted.IsZero() {
		spans = append(spans, dtrace.Span{Name: "dist/queue",
			StartUS: enqStart.UnixMicro(), EndUS: o.Granted.UnixMicro()})
		a.GrantUS = o.Granted.UnixMicro()
	}
	if !o.Completed.IsZero() {
		attrs := map[string]string{"worker": o.Worker}
		if o.Requeues > 0 {
			attrs["requeues"] = strconv.Itoa(o.Requeues)
		}
		if o.Err != "" {
			attrs["error"] = o.Err
		}
		leaseStart := o.Granted
		if leaseStart.IsZero() {
			leaseStart = enqStart
		}
		spans = append(spans, dtrace.Span{Name: "dist/lease",
			StartUS: leaseStart.UnixMicro(), EndUS: o.Completed.UnixMicro(), Attrs: attrs})
		a.CompleteUS = o.Completed.UnixMicro()
	}
	a.Coordinator = spans
	s.recordTrace(a)
}

// recordRunSpans emits the execution-side spans bracketing one
// core.RunCachedContext call: the "run" span, the "tiers" span (cache
// lookup — everything before the first progress callback; the whole run
// on a warm hit), and the per-frame simulate-stage spans. Shared by the
// local execution path and the dist worker's ExecFunc.
func recordRunSpans(rec *dtrace.Recorder, stages *dtrace.StageTracker, start, end time.Time, err error) {
	var attrs map[string]string
	if err != nil {
		attrs = map[string]string{"error": err.Error()}
	}
	rec.Span("worker", "run", start, end, attrs)
	if first, ok := stages.FirstSeen(); ok {
		rec.Span("worker", "tiers", start, first, nil)
	} else if err == nil {
		rec.Span("worker", "tiers", start, end, map[string]string{"hit": "true"})
	}
	stages.Flush(rec, "simulate")
}

// recordTrace assembles and retains one finished execution's timeline
// and feeds the per-class/tenant stage aggregates.
func (s *server) recordTrace(a dtrace.Assembly) {
	tl := dtrace.Assemble(a)
	s.storeTrace(a.JobID, tl)
	s.tsum.Observe(a.Class, a.Tenant, tl.StageDurations())
}

// storeTrace records a job's assembled timeline and prunes stale entries
// (see pruneTraces).
func (s *server) storeTrace(id string, tl *dtrace.Timeline) {
	s.pruneTraces()
	s.traces.Store(id, traceEntry{tl: tl, at: time.Now()})
}

// pruneTraces drops retained timelines for jobs the farm has since
// evicted and — when a trace TTL is configured — timelines of terminal
// jobs older than the TTL. Called from every store and read, which
// bounds the map without a background janitor (the same discipline as
// pruneProfiles).
func (s *server) pruneTraces() {
	live := map[string]bool{}
	for _, j := range s.farm.Jobs() {
		live[j.ID()] = true
	}
	var cut time.Time
	if s.traceTTL > 0 {
		cut = time.Now().Add(-s.traceTTL)
	}
	s.traces.Range(func(k, v any) bool {
		id := k.(string)
		if !live[id] {
			s.traces.Delete(k)
			return true
		}
		if e := v.(traceEntry); !cut.IsZero() && e.at.Before(cut) {
			if j, ok := s.farm.Job(id); ok && j.State().Terminal() {
				s.traces.Delete(k)
			}
		}
		return true
	})
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the job's assembled
// pim-render/trace/v1 timeline (Chrome trace-event JSON; load it in
// chrome://tracing or Perfetto). 404 when the job is unknown, was not
// sampled, has not executed (cache hits and dedup followers never run),
// or the timeline expired.
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.farm.Job(id); !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	s.pruneTraces()
	v, ok := s.traces.Load(id)
	if !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf(
			"no trace for job %s (traces exist only for sampled jobs that really executed — not cache hits or dedup followers — and expire after the server's trace TTL)", id))
		return
	}
	writeJSON(w, http.StatusOK, v.(traceEntry).tl)
}

// handleTraceSummary is GET /v1/traces/summary: per-class and per-tenant
// stage-duration quantiles aggregated over recently sampled jobs.
func (s *server) handleTraceSummary(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tsum.Snapshot())
}
