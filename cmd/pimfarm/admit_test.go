package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/admit"
	"repro/internal/obs/telem"
)

// newAdmitServer builds a test server with admission control in front of
// submissions, authorized against the given tenants.
func newAdmitServer(t *testing.T, tenants []admit.Tenant, cfg admit.Config) (*httptest.Server, *farm.Farm) {
	t.Helper()
	f := farm.New(farm.Config{Workers: 2, QueueDepth: 16})
	set, err := admit.NewTenantSet(tenants)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = set
	cfg.Metrics = telem.NewRegistry()
	ctrl := admit.New(cfg)
	api := newServer(f, nil)
	api.enableAdmit(ctrl, 5*time.Second)
	ts := httptest.NewServer(api)
	t.Cleanup(func() {
		ts.Close()
		ctrl.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
	})
	return ts, f
}

// postJobAs submits a job with tenant credentials and decodes the raw
// response body plus interesting headers.
func postJobAs(t *testing.T, ts *httptest.Server, bearer, query, body string) (int, map[string]any, http.Header) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if bearer != "" {
		req.Header.Set("Authorization", "Bearer "+bearer)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header
}

// TestAdmitAuth: keyed tenants authenticate with Bearer keys, bad keys
// and unknown names are 401, and the admitted job's view carries the
// tenant and class labels.
func TestAdmitAuth(t *testing.T) {
	ts, _ := newAdmitServer(t, []admit.Tenant{
		{Name: "alice", Key: "key-alice"},
		{Name: "dev"},
	}, admit.Config{})

	job := `{"game":"doom3","width":320,"height":240,"design":"baseline"}`
	code, out, _ := postJobAs(t, ts, "key-alice", "", job)
	if code != http.StatusAccepted {
		t.Fatalf("keyed submit = %d (%v), want 202", code, out)
	}
	if out["tenant"] != "alice" || out["class"] != "interactive" {
		t.Errorf("job view tenant/class = %v/%v, want alice/interactive", out["tenant"], out["class"])
	}

	// Bare-name auth works for unkeyed tenants, via ?tenant=.
	code, out, _ = postJobAs(t, ts, "", "?tenant=dev", job)
	if code != http.StatusAccepted || out["tenant"] != "dev" {
		t.Fatalf("bare-name submit = %d tenant %v", code, out["tenant"])
	}

	// Unauthenticated, wrong-key, and unknown-name submissions are 401
	// with a request_id in the error body.
	for name, creds := range map[string][2]string{
		"anonymous":            {"", ""},
		"bad key":              {"nope", ""},
		"unknown name":         {"", "?tenant=mallory"},
		"keyed tenant by name": {"", "?tenant=alice"},
	} {
		code, out, hdr := postJobAs(t, ts, creds[0], creds[1], job)
		if code != http.StatusUnauthorized {
			t.Errorf("%s: status = %d (%v), want 401", name, code, out)
		}
		if rid, _ := out["request_id"].(string); rid == "" || rid != hdr.Get("X-Request-ID") {
			t.Errorf("%s: error body request_id = %v, header %q", name, out["request_id"], hdr.Get("X-Request-ID"))
		}
	}
}

// TestAdmitRateLimit429: a tenant over its token budget is shed with 429,
// a Retry-After header of at least one second, and a machine-readable
// body; a different tenant is unaffected.
func TestAdmitRateLimit429(t *testing.T) {
	ts, _ := newAdmitServer(t, []admit.Tenant{
		{Name: "throttled", Key: "kt", Rate: 0.01, Burst: 1},
		{Name: "open", Key: "ko", Rate: admit.Unlimited},
	}, admit.Config{})

	job := `{"game":"doom3","width":320,"height":240,"design":"baseline"}`
	if code, out, _ := postJobAs(t, ts, "kt", "", job); code != http.StatusAccepted {
		t.Fatalf("first submit = %d (%v)", code, out)
	}
	code, out, hdr := postJobAs(t, ts, "kt", "", job)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d (%v), want 429", code, out)
	}
	if out["reason"] != "rate_limited" || out["tenant"] != "throttled" {
		t.Errorf("429 body = %v", out)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want >= 1 second", ra)
	}
	if ms, _ := out["retry_after_ms"].(float64); ms <= 0 {
		t.Errorf("retry_after_ms = %v, want > 0", out["retry_after_ms"])
	}
	// The throttled tenant's rejection does not touch anyone else.
	if code, out, _ := postJobAs(t, ts, "ko", "", job); code != http.StatusAccepted {
		t.Fatalf("other tenant = %d (%v), want 202", code, out)
	}
}

// TestAdmitOverQuota429: a tenant at its in-flight quota is rejected
// immediately with 429 while its first job still runs; an in-quota tenant
// admits fine throughout.
func TestAdmitOverQuota429(t *testing.T) {
	ts, _ := newAdmitServer(t, []admit.Tenant{
		{Name: "small", Key: "ks", MaxInFlight: 1},
		{Name: "big", Key: "kb"},
	}, admit.Config{Slots: 8})

	// A multi-frame sweep holds small's single quota slot for seconds.
	slow := `{"game":"doom3","width":320,"height":240,"design":"baseline","frames":3}`
	code, first, _ := postJobAs(t, ts, "ks", "", slow)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d (%v)", code, first)
	}
	if first["class"] != "batch" {
		t.Errorf("multi-frame job class = %v, want inferred batch", first["class"])
	}
	code, out, hdr := postJobAs(t, ts, "ks", "", `{"game":"doom3","width":320,"height":240,"design":"baseline","frame_index":7}`)
	if code != http.StatusTooManyRequests || out["reason"] != "over_quota" {
		t.Fatalf("over-quota submit = %d (%v), want 429 over_quota", code, out)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("over-quota 429 missing Retry-After")
	}
	// Unrelated tenant is unaffected by small's quota exhaustion.
	if code, out, _ := postJobAs(t, ts, "kb", "", `{"game":"doom3","width":320,"height":240,"design":"baseline","frame_index":9}`); code != http.StatusAccepted {
		t.Fatalf("in-quota tenant = %d (%v), want 202", code, out)
	}
}

// TestClientRequestID: a well-formed client-supplied X-Request-ID is
// honored end to end (response header and error body); a malformed one is
// replaced with a server-minted ID.
func TestClientRequestID(t *testing.T) {
	ts, _ := newTestServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/job-999999", nil)
	req.Header.Set("X-Request-ID", "client-abc.123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") != "client-abc.123" || out["request_id"] != "client-abc.123" {
		t.Errorf("client request id not honored: header %q body %q",
			resp.Header.Get("X-Request-ID"), out["request_id"])
	}

	// Malformed (embedded spaces) is replaced, not echoed.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/jobs/job-999999", nil)
	req.Header.Set("X-Request-ID", "evil id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out = nil
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if !strings.HasPrefix(got, "r-") || out["request_id"] != got {
		t.Errorf("malformed client id: header %q body %q, want minted r-*", got, out["request_id"])
	}
}

// TestBadClass400: an unknown class label is a 400 before admission.
func TestBadClass400(t *testing.T) {
	ts, _ := newTestServer(t)
	_, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"baseline","class":"urgent"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad class = %d, want 400", code)
	}
}

// TestAdmitOverloadRace: many submissions race a Slots=1, QueueDepth=1
// admission bound while a slow job holds the only slot. Every racer gets
// a definitive answer — 202 admitted or 429 queue_full — nothing hangs,
// and once the backlog drains the server admits again. The interesting
// failures here (leaked slots, double grants, lost waiters) surface under
// -race and as a wedged final submission.
func TestAdmitOverloadRace(t *testing.T) {
	ts, _ := newAdmitServer(t, []admit.Tenant{{Name: "dev"}},
		admit.Config{Slots: 1, QueueDepth: 1})

	// Occupy the slot with a multi-frame sweep, then wait until admission
	// really holds it (free_slots drains asynchronously with the POST).
	code, out, _ := postJobAs(t, ts, "", "?tenant=dev", `{"game":"doom3","width":320,"height":240,"design":"baseline","frames":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("slot-holder submit = %d (%v)", code, out)
	}
	waitFreeSlots(t, ts, 0)

	const racers = 8
	results := make(chan int, racers)
	for i := 0; i < racers; i++ {
		go func(i int) {
			// Short client-side deadline: queued waiters give up quickly
			// (cancel-while-queued) instead of waiting out the slow job.
			req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs?tenant=dev",
				strings.NewReader(fmt.Sprintf(`{"game":"doom3","width":320,"height":240,"design":"baseline","frame_index":%d}`, i+100)))
			ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			defer cancel()
			resp, err := http.DefaultClient.Do(req.WithContext(ctx))
			if err != nil {
				// Client deadline while parked in the admission queue: the
				// server-side waiter is abandoned. Count it as shed.
				results <- http.StatusTooManyRequests
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}(i)
	}
	admitted, shed := 0, 0
	for i := 0; i < racers; i++ {
		switch code := <-results; code {
		case http.StatusAccepted:
			admitted++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("racer got %d, want 202 or 429", code)
		}
	}
	if admitted+shed != racers {
		t.Fatalf("admitted %d + shed %d != %d racers", admitted, shed, racers)
	}
	if shed == 0 {
		t.Error("no racer was shed despite Slots=1, QueueDepth=1")
	}

	// The controller is intact after the storm: waiters that gave up
	// returned their queue positions and quota holds, so a fresh
	// submission still admits once capacity frees.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, out, _ := postJobAs(t, ts, "", "?tenant=dev", `{"game":"doom3","width":320,"height":240,"design":"baseline","frame_index":999}`)
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-storm submit never admitted: %d (%v)", code, out)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// waitFreeSlots polls /varz until admission reports the given free-slot
// count.
func waitFreeSlots(t *testing.T, ts *httptest.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/varz")
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Admit *struct {
				FreeSlots int `json:"free_slots"`
			} `json:"admit"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Admit != nil && v.Admit.FreeSlots == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("admission never reached %d free slots", want)
}
