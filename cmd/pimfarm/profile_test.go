package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestJobProfileEndpoint is the frame-anatomy capture contract: a job
// submitted with "profile": true that really simulates exposes its
// pim-render/frameprofile/v1 artifact at GET /v1/jobs/{id}/profile, while
// cache-served twins and unprofiled jobs answer 404.
func TestJobProfileEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	core.ClearRunCache() // the profiled job must really simulate
	ts, _ := newTestServer(t)

	submit := func(body string) jobResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=true", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var jr jobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || jr.State != "done" {
			t.Fatalf("wait=true status = %d state = %q (%s)", resp.StatusCode, jr.State, jr.Error)
		}
		return jr
	}

	profiled := submit(`{"game":"doom3","width":320,"height":240,"design":"bpim","profile":true}`)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + profiled.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("profile status = %d: %s", resp.StatusCode, body)
	}
	fp, err := obs.ReadFrameProfile(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("profile body is not a frameprofile/v1 artifact: %v", err)
	}
	if fp.Workload != "doom3-320x240" || fp.Design != "B-PIM" {
		t.Fatalf("artifact identity %q/%q", fp.Workload, fp.Design)
	}
	if len(fp.Frames) == 0 {
		t.Fatal("artifact has no frames")
	}
	f := fp.Frames[0]
	if len(f.Timelines) < 2 || len(f.Groups) == 0 {
		t.Fatalf("artifact anatomy too thin: %d timelines, %d groups",
			len(f.Timelines), len(f.Groups))
	}

	// A twin submission is served from the run cache, so no artifact is
	// captured under its job ID; the 404 explains the caveat.
	twin := submit(`{"game":"doom3","width":320,"height":240,"design":"bpim","profile":true}`)
	if twin.ID == profiled.ID {
		t.Fatal("twin reused the original job ID")
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + twin.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		resp.Body.Close()
		t.Fatalf("cache-served twin profile status = %d, want 404", resp.StatusCode)
	}
	if msg := decodeErrorBody(t, resp); !strings.Contains(msg, "cache") {
		t.Errorf("twin 404 message %q does not mention the cache caveat", msg)
	}

	// A job that never opted in has no profile either.
	plain := submit(`{"game":"doom3","width":320,"height":240,"design":"baseline"}`)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + plain.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		resp.Body.Close()
		t.Fatalf("unprofiled job profile status = %d, want 404", resp.StatusCode)
	}
	decodeErrorBody(t, resp)

	// Unknown job and wrong verb keep the JSON error contract.
	resp, err = http.Get(ts.URL + "/v1/jobs/job-999999/profile")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		resp.Body.Close()
		t.Fatalf("unknown job profile status = %d, want 404", resp.StatusCode)
	}
	decodeErrorBody(t, resp)

	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs/"+profiled.ID+"/profile", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		resp.Body.Close()
		t.Fatalf("PUT profile status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Errorf("Allow = %q, want GET", allow)
	}
	decodeErrorBody(t, resp)
}

// TestMetricsRuntimeGauges: every scrape carries refreshed Go-runtime
// health gauges.
func TestMetricsRuntimeGauges(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, name := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_memstats_heap_alloc_bytes gauge",
		"# TYPE go_memstats_gc_pause_total_seconds gauge",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("scrape missing %q", name)
		}
	}
}
