// Command pimfarm serves render-farm jobs over HTTP: submit a simulation
// as JSON options, poll its status, and read the pim-render/metrics/v1
// snapshot back when it finishes. Identical in-flight submissions collapse
// into one simulation and completed results are served from an LRU cache.
//
// Usage:
//
//	pimfarm -addr :8080 -workers 8 -queue 256 -cachecap 512
//
//	curl -s localhost:8080/v1/jobs -d '{"game":"doom3","width":320,"height":240,"design":"atfim"}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/varz
//
// SIGINT/SIGTERM drain the farm: the listener closes, queued jobs finish,
// then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", farm.DefaultQueueDepth, "job queue depth")
		cachecap  = flag.Int("cachecap", farm.DefaultCacheCap, "result cache entries (-1 disables)")
		retries   = flag.Int("retries", 0, "retry attempts per failed job")
		drainSecs = flag.Int("drain", 60, "max seconds to drain on shutdown before forcing")
		tracefile = flag.String("tracefile", "", "write farm job-lifecycle spans as Chrome trace JSON on shutdown")
		storeDir  = flag.String("store", "", "durable result-store directory; completed jobs survive restarts")
		shards    = flag.Int("shards", 0, "default frame tile-scan shards for jobs that do not set one (0 = GOMAXPROCS, 1 = serial)")
	)
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	core.SetDefaultShards(*shards)
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "pimfarm:", err)
		}
	}()

	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.NewTracer(0)
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Config{Dir: *storeDir, Tracer: tracer})
		if err != nil {
			fatal(err)
		}
		// The farm tier alone carries persistence here: it serves completed
		// jobs from disk before the task runs and writes each computed result
		// through exactly once (attaching the store to core.RunCached as well
		// would just duplicate every write).
		fmt.Fprintf(os.Stderr, "pimfarm: store %s (%d entries, %d bytes)\n",
			st.Dir(), st.Len(), st.Size())
	}
	f := farm.New(farm.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheCap:   *cachecap,
		Retries:    *retries,
		Tracer:     tracer,
		Tier:       core.StoreTier(st),
	})

	srv := &http.Server{Addr: *addr, Handler: newServer(f, st)}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "pimfarm: listening on %s (%d workers, queue %d)\n",
			*addr, f.Workers(), *queue)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "pimfarm: %v, draining\n", sig)
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pimfarm: http shutdown:", err)
	}
	if err := f.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pimfarm: forced farm shutdown:", err)
	}
	c := f.Counters()
	fmt.Fprintf(os.Stderr, "pimfarm: drained (done=%d failed=%d canceled=%d deduped=%d cache_hits=%d tier_hits=%d)\n",
		c.Done, c.Failed, c.Canceled, c.Deduped, c.CacheHits, c.TierHits)
	if st != nil {
		sc := st.Counters()
		fmt.Fprintf(os.Stderr, "pimfarm: store (hits=%d misses=%d corrupt=%d puts=%d entries=%d bytes=%d)\n",
			sc.Hits, sc.Misses, sc.Corrupt, sc.Puts, sc.Entries, sc.Bytes)
	}

	if *tracefile != "" {
		w, err := os.Create(*tracefile)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeTrace(w); err != nil {
			fatal(err)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimfarm:", err)
	os.Exit(1)
}
