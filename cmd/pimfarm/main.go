// Command pimfarm serves render-farm jobs over HTTP: submit a simulation
// as JSON options, poll its status, and read the pim-render/metrics/v1
// snapshot back when it finishes. Identical in-flight submissions collapse
// into one simulation and completed results are served from an LRU cache.
//
// Usage:
//
//	pimfarm -addr :8080 -workers 8 -queue 256 -cachecap 512
//
//	curl -s localhost:8080/v1/jobs -d '{"game":"doom3","width":320,"height":240,"design":"atfim"}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/varz
//
// SIGINT/SIGTERM drain the farm: the listener closes, queued jobs finish,
// then the process exits.
//
// Distributed mode splits the farm across processes: `pimfarm -dist`
// serves the same API but executes nothing itself — jobs are leased to
// `pimfarm worker -coordinator URL` processes over HTTP, with a durable
// journal replaying in-flight jobs across coordinator restarts:
//
//	pimfarm -dist -journal /tmp/farm -store /tmp/results &
//	pimfarm worker -coordinator http://localhost:8080 -store /tmp/results &
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/farm/admit"
	"repro/internal/farm/dist"
	"repro/internal/obs"
	"repro/internal/obs/slogx"
	"repro/internal/obs/telem"
	"repro/internal/store"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		workerMain(os.Args[2:])
		return
	}
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", farm.DefaultQueueDepth, "job queue depth")
		cachecap  = flag.Int("cachecap", farm.DefaultCacheCap, "result cache entries (-1 disables)")
		retries   = flag.Int("retries", 0, "retry attempts per failed job")
		drainSecs = flag.Int("drain", 60, "max seconds to drain on shutdown before forcing")
		tracefile = flag.String("tracefile", "", "write farm job-lifecycle spans as Chrome trace JSON on shutdown")
		storeDir  = flag.String("store", "", "durable result-store directory; completed jobs survive restarts")
		shards    = flag.Int("shards", 0, "default frame tile-scan shards for jobs that do not set one (0 = GOMAXPROCS, 1 = serial)")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		version   = flag.Bool("version", false, "print version and exit")
		distMode  = flag.Bool("dist", false, "coordinator mode: lease jobs to `pimfarm worker` processes instead of simulating in-process")
		leaseTTL  = flag.Duration("lease-ttl", dist.DefaultTTL, "dist: lease duration; a worker silent this long loses its job back to the queue")
		journal   = flag.String("journal", "", "dist: durable job-journal directory; queued and in-flight jobs replay after a coordinator restart")

		tenants      = flag.String("tenants", "", "tenant config file (pim-render/tenants/v1 JSON: API keys, rate limits, quotas); empty admits any tenant unlimited")
		admitSlots   = flag.Int("admit-slots", 0, "admission slots: jobs concurrently inside the farm (0 = worker pool size)")
		admitQueue   = flag.Int("admit-queue", 0, "per-class admission queue depth (0 = -queue)")
		admitTimeout = flag.Duration("admit-timeout", 30*time.Second, "max wait in the admission queue before a submission is shed with 429")
		profileTTL   = flag.Duration("profile-ttl", 15*time.Minute, "prune finished jobs' frame-anatomy profile artifacts after this age (<= 0 keeps them for the job's lifetime)")
		eventTTL     = flag.Duration("event-ttl", farm.DefaultEventRetention, "compact finished jobs' SSE replay history after this age (negative disables)")
		traceSample  = flag.Float64("trace-sample", 1.0, "fraction of jobs given a distributed-trace timeline (GET /v1/jobs/{id}/trace); 0 disables tracing")
		traceTTL     = flag.Duration("trace-ttl", 15*time.Minute, "prune finished jobs' trace timelines after this age (<= 0 keeps them for the job's lifetime)")
	)
	prof := obs.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if *version {
		fmt.Printf("pimfarm %s (%s)\n", obs.Version(), obs.GoVersion())
		return
	}
	level, err := slogx.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := slogx.New(os.Stderr, slogx.Options{Level: level, Timestamps: true})
	slog.SetDefault(log)
	core.SetDefaultShards(*shards)
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			log.Error("profile stop", "err", err.Error())
		}
	}()

	// build_info makes every scrape self-identifying: the value is constant
	// 1 and the interesting bits ride in the labels.
	telem.Default().Gauge("pimfarm_build_info",
		"Build metadata; constant 1, with the version in labels.",
		telem.Labels{
			"version":    obs.Version(),
			"go_version": obs.GoVersion(),
			"revision":   obs.BuildRevision(),
		}).Set(1)

	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.NewTracer(0)
	}
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Config{Dir: *storeDir, Tracer: tracer})
		if err != nil {
			fatal(err)
		}
		// The farm tier alone carries persistence here: it serves completed
		// jobs from disk before the task runs and writes each computed result
		// through exactly once (attaching the store to core.RunCached as well
		// would just duplicate every write).
		log.Info("store open", "dir", st.Dir(), "entries", st.Len(), "bytes", st.Size())
	}
	farmWorkers := *workers
	if *distMode && farmWorkers == 0 {
		// In dist mode a farm worker goroutine only parks on a coordinator
		// outcome channel while a remote process simulates, so the pool
		// bounds in-flight leases rather than CPU use — size it generously
		// instead of by GOMAXPROCS.
		farmWorkers = 64
	}
	f := farm.New(farm.Config{
		Workers:        farmWorkers,
		QueueDepth:     *queue,
		CacheCap:       *cachecap,
		Retries:        *retries,
		Tracer:         tracer,
		Tier:           core.StoreTier(st),
		EventRetention: *eventTTL,
	})

	api := newServer(f, st)
	api.log = log
	api.pprofOn = *pprofOn
	api.profileTTL = *profileTTL
	api.traceSample = *traceSample
	api.traceTTL = *traceTTL

	// Admission control always fronts submissions; without -tenants it
	// runs with an open tenant set (any name, no rate or quota limits), so
	// the only behavioral change is that queueing moves from the farm's
	// FIFO channel to the admission layer's class-ordered queues.
	ts := admit.OpenTenants()
	if *tenants != "" {
		var err error
		ts, err = admit.LoadTenants(*tenants)
		if err != nil {
			fatal(err)
		}
		log.Info("tenants loaded", "path", *tenants, "tenants", ts.Len())
	}
	slots := *admitSlots
	if slots <= 0 {
		slots = f.Workers()
	}
	aq := *admitQueue
	if aq <= 0 {
		aq = *queue
	}
	adm := admit.New(admit.Config{Slots: slots, QueueDepth: aq, Tenants: ts})
	api.enableAdmit(adm, *admitTimeout)
	log.Info("admission control", "slots", slots, "queue_depth", aq,
		"timeout", admitTimeout.String(), "tenants", *tenants != "")
	var coord *dist.Coordinator
	if *distMode {
		coord = dist.NewCoordinator(dist.Config{TTL: *leaseTTL})
		api.enableDist(coord)
		log.Info("distributed mode", "lease_ttl", leaseTTL.String(),
			"dispatch_slots", f.Workers())
	}
	if *journal != "" {
		if !*distMode {
			fatal(errors.New("-journal requires -dist (the journal replays jobs onto coordinator restarts)"))
		}
		jn, err := dist.OpenJournal(*journal)
		if err != nil {
			fatal(err)
		}
		api.journal = jn
		log.Info("journal open", "dir", *journal, "pending", jn.Len())
		api.replayJournal()
	}
	srv := &http.Server{Addr: *addr, Handler: api}
	errCh := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", *addr, "workers", f.Workers(), "queue", *queue,
			"pprof", *pprofOn, "version", obs.Version())
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Info("draining", "signal", sig.String())
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("http shutdown", "err", err.Error())
	}
	adm.Close()
	if err := f.Close(ctx); err != nil {
		log.Error("forced farm shutdown", "err", err.Error())
	}
	if coord != nil {
		cs := coord.Stats()
		coord.Close()
		log.Info("coordinator closed", "grants", cs.LeaseOps.Grants,
			"expires", cs.LeaseOps.Expires, "requeues", cs.LeaseOps.Requeues)
	}
	if api.journal != nil {
		if err := api.journal.Close(); err != nil {
			log.Error("journal close", "err", err.Error())
		}
	}
	c := f.Counters()
	log.Info("drained", "done", c.Done, "failed", c.Failed, "canceled", c.Canceled,
		"deduped", c.Deduped, "cache_hits", c.CacheHits, "tier_hits", c.TierHits)
	if st != nil {
		sc := st.Counters()
		log.Info("store closed", "hits", sc.Hits, "misses", sc.Misses, "corrupt", sc.Corrupt,
			"puts", sc.Puts, "entries", sc.Entries, "bytes", sc.Bytes)
	}

	if *tracefile != "" {
		w, err := os.Create(*tracefile)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeTrace(w); err != nil {
			fatal(err)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pimfarm:", err)
	os.Exit(1)
}
