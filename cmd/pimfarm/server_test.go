package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/store"
)

func newTestServer(t *testing.T) (*httptest.Server, *farm.Farm) {
	t.Helper()
	f := farm.New(farm.Config{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(newServer(f, nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
	})
	return ts, f
}

func postJob(t *testing.T, ts *httptest.Server, body string) (jobResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return jr, resp.StatusCode
}

func pollJob(t *testing.T, ts *httptest.Server, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr jobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jr.State == "done" || jr.State == "failed" || jr.State == "canceled" {
			return jr
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobResponse{}
}

// TestAPIRoundTrip is the submit → poll → metrics/v1 contract: a render
// job submitted as JSON options completes and returns a parsable
// pim-render/metrics/v1 snapshot as its result body.
func TestAPIRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)

	jr, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"baseline"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", code)
	}
	if jr.ID == "" {
		t.Fatal("no job id in response")
	}
	if jr.Request == nil || jr.Request.Game != "doom3" {
		t.Fatalf("request not echoed: %+v", jr.Request)
	}

	final := pollJob(t, ts, jr.ID)
	if final.State != "done" {
		t.Fatalf("state = %s (%s), want done", final.State, final.Error)
	}
	if final.Result == nil {
		t.Fatal("done job has no result body")
	}
	if final.Result.Schema != obs.SchemaVersion {
		t.Fatalf("result schema = %q, want %q", final.Result.Schema, obs.SchemaVersion)
	}
	if final.Result.Cycles <= 0 {
		t.Fatal("result reports zero cycles")
	}
	if final.Result.Workload != "doom3-320x240" {
		t.Fatalf("result workload = %q", final.Result.Workload)
	}

	// An identical submission is served from the result cache.
	jr2, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"baseline"}`)
	if code != http.StatusAccepted {
		t.Fatalf("duplicate POST status = %d", code)
	}
	dup := pollJob(t, ts, jr2.ID)
	if dup.State != "done" {
		t.Fatalf("duplicate state = %s", dup.State)
	}
	if !dup.CacheHit && !dup.Deduped {
		t.Fatal("duplicate submission was fully re-simulated (no cache hit or dedup)")
	}

	// Listing shows both jobs.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []farm.View `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(list.Jobs))
	}
}

func TestHealthAndVarz(t *testing.T) {
	ts, f := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var c farm.Counters
	err = json.NewDecoder(resp.Body).Decode(&c)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers != f.Workers() || c.QueueDepth != 16 {
		t.Fatalf("varz counters: %+v", c)
	}
}

func TestAPIBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown game", `{"game":"quake","width":320,"height":240,"design":"baseline"}`},
		{"unknown design", `{"game":"doom3","width":320,"height":240,"design":"warp"}`},
		{"invalid combo", `{"game":"doom3","width":320,"height":240,"design":"atfim","compressed":true}`},
		{"bad json", `{"game":`},
		{"unknown field", `{"game":"doom3","width":320,"height":240,"design":"baseline","bogus":1}`},
	}
	for _, tc := range cases {
		if _, code := postJob(t, ts, tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// decodeErrorBody asserts resp carries a JSON error object with the right
// Content-Type and returns its message.
func decodeErrorBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body.Error == "" {
		t.Error("error body has empty message")
	}
	return body.Error
}

// TestAPIJSONErrors pins the error contract: malformed bodies, unknown job
// IDs, wrong verbs and unknown paths all answer JSON bodies with
// Content-Type: application/json and the proper status code.
func TestAPIJSONErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	client := ts.Client()

	do := func(method, path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("malformed body is 400 JSON", func(t *testing.T) {
		resp := do("POST", "/v1/jobs", `{"game":`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
		if msg := decodeErrorBody(t, resp); !strings.Contains(msg, "bad request body") {
			t.Errorf("message %q does not mention the body", msg)
		}
	})
	t.Run("unknown job id is 404 JSON", func(t *testing.T) {
		resp := do("GET", "/v1/jobs/job-999999", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		if msg := decodeErrorBody(t, resp); !strings.Contains(msg, "job-999999") {
			t.Errorf("message %q does not name the job", msg)
		}
	})
	t.Run("wrong verb is 405 JSON with Allow", func(t *testing.T) {
		for path, allow := range map[string]string{
			"/v1/jobs":            "GET, POST",
			"/v1/jobs/job-000001": "GET, DELETE",
			"/v1/experiments":     "GET",
			"/varz":               "GET",
			"/healthz":            "GET",
		} {
			resp := do("PUT", path, "")
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("PUT %s status = %d, want 405", path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != allow {
				t.Errorf("PUT %s Allow = %q, want %q", path, got, allow)
			}
			decodeErrorBody(t, resp)
		}
	})
	t.Run("unknown path is 404 JSON", func(t *testing.T) {
		resp := do("GET", "/v2/nope", "")
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", resp.StatusCode)
		}
		if msg := decodeErrorBody(t, resp); !strings.Contains(msg, "/v2/nope") {
			t.Errorf("message %q does not name the path", msg)
		}
	})
}

// TestStoreSurvivesRestart is the persistence contract end to end: a job
// simulated by one farm is served from the durable store by a fresh farm
// pointed at the same directory — no re-simulation after a restart.
func TestStoreSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	dir := t.TempDir()
	body := `{"game":"doom3","width":320,"height":240,"design":"baseline"}`

	runOnce := func() (jobResponse, farm.Counters) {
		st, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		f := farm.New(farm.Config{Workers: 2, QueueDepth: 16, Tier: core.StoreTier(st)})
		ts := httptest.NewServer(newServer(f, st))
		defer func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := f.Close(ctx); err != nil {
				t.Error(err)
			}
		}()
		jr, code := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("POST status = %d", code)
		}
		final := pollJob(t, ts, jr.ID)
		if final.State != "done" {
			t.Fatalf("state = %s (%s)", final.State, final.Error)
		}
		return final, f.Counters()
	}

	cold, c1 := runOnce()
	if c1.TierHits != 0 || c1.TierPuts != 1 {
		t.Fatalf("cold run: tier_hits=%d tier_puts=%d, want 0/1", c1.TierHits, c1.TierPuts)
	}

	// Simulate a restart: new farm, new memory caches, same store dir.
	core.ClearRunCache()
	warm, c2 := runOnce()
	if c2.TierHits != 1 {
		t.Fatalf("warm run: tier_hits=%d, want 1 (job was re-simulated)", c2.TierHits)
	}
	if !warm.TierHit {
		t.Error("warm job view does not report tier_hit")
	}
	if warm.Result == nil || cold.Result == nil {
		t.Fatal("missing result bodies")
	}
	coldJSON, _ := json.Marshal(cold.Result)
	warmJSON, _ := json.Marshal(warm.Result)
	if string(coldJSON) != string(warmJSON) {
		t.Error("restored result's metrics differ from the original run")
	}
}

// TestExperimentsEndpoint pins GET /v1/experiments to the registry's
// presentation order.
func TestExperimentsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Experiments []string `json:"experiments"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := repro.Registry().Names()
	if len(body.Experiments) != len(want) {
		t.Fatalf("listed %d experiments, want %d", len(body.Experiments), len(want))
	}
	for i := range want {
		if body.Experiments[i] != want[i] {
			t.Fatalf("experiments[%d] = %q, want %q", i, body.Experiments[i], want[i])
		}
	}
}

// TestJobCancel is the DELETE /v1/jobs/{id} contract: a queued job cancels
// (200 with the canceled view), a second DELETE answers 409, and an unknown
// id 404.
func TestJobCancel(t *testing.T) {
	// One worker: the first job occupies it, so the second stays queued
	// and its cancellation is deterministic.
	f := farm.New(farm.Config{Workers: 1, QueueDepth: 16})
	ts := httptest.NewServer(newServer(f, nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
	})

	blocker, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"baseline"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	queued, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"bpim"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}

	del := func(id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := del(queued.ID)
	var jr jobResponse
	err := json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200", resp.StatusCode)
	}
	if jr.State != "canceled" {
		t.Fatalf("canceled job state = %q", jr.State)
	}

	resp = del(queued.ID)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE status = %d, want 409", resp.StatusCode)
	}
	decodeErrorBody(t, resp)

	resp = del("job-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown status = %d, want 404", resp.StatusCode)
	}
	decodeErrorBody(t, resp)

	if final := pollJob(t, ts, blocker.ID); final.State != "done" {
		t.Fatalf("blocker state = %s (%s), want done", final.State, final.Error)
	}
}

// TestSubmitWaitAndDisconnect covers ?wait=true: a live client gets the
// finished job inline, and a client that hangs up while waiting cancels
// the abandoned job so the farm records it canceled.
func TestSubmitWaitAndDisconnect(t *testing.T) {
	f := farm.New(farm.Config{Workers: 1, QueueDepth: 16})
	ts := httptest.NewServer(newServer(f, nil))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
	})

	// Occupy the single worker so the waited-on job stays queued until
	// the client has provably gone away.
	blocker, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"baseline"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}

	reqCtx, hangUp := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, ts.URL+"/v1/jobs?wait=true",
		strings.NewReader(`{"game":"doom3","width":320,"height":240,"design":"stfim"}`))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the submit land and start waiting
	hangUp()
	if err := <-errCh; err == nil {
		t.Fatal("hung-up request reported no error")
	}

	// The abandoned job must end canceled (it never got a worker).
	deadline := time.Now().Add(time.Minute)
	for {
		var canceled bool
		for _, j := range f.Jobs() {
			if j.State() == farm.Canceled {
				canceled = true
			}
		}
		if canceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned job never became canceled")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if final := pollJob(t, ts, blocker.ID); final.State != "done" {
		t.Fatalf("blocker state = %s (%s), want done", final.State, final.Error)
	}

	// A live waited-on submission returns the finished job inline (the
	// blocker's cell is cached now, so this is immediate).
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=true", "application/json",
		strings.NewReader(`{"game":"doom3","width":320,"height":240,"design":"baseline"}`))
	if err != nil {
		t.Fatal(err)
	}
	var jr jobResponse
	err = json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=true status = %d, want 200", resp.StatusCode)
	}
	if jr.State != "done" || jr.Result == nil {
		t.Fatalf("wait=true job state = %q (result %v), want done with result", jr.State, jr.Result != nil)
	}
}

func TestParseDesign(t *testing.T) {
	for in, wantErr := range map[string]bool{
		"baseline": false, "bpim": false, "B-PIM": false, "stfim": false,
		"atfim": false, "A-TFIM": false, "": false, "gddr7": true,
	} {
		if _, err := repro.ParseDesign(in); (err != nil) != wantErr {
			t.Errorf("ParseDesign(%q) err = %v, wantErr %v", in, err, wantErr)
		}
	}
	// Sanity: label formatting used in Submit.
	if got := fmt.Sprintf("%s@%dx%d", "doom3", 320, 240); got != "doom3@320x240" {
		t.Fatal(got)
	}
}
