package main

// Suite endpoints: POST /v1/suites accepts a whole pim-render/suite/v1
// document, admits every selected case through the admission controller,
// and submits one farm job per case — each riding the existing dedup /
// cache-tier / journal / SSE machinery unchanged. GET /v1/suites{,/{id}}
// serve suite-level roll-ups with per-case terminal states, and
// GET /v1/suites/{id}/events streams the roll-up live. Error bodies and
// X-Request-ID echoes reuse the job endpoints' helpers — no new shapes.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/admit"
	"repro/internal/suite"
)

// suiteState is the server's suite tracking: runs by ID plus the ID
// sequence. A field on server; all suite handling lives in this file.
type suiteState struct {
	runs sync.Map // string -> *suiteRun
	seq  atomic.Uint64
}

// suiteRun tracks one accepted suite: its identity plus the farm job of
// every selected case, in suite declaration order. Immutable after
// creation — per-case progress is read live from the jobs, so holding the
// *farm.Job keeps a suite's cases inspectable even after the farm evicts
// the job from its retained list.
type suiteRun struct {
	id      string
	name    string
	created time.Time
	cases   []suiteCaseRef
}

// suiteCaseRef binds a suite case ID to its farm job.
type suiteCaseRef struct {
	caseID string
	job    *farm.Job
}

// suiteCaseView is the per-case slice of the suite roll-up.
type suiteCaseView struct {
	Case  string `json:"case"`
	Job   string `json:"job"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// suiteResponse is the suite-level roll-up served by GET /v1/suites/{id}.
// State rolls the per-case states up: "running" while any case is in
// flight, then "failed" if any case failed, "canceled" if any was
// canceled, and "done" only when every case completed.
type suiteResponse struct {
	ID      string          `json:"id"`
	Name    string          `json:"name"`
	Created time.Time       `json:"created"`
	State   string          `json:"state"`
	Total   int             `json:"total"`
	Done    int             `json:"done"`
	Cases   []suiteCaseView `json:"cases"`
}

// view snapshots the suite roll-up.
func (sr *suiteRun) view() suiteResponse {
	resp := suiteResponse{
		ID:      sr.id,
		Name:    sr.name,
		Created: sr.created,
		Total:   len(sr.cases),
		Cases:   make([]suiteCaseView, 0, len(sr.cases)),
	}
	terminal, failed, canceled := 0, 0, 0
	for _, c := range sr.cases {
		v := c.job.View()
		resp.Cases = append(resp.Cases, suiteCaseView{
			Case: c.caseID, Job: v.ID, State: v.State, Error: v.Error,
		})
		switch c.job.State() {
		case farm.Done:
			terminal++
			resp.Done++
		case farm.Failed:
			terminal++
			failed++
		case farm.Canceled:
			terminal++
			canceled++
		}
	}
	switch {
	case terminal < len(sr.cases):
		resp.State = "running"
	case failed > 0:
		resp.State = "failed"
	case canceled > 0:
		resp.State = "canceled"
	default:
		resp.State = "done"
	}
	return resp
}

// terminal reports whether every case of the suite has settled.
func (sr *suiteRun) terminal() bool {
	for _, c := range sr.cases {
		if !c.job.State().Terminal() {
			return false
		}
	}
	return true
}

// handleSuiteSubmit is POST /v1/suites: decode and validate the whole
// suite document first (one bad case rejects the batch with 400 before
// anything runs), then walk the cases in order — admit one, submit one —
// holding each admission ticket until that case's job settles. An
// admission rejection mid-batch cancels the already-submitted cases and
// sheds the whole suite with 429. ?tags=a,b&tier=...&difficulty=...
// filter cases exactly like paperbench -suite.
func (s *server) handleSuiteSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	su, err := suite.Parse(body)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	cases := su.Select(suiteFilterFromQuery(r))
	if len(cases) == 0 {
		httpError(w, r, http.StatusBadRequest,
			fmt.Errorf("suite %s: no cases match the filter", su.Name))
		return
	}

	// Build every task (resolving every spec and class) before admitting
	// or submitting anything: validation failures must reject the whole
	// batch, not strand a half-submitted suite.
	reqID := requestID(r)
	tasks := make([]farm.Task, len(cases))
	classes := make([]admit.Class, len(cases))
	specs := make([]*suite.Spec, len(cases))
	for i := range cases {
		sp := cases[i].Spec
		specs[i] = &sp
		class, err := specClass(&sp)
		if err != nil {
			httpError(w, r, http.StatusBadRequest,
				fmt.Errorf("case %s: %w", cases[i].ID, err))
			return
		}
		task, err := s.buildTask(&sp, reqID)
		if err != nil {
			httpError(w, r, http.StatusBadRequest,
				fmt.Errorf("case %s: %w", cases[i].ID, err))
			return
		}
		task.Label = su.Name + "/" + cases[i].ID
		task.Class = class.String()
		tasks[i] = task
		classes[i] = class
	}

	// Batch admission interleaves with submission: each case holds its
	// ticket from admission until its job settles, so per-tenant quotas
	// bound suite work in flight exactly like individually submitted
	// jobs. Admitting case i only after submitting case i-1 is what lets
	// a suite wider than the slot pool drain through it — already-running
	// cases release slots that later cases then wait for (bounded by the
	// admission timeout each). Acquiring every ticket up front instead
	// would deadlock such a suite against its own unsubmitted jobs.
	var tenant *admit.Tenant
	if s.admit != nil {
		var err error
		if tenant, err = s.resolveTenant(r); err != nil {
			httpError(w, r, http.StatusUnauthorized, err)
			return
		}
	}

	// shed cancels everything already submitted: a half-submitted suite
	// is worse than a rejected one. Tickets of canceled cases release as
	// the cancellations settle.
	run := &suiteRun{
		id:      fmt.Sprintf("s-%06d", s.suites.seq.Add(1)),
		name:    su.Name,
		created: time.Now(),
	}
	shed := func() {
		for _, c := range run.cases {
			s.farm.Cancel(c.job.ID())
		}
	}
	for i := range cases {
		var ticket *admit.Ticket
		if s.admit != nil {
			actx, cancel := context.WithTimeout(r.Context(), s.admitTimeout)
			ticket, err = s.admit.Admit(actx, tenant, classes[i])
			cancel()
			if err != nil {
				shed()
				writeOverload(w, r, err)
				return
			}
			tasks[i].Tenant = ticket.Tenant()
			tasks[i].AdmitWait = ticket.Wait()
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Second)
		job, err := s.submit(ctx, tasks[i], specs[i])
		cancel()
		if err != nil {
			if ticket != nil {
				ticket.Release()
			}
			shed()
			switch {
			case errors.Is(err, farm.ErrClosed), errors.Is(err, farm.ErrShutdown):
				httpError(w, r, http.StatusServiceUnavailable, errors.New("farm is shutting down"))
			case errors.Is(err, context.DeadlineExceeded):
				httpError(w, r, http.StatusServiceUnavailable, errors.New("job queue is full"))
			default:
				httpError(w, r, http.StatusInternalServerError, err)
			}
			return
		}
		if ticket != nil {
			t, j := ticket, job
			go func() {
				<-j.Done()
				t.Release()
			}()
		}
		run.cases = append(run.cases, suiteCaseRef{caseID: cases[i].ID, job: job})
	}
	s.pruneSuites()
	s.suites.runs.Store(run.id, run)
	writeJSON(w, http.StatusAccepted, run.view())
}

// suiteFilterFromQuery builds the case filter from the request's
// ?tags=a,b&tier=...&difficulty=... query parameters.
func suiteFilterFromQuery(r *http.Request) suite.Filter {
	q := r.URL.Query()
	f := suite.Filter{
		Tier:       q.Get("tier"),
		Difficulty: q.Get("difficulty"),
	}
	for _, t := range strings.Split(q.Get("tags"), ",") {
		if t = strings.TrimSpace(t); t != "" {
			f.Tags = append(f.Tags, t)
		}
	}
	return f
}

// handleSuiteList is GET /v1/suites: every retained suite roll-up,
// newest first.
func (s *server) handleSuiteList(w http.ResponseWriter, r *http.Request) {
	s.pruneSuites()
	var views []suiteResponse
	s.suites.runs.Range(func(_, v any) bool {
		views = append(views, v.(*suiteRun).view())
		return true
	})
	// sync.Map iteration order is random; IDs are a zero-padded sequence,
	// so a reverse lexicographic sort is newest-first.
	sort.Slice(views, func(i, j int) bool { return views[i].ID > views[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"suites": views})
}

// handleSuiteGet is GET /v1/suites/{id}: one suite roll-up.
func (s *server) handleSuiteGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.suites.runs.Load(r.PathValue("id"))
	if !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown suite %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, v.(*suiteRun).view())
}

// handleSuiteEvents is GET /v1/suites/{id}/events: a Server-Sent Events
// roll-up of the suite. A "case" event fires as each case's job settles
// (carrying that case's view), and the stream terminates with an "end"
// event carrying the final suite roll-up once every case is terminal.
// Per-case progress streams remain available on each case's own
// /v1/jobs/{id}/events.
func (s *server) handleSuiteEvents(w http.ResponseWriter, r *http.Request) {
	v, ok := s.suites.runs.Load(r.PathValue("id"))
	if !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("unknown suite %q", r.PathValue("id")))
		return
	}
	run := v.(*suiteRun)
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, r, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// One waiter per case: job.Done() is a closed-channel broadcast, so
	// any number of concurrent streams can watch the same jobs. The
	// buffer holds every settlement, so waiters never block after the
	// client disconnects.
	settled := make(chan int, len(run.cases))
	for i := range run.cases {
		go func(i int) {
			select {
			case <-run.cases[i].job.Done():
				settled <- i
			case <-r.Context().Done():
			}
		}(i)
	}

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for remaining := len(run.cases); remaining > 0; {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case i := <-settled:
			c := run.cases[i]
			jv := c.job.View()
			writeSSE(w, "case", 0, suiteCaseView{
				Case: c.caseID, Job: jv.ID, State: jv.State, Error: jv.Error,
			})
			fl.Flush()
			remaining--
		}
	}
	writeSSE(w, "end", 0, run.view())
	fl.Flush()
}

// pruneSuites drops suite roll-ups whose cases are all terminal and whose
// jobs the farm no longer retains — the run's information is gone from
// every other surface at that point. Called on every suite store and
// list, which bounds the map without a background janitor (mirroring
// pruneProfiles).
func (s *server) pruneSuites() {
	s.suites.runs.Range(func(k, v any) bool {
		run := v.(*suiteRun)
		if !run.terminal() {
			return true
		}
		for _, c := range run.cases {
			if _, live := s.farm.Job(c.job.ID()); live {
				return true
			}
		}
		s.suites.runs.Delete(k)
		return true
	})
}
