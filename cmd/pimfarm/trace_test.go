package main

// Distributed-tracing tests at the HTTP API level: a dist-mode job yields
// one well-formed Chrome trace with coordinator and worker spans under a
// single trace ID and skew-corrected, causally ordered timestamps;
// sampling off records nothing; and re-minting (journal replay) always
// produces a fresh trace root.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/farm/dist"
	"repro/internal/obs"
	"repro/internal/obs/dtrace"
	"repro/internal/suite"
)

// traceDoc is the GET /v1/jobs/{id}/trace shape the tests read back.
type traceDoc struct {
	Schema      string            `json:"schema"`
	TraceID     string            `json:"trace_id"`
	JobID       string            `json:"job_id"`
	Worker      string            `json:"worker"`
	SkewUS      int64             `json:"skew_us"`
	TraceEvents []obs.ChromeEvent `json:"traceEvents"`
}

func getTrace(t *testing.T, ts *httptest.Server, id string) (traceDoc, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc traceDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
	}
	return doc, resp.StatusCode
}

// interval is one complete ("X") event's [start, end) on the rebased
// timeline, plus which process track it landed on.
type interval struct {
	pid     int
	ts, end int64
}

// eventIndex collects the X events by name (first occurrence wins for
// singular spans; simulate/* spans are counted separately).
func eventIndex(t *testing.T, doc traceDoc) map[string]interval {
	t.Helper()
	idx := map[string]interval{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur: ts=%d dur=%d", ev.Name, ev.Ts, ev.Dur)
		}
		if _, seen := idx[ev.Name]; !seen {
			idx[ev.Name] = interval{pid: ev.Pid, ts: ev.Ts, end: ev.Ts + ev.Dur}
		}
	}
	return idx
}

// TestDistTraceEndToEnd: a job run through coordinator + remote worker
// serves one Chrome trace containing the coordinator's admit/queue/lease
// spans and the worker's run/simulate spans under the job's trace ID,
// with worker spans clamped inside the lease window after skew
// correction, and the stage aggregates appear in /v1/traces/summary.
func TestDistTraceEndToEnd(t *testing.T) {
	// The in-process worker shares the global run cache with earlier
	// tests; clear it so this job genuinely simulates (stage spans exist).
	core.ClearRunCache()

	ts, _ := newDistTestServer(t, dist.Config{TTL: time.Minute})
	startTestWorker(t, ts.URL, "trace-worker")

	jr, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"atfim"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	final := pollJob(t, ts, jr.ID)
	if final.State != "done" {
		t.Fatalf("job: %s (%s)", final.State, final.Error)
	}
	if final.TraceID == "" {
		t.Fatal("finished job view has no trace_id (default sampling is 1.0)")
	}

	doc, code := getTrace(t, ts, jr.ID)
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d", code)
	}
	if doc.Schema != dtrace.TimelineSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, dtrace.TimelineSchema)
	}
	if doc.TraceID != final.TraceID {
		t.Fatalf("trace_id mismatch: timeline %q, job view %q", doc.TraceID, final.TraceID)
	}
	if doc.JobID != jr.ID || doc.Worker != "trace-worker" {
		t.Fatalf("timeline identity: job=%q worker=%q", doc.JobID, doc.Worker)
	}

	idx := eventIndex(t, doc)
	for _, name := range []string{"job", "admit", "farm/queue", "dist/queue",
		"dist/lease", "wire/grant", "wire/complete"} {
		iv, ok := idx[name]
		if !ok {
			t.Fatalf("missing coordinator span %q (have %v)", name, spanNames(doc))
		}
		if iv.pid != 1 {
			t.Fatalf("span %q on pid %d, want coordinator pid 1", name, iv.pid)
		}
	}
	for _, name := range []string{"resolve", "tiers", "run", "encode"} {
		iv, ok := idx[name]
		if !ok {
			t.Fatalf("missing worker span %q (have %v)", name, spanNames(doc))
		}
		if iv.pid != 2 {
			t.Fatalf("span %q on pid %d, want worker pid 2", name, iv.pid)
		}
	}
	simulates := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "simulate/") {
			simulates++
			if ev.Pid != 2 {
				t.Fatalf("simulate span on pid %d, want 2", ev.Pid)
			}
		}
	}
	if simulates == 0 {
		t.Fatalf("no simulate stage spans (have %v)", spanNames(doc))
	}

	// Causal ordering after skew correction: the worker's run sits inside
	// the coordinator's lease window, which sits inside the job root.
	lease, run, job := idx["dist/lease"], idx["run"], idx["job"]
	if run.ts < lease.ts || run.end > lease.end {
		t.Fatalf("run [%d,%d] escapes lease [%d,%d] (skew_us=%d)",
			run.ts, run.end, lease.ts, lease.end, doc.SkewUS)
	}
	if lease.ts < job.ts || lease.end > job.end {
		t.Fatalf("lease [%d,%d] escapes job [%d,%d]", lease.ts, lease.end, job.ts, job.end)
	}

	// The aggregate view saw this job's stage durations.
	resp, err := http.Get(ts.URL + "/v1/traces/summary")
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Schema  string                                      `json:"schema"`
		Jobs    uint64                                      `json:"jobs"`
		ByClass map[string]map[string]dtrace.StageQuantiles `json:"by_class"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sum)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Schema != dtrace.SummarySchema || sum.Jobs < 1 {
		t.Fatalf("summary = schema %q jobs %d", sum.Schema, sum.Jobs)
	}
	foundRun := false
	for _, stages := range sum.ByClass {
		if q, ok := stages["run"]; ok && q.Count >= 1 {
			foundRun = true
		}
	}
	if !foundRun {
		t.Fatalf("summary has no run-stage quantiles: %+v", sum.ByClass)
	}
}

func spanNames(doc traceDoc) []string {
	var names []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names = append(names, ev.Name)
		}
	}
	return names
}

// TestLocalTraceTimeline: single-node mode records the same timeline
// shape — coordinator spans plus "local" worker-track spans — with zero
// skew (one process, one clock) and no wire spans.
func TestLocalTraceTimeline(t *testing.T) {
	core.ClearRunCache()
	ts, _ := newTestServer(t)

	jr, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"bpim"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	final := pollJob(t, ts, jr.ID)
	if final.State != "done" {
		t.Fatalf("job: %s (%s)", final.State, final.Error)
	}
	doc, code := getTrace(t, ts, jr.ID)
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d", code)
	}
	if doc.Worker != "local" || doc.SkewUS != 0 {
		t.Fatalf("local timeline: worker=%q skew=%d", doc.Worker, doc.SkewUS)
	}
	idx := eventIndex(t, doc)
	for _, name := range []string{"job", "admit", "farm/queue", "run"} {
		if _, ok := idx[name]; !ok {
			t.Fatalf("missing span %q (have %v)", name, spanNames(doc))
		}
	}
	if _, ok := idx["wire/grant"]; ok {
		t.Fatal("local timeline has a wire span")
	}
}

// TestTraceSamplingOff: with -trace-sample 0, jobs carry no trace context
// at all — no trace_id in the view, a 404 from the trace endpoint, and
// (by construction) zero spans recorded anywhere.
func TestTraceSamplingOff(t *testing.T) {
	f := farm.New(farm.Config{Workers: 2, QueueDepth: 16})
	api := newServer(f, nil)
	api.traceSample = 0
	ts := httptest.NewServer(api)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
	})

	jr, code := postJob(t, ts, `{"game":"doom3","width":320,"height":240,"design":"baseline"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	final := pollJob(t, ts, jr.ID)
	if final.State != "done" {
		t.Fatalf("job: %s (%s)", final.State, final.Error)
	}
	if final.TraceID != "" {
		t.Fatalf("unsampled job has trace_id %q", final.TraceID)
	}
	if _, code := getTrace(t, ts, jr.ID); code != http.StatusNotFound {
		t.Fatalf("GET trace on unsampled job = %d, want 404", code)
	}
}

// TestReplayMintsFreshTraceRoot: building the same spec from the same
// origin twice (exactly what journal replay does) mints distinct trace
// roots — a replayed job's timeline never aliases its ancestor's.
func TestReplayMintsFreshTraceRoot(t *testing.T) {
	f := farm.New(farm.Config{Workers: 1, QueueDepth: 4})
	api := newServer(f, nil)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := f.Close(ctx); err != nil {
			t.Error(err)
		}
	})

	req := suite.Spec{Game: "doom3", Width: 320, Height: 240, Design: "baseline"}
	t1, err := api.buildTask(&req, "journal:rec-000042")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := api.buildTask(&req, "journal:rec-000042")
	if err != nil {
		t.Fatal(err)
	}
	c1, ok1 := dtrace.Parse(t1.Trace)
	c2, ok2 := dtrace.Parse(t2.Trace)
	if !ok1 || !ok2 {
		t.Fatalf("minted contexts do not parse: %q, %q", t1.Trace, t2.Trace)
	}
	if c1.TraceID == c2.TraceID {
		t.Fatalf("replay reused trace root %s", c1.TraceID)
	}
}
