package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/farm/admit"
)

const testSuiteDoc = `{
  "schema": "pim-render/suite/v1",
  "name": "mini",
  "defaults": {"width": 160, "height": 120},
  "cases": [
    {"id": "wolf-base", "tags": ["wolf"], "tier": "smoke", "spec": {"game": "wolf"}},
    {"id": "riddick-bpim", "tags": ["riddick"], "tier": "standard", "spec": {"game": "riddick", "design": "bpim"}}
  ]
}`

func postSuite(t *testing.T, ts *httptest.Server, path, body string) (suiteResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr suiteResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp.StatusCode
}

func pollSuite(t *testing.T, ts *httptest.Server, id string) suiteResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/suites/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sr suiteResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sr.State != "running" {
			return sr
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("suite %s did not settle", id)
	return suiteResponse{}
}

func TestSuiteSubmitAndRollup(t *testing.T) {
	ts, _ := newTestServer(t)
	sr, code := postSuite(t, ts, "/v1/suites", testSuiteDoc)
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	if sr.Name != "mini" || sr.Total != 2 || len(sr.Cases) != 2 {
		t.Fatalf("accepted view %+v", sr)
	}
	if sr.Cases[0].Case != "wolf-base" || sr.Cases[1].Case != "riddick-bpim" {
		t.Fatalf("case order %+v", sr.Cases)
	}
	final := pollSuite(t, ts, sr.ID)
	if final.State != "done" || final.Done != 2 {
		t.Fatalf("final view %+v", final)
	}
	for _, c := range final.Cases {
		if c.State != "done" || c.Error != "" {
			t.Fatalf("case %+v not done", c)
		}
		// Every case is an ordinary farm job with the full job surface.
		jr := pollJob(t, ts, c.Job)
		if jr.Result == nil || jr.Result.Cycles == 0 {
			t.Fatalf("case job %s has no result", c.Job)
		}
		if jr.Request == nil || jr.Request.Game == "" {
			t.Fatalf("case job %s lost its spec", c.Job)
		}
	}
	// The suite shows up in the listing.
	resp, err := http.Get(ts.URL + "/v1/suites")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Suites []suiteResponse `json:"suites"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Suites) != 1 || list.Suites[0].ID != sr.ID {
		t.Fatalf("listing %+v err %v", list, err)
	}
}

func TestSuiteFilterQuery(t *testing.T) {
	ts, _ := newTestServer(t)
	sr, code := postSuite(t, ts, "/v1/suites?tier=smoke", testSuiteDoc)
	if code != http.StatusAccepted || sr.Total != 1 || sr.Cases[0].Case != "wolf-base" {
		t.Fatalf("status %d view %+v", code, sr)
	}
	if _, code := postSuite(t, ts, "/v1/suites?tags=nope", testSuiteDoc); code != http.StatusBadRequest {
		t.Fatalf("empty selection status %d", code)
	}
}

func TestSuiteRejectsBadDocuments(t *testing.T) {
	ts, _ := newTestServer(t)
	bad := []struct{ name, doc string }{
		{"not json", "{"},
		{"unknown field", strings.Replace(testSuiteDoc, `"name": "mini",`, `"name": "mini", "zz": 1,`, 1)},
		{"bad case spec", strings.Replace(testSuiteDoc, `"game": "wolf"`, `"game": "quake9"`, 1)},
		{"duplicate ids", strings.Replace(testSuiteDoc, `"id": "riddick-bpim"`, `"id": "wolf-base"`, 1)},
	}
	for _, c := range bad {
		resp, err := http.Post(ts.URL+"/v1/suites", "application/json", strings.NewReader(c.doc))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", c.name, resp.StatusCode)
		}
		// Same error shape as the rest of the API: {"error", "request_id"}.
		if err != nil || body["error"] == "" || body["request_id"] == "" {
			t.Errorf("%s: error body %v (err %v)", c.name, body, err)
		}
	}
}

func TestSuiteUnknownAndMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/suites/s-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown suite status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/suites", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /v1/suites status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("Allow header %q", allow)
	}
}

// TestSuiteWiderThanSlotPool: a suite with more cases than admission
// slots must drain through the pool (admit one / submit one, slots
// released as cases settle) instead of deadlocking against its own
// unsubmitted jobs while holding every ticket up front.
func TestSuiteWiderThanSlotPool(t *testing.T) {
	ts, _ := newAdmitServer(t, []admit.Tenant{{Name: "dev"}},
		admit.Config{Slots: 1, QueueDepth: 8})
	sr, code := postSuite(t, ts, "/v1/suites?tenant=dev", testSuiteDoc)
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	if sr.Total != 2 {
		t.Fatalf("accepted view %+v", sr)
	}
	final := pollSuite(t, ts, sr.ID)
	if final.State != "done" || final.Done != 2 {
		t.Fatalf("final view %+v", final)
	}
	// The cases ran as the tenant, under an admission ticket each.
	for _, c := range final.Cases {
		jr := pollJob(t, ts, c.Job)
		if jr.Tenant != "dev" {
			t.Fatalf("case job %s tenant %q", c.Job, jr.Tenant)
		}
	}
}

func TestSuiteEventsStream(t *testing.T) {
	ts, _ := newTestServer(t)
	sr, code := postSuite(t, ts, "/v1/suites", testSuiteDoc)
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/suites/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// Count "case" events and require a terminal "end" with the roll-up.
	var caseEvents int
	var sawEnd bool
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			event = after
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			switch event {
			case "case":
				caseEvents++
			case "end":
				var final suiteResponse
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatal(err)
				}
				if final.State != "done" || final.Done != 2 {
					t.Fatalf("end roll-up %+v", final)
				}
				sawEnd = true
			}
		}
		if sawEnd {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if caseEvents != 2 || !sawEnd {
		t.Fatalf("saw %d case events, end=%v", caseEvents, sawEnd)
	}
}
