package main

// pimfarm worker: the pull side of the distributed farm. A worker process
// polls the coordinator for leases, simulates each granted job through the
// same tiered cache path the single-node server uses (memory → shared
// store → compute), and streams progress and the encoded result back over
// HTTP. Heartbeats renew the lease while the simulation runs; if the
// coordinator declares the lease gone (job canceled, or this worker was
// presumed dead), execution is aborted promptly.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/farm/dist"
	"repro/internal/obs"
	"repro/internal/obs/dtrace"
	"repro/internal/obs/slogx"
	"repro/internal/store"
	"repro/internal/suite"
)

// workerMain is the `pimfarm worker` entry point.
func workerMain(args []string) {
	fs := flag.NewFlagSet("pimfarm worker", flag.ExitOnError)
	var (
		coordURL = fs.String("coordinator", "", "coordinator base URL (required), e.g. http://localhost:8080")
		id       = fs.String("id", "", "worker identity shown in GET /v1/workers (default host-pid)")
		storeDir = fs.String("store", "", "durable result-store directory; share it with the coordinator so results are warm hits everywhere")
		jobs     = fs.Int("jobs", 1, "leases executed concurrently")
		shards   = fs.Int("shards", 0, "frame tile-scan shards per simulation (0 = GOMAXPROCS)")
		poll     = fs.Duration("poll", dist.DefaultPoll, "idle poll interval")
		logLevel = fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		version  = fs.Bool("version", false, "print version and exit")
	)
	_ = fs.Parse(args)
	if *version {
		fmt.Printf("pimfarm worker %s (%s)\n", obs.Version(), obs.GoVersion())
		return
	}
	if *coordURL == "" {
		fatal(fmt.Errorf("worker: -coordinator URL is required"))
	}
	level, err := slogx.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	log := slogx.New(os.Stderr, slogx.Options{Level: level, Timestamps: true})
	slog.SetDefault(log)
	core.SetDefaultShards(*shards)
	if *id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			fatal(err)
		}
		// Workers attach the store to the run-cache tier chain directly:
		// a job another node already computed is a disk hit here, and every
		// result this worker computes lands in the shared directory for the
		// coordinator and its siblings to serve warm.
		core.SetResultStore(st)
		log.Info("store open", "dir", st.Dir(), "entries", st.Len(), "bytes", st.Size())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &dist.Worker{
		Client: &dist.Client{Base: *coordURL, Worker: *id},
		Slots:  *jobs,
		Poll:   *poll,
		Log:    log,
		Exec:   execGrant,
	}
	log.Info("worker starting", "id", *id, "coordinator", *coordURL,
		"jobs", *jobs, "version", obs.Version())
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fatal(err)
	}
	log.Info("worker stopped", "id", *id)
}

// execGrant simulates one leased job: the grant spec is the canonical
// pim-render/spec/v1 document (suite.Spec) the coordinator accepted, the
// result payload the pim-render/result/v1 document the coordinator
// decodes. Decoding is lenient (unknown fields ignored) so a slightly
// newer coordinator can still feed an older worker; the spec then
// re-resolves through the same Spec → Options/CacheKey mapping the
// coordinator used, and the worker refuses a grant whose spec keys
// differently (simulator version skew). Simulation progress flows through
// the progress callback, which the coordinator republishes onto the job's
// SSE stream.
//
// When the grant carried a sampled trace context, dist.Worker put a span
// recorder on ctx: the resolve/tiers/run/simulate-stage spans recorded
// here ship back to the coordinator inside the completion request and
// become the worker half of GET /v1/jobs/{id}/trace. Recording is
// observational-only — it never touches the cache key or the result.
func execGrant(ctx context.Context, g *dist.Grant, progress func(any)) ([]byte, error) {
	rec := dtrace.RecorderFrom(ctx)
	resolveStart := time.Now()
	var req suite.Spec
	if err := json.Unmarshal(g.Spec, &req); err != nil {
		return nil, fmt.Errorf("decode spec: %w", err)
	}
	rv, err := req.Resolve()
	if err != nil {
		return nil, err
	}
	rec.Span("worker", "resolve", resolveStart, time.Now(), nil)
	if rv.Key != g.Key {
		return nil, fmt.Errorf("spec keys to %q but lease granted %q (simulator version skew?)", rv.Key, g.Key)
	}
	opts := rv.Options
	var stages *dtrace.StageTracker
	if rec != nil {
		stages = &dtrace.StageTracker{}
	}
	opts.Progress = func(p core.Progress) {
		stages.Observe(p.Frame, string(p.Stage), time.Now())
		progress(p)
	}
	start := time.Now()
	res, err := core.RunCachedContext(ctx, rv.Workload, opts)
	if rec != nil {
		recordRunSpans(rec, stages, start, time.Now(), err)
	}
	if err != nil {
		return nil, err
	}
	slogx.From(ctx).Debug("job simulated", "job", g.Job, "key", g.Key,
		"dur", time.Since(start).Round(time.Millisecond).String())
	encStart := time.Now()
	payload, err := core.EncodeResultPayload(res)
	rec.Span("worker", "encode", encStart, time.Now(), nil)
	return payload, err
}
