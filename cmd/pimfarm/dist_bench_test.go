package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/farm/dist"
	"repro/internal/obs/telem"
)

// BenchmarkDistFarmThroughput is the coordinator + 2-worker throughput
// number for the perf trajectory: one iteration pushes 8 distinct render
// jobs (different frame indices, so none are cache hits) through the full
// distributed path — HTTP submit, lease, worker-side simulation,
// heartbeats, result upload, decode — and waits for all of them. The
// setup/teardown of the farm trio is excluded from the timer; the run
// cache is cleared per iteration so every job really simulates.
func BenchmarkDistFarmThroughput(b *testing.B) {
	const jobs = 8
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core.ClearRunCache()
		f := farm.New(farm.Config{Workers: 16, QueueDepth: 64})
		api := newServer(f, nil)
		coord := dist.NewCoordinator(dist.Config{TTL: time.Minute, Metrics: telem.NewRegistry()})
		api.enableDist(coord)
		ts := httptest.NewServer(api)
		wctx, wcancel := context.WithCancel(context.Background())
		for w := 0; w < 2; w++ {
			wk := &dist.Worker{
				Client: &dist.Client{Base: ts.URL, Worker: fmt.Sprintf("bench-%d", w)},
				Slots:  2,
				Poll:   5 * time.Millisecond,
				Exec:   execGrant,
			}
			go wk.Run(wctx)
		}
		b.StartTimer()

		ids := make([]string, 0, jobs)
		for n := 0; n < jobs; n++ {
			body := fmt.Sprintf(
				`{"game":"doom3","width":320,"height":240,"design":"atfim","frame_index":%d}`, n)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var jr jobResponse
			err = json.NewDecoder(resp.Body).Decode(&jr)
			resp.Body.Close()
			if err != nil || jr.ID == "" {
				b.Fatalf("submit %d: %v (%+v)", n, err, jr)
			}
			ids = append(ids, jr.ID)
		}
		for _, id := range ids {
			for {
				resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
				if err != nil {
					b.Fatal(err)
				}
				var jr jobResponse
				err = json.NewDecoder(resp.Body).Decode(&jr)
				resp.Body.Close()
				if err != nil {
					b.Fatal(err)
				}
				if jr.State == "done" {
					break
				}
				if jr.State == "failed" || jr.State == "canceled" {
					b.Fatalf("job %s: %s (%s)", id, jr.State, jr.Error)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}

		b.StopTimer()
		wcancel()
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if err := f.Close(ctx); err != nil {
			b.Error(err)
		}
		cancel()
		coord.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}
