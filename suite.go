package repro

// Declarative scenario surface: the canonical pim-render/spec/v1
// simulation spec and the pim-render/suite/v1 scenario-suite format, with
// a farm-backed runner. See DESIGN.md §14 for the formats and the
// one-true-mapping rule.

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/suite"
)

// Spec is the canonical declarative description of one simulation
// (schema pim-render/spec/v1). Its JSON form is the pimfarm job body, the
// dist lease grant, the journal record, and the per-case "spec" object in
// suite files; Resolve is the single Spec → Options/cache-key mapping in
// the tree.
type Spec = suite.Spec

// SpecSchema identifies the canonical simulation-spec document.
const SpecSchema = suite.SpecSchema

// ParseSpec decodes a standalone spec/v1 JSON document strictly (unknown
// fields are rejected).
func ParseSpec(data []byte) (*Spec, error) { return suite.ParseSpec(data) }

// ParseDesign resolves a design name ("baseline", "bpim", "s-tfim",
// "A-TFIM", ...) to its Design value; it round-trips Design.String and
// accepts the empty string as Baseline.
func ParseDesign(s string) (Design, error) { return config.ParseDesign(s) }

// Suite is a declarative scenario set (schema pim-render/suite/v1): named
// cases, each one canonical Spec plus tags/tier/difficulty metadata, with
// optional per-metric golden tolerances.
type Suite = suite.Suite

// SuiteCase is one scenario of a suite.
type SuiteCase = suite.Case

// SuiteFilter selects suite cases by tags, tier and difficulty.
type SuiteFilter = suite.Filter

// SuiteSchema identifies the suite document layout.
const SuiteSchema = suite.Schema

// LoadSuite reads, strictly parses and validates a suite/v1 file.
func LoadSuite(path string) (*Suite, error) { return suite.Load(path) }

// ParseSuite decodes and validates a suite/v1 document.
func ParseSuite(data []byte) (*Suite, error) { return suite.Parse(data) }

// SuiteCaseResult is one completed suite case.
type SuiteCaseResult = suite.CaseResult

// SuiteCaseResults is a completed suite run in declaration order; its
// ExperimentSet method renders the pim-render/experiments/v1 document the
// golden-baseline machinery checks.
type SuiteCaseResults = suite.CaseResults

// SuiteRunner executes suites on the shared sweep farm: cases fan out
// across workers (deduped by cache key), then aggregate serially in
// declaration order, so a suite run is byte-identical to running each
// case's spec alone — at any parallelism.
type SuiteRunner = suite.Runner

// SimulateSpec resolves the canonical spec and renders it, layering any
// extra runtime options (tracer, progress, frame profile) on top of the
// spec's configuration. The extras are runtime-only: they never change
// simulated results or the cache identity.
func SimulateSpec(ctx context.Context, sp *Spec, extra ...Option) (*Result, error) {
	rv, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	opts := rv.Options
	for _, fn := range extra {
		fn(&opts)
	}
	return core.RunContext(ctx, rv.Workload, opts)
}
