#!/usr/bin/env sh
# Runs the farm sweep benchmarks (serial, parallel, cold-store, warm-store)
# and writes BENCH_pr3.json: one record per benchmark with ns/op, so the
# perf trajectory across PRs is machine-readable. The cold/warm pair prices
# the durable store: cold = simulate + write-through, warm = serve every
# cell from disk with no simulation.
#
# Usage: scripts/bench.sh [output.json]
set -eu

out=${1:-BENCH_pr3.json}
cd "$(dirname "$0")/.."

go test -run '^$' -bench 'BenchmarkFarmSweep(Serial|Parallel|ColdStore|WarmStore)$' \
    -benchtime "${BENCHTIME:-1x}" -count "${COUNT:-1}" -timeout 30m \
    ./internal/farm/ | tee /tmp/bench_pr3.txt

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "%s{\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s}", sep, name, $2, $3
    sep = ",\n  "
}
END { if (sep == "") exit 1 }
' /tmp/bench_pr3.txt >/tmp/bench_pr3_rows.txt

{
    printf '{\n  "schema": "pim-render/bench/v1",\n  "benchmarks": [\n  '
    cat /tmp/bench_pr3_rows.txt
    printf '\n  ]\n}\n'
} >"$out"

echo "wrote $out"
