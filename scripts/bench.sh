#!/usr/bin/env sh
# Runs the perf-trajectory benchmarks and writes BENCH_pr7.json: one record
# per benchmark with ns/op, so the perf trajectory across PRs is
# machine-readable.
#
# Three families:
#   - BenchmarkSimulateShards{1,2,8}: one uncached single-frame simulation
#     per iteration with the tile-group scan sharded across N worker
#     goroutines. Output is byte-identical at every shard count, so
#     ns/op(1) / ns/op(N) is the intra-frame fork/join speedup. The ratio
#     is bounded by the host's core count (a single-core runner measures
#     ~1x regardless of N).
#   - BenchmarkFarmSweep{Serial,Parallel,ColdStore,WarmStore}: the PR3
#     sweep-level numbers (farm scheduling + durable store), kept for
#     continuity.
#   - BenchmarkLeaseRoundTrip / BenchmarkDistFarmThroughput: the PR7
#     distributed numbers. LeaseRoundTrip is the per-job wire-protocol
#     floor (no-op executor); DistFarmThroughput pushes 8 distinct render
#     jobs through a coordinator + 2 workers per iteration and also
#     reports jobs/s.
#
# Usage: scripts/bench.sh [output.json]
set -eu

out=${1:-BENCH_pr7.json}
cd "$(dirname "$0")/.."

go test -run '^$' -bench 'BenchmarkSimulateShards[128]$' \
    -benchtime "${BENCHTIME:-1x}" -count "${COUNT:-1}" -timeout 30m \
    . | tee /tmp/bench_pr4.txt

go test -run '^$' -bench 'BenchmarkFarmSweep(Serial|Parallel|ColdStore|WarmStore)$' \
    -benchtime "${BENCHTIME:-1x}" -count "${COUNT:-1}" -timeout 30m \
    ./internal/farm/ | tee -a /tmp/bench_pr4.txt

go test -run '^$' -bench 'BenchmarkLeaseRoundTrip$' \
    -benchtime "${BENCHTIME:-100x}" -count "${COUNT:-1}" -timeout 30m \
    ./internal/farm/dist/ | tee -a /tmp/bench_pr4.txt

go test -run '^$' -bench 'BenchmarkDistFarmThroughput$' \
    -benchtime "${BENCHTIME:-1x}" -count "${COUNT:-1}" -timeout 30m \
    ./cmd/pimfarm/ | tee -a /tmp/bench_pr4.txt

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "%s{\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s}", sep, name, $2, $3
    sep = ",\n  "
}
END { if (sep == "") exit 1 }
' /tmp/bench_pr4.txt >/tmp/bench_pr4_rows.txt

{
    printf '{\n  "schema": "pim-render/bench/v1",\n  "benchmarks": [\n  '
    cat /tmp/bench_pr4_rows.txt
    printf '\n  ]\n}\n'
} >"$out"

echo "wrote $out"
