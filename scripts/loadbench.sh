#!/usr/bin/env sh
# Runs the PR8 overload scenario and writes BENCH_pr8.json: a pimfarm
# instance with deliberately scarce admission slots, driven open-loop by
# pimload well above service rate. The report's LoadSLO entries carry the
# acceptance signature:
#
#   - interactive p99 admission wait < batch p50 (class preemption under
#     a shared backlog),
#   - the rate-limited "greedy" tenant sheds with 429 + Retry-After while
#     the in-quota tenants complete everything,
#   - -verify proves every served result byte-identical to an unloaded
#     serial in-process simulation.
#
# Usage: scripts/loadbench.sh [output.json]
set -eu

out=${1:-BENCH_pr8.json}
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill $FARM_PID 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/pimfarm" ./cmd/pimfarm
go build -o "$workdir/pimload" ./cmd/pimload

cat > "$workdir/tenants.json" <<'EOF'
{
  "schema": "pim-render/tenants/v1",
  "tenants": [
    {"name": "alice", "key": "key-alice"},
    {"name": "bob", "key": "key-bob"},
    {"name": "greedy", "key": "key-greedy", "rate": 0.2, "burst": 1}
  ]
}
EOF

addr=${LOADBENCH_ADDR:-127.0.0.1:18098}
"$workdir/pimfarm" -addr "$addr" -workers 2 \
    -tenants "$workdir/tenants.json" -admit-slots 2 -admit-timeout 2m \
    > "$workdir/farm.log" 2>&1 &
FARM_PID=$!
i=0
until curl -sf "$addr/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && { echo "pimfarm never came up"; cat "$workdir/farm.log"; exit 1; }
    sleep 0.2
done

# Offered rate is a few times what two slots sustain cold, and -distinct
# exceeds the arrival count so every spec is a cold simulation: a real
# backlog forms and the class-ordered queue has something to reorder.
"$workdir/pimload" -target "http://$addr" \
    -rate "${RATE:-10}" -duration "${DURATION:-12s}" -interactive 0.5 \
    -tenants 'alice=key-alice:2,bob=key-bob:2,greedy=key-greedy:1' \
    -width 160 -height 120 -distinct 100 \
    -out "$out" -verify

kill -TERM $FARM_PID
wait $FARM_PID 2>/dev/null || true

python3 - "$out" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["schema"] == "pim-render/bench/v1", rep["schema"]
slo = rep["slo"]
inter, batch = slo["classes"]["interactive"], slo["classes"]["batch"]
assert inter["admit_wait"]["p99_ms"] < batch["admit_wait"]["p50_ms"], (
    f"interactive p99 {inter['admit_wait']['p99_ms']}ms !< batch p50 {batch['admit_wait']['p50_ms']}ms")
greedy = slo["tenants"]["greedy"]
assert greedy["rejected"] > 0 and greedy["reject_reasons"].get("rate_limited"), greedy
for name in ("alice", "bob"):
    t = slo["tenants"][name]
    assert t["rejected"] == 0 and t["completed"] == t["arrivals"], (name, t)
assert slo["verified_specs"] >= 1, "no byte-identity verification ran"
print(f"acceptance ok: interactive p99 admit {inter['admit_wait']['p99_ms']:.0f}ms "
      f"< batch p50 {batch['admit_wait']['p50_ms']:.0f}ms; "
      f"greedy shed {greedy['rejected']}/{greedy['arrivals']}; "
      f"{slo['verified_specs']} specs byte-identical")
EOF

echo "wrote $out"
