// Qualitysweep explores the paper's Section VII-D performance-quality
// tradeoff: it renders one workload under A-TFIM at every camera-angle
// threshold and reports speedup vs. PSNR — the data behind Figs. 14-16.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	wl, err := repro.Workload("hl2", 640, 480)
	if err != nil {
		log.Fatal(err)
	}

	base, err := repro.Simulate(wl, repro.Options{Design: repro.Baseline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s, baseline %d cycles\n\n", wl.Name(), base.Cycles())
	fmt.Printf("%-16s %10s %10s %12s %10s\n", "threshold", "speedup", "PSNR(dB)", "recalcs", "offloads")

	thresholds := []struct {
		label string
		value float32
	}{
		{"0.005pi (0.9deg)", repro.Angle0005Pi},
		{"0.01pi  (1.8deg)", repro.Angle001Pi},
		{"0.05pi  (9deg)", repro.Angle005Pi},
		{"0.1pi   (18deg)", repro.Angle01Pi},
		{"no-recalc", repro.AngleNoRecalc},
	}
	for _, th := range thresholds {
		res, err := repro.Simulate(wl, repro.Options{
			Design:         repro.ATFIM,
			AngleThreshold: th.value,
		})
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := repro.PSNR(base.Image, res.Image)
		if err != nil {
			log.Fatal(err)
		}
		p := res.Frame.Activity.Path
		fmt.Printf("%-16s %9.2fx %10.1f %12d %10d\n",
			th.label,
			float64(base.Cycles())/float64(res.Cycles()),
			psnr, p.AngleRecalcs, p.OffloadPackets)
	}
	fmt.Println("\nLoosening the threshold trades image fidelity for speed;")
	fmt.Println("the paper picks 0.01pi as the default operating point.")
}
