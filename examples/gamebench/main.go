// Gamebench sweeps all five games across the four architectures — a
// condensed version of the paper's Figs. 10-13 — and prints a comparison
// matrix of rendering speedup, texture traffic and energy.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	designs := []repro.Design{repro.Baseline, repro.BPIM, repro.STFIM, repro.ATFIM}

	fmt.Printf("%-18s", "workload")
	for _, d := range designs {
		fmt.Printf(" | %-24s", d)
	}
	fmt.Println()
	fmt.Printf("%-18s", "")
	for range designs {
		fmt.Printf(" | %7s %8s %7s", "render", "traffic", "energy")
	}
	fmt.Println()

	for _, game := range []string{"doom3", "fear", "hl2", "riddick", "wolf"} {
		wl, err := repro.Workload(game, 640, 480)
		if err != nil {
			log.Fatal(err)
		}
		var baseCycles int64
		var baseTraffic uint64
		var baseEnergy float64
		fmt.Printf("%-18s", wl.Name())
		for i, d := range designs {
			res, err := repro.Simulate(wl, repro.Options{Design: d})
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				baseCycles = res.Cycles()
				baseTraffic = res.TextureTraffic()
				baseEnergy = res.Energy.Total()
			}
			fmt.Printf(" | %6.2fx %7.2fx %6.2fx",
				float64(baseCycles)/float64(res.Cycles()),
				float64(res.TextureTraffic())/float64(baseTraffic),
				res.Energy.Total()/baseEnergy)
		}
		fmt.Println()
	}
	fmt.Println("\nrender: speedup over baseline (higher is better)")
	fmt.Println("traffic: texture bytes normalized to baseline (lower is better)")
	fmt.Println("energy: normalized to baseline (lower is better)")
}
