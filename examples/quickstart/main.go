// Quickstart: simulate one game frame under the baseline GPU and under
// A-TFIM, compare performance and image quality, and dump both frames.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// Pick a Table II workload: Doom 3 at 640x480.
	wl, err := repro.Workload("doom3", 640, 480)
	if err != nil {
		log.Fatal(err)
	}

	// Render under the GDDR5 baseline.
	base, err := repro.Simulate(wl, repro.Options{Design: repro.Baseline})
	if err != nil {
		log.Fatal(err)
	}

	// Render under A-TFIM at the paper's default 0.01pi angle threshold.
	atfim, err := repro.Simulate(wl, repro.Options{Design: repro.ATFIM})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", wl.Name())
	fmt.Printf("baseline: %10d cycles, %6.2f MB texture traffic\n",
		base.Cycles(), float64(base.TextureTraffic())/(1<<20))
	fmt.Printf("A-TFIM:   %10d cycles, %6.2f MB texture traffic\n",
		atfim.Cycles(), float64(atfim.TextureTraffic())/(1<<20))
	fmt.Printf("rendering speedup:        %.2fx\n",
		float64(base.Cycles())/float64(atfim.Cycles()))
	fmt.Printf("texture filtering speedup: %.2fx\n",
		base.Frame.Activity.Path.FilterTime()/atfim.Frame.Activity.Path.FilterTime())

	psnr, err := repro.PSNR(base.Image, atfim.Image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image quality (PSNR):      %.1f dB\n", psnr)

	for name, res := range map[string]*repro.Result{
		"baseline.png": base, "atfim.png": atfim,
	} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.WritePNG(f, res.Image, wl.Width, wl.Height); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", name)
	}
}
