// Tracereplay captures a workload into the binary trace format (the role
// ATTILA's game traces play in the paper), replays it through the
// simulator, and verifies the replayed run matches a direct run exactly.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/texture"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	wl, err := workload.Get("riddick", 640, 480)
	if err != nil {
		log.Fatal(err)
	}

	// Capture: serialize the scene (geometry + texture recipes + cameras).
	sc := wl.Scene()
	var buf bytes.Buffer
	hdr := trace.Header{Name: wl.Name(), Width: wl.Width, Height: wl.Height}
	if err := trace.Write(&buf, hdr, sc, sc.TextureSpecs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %s: %d bytes (%d triangles, %d textures as recipes)\n",
		wl.Name(), buf.Len(), sc.NumTriangles(), len(sc.Textures))

	// Replay: deserialize and simulate.
	rhdr, replayed, err := trace.Read(&buf, texture.LayoutMorton)
	if err != nil {
		log.Fatal(err)
	}
	replayed.AssignTextureAddresses(mem.RegionTexture)
	fmt.Printf("replaying %s at %dx%d\n", rhdr.Name, rhdr.Width, rhdr.Height)

	opts := repro.Options{Design: repro.ATFIM}
	fromTrace, err := core.RunScene(replayed, wl, opts)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := repro.Simulate(wl, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("direct run:  %d cycles\n", direct.Cycles())
	fmt.Printf("trace replay: %d cycles\n", fromTrace.Cycles())
	psnr, err := repro.PSNR(direct.Image, fromTrace.Image)
	if err != nil {
		log.Fatal(err)
	}
	if psnr >= 99 && direct.Cycles() == fromTrace.Cycles() {
		fmt.Println("replay is bit-identical to the direct run")
	} else {
		fmt.Printf("replay differs: PSNR %.1f dB\n", psnr)
	}
}
