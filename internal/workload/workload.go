// Package workload defines the Table II benchmark catalog: five game-like
// workloads at the paper's resolutions, each mapped to a deterministic
// procedural scene (see internal/scene and DESIGN.md for the substitution
// of proprietary ATTILA traces with synthetic equivalents).
package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/scene"
	"repro/internal/texture"
)

// Workload is one Table II row: a named game at one resolution.
type Workload struct {
	// Game is the game name ("doom3", "fear", "hl2", "riddick", "wolf").
	Game string
	// Width and Height are the render resolution.
	Width, Height int
	// Library is the rendering API of the original trace ("OpenGL"/"D3D").
	Library string
	// Engine is the game's 3D engine (Table II).
	Engine string
	// Spec is the procedural scene recipe.
	Spec scene.Spec
}

// Name returns the canonical "game-WxH" identifier used in figures.
func (w Workload) Name() string {
	return fmt.Sprintf("%s-%dx%d", w.Game, w.Width, w.Height)
}

// Pixels returns the frame's pixel count.
func (w Workload) Pixels() int { return w.Width * w.Height }

// Scene generates the workload's scene (deterministic per Spec).
func (w Workload) Scene() *scene.Scene { return scene.Generate(w.Spec) }

// gameRecipe captures a game's scene character, independent of resolution.
type gameRecipe struct {
	library, engine string
	seed            uint64
	segments        int
	props           int
	textures        int
	texSize         int
	obliqueBias     float32
	ambient         float32
	kinds           []texture.SynthKind
}

// The five games. Knobs are chosen to differentiate the workloads the way
// the paper's Fig. 2/Fig. 4 bars differ: doom3 is texture-heavy indoor with
// strong oblique floors (high aniso demand); fear has dense props
// (overdraw); hl2 mixes large textures; riddick is dark with fewer
// textures; wolf is corridor-style with grates (aliasing-prone).
var games = map[string]gameRecipe{
	"doom3": {
		library: "OpenGL", engine: "Id Tech 4", seed: 0xD003,
		segments: 14, props: 60, textures: 12, texSize: 512,
		obliqueBias: 0.9, ambient: 0.30,
		kinds: []texture.SynthKind{texture.SynthBrick, texture.SynthMetal, texture.SynthNoise, texture.SynthGrate},
	},
	"fear": {
		library: "D3D", engine: "Jupiter EX", seed: 0xFEA2,
		segments: 12, props: 110, textures: 10, texSize: 512,
		obliqueBias: 0.6, ambient: 0.35,
		kinds: []texture.SynthKind{texture.SynthNoise, texture.SynthChecker, texture.SynthMarble, texture.SynthMetal},
	},
	"hl2": {
		library: "D3D", engine: "Source Engine", seed: 0x4A12,
		segments: 16, props: 80, textures: 14, texSize: 1024,
		obliqueBias: 0.75, ambient: 0.40,
		kinds: []texture.SynthKind{texture.SynthBrick, texture.SynthWood, texture.SynthNoise, texture.SynthChecker},
	},
	"riddick": {
		library: "OpenGL", engine: "In-House Engine", seed: 0x21DD,
		segments: 10, props: 50, textures: 8, texSize: 256,
		obliqueBias: 0.5, ambient: 0.22,
		kinds: []texture.SynthKind{texture.SynthMetal, texture.SynthNoise, texture.SynthGrate},
	},
	"wolf": {
		library: "D3D", engine: "Id Tech 4", seed: 0x301F,
		segments: 12, props: 70, textures: 10, texSize: 512,
		obliqueBias: 0.8, ambient: 0.33,
		kinds: []texture.SynthKind{texture.SynthGrate, texture.SynthBrick, texture.SynthWood},
	},
}

// tableII lists the game/resolution pairs of Table II.
var tableII = []struct {
	game string
	w, h int
}{
	{"doom3", 1280, 1024},
	{"doom3", 640, 480},
	{"doom3", 320, 240},
	{"fear", 1280, 1024},
	{"fear", 640, 480},
	{"fear", 320, 240},
	{"hl2", 1280, 1024},
	{"hl2", 640, 480},
	{"riddick", 640, 480},
	{"wolf", 640, 480},
}

// Get builds the workload for a game at a resolution. Unknown games return
// an error listing the catalog.
func Get(game string, w, h int) (Workload, error) {
	r, ok := games[strings.ToLower(game)]
	if !ok {
		return Workload{}, fmt.Errorf("unknown game %q (have: %s)", game, strings.Join(GameNames(), ", "))
	}
	return Workload{
		Game:    strings.ToLower(game),
		Width:   w,
		Height:  h,
		Library: r.library,
		Engine:  r.engine,
		Spec: scene.Spec{
			Name:             fmt.Sprintf("%s-%dx%d", game, w, h),
			Seed:             r.seed,
			CorridorSegments: r.segments,
			Props:            r.props,
			TextureCount:     r.textures,
			TextureSize:      r.texSize,
			Frames:           8,
			ObliqueBias:      r.obliqueBias,
			Ambient:          r.ambient,
			Layout:           texture.LayoutMorton,
			Kinds:            r.kinds,
		},
	}, nil
}

// MustGet is Get that panics on error (for the built-in catalog).
func MustGet(game string, w, h int) Workload {
	wl, err := Get(game, w, h)
	if err != nil {
		panic(err)
	}
	return wl
}

// TableII returns the full Table II catalog in the paper's order.
func TableII() []Workload {
	out := make([]Workload, 0, len(tableII))
	for _, e := range tableII {
		out = append(out, MustGet(e.game, e.w, e.h))
	}
	return out
}

// FiveGames returns one representative resolution per game (the five bars
// of Fig. 4): the 640x480 capture of each.
func FiveGames() []Workload {
	names := GameNames()
	out := make([]Workload, 0, len(names))
	for _, g := range names {
		out = append(out, MustGet(g, 640, 480))
	}
	return out
}

// GameNames returns the sorted game identifiers.
func GameNames() []string {
	names := make([]string, 0, len(games))
	for g := range games {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}
