package workload

import (
	"strings"
	"testing"
)

func TestTableIICatalog(t *testing.T) {
	wls := TableII()
	if len(wls) != 10 {
		t.Fatalf("Table II has %d rows, want 10", len(wls))
	}
	// The paper's resolutions per game.
	resCount := map[string]int{}
	for _, wl := range wls {
		resCount[wl.Game]++
	}
	if resCount["doom3"] != 3 || resCount["fear"] != 3 || resCount["hl2"] != 2 ||
		resCount["riddick"] != 1 || resCount["wolf"] != 1 {
		t.Fatalf("resolution counts wrong: %v", resCount)
	}
}

func TestGetUnknownGame(t *testing.T) {
	_, err := Get("quake", 640, 480)
	if err == nil {
		t.Fatal("unknown game accepted")
	}
	if !strings.Contains(err.Error(), "doom3") {
		t.Errorf("error should list the catalog: %v", err)
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	wl, err := Get("DOOM3", 640, 480)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Game != "doom3" {
		t.Errorf("game normalized to %q", wl.Game)
	}
}

func TestWorkloadName(t *testing.T) {
	wl := MustGet("fear", 320, 240)
	if wl.Name() != "fear-320x240" {
		t.Errorf("name %q", wl.Name())
	}
	if wl.Pixels() != 320*240 {
		t.Errorf("pixels %d", wl.Pixels())
	}
}

func TestLibraryAndEngineMatchPaper(t *testing.T) {
	cases := map[string][2]string{
		"doom3":   {"OpenGL", "Id Tech 4"},
		"fear":    {"D3D", "Jupiter EX"},
		"hl2":     {"D3D", "Source Engine"},
		"riddick": {"OpenGL", "In-House Engine"},
		"wolf":    {"D3D", "Id Tech 4"},
	}
	for game, want := range cases {
		wl := MustGet(game, 640, 480)
		if wl.Library != want[0] || wl.Engine != want[1] {
			t.Errorf("%s: %s/%s want %s/%s", game, wl.Library, wl.Engine, want[0], want[1])
		}
	}
}

func TestFiveGames(t *testing.T) {
	wls := FiveGames()
	if len(wls) != 5 {
		t.Fatalf("FiveGames returned %d", len(wls))
	}
	for _, wl := range wls {
		if wl.Width != 640 || wl.Height != 480 {
			t.Errorf("%s not at 640x480", wl.Name())
		}
	}
}

func TestGameNamesSorted(t *testing.T) {
	names := GameNames()
	if len(names) != 5 {
		t.Fatalf("%d games", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

func TestScenesDifferPerGame(t *testing.T) {
	a := MustGet("doom3", 320, 240).Scene()
	b := MustGet("fear", 320, 240).Scene()
	if a.NumTriangles() == b.NumTriangles() && len(a.Textures) == len(b.Textures) {
		t.Log("warning: doom3 and fear scenes have identical gross stats")
	}
	if a.Name == b.Name {
		t.Fatal("scene names collide")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet should panic on unknown game")
		}
	}()
	MustGet("nosuch", 1, 1)
}
