package dtrace

import (
	"sort"

	"repro/internal/obs"
)

// TimelineSchema stamps the per-job trace artifact. The document is
// simultaneously a valid Chrome trace (viewers read "traceEvents" and
// ignore the extra top-level keys) and a sniffable pim-render artifact
// (cmd/pimreport switches on "schema").
const TimelineSchema = "pim-render/trace/v1"

// WorkerReport is the worker's half of one job's trace, shipped back to
// the coordinator inside the lease completion request.
type WorkerReport struct {
	// Context echoes the traceparent the grant carried.
	Context string `json:"context,omitempty"`
	// Worker is the reporting worker's identity.
	Worker string `json:"worker,omitempty"`
	// GrantRecvUS (t1) is when the worker received the grant, and SendUS
	// (t2) when it sent the completion — both Unix microseconds on the
	// worker's clock. Together with the coordinator's grant stamp (t0)
	// and completion receipt (t3) they give the NTP-style skew estimate
	// θ = ((t1−t0)+(t2−t3))/2 that puts worker spans on the
	// coordinator's clock.
	GrantRecvUS int64 `json:"grant_recv_us,omitempty"`
	SendUS      int64 `json:"send_us,omitempty"`
	// Spans are the worker-side spans (cache-tier lookup, simulate
	// stages, encode), on the worker's clock.
	Spans []Span `json:"spans,omitempty"`
	// Dropped counts spans lost to the per-job recorder cap.
	Dropped int `json:"dropped,omitempty"`
}

// Timeline is the assembled per-job trace: GET /v1/jobs/{id}/trace.
type Timeline struct {
	Schema  string `json:"schema"`
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id,omitempty"`
	Label   string `json:"label,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Class   string `json:"class,omitempty"`
	Worker  string `json:"worker,omitempty"`
	// BaseUnixUS is the coordinator-clock instant event Ts 0 maps to
	// (the root span's start), so viewers get a near-zero axis and
	// consumers can recover absolute times.
	BaseUnixUS int64 `json:"base_unix_us"`
	// SkewUS is the worker-minus-coordinator clock offset estimate that
	// was subtracted from worker span times (0 for local jobs).
	SkewUS int64 `json:"skew_us"`
	// DroppedSpans counts spans lost to recorder caps on either side.
	DroppedSpans int               `json:"dropped_spans,omitempty"`
	TraceEvents  []obs.ChromeEvent `json:"traceEvents"`
}

// Process IDs in the exported trace: the coordinator's spans and the
// executing worker's spans render as two named processes.
const (
	pidCoordinator = 1
	pidWorker      = 2
)

// Assembly is everything Assemble needs to build one job timeline.
type Assembly struct {
	// Context is the job's parsed trace context.
	Context Context
	JobID   string
	Label   string
	Tenant  string
	Class   string
	// Coordinator spans are already on the coordinator's clock.
	Coordinator []Span
	// CoordDropped counts coordinator-side spans lost to a cap.
	CoordDropped int
	// Worker is the remote half (nil for jobs that ran in-process).
	Worker *WorkerReport
	// GrantUS (t0) is the coordinator-clock grant stamp and CompleteUS
	// (t3) the coordinator-clock completion receipt; both 0 when the job
	// never crossed a process boundary.
	GrantUS    int64
	CompleteUS int64
}

// Assemble corrects worker-clock spans onto the coordinator's clock and
// merges both sides into one causally ordered Chrome trace. Worker spans
// are shifted by the skew estimate and then clamped into the lease
// window [t0, t3], so a parent lease span always encloses its worker
// children even when the RTT-bounded skew estimate is off.
func Assemble(a Assembly) *Timeline {
	tl := &Timeline{
		Schema:  TimelineSchema,
		TraceID: a.Context.TraceID,
		JobID:   a.JobID,
		Label:   a.Label,
		Tenant:  a.Tenant,
		Class:   a.Class,
	}

	type procSpan struct {
		pid int
		s   Span
	}
	spans := make([]procSpan, 0, len(a.Coordinator)+8)
	for _, s := range a.Coordinator {
		spans = append(spans, procSpan{pid: pidCoordinator, s: s})
	}
	tl.DroppedSpans = a.CoordDropped

	if w := a.Worker; w != nil {
		tl.Worker = w.Worker
		tl.DroppedSpans += w.Dropped
		t0, t1 := a.GrantUS, w.GrantRecvUS
		t2, t3 := w.SendUS, a.CompleteUS
		if t0 > 0 && t1 > 0 && t2 > 0 && t3 > 0 {
			tl.SkewUS = ((t1 - t0) + (t2 - t3)) / 2
		}
		clamp := func(t int64) int64 {
			t -= tl.SkewUS
			if t0 > 0 && t < t0 {
				t = t0
			}
			if t3 > 0 && t > t3 {
				t = t3
			}
			return t
		}
		for _, s := range w.Spans {
			s.StartUS = clamp(s.StartUS)
			s.EndUS = clamp(s.EndUS)
			spans = append(spans, procSpan{pid: pidWorker, s: s})
		}
		// Wire spans make the two network hops visible: grant out,
		// completion back. Degenerate (clamped-away) hops still render as
		// zero-length spans, keeping the catalog stable.
		if t0 > 0 && t3 > 0 {
			spans = append(spans,
				procSpan{pid: pidCoordinator, s: Span{Name: "wire/grant", Track: "wire",
					StartUS: t0, EndUS: clamp(t1)}},
				procSpan{pid: pidCoordinator, s: Span{Name: "wire/complete", Track: "wire",
					StartUS: clamp(t2), EndUS: t3}},
			)
		}
	}
	if len(spans) == 0 {
		tl.TraceEvents = []obs.ChromeEvent{}
		return tl
	}

	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].pid != spans[j].pid {
			return spans[i].pid < spans[j].pid
		}
		return spans[i].s.StartUS < spans[j].s.StartUS
	})

	base := spans[0].s.StartUS
	for _, ps := range spans {
		if ps.s.StartUS < base {
			base = ps.s.StartUS
		}
	}
	tl.BaseUnixUS = base

	// One tid per (pid, track), in order of first appearance; metadata
	// events name the processes and tracks for the viewer.
	type trackKey struct {
		pid   int
		track string
	}
	tids := map[trackKey]int{}
	nextTid := map[int]int{}
	events := make([]obs.ChromeEvent, 0, len(spans)+8)
	procName := map[int]string{pidCoordinator: "pimfarm coordinator", pidWorker: "worker"}
	if tl.Worker != "" {
		procName[pidWorker] = "worker " + tl.Worker
	}
	seenPid := map[int]bool{}
	for _, ps := range spans {
		if !seenPid[ps.pid] {
			seenPid[ps.pid] = true
			events = append(events, obs.ChromeEvent{
				Name: "process_name", Ph: "M", Pid: ps.pid,
				Args: map[string]any{"name": procName[ps.pid]},
			})
		}
		k := trackKey{pid: ps.pid, track: ps.s.Track}
		tid, ok := tids[k]
		if !ok {
			nextTid[ps.pid]++
			tid = nextTid[ps.pid]
			tids[k] = tid
			name := ps.s.Track
			if name == "" {
				name = "main"
			}
			events = append(events,
				obs.ChromeEvent{Name: "thread_name", Ph: "M", Pid: ps.pid, Tid: tid,
					Args: map[string]any{"name": name}},
				obs.ChromeEvent{Name: "thread_sort_index", Ph: "M", Pid: ps.pid, Tid: tid,
					Args: map[string]any{"sort_index": tid}},
			)
		}
		ev := obs.ChromeEvent{
			Name: ps.s.Name, Ph: "X",
			Ts: ps.s.StartUS - base, Dur: ps.s.EndUS - ps.s.StartUS,
			Pid: ps.pid, Tid: tid,
		}
		if ev.Dur < 0 {
			ev.Dur = 0
		}
		if len(ps.s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(ps.s.Attrs))
			for k, v := range ps.s.Attrs {
				ev.Args[k] = v
			}
		}
		events = append(events, ev)
	}
	tl.TraceEvents = events
	return tl
}

// StageDurations sums span durations per span name, in milliseconds —
// the per-stage breakdown fed to the trace summary and pimload's
// slowest-requests table.
func (tl *Timeline) StageDurations() map[string]float64 {
	if tl == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, ev := range tl.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		out[ev.Name] += float64(ev.Dur) / 1000
	}
	return out
}
