package dtrace

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultMaxSpans bounds how many spans one job may record per process.
// The cap keeps a pathological job (thousands of frames) from inflating
// completion payloads; overflow is counted, not silently lost.
const DefaultMaxSpans = 512

// Span is one recorded interval on one process's clock, in microseconds
// since the Unix epoch. Spans cross the wire inside completion payloads
// and are assembled (skew-corrected) into the job timeline.
type Span struct {
	Name  string `json:"name"`
	Track string `json:"track,omitempty"`
	// StartUS/EndUS are Unix microseconds on the recording process's
	// clock; Assemble shifts worker spans onto the coordinator's clock.
	StartUS int64             `json:"start_us"`
	EndUS   int64             `json:"end_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Recorder collects one job's spans under a bound. The zero of the
// pointer is inert: every method is nil-safe, so unsampled paths pass a
// nil recorder and record nothing.
type Recorder struct {
	ctx Context
	max int

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewRecorder builds a recorder for one sampled context. max <= 0
// selects DefaultMaxSpans.
func NewRecorder(ctx Context, max int) *Recorder {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Recorder{ctx: ctx, max: max}
}

// Context returns the trace context the recorder was built for.
func (r *Recorder) Context() Context {
	if r == nil {
		return Context{}
	}
	return r.ctx
}

// Add records one span (dropped, and counted, beyond the cap).
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.max {
		r.dropped++
		return
	}
	r.spans = append(r.spans, s)
}

// Span records one interval from wall-clock instants.
func (r *Recorder) Span(track, name string, start, end time.Time, attrs map[string]string) {
	if r == nil {
		return
	}
	r.Add(Span{Name: name, Track: track,
		StartUS: start.UnixMicro(), EndUS: end.UnixMicro(), Attrs: attrs})
}

// Spans returns a copy of the recorded spans.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Dropped reports spans lost to the cap.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// maxStageKeys bounds the distinct (frame, stage) windows one tracker
// holds; a longer animation simply stops opening new windows.
const maxStageKeys = 256

// StageTracker turns the simulation's progress callbacks into per-frame
// pipeline-stage spans: the first and last observation of each (frame,
// stage) pair bound that stage's wall-clock window. Fragment-stage
// callbacks fire concurrently from shard goroutines, so Observe is
// mutex-guarded.
type StageTracker struct {
	mu    sync.Mutex
	first time.Time
	seen  map[stageKey]*stageWindow
	order []stageKey
}

type stageKey struct {
	frame int
	stage string
}

type stageWindow struct {
	first, last time.Time
}

// Observe records one progress callback. The terminal "done" marker
// closes the clock but opens no window of its own.
func (t *StageTracker) Observe(frame int, stage string, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.first.IsZero() || now.Before(t.first) {
		t.first = now
	}
	if stage == "done" {
		return
	}
	k := stageKey{frame: frame, stage: stage}
	w, ok := t.seen[k]
	if !ok {
		if len(t.order) >= maxStageKeys {
			return
		}
		if t.seen == nil {
			t.seen = make(map[stageKey]*stageWindow)
		}
		w = &stageWindow{first: now, last: now}
		t.seen[k] = w
		t.order = append(t.order, k)
		return
	}
	if now.After(w.last) {
		w.last = now
	}
}

// FirstSeen returns the earliest observation (the moment the simulation
// actually started computing — everything before it was cache-tier
// lookup), or false when no callback ever fired (a cache hit).
func (t *StageTracker) FirstSeen() (time.Time, bool) {
	if t == nil {
		return time.Time{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.first, !t.first.IsZero()
}

// Flush emits one "simulate/<stage>" span per observed (frame, stage)
// window onto rec, ordered by window start.
func (t *StageTracker) Flush(rec *Recorder, track string) {
	if t == nil || rec == nil {
		return
	}
	t.mu.Lock()
	keys := make([]stageKey, len(t.order))
	copy(keys, t.order)
	sort.Slice(keys, func(a, b int) bool {
		return t.seen[keys[a]].first.Before(t.seen[keys[b]].first)
	})
	windows := make([]stageWindow, len(keys))
	for i, k := range keys {
		windows[i] = *t.seen[k]
	}
	t.mu.Unlock()
	for i, k := range keys {
		rec.Span(track, "simulate/"+k.stage, windows[i].first, windows[i].last,
			map[string]string{"frame": strconv.Itoa(k.frame)})
	}
}
