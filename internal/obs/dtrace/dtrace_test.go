package dtrace

import (
	"strings"
	"testing"
	"time"
)

func TestContextRoundTrip(t *testing.T) {
	c := Mint("r-000001", 1)
	if !c.Valid() || !c.Sampled {
		t.Fatalf("minted context invalid or unsampled: %+v", c)
	}
	wire := c.String()
	if !strings.HasPrefix(wire, "00-") || !strings.HasSuffix(wire, "-01") {
		t.Fatalf("bad wire form %q", wire)
	}
	got, ok := Parse(wire)
	if !ok || got != c {
		t.Fatalf("Parse(%q) = %+v, %v; want %+v", wire, got, ok, c)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"01-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("b", 16) + "-01",
		"00-" + strings.Repeat("A", 32) + "-" + strings.Repeat("b", 16) + "-01",
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-1",
	}
	for _, s := range bad {
		if _, ok := Parse(s); ok {
			t.Errorf("Parse(%q) accepted malformed input", s)
		}
	}
}

func TestMintUniqueAndSampling(t *testing.T) {
	a, b := Mint("same-seed", 1), Mint("same-seed", 1)
	if a.TraceID == b.TraceID {
		t.Fatalf("two mints with one seed collided: %s", a.TraceID)
	}
	if c := Mint("x", 0); c.Sampled {
		t.Fatalf("sample=0 minted a sampled context")
	}
	// Fractional sampling is deterministic per trace ID.
	c := Mint("y", 0.5)
	if c.Sampled != sampled(c.TraceID, 0.5) {
		t.Fatalf("sampling decision not reproducible from trace ID")
	}
	// And roughly proportional.
	hits := 0
	for i := 0; i < 200; i++ {
		if Mint("z", 0.5).Sampled {
			hits++
		}
	}
	if hits < 50 || hits > 150 {
		t.Fatalf("sample=0.5 hit %d/200 mints", hits)
	}
}

func TestRecorderBoundAndNilSafety(t *testing.T) {
	var nilRec *Recorder
	nilRec.Add(Span{Name: "x"})
	if nilRec.Spans() != nil || nilRec.Dropped() != 0 || nilRec.Context().Sampled {
		t.Fatal("nil recorder must be inert")
	}
	r := NewRecorder(Mint("s", 1), 3)
	for i := 0; i < 5; i++ {
		r.Add(Span{Name: "s", StartUS: int64(i), EndUS: int64(i + 1)})
	}
	if len(r.Spans()) != 3 || r.Dropped() != 2 {
		t.Fatalf("got %d spans, %d dropped; want 3, 2", len(r.Spans()), r.Dropped())
	}
}

func TestStageTracker(t *testing.T) {
	var st StageTracker
	base := time.UnixMicro(1_000_000)
	st.Observe(0, "geometry", base)
	st.Observe(0, "geometry", base.Add(2*time.Millisecond))
	st.Observe(0, "fragment", base.Add(3*time.Millisecond))
	st.Observe(0, "fragment", base.Add(9*time.Millisecond))
	st.Observe(0, "done", base.Add(10*time.Millisecond))
	first, ok := st.FirstSeen()
	if !ok || !first.Equal(base) {
		t.Fatalf("FirstSeen = %v, %v; want %v, true", first, ok, base)
	}
	rec := NewRecorder(Mint("s", 1), 0)
	st.Flush(rec, "simulate")
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (done opens no window): %+v", len(spans), spans)
	}
	if spans[0].Name != "simulate/geometry" || spans[1].Name != "simulate/fragment" {
		t.Fatalf("wrong order/names: %+v", spans)
	}
	if got := spans[1].EndUS - spans[1].StartUS; got != 6000 {
		t.Fatalf("fragment window = %dµs, want 6000", got)
	}
	if spans[0].Attrs["frame"] != "0" {
		t.Fatalf("missing frame attr: %+v", spans[0].Attrs)
	}
}

func TestAssembleSkewCorrection(t *testing.T) {
	// Coordinator clock: grant at 1_000_000µs, completion receipt at
	// 1_100_000µs. Worker clock runs 500_000µs ahead; each wire hop takes
	// 2_000µs.
	const skew, hop = 500_000, 2_000
	t0 := int64(1_000_000)
	t1 := t0 + hop + skew
	t2 := int64(1_098_000) + skew
	t3 := int64(1_100_000)
	ctx := Mint("req", 1)
	tl := Assemble(Assembly{
		Context: ctx,
		JobID:   "job-000001",
		Coordinator: []Span{
			{Name: "job", Track: "coordinator", StartUS: t0 - 50_000, EndUS: t3},
			{Name: "dist/lease", Track: "coordinator", StartUS: t0, EndUS: t3},
		},
		Worker: &WorkerReport{
			Worker:      "w1",
			GrantRecvUS: t1,
			SendUS:      t2,
			Spans: []Span{
				{Name: "run", Track: "worker", StartUS: t1 + 1_000, EndUS: t2 - 1_000},
			},
		},
		GrantUS:    t0,
		CompleteUS: t3,
	})
	if tl.Schema != TimelineSchema || tl.TraceID != ctx.TraceID {
		t.Fatalf("bad header: %+v", tl)
	}
	if tl.SkewUS != skew {
		t.Fatalf("skew estimate = %d, want %d", tl.SkewUS, skew)
	}
	var lease, run *spanAt
	for _, ev := range tl.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		at := &spanAt{start: ev.Ts, end: ev.Ts + ev.Dur}
		switch ev.Name {
		case "dist/lease":
			lease = at
		case "run":
			run = at
		}
	}
	if lease == nil || run == nil {
		t.Fatalf("missing spans in %+v", tl.TraceEvents)
	}
	// Corrected worker span sits inside the coordinator's lease span.
	if run.start < lease.start || run.end > lease.end {
		t.Fatalf("worker span [%d,%d] escapes lease span [%d,%d]",
			run.start, run.end, lease.start, lease.end)
	}
	stages := tl.StageDurations()
	if stages["run"] <= 0 || stages["wire/grant"] <= 0 || stages["wire/complete"] <= 0 {
		t.Fatalf("missing stage durations: %v", stages)
	}
}

type spanAt struct{ start, end int64 }

func TestAssembleClampsWildSkew(t *testing.T) {
	// A worker whose stamps are garbage must still land inside the lease.
	t0, t3 := int64(1_000_000), int64(1_010_000)
	tl := Assemble(Assembly{
		Context: Mint("req", 1),
		Coordinator: []Span{
			{Name: "dist/lease", Track: "coordinator", StartUS: t0, EndUS: t3},
		},
		Worker: &WorkerReport{
			GrantRecvUS: 5, SendUS: 10,
			Spans: []Span{{Name: "run", Track: "worker", StartUS: 2, EndUS: 1_000_000_000}},
		},
		GrantUS: t0, CompleteUS: t3,
	})
	for _, ev := range tl.TraceEvents {
		if ev.Ph != "X" && ev.Name != "run" {
			continue
		}
		if ev.Ph == "X" {
			start := ev.Ts + tl.BaseUnixUS
			end := start + ev.Dur
			if start < t0 || end > t3 {
				t.Fatalf("span %s [%d,%d] escapes [%d,%d]", ev.Name, start, end, t0, t3)
			}
		}
	}
}

func TestSummaryQuantiles(t *testing.T) {
	s := NewSummary(0, 0)
	for i := 1; i <= 100; i++ {
		s.Observe("interactive", "acme", map[string]float64{"run": float64(i)})
	}
	v := s.Snapshot()
	if v.Schema != SummarySchema || v.Jobs != 100 {
		t.Fatalf("bad snapshot header: %+v", v)
	}
	q := v.ByClass["interactive"]["run"]
	if q.Count != 100 || q.P50MS < 45 || q.P50MS > 55 || q.P99MS < 95 {
		t.Fatalf("bad quantiles: %+v", q)
	}
	if _, ok := v.ByTenant["acme"]; !ok {
		t.Fatalf("tenant grouping missing: %+v", v.ByTenant)
	}
}

func TestSummaryBounds(t *testing.T) {
	s := NewSummary(2, 4)
	for _, class := range []string{"a", "b", "c"} {
		s.Observe(class, "", map[string]float64{"run": 1})
	}
	if len(s.Snapshot().ByClass) != 2 {
		t.Fatalf("key cap not enforced: %+v", s.Snapshot().ByClass)
	}
	for i := 0; i < 100; i++ {
		s.Observe("a", "", map[string]float64{"run": float64(i)})
	}
	q := s.Snapshot().ByClass["a"]["run"]
	if q.Count != 101 {
		t.Fatalf("total count = %d, want 101", q.Count)
	}
	// Ring holds only the last 4 samples (96..99).
	if q.P50MS < 96 {
		t.Fatalf("ring did not slide: %+v", q)
	}
}
