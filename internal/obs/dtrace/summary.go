package dtrace

import (
	"sync"

	"repro/internal/stats"
)

// SummarySchema stamps the GET /v1/traces/summary body.
const SummarySchema = "pim-render/trace-summary/v1"

// Bounds keeping the aggregator O(1) per server: distinct grouping keys
// (classes are two; tenants arrive at runtime) and retained samples per
// (key, stage) ring.
const (
	DefaultSummaryKeys    = 64
	DefaultSummarySamples = 2048
)

// Summary aggregates per-stage latencies across finished traced jobs,
// grouped by class and by tenant. Rings bound memory; quantiles are
// computed at snapshot time through stats.Distribution.
type Summary struct {
	mu         sync.Mutex
	maxKeys    int
	maxSamples int
	jobs       uint64
	byClass    map[string]map[string]*ring
	byTenant   map[string]map[string]*ring
}

// ring is a bounded sliding sample window.
type ring struct {
	buf  []float64
	n    int // total observed
	next int
}

func (r *ring) observe(v float64, cap int) {
	if len(r.buf) < cap {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next] = v
		r.next = (r.next + 1) % len(r.buf)
	}
	r.n++
}

// NewSummary builds an aggregator; non-positive bounds select the
// defaults.
func NewSummary(maxKeys, maxSamples int) *Summary {
	if maxKeys <= 0 {
		maxKeys = DefaultSummaryKeys
	}
	if maxSamples <= 0 {
		maxSamples = DefaultSummarySamples
	}
	return &Summary{
		maxKeys:    maxKeys,
		maxSamples: maxSamples,
		byClass:    make(map[string]map[string]*ring),
		byTenant:   make(map[string]map[string]*ring),
	}
}

// Observe folds one finished job's per-stage durations (milliseconds,
// from Timeline.StageDurations) into the aggregate. Empty class/tenant
// group under "unknown" / are skipped respectively.
func (s *Summary) Observe(class, tenant string, stages map[string]float64) {
	if s == nil || len(stages) == 0 {
		return
	}
	if class == "" {
		class = "unknown"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs++
	s.observeLocked(s.byClass, class, stages)
	if tenant != "" {
		s.observeLocked(s.byTenant, tenant, stages)
	}
}

func (s *Summary) observeLocked(group map[string]map[string]*ring, key string, stages map[string]float64) {
	rings, ok := group[key]
	if !ok {
		if len(group) >= s.maxKeys {
			return // cardinality cap: new keys stop aggregating
		}
		rings = make(map[string]*ring)
		group[key] = rings
	}
	for stage, ms := range stages {
		r, ok := rings[stage]
		if !ok {
			if len(rings) >= s.maxKeys {
				continue
			}
			r = &ring{}
			rings[stage] = r
		}
		r.observe(ms, s.maxSamples)
	}
}

// StageQuantiles is one (group, stage) latency digest in milliseconds.
type StageQuantiles struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// SummaryView is the GET /v1/traces/summary body.
type SummaryView struct {
	Schema string `json:"schema"`
	// Jobs counts traced jobs folded in since the server started.
	Jobs     uint64                               `json:"jobs"`
	ByClass  map[string]map[string]StageQuantiles `json:"by_class,omitempty"`
	ByTenant map[string]map[string]StageQuantiles `json:"by_tenant,omitempty"`
}

// Snapshot computes the current per-stage quantiles.
func (s *Summary) Snapshot() SummaryView {
	v := SummaryView{Schema: SummarySchema}
	if s == nil {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v.Jobs = s.jobs
	v.ByClass = snapshotGroup(s.byClass)
	v.ByTenant = snapshotGroup(s.byTenant)
	return v
}

func snapshotGroup(group map[string]map[string]*ring) map[string]map[string]StageQuantiles {
	if len(group) == 0 {
		return nil
	}
	out := make(map[string]map[string]StageQuantiles, len(group))
	for key, rings := range group {
		stages := make(map[string]StageQuantiles, len(rings))
		for stage, r := range rings {
			var d stats.Distribution
			for _, v := range r.buf {
				d.Observe(v)
			}
			stages[stage] = StageQuantiles{
				Count: r.n,
				P50MS: d.Percentile(50),
				P95MS: d.Percentile(95),
				P99MS: d.Percentile(99),
			}
		}
		out[key] = stages
	}
	return out
}
