// Package dtrace is distributed tracing for the render-farm serving
// stack: a W3C-traceparent-style context (trace ID, span ID, sampled
// flag) minted when pimfarm accepts a submission, carried through
// admission, the farm scheduler and the dist lease protocol into the
// worker, and assembled back into one causally ordered per-job timeline.
//
// The in-process tracer (internal/obs) stops at process boundaries; this
// package is what survives them. It deliberately reuses the same Chrome
// trace-event JSON export (obs.ChromeEvent) so a per-job timeline opens
// in the same viewers as a `pimsim -tracefile` dump, with a "schema" top
// level key (ignored by the viewers) so tooling can sniff the artifact.
//
// Tracing is observational-only: contexts never enter core.CacheKey,
// recorded spans are bounded per job, and an unsampled context records
// nothing anywhere — results are byte-identical with tracing on or off.
package dtrace

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"
)

// Context is one propagated trace context. The wire form is the W3C
// traceparent layout: "00-<32 hex trace id>-<16 hex span id>-<2 hex
// flags>", flags bit 0 = sampled.
type Context struct {
	// TraceID identifies the whole request tree (32 lowercase hex chars).
	TraceID string
	// SpanID identifies the minting hop (16 lowercase hex chars).
	SpanID string
	// Sampled is the recording decision, made once at mint time and
	// honored by every hop: unsampled contexts record zero spans.
	Sampled bool
}

// Valid reports whether the context has well-formed IDs.
func (c Context) Valid() bool {
	return isHex(c.TraceID, 32) && isHex(c.SpanID, 16) &&
		c.TraceID != strings.Repeat("0", 32) && c.SpanID != strings.Repeat("0", 16)
}

// String renders the traceparent wire form ("" for an invalid context).
func (c Context) String() string {
	if !c.Valid() {
		return ""
	}
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	return "00-" + c.TraceID + "-" + c.SpanID + "-" + flags
}

// Parse decodes a traceparent string. ok is false for anything
// malformed — callers treat that as "no trace context".
func Parse(s string) (Context, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 4 || parts[0] != "00" || !isHex(parts[3], 2) {
		return Context{}, false
	}
	c := Context{TraceID: parts[1], SpanID: parts[2], Sampled: parts[3] == "01"}
	if !c.Valid() {
		return Context{}, false
	}
	return c, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// mintSeq makes every minted trace ID process-unique even for identical
// seeds (a client may reuse an X-Request-ID across retries; each retry
// is its own trace, correlated through the request_id span attribute).
var mintSeq atomic.Uint64

// Mint creates a root context. seed is the sanitized request ID (or any
// origin tag) so trace IDs are operator-correlatable; uniqueness comes
// from a process nonce, not the seed. sample in [0,1] is the fraction of
// traces recorded: the decision hashes the trace ID, so every hop that
// re-derives it agrees, and sample<=0 yields an unsampled context that
// records nothing.
func Mint(seed string, sample float64) Context {
	n := mintSeq.Add(1)
	c := Context{
		TraceID: hex64(seed, n, 0x74726163) + hex64(seed, n, 0x65696478),
		SpanID:  hex64(seed, n, 0x7370616e),
	}
	c.Sampled = sampled(c.TraceID, sample)
	return c
}

// sampled is the deterministic sampling decision for a trace ID.
func sampled(traceID string, sample float64) bool {
	if sample >= 1 {
		return true
	}
	if sample <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(traceID))
	frac := float64(h.Sum64()%1_000_000) / 1_000_000
	return frac < sample
}

// hex64 derives one 16-hex-char half from the seed, the mint counter, a
// salt, and the wall clock (so restarts do not repeat IDs).
func hex64(seed string, n uint64, salt uint64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d", seed, n, salt, time.Now().UnixNano())
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return fmt.Sprintf("%016x", v)
}

// recorderKey carries a *Recorder in a context (the worker attaches one
// to the execution context; exec code records spans into it without any
// signature changes along the way).
type recorderKey struct{}

// WithRecorder returns ctx carrying rec.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom returns the recorder carried by ctx, or nil (every
// Recorder method is nil-safe, so callers need no guard).
func RecorderFrom(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}
