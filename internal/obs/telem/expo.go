package telem

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type for the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// famView is a consistent copy of one family taken under the registry
// lock; the series pointers stay live (instruments are individually
// synchronized) but the slice itself is immune to concurrent
// registration.
type famView struct {
	name    string
	help    string
	kind    Kind
	buckets []float64
	series  []*series
}

// WriteTo renders every registered family in Prometheus text exposition
// format v0.0.4: families sorted by name, each preceded by its # HELP and
// # TYPE lines, series sorted by label signature, histograms expanded to
// cumulative _bucket{le=...} samples plus _sum and _count.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	fams := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		fv := famView{name: f.name, help: f.help, kind: f.kind, buckets: f.buckets}
		fv.series = make([]*series, 0, len(f.series))
		for _, s := range f.series {
			fv.series = append(fv.series, s)
		}
		sort.Slice(fv.series, func(i, j int) bool { return fv.series[i].labels < fv.series[j].labels })
		fams = append(fams, fv)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	for _, f := range fams {
		writeFamily(cw, f)
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, cw.err
}

// Handler returns an http.Handler serving the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteTo(w)
	})
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) printf(format string, args ...any) {
	if cw.err != nil {
		return
	}
	n, err := fmt.Fprintf(cw.w, format, args...)
	cw.n += int64(n)
	cw.err = err
}

func writeFamily(cw *countingWriter, f famView) {
	if f.help != "" {
		cw.printf("# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	cw.printf("# TYPE %s %s\n", f.name, f.kind)
	for _, s := range f.series {
		switch f.kind {
		case KindCounter:
			cw.printf("%s %s\n", sampleName(f.name, s.labels), formatFloat(float64(s.c.Value())))
		case KindGauge:
			cw.printf("%s %s\n", sampleName(f.name, s.labels), formatFloat(s.g.Value()))
		case KindHistogram:
			counts, sum, count := s.h.snapshot()
			var cum uint64
			for i, b := range f.buckets {
				cum += counts[i]
				cw.printf("%s %d\n", sampleName(f.name+"_bucket", joinLabels(s.labels, `le="`+formatFloat(b)+`"`)), cum)
			}
			cum += counts[len(f.buckets)]
			cw.printf("%s %d\n", sampleName(f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`)), cum)
			cw.printf("%s %s\n", sampleName(f.name+"_sum", s.labels), formatFloat(sum))
			cw.printf("%s %d\n", sampleName(f.name+"_count", s.labels), count)
		}
	}
}

// sampleName renders `name` or `name{labels}`.
func sampleName(name, sig string) string {
	if sig == "" {
		return name
	}
	return name + "{" + sig + "}"
}

// joinLabels appends one more rendered label pair to a signature.
func joinLabels(sig, pair string) string {
	if sig == "" {
		return pair
	}
	return sig + "," + pair
}

// formatFloat renders a sample value: shortest round-trip representation,
// with the exposition spellings for infinities.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline in HELP text (quotes are legal
// there, unlike in label values).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
