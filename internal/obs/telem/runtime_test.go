package telem

import (
	"strings"
	"testing"
)

// TestSampleRuntime: the Go health gauges appear in the exposition with
// sane values after a sample, and refresh on the next one.
func TestSampleRuntime(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range []string{
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
		"go_memstats_heap_sys_bytes",
		"go_memstats_gc_pause_total_seconds",
		"go_memstats_gc_total",
	} {
		if !strings.Contains(text, "# TYPE "+name+" gauge") {
			t.Errorf("exposition missing gauge %q", name)
		}
	}

	if g := r.Gauge("go_goroutines", "", nil).Value(); g < 1 {
		t.Errorf("go_goroutines = %g, want >= 1", g)
	}
	if h := r.Gauge("go_memstats_heap_alloc_bytes", "", nil).Value(); h <= 0 {
		t.Errorf("heap_alloc = %g, want > 0", h)
	}

	// A second sample must refresh in place, not add series.
	SampleRuntime(r)
	var sb2 strings.Builder
	if _, err := r.WriteTo(&sb2); err != nil {
		t.Fatal(err)
	}
	if c, c2 := strings.Count(text, "\ngo_goroutines "), strings.Count(sb2.String(), "\ngo_goroutines "); c != 1 || c2 != 1 {
		t.Errorf("go_goroutines sample lines: first scrape %d, second %d, want 1 each", c, c2)
	}
}

func TestSampleRuntimeNilRegistry(t *testing.T) {
	SampleRuntime(nil) // must not panic
}
