// Package telem is the live-telemetry counterpart to internal/obs's
// one-shot JSON snapshots: a dependency-free, race-safe metrics registry —
// counters, gauges and fixed-bucket histograms, all with constant-label
// support — plus a Prometheus text-exposition (version 0.0.4) encoder
// (expo.go) that cmd/pimfarm serves as GET /metrics.
//
// Instruments are registered get-or-create: asking for the same
// (name, labels) pair twice returns the same instrument, so independent
// layers (farm scheduler, durable store, core run cache, GPU pipeline)
// can publish into one shared registry without coordination. All methods
// are safe for concurrent use, and every instrument method is nil-safe —
// a nil *Counter/*Gauge/*Histogram is inert — so instrumented code never
// needs telemetry-enabled guards.
//
// Telemetry is observational only: instruments hold host-side counts and
// never feed back into the simulation, so simulated results are
// byte-identical with and without scraping.
package telem

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a set of constant label name→value pairs fixed at
// registration time. Each distinct label set of a metric name is its own
// series.
type Labels map[string]string

// Kind is a metric family's type in the exposition format.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefBuckets is the default histogram bucket layout (upper bounds in
// seconds), covering sub-millisecond cache hits through multi-minute
// frame simulations.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set, incremented and decremented.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (negative to subtract). Nil-safe.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one. Nil-safe.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. Nil-safe.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: observations are counted into
// the first bucket whose upper bound is >= the value (an implicit +Inf
// bucket catches the rest), with a running sum and count.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // strictly increasing upper bounds (le), +Inf implicit
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records v. NaN observations are dropped. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot copies the histogram state for exposition.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]uint64, len(h.counts))
	copy(counts, h.counts)
	return counts, h.sum, h.count
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// series is one (name, labels) instrument.
type series struct {
	labels string // rendered, escaped, key-sorted signature: a="b",c="d"
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series of one metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64
	series  map[string]*series
}

// Registry holds metric families and renders them in exposition format.
// The zero value is not usable; use NewRegistry or Default. A nil
// *Registry is valid and inert: registrations return nil instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every layer publishes into
// unless handed an explicit one.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter for (name, labels), registering it on first
// use. Panics if name is invalid or already registered as another kind.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, nil, labels).c
}

// Gauge returns the gauge for (name, labels), registering it on first
// use. Panics if name is invalid or already registered as another kind.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, nil, labels).g
}

// Histogram returns the histogram for (name, labels), registering it on
// first use with the given bucket upper bounds (nil selects DefBuckets;
// bounds must be strictly increasing). The bucket layout is fixed at
// first registration; later calls for the same name reuse it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telem: histogram %q buckets not strictly increasing", name))
		}
	}
	return r.lookup(name, help, KindHistogram, buckets, labels).h
}

// lookup is the get-or-create core shared by the three instrument kinds.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labels Labels) *series {
	if !validName(name) {
		panic(fmt.Sprintf("telem: invalid metric name %q", name))
	}
	for k := range labels {
		if !validName(k) || strings.HasPrefix(k, "__") {
			panic(fmt.Sprintf("telem: invalid label name %q on metric %q", k, name))
		}
	}
	sig := renderLabels(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		if kind == KindHistogram {
			f.buckets = append([]float64(nil), buckets...)
		}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telem: metric %q already registered as %s, requested %s", name, f.kind, kind))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: sig}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{
				bounds: f.buckets,
				counts: make([]uint64, len(f.buckets)+1),
			}
		}
		f.series[sig] = s
	}
	return s
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels serializes a label set as the exposition signature:
// key-sorted, values escaped, `k1="v1",k2="v2"`.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
