package telem

import "runtime"

// SampleRuntime refreshes the registry's Go-runtime health gauges:
// goroutine count, heap allocation/footprint and cumulative GC pause time.
// Call it just before serving a scrape so /metrics always reports a fresh
// point-in-time view of the process. Nil-safe (a nil registry samples
// nothing), and cheap enough for per-scrape use: runtime.ReadMemStats is
// the only stop-the-world cost.
func SampleRuntime(r *Registry) {
	if r == nil {
		return
	}
	r.Gauge("go_goroutines", "Number of live goroutines.", nil).
		Set(float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", nil).
		Set(float64(ms.HeapAlloc))
	r.Gauge("go_memstats_heap_sys_bytes", "Bytes of heap obtained from the OS.", nil).
		Set(float64(ms.HeapSys))
	r.Gauge("go_memstats_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.", nil).
		Set(float64(ms.PauseTotalNs) / 1e9)
	r.Gauge("go_memstats_gc_total", "Number of completed GC cycles.", nil).
		Set(float64(ms.NumGC))
}
