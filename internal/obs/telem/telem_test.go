package telem

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter", nil); again != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("test_gauge", "a gauge", nil)
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs_total", "jobs", Labels{"state": "done"})
	b := r.Counter("jobs_total", "jobs", Labels{"state": "failed"})
	if a == b {
		t.Fatal("distinct label sets shared an instrument")
	}
	a.Add(3)
	b.Add(1)
	if a.Value() != 3 || b.Value() != 1 {
		t.Fatalf("label series mixed counts: %d / %d", a.Value(), b.Value())
	}
	// Same labels in any map construction order → same series.
	if c := r.Counter("jobs_total", "jobs", Labels{"state": "done"}); c != a {
		t.Fatal("same label set returned a different instrument")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	counts, sum, count := h.snapshot()
	// le semantics: 0.1 lands in the 0.1 bucket, 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum != 102.65 {
		t.Fatalf("sum = %v, want 102.65", sum)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "", nil)
	g := r.Gauge("x", "", nil)
	h := r.Histogram("x_seconds", "", nil, nil)
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments reported values")
	}
	if n, err := r.WriteTo(nil); n != 0 || err != nil {
		t.Fatalf("nil registry WriteTo = (%d, %v)", n, err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("dual_total", "", nil)
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("concurrent_total", "", Labels{"w": strconv.Itoa(i % 2)})
			g := r.Gauge("concurrent_gauge", "", nil)
			h := r.Histogram("concurrent_seconds", "", nil, nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var sb strings.Builder
		for i := 0; i < 50; i++ {
			sb.Reset()
			if _, err := r.WriteTo(&sb); err != nil {
				t.Errorf("WriteTo during writes: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	total := r.Counter("concurrent_total", "", Labels{"w": "0"}).Value() +
		r.Counter("concurrent_total", "", Labels{"w": "1"}).Value()
	if total != 8000 {
		t.Fatalf("counter total = %d, want 8000", total)
	}
	if g := r.Gauge("concurrent_gauge", "", nil).Value(); g != 8000 {
		t.Fatalf("gauge = %v, want 8000", g)
	}
	if n := r.Histogram("concurrent_seconds", "", nil, nil).Count(); n != 8000 {
		t.Fatalf("histogram count = %d, want 8000", n)
	}
}

// TestScrapeFormat parses the exposition output line-by-line and checks
// the structural invariants a Prometheus scraper relies on: HELP before
// TYPE before samples, families sorted, label values escaped, histogram
// cumulative buckets ending at an +Inf bucket equal to _count.
func TestScrapeFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("aaa_total", "first counter", nil).Add(7)
	r.Gauge("bbb_bytes", "weird \"value\"\nwith newline", Labels{"path": `C:\tmp`, "q": "say \"hi\"\nok"}).Set(12.5)
	h := r.Histogram("ccc_seconds", "latency", []float64{0.5, 2}, Labels{"op": "run"})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(9)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	type famState struct {
		sawHelp, sawType bool
	}
	fams := map[string]*famState{}
	var order []string
	samples := map[string]float64{}
	current := ""
	for i, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			name := strings.SplitN(strings.TrimPrefix(ln, "# HELP "), " ", 2)[0]
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate HELP for %s", i, name)
			}
			fams[name] = &famState{sawHelp: true}
			order = append(order, name)
			current = name
		case strings.HasPrefix(ln, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(ln, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", i, ln)
			}
			name := parts[0]
			if name != current || fams[name] == nil || !fams[name].sawHelp {
				t.Fatalf("line %d: TYPE %s not directly after its HELP", i, name)
			}
			if fams[name].sawType {
				t.Fatalf("line %d: duplicate TYPE for %s", i, name)
			}
			fams[name].sawType = true
		case ln == "":
			t.Fatalf("line %d: blank line in exposition", i)
		default:
			sp := strings.LastIndex(ln, " ")
			if sp < 0 {
				t.Fatalf("line %d: malformed sample %q", i, ln)
			}
			key, valStr := ln[:sp], ln[sp+1:]
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad sample value %q: %v", i, valStr, err)
			}
			base := key
			if b := strings.IndexByte(base, '{'); b >= 0 {
				base = base[:b]
			}
			base = strings.TrimSuffix(base, "_bucket")
			base = strings.TrimSuffix(base, "_sum")
			base = strings.TrimSuffix(base, "_count")
			if base != current && key != "" {
				// Samples must stay inside the family block whose TYPE
				// introduced them.
				if fams[base] == nil || !fams[base].sawType {
					t.Fatalf("line %d: sample %q before its TYPE", i, key)
				}
			}
			samples[key] = v
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("families not sorted: %q before %q", order[i-1], order[i])
		}
	}

	if got := samples["aaa_total"]; got != 7 {
		t.Fatalf("aaa_total = %v, want 7", got)
	}
	wantGauge := `bbb_bytes{path="C:\\tmp",q="say \"hi\"\nok"}`
	if got, ok := samples[wantGauge]; !ok || got != 12.5 {
		t.Fatalf("escaped gauge sample missing or wrong: have %v (keys: %v)", got, keysOf(samples))
	}
	if !strings.Contains(out, `weird "value"\nwith newline`) {
		t.Fatal("HELP newline not escaped (or quotes wrongly escaped)")
	}

	// Histogram invariants: cumulative non-decreasing buckets, +Inf bucket
	// equals _count, and _sum matches the observations.
	b1 := samples[`ccc_seconds_bucket{op="run",le="0.5"}`]
	b2 := samples[`ccc_seconds_bucket{op="run",le="2"}`]
	bInf := samples[`ccc_seconds_bucket{op="run",le="+Inf"}`]
	cnt := samples[`ccc_seconds_count{op="run"}`]
	sum := samples[`ccc_seconds_sum{op="run"}`]
	if b1 != 1 || b2 != 2 || bInf != 3 {
		t.Fatalf("cumulative buckets = %v/%v/%v, want 1/2/3", b1, b2, bInf)
	}
	if b1 > b2 || b2 > bInf {
		t.Fatal("buckets not non-decreasing")
	}
	if bInf != cnt {
		t.Fatalf("+Inf bucket %v != _count %v", bInf, cnt)
	}
	if sum != 10.25 {
		t.Fatalf("_sum = %v, want 10.25", sum)
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
