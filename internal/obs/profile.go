package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// ProfileFlags bundles the Go profiling switches every cmd/ binary shares:
// -cpuprofile, -memprofile and -trace (the Go runtime trace, distinct from
// the simulator's cycle-timeline -tracefile). Typical use:
//
//	prof := obs.AddProfileFlags(flag.CommandLine)
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
type ProfileFlags struct {
	// CPUProfile, MemProfile and RuntimeTrace are the output paths
	// (empty = disabled).
	CPUProfile   string
	MemProfile   string
	RuntimeTrace string

	cpuFile   *os.File
	traceFile *os.File
}

// AddProfileFlags registers the three profiling flags on fs and returns
// the holder their values are parsed into.
func AddProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	p := &ProfileFlags{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.RuntimeTrace, "trace", "", "write a Go runtime trace to this file")
	return p
}

// Start begins CPU profiling and runtime tracing as requested. It is a
// no-op when no profiling flag was set.
func (p *ProfileFlags) Start() error {
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if p.RuntimeTrace != "" {
		f, err := os.Create(p.RuntimeTrace)
		if err != nil {
			p.stopCPU()
			return fmt.Errorf("trace: %w", err)
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			p.stopCPU()
			return fmt.Errorf("trace: %w", err)
		}
		p.traceFile = f
	}
	return nil
}

func (p *ProfileFlags) stopCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// Stop ends the profiles started by Start and, if requested, writes the
// heap profile. The first error encountered is returned; all outputs are
// still flushed.
func (p *ProfileFlags) Stop() error {
	var firstErr error
	p.stopCPU()
	if p.traceFile != nil {
		rtrace.Stop()
		if err := p.traceFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		p.traceFile = nil
	}
	if p.MemProfile != "" {
		f, err := os.Create(p.MemProfile)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("memprofile: %w", err)
			}
			return firstErr
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("memprofile: %w", err)
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
