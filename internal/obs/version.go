package obs

import (
	"runtime"
	"runtime/debug"
)

// Version returns the module version baked into the binary by the Go
// toolchain, or "devel" for plain `go build` / `go run` trees where no
// version stamp exists.
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// GoVersion returns the Go toolchain version the binary was built with.
func GoVersion() string { return runtime.Version() }

// BuildRevision returns the VCS revision recorded in the build info, or
// "" when built outside a checkout.
func BuildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}
