package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewSnapshot("run")
	s.Workload = "doom3-640x480"
	s.Design = "A-TFIM"
	s.Cycles = 123456
	s.Counter("traffic.texture.read.bytes", 1<<20)
	s.Counter("activity.fragments", 307200)
	s.Gauge("energy.total_j", 0.0123)
	s.Histogram("hmc.link.tx", []float64{0.1, 0.9, 0.5})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if !reflect.DeepEqual(*s, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, *s)
	}
	if back.Schema != SchemaVersion {
		t.Errorf("schema %q, want %q", back.Schema, SchemaVersion)
	}
}

func TestSnapshotStableOutput(t *testing.T) {
	build := func() []byte {
		s := NewSnapshot("run")
		// Insert in shuffled order; JSON map keys marshal sorted.
		s.Counter("zzz", 1)
		s.Counter("aaa", 2)
		s.Gauge("mid", 3)
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot JSON is not byte-stable")
	}
	if strings.Index(string(a), `"aaa"`) > strings.Index(string(a), `"zzz"`) {
		t.Fatal("counter keys not sorted")
	}
}

func TestSnapshotSanitizesNonFinite(t *testing.T) {
	s := NewSnapshot("run")
	s.Gauge("nan", math.NaN())
	s.Gauge("inf", math.Inf(1))
	s.Histogram("h", []float64{math.NaN(), 1})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("non-finite values broke marshaling: %v", err)
	}
	if s.Gauges["nan"] != 0 || s.Gauges["inf"] != 0 || s.Histograms["h"][0] != 0 {
		t.Error("non-finite values not sanitized to 0")
	}
}

func TestSnapshotAddSet(t *testing.T) {
	var set stats.Set
	set.Counter("rowhits").Add(7)
	set.Counter("rowmisses").Add(3)
	s := NewSnapshot("run")
	s.AddSet("dram", &set)
	if s.Counters["dram.rowhits"] != 7 || s.Counters["dram.rowmisses"] != 3 {
		t.Errorf("AddSet did not fold counters: %v", s.Counters)
	}
	s.AddSet("", &set)
	if s.Counters["rowhits"] != 7 {
		t.Errorf("unprefixed AddSet missing: %v", s.Counters)
	}
	s.AddSet("x", nil) // must not panic
}

func TestExperimentSetRoundTrip(t *testing.T) {
	e := NewExperimentSet("quick")
	e.Experiments = append(e.Experiments, ExperimentResult{
		Name:    "fig10",
		Title:   "Fig 10: texture filtering speedup",
		Columns: []string{"workload", "speedup"},
		Rows:    [][]string{{"doom3-640x480", "2.97"}},
		Summary: map[string]float64{"geomean": 2.5},
	})
	e.Errors = append(e.Errors, "fig99: unknown experiment")

	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ExperimentSet
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if !reflect.DeepEqual(*e, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, *e)
	}
	if back.Schema != ExperimentSchemaVersion {
		t.Errorf("schema %q, want %q", back.Schema, ExperimentSchemaVersion)
	}
}
