package obs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleProfile() *FrameProfile {
	b := Build()
	return &FrameProfile{
		Schema:     FrameProfileSchema,
		Workload:   "doom3-320x240",
		Design:     "B-PIM",
		SimVersion: "2",
		Build:      &b,
		Frames: []FrameAnatomy{{
			Frame: 7, Width: 320, Height: 240, Cycles: 1000, GroupPx: 64,
			Stages: []StageSpan{{Name: "geometry", Start: 0, End: 100}},
			Timelines: []Timeline{{
				Meter: "hmc.link.tx", BytesPerCycle: 8, EndCycle: 1000,
				Bytes: []float64{10, 0, 30, 2},
			}},
			Groups: []GroupProfile{{
				Index: 0, X: 64, Y: 128, StartCycle: 100, EndCycle: 400,
				Fragments: 9, TexRequests: 27, TexelFetches: 81, OffChipBytes: 640,
			}},
			TrafficBytes: map[string]uint64{"texture.read": 512, "z-test.write": 128},
		}},
	}
}

func TestFrameProfileRoundTrip(t *testing.T) {
	p := sampleProfile()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrameProfile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, p)
	}
}

func TestReadFrameProfileRejectsWrongSchema(t *testing.T) {
	if _, err := ReadFrameProfile(strings.NewReader(`{"schema":"pim-render/metrics/v1"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadFrameProfile(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTimelineUtilizationClamps(t *testing.T) {
	tl := Timeline{BytesPerCycle: 2, EndCycle: 10, Bytes: []float64{100, 0}}
	u := tl.Utilization()
	if u[0] != 1 {
		t.Fatalf("over-capacity bucket utilization %v, want clamped 1", u[0])
	}
	if u[1] != 0 {
		t.Fatalf("idle bucket utilization %v, want 0", u[1])
	}
	empty := Timeline{}
	if empty.Utilization() != nil {
		t.Fatal("empty timeline must have nil utilization")
	}
}

func TestMergeTimelinesPlacesOffsets(t *testing.T) {
	// One source covering [0,100) with all bytes in its single bucket,
	// placed at offset 900 of a 1000-cycle frame: the bytes must land in
	// the last tenth of the merged timeline.
	src := Timeline{BytesPerCycle: 4, EndCycle: 100, Bytes: []float64{40}}
	merged := MergeTimelines([]PlacedTimeline{{Meter: "m", Offset: 900, Timeline: src}}, 1000, 10)
	if len(merged) != 1 {
		t.Fatalf("got %d meters, want 1", len(merged))
	}
	m := merged[0]
	for i := 0; i < 9; i++ {
		if m.Bytes[i] != 0 {
			t.Fatalf("bucket %d = %v, want 0 (source placed at 900)", i, m.Bytes[i])
		}
	}
	if math.Abs(m.Bytes[9]-40) > 1e-9 {
		t.Fatalf("last bucket = %v, want 40", m.Bytes[9])
	}
}

func TestMergeTimelinesAccumulatesSameMeter(t *testing.T) {
	// Two disjoint group spans on the same meter must sum without loss.
	a := Timeline{BytesPerCycle: 4, EndCycle: 100, Bytes: []float64{10, 20}}
	b := Timeline{BytesPerCycle: 4, EndCycle: 100, Bytes: []float64{5, 5}}
	merged := MergeTimelines([]PlacedTimeline{
		{Meter: "m", Offset: 0, Timeline: a},
		{Meter: "m", Offset: 100, Timeline: b},
	}, 200, 4)
	if len(merged) != 1 {
		t.Fatalf("got %d meters, want 1", len(merged))
	}
	var sum float64
	for _, v := range merged[0].Bytes {
		sum += v
	}
	if math.Abs(sum-40) > 1e-9 {
		t.Fatalf("merged total %v bytes, want 40", sum)
	}
	// First half holds a's 30, second half b's 10.
	firstHalf := merged[0].Bytes[0] + merged[0].Bytes[1]
	if math.Abs(firstHalf-30) > 1e-9 {
		t.Fatalf("first half %v, want 30", firstHalf)
	}
}

func TestMergeTimelinesSortsAndClips(t *testing.T) {
	mk := func(name string) PlacedTimeline {
		return PlacedTimeline{Meter: name, Timeline: Timeline{
			BytesPerCycle: 1, EndCycle: 10, Bytes: []float64{1},
		}}
	}
	merged := MergeTimelines([]PlacedTimeline{mk("zz"), mk("aa")}, 10, 2)
	if merged[0].Meter != "aa" || merged[1].Meter != "zz" {
		t.Fatalf("meters not sorted: %s, %s", merged[0].Meter, merged[1].Meter)
	}
	// A source overhanging the frame end is clipped, not wrapped.
	over := PlacedTimeline{Meter: "m", Offset: 5, Timeline: Timeline{
		BytesPerCycle: 1, EndCycle: 10, Bytes: []float64{10},
	}}
	clipped := MergeTimelines([]PlacedTimeline{over}, 10, 2)
	if got := clipped[0].Bytes[0]; got != 0 {
		t.Fatalf("first half %v, want 0", got)
	}
	if got := clipped[0].Bytes[1]; math.Abs(got-5) > 1e-9 {
		t.Fatalf("second half %v, want 5 (half the source span clipped)", got)
	}
	if MergeTimelines(nil, 0, 4) != nil || MergeTimelines(nil, 10, 0) != nil {
		t.Fatal("degenerate merges must return nil")
	}
}
