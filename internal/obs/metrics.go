package obs

import (
	"encoding/json"
	"io"
	"math"

	"repro/internal/stats"
)

// SchemaVersion identifies the Snapshot JSON schema. Bump only on
// incompatible changes; additions of new counter/gauge names are
// compatible (consumers must tolerate unknown names).
const SchemaVersion = "pim-render/metrics/v1"

// ExperimentSchemaVersion identifies the ExperimentSet JSON schema
// emitted by paperbench -json.
const ExperimentSchemaVersion = "pim-render/experiments/v1"

// Snapshot is one run's metrics in a stable machine-readable form: the
// unified view over the simulator's counter sets, traffic accounting,
// energy breakdown and bandwidth-meter histograms. All maps marshal with
// sorted keys (encoding/json), so the output is byte-stable for equal
// inputs.
type Snapshot struct {
	// Schema is always SchemaVersion.
	Schema string `json:"schema"`
	// Kind labels what was measured ("run", "frame", ...).
	Kind string `json:"kind"`
	// Workload and Design identify the configuration, when applicable.
	Workload string `json:"workload,omitempty"`
	Design   string `json:"design,omitempty"`
	// SimVersion is the simulator behavioral revision that produced the
	// snapshot (core.SimVersion) and Build the producing binary; both are
	// provenance stamps, absent in documents from older producers.
	SimVersion string     `json:"sim_version,omitempty"`
	Build      *BuildInfo `json:"build,omitempty"`
	// Cycles is the run's total simulated GPU cycles.
	Cycles int64 `json:"cycles,omitempty"`
	// Counters holds monotonically accumulated event counts.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges holds derived point-in-time values (rates, joules, means).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms holds binned series (e.g. bandwidth-meter utilization
	// over time, one value per bin in [0,1]).
	Histograms map[string][]float64 `json:"histograms,omitempty"`
}

// NewSnapshot builds an empty snapshot of the given kind.
func NewSnapshot(kind string) *Snapshot {
	return &Snapshot{Schema: SchemaVersion, Kind: kind}
}

// Counter sets a counter value.
func (s *Snapshot) Counter(name string, v uint64) {
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	s.Counters[name] = v
}

// Gauge sets a gauge value. NaN and infinities are stored as 0 so the
// snapshot always marshals to valid JSON.
func (s *Snapshot) Gauge(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	s.Gauges[name] = v
}

// Histogram stores a binned series under the given name; empty series are
// dropped. Non-finite bins are sanitized to 0.
func (s *Snapshot) Histogram(name string, bins []float64) {
	if len(bins) == 0 {
		return
	}
	clean := make([]float64, len(bins))
	for i, b := range bins {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			b = 0
		}
		clean[i] = b
	}
	if s.Histograms == nil {
		s.Histograms = map[string][]float64{}
	}
	s.Histograms[name] = clean
}

// AddSet folds a stats.Set's counters into the snapshot under an optional
// "prefix." namespace, unifying ad-hoc counter sets behind the one
// registry.
func (s *Snapshot) AddSet(prefix string, set *stats.Set) {
	if set == nil {
		return
	}
	if prefix != "" {
		prefix += "."
	}
	for _, name := range set.Names() {
		s.Counter(prefix+name, set.Get(name))
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ExperimentResult is one regenerated figure/table in machine-readable
// form (the rows mirror the printed stats.Table exactly).
type ExperimentResult struct {
	Name    string             `json:"name"`
	Title   string             `json:"title,omitempty"`
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Summary map[string]float64 `json:"summary,omitempty"`
}

// ExperimentSet is the paperbench -json output: every experiment that ran,
// plus the names of any that failed (Errors non-empty means the process
// exited non-zero).
type ExperimentSet struct {
	Schema      string             `json:"schema"`
	Set         string             `json:"set,omitempty"`
	Experiments []ExperimentResult `json:"experiments"`
	Errors      []string           `json:"errors,omitempty"`
}

// NewExperimentSet builds an empty experiment-set document for the named
// workload set.
func NewExperimentSet(set string) *ExperimentSet {
	return &ExperimentSet{
		Schema:      ExperimentSchemaVersion,
		Set:         set,
		Experiments: []ExperimentResult{},
	}
}

// WriteJSON writes the experiment set as indented JSON.
func (e *ExperimentSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
