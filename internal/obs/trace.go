// Package obs is the simulator's observability layer: cycle-timeline span
// tracing (exported as Chrome/Perfetto trace-event JSON), a structured
// metrics snapshot with a stable machine-readable schema, and shared
// profiling flags for the cmd/ binaries.
//
// The layer is always compiled in but costs near nothing when disabled: a
// nil *Tracer is a valid, inert tracer, so instrumented code guards each
// span with a single nil check (Tracer.On) and the simulated cycle counts
// are never perturbed — tracing only records timestamps the timing model
// already produced.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity. At ~64 bytes/event this bounds a trace to a few
// tens of MB; when the ring wraps, the oldest events are dropped (and
// counted) so a frame's tail — usually the interesting part — survives.
const DefaultTraceCapacity = 1 << 18

// Event is one cycle-stamped span on a named track. Start and End are GPU
// cycles; an instant event has End == Start. Arg is an optional numeric
// payload (bytes moved, texels fetched, ...) named by ArgName.
type Event struct {
	Track   string
	Name    string
	Start   int64
	End     int64
	ArgName string
	Arg     int64
}

// Tracer records spans into a fixed-capacity ring. The zero value is not
// usable; build one with NewTracer. A nil *Tracer is safe to call and
// records nothing — instrumented code holds a possibly-nil tracer and
// never branches on anything else.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	cap     int
	head    int // next overwrite position once full
	full    bool
	dropped uint64
}

// NewTracer builds a tracer with the given ring capacity (events); a
// non-positive capacity selects DefaultTraceCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{events: make([]Event, 0, capacity), cap: capacity}
}

// On reports whether spans will be recorded. It is the fast-path guard:
// instrumented code that must do extra work to build a span (format a
// label, compute an argument) checks On first; plain Span calls need not.
func (t *Tracer) On() bool { return t != nil }

// Span records a [start, end] span on a track. Nil-safe.
func (t *Tracer) Span(track, name string, start, end int64) {
	if t == nil {
		return
	}
	t.record(Event{Track: track, Name: name, Start: start, End: end})
}

// SpanArg records a span carrying one named numeric argument. Nil-safe.
func (t *Tracer) SpanArg(track, name string, start, end int64, argName string, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{Track: track, Name: name, Start: start, End: end, ArgName: argName, Arg: arg})
}

// Instant records a zero-duration marker. Nil-safe.
func (t *Tracer) Instant(track, name string, at int64) {
	if t == nil {
		return
	}
	t.record(Event{Track: track, Name: name, Start: at, End: at})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
	} else {
		t.events[t.head] = e
		t.head = (t.head + 1) % t.cap
		t.full = true
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were evicted by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the recorded events in recording order
// (oldest surviving event first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	if t.full {
		out = append(out, t.events[t.head:]...)
		out = append(out, t.events[:t.head]...)
	} else {
		out = append(out, t.events...)
	}
	return out
}

// Reset discards all recorded events, keeping the ring's capacity.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.head = 0
	t.full = false
	t.dropped = 0
	t.mu.Unlock()
}

// TraceAttacher is implemented by simulator components (backends, texture
// paths, the pipeline) that can route their spans into a tracer.
type TraceAttacher interface {
	SetTracer(*Tracer)
}

// HistogramSource is implemented by memory backends that can report
// per-resource utilization histograms (see sim.BandwidthMeter).
type HistogramSource interface {
	UtilizationHistograms(bins int) map[string][]float64
}

// Chrome trace-event JSON (the format ui.perfetto.dev and
// chrome://tracing open). One simulated GPU cycle maps to one microsecond
// of trace time, so the viewer's time axis reads directly in cycles.

// ChromeTrace is the top-level object written by WriteChromeTrace; tests
// and downstream tools unmarshal into it.
type ChromeTrace struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// ChromeEvent is one trace-event record. Ph "X" is a complete span
// (Ts/Dur), ph "M" is metadata (process_name / thread_name).
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serializes the recorded events as Chrome trace-event
// JSON. Each distinct track becomes one named thread (sorted for stable
// tid assignment); spans become ph "X" complete events.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()

	tracks := map[string]int{}
	for _, e := range events {
		if _, ok := tracks[e.Track]; !ok {
			tracks[e.Track] = 0
		}
	}
	names := make([]string, 0, len(tracks))
	for name := range tracks {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		tracks[name] = i + 1
	}

	out := ChromeTrace{TraceEvents: make([]ChromeEvent, 0, len(events)+len(names)+1)}
	out.TraceEvents = append(out.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "pim-render"},
	})
	for _, name := range names {
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tracks[name],
			Args: map[string]any{"name": name},
		})
		out.TraceEvents = append(out.TraceEvents, ChromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: tracks[name],
			Args: map[string]any{"sort_index": tracks[name]},
		})
	}
	for _, e := range events {
		ce := ChromeEvent{
			Name: e.Name, Ph: "X", Ts: e.Start, Dur: e.End - e.Start,
			Pid: 1, Tid: tracks[e.Track],
		}
		if ce.Dur < 0 {
			ce.Dur = 0
		}
		if e.ArgName != "" {
			ce.Args = map[string]any{e.ArgName: e.Arg}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
