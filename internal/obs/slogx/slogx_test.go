package slogx

import (
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not error")
	}
}

func TestCompactFormat(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, Options{Level: slog.LevelInfo})
	l.Info("job submitted", "id", "job-000001", "shards", 4)
	l.Debug("dropped", "k", "v")
	l.Warn("odd value", "msg", `has "quotes" and spaces`)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (debug filtered):\n%s", len(lines), out)
	}
	if lines[0] != `INFO job submitted id=job-000001 shards=4` {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if lines[1] != `WARN odd value msg="has \"quotes\" and spaces"` {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

func TestWithAttrsAndGroups(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, Options{}).With("req", "r-1").WithGroup("job")
	l.Info("done", "id", "job-7")
	got := strings.TrimRight(sb.String(), "\n")
	if got != `INFO done req=r-1 job.id=job-7` {
		t.Fatalf("got %q", got)
	}
}

func TestContextCarriage(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, Options{})
	ctx := WithLogger(context.Background(), l)
	From(ctx).Info("via ctx")
	if !strings.Contains(sb.String(), "INFO via ctx") {
		t.Fatalf("context logger not used: %q", sb.String())
	}
	// Missing logger → discard, never nil.
	From(context.Background()).Info("dropped")
	if strings.Contains(sb.String(), "dropped") {
		t.Fatal("discard logger wrote output")
	}
}

func TestConcurrentWrites(t *testing.T) {
	var sb lockedBuilder
	l := New(&sb, Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("tick", "n", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "INFO tick n=") {
			t.Fatalf("interleaved line %q", ln)
		}
	}
}

// lockedBuilder guards the underlying builder: the handler serializes
// whole-line writes, but the builder itself is not safe for the final
// read while writes race without it.
type lockedBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *lockedBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *lockedBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
