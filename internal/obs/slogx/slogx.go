// Package slogx configures stdlib log/slog for the render-farm services:
// a compact single-line text handler (level, message, key=value attrs —
// no timestamps by default so test output and CI logs stay stable), a
// level parser for -log-level flags, and context helpers that carry a
// request-scoped logger so handlers deep in the stack log with the
// request ID already attached.
package slogx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ParseLevel maps a -log-level flag value (debug, info, warn, error;
// case-insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("slogx: unknown log level %q (want debug|info|warn|error)", s)
}

// Options configures New.
type Options struct {
	// Level is the minimum level to emit. Records below it are dropped.
	Level slog.Level
	// Timestamps prepends an RFC3339 timestamp to each line. Off by
	// default so logs diff cleanly in tests and CI.
	Timestamps bool
}

// New builds a logger writing compact single-line records to w:
//
//	INFO job submitted id=job-000001 req=r-0007 design=atfim
func New(w io.Writer, opts Options) *slog.Logger {
	return slog.New(&handler{w: w, opts: opts, mu: &sync.Mutex{}})
}

// handler is a minimal slog.Handler emitting one line per record. Group
// names dot-qualify their attrs (g.k=v).
type handler struct {
	w      io.Writer
	opts   Options
	mu     *sync.Mutex // shared across WithAttrs/WithGroup clones
	attrs  string      // pre-rendered " k=v k=v" prefix attrs
	groups []string
}

func (h *handler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.opts.Level
}

func (h *handler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	if h.opts.Timestamps && !rec.Time.IsZero() {
		b.WriteString(rec.Time.Format(time.RFC3339))
		b.WriteByte(' ')
	}
	b.WriteString(rec.Level.String())
	b.WriteByte(' ')
	b.WriteString(rec.Message)
	b.WriteString(h.attrs)
	prefix := strings.Join(h.groups, ".")
	rec.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, prefix, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h2 := *h
	var b strings.Builder
	b.WriteString(h.attrs)
	prefix := strings.Join(h.groups, ".")
	for _, a := range attrs {
		appendAttr(&b, prefix, a)
	}
	h2.attrs = b.String()
	return &h2
}

func (h *handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	h2 := *h
	h2.groups = append(append([]string(nil), h.groups...), name)
	return &h2
}

func appendAttr(b *strings.Builder, prefix string, a slog.Attr) {
	a.Value = a.Value.Resolve()
	if a.Value.Kind() == slog.KindGroup {
		sub := a.Key
		if prefix != "" {
			sub = prefix + "." + sub
		}
		for _, ga := range a.Value.Group() {
			appendAttr(b, sub, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	b.WriteByte(' ')
	if prefix != "" {
		b.WriteString(prefix)
		b.WriteByte('.')
	}
	b.WriteString(a.Key)
	b.WriteByte('=')
	b.WriteString(renderValue(a.Value))
}

// renderValue formats a value, quoting strings that would be ambiguous
// in key=value output.
func renderValue(v slog.Value) string {
	s := v.String()
	if v.Kind() == slog.KindString && (s == "" || strings.ContainsAny(s, " \t\n\"=")) {
		return strconv.Quote(s)
	}
	return s
}

type ctxKey struct{}

// WithLogger returns ctx carrying l; From retrieves it.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, ctxKey{}, l)
}

// From returns the logger carried by ctx, or a discard-everything logger
// so call sites never nil-check.
func From(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(ctxKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return Discard()
}

var discard = slog.New(&handler{w: io.Discard, opts: Options{Level: slog.Level(127)}, mu: &sync.Mutex{}})

// Discard returns a logger that drops every record.
func Discard() *slog.Logger { return discard }
