package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileFlagsRegistered(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p := AddProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "c.prof", "-memprofile", "m.prof", "-trace", "t.out"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "c.prof" || p.MemProfile != "m.prof" || p.RuntimeTrace != "t.out" {
		t.Errorf("flags not parsed: %+v", p)
	}
}

func TestProfileStartStopDisabled(t *testing.T) {
	p := &ProfileFlags{}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := &ProfileFlags{
		CPUProfile:   filepath.Join(dir, "cpu.prof"),
		MemProfile:   filepath.Join(dir, "mem.prof"),
		RuntimeTrace: filepath.Join(dir, "trace.out"),
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPUProfile, p.MemProfile, p.RuntimeTrace} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("missing output %s: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("empty profile output %s", path)
		}
	}
	// Stop again must be harmless.
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}
