package obs

// Frame-anatomy profiling schema (pim-render/frameprofile/v1): the
// deep-inspection counterpart to the end-of-run Snapshot. Where metrics/v1
// collapses a run to scalars and coarse histograms, a FrameProfile keeps
// the inside of each frame: cycle-resolved bandwidth timelines per metered
// resource, the pipeline's stage spans, and per-supertile-group
// attribution (cycles, fragments, texel requests, off-chip bytes per
// 64x64-pixel group). cmd/pimreport renders one or more of these into a
// self-contained HTML report.
//
// Like tracing, profiling is observational only: every number in the
// artifact is derived from values the timing model already produced, so
// simulated results are byte-identical with and without a profile
// attached, and the artifact itself is deterministic at any shard count.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// FrameProfileSchema identifies the FrameProfile JSON schema. Bump only on
// incompatible changes; additions of new fields are compatible (consumers
// must tolerate unknown fields).
const FrameProfileSchema = "pim-render/frameprofile/v1"

// DefaultTimelineBuckets is the frame-timeline resolution used when a
// profiler is not configured with an explicit bucket count.
const DefaultTimelineBuckets = 192

// BuildInfo is the provenance stamp carried by metrics/v1 and
// frameprofile/v1 payloads: which binary produced the document.
type BuildInfo struct {
	// Version is the module version ("devel" for plain builds).
	Version string `json:"version"`
	// GoVersion is the toolchain the binary was built with.
	GoVersion string `json:"go_version"`
	// Revision is the VCS revision, when the build recorded one.
	Revision string `json:"revision,omitempty"`
}

// Build returns the running binary's provenance stamp.
func Build() BuildInfo {
	return BuildInfo{
		Version:   Version(),
		GoVersion: GoVersion(),
		Revision:  BuildRevision(),
	}
}

// Timeline is a cycle-resolved byte series for one metered resource: the
// span [0, EndCycle) divided into len(Bytes) equal buckets, each holding
// the bytes the resource moved in that bucket. BytesPerCycle is the
// resource's capacity, so bucket utilization is
// Bytes[i] / (BucketCycles() * BytesPerCycle).
type Timeline struct {
	// Meter names the resource ("hmc.link.tx", "dram.ch00.bus", ...).
	Meter string `json:"meter,omitempty"`
	// BytesPerCycle is the resource's peak capacity.
	BytesPerCycle float64 `json:"bytes_per_cycle"`
	// EndCycle is the end of the covered span (start is cycle 0).
	EndCycle int64 `json:"end_cycle"`
	// Bytes holds the bytes moved per bucket.
	Bytes []float64 `json:"bytes"`
}

// Empty reports whether the timeline carries no data.
func (t *Timeline) Empty() bool { return len(t.Bytes) == 0 }

// BucketCycles returns the width of one bucket in cycles.
func (t *Timeline) BucketCycles() float64 {
	if len(t.Bytes) == 0 {
		return 0
	}
	return float64(t.EndCycle) / float64(len(t.Bytes))
}

// Utilization returns the per-bucket used/capacity fractions, clamped to
// [0, 1].
func (t *Timeline) Utilization() []float64 {
	w := t.BucketCycles()
	if w <= 0 || t.BytesPerCycle <= 0 {
		return nil
	}
	capPerBucket := w * t.BytesPerCycle
	out := make([]float64, len(t.Bytes))
	for i, b := range t.Bytes {
		u := b / capPerBucket
		if u > 1 {
			u = 1
		}
		if u < 0 || math.IsNaN(u) {
			u = 0
		}
		out[i] = u
	}
	return out
}

// TotalBytes sums the timeline's buckets.
func (t *Timeline) TotalBytes() float64 {
	var sum float64
	for _, b := range t.Bytes {
		sum += b
	}
	return sum
}

// TimelineSource is implemented by memory backends that can report their
// bandwidth meters as cycle-resolved timelines (see sim.BandwidthMeter).
type TimelineSource interface {
	BandwidthTimelines(buckets int) map[string]Timeline
}

// PlacedTimeline positions a locally-timed timeline on a frame timeline:
// the source's cycle 0 lands at Offset. Hermetic tile groups are simulated
// from local cycle zero and occupy disjoint spans of the frame's fragment
// stage, so placing each group's meter timelines at its merge offset
// reconstructs the frame-wide bandwidth profile.
type PlacedTimeline struct {
	Meter    string
	Offset   int64
	Timeline Timeline
}

// MergeTimelines resamples the placed source timelines onto `buckets`
// equal buckets spanning [0, total) and returns one merged timeline per
// meter name, sorted by name. Source bytes are distributed across
// destination buckets proportionally to cycle overlap; sources sharing a
// meter name accumulate (disjoint group spans never double-count). The
// result is deterministic for a deterministic source order.
func MergeTimelines(sources []PlacedTimeline, total int64, buckets int) []Timeline {
	if total <= 0 || buckets <= 0 {
		return nil
	}
	merged := map[string]*Timeline{}
	destW := float64(total) / float64(buckets)
	for _, s := range sources {
		src := s.Timeline
		if src.Empty() {
			continue
		}
		name := s.Meter
		if name == "" {
			name = src.Meter
		}
		dst, ok := merged[name]
		if !ok {
			dst = &Timeline{Meter: name, EndCycle: total, Bytes: make([]float64, buckets)}
			merged[name] = dst
		}
		if src.BytesPerCycle > dst.BytesPerCycle {
			dst.BytesPerCycle = src.BytesPerCycle
		}
		srcW := src.BucketCycles()
		if srcW <= 0 {
			continue
		}
		for i, b := range src.Bytes {
			if b == 0 {
				continue
			}
			// Source bucket i covers [lo, hi) on the frame timeline.
			lo := float64(s.Offset) + float64(i)*srcW
			hi := lo + srcW
			if hi <= 0 || lo >= float64(total) {
				continue
			}
			if lo < 0 {
				lo = 0
			}
			if hi > float64(total) {
				hi = float64(total)
			}
			first := int(lo / destW)
			last := int(hi / destW)
			if last >= buckets {
				last = buckets - 1
			}
			for d := first; d <= last; d++ {
				dLo := float64(d) * destW
				dHi := dLo + destW
				overlap := math.Min(hi, dHi) - math.Max(lo, dLo)
				if overlap <= 0 {
					continue
				}
				dst.Bytes[d] += b * overlap / srcW
			}
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Timeline, 0, len(names))
	for _, name := range names {
		out = append(out, *merged[name])
	}
	return out
}

// StageSpan is one pipeline stage's [Start, End) span on the frame
// timeline.
type StageSpan struct {
	Name  string `json:"name"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// GroupProfile is the attribution record of one hermetic supertile group:
// where it sits on screen, where its simulation landed on the frame's
// fragment timeline, and what it consumed. Groups are the 64x64-pixel
// units of the sharded fragment stage; their spans tile the fragment
// stage contiguously in fixed screen order.
type GroupProfile struct {
	// Index is the group's position in the frame's fixed group list.
	Index int `json:"index"`
	// X, Y are the group's pixel origin on screen.
	X int `json:"x"`
	Y int `json:"y"`
	// StartCycle/EndCycle are the group's span on the frame timeline.
	StartCycle int64 `json:"start_cycle"`
	EndCycle   int64 `json:"end_cycle"`
	// Fragments is the number of fragments shaded in the group.
	Fragments uint64 `json:"fragments"`
	// TexRequests is the number of texture requests the group issued.
	TexRequests uint64 `json:"tex_requests"`
	// TexelFetches is the number of texels fetched for the group's
	// requests, on either side of the memory boundary (GPU + PIM).
	TexelFetches uint64 `json:"texel_fetches"`
	// OffChipBytes is the group's GPU<->memory traffic in bytes.
	OffChipBytes uint64 `json:"offchip_bytes"`
}

// Cycles returns the group's duration on the frame timeline.
func (g *GroupProfile) Cycles() int64 { return g.EndCycle - g.StartCycle }

// FrameAnatomy is one rendered frame's deep profile.
type FrameAnatomy struct {
	// Frame is the camera/frame index that was rendered.
	Frame int `json:"frame"`
	// Width, Height are the render-target dimensions.
	Width  int `json:"width"`
	Height int `json:"height"`
	// Cycles is the frame's total simulated duration.
	Cycles int64 `json:"cycles"`
	// GroupPx is the supertile edge in pixels (the heatmap cell size).
	GroupPx int `json:"group_px"`
	// Stages are the pipeline stage spans on the frame timeline.
	Stages []StageSpan `json:"stages,omitempty"`
	// Timelines are the merged per-meter bandwidth series.
	Timelines []Timeline `json:"timelines,omitempty"`
	// Groups is the per-supertile-group attribution in fixed screen order.
	Groups []GroupProfile `json:"groups,omitempty"`
	// TrafficBytes breaks the frame's off-chip traffic down by
	// "<class>.<direction>" (the metrics/v1 naming).
	TrafficBytes map[string]uint64 `json:"traffic_bytes,omitempty"`
}

// FrameProfile is the top-level pim-render/frameprofile/v1 artifact.
type FrameProfile struct {
	// Schema is always FrameProfileSchema.
	Schema string `json:"schema"`
	// Workload and Design identify the configuration.
	Workload string `json:"workload,omitempty"`
	Design   string `json:"design,omitempty"`
	// SimVersion is the simulator behavioral revision (core.SimVersion).
	SimVersion string `json:"sim_version,omitempty"`
	// Build stamps the producing binary.
	Build *BuildInfo `json:"build,omitempty"`
	// Frames holds one anatomy per rendered frame.
	Frames []FrameAnatomy `json:"frames"`
}

// WriteJSON writes the profile as indented JSON.
func (p *FrameProfile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadFrameProfile decodes and validates a frameprofile/v1 document.
func ReadFrameProfile(r io.Reader) (*FrameProfile, error) {
	var p FrameProfile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("obs: frame profile: %w", err)
	}
	if p.Schema != FrameProfileSchema {
		return nil, fmt.Errorf("obs: frame profile schema %q (want %q)", p.Schema, FrameProfileSchema)
	}
	return &p, nil
}
