package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.On() {
		t.Fatal("nil tracer reports On")
	}
	// None of these may panic.
	tr.Span("a", "b", 0, 10)
	tr.SpanArg("a", "b", 0, 10, "bytes", 64)
	tr.Instant("a", "b", 5)
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer holds state")
	}
}

func TestSpanRecording(t *testing.T) {
	tr := NewTracer(8)
	tr.Span("pipeline", "geometry", 0, 100)
	tr.SpanArg("dram.ch00.bus", "xfer", 50, 120, "bytes", 64)
	tr.Instant("pipeline", "marker", 60)

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0] != (Event{Track: "pipeline", Name: "geometry", Start: 0, End: 100}) {
		t.Errorf("unexpected first event %+v", ev[0])
	}
	if ev[1].ArgName != "bytes" || ev[1].Arg != 64 {
		t.Errorf("arg not recorded: %+v", ev[1])
	}
	if ev[2].Start != ev[2].End {
		t.Errorf("instant has duration: %+v", ev[2])
	}
}

func TestRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := int64(0); i < 10; i++ {
		tr.Span("t", "e", i, i+1)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped())
	}
	ev := tr.Events()
	// The four newest events survive, oldest-first.
	for i, e := range ev {
		if want := int64(6 + i); e.Start != want {
			t.Errorf("event %d start %d, want %d", i, e.Start, want)
		}
	}

	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear the ring")
	}
	tr.Span("t", "e", 1, 2)
	if tr.Len() != 1 {
		t.Fatal("tracer unusable after reset")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(0)
	tr.Span("pipeline", "geometry", 0, 100)
	tr.Span("cluster00", "tile", 10, 40)
	tr.SpanArg("hmc.link.tx", "xfer", 5, 25, "bytes", 128)
	// A span recorded with end < start must not emit a negative duration.
	tr.Span("cluster00", "degenerate", 50, 40)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var out ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}

	tracks := map[string]bool{}
	spans := 0
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				tracks[e.Args["name"].(string)] = true
			}
		case "X":
			spans++
			if e.Dur < 0 {
				t.Errorf("negative duration in %+v", e)
			}
			if e.Tid == 0 {
				t.Errorf("span with unassigned tid: %+v", e)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 4 {
		t.Errorf("got %d spans, want 4", spans)
	}
	for _, want := range []string{"pipeline", "cluster00", "hmc.link.tx"} {
		if !tracks[want] {
			t.Errorf("missing thread_name metadata for track %q", want)
		}
	}
}

func TestChromeTraceDeterministicTids(t *testing.T) {
	build := func() []byte {
		tr := NewTracer(0)
		tr.Span("b", "x", 0, 1)
		tr.Span("a", "y", 1, 2)
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("trace output is not deterministic")
	}
}
