// Package xrand implements a small deterministic pseudo-random number
// generator (splitmix64) used to synthesize reproducible scenes, textures
// and workloads. It is intentionally independent of math/rand so that
// generated workloads are stable across Go releases.
package xrand

import "math"

// Rand is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64-bit pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32-bit pseudo-random value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float32 returns a pseudo-random float32 in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Range returns a pseudo-random float32 in [lo, hi).
func (r *Rand) Range(lo, hi float32) float32 {
	return lo + (hi-lo)*r.Float32()
}

// Norm returns an approximately normally distributed float32 with mean 0
// and standard deviation 1 (Irwin-Hall sum of 12 uniforms).
func (r *Rand) Norm() float32 {
	var s float32
	for i := 0; i < 12; i++ {
		s += r.Float32()
	}
	return s - 6
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hash64 mixes x through the splitmix64 finalizer; useful as a stateless
// hash for procedural noise.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2D returns a deterministic pseudo-random float32 in [0,1) for integer
// lattice coordinates (x, y) under the given seed.
func Hash2D(seed uint64, x, y int32) float32 {
	h := Hash64(seed ^ uint64(uint32(x)) ^ uint64(uint32(y))<<32)
	return float32(h>>40) / float32(1<<24)
}

// ValueNoise2D returns smooth value noise in [0,1) at (x, y): bilinear
// interpolation of lattice hashes with a smoothstep fade.
func ValueNoise2D(seed uint64, x, y float32) float32 {
	x0 := int32(math.Floor(float64(x)))
	y0 := int32(math.Floor(float64(y)))
	fx := x - float32(x0)
	fy := y - float32(y0)
	fx = fx * fx * (3 - 2*fx)
	fy = fy * fy * (3 - 2*fy)
	v00 := Hash2D(seed, x0, y0)
	v10 := Hash2D(seed, x0+1, y0)
	v01 := Hash2D(seed, x0, y0+1)
	v11 := Hash2D(seed, x0+1, y0+1)
	a := v00 + (v10-v00)*fx
	b := v01 + (v11-v01)*fx
	return a + (b-a)*fy
}

// FBM2D returns fractal Brownian motion noise: octaves of ValueNoise2D with
// halving amplitude and doubling frequency, normalized to [0,1).
func FBM2D(seed uint64, x, y float32, octaves int) float32 {
	var sum, norm, amp float32
	amp = 1
	freq := float32(1)
	for o := 0; o < octaves; o++ {
		sum += amp * ValueNoise2D(seed+uint64(o)*0x9e37, x*freq, y*freq)
		norm += amp
		amp /= 2
		freq *= 2
	}
	if norm == 0 {
		return 0
	}
	return sum / norm
}
