package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %g", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range out of bounds: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormRoughStats(t *testing.T) {
	r := New(11)
	var sum, sumSq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := float64(r.Norm())
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("Norm mean %g too far from 0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("Norm variance %g too far from 1", variance)
	}
}

func TestHash2DDeterministicAndBounded(t *testing.T) {
	err := quick.Check(func(seed uint64, x, y int32) bool {
		a := Hash2D(seed, x, y)
		b := Hash2D(seed, x, y)
		return a == b && a >= 0 && a < 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestValueNoiseSmoothAndBounded(t *testing.T) {
	// Noise must be continuous: neighboring samples differ by a bounded
	// amount; all values in [0,1).
	prev := ValueNoise2D(5, 0, 0)
	for i := 1; i < 2000; i++ {
		x := float32(i) * 0.01
		v := ValueNoise2D(5, x, x*0.5)
		if v < 0 || v >= 1 {
			t.Fatalf("noise out of range: %g", v)
		}
		if d := v - prev; d > 0.2 || d < -0.2 {
			t.Fatalf("noise discontinuity at %g: %g -> %g", x, prev, v)
		}
		prev = v
	}
}

func TestFBMBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := FBM2D(9, float32(i)*0.13, float32(i)*0.07, 5)
		if v < 0 || v >= 1 {
			t.Fatalf("fbm out of range: %g", v)
		}
	}
	if FBM2D(9, 1, 1, 0) != 0 {
		t.Error("fbm with zero octaves should be 0")
	}
}
