// Package dram implements the baseline GDDR5-like off-chip memory timing
// model: multiple independent channels, per-bank row-buffer state, burst
// occupancy on the data bus, and a simple queueing model that enforces both
// latency and peak-bandwidth limits. Timing parameters default to the
// paper's Table I configuration (128 GB/s peak at 1.25 GHz memory clock
// against a 1 GHz GPU clock).
package dram

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Timing holds DRAM core timing parameters, in memory-clock cycles.
type Timing struct {
	// TRCD is the row-activate to column-access delay.
	TRCD int
	// TRP is the precharge latency.
	TRP int
	// TCAS is the column access (CAS) latency.
	TCAS int
	// TBurst is the data-bus occupancy of one line-sized burst.
	TBurst int
	// TWR is the write-recovery latency added to writes.
	TWR int
	// TCCD is the column-to-column delay: successive accesses to an open
	// row pipeline at this rate.
	TCCD int
}

// DefaultTiming returns GDDR5-class timings.
func DefaultTiming() Timing {
	return Timing{TRCD: 12, TRP: 12, TCAS: 12, TBurst: 4, TWR: 12, TCCD: 4}
}

// Config describes a GDDR5 device array.
type Config struct {
	// Channels is the number of independent channels.
	Channels int
	// BanksPerChannel is the number of banks in each channel.
	BanksPerChannel int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// LineBytes is the transaction granularity.
	LineBytes int
	// MemClockGHz and GPUClockGHz convert memory cycles to GPU cycles.
	MemClockGHz float64
	GPUClockGHz float64
	// Timing are the core timings.
	Timing Timing
	// QueueDepth caps outstanding requests per channel; beyond it, new
	// arrivals see extra queueing delay.
	QueueDepth int
}

// DefaultConfig returns the Table I baseline: 128 GB/s peak.
// Peak = Channels * LineBytes/TBurst * MemClockGHz bytes/ns:
// 8 * 64/4 * 1.25 = 160 GB/s raw; with command overheads the sustainable
// peak is set to 128 GB/s by using an effective burst occupancy of 5.
func DefaultConfig() Config {
	return Config{
		Channels:        8,
		BanksPerChannel: 16,
		RowBytes:        2048,
		LineBytes:       mem.LineSize,
		MemClockGHz:     1.25,
		GPUClockGHz:     1.0,
		Timing:          Timing{TRCD: 12, TRP: 12, TCAS: 12, TBurst: 5, TWR: 12, TCCD: 4},
		QueueDepth:      32,
	}
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChannel <= 0 || c.RowBytes <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("dram: non-positive geometry")
	}
	if c.MemClockGHz <= 0 || c.GPUClockGHz <= 0 {
		return fmt.Errorf("dram: non-positive clocks")
	}
	if c.Timing.TBurst <= 0 {
		return fmt.Errorf("dram: non-positive burst time")
	}
	return nil
}

// Stats counts DRAM events.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	BytesRead uint64
	BytesWrit uint64
	// BusyCycles accumulates data-bus occupancy (GPU cycles) across channels.
	BusyCycles int64
}

// RowHitRate returns rowHits / (rowHits+rowMisses).
func (s Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// bank tracks row-buffer state. Bank timing contributes latency (row
// hit/miss) while throughput is enforced by the channel bus meter: with 16
// banks per channel, column pipelining means the bus — not the banks — is
// the practical bandwidth limit, and modeling per-bank busy ratchets against
// out-of-order arrivals produces false serialization (see sim package docs).
type bank struct {
	openRow   int64
	rowOpened bool
}

type channel struct {
	banks []bank
	// bus meters the channel's data-bus bandwidth with backfill (see
	// sim.BandwidthMeter for why backfill matters here).
	bus *sim.BandwidthMeter
}

// GDDR5 is the baseline memory backend.
type GDDR5 struct {
	cfg       Config
	chans     []channel
	stats     Stats
	cyclesPer float64 // GPU cycles per memory cycle
	busyMax   int64
	tracer    *obs.Tracer
}

// New builds a GDDR5 backend; panics on invalid configuration.
func New(cfg Config) *GDDR5 {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &GDDR5{cfg: cfg, cyclesPer: cfg.GPUClockGHz / cfg.MemClockGHz}
	g.Reset()
	return g
}

// Name implements mem.Backend.
func (g *GDDR5) Name() string { return "gddr5" }

// PeakBandwidth returns bytes per GPU cycle at the data-bus peak.
func (g *GDDR5) PeakBandwidth() float64 {
	perChannel := float64(g.cfg.LineBytes) / (float64(g.cfg.Timing.TBurst) * g.cyclesPer)
	return perChannel * float64(g.cfg.Channels)
}

// BusyUntil implements mem.Backend.
func (g *GDDR5) BusyUntil() int64 { return g.busyMax }

// Reset implements mem.Backend.
func (g *GDDR5) Reset() {
	perChannelBPC := float64(g.cfg.LineBytes) / (float64(g.cfg.Timing.TBurst) * g.cyclesPer)
	g.chans = make([]channel, g.cfg.Channels)
	for i := range g.chans {
		g.chans[i].banks = make([]bank, g.cfg.BanksPerChannel)
		for b := range g.chans[i].banks {
			g.chans[i].banks[b].openRow = -1
		}
		g.chans[i].bus = sim.NewBandwidthMeter(32, perChannelBPC)
	}
	g.stats = Stats{}
	g.busyMax = 0
	g.attachMeterTraces()
}

// SetTracer routes channel data-bus reservations into the tracer as cycle
// spans (one track per channel). Implements obs.TraceAttacher; survives
// Reset.
func (g *GDDR5) SetTracer(t *obs.Tracer) {
	g.tracer = t
	g.attachMeterTraces()
}

func (g *GDDR5) attachMeterTraces() {
	if g.tracer == nil {
		return
	}
	for i := range g.chans {
		g.chans[i].bus.AttachTrace(g.tracer, fmt.Sprintf("dram.ch%02d.bus", i))
	}
}

// UtilizationHistograms implements obs.HistogramSource: per-channel
// data-bus utilization over time.
func (g *GDDR5) UtilizationHistograms(bins int) map[string][]float64 {
	out := map[string][]float64{}
	for i := range g.chans {
		if h := g.chans[i].bus.UtilizationHistogram(bins); h != nil {
			out[fmt.Sprintf("dram.ch%02d.bus", i)] = h
		}
	}
	return out
}

// BandwidthTimelines implements obs.TimelineSource: per-channel data-bus
// byte series over time, named exactly like UtilizationHistograms.
func (g *GDDR5) BandwidthTimelines(buckets int) map[string]obs.Timeline {
	out := map[string]obs.Timeline{}
	for i := range g.chans {
		if t := g.chans[i].bus.Timeline(buckets); !t.Empty() {
			out[fmt.Sprintf("dram.ch%02d.bus", i)] = t
		}
	}
	return out
}

// Stats returns a copy of the counters.
func (g *GDDR5) Stats() Stats { return g.stats }

// mc converts memory cycles to (rounded-up) GPU cycles.
func (g *GDDR5) mc(n int) int64 {
	v := float64(n) * g.cyclesPer
	i := int64(v)
	if float64(i) < v {
		i++
	}
	return i
}

// Access implements mem.Backend. Address mapping: low bits select the
// channel (line interleaving), then the bank, then the row — the standard
// GPU mapping that spreads streaming accesses across channels.
func (g *GDDR5) Access(now int64, req mem.Request) int64 {
	lineAddr := req.Addr / uint64(g.cfg.LineBytes)
	chIdx := int(lineAddr % uint64(g.cfg.Channels))
	rest := lineAddr / uint64(g.cfg.Channels)
	bankIdx := int(rest % uint64(g.cfg.BanksPerChannel))
	rowBytesLines := uint64(g.cfg.RowBytes / g.cfg.LineBytes)
	row := int64(rest / uint64(g.cfg.BanksPerChannel) / rowBytesLines)

	ch := &g.chans[chIdx]
	bk := &ch.banks[bankIdx]

	start := now

	// Row-buffer state machine.
	var coreLat int64
	if bk.rowOpened && bk.openRow == row {
		g.stats.RowHits++
		coreLat = g.mc(g.cfg.Timing.TCAS)
	} else {
		g.stats.RowMisses++
		pre := 0
		if bk.rowOpened {
			pre = g.cfg.Timing.TRP
		}
		coreLat = g.mc(pre + g.cfg.Timing.TRCD + g.cfg.Timing.TCAS)
		bk.rowOpened = true
		bk.openRow = row
	}

	// Data-bus bandwidth: one burst per line covered, metered with
	// backfill on the channel bus.
	lines := mem.LinesCovered(req.Addr, req.Size)
	if lines == 0 {
		lines = 1
	}
	burst := g.mc(g.cfg.Timing.TBurst) * int64(lines)

	dataStart := start + coreLat
	done := ch.bus.Reserve(dataStart, lines*g.cfg.LineBytes)
	if done < dataStart+burst {
		done = dataStart + burst
	}
	g.stats.BusyCycles += burst

	if req.Kind == mem.Write {
		// Write recovery charges extra bus occupancy rather than blocking
		// the bank (the meter absorbs it as reduced write bandwidth).
		ch.bus.Reserve(done, g.cfg.LineBytes/4)
		g.stats.Writes++
		g.stats.BytesWrit += uint64(req.Size)
	} else {
		g.stats.Reads++
		g.stats.BytesRead += uint64(req.Size)
	}

	if done > g.busyMax {
		g.busyMax = done
	}
	return done
}
