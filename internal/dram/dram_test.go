package dram

import (
	"testing"

	"repro/internal/mem"
)

func TestIdleReadLatency(t *testing.T) {
	g := New(DefaultConfig())
	done := g.Access(0, mem.Request{Addr: 0x1000, Size: 64, Class: mem.ClassTexture, Kind: mem.Read})
	if done <= 0 || done > 60 {
		t.Errorf("idle read latency %d cycles out of expected range (0, 60]", done)
	}
	t.Logf("idle read latency: %d cycles", done)
}

func TestRowHitFasterThanMiss(t *testing.T) {
	g := New(DefaultConfig())
	first := g.Access(0, mem.Request{Addr: 0, Size: 64, Kind: mem.Read})
	// Same row (next line in same bank): channel interleave means same-bank
	// lines are Channels*Banks lines apart.
	cfg := DefaultConfig()
	stride := uint64(cfg.Channels * cfg.BanksPerChannel * cfg.LineBytes)
	second := g.Access(first, mem.Request{Addr: stride, Size: 64, Kind: mem.Read})
	hitLat := second - first
	if g.Stats().RowHits == 0 {
		t.Fatalf("expected a row hit on same-row access, stats=%+v", g.Stats())
	}
	if hitLat >= first {
		t.Errorf("row hit latency %d should be below row miss latency %d", hitLat, first)
	}
}

// TestStreamBandwidth drives sequential lines at maximum rate and checks
// the sustained bandwidth approaches the configured peak.
func TestStreamBandwidth(t *testing.T) {
	g := New(DefaultConfig())
	const n = 100000
	var now, last int64
	for i := 0; i < n; i++ {
		done := g.Access(now, mem.Request{Addr: uint64(i) * 64, Size: 64, Kind: mem.Read})
		if done > last {
			last = done
		}
	}
	bw := float64(n*64) / float64(last)
	peak := g.PeakBandwidth()
	t.Logf("sustained %.1f B/cy vs peak %.1f B/cy over %d cycles", bw, peak, last)
	if bw < 0.7*peak {
		t.Errorf("sustained bandwidth %.1f below 70%% of peak %.1f", bw, peak)
	}
	if bw > peak*1.05 {
		t.Errorf("sustained bandwidth %.1f exceeds peak %.1f", bw, peak)
	}
}

// TestRandomAccessLatency issues scattered single reads at a modest rate
// and checks latency stays bounded (no runaway queueing).
func TestRandomAccessLatency(t *testing.T) {
	g := New(DefaultConfig())
	var sum int64
	const n = 20000
	seed := uint64(12345)
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		addr := (seed >> 16) % (1 << 30) &^ 63
		now := int64(i * 4) // one read every 4 cycles
		done := g.Access(now, mem.Request{Addr: addr, Size: 64, Kind: mem.Read})
		sum += done - now
	}
	meanLat := float64(sum) / n
	t.Logf("random read mean latency at 16 B/cy load: %.1f cycles (rowHitRate=%.2f)",
		meanLat, g.Stats().RowHitRate())
	if meanLat > 200 {
		t.Errorf("random-access latency %.1f looks unbounded", meanLat)
	}
}

// TestMixedReadWriteInterference interleaves read and write streams to
// distinct regions (texture reads vs Z writes) and verifies reads are not
// starved into runaway latency.
func TestMixedReadWriteInterference(t *testing.T) {
	g := New(DefaultConfig())
	var sum int64
	const n = 20000
	for i := 0; i < n; i++ {
		now := int64(i * 6)
		rdone := g.Access(now, mem.Request{Addr: uint64(i) * 64, Size: 64, Kind: mem.Read})
		g.Access(now, mem.Request{Addr: mem.RegionDepth + uint64(i)*64, Size: 64, Kind: mem.Write})
		sum += rdone - now
	}
	meanLat := float64(sum) / n
	t.Logf("read latency under write interference: %.1f cycles", meanLat)
	if meanLat > 300 {
		t.Errorf("read latency %.1f under writes looks unbounded", meanLat)
	}
}
