package dram

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/xrand"
)

// TestCompletionNeverPrecedesArrival fuzzes the timing model with random
// interleaved reads/writes at random (non-decreasing and jittered) times.
func TestCompletionNeverPrecedesArrival(t *testing.T) {
	g := New(DefaultConfig())
	rng := xrand.New(0xD2A4)
	var now int64
	for i := 0; i < 100000; i++ {
		// Mostly advancing time with occasional stale timestamps (the
		// pipeline emits those).
		now += int64(rng.Intn(8))
		at := now - int64(rng.Intn(2000))
		if at < 0 {
			at = 0
		}
		kind := mem.Read
		if rng.Float32() < 0.3 {
			kind = mem.Write
		}
		req := mem.Request{Addr: uint64(rng.Intn(1<<28)) &^ 63, Size: 64, Kind: kind}
		done := g.Access(at, req)
		if done < at {
			t.Fatalf("access %d completed at %d before arrival %d", i, done, at)
		}
		if done-at > 1_000_000 {
			t.Fatalf("access %d latency %d cycles looks unbounded", i, done-at)
		}
	}
	s := g.Stats()
	if s.Reads+s.Writes != 100000 {
		t.Fatalf("stats lost accesses: %d", s.Reads+s.Writes)
	}
	if s.RowHits+s.RowMisses != 100000 {
		t.Fatal("row stats inconsistent")
	}
}

// TestBytesAccounting checks the byte counters match issued traffic.
func TestBytesAccounting(t *testing.T) {
	g := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		g.Access(int64(i), mem.Request{Addr: uint64(i) * 64, Size: 64, Kind: mem.Read})
	}
	for i := 0; i < 50; i++ {
		g.Access(int64(i), mem.Request{Addr: uint64(i) * 64, Size: 64, Kind: mem.Write})
	}
	s := g.Stats()
	if s.BytesRead != 100*64 || s.BytesWrit != 50*64 {
		t.Fatalf("byte counters %d/%d", s.BytesRead, s.BytesWrit)
	}
}

// TestResetRestoresInitialState verifies determinism across Reset.
func TestResetRestoresInitialState(t *testing.T) {
	g := New(DefaultConfig())
	run := func() []int64 {
		var out []int64
		for i := 0; i < 1000; i++ {
			out = append(out, g.Access(int64(i), mem.Request{
				Addr: uint64(i*137) &^ 63, Size: 64, Kind: mem.Read}))
		}
		return out
	}
	a := run()
	g.Reset()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs after reset: %d vs %d", i, a[i], b[i])
		}
	}
}
