package config

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultsValid(t *testing.T) {
	for _, d := range AllDesigns() {
		if err := Default(d).Validate(); err != nil {
			t.Errorf("%s default invalid: %v", d, err)
		}
	}
}

func TestSTFIMHasNoGPUTextureUnits(t *testing.T) {
	cfg := Default(STFIM)
	if cfg.GPU.TextureUnits != 0 {
		t.Fatalf("S-TFIM has %d GPU texture units, Table I says 0", cfg.GPU.TextureUnits)
	}
	if cfg.TFIM.MTUs != 16 {
		t.Fatalf("S-TFIM has %d MTUs, Table I says 16", cfg.TFIM.MTUs)
	}
}

func TestTableIValues(t *testing.T) {
	cfg := Default(Baseline)
	if cfg.GPU.Clusters != 16 || cfg.GPU.ShadersPerCluster != 16 {
		t.Error("shader geometry differs from Table I")
	}
	if cfg.GDDR5GBs != 128 || cfg.HMCExternalGBs != 320 || cfg.HMCInternalGBs != 512 {
		t.Error("bandwidths differ from Table I / HMC 2.0")
	}
	if cfg.HMCVaults != 32 || cfg.HMCBanksPerVault != 8 {
		t.Error("HMC geometry differs from Table I")
	}
	if cfg.GPU.TexL1KB != 16 || cfg.GPU.TexL2KB != 128 {
		t.Error("texture cache sizes differ from Table I")
	}
	if cfg.GPU.MaxAniso != 16 {
		t.Error("max anisotropy differs from the paper's 16x")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cfg := Default(Baseline)
	cfg.GPU.TextureUnits = 0
	if cfg.Validate() == nil {
		t.Error("baseline without texture units validated")
	}

	cfg = Default(STFIM)
	cfg.TFIM.MTUs = 0
	if cfg.Validate() == nil {
		t.Error("S-TFIM without MTUs validated")
	}

	cfg = Default(ATFIM)
	cfg.TFIM.AngleThreshold = -1
	if cfg.Validate() == nil {
		t.Error("negative angle threshold validated")
	}

	cfg = Default(Baseline)
	cfg.GDDR5GBs = 0
	if cfg.Validate() == nil {
		t.Error("zero bandwidth validated")
	}
}

func TestDesignStrings(t *testing.T) {
	want := map[Design]string{
		Baseline: "Baseline", BPIM: "B-PIM", STFIM: "S-TFIM", ATFIM: "A-TFIM",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String()=%q want %q", d, d.String(), s)
		}
	}
}

func TestParseDesign(t *testing.T) {
	cases := []struct {
		in   string
		want Design
		err  bool
	}{
		{"", Baseline, false},
		{"baseline", Baseline, false},
		{"base", Baseline, false},
		{"bpim", BPIM, false},
		{"B-PIM", BPIM, false},
		{"stfim", STFIM, false},
		{"ATFIM", ATFIM, false},
		{"a-tfim", ATFIM, false},
		{"gddr7", 0, true},
	}
	for _, c := range cases {
		got, err := ParseDesign(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseDesign(%q) err=%v want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseDesign(%q)=%v want %v", c.in, got, c.want)
		}
	}
	// Every design's display name must parse back to itself, so labels in
	// job listings and suite files are valid design spellings.
	for _, d := range []Design{Baseline, BPIM, STFIM, ATFIM} {
		got, err := ParseDesign(d.String())
		if err != nil || got != d {
			t.Errorf("round-trip %v: ParseDesign(%q)=%v err=%v", d, d.String(), got, err)
		}
	}
}

func TestAngleThresholdsOrderedStrictFirst(t *testing.T) {
	ths := AngleThresholds()
	if len(ths) != 5 {
		t.Fatalf("%d thresholds, paper sweeps 5", len(ths))
	}
	for i := 1; i < len(ths); i++ {
		if ths[i].Value <= ths[i-1].Value {
			t.Fatal("thresholds not strictly increasing")
		}
	}
	if math.Abs(float64(ths[1].Value)-0.01*math.Pi) > 1e-6 {
		t.Errorf("default threshold %g, paper uses 0.01pi", ths[1].Value)
	}
}

func TestUsesHMC(t *testing.T) {
	if Default(Baseline).UsesHMC() {
		t.Error("baseline should not use HMC")
	}
	for _, d := range []Design{BPIM, STFIM, ATFIM} {
		if !Default(d).UsesHMC() {
			t.Errorf("%s should use HMC", d)
		}
	}
}

func TestTableIRendering(t *testing.T) {
	rows := Default(ATFIM).TableI()
	if len(rows) < 10 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	joined := ""
	for _, r := range rows {
		joined += r[0] + "=" + r[1] + "\n"
	}
	for _, want := range []string{"16", "128GB/s", "32 vaults", "1 cycle TSV"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}
