// Package config holds the simulator configuration corresponding to the
// paper's Table I, plus the design selector (Baseline / B-PIM / S-TFIM /
// A-TFIM) and the A-TFIM camera-angle thresholds swept in Section VII-D.
package config

import (
	"fmt"
	"math"
	"strings"
)

// Design selects which of the paper's four architectures to simulate.
type Design uint8

const (
	// Baseline is the GDDR5-backed GPU with all filtering on chip.
	Baseline Design = iota
	// BPIM replaces GDDR5 with an HMC used as plain memory (Section III).
	BPIM
	// STFIM moves all texture units into the HMC logic layer (Section IV).
	STFIM
	// ATFIM moves only anisotropic filtering into the HMC, reordered to
	// run first, with camera-angle-tagged texture caches (Section V).
	ATFIM
	// NumDesigns is the number of designs.
	NumDesigns
)

// String returns the paper's name for the design.
func (d Design) String() string {
	switch d {
	case Baseline:
		return "Baseline"
	case BPIM:
		return "B-PIM"
	case STFIM:
		return "S-TFIM"
	case ATFIM:
		return "A-TFIM"
	default:
		return fmt.Sprintf("design(%d)", uint8(d))
	}
}

// AllDesigns lists the four designs in the paper's presentation order.
func AllDesigns() []Design { return []Design{Baseline, BPIM, STFIM, ATFIM} }

// ParseDesign resolves a design name to its Design value. It is the single
// design-name parser every surface (flags, job specs, suite files) goes
// through, and it round-trips String(): ParseDesign(d.String()) == d for
// every design. Accepted spellings are case-insensitive, with or without
// the paper's hyphen ("atfim" and "A-TFIM" both work); the empty string
// selects the Baseline so omitted JSON fields default sensibly.
func ParseDesign(s string) (Design, error) {
	switch strings.ToLower(strings.ReplaceAll(s, "-", "")) {
	case "", "baseline", "base":
		return Baseline, nil
	case "bpim":
		return BPIM, nil
	case "stfim":
		return STFIM, nil
	case "atfim":
		return ATFIM, nil
	default:
		return 0, fmt.Errorf("unknown design %q (baseline, bpim, stfim, atfim)", s)
	}
}

// Camera-angle thresholds (radians) from Section VII-D. The default is
// 0.01pi (1.8 degrees).
const (
	Angle0005Pi = 0.005 * math.Pi
	Angle001Pi  = 0.01 * math.Pi
	Angle005Pi  = 0.05 * math.Pi
	Angle01Pi   = 0.1 * math.Pi
	// AngleNoRecalc disables recalculation entirely (least strict).
	AngleNoRecalc = math.Pi
)

// AngleThresholds returns the swept thresholds in most-strict-first order
// with their paper labels.
func AngleThresholds() []struct {
	Label string
	Value float32
} {
	return []struct {
		Label string
		Value float32
	}{
		{"A-TFIM-0005pi", Angle0005Pi},
		{"A-TFIM-001pi", Angle001Pi},
		{"A-TFIM-005pi", Angle005Pi},
		{"A-TFIM-01pi", Angle01Pi},
		{"A-TFIM-no", AngleNoRecalc},
	}
}

// GPU holds the host-GPU parameters of Table I.
type GPU struct {
	// Clusters is the number of unified-shader clusters.
	Clusters int
	// ShadersPerCluster is the unified shaders per cluster.
	ShadersPerCluster int
	// ClockGHz is the GPU core clock.
	ClockGHz float64
	// TileSize is the rasterizer tile edge.
	TileSize int
	// TextureUnits is the number of GPU texture units (0 for S-TFIM).
	TextureUnits int
	// AddrALUs and FilterALUs size each texture unit.
	AddrALUs   int
	FilterALUs int
	// MaxAniso is the maximum anisotropic filtering degree.
	MaxAniso int
	// TexL1KB, TexL1Ways configure each texture L1 cache.
	TexL1KB, TexL1Ways int
	// TexL2KB, TexL2Ways configure the shared texture L2 cache.
	TexL2KB, TexL2Ways int
	// ZCacheKB and ColorCacheKB configure the ROP caches.
	ZCacheKB, ColorCacheKB int
	// MSHRs bounds outstanding texture misses per texture unit.
	MSHRs int
	// ROPRate is fragments retired per cycle per ROP partition.
	ROPRate int
	// ROPs is the number of ROP partitions.
	ROPs int
}

// TFIM holds the in-memory filtering parameters (Sections IV-V).
type TFIM struct {
	// MTUs is the number of memory texture units for S-TFIM.
	MTUs int
	// MTUAddrALUs / MTUFilterALUs size each MTU.
	MTUAddrALUs, MTUFilterALUs int
	// TexelGenALUs is the A-TFIM Texel Generator ALU count.
	TexelGenALUs int
	// CombineALUs is the A-TFIM Combination Unit ALU count.
	CombineALUs int
	// ParentTexelBufferEntries sizes the Parent Texel Buffer.
	ParentTexelBufferEntries int
	// RequestQueueEntries sizes the MTU texture-request queue.
	RequestQueueEntries int
	// OffloadPackageFactor is the size of a parent-texel offload package
	// relative to a normal read request (4x per Section VI).
	OffloadPackageFactor int
	// AngleThreshold is the camera-angle reuse threshold (radians).
	AngleThreshold float32
	// Consolidate enables the Child Texel Consolidation unit.
	Consolidate bool
}

// Config is the complete simulator configuration.
type Config struct {
	Design Design
	GPU    GPU
	TFIM   TFIM
	// MemClockGHz is the memory clock (both GDDR5 and HMC per Table I).
	MemClockGHz float64
	// GDDR5GBs is the baseline off-chip bandwidth.
	GDDR5GBs float64
	// HMCExternalGBs and HMCInternalGBs are the cube bandwidths.
	HMCExternalGBs, HMCInternalGBs float64
	// HMCVaults and HMCBanksPerVault shape the cube.
	HMCVaults, HMCBanksPerVault int
	// MortonLayout selects Morton (true) or linear texel addressing.
	MortonLayout bool
	// AnisoEnabled can be cleared to reproduce the Fig. 4 study.
	AnisoEnabled bool
	// TextureCompression enables fixed-rate block compression of texture
	// storage (the orthogonal traffic-reduction technique of Section
	// VIII). Applies to the on-chip filtering designs; A-TFIM's in-memory
	// parent-texel computation assumes uncompressed texel storage.
	TextureCompression bool
}

// Default returns the Table I configuration for the given design with the
// paper's default 0.01pi angle threshold.
func Default(d Design) Config {
	c := Config{
		Design: d,
		GPU: GPU{
			Clusters:          16,
			ShadersPerCluster: 16,
			ClockGHz:          1.0,
			TileSize:          16,
			TextureUnits:      16,
			AddrALUs:          8,
			FilterALUs:        8,
			MaxAniso:          16,
			TexL1KB:           16,
			TexL1Ways:         16,
			TexL2KB:           128,
			TexL2Ways:         16,
			ZCacheKB:          32,
			ColorCacheKB:      32,
			MSHRs:             64,
			ROPRate:           4,
			ROPs:              8,
		},
		TFIM: TFIM{
			MTUs:                     16,
			MTUAddrALUs:              8,
			MTUFilterALUs:            8,
			TexelGenALUs:             16,
			CombineALUs:              16,
			ParentTexelBufferEntries: 256,
			RequestQueueEntries:      256,
			OffloadPackageFactor:     4,
			AngleThreshold:           Angle001Pi,
			Consolidate:              true,
		},
		MemClockGHz:      1.25,
		GDDR5GBs:         128,
		HMCExternalGBs:   320,
		HMCInternalGBs:   512,
		HMCVaults:        32,
		HMCBanksPerVault: 8,
		MortonLayout:     true,
		AnisoEnabled:     true,
	}
	if d == STFIM {
		// S-TFIM removes the GPU texture units (and with them the GPU
		// texture caches): Table I lists 0 texture units for S-TFIM.
		c.GPU.TextureUnits = 0
	}
	return c
}

// Validate checks cross-field consistency.
func (c Config) Validate() error {
	if c.GPU.Clusters <= 0 || c.GPU.ShadersPerCluster <= 0 {
		return fmt.Errorf("config: non-positive shader geometry")
	}
	if c.Design != STFIM && c.GPU.TextureUnits <= 0 {
		return fmt.Errorf("config: %s requires GPU texture units", c.Design)
	}
	if c.Design == STFIM && c.TFIM.MTUs <= 0 {
		return fmt.Errorf("config: S-TFIM requires MTUs")
	}
	if c.GPU.MaxAniso < 1 {
		return fmt.Errorf("config: MaxAniso must be >= 1")
	}
	if c.TFIM.AngleThreshold < 0 {
		return fmt.Errorf("config: negative angle threshold")
	}
	if c.GDDR5GBs <= 0 || c.HMCExternalGBs <= 0 || c.HMCInternalGBs <= 0 {
		return fmt.Errorf("config: non-positive bandwidth")
	}
	if c.TextureCompression && c.Design == ATFIM {
		return fmt.Errorf("config: texture compression is not supported with A-TFIM (in-memory parent texel computation assumes uncompressed storage)")
	}
	return nil
}

// UsesHMC reports whether the design's memory is an HMC.
func (c Config) UsesHMC() bool { return c.Design != Baseline }

// TableI renders the configuration as the paper's Table I rows.
func (c Config) TableI() [][2]string {
	rows := [][2]string{
		{"Number of cluster", fmt.Sprintf("%d", c.GPU.Clusters)},
		{"Unified shader per cluster", fmt.Sprintf("%d", c.GPU.ShadersPerCluster)},
		{"Unified shader configuration", "simd4-scale ALUs, 4 shader elements, 16x16 tile size"},
		{"GPU frequency", fmt.Sprintf("%.0f GHz", c.GPU.ClockGHz)},
		{"Number of GPU Texture Units", fmt.Sprintf("%d", c.GPU.TextureUnits)},
		{"Texture unit configuration", fmt.Sprintf("%d address ALUs, %d filtering ALUs", c.GPU.AddrALUs, c.GPU.FilterALUs)},
		{"Texture L1 cache", fmt.Sprintf("%dKB, %d-way", c.GPU.TexL1KB, c.GPU.TexL1Ways)},
		{"Texture L2 cache", fmt.Sprintf("%dKB, %d-way", c.GPU.TexL2KB, c.GPU.TexL2Ways)},
		{"Off-chip bandwidth", fmt.Sprintf("%.0fGB/s for GDDR5, %.0f GB/s total for HMC", c.GDDR5GBs, c.HMCExternalGBs)},
		{"Memory frequency", fmt.Sprintf("%.2f GHz", c.MemClockGHz)},
		{"HMC configuration", fmt.Sprintf("%d vaults, %d banks/vault, 1 cycle TSV latency", c.HMCVaults, c.HMCBanksPerVault)},
		{"Number of MTU (S-TFIM)", fmt.Sprintf("%d", c.TFIM.MTUs)},
		{"MTU configuration", fmt.Sprintf("%d address ALUs, %d filtering ALUs", c.TFIM.MTUAddrALUs, c.TFIM.MTUFilterALUs)},
		{"Texel Generator (A-TFIM)", fmt.Sprintf("%d address ALUs", c.TFIM.TexelGenALUs)},
		{"Combination Unit (A-TFIM)", fmt.Sprintf("%d filtering ALUs", c.TFIM.CombineALUs)},
	}
	return rows
}
