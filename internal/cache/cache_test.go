package cache

import (
	"testing"
	"testing/quick"
)

func newTest(opts ...func(*Config)) *Cache {
	cfg := Config{Name: "t", SizeBytes: 1024, Ways: 4, LineBytes: 64}
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

func TestMissThenHit(t *testing.T) {
	c := newTest()
	if r := c.Access(0x100, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if r := c.Access(0x13f, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1024B / 64B / 4 ways = 4 sets. Fill one set (stride = sets*line).
	c := newTest()
	const stride = 4 * 64
	for i := 0; i < 4; i++ {
		c.Access(uint64(i)*stride, false)
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Access(0, false)
	// Insert a fifth line into the set: must evict line 1 (the LRU).
	c.Access(4*stride, false)
	if !c.Probe(0) {
		t.Error("recently used line 0 was evicted")
	}
	if c.Probe(stride) {
		t.Error("LRU line 1 survived eviction")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions=%d want 1", c.Stats().Evictions)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := newTest(func(cfg *Config) { cfg.WriteBack = true })
	const stride = 4 * 64
	c.Access(0, true) // dirty
	for i := 1; i <= 4; i++ {
		r := c.Access(uint64(i)*stride, false)
		if i < 4 && r.Writeback {
			t.Fatal("premature writeback")
		}
		if i == 4 {
			if !r.Writeback {
				t.Fatal("dirty line evicted without writeback")
			}
			if r.VictimAddr != 0 {
				t.Fatalf("victim addr %#x want 0", r.VictimAddr)
			}
		}
	}
}

func TestWriteThroughNeverWritesBack(t *testing.T) {
	c := newTest() // write-through (WriteBack false)
	const stride = 4 * 64
	c.Access(0, true)
	for i := 1; i <= 4; i++ {
		if r := c.Access(uint64(i)*stride, false); r.Writeback {
			t.Fatal("write-through cache produced a writeback")
		}
	}
}

func TestFlushDirty(t *testing.T) {
	c := newTest(func(cfg *Config) { cfg.WriteBack = true })
	c.Access(0x000, true)
	c.Access(0x440, true)
	c.Access(0x880, false) // clean
	dirty := c.FlushDirty()
	if len(dirty) != 2 {
		t.Fatalf("flushed %d lines, want 2", len(dirty))
	}
	if len(c.FlushDirty()) != 0 {
		t.Fatal("second flush found dirty lines")
	}
}

func TestAngleTagRejection(t *testing.T) {
	c := newTest(func(cfg *Config) { cfg.AngleTags = true })
	const thr = 0.05
	c.AccessAngle(0x100, false, 0.30, thr)
	// Within threshold: hit.
	if r := c.AccessAngle(0x100, false, 0.33, thr); !r.Hit {
		t.Fatal("within-threshold access missed")
	}
	// Beyond threshold: demoted to a recalculation miss.
	r := c.AccessAngle(0x100, false, 0.50, thr)
	if r.Hit || !r.AngleRejected {
		t.Fatalf("expected angle rejection, got %+v", r)
	}
	if c.Stats().AngleRejects != 1 {
		t.Errorf("angleRejects=%d want 1", c.Stats().AngleRejects)
	}
	// The stored angle was refreshed: the same angle now hits.
	if r := c.AccessAngle(0x100, false, 0.50, thr); !r.Hit {
		t.Fatal("refreshed angle did not hit")
	}
}

func TestNegativeThresholdDisablesAngleCheck(t *testing.T) {
	c := newTest(func(cfg *Config) { cfg.AngleTags = true })
	c.AccessAngle(0x100, false, 0.0, -1)
	if r := c.AccessAngle(0x100, false, 3.0, -1); !r.Hit {
		t.Fatal("angle check should be disabled with negative threshold")
	}
}

func TestDataLines(t *testing.T) {
	c := newTest(func(cfg *Config) { cfg.DataLines = true })
	r := c.Access(0x200, false)
	if c.WordValid(r.LineIndex, 8) {
		t.Fatal("fresh line has valid words")
	}
	c.SetWord(r.LineIndex, 8, 0xdeadbeef)
	if !c.WordValid(r.LineIndex, 8) {
		t.Fatal("stored word not valid")
	}
	if c.Word(r.LineIndex, 8) != 0xdeadbeef {
		t.Fatal("stored word corrupted")
	}
	// Eviction must clear payload.
	const stride = 4 * 64
	for i := 1; i <= 4; i++ {
		c.Access(0x200+uint64(i)*stride, false)
	}
	r2 := c.Access(0x200, false)
	if r2.Hit || c.WordValid(r2.LineIndex, 8) {
		t.Fatal("payload survived eviction")
	}
}

func TestReset(t *testing.T) {
	c := newTest()
	c.Access(0x100, false)
	c.Reset()
	if c.Probe(0x100) {
		t.Fatal("line survived reset")
	}
	if c.Stats().Accesses != 0 {
		t.Fatal("stats survived reset")
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, Ways: 4, LineBytes: 64},
		{Name: "b", SizeBytes: 1024, Ways: 4, LineBytes: 60},     // non-pow2 line
		{Name: "c", SizeBytes: 1024, Ways: 3, LineBytes: 64},     // lines%ways != 0... 16%3
		{Name: "d", SizeBytes: 1024 * 3, Ways: 4, LineBytes: 64}, // sets not pow2
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q validated but should not", cfg.Name)
		}
	}
}

func TestRepeatAccessAlwaysHits(t *testing.T) {
	// Property: accessing the same address twice in a row always hits the
	// second time (no angle tags involved).
	c := newTest(func(cfg *Config) { cfg.SizeBytes = 4096; cfg.Ways = 8 })
	err := quick.Check(func(addrRaw uint32) bool {
		addr := uint64(addrRaw)
		c.Access(addr, false)
		return c.Access(addr, false).Hit
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHitRate(t *testing.T) {
	s := Stats{Accesses: 10, Hits: 7}
	if s.HitRate() != 0.7 {
		t.Errorf("hit rate %g", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}
