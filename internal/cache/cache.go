// Package cache implements the set-associative cache model used for the
// GPU's texture L1/L2 caches and the ROP's Z and color caches. Beyond a
// conventional tag array with LRU replacement and write-back, it supports
// the two extensions the A-TFIM design needs:
//
//   - an optional per-line camera-angle tag (7 bits in the paper; stored
//     here as a float32 with 1-degree comparison accuracy), used to decide
//     whether a cached parent texel may be reused for a fragment viewed
//     from a different camera angle, and
//   - an optional per-line data payload (16 four-byte texels per 64-byte
//     line) so approximated parent-texel values produced in memory can be
//     cached and re-served on the GPU.
package cache

import (
	"fmt"
	"math"
)

// Config describes a cache instance.
type Config struct {
	// Name identifies the cache in statistics ("texL1", "texL2", "zcache").
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the line size.
	LineBytes int
	// WriteBack selects write-back (true) or write-through (false) policy.
	WriteBack bool
	// AngleTags enables the per-line camera-angle tag used by A-TFIM.
	AngleTags bool
	// DataLines enables per-line payload storage (one uint32 per 4 bytes).
	DataLines bool
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: %d sets not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	// AngleRejects counts hits that were demoted to misses because the
	// stored camera angle differed from the request's by more than the
	// threshold (A-TFIM recalculation, Section V-C of the paper).
	AngleRejects uint64
}

// HitRate returns hits/accesses (0 when no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	angle float32
	data  []uint32
}

// Cache is a set-associative cache. It is not safe for concurrent use; the
// simulator drives each cache from a single goroutine.
type Cache struct {
	cfg       Config
	sets      int
	setMask   uint64
	lineShift uint
	lines     []line // sets*ways, way-major within a set
	lruTick   uint64
	lru       []uint64 // last-use tick per line
	stats     Stats
}

// New builds a cache from cfg. It panics on invalid geometry (configuration
// is programmer-controlled).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(sets - 1),
		lineShift: uint(bitsFor(cfg.LineBytes)),
		lines:     make([]line, sets*cfg.Ways),
		lru:       make([]uint64, sets*cfg.Ways),
	}
	if cfg.DataLines {
		words := cfg.LineBytes / 4
		for i := range c.lines {
			c.lines[i].data = make([]uint32, words)
		}
	}
	return c
}

func bitsFor(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset invalidates every line and zeroes statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i].valid = false
		c.lines[i].dirty = false
	}
	for i := range c.lru {
		c.lru[i] = 0
	}
	c.lruTick = 0
	c.stats = Stats{}
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	l := addr >> c.lineShift
	return int(l & c.setMask), l >> uint(bitsFor(c.sets))
}

// Result describes the outcome of one cache access.
type Result struct {
	// Hit is true when the line was present (and, if an angle threshold was
	// supplied, the stored angle was within the threshold).
	Hit bool
	// Writeback is true when a dirty victim must be written to memory.
	Writeback bool
	// VictimAddr is the line address of the evicted victim when Writeback.
	VictimAddr uint64
	// AngleRejected is true when the line was present but the camera angle
	// differed by more than the threshold, forcing a recalculation miss.
	AngleRejected bool
	// LineIndex identifies the (filled or hit) line for payload access.
	LineIndex int
}

// Access looks up addr; on a miss the line is filled (allocate-on-miss for
// both reads and writes). write marks the line dirty under write-back.
func (c *Cache) Access(addr uint64, write bool) Result {
	return c.AccessAngle(addr, write, 0, -1)
}

// AccessAngle is Access plus the A-TFIM camera-angle check: when
// angleThreshold >= 0 and the cache was built with AngleTags, a present
// line whose stored angle differs from `angle` by more than the threshold
// is treated as a miss (the texel must be recalculated in memory), and the
// stored angle is refreshed on fill. Angles are radians.
func (c *Cache) AccessAngle(addr uint64, write bool, angle float32, angleThreshold float32) Result {
	c.stats.Accesses++
	c.lruTick++
	set, tag := c.index(addr)
	base := set * c.cfg.Ways

	// Lookup.
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			if angleThreshold >= 0 && c.cfg.AngleTags {
				if angleDiff(ln.angle, angle) > angleThreshold {
					// Present but stale for this viewing angle: recalculate.
					c.stats.AngleRejects++
					c.stats.Misses++
					ln.angle = angle
					if write {
						ln.dirty = c.cfg.WriteBack
					}
					c.lru[base+w] = c.lruTick
					return Result{Hit: false, AngleRejected: true, LineIndex: base + w}
				}
			}
			c.stats.Hits++
			if write {
				ln.dirty = c.cfg.WriteBack
			}
			c.lru[base+w] = c.lruTick
			return Result{Hit: true, LineIndex: base + w}
		}
	}

	// Miss: choose victim (invalid first, else LRU).
	c.stats.Misses++
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.lines[base+w].valid {
			victim = base + w
			break
		}
	}
	res := Result{}
	if victim < 0 {
		victim = base
		oldest := c.lru[base]
		for w := 1; w < c.cfg.Ways; w++ {
			if c.lru[base+w] < oldest {
				oldest = c.lru[base+w]
				victim = base + w
			}
		}
		c.stats.Evictions++
		if c.lines[victim].dirty {
			c.stats.Writebacks++
			res.Writeback = true
			res.VictimAddr = c.lineAddrOf(set, c.lines[victim].tag)
		}
	}
	ln := &c.lines[victim]
	ln.valid = true
	ln.tag = tag
	ln.dirty = write && c.cfg.WriteBack
	ln.angle = angle
	if ln.data != nil {
		for i := range ln.data {
			ln.data[i] = 0
		}
	}
	c.lru[victim] = c.lruTick
	res.LineIndex = victim
	return res
}

// Probe reports whether addr is present without updating LRU or counters.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

func (c *Cache) lineAddrOf(set int, tag uint64) uint64 {
	return (tag<<uint(bitsFor(c.sets)) | uint64(set)) << c.lineShift
}

// Word returns the 32-bit payload word at byte offset off within the line
// identified by a previous Result.LineIndex. Requires DataLines.
func (c *Cache) Word(lineIndex int, off int) uint32 {
	return c.lines[lineIndex].data[off/4]
}

// SetWord stores a 32-bit payload word at byte offset off within the line.
func (c *Cache) SetWord(lineIndex int, off int, v uint32) {
	c.lines[lineIndex].data[off/4] = v
}

// WordValid reports whether a payload word has been stored (non-zero tagging
// is handled by callers; the texture path stores texels with alpha >= 1 so a
// zero word means "not yet computed").
func (c *Cache) WordValid(lineIndex, off int) bool {
	return c.lines[lineIndex].data[off/4] != 0
}

// Angle returns the stored camera angle of a line.
func (c *Cache) Angle(lineIndex int) float32 { return c.lines[lineIndex].angle }

// FlushDirty returns the line addresses of all dirty lines and marks them
// clean (used at end of frame to drain the write-back caches).
func (c *Cache) FlushDirty() []uint64 {
	var out []uint64
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.dirty {
			set := i / c.cfg.Ways
			out = append(out, c.lineAddrOf(set, ln.tag))
			ln.dirty = false
			c.stats.Writebacks++
		}
	}
	return out
}

func angleDiff(a, b float32) float32 {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	// Angles are surface viewing angles in [0, pi/2]; simple absolute
	// difference with wrap safety.
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return float32(d)
}
