package cache

import (
	"testing"

	"repro/internal/xrand"
)

// refCache is a trivially-correct reference model: per-set LRU lists.
type refCache struct {
	sets     int
	ways     int
	lineBits uint
	lru      [][]uint64 // most recent last
}

func newRefCache(sizeBytes, ways, lineBytes int) *refCache {
	lines := sizeBytes / lineBytes
	sets := lines / ways
	bits := uint(0)
	for 1<<bits < lineBytes {
		bits++
	}
	r := &refCache{sets: sets, ways: ways, lineBits: bits}
	r.lru = make([][]uint64, sets)
	return r
}

func (r *refCache) access(addr uint64) bool {
	line := addr >> r.lineBits
	set := int(line % uint64(r.sets))
	tag := line / uint64(r.sets)
	list := r.lru[set]
	for i, t := range list {
		if t == tag {
			// Move to most-recent position.
			r.lru[set] = append(append(list[:i:i], list[i+1:]...), tag)
			return true
		}
	}
	list = append(list, tag)
	if len(list) > r.ways {
		list = list[1:]
	}
	r.lru[set] = list
	return false
}

// TestCacheAgainstReferenceModel drives the production cache and the
// reference LRU model with the same random access stream and requires
// identical hit/miss decisions on every access.
func TestCacheAgainstReferenceModel(t *testing.T) {
	const (
		size  = 4096
		ways  = 4
		line  = 64
		steps = 200000
	)
	c := New(Config{Name: "m", SizeBytes: size, Ways: ways, LineBytes: line})
	ref := newRefCache(size, ways, line)
	rng := xrand.New(0xCAC4E)
	for i := 0; i < steps; i++ {
		// Skewed address distribution: mostly a hot region, sometimes cold.
		var addr uint64
		if rng.Float32() < 0.8 {
			addr = uint64(rng.Intn(size * 2))
		} else {
			addr = uint64(rng.Intn(1 << 24))
		}
		got := c.Access(addr, rng.Float32() < 0.3).Hit
		want := ref.access(addr)
		if got != want {
			t.Fatalf("step %d addr %#x: cache hit=%v, reference hit=%v", i, addr, got, want)
		}
	}
	s := c.Stats()
	if s.Accesses != steps {
		t.Fatalf("access count %d want %d", s.Accesses, steps)
	}
	if s.Hits+s.Misses != s.Accesses {
		t.Fatal("hits + misses != accesses")
	}
}

// TestCacheStatsInvariants checks counter consistency under a random
// angle-tagged workload.
func TestCacheStatsInvariants(t *testing.T) {
	c := New(Config{Name: "inv", SizeBytes: 2048, Ways: 2, LineBytes: 64,
		WriteBack: true, AngleTags: true, DataLines: true})
	rng := xrand.New(7)
	writebacks := uint64(0)
	for i := 0; i < 100000; i++ {
		addr := uint64(rng.Intn(1 << 16))
		angle := rng.Float32()
		r := c.AccessAngle(addr, rng.Float32() < 0.5, angle, 0.2)
		if r.Writeback {
			writebacks++
		}
		if r.Hit && r.AngleRejected {
			t.Fatal("a hit cannot also be angle-rejected")
		}
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Accesses {
		t.Fatal("hits + misses != accesses")
	}
	if s.AngleRejects > s.Misses {
		t.Fatal("more angle rejects than misses")
	}
	if s.Writebacks < writebacks {
		t.Fatal("writeback stat below observed writebacks")
	}
}
