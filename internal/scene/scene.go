// Package scene defines the renderer's input model — meshes of textured
// triangles plus a camera — and the procedural generators that synthesize
// game-like scenes for the five workloads of Table II. Real game traces are
// proprietary (ATTILA's captures), so each generator builds a deterministic
// scene whose salient statistics (triangle count, texture inventory,
// distribution of oblique surfaces, overdraw) match the character of its
// namesake; see DESIGN.md for the substitution argument.
package scene

import (
	"math"

	"repro/internal/texture"
	"repro/internal/vmath"
	"repro/internal/xrand"
)

// VertexIn is a pre-transform (object-space) vertex.
type VertexIn struct {
	Pos    vmath.Vec3
	UV     vmath.Vec2
	Color  vmath.Vec4
	Normal vmath.Vec3
}

// Triangle references three vertices and a texture.
type Triangle struct {
	V     [3]int
	TexID int
}

// Mesh is an indexed triangle list.
type Mesh struct {
	Vertices  []VertexIn
	Triangles []Triangle
}

// Camera positions the viewer for one frame.
type Camera struct {
	Eye    vmath.Vec3
	Center vmath.Vec3
	Up     vmath.Vec3
	FovY   float32
	Near   float32
	Far    float32
}

// ViewProj returns the combined view-projection matrix for the target
// aspect ratio.
func (c Camera) ViewProj(aspect float32) vmath.Mat4 {
	proj := vmath.Perspective(c.FovY, aspect, c.Near, c.Far)
	view := vmath.LookAt(c.Eye, c.Center, c.Up)
	return proj.Mul(view)
}

// Scene is a complete renderable world.
type Scene struct {
	Name     string
	Mesh     Mesh
	Textures []*texture.Texture
	// TextureSpecs are the procedural recipes the textures were built
	// from (kept so traces can store recipes instead of pixels).
	TextureSpecs []texture.SynthSpec
	// Cameras holds one camera per frame of the capture.
	Cameras []Camera
	// Ambient is the fragment program's ambient light term.
	Ambient float32
	// LightDir is the normalized directional light.
	LightDir vmath.Vec3
}

// NumTriangles returns the triangle count.
func (s *Scene) NumTriangles() int { return len(s.Mesh.Triangles) }

// TextureBytes returns the total texture storage.
func (s *Scene) TextureBytes() int {
	n := 0
	for _, t := range s.Textures {
		n += t.SizeBytes()
	}
	return n
}

// AssignTextureAddresses lays all textures out in the texture region and
// returns the total extent.
func (s *Scene) AssignTextureAddresses(base uint64) uint64 {
	for _, t := range s.Textures {
		base = t.AssignAddresses(base)
	}
	return base
}

// Builder incrementally constructs a mesh.
type Builder struct {
	mesh Mesh
}

// AddQuad appends two triangles forming the quad (a, b, c, d) in
// counter-clockwise order with the given texture, UV scale and color.
// The normal is computed from the winding.
func (b *Builder) AddQuad(a, bb, c, d vmath.Vec3, texID int, uvScale float32, color vmath.Vec4) {
	n := bb.Sub(a).Cross(d.Sub(a)).Normalize()
	base := len(b.mesh.Vertices)
	uv := [4]vmath.Vec2{
		{X: 0, Y: 0},
		{X: uvScale, Y: 0},
		{X: uvScale, Y: uvScale},
		{X: 0, Y: uvScale},
	}
	for i, p := range [4]vmath.Vec3{a, bb, c, d} {
		b.mesh.Vertices = append(b.mesh.Vertices, VertexIn{
			Pos: p, UV: uv[i], Color: color, Normal: n,
		})
	}
	b.mesh.Triangles = append(b.mesh.Triangles,
		Triangle{V: [3]int{base, base + 1, base + 2}, TexID: texID},
		Triangle{V: [3]int{base, base + 2, base + 3}, TexID: texID},
	)
}

// AddBox appends the six faces of an axis-aligned box.
func (b *Builder) AddBox(lo, hi vmath.Vec3, texID int, uvScale float32, color vmath.Vec4) {
	l, h := lo, hi
	// Four side walls, floor and ceiling; windings chosen so normals face
	// outward.
	b.AddQuad(vmath.Vec3{X: l.X, Y: l.Y, Z: l.Z}, vmath.Vec3{X: h.X, Y: l.Y, Z: l.Z},
		vmath.Vec3{X: h.X, Y: h.Y, Z: l.Z}, vmath.Vec3{X: l.X, Y: h.Y, Z: l.Z}, texID, uvScale, color)
	b.AddQuad(vmath.Vec3{X: h.X, Y: l.Y, Z: h.Z}, vmath.Vec3{X: l.X, Y: l.Y, Z: h.Z},
		vmath.Vec3{X: l.X, Y: h.Y, Z: h.Z}, vmath.Vec3{X: h.X, Y: h.Y, Z: h.Z}, texID, uvScale, color)
	b.AddQuad(vmath.Vec3{X: l.X, Y: l.Y, Z: h.Z}, vmath.Vec3{X: l.X, Y: l.Y, Z: l.Z},
		vmath.Vec3{X: l.X, Y: h.Y, Z: l.Z}, vmath.Vec3{X: l.X, Y: h.Y, Z: h.Z}, texID, uvScale, color)
	b.AddQuad(vmath.Vec3{X: h.X, Y: l.Y, Z: l.Z}, vmath.Vec3{X: h.X, Y: l.Y, Z: h.Z},
		vmath.Vec3{X: h.X, Y: h.Y, Z: h.Z}, vmath.Vec3{X: h.X, Y: h.Y, Z: l.Z}, texID, uvScale, color)
	b.AddQuad(vmath.Vec3{X: l.X, Y: l.Y, Z: h.Z}, vmath.Vec3{X: h.X, Y: l.Y, Z: h.Z},
		vmath.Vec3{X: h.X, Y: l.Y, Z: l.Z}, vmath.Vec3{X: l.X, Y: l.Y, Z: l.Z}, texID, uvScale, color)
	b.AddQuad(vmath.Vec3{X: l.X, Y: h.Y, Z: l.Z}, vmath.Vec3{X: h.X, Y: h.Y, Z: l.Z},
		vmath.Vec3{X: h.X, Y: h.Y, Z: h.Z}, vmath.Vec3{X: l.X, Y: h.Y, Z: h.Z}, texID, uvScale, color)
}

// Mesh returns the built mesh.
func (b *Builder) Mesh() Mesh { return b.mesh }

// Spec parameterizes a procedural scene generator.
type Spec struct {
	// Name labels the scene.
	Name string
	// Seed makes generation deterministic.
	Seed uint64
	// CorridorSegments controls corridor length (and triangle count).
	CorridorSegments int
	// Props is the number of boxes/pillars scattered through the world.
	Props int
	// TextureCount and TextureSize shape the texture inventory.
	TextureCount int
	TextureSize  int
	// Frames is the number of camera frames in the capture.
	Frames int
	// ObliqueBias (0..1) biases the camera pitch downward so floors and
	// walls are viewed at grazing angles (more anisotropy demand).
	ObliqueBias float32
	// Ambient lighting term.
	Ambient float32
	// Layout selects the texel layout for all textures.
	Layout texture.Layout
	// Kinds restricts the synthesizer families used (empty = all).
	Kinds []texture.SynthKind
}

// Generate builds a deterministic corridor-and-props world: a long textured
// corridor (large floor/wall/ceiling quads seen at oblique angles — the
// anisotropic-heavy geometry of Fig. 8's "sunken stone" example) populated
// with textured boxes and pillars, plus a camera flythrough.
func Generate(spec Spec) *Scene {
	rng := xrand.New(spec.Seed)
	s := &Scene{
		Name:     spec.Name,
		Ambient:  spec.Ambient,
		LightDir: vmath.Vec3{X: 0.3, Y: 0.8, Z: 0.5}.Normalize(),
	}
	if s.Ambient == 0 {
		s.Ambient = 0.35
	}

	// Texture inventory.
	kinds := spec.Kinds
	if len(kinds) == 0 {
		kinds = []texture.SynthKind{
			texture.SynthBrick, texture.SynthNoise, texture.SynthChecker,
			texture.SynthMarble, texture.SynthMetal, texture.SynthWood,
			texture.SynthGrate,
		}
	}
	for i := 0; i < spec.TextureCount; i++ {
		prim, sec := texture.DefaultPalette(i)
		tspec := texture.SynthSpec{
			Kind:      kinds[i%len(kinds)],
			Seed:      spec.Seed ^ uint64(i)*0x9e3779b9,
			Size:      spec.TextureSize,
			Primary:   prim,
			Secondary: sec,
			Scale:     float32(4 + rng.Intn(12)),
		}
		s.TextureSpecs = append(s.TextureSpecs, tspec)
		s.Textures = append(s.Textures, texture.Synthesize(i, tspec, spec.Layout))
	}
	texFor := func() int { return rng.Intn(len(s.Textures)) }

	var b Builder
	const (
		width  = 8.0
		height = 4.0
		seglen = 10.0
	)
	white := vmath.Vec4{X: 1, Y: 1, Z: 1, W: 1}

	// Corridor: per segment a floor, ceiling and two walls. Large quads
	// with high UV tiling stress the texture system exactly like game
	// corridors do.
	floorTex := texFor()
	wallTex := texFor()
	ceilTex := texFor()
	for i := 0; i < spec.CorridorSegments; i++ {
		z0 := -float32(i) * seglen
		z1 := z0 - seglen
		// Slight per-segment lateral drift makes walls non-parallel to the
		// view axis, varying the camera angle across pixels.
		off := rng.Range(-0.8, 0.8)
		l := float32(-width/2) + off
		r := float32(width/2) + off
		// UV tiling keeps the sampled mip level fine (near the base level)
		// on nearby surfaces — the texel:pixel ratio games target, which is
		// what makes texture fetches dominate memory bandwidth (Fig. 2).
		// Floor (normal up).
		b.AddQuad(
			vmath.Vec3{X: l, Y: 0, Z: z0}, vmath.Vec3{X: r, Y: 0, Z: z0},
			vmath.Vec3{X: r, Y: 0, Z: z1}, vmath.Vec3{X: l, Y: 0, Z: z1},
			floorTex, 6, white)
		// Ceiling (normal down).
		b.AddQuad(
			vmath.Vec3{X: l, Y: height, Z: z1}, vmath.Vec3{X: r, Y: height, Z: z1},
			vmath.Vec3{X: r, Y: height, Z: z0}, vmath.Vec3{X: l, Y: height, Z: z0},
			ceilTex, 5, white)
		// Left wall (normal +X).
		b.AddQuad(
			vmath.Vec3{X: l, Y: 0, Z: z1}, vmath.Vec3{X: l, Y: 0, Z: z0},
			vmath.Vec3{X: l, Y: height, Z: z0}, vmath.Vec3{X: l, Y: height, Z: z1},
			wallTex, 4, white)
		// Right wall (normal -X).
		b.AddQuad(
			vmath.Vec3{X: r, Y: 0, Z: z0}, vmath.Vec3{X: r, Y: 0, Z: z1},
			vmath.Vec3{X: r, Y: height, Z: z1}, vmath.Vec3{X: r, Y: height, Z: z0},
			wallTex, 4, white)
	}

	// Props: boxes and thin pillars scattered through the corridor volume
	// to create overdraw and varied normals.
	depth := float32(spec.CorridorSegments) * seglen
	for i := 0; i < spec.Props; i++ {
		cx := rng.Range(-width/2+0.8, width/2-0.8)
		cz := -rng.Range(4, depth-4)
		var sx, sy, sz float32
		if rng.Float32() < 0.4 {
			// Pillar.
			sx, sy, sz = rng.Range(0.2, 0.5), height, rng.Range(0.2, 0.5)
		} else {
			sx = rng.Range(0.4, 1.4)
			sy = rng.Range(0.4, 1.8)
			sz = rng.Range(0.4, 1.4)
		}
		tint := vmath.Vec4{
			X: 0.7 + 0.3*rng.Float32(),
			Y: 0.7 + 0.3*rng.Float32(),
			Z: 0.7 + 0.3*rng.Float32(),
			W: 1,
		}
		b.AddBox(
			vmath.Vec3{X: cx - sx/2, Y: 0, Z: cz - sz/2},
			vmath.Vec3{X: cx + sx/2, Y: sy, Z: cz + sz/2},
			texFor(), 2, tint)
	}
	s.Mesh = b.Mesh()

	// Camera flythrough: walk down the corridor with gentle sway. A high
	// ObliqueBias keeps the view close to the horizon, so the floor, walls
	// and ceiling are seen at grazing angles — the geometry where
	// anisotropic filtering demands the most texels (Section II-C).
	frames := spec.Frames
	if frames < 1 {
		frames = 1
	}
	for f := 0; f < frames; f++ {
		t := float32(f) / float32(frames)
		z := -2 - t*(depth-12)
		sway := float32(0.6 * math.Sin(float64(t*6*math.Pi)))
		pitch := -0.02 - 0.22*(1-spec.ObliqueBias)
		eye := vmath.Vec3{X: sway, Y: 1.7, Z: z}
		look := vmath.Vec3{X: sway * 0.5, Y: 1.7 + pitch*8, Z: z - 8}
		s.Cameras = append(s.Cameras, Camera{
			Eye: eye, Center: look, Up: vmath.Vec3{Y: 1},
			FovY: 1.1, Near: 0.1, Far: 300,
		})
	}
	return s
}
