package scene

import (
	"testing"

	"repro/internal/texture"
	"repro/internal/vmath"
)

func testSpec() Spec {
	return Spec{
		Name:             "test",
		Seed:             42,
		CorridorSegments: 4,
		Props:            10,
		TextureCount:     3,
		TextureSize:      32,
		Frames:           4,
		ObliqueBias:      0.8,
		Layout:           texture.LayoutMorton,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSpec())
	b := Generate(testSpec())
	if len(a.Mesh.Vertices) != len(b.Mesh.Vertices) {
		t.Fatal("vertex counts differ across identical generations")
	}
	for i := range a.Mesh.Vertices {
		if a.Mesh.Vertices[i] != b.Mesh.Vertices[i] {
			t.Fatalf("vertex %d differs", i)
		}
	}
	for i := range a.Cameras {
		if a.Cameras[i] != b.Cameras[i] {
			t.Fatalf("camera %d differs", i)
		}
	}
	for ti := range a.Textures {
		for pi := range a.Textures[ti].Levels[0].Pix {
			if a.Textures[ti].Levels[0].Pix[pi] != b.Textures[ti].Levels[0].Pix[pi] {
				t.Fatalf("texture %d texel %d differs", ti, pi)
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	s := Generate(testSpec())
	if len(s.Textures) != 3 {
		t.Errorf("textures %d want 3", len(s.Textures))
	}
	if len(s.TextureSpecs) != 3 {
		t.Errorf("texture specs %d want 3", len(s.TextureSpecs))
	}
	if len(s.Cameras) != 4 {
		t.Errorf("cameras %d want 4", len(s.Cameras))
	}
	// 4 segments x 4 quads x 2 tris + 10 props x 6 faces x 2 tris.
	want := 4*4*2 + 10*6*2
	if s.NumTriangles() != want {
		t.Errorf("triangles %d want %d", s.NumTriangles(), want)
	}
	for i, tri := range s.Mesh.Triangles {
		if tri.TexID < 0 || tri.TexID >= len(s.Textures) {
			t.Fatalf("triangle %d references texture %d", i, tri.TexID)
		}
		for _, v := range tri.V {
			if v < 0 || v >= len(s.Mesh.Vertices) {
				t.Fatalf("triangle %d references vertex %d", i, v)
			}
		}
	}
	if s.TextureBytes() <= 0 {
		t.Error("no texture storage")
	}
}

func TestSeedsProduceDifferentWorlds(t *testing.T) {
	spec := testSpec()
	a := Generate(spec)
	spec.Seed = 43
	b := Generate(spec)
	same := true
	for i := range a.Mesh.Vertices {
		if a.Mesh.Vertices[i] != b.Mesh.Vertices[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds generated identical geometry")
	}
}

func TestAssignTextureAddresses(t *testing.T) {
	s := Generate(testSpec())
	end := s.AssignTextureAddresses(0x1000)
	var prev uint64
	for i, tx := range s.Textures {
		addr := tx.Levels[0].Addr
		if addr < 0x1000 {
			t.Fatalf("texture %d below base", i)
		}
		if i > 0 && addr <= prev {
			t.Fatalf("texture %d overlaps predecessor", i)
		}
		prev = addr
	}
	if end <= prev {
		t.Fatal("end address not past last texture")
	}
}

func TestBuilderQuadNormals(t *testing.T) {
	var b Builder
	// A floor quad wound counter-clockwise seen from above must get a +Y
	// normal.
	b.AddQuad(
		vmath.Vec3{X: 0, Y: 0, Z: 0}, vmath.Vec3{X: 1, Y: 0, Z: 0},
		vmath.Vec3{X: 1, Y: 0, Z: -1}, vmath.Vec3{X: 0, Y: 0, Z: -1},
		0, 1, vmath.Vec4{W: 1})
	m := b.Mesh()
	if len(m.Vertices) != 4 || len(m.Triangles) != 2 {
		t.Fatalf("quad built %d vertices %d triangles", len(m.Vertices), len(m.Triangles))
	}
	n := m.Vertices[0].Normal
	if n.Y < 0.99 {
		t.Fatalf("floor normal %v, want +Y", n)
	}
}

func TestBuilderBoxFaceCount(t *testing.T) {
	var b Builder
	b.AddBox(vmath.Vec3{}, vmath.Vec3{X: 1, Y: 1, Z: 1}, 0, 1, vmath.Vec4{W: 1})
	if got := len(b.Mesh().Triangles); got != 12 {
		t.Fatalf("box has %d triangles, want 12", got)
	}
}

func TestCameraViewProj(t *testing.T) {
	s := Generate(testSpec())
	cam := s.Cameras[0]
	vp := cam.ViewProj(4.0 / 3.0)
	// The look-at center must project inside the frustum.
	p := vp.MulVec(vmath.Vec4{X: cam.Center.X, Y: cam.Center.Y, Z: cam.Center.Z, W: 1})
	if p.W <= 0 {
		t.Fatalf("look-at center behind camera (w=%g)", p.W)
	}
	ndcX := p.X / p.W
	ndcY := p.Y / p.W
	if ndcX < -1 || ndcX > 1 || ndcY < -1 || ndcY > 1 {
		t.Fatalf("look-at center outside frustum: ndc (%g, %g)", ndcX, ndcY)
	}
}
