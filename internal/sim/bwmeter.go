// Package sim provides small timing-model building blocks shared by the
// memory backends: a windowed bandwidth meter with backfill (the core
// scheduling primitive) and helpers for cycle conversion.
//
// Why backfill: the simulator generates memory events in pipeline program
// order, which is not globally time-ordered — a lagging shader cluster can
// issue a packet time-stamped earlier than packets already scheduled. A
// monotonic "busy-until" horizon would make such a packet queue behind
// logically *later* traffic (false head-of-line blocking). The meter
// instead accounts capacity in fixed windows of time, so a late-arriving
// event can use capacity that was genuinely idle at its own timestamp.
package sim

import "repro/internal/obs"

// BandwidthMeter models a resource with a fixed byte-per-cycle capacity.
// Time is divided into windows; each window holds Window*BytesPerCycle
// bytes. Reserve places a transfer at the earliest window(s) with free
// capacity at or after its start time and returns its completion cycle.
type BandwidthMeter struct {
	// Window is the accounting window in cycles.
	Window int64
	// BytesPerCycle is the capacity.
	BytesPerCycle float64

	used []float64
	// next implements union-find path compression over full windows: when
	// window i is full, next[i] points to a candidate later window.
	next []int32
	// totalBytes accumulates all reserved bytes (statistics).
	totalBytes uint64

	// tracer, when attached, records every reservation as a span on track.
	tracer *obs.Tracer
	track  string
}

// NewBandwidthMeter builds a meter; window must be positive.
func NewBandwidthMeter(window int64, bytesPerCycle float64) *BandwidthMeter {
	if window <= 0 {
		panic("sim: non-positive meter window")
	}
	if bytesPerCycle <= 0 {
		panic("sim: non-positive meter capacity")
	}
	return &BandwidthMeter{Window: window, BytesPerCycle: bytesPerCycle}
}

// TotalBytes returns all bytes reserved since the last Reset.
func (m *BandwidthMeter) TotalBytes() uint64 { return m.totalBytes }

// AttachTrace records every subsequent reservation as a cycle span on the
// given track. A nil tracer detaches.
func (m *BandwidthMeter) AttachTrace(t *obs.Tracer, track string) {
	m.tracer = t
	m.track = track
}

// Reset clears all reservations.
func (m *BandwidthMeter) Reset() {
	m.used = m.used[:0]
	m.next = m.next[:0]
	m.totalBytes = 0
}

func (m *BandwidthMeter) grow(idx int) {
	for len(m.used) <= idx {
		m.used = append(m.used, 0)
		m.next = append(m.next, int32(len(m.next)+1))
	}
}

// find returns the first window >= i with free capacity, compressing paths.
func (m *BandwidthMeter) find(i int) int {
	capPerWin := m.BytesPerCycle * float64(m.Window)
	m.grow(i)
	root := i
	for m.used[root] >= capPerWin {
		n := int(m.next[root])
		m.grow(n)
		root = n
	}
	// Path compression.
	for i != root && m.used[i] >= capPerWin {
		n := int(m.next[i])
		m.next[i] = int32(root)
		i = n
	}
	return root
}

// Reserve schedules a transfer of `bytes` starting no earlier than cycle t
// and returns the cycle its last byte moves. Zero-byte reservations return
// t unchanged.
func (m *BandwidthMeter) Reserve(t int64, bytes int) int64 {
	if bytes <= 0 {
		return t
	}
	if t < 0 {
		t = 0
	}
	m.totalBytes += uint64(bytes)
	capPerWin := m.BytesPerCycle * float64(m.Window)
	remaining := float64(bytes)
	i := m.find(int(t / m.Window))
	lastWin := i
	for remaining > 0 {
		i = m.find(i)
		free := capPerWin - m.used[i]
		take := free
		if remaining < take {
			take = remaining
		}
		m.used[i] += take
		remaining -= take
		lastWin = i
		if m.used[i] >= capPerWin {
			m.next[i] = int32(i + 1)
		}
	}
	// Completion: position within the last window proportional to fill.
	frac := m.used[lastWin] / capPerWin
	done := int64(lastWin)*m.Window + int64(frac*float64(m.Window))
	// A transfer cannot finish before its own serialization time.
	minDone := t + int64(float64(bytes)/m.BytesPerCycle)
	if done < minDone {
		done = minDone
	}
	if m.tracer.On() {
		m.tracer.SpanArg(m.track, "xfer", t, done, "bytes", int64(bytes))
	}
	return done
}

// UtilizationHistogram divides the meter's busy span into up to `bins`
// equal groups of accounting windows and returns each group's
// used/capacity fraction in [0, 1]. Unlike Utilization, which collapses
// the whole run to one number, the histogram exposes bursts: a meter that
// idles half the frame and saturates the other half reports ~[1, 0]
// rather than 0.5. When the span holds fewer windows than requested bins,
// one bin per window is returned; an unused meter returns nil.
func (m *BandwidthMeter) UtilizationHistogram(bins int) []float64 {
	n := len(m.used)
	if bins <= 0 || n == 0 {
		return nil
	}
	if bins > n {
		bins = n
	}
	capPerWin := m.BytesPerCycle * float64(m.Window)
	out := make([]float64, bins)
	for i := 0; i < bins; i++ {
		lo := i * n / bins
		hi := (i + 1) * n / bins
		var used float64
		for _, u := range m.used[lo:hi] {
			used += u
		}
		out[i] = used / (capPerWin * float64(hi-lo))
	}
	return out
}

// Timeline returns the meter's reserved bytes over time as up to `buckets`
// equal groups of accounting windows: the cycle-resolved counterpart to
// UtilizationHistogram, carrying absolute byte counts and the meter's
// capacity so consumers can plot bandwidth against the resource's ceiling
// (the paper's bandwidth-over-time figures). When the busy span holds
// fewer windows than requested buckets, one bucket per window is
// returned; an unused meter returns an empty Timeline. Reading a timeline
// never perturbs the meter.
func (m *BandwidthMeter) Timeline(buckets int) obs.Timeline {
	t := obs.Timeline{BytesPerCycle: m.BytesPerCycle}
	n := len(m.used)
	if buckets <= 0 || n == 0 {
		return t
	}
	if buckets > n {
		buckets = n
	}
	t.EndCycle = int64(n) * m.Window
	t.Bytes = make([]float64, buckets)
	for i := 0; i < buckets; i++ {
		lo := i * n / buckets
		hi := (i + 1) * n / buckets
		for _, u := range m.used[lo:hi] {
			t.Bytes[i] += u
		}
	}
	return t
}

// Utilization returns used/capacity over the busy span (diagnostics).
func (m *BandwidthMeter) Utilization() float64 {
	if len(m.used) == 0 {
		return 0
	}
	capPerWin := m.BytesPerCycle * float64(m.Window)
	var used float64
	for _, u := range m.used {
		used += u
	}
	return used / (capPerWin * float64(len(m.used)))
}
