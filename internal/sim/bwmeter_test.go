package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/obs"
)

func TestReserveSerialization(t *testing.T) {
	m := NewBandwidthMeter(32, 10) // 10 B/cy
	done := m.Reserve(0, 100)
	if done < 10 {
		t.Fatalf("100B at 10B/cy finished at %d, want >= 10", done)
	}
}

func TestReserveEnforcesCapacity(t *testing.T) {
	m := NewBandwidthMeter(32, 8)
	var last int64
	const n = 1000
	for i := 0; i < n; i++ {
		done := m.Reserve(0, 64) // all arrive at t=0
		if done > last {
			last = done
		}
	}
	// 64000 bytes at 8 B/cy = 8000 cycles minimum.
	if last < 7800 {
		t.Fatalf("capacity not enforced: %d bytes drained by cycle %d", n*64, last)
	}
	if last > 8800 {
		t.Fatalf("meter too pessimistic: done at %d want ~8000", last)
	}
}

func TestBackfillUsesIdlePast(t *testing.T) {
	m := NewBandwidthMeter(32, 8)
	// A transfer far in the future.
	m.Reserve(10000, 64)
	// A late-arriving transfer with an early timestamp must NOT queue
	// behind it: the past was idle.
	done := m.Reserve(100, 64)
	if done > 200 {
		t.Fatalf("late-arriving early transfer queued behind future one: done=%d", done)
	}
}

func TestZeroBytes(t *testing.T) {
	m := NewBandwidthMeter(32, 8)
	if m.Reserve(42, 0) != 42 {
		t.Fatal("zero-byte reservation should return arrival time")
	}
}

func TestTotalBytesAndReset(t *testing.T) {
	m := NewBandwidthMeter(32, 8)
	m.Reserve(0, 100)
	m.Reserve(50, 28)
	if m.TotalBytes() != 128 {
		t.Fatalf("TotalBytes=%d want 128", m.TotalBytes())
	}
	m.Reset()
	if m.TotalBytes() != 0 {
		t.Fatal("reset did not clear totals")
	}
	if done := m.Reserve(0, 64); done > 40 {
		t.Fatalf("capacity not restored after reset: %d", done)
	}
}

func TestUtilization(t *testing.T) {
	m := NewBandwidthMeter(10, 10) // 100 B per window
	m.Reserve(0, 100)
	if u := m.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization %g want ~1", u)
	}
}

func TestMonotoneDoneForOrderedArrivals(t *testing.T) {
	// Property: with non-decreasing arrivals of equal-size transfers,
	// completion times never decrease and never precede arrival+ser.
	err := quick.Check(func(gaps []uint8) bool {
		m := NewBandwidthMeter(16, 4)
		var tm, lastDone int64
		for _, g := range gaps {
			tm += int64(g % 16)
			done := m.Reserve(tm, 16)
			if done < tm+4 { // 16B at 4 B/cy
				return false
			}
			if done < lastDone {
				return false
			}
			lastDone = done
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewBandwidthMeter(0, 1) },
		func() { NewBandwidthMeter(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestUtilizationHistogramEmpty(t *testing.T) {
	m := NewBandwidthMeter(8, 4)
	if h := m.UtilizationHistogram(4); h != nil {
		t.Fatalf("unused meter returned %v, want nil", h)
	}
	m.Reserve(0, 32)
	if h := m.UtilizationHistogram(0); h != nil {
		t.Fatalf("bins=0 returned %v, want nil", h)
	}
}

func TestUtilizationHistogramClampsBins(t *testing.T) {
	m := NewBandwidthMeter(8, 4) // 32 B per window
	m.Reserve(0, 32)             // exactly one window
	h := m.UtilizationHistogram(16)
	if len(h) != 1 {
		t.Fatalf("got %d bins for a 1-window span, want 1", len(h))
	}
	if h[0] != 1 {
		t.Fatalf("saturated window reports %v, want 1", h[0])
	}
}

func TestUtilizationHistogramExposesBursts(t *testing.T) {
	m := NewBandwidthMeter(8, 4) // 32 B per window
	// Saturate windows 0..3, leave 4..7 idle (reserve at cycle 56 grows the
	// span to 8 windows with a tiny tail fill).
	for w := 0; w < 4; w++ {
		m.Reserve(int64(w*8), 32)
	}
	m.Reserve(56, 1)
	h := m.UtilizationHistogram(2)
	if len(h) != 2 {
		t.Fatalf("got %d bins, want 2", len(h))
	}
	if h[0] != 1 {
		t.Fatalf("busy half reports %v, want 1", h[0])
	}
	if h[1] >= 0.1 {
		t.Fatalf("idle half reports %v, want ~0", h[1])
	}
	// The scalar Utilization collapses the same profile to ~0.5.
	if u := m.Utilization(); u < 0.4 || u > 0.6 {
		t.Fatalf("Utilization = %v, want ~0.5", u)
	}
}

func TestUtilizationHistogramBounds(t *testing.T) {
	m := NewBandwidthMeter(8, 4)
	for i := 0; i < 50; i++ {
		m.Reserve(int64(i*3), 7)
	}
	for bins := 1; bins <= 32; bins++ {
		for i, v := range m.UtilizationHistogram(bins) {
			if v < 0 || v > 1 {
				t.Fatalf("bins=%d bin %d = %v, out of [0,1]", bins, i, v)
			}
		}
	}
}

func TestTimelineEmptyMeter(t *testing.T) {
	m := NewBandwidthMeter(8, 4)
	if tl := m.Timeline(16); !tl.Empty() {
		t.Fatalf("unused meter returned %d buckets, want empty", len(tl.Bytes))
	}
	m.Reserve(0, 32)
	if tl := m.Timeline(0); !tl.Empty() {
		t.Fatal("buckets=0 must return an empty timeline")
	}
	if tl := m.Timeline(-3); !tl.Empty() {
		t.Fatal("negative buckets must return an empty timeline")
	}
}

func TestTimelineSingleWindow(t *testing.T) {
	m := NewBandwidthMeter(8, 4) // 32 B per window
	m.Reserve(0, 20)
	tl := m.Timeline(16) // more buckets than windows: clamps to 1
	if len(tl.Bytes) != 1 {
		t.Fatalf("got %d buckets for a 1-window span, want 1", len(tl.Bytes))
	}
	if tl.Bytes[0] != 20 {
		t.Fatalf("bucket holds %v bytes, want 20", tl.Bytes[0])
	}
	if tl.EndCycle != 8 {
		t.Fatalf("EndCycle=%d want 8 (one window)", tl.EndCycle)
	}
	if tl.BytesPerCycle != 4 {
		t.Fatalf("BytesPerCycle=%v want 4", tl.BytesPerCycle)
	}
}

func TestTimelineConservesBytes(t *testing.T) {
	m := NewBandwidthMeter(8, 4)
	for i := 0; i < 50; i++ {
		m.Reserve(int64(i*5), 11)
	}
	want := float64(m.TotalBytes())
	for _, buckets := range []int{1, 3, 7, 64, 1000} {
		tl := m.Timeline(buckets)
		var sum float64
		for _, b := range tl.Bytes {
			sum += b
		}
		if diff := sum - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("buckets=%d sums to %v bytes, want %v", buckets, sum, want)
		}
	}
}

func TestTimelineLocalizesBursts(t *testing.T) {
	m := NewBandwidthMeter(8, 4) // 32 B per window
	// Saturate windows 0..3, leave 4..7 idle.
	for w := 0; w < 4; w++ {
		m.Reserve(int64(w*8), 32)
	}
	m.Reserve(56, 1)
	tl := m.Timeline(2)
	if len(tl.Bytes) != 2 {
		t.Fatalf("got %d buckets, want 2", len(tl.Bytes))
	}
	if tl.Bytes[0] != 128 {
		t.Fatalf("busy half holds %v bytes, want 128", tl.Bytes[0])
	}
	if tl.Bytes[1] != 1 {
		t.Fatalf("idle half holds %v bytes, want 1", tl.Bytes[1])
	}
	u := tl.Utilization()
	if u[0] < 0.99 || u[0] > 1.0 {
		t.Fatalf("busy half utilization %v, want ~1", u[0])
	}
}

func TestAttachTraceRecordsReservations(t *testing.T) {
	m := NewBandwidthMeter(8, 4)
	tr := obs.NewTracer(16)
	m.AttachTrace(tr, "bus")
	m.Reserve(0, 32)
	m.Reserve(8, 16)
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("recorded %d events, want 2", len(ev))
	}
	if ev[0].Track != "bus" || ev[0].Arg != 32 {
		t.Fatalf("unexpected first event %+v", ev[0])
	}
	m.AttachTrace(nil, "")
	m.Reserve(16, 8)
	if tr.Len() != 2 {
		t.Fatalf("detached meter still recorded (len=%d)", tr.Len())
	}
}
