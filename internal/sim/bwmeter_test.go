package sim

import (
	"testing"
	"testing/quick"
)

func TestReserveSerialization(t *testing.T) {
	m := NewBandwidthMeter(32, 10) // 10 B/cy
	done := m.Reserve(0, 100)
	if done < 10 {
		t.Fatalf("100B at 10B/cy finished at %d, want >= 10", done)
	}
}

func TestReserveEnforcesCapacity(t *testing.T) {
	m := NewBandwidthMeter(32, 8)
	var last int64
	const n = 1000
	for i := 0; i < n; i++ {
		done := m.Reserve(0, 64) // all arrive at t=0
		if done > last {
			last = done
		}
	}
	// 64000 bytes at 8 B/cy = 8000 cycles minimum.
	if last < 7800 {
		t.Fatalf("capacity not enforced: %d bytes drained by cycle %d", n*64, last)
	}
	if last > 8800 {
		t.Fatalf("meter too pessimistic: done at %d want ~8000", last)
	}
}

func TestBackfillUsesIdlePast(t *testing.T) {
	m := NewBandwidthMeter(32, 8)
	// A transfer far in the future.
	m.Reserve(10000, 64)
	// A late-arriving transfer with an early timestamp must NOT queue
	// behind it: the past was idle.
	done := m.Reserve(100, 64)
	if done > 200 {
		t.Fatalf("late-arriving early transfer queued behind future one: done=%d", done)
	}
}

func TestZeroBytes(t *testing.T) {
	m := NewBandwidthMeter(32, 8)
	if m.Reserve(42, 0) != 42 {
		t.Fatal("zero-byte reservation should return arrival time")
	}
}

func TestTotalBytesAndReset(t *testing.T) {
	m := NewBandwidthMeter(32, 8)
	m.Reserve(0, 100)
	m.Reserve(50, 28)
	if m.TotalBytes() != 128 {
		t.Fatalf("TotalBytes=%d want 128", m.TotalBytes())
	}
	m.Reset()
	if m.TotalBytes() != 0 {
		t.Fatal("reset did not clear totals")
	}
	if done := m.Reserve(0, 64); done > 40 {
		t.Fatalf("capacity not restored after reset: %d", done)
	}
}

func TestUtilization(t *testing.T) {
	m := NewBandwidthMeter(10, 10) // 100 B per window
	m.Reserve(0, 100)
	if u := m.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization %g want ~1", u)
	}
}

func TestMonotoneDoneForOrderedArrivals(t *testing.T) {
	// Property: with non-decreasing arrivals of equal-size transfers,
	// completion times never decrease and never precede arrival+ser.
	err := quick.Check(func(gaps []uint8) bool {
		m := NewBandwidthMeter(16, 4)
		var tm, lastDone int64
		for _, g := range gaps {
			tm += int64(g % 16)
			done := m.Reserve(tm, 16)
			if done < tm+4 { // 16B at 4 B/cy
				return false
			}
			if done < lastDone {
				return false
			}
			lastDone = done
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewBandwidthMeter(0, 1) },
		func() { NewBandwidthMeter(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
