package shader

// Built-in programs used by the workloads. They are deliberately in the
// style of early programmable-pipeline shaders: the vertex program performs
// the model-view-projection transform and passes attributes through; the
// fragment programs modulate a filtered texture sample with interpolated
// lighting.

// VertexTransformSrc is the standard vertex program: o0 = MVP * v0
// (rows of the MVP matrix live in c0..c3), o1 = texcoord, o2 = color,
// o3 = normal.
const VertexTransformSrc = `
# Standard MVP transform vertex program.
DP4 r0, c0, v0      # clip.x
DP4 r1, c1, v0      # clip.y
DP4 r2, c2, v0      # clip.z
DP4 r3, c3, v0      # clip.w
MUL r0, r0, c4      # lane-select masks pack xyzw into o0
MAD r0, r1, c5, r0
MAD r0, r2, c6, r0
MAD r0, r3, c7, r0
MOV o0, r0
MOV o1, v1          # texture coordinates
MOV o2, v2          # vertex color
MOV o3, v3          # normal
END
`

// FragmentTexturedSrc is the standard multi-layer fragment program in the
// style of the paper's games (Id Tech 4 / Source-era material systems):
// a base color map, a high-frequency detail map at 4x UV tiling, and a
// low-frequency baked-light map at 0.25x tiling, combined with diffuse
// lighting. Three TEX instructions per fragment is what makes texture
// fetching dominate memory bandwidth (Fig. 2 of the paper).
// Inputs: v0 = texcoord, v1 = color, v2 = normal. Constants: c8 = light
// direction, c9 = ambient, c10 = 0, c11 = 1, c12 = detail UV scale,
// c13 = lightmap UV scale, c14 = c15 = 0.5.
const FragmentTexturedSrc = `
# Layered textured fragment with diffuse lighting.
TEX r0, v0, t0      # base color map
MUL r3, v0, c12     # detail UV
TEX r1, r3, t1      # detail map
MUL r4, v0, c13     # light-map UV
TEX r2, r4, t2      # baked light map
MAD r1, r1, c14, c15  # detail modulation in [0.5, 1.0]
MUL r0, r0, r1
DP3 r5, v2, c8      # N . L
MAX r5, r5, c10     # clamp to zero
ADD r5, r5, c9      # + ambient
MIN r5, r5, c11     # clamp to one
MUL r0, r0, r5      # light the texel
MAD r2, r2, c14, c15  # light-map modulation in [0.5, 1.0]
MUL r0, r0, r2
MUL o0, r0, v1      # modulate by vertex color
END
`

// FragmentUnlitSrc is a cheap fragment program used by HUD/sky layers:
// a texture sample modulated by color only.
const FragmentUnlitSrc = `
TEX r0, v0, t0
MUL o0, r0, v1
END
`

// NewVertexProgram assembles the standard vertex program with lane-select
// constants pre-loaded.
func NewVertexProgram() *Program {
	p := MustAssemble("vs_transform", VertexTransformSrc)
	p.Consts[4] = Vec{1, 0, 0, 0}
	p.Consts[5] = Vec{0, 1, 0, 0}
	p.Consts[6] = Vec{0, 0, 1, 0}
	p.Consts[7] = Vec{0, 0, 0, 1}
	return p
}

// DetailUVScale and LightmapUVScale are the layer tilings baked into the
// standard fragment program's constants.
const (
	DetailUVScale   = 4.0
	LightmapUVScale = 0.25
)

// NewFragmentProgram assembles the standard lit multi-layer fragment
// program with its clamp constants and the given light direction/ambient.
func NewFragmentProgram(lightDir Vec, ambient float32) *Program {
	p := MustAssemble("fs_textured", FragmentTexturedSrc)
	p.Consts[8] = lightDir
	p.Consts[9] = Vec{ambient, ambient, ambient, ambient}
	p.Consts[10] = Vec{0, 0, 0, 0}
	p.Consts[11] = Vec{1, 1, 1, 1}
	p.Consts[12] = Vec{DetailUVScale, DetailUVScale, DetailUVScale, DetailUVScale}
	p.Consts[13] = Vec{LightmapUVScale, LightmapUVScale, LightmapUVScale, LightmapUVScale}
	p.Consts[14] = Vec{0.5, 0.5, 0.5, 0.5}
	p.Consts[15] = Vec{0.5, 0.5, 0.5, 0.5}
	return p
}

// NewUnlitFragmentProgram assembles the unlit fragment program.
func NewUnlitFragmentProgram() *Program {
	return MustAssemble("fs_unlit", FragmentUnlitSrc)
}

// SetMVP loads the model-view-projection matrix rows into c0..c3 of a
// vertex program. rows are the four matrix rows.
func SetMVP(p *Program, rows [4]Vec) {
	for i := 0; i < 4; i++ {
		p.Consts[i] = rows[i]
	}
}
