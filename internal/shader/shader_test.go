package shader

import (
	"math"
	"strings"
	"testing"
)

func run(t *testing.T, src string, inputs map[int]Vec) *Machine {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := &Machine{}
	for i, v := range inputs {
		m.SetInput(i, v)
	}
	if err := m.Run(p); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestMovAddSub(t *testing.T) {
	m := run(t, `
MOV r0, v0
ADD r1, r0, v1
SUB o0, r1, v0
`, map[int]Vec{0: {1, 2, 3, 4}, 1: {10, 20, 30, 40}})
	if m.Output(0) != (Vec{10, 20, 30, 40}) {
		t.Fatalf("output %v", m.Output(0))
	}
}

func TestMulMad(t *testing.T) {
	m := run(t, `
MUL r0, v0, v1
MAD o0, v0, v1, v0
`, map[int]Vec{0: {2, 3, 0, 1}, 1: {4, 5, 6, 7}})
	want := Vec{2*4 + 2, 3*5 + 3, 0, 1*7 + 1}
	if m.Output(0) != want {
		t.Fatalf("mad %v want %v", m.Output(0), want)
	}
}

func TestDotProducts(t *testing.T) {
	m := run(t, `
DP3 o0, v0, v1
DP4 o1, v0, v1
`, map[int]Vec{0: {1, 2, 3, 4}, 1: {5, 6, 7, 8}})
	if m.Output(0)[0] != 38 {
		t.Errorf("dp3 = %g want 38", m.Output(0)[0])
	}
	if m.Output(1)[0] != 70 {
		t.Errorf("dp4 = %g want 70", m.Output(1)[0])
	}
}

func TestRcpRsq(t *testing.T) {
	m := run(t, `
RCP o0, v0
RSQ o1, v1
`, map[int]Vec{0: {4, 0, 0, 0}, 1: {16, 0, 0, 0}})
	if m.Output(0)[0] != 0.25 {
		t.Errorf("rcp %g", m.Output(0)[0])
	}
	if m.Output(1)[0] != 0.25 {
		t.Errorf("rsq %g", m.Output(1)[0])
	}
}

func TestMinMaxFrc(t *testing.T) {
	m := run(t, `
MIN o0, v0, v1
MAX o1, v0, v1
FRC o2, v0
`, map[int]Vec{0: {1.5, -2.25, 3, 0}, 1: {1, 0, 5, -1}})
	if m.Output(0) != (Vec{1, -2.25, 3, -1}) {
		t.Errorf("min %v", m.Output(0))
	}
	if m.Output(1) != (Vec{1.5, 0, 5, 0}) {
		t.Errorf("max %v", m.Output(1))
	}
	if got := m.Output(2); math.Abs(float64(got[0]-0.5)) > 1e-6 || math.Abs(float64(got[1]-0.75)) > 1e-6 {
		t.Errorf("frc %v", got)
	}
}

func TestSltSgeLrp(t *testing.T) {
	m := run(t, `
SLT o0, v0, v1
SGE o1, v0, v1
LRP o2, v2, v0, v1
`, map[int]Vec{0: {1, 5, 3, 3}, 1: {2, 2, 3, 4}, 2: {0.5, 0.5, 0.5, 0.5}})
	if m.Output(0) != (Vec{1, 0, 0, 1}) {
		t.Errorf("slt %v", m.Output(0))
	}
	if m.Output(1) != (Vec{0, 1, 1, 0}) {
		t.Errorf("sge %v", m.Output(1))
	}
	if m.Output(2) != (Vec{1.5, 3.5, 3, 3.5}) {
		t.Errorf("lrp %v", m.Output(2))
	}
}

func TestNegationModifier(t *testing.T) {
	m := run(t, "ADD o0, v0, -v1", map[int]Vec{0: {5, 5, 5, 5}, 1: {2, 3, 4, 5}})
	if m.Output(0) != (Vec{3, 2, 1, 0}) {
		t.Fatalf("negation %v", m.Output(0))
	}
}

func TestTexCallback(t *testing.T) {
	m := &Machine{TexSample: func(sampler uint8, coords Vec) Vec {
		return Vec{coords[0] * 2, coords[1] * 2, float32(sampler), 1}
	}}
	p := MustAssemble("t", "TEX o0, v0, t3")
	m.SetInput(0, Vec{0.25, 0.5, 0, 0})
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.Output(0) != (Vec{0.5, 1, 3, 1}) {
		t.Fatalf("tex %v", m.Output(0))
	}
	if m.TexCount != 1 {
		t.Errorf("tex count %d", m.TexCount)
	}
}

func TestTexWithoutCallbackReturnsZero(t *testing.T) {
	m := run(t, "TEX o0, v0, t0", map[int]Vec{0: {1, 1, 0, 0}})
	if m.Output(0) != (Vec{}) {
		t.Fatal("TEX without callback should return zero")
	}
}

func TestConstants(t *testing.T) {
	p := MustAssemble("t", "MUL o0, v0, c5")
	p.Consts[5] = Vec{2, 2, 2, 2}
	m := &Machine{}
	m.SetInput(0, Vec{3, 4, 5, 6})
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.Output(0) != (Vec{6, 8, 10, 12}) {
		t.Fatalf("const mul %v", m.Output(0))
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"FOO r0, r1",      // unknown opcode
		"ADD r0, r1",      // missing source
		"ADD c0, r1, r2",  // constant destination
		"ADD v0, r1, r2",  // input destination
		"ADD -r0, r1, r2", // negated destination
		"MOV r0, r99",     // register out of range
		"TEX r0, v0, x3",  // bad sampler
		"TEX r0, v0, t99", // sampler out of range
		"MOV r0, q1",      // bad file
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("%q assembled but should not", src)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble("t", `
# comment only

MOV o0, v0   # trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInstr() != 1 {
		t.Fatalf("instr count %d want 1", p.NumInstr())
	}
}

func TestImplicitEnd(t *testing.T) {
	p := MustAssemble("t", "MOV o0, v0")
	if p.Code[len(p.Code)-1].Op != OpEND {
		t.Fatal("missing implicit END")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `MOV r0, v0
ADD r1, r0, -c3
TEX r2, r1, t1
DP4 o0, r2, c0
END`
	p1 := MustAssemble("t", src)
	p2 := MustAssemble("t2", p1.Disassemble())
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("round trip changed length %d -> %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("instruction %d changed: %v -> %v", i, p1.Code[i], p2.Code[i])
		}
	}
}

func TestCycleCost(t *testing.T) {
	p := MustAssemble("t", "RCP r0, v0\nMOV o0, r0")
	// RCP 4 + MOV 1 + END 1.
	if p.CycleCost() != 6 {
		t.Fatalf("cycle cost %d want 6", p.CycleCost())
	}
}

func TestVertexProgramTransforms(t *testing.T) {
	p := NewVertexProgram()
	// Identity MVP.
	SetMVP(p, [4]Vec{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}})
	m := &Machine{}
	m.SetInput(0, Vec{2, 3, 4, 1})
	m.SetInput(1, Vec{0.5, 0.25, 0, 0})
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.Output(0) != (Vec{2, 3, 4, 1}) {
		t.Fatalf("identity transform %v", m.Output(0))
	}
	if m.Output(1) != (Vec{0.5, 0.25, 0, 0}) {
		t.Fatalf("uv passthrough %v", m.Output(1))
	}
}

func TestFragmentProgramSamplesThreeLayers(t *testing.T) {
	p := NewFragmentProgram(Vec{0, 0, 1, 0}, 0.3)
	samplers := map[uint8]int{}
	m := &Machine{TexSample: func(s uint8, _ Vec) Vec {
		samplers[s]++
		return Vec{1, 1, 1, 1}
	}}
	m.SetInput(0, Vec{0.5, 0.5, 0, 0})
	m.SetInput(1, Vec{1, 1, 1, 1})
	m.SetInput(2, Vec{0, 0, 1, 0})
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(samplers) != 3 || samplers[0] != 1 || samplers[1] != 1 || samplers[2] != 1 {
		t.Fatalf("sampler usage %v, want one TEX on t0, t1, t2", samplers)
	}
	out := m.Output(0)
	// Full diffuse (N.L=1) + 0.3 ambient clamps to 1; detail/light layers
	// at (0.5 + 0.5*1) = 1: output = 1.
	if math.Abs(float64(out[0]-1)) > 1e-5 {
		t.Fatalf("lit output %v", out)
	}
}

func TestUnlitProgram(t *testing.T) {
	p := NewUnlitFragmentProgram()
	if !strings.Contains(p.Disassemble(), "TEX") {
		t.Fatal("unlit program lost its TEX")
	}
}

func TestInstrCounting(t *testing.T) {
	p := MustAssemble("t", "MOV r0, v0\nMOV o0, r0")
	m := &Machine{}
	for i := 0; i < 3; i++ {
		if err := m.Run(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.InstrCount != 9 { // (2 + END) * 3
		t.Fatalf("instr count %d want 9", m.InstrCount)
	}
}
