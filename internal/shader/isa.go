// Package shader implements the unified-shader model of the baseline GPU
// (Fig. 1): a small SIMD4 register ISA in the spirit of ARB-era vertex and
// fragment programs, with an assembler, an interpreter, and per-instruction
// cycle costs used by the timing model. Both vertex and fragment programs
// run on the same unified shaders, matching the paper's unified-shader (US)
// architecture.
package shader

import (
	"fmt"
	"strings"
)

// Opcode enumerates the instruction set.
type Opcode uint8

const (
	// OpMOV copies a source to a destination.
	OpMOV Opcode = iota
	// OpADD computes dst = a + b.
	OpADD
	// OpSUB computes dst = a - b.
	OpSUB
	// OpMUL computes dst = a * b (component-wise).
	OpMUL
	// OpMAD computes dst = a*b + c.
	OpMAD
	// OpDP3 computes the 3-component dot product into all lanes.
	OpDP3
	// OpDP4 computes the 4-component dot product into all lanes.
	OpDP4
	// OpRCP computes dst = 1/a.x broadcast.
	OpRCP
	// OpRSQ computes dst = 1/sqrt(|a.x|) broadcast.
	OpRSQ
	// OpMIN computes the component-wise minimum.
	OpMIN
	// OpMAX computes the component-wise maximum.
	OpMAX
	// OpFRC computes the fractional part of each component.
	OpFRC
	// OpSLT sets 1.0 where a < b else 0.0.
	OpSLT
	// OpSGE sets 1.0 where a >= b else 0.0.
	OpSGE
	// OpLRP computes dst = a*b + (1-a)*c (linear interpolation).
	OpLRP
	// OpTEX samples the bound texture at coordinates a.xy; it is the
	// instruction that triggers the whole texture-filtering pipeline.
	OpTEX
	// OpEND terminates the program.
	OpEND
	numOpcodes
)

var opNames = [numOpcodes]string{
	"MOV", "ADD", "SUB", "MUL", "MAD", "DP3", "DP4", "RCP", "RSQ",
	"MIN", "MAX", "FRC", "SLT", "SGE", "LRP", "TEX", "END",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Cycles returns the issue cost of the opcode on a simd4-scalar ALU
// (Table I's "simd4-scale ALUs"): most ops are single-issue; the
// transcendentals take longer; TEX costs are accounted by the texture unit.
func (o Opcode) Cycles() int {
	switch o {
	case OpRCP, OpRSQ:
		return 4
	case OpTEX:
		return 1 // issue only; latency modeled by the texture unit
	default:
		return 1
	}
}

// RegFile identifies a register bank.
type RegFile uint8

const (
	// FileTemp is the read/write temporary bank (r0..r15).
	FileTemp RegFile = iota
	// FileInput is the per-element input attribute bank (v0..v7).
	FileInput
	// FileConst is the program constant bank (c0..c31).
	FileConst
	// FileOutput is the result bank (o0..o3).
	FileOutput
)

// Operand names one register with an optional negate modifier.
type Operand struct {
	File   RegFile
	Index  uint8
	Negate bool
}

// Instr is one decoded instruction.
type Instr struct {
	Op      Opcode
	Dst     Operand
	Src     [3]Operand
	NumSrc  uint8
	Sampler uint8 // texture sampler index for TEX
}

// Program is an assembled shader program.
type Program struct {
	// Name labels the program in statistics.
	Name string
	// Code is the instruction stream.
	Code []Instr
	// Consts is the constant bank contents.
	Consts [32][4]float32
}

// NumInstr returns the instruction count excluding END.
func (p *Program) NumInstr() int {
	n := 0
	for _, in := range p.Code {
		if in.Op != OpEND {
			n++
		}
	}
	return n
}

// CycleCost returns the summed issue cost of one invocation.
func (p *Program) CycleCost() int {
	c := 0
	for _, in := range p.Code {
		c += in.Op.Cycles()
	}
	return c
}

// Assemble parses a textual program: one instruction per line,
// "OP dst, src0, src1, src2" with registers rN/vN/cN/oN, optional '-'
// negation on sources, '#' comments, and "TEX dst, src, tN" for texturing.
func Assemble(name, src string) (*Program, error) {
	p := &Program{Name: name}
	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in, err := assembleLine(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo+1, err)
		}
		p.Code = append(p.Code, in)
	}
	if len(p.Code) == 0 || p.Code[len(p.Code)-1].Op != OpEND {
		p.Code = append(p.Code, Instr{Op: OpEND})
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error (for built-in programs).
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func assembleLine(line string) (Instr, error) {
	fields := strings.Fields(line)
	mnemonic := strings.ToUpper(fields[0])
	var op Opcode = numOpcodes
	for i, n := range opNames {
		if n == mnemonic {
			op = Opcode(i)
			break
		}
	}
	if op == numOpcodes {
		return Instr{}, fmt.Errorf("unknown opcode %q", mnemonic)
	}
	in := Instr{Op: op}
	if op == OpEND {
		return in, nil
	}
	rest := strings.TrimSpace(line[len(fields[0]):])
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) == 0 || parts[0] == "" {
		return Instr{}, fmt.Errorf("missing operands")
	}
	dst, err := parseOperand(parts[0])
	if err != nil {
		return Instr{}, err
	}
	if dst.Negate {
		return Instr{}, fmt.Errorf("destination cannot be negated")
	}
	if dst.File == FileConst || dst.File == FileInput {
		return Instr{}, fmt.Errorf("destination must be a temp or output register")
	}
	in.Dst = dst

	wantSrcs := map[Opcode]int{
		OpMOV: 1, OpADD: 2, OpSUB: 2, OpMUL: 2, OpMAD: 3, OpDP3: 2,
		OpDP4: 2, OpRCP: 1, OpRSQ: 1, OpMIN: 2, OpMAX: 2, OpFRC: 1,
		OpSLT: 2, OpSGE: 2, OpLRP: 3, OpTEX: 2,
	}[op]
	if len(parts)-1 != wantSrcs {
		return Instr{}, fmt.Errorf("%s expects %d source operands, got %d", mnemonic, wantSrcs, len(parts)-1)
	}

	if op == OpTEX {
		src, err := parseOperand(parts[1])
		if err != nil {
			return Instr{}, err
		}
		in.Src[0] = src
		in.NumSrc = 1
		samp := parts[2]
		if len(samp) < 2 || (samp[0] != 't' && samp[0] != 'T') {
			return Instr{}, fmt.Errorf("TEX sampler must be tN, got %q", samp)
		}
		var idx int
		if _, err := fmt.Sscanf(samp[1:], "%d", &idx); err != nil || idx < 0 || idx > 15 {
			return Instr{}, fmt.Errorf("bad sampler index %q", samp)
		}
		in.Sampler = uint8(idx)
		return in, nil
	}

	for i := 0; i < wantSrcs; i++ {
		src, err := parseOperand(parts[i+1])
		if err != nil {
			return Instr{}, err
		}
		in.Src[i] = src
	}
	in.NumSrc = uint8(wantSrcs)
	return in, nil
}

func parseOperand(s string) (Operand, error) {
	var o Operand
	if s == "" {
		return o, fmt.Errorf("empty operand")
	}
	if s[0] == '-' {
		o.Negate = true
		s = s[1:]
	}
	if len(s) < 2 {
		return o, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r', 'R':
		o.File = FileTemp
	case 'v', 'V':
		o.File = FileInput
	case 'c', 'C':
		o.File = FileConst
	case 'o', 'O':
		o.File = FileOutput
	default:
		return o, fmt.Errorf("bad register file in %q", s)
	}
	var idx int
	if _, err := fmt.Sscanf(s[1:], "%d", &idx); err != nil {
		return o, fmt.Errorf("bad register index in %q", s)
	}
	limits := map[RegFile]int{FileTemp: 16, FileInput: 8, FileConst: 32, FileOutput: 4}
	if idx < 0 || idx >= limits[o.File] {
		return o, fmt.Errorf("register index out of range in %q", s)
	}
	o.Index = uint8(idx)
	return o, nil
}

// Disassemble renders the program as assembly text.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, in := range p.Code {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one instruction.
func (in Instr) String() string {
	if in.Op == OpEND {
		return "END"
	}
	var b strings.Builder
	b.WriteString(in.Op.String())
	b.WriteByte(' ')
	b.WriteString(in.Dst.String())
	if in.Op == OpTEX {
		fmt.Fprintf(&b, ", %s, t%d", in.Src[0].String(), in.Sampler)
		return b.String()
	}
	for i := 0; i < int(in.NumSrc); i++ {
		b.WriteString(", ")
		b.WriteString(in.Src[i].String())
	}
	return b.String()
}

// String renders one operand.
func (o Operand) String() string {
	prefix := ""
	if o.Negate {
		prefix = "-"
	}
	files := map[RegFile]string{FileTemp: "r", FileInput: "v", FileConst: "c", FileOutput: "o"}
	return fmt.Sprintf("%s%s%d", prefix, files[o.File], o.Index)
}
