package shader

import (
	"fmt"
	"math"
)

// Vec is the SIMD4 register value.
type Vec = [4]float32

// TexSampleFunc is invoked by the TEX instruction: coords carries (u, v)
// in .xy; the returned Vec is the filtered RGBA texture result. The GPU
// model wires this to the active texture path.
type TexSampleFunc func(sampler uint8, coords Vec) Vec

// Machine executes shader programs. One Machine is reused across many
// invocations; it is not safe for concurrent use.
type Machine struct {
	temps   [16]Vec
	inputs  [8]Vec
	outputs [4]Vec
	// TexSample handles TEX instructions; nil makes TEX return zero.
	TexSample TexSampleFunc
	// InstrCount accumulates executed instructions across invocations.
	InstrCount uint64
	// CycleCount accumulates issue cycles across invocations.
	CycleCount uint64
	// TexCount accumulates executed TEX instructions.
	TexCount uint64
}

// SetInput loads input attribute register v[i].
func (m *Machine) SetInput(i int, v Vec) { m.inputs[i] = v }

// Output returns output register o[i] after Run.
func (m *Machine) Output(i int) Vec { return m.outputs[i] }

// Run executes the program to completion and returns the output bank.
// Input registers persist from SetInput calls; temporaries are zeroed.
func (m *Machine) Run(p *Program) error {
	for i := range m.temps {
		m.temps[i] = Vec{}
	}
	for i := range m.outputs {
		m.outputs[i] = Vec{}
	}
	for pc := 0; pc < len(p.Code); pc++ {
		in := &p.Code[pc]
		m.InstrCount++
		m.CycleCount += uint64(in.Op.Cycles())
		if in.Op == OpEND {
			return nil
		}
		if in.Op == OpTEX {
			m.TexCount++
			coord := m.read(p, in.Src[0])
			var res Vec
			if m.TexSample != nil {
				res = m.TexSample(in.Sampler, coord)
			}
			m.write(in.Dst, res)
			continue
		}
		a := m.read(p, in.Src[0])
		var b, c Vec
		if in.NumSrc > 1 {
			b = m.read(p, in.Src[1])
		}
		if in.NumSrc > 2 {
			c = m.read(p, in.Src[2])
		}
		var r Vec
		switch in.Op {
		case OpMOV:
			r = a
		case OpADD:
			for i := 0; i < 4; i++ {
				r[i] = a[i] + b[i]
			}
		case OpSUB:
			for i := 0; i < 4; i++ {
				r[i] = a[i] - b[i]
			}
		case OpMUL:
			for i := 0; i < 4; i++ {
				r[i] = a[i] * b[i]
			}
		case OpMAD:
			for i := 0; i < 4; i++ {
				r[i] = a[i]*b[i] + c[i]
			}
		case OpDP3:
			d := a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
			r = Vec{d, d, d, d}
		case OpDP4:
			d := a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3]
			r = Vec{d, d, d, d}
		case OpRCP:
			d := float32(1)
			if a[0] != 0 {
				d = 1 / a[0]
			} else {
				d = float32(math.Inf(1))
			}
			r = Vec{d, d, d, d}
		case OpRSQ:
			d := float32(math.Inf(1))
			if v := math.Abs(float64(a[0])); v > 0 {
				d = float32(1 / math.Sqrt(v))
			}
			r = Vec{d, d, d, d}
		case OpMIN:
			for i := 0; i < 4; i++ {
				r[i] = minf(a[i], b[i])
			}
		case OpMAX:
			for i := 0; i < 4; i++ {
				r[i] = maxf(a[i], b[i])
			}
		case OpFRC:
			for i := 0; i < 4; i++ {
				r[i] = a[i] - float32(math.Floor(float64(a[i])))
			}
		case OpSLT:
			for i := 0; i < 4; i++ {
				if a[i] < b[i] {
					r[i] = 1
				}
			}
		case OpSGE:
			for i := 0; i < 4; i++ {
				if a[i] >= b[i] {
					r[i] = 1
				}
			}
		case OpLRP:
			for i := 0; i < 4; i++ {
				r[i] = a[i]*b[i] + (1-a[i])*c[i]
			}
		default:
			return fmt.Errorf("shader %s: unimplemented opcode %s", p.Name, in.Op)
		}
		m.write(in.Dst, r)
	}
	return nil
}

func (m *Machine) read(p *Program, o Operand) Vec {
	var v Vec
	switch o.File {
	case FileTemp:
		v = m.temps[o.Index]
	case FileInput:
		v = m.inputs[o.Index]
	case FileConst:
		v = p.Consts[o.Index]
	case FileOutput:
		v = m.outputs[o.Index]
	}
	if o.Negate {
		for i := 0; i < 4; i++ {
			v[i] = -v[i]
		}
	}
	return v
}

func (m *Machine) write(o Operand, v Vec) {
	switch o.File {
	case FileTemp:
		m.temps[o.Index] = v
	case FileOutput:
		m.outputs[o.Index] = v
	}
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
