package texture

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// noiseTexture builds a deterministic test texture with high-frequency
// content on every mip level.
func noiseTexture(size int) *Texture {
	tx := NewTexture(0, "noise", size, size, LayoutMorton, WrapRepeat)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := xrand.Hash2D(0xfeed, int32(x), int32(y))
			tx.SetTexel(0, x, y, Color{R: v, G: 1 - v, B: v * v, A: 1})
		}
	}
	tx.BuildMipmaps()
	return tx
}

func colorsClose(a, b Color, eps float32) bool {
	d := func(x, y float32) bool { return float32(math.Abs(float64(x-y))) <= eps }
	return d(a.R, b.R) && d(a.G, b.G) && d(a.B, b.B) && d(a.A, b.A)
}

func TestBilinearAtTexelCenter(t *testing.T) {
	tx := noiseTexture(16)
	s := Sampler{MaxAniso: 16}
	// Sampling exactly at a texel center returns the texel.
	for _, pos := range [][2]int{{0, 0}, {5, 7}, {15, 15}} {
		u := (float32(pos[0]) + 0.5) / 16
		v := (float32(pos[1]) + 0.5) / 16
		got := s.SampleBilinear(tx, 0, u, v)
		want := tx.Texel(0, pos[0], pos[1])
		if !colorsClose(got, want, 1e-5) {
			t.Fatalf("center sample at %v: got %+v want %+v", pos, got, want)
		}
	}
}

func TestBilinearMidpointAveragesNeighbors(t *testing.T) {
	tx := NewTexture(0, "t", 4, 4, LayoutLinear, WrapClamp)
	tx.SetTexel(0, 1, 1, Gray(0))
	tx.SetTexel(0, 2, 1, Gray(1))
	tx.SetTexel(0, 1, 2, Gray(0))
	tx.SetTexel(0, 2, 2, Gray(1))
	s := Sampler{}
	// Horizontal midpoint between texels (1,1) and (2,1).
	got := s.SampleBilinear(tx, 0, 2.0/4, (1.5)/4)
	if math.Abs(float64(got.R-0.5)) > 0.01 {
		t.Fatalf("midpoint = %g want 0.5", got.R)
	}
}

func TestTrilinearBlendsLevels(t *testing.T) {
	tx := NewTexture(0, "t", 8, 8, LayoutLinear, WrapRepeat)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			tx.SetTexel(0, x, y, Gray(1))
		}
	}
	tx.BuildMipmaps()
	// Overwrite level 1 with black to expose the blend.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			tx.SetTexel(1, x, y, Gray(0))
		}
	}
	s := Sampler{}
	if got := s.SampleTrilinear(tx, 0.5, 0.5, 0); math.Abs(float64(got.R-1)) > 0.01 {
		t.Fatalf("lod 0 = %g want 1", got.R)
	}
	if got := s.SampleTrilinear(tx, 0.5, 0.5, 1); math.Abs(float64(got.R)) > 0.01 {
		t.Fatalf("lod 1 = %g want 0", got.R)
	}
	if got := s.SampleTrilinear(tx, 0.5, 0.5, 0.5); math.Abs(float64(got.R-0.5)) > 0.01 {
		t.Fatalf("lod 0.5 = %g want 0.5", got.R)
	}
}

func TestFootprintIsotropic(t *testing.T) {
	tx := noiseTexture(64)
	g := Gradients{DUDX: 1.0 / 64, DVDY: 1.0 / 64} // one texel per pixel
	f := ComputeFootprint(tx, g, 16)
	if f.N != 1 {
		t.Fatalf("isotropic gradients gave N=%d", f.N)
	}
	if f.Lod > 0.1 {
		t.Fatalf("1:1 mapping gave lod=%g want ~0", f.Lod)
	}
}

func TestFootprintAnisotropyDegree(t *testing.T) {
	tx := noiseTexture(64)
	// 8 texels along x per pixel, 1 along y: 8x anisotropy.
	g := Gradients{DUDX: 8.0 / 64, DVDY: 1.0 / 64}
	f := ComputeFootprint(tx, g, 16)
	if f.N != 8 {
		t.Fatalf("N=%d want 8", f.N)
	}
	if f.Lod > 0.1 {
		t.Fatalf("fine lod should be ~0, got %g", f.Lod)
	}
	// Cap at MaxAniso.
	g = Gradients{DUDX: 40.0 / 64, DVDY: 1.0 / 64}
	f = ComputeFootprint(tx, g, 16)
	if f.N != 16 {
		t.Fatalf("capped N=%d want 16", f.N)
	}
	// Iso LOD covers the major axis.
	if iso := f.IsoLod(); iso < f.Lod {
		t.Fatalf("iso lod %g below fine lod %g", iso, f.Lod)
	}
}

func TestFootprintFetchCounts(t *testing.T) {
	f := Footprint{N: 4}
	if f.TexelFetches() != 32 {
		t.Errorf("4x aniso fetches %d texels, paper says 32", f.TexelFetches())
	}
	if f.ParentFetches() != 8 {
		t.Errorf("parent fetches %d, paper says 8", f.ParentFetches())
	}
}

// TestReorderEquivalence verifies the paper's Eq. 2-3 correctness argument:
// filtering with anisotropic averaging moved FIRST (per parent texel)
// produces the same color as the conventional order, because the weighted
// sums are the same terms reassociated.
func TestReorderEquivalence(t *testing.T) {
	tx := noiseTexture(128)
	s := Sampler{MaxAniso: 16}
	rng := xrand.New(99)
	for i := 0; i < 2000; i++ {
		u := rng.Float32()
		v := rng.Float32()
		n := 1 + rng.Intn(16)
		foot := Footprint{
			Lod:   rng.Range(0, 5),
			N:     n,
			AxisU: rng.Range(-0.2, 0.2),
			AxisV: rng.Range(-0.2, 0.2),
		}
		conventional := s.SampleAniso(tx, u, v, foot)
		reordered := s.SampleAnisoReordered(tx, u, v, foot, nil)
		if !colorsClose(conventional, reordered, 2e-4) {
			t.Fatalf("order mismatch at sample %d (u=%g v=%g N=%d lod=%g):\n conv %+v\n reord %+v",
				i, u, v, foot.N, foot.Lod, conventional, reordered)
		}
	}
}

// TestReorderEquivalenceQuick is the property-based version over arbitrary
// footprints.
func TestReorderEquivalenceQuick(t *testing.T) {
	tx := noiseTexture(64)
	s := Sampler{MaxAniso: 16}
	err := quick.Check(func(uRaw, vRaw uint16, nRaw uint8, lodRaw uint8, axRaw, ayRaw int8) bool {
		u := float32(uRaw) / 65536
		v := float32(vRaw) / 65536
		foot := Footprint{
			Lod:   float32(lodRaw%50) / 10,
			N:     int(nRaw%16) + 1,
			AxisU: float32(axRaw) / 512,
			AxisV: float32(ayRaw) / 512,
		}
		a := s.SampleAniso(tx, u, v, foot)
		b := s.SampleAnisoReordered(tx, u, v, foot, nil)
		return colorsClose(a, b, 2e-4)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAverageChildrenMatchesManual(t *testing.T) {
	tx := noiseTexture(32)
	foot := Footprint{N: 4, AxisU: 8.0 / 32, Lod: 0}
	got := AverageChildren(tx, 0, 10, 10, foot, nil)
	var want Color
	for i := 0; i < 4; i++ {
		dx, dy := foot.ChildOffset(tx, 0, i)
		want = want.Add(tx.Texel(0, 10+dx, 10+dy))
	}
	want = want.Scale(0.25)
	if !colorsClose(got, want, 1e-6) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestAverageChildrenN1IsPlainTexel(t *testing.T) {
	tx := noiseTexture(16)
	foot := Footprint{N: 1}
	got := AverageChildren(tx, 0, 3, 4, foot, nil)
	if got != tx.Texel(0, 3, 4) {
		t.Fatal("N=1 average should be the plain texel")
	}
}

func TestParentTexelCoordsMatchReorderedSampler(t *testing.T) {
	// Every coordinate the reordered sampler requests must be enumerated
	// by ParentTexelCoords (the A-TFIM path relies on this contract).
	tx := noiseTexture(64)
	s := Sampler{MaxAniso: 16}
	rng := xrand.New(5)
	for i := 0; i < 500; i++ {
		u := rng.Float32()
		v := rng.Float32()
		foot := Footprint{Lod: rng.Range(0, 4), N: 1 + rng.Intn(8), AxisU: rng.Range(-0.1, 0.1)}
		coords := map[ParentCoord]bool{}
		for _, pc := range ParentTexelCoords(tx, u, v, foot) {
			coords[pc] = true
		}
		s.SampleAnisoReordered(tx, u, v, foot,
			func(_ *Texture, level, x, y int, _ Footprint) Color {
				if !coords[ParentCoord{Level: level, X: x, Y: y}] {
					t.Fatalf("sampler requested (%d,%d,%d) not in ParentTexelCoords", level, x, y)
				}
				return Color{A: 1}
			})
	}
}

func TestSampleCountsViaFetch(t *testing.T) {
	tx := noiseTexture(64)
	count := 0
	s := Sampler{MaxAniso: 16, Fetch: func(t *Texture, level, x, y int) Color {
		count++
		return t.Texel(level, x, y)
	}}
	foot := Footprint{N: 4, Lod: 1.5, AxisU: 0.1}
	s.SampleAniso(tx, 0.4, 0.6, foot)
	if count != foot.TexelFetches() {
		t.Fatalf("conventional order fetched %d texels, want %d", count, foot.TexelFetches())
	}
}

func TestIsotropicCheaperThanAniso(t *testing.T) {
	tx := noiseTexture(64)
	count := 0
	s := Sampler{MaxAniso: 16, Fetch: func(t *Texture, level, x, y int) Color {
		count++
		return t.Texel(level, x, y)
	}}
	foot := Footprint{N: 8, Lod: 1.5, AxisU: 0.1}
	s.SampleIsotropic(tx, 0.3, 0.3, foot)
	if count > 8 {
		t.Fatalf("isotropic sampling fetched %d texels, want <= 8", count)
	}
}
