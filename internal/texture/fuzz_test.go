package texture

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func validColor(c Color) bool {
	ok := func(v float32) bool {
		return !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) &&
			v >= -0.001 && v <= 1.001
	}
	return ok(c.R) && ok(c.G) && ok(c.B) && ok(c.A)
}

// TestSamplerNeverProducesInvalidColors drives every sampling mode with
// randomized (including hostile) inputs and requires finite, in-range
// output — the renderer relies on this to never corrupt a frame.
func TestSamplerNeverProducesInvalidColors(t *testing.T) {
	tx := noiseTexture(64)
	s := Sampler{MaxAniso: 16}
	rng := xrand.New(0xF022)
	for i := 0; i < 50000; i++ {
		u := rng.Range(-10, 10)
		v := rng.Range(-10, 10)
		foot := Footprint{
			Lod:   rng.Range(-5, 20),
			N:     1 + rng.Intn(16),
			AxisU: rng.Range(-2, 2),
			AxisV: rng.Range(-2, 2),
		}
		if c := s.SampleAniso(tx, u, v, foot); !validColor(c) {
			t.Fatalf("SampleAniso invalid at iter %d: %+v (uv %g,%g foot %+v)", i, c, u, v, foot)
		}
		if c := s.SampleAnisoReordered(tx, u, v, foot, nil); !validColor(c) {
			t.Fatalf("SampleAnisoReordered invalid at iter %d", i)
		}
		if c := s.SampleIsotropic(tx, u, v, foot); !validColor(c) {
			t.Fatalf("SampleIsotropic invalid at iter %d", i)
		}
	}
}

// TestFootprintNeverInvalid checks ComputeFootprint against degenerate
// gradients (zero, NaN-free but huge, negative).
func TestFootprintNeverInvalid(t *testing.T) {
	tx := noiseTexture(128)
	rng := xrand.New(0xF001)
	for i := 0; i < 50000; i++ {
		g := Gradients{
			DUDX: rng.Range(-100, 100),
			DVDX: rng.Range(-100, 100),
			DUDY: rng.Range(-100, 100),
			DVDY: rng.Range(-100, 100),
		}
		if i%17 == 0 {
			g = Gradients{} // fully degenerate
		}
		f := ComputeFootprint(tx, g, 16)
		if f.N < 1 || f.N > 16 {
			t.Fatalf("N=%d out of range for %+v", f.N, g)
		}
		if math.IsNaN(float64(f.Lod)) || f.Lod < 0 || f.Lod > float32(tx.NumLevels()-1) {
			t.Fatalf("lod=%g out of range for %+v", f.Lod, g)
		}
		if f.IsoLod() < f.Lod {
			t.Fatalf("iso lod below fine lod for %+v", g)
		}
	}
}

// TestTexelAddrAlwaysInsideLevel checks the address map against hostile
// coordinates (far out of range, negative) and every level including 1x1.
func TestTexelAddrAlwaysInsideLevel(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		tx := noiseTexture(64)
		if compressed {
			tx.Compress()
		}
		end := tx.AssignAddresses(0x10000)
		rng := xrand.New(0xADD2)
		for i := 0; i < 50000; i++ {
			lv := rng.Intn(tx.NumLevels()+4) - 2
			x := rng.Intn(4000) - 2000
			y := rng.Intn(4000) - 2000
			addr := tx.TexelAddr(lv, x, y)
			if addr < 0x10000 || addr >= end {
				t.Fatalf("compressed=%v: texel (%d,%d,%d) address %#x outside [%#x,%#x)",
					compressed, lv, x, y, addr, 0x10000, end)
			}
			if !validColor(tx.Texel(lv, x, y)) {
				t.Fatalf("compressed=%v: invalid texel color at (%d,%d,%d)", compressed, lv, x, y)
			}
		}
	}
}

// TestChildOffsetsWithinFootprintSpan verifies generated child texels stay
// within the major-axis extent the footprint declares.
func TestChildOffsetsWithinFootprintSpan(t *testing.T) {
	tx := noiseTexture(128)
	rng := xrand.New(0xC41D)
	for i := 0; i < 20000; i++ {
		f := Footprint{
			N:     1 + rng.Intn(16),
			AxisU: rng.Range(-0.5, 0.5),
			AxisV: rng.Range(-0.5, 0.5),
		}
		level := rng.Intn(tx.NumLevels())
		w := float64(tx.Levels[level].W)
		h := float64(tx.Levels[level].H)
		maxDX := math.Abs(float64(f.AxisU))*w/2 + 1
		maxDY := math.Abs(float64(f.AxisV))*h/2 + 1
		for p := 0; p < f.N; p++ {
			dx, dy := f.ChildOffset(tx, level, p)
			if math.Abs(float64(dx)) > maxDX || math.Abs(float64(dy)) > maxDY {
				t.Fatalf("child %d/%d offset (%d,%d) exceeds span (%.1f,%.1f)",
					p, f.N, dx, dy, maxDX, maxDY)
			}
		}
	}
}
