package texture

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	err := quick.Check(func(word uint32) bool {
		return Pack(Unpack(word)) == word
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackClamps(t *testing.T) {
	c := Color{R: 2, G: -1, B: 0.5, A: 1}
	p := Unpack(Pack(c))
	if p.R != 1 || p.G != 0 || p.A != 1 {
		t.Fatalf("clamping wrong: %+v", p)
	}
	if math.Abs(float64(p.B-0.5)) > 1.0/255 {
		t.Fatalf("mid value drifted: %g", p.B)
	}
}

func TestColorArithmetic(t *testing.T) {
	a := Color{R: 0.25, G: 0.5, B: 0.75, A: 1}
	if got := a.Scale(2).R; got != 0.5 {
		t.Errorf("scale %g", got)
	}
	if got := a.Add(a).G; got != 1.0 {
		t.Errorf("add %g", got)
	}
	if got := a.Mul(Color{R: 0.5, G: 0.5, B: 0.5, A: 1}).B; got != 0.375 {
		t.Errorf("mul %g", got)
	}
	if LerpColor(a, Color{}, 1) != (Color{}) {
		t.Error("lerp endpoint wrong")
	}
}

func TestMortonBijective(t *testing.T) {
	err := quick.Check(func(x, y uint16) bool {
		m := MortonEncode(uint32(x), uint32(y))
		dx, dy := MortonDecode(m)
		return dx == uint32(x) && dy == uint32(y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMortonLocality(t *testing.T) {
	// A 4x4 texel block must map into one 16-texel (64-byte) span.
	base := MortonEncode(4, 8) // aligned 4x4 block corner
	for dy := uint32(0); dy < 4; dy++ {
		for dx := uint32(0); dx < 4; dx++ {
			m := MortonEncode(4+dx, 8+dy)
			if m/16 != base/16 {
				t.Fatalf("texel (%d,%d) maps outside its 4x4 block", 4+dx, 8+dy)
			}
		}
	}
}

func TestTexelIndexInverse(t *testing.T) {
	for _, layout := range []Layout{LayoutMorton, LayoutLinear} {
		for _, dim := range [][2]int{{64, 64}, {128, 32}, {8, 8}, {2, 2}, {1, 1}} {
			w, h := dim[0], dim[1]
			seen := make(map[int]bool, w*h)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					idx := texelIndex(layout, w, h, x, y)
					if idx < 0 || idx >= w*h {
						t.Fatalf("%v %dx%d (%d,%d): index %d out of range", layout, w, h, x, y, idx)
					}
					if seen[idx] {
						t.Fatalf("%v %dx%d: index %d collides", layout, w, h, idx)
					}
					seen[idx] = true
					ix, iy := inverseTexelIndex(layout, w, h, idx)
					if ix != x || iy != y {
						t.Fatalf("%v %dx%d: inverse(%d) = (%d,%d) want (%d,%d)", layout, w, h, idx, ix, iy, x, y)
					}
				}
			}
		}
	}
}

func TestNewTextureMipChain(t *testing.T) {
	tx := NewTexture(0, "t", 64, 32, LayoutMorton, WrapRepeat)
	if tx.NumLevels() != 7 { // 64x32 ... 1x1
		t.Fatalf("levels=%d want 7", tx.NumLevels())
	}
	last := tx.Levels[tx.NumLevels()-1]
	if last.W != 1 || last.H != 1 {
		t.Fatalf("last level %dx%d", last.W, last.H)
	}
}

func TestNewTextureRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-pow2 size")
		}
	}()
	NewTexture(0, "bad", 100, 64, LayoutMorton, WrapRepeat)
}

func TestWrapModes(t *testing.T) {
	tx := NewTexture(0, "t", 4, 4, LayoutLinear, WrapRepeat)
	tx.SetTexel(0, 0, 0, Gray(1))
	tx.SetTexel(0, 3, 3, Gray(0.5))
	// Repeat: -1 wraps to 3.
	if got := tx.Texel(0, -1, -1); math.Abs(float64(got.R-0.5)) > 0.01 {
		t.Errorf("repeat wrap got %g", got.R)
	}
	if got := tx.Texel(0, 4, 4); math.Abs(float64(got.R-1)) > 0.01 {
		t.Errorf("repeat wrap (4,4) got %g", got.R)
	}
	tc := NewTexture(1, "c", 4, 4, LayoutLinear, WrapClamp)
	tc.SetTexel(0, 0, 0, Gray(1))
	if got := tc.Texel(0, -5, -5); math.Abs(float64(got.R-1)) > 0.01 {
		t.Errorf("clamp wrap got %g", got.R)
	}
}

func TestBuildMipmapsBoxFilter(t *testing.T) {
	tx := NewTexture(0, "t", 2, 2, LayoutLinear, WrapRepeat)
	tx.SetTexel(0, 0, 0, Gray(1))
	tx.SetTexel(0, 1, 0, Gray(0))
	tx.SetTexel(0, 0, 1, Gray(1))
	tx.SetTexel(0, 1, 1, Gray(0))
	tx.BuildMipmaps()
	avg := tx.Texel(1, 0, 0)
	if math.Abs(float64(avg.R-0.5)) > 0.01 {
		t.Fatalf("1x1 mip = %g want 0.5", avg.R)
	}
}

func TestAssignAddressesAlignment(t *testing.T) {
	tx := NewTexture(0, "t", 16, 16, LayoutMorton, WrapRepeat)
	end := tx.AssignAddresses(100)
	for i, l := range tx.Levels {
		if l.Addr%4096 != 0 {
			t.Errorf("level %d addr %#x not 4K aligned", i, l.Addr)
		}
		if i > 0 && l.Addr <= tx.Levels[i-1].Addr {
			t.Errorf("level %d addr not increasing", i)
		}
	}
	if end <= tx.Levels[len(tx.Levels)-1].Addr {
		t.Error("end address not past last level")
	}
}

func TestTexelAddrDistinctWithinLevel(t *testing.T) {
	tx := NewTexture(0, "t", 8, 8, LayoutMorton, WrapRepeat)
	tx.AssignAddresses(0)
	seen := map[uint64]bool{}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			a := tx.TexelAddr(0, x, y)
			if seen[a] {
				t.Fatalf("texel (%d,%d) address collides", x, y)
			}
			seen[a] = true
		}
	}
}

func TestLineTexelsCoverWholeLine(t *testing.T) {
	tx := NewTexture(0, "t", 64, 64, LayoutMorton, WrapRepeat)
	tx.AssignAddresses(0)
	lineAddr, texels := tx.LineTexels(0, 13, 27)
	if len(texels) != 16 {
		t.Fatalf("line holds %d texels, want 16", len(texels))
	}
	offsets := map[int]bool{}
	for _, lt := range texels {
		a := tx.TexelAddr(0, lt.X, lt.Y)
		if a != lineAddr+uint64(lt.Off) {
			t.Fatalf("texel (%d,%d) addr %#x != line %#x + %d", lt.X, lt.Y, a, lineAddr, lt.Off)
		}
		offsets[lt.Off] = true
	}
	if len(offsets) != 16 {
		t.Fatalf("offsets not unique: %d", len(offsets))
	}
	// The requested texel must be in the line.
	found := false
	for _, lt := range texels {
		if lt.X == 13 && lt.Y == 27 {
			found = true
		}
	}
	if !found {
		t.Fatal("requested texel not in its own line")
	}
}

func TestLineTexelsTinyLevel(t *testing.T) {
	tx := NewTexture(0, "t", 2, 2, LayoutMorton, WrapRepeat)
	tx.AssignAddresses(0)
	_, texels := tx.LineTexels(0, 0, 0)
	if len(texels) != 4 {
		t.Fatalf("2x2 level line holds %d texels, want 4", len(texels))
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec := SynthSpec{Kind: SynthBrick, Seed: 7, Size: 32, Primary: RGB(0.5, 0.3, 0.2), Secondary: Gray(0.3), Scale: 4}
	a := Synthesize(0, spec, LayoutMorton)
	b := Synthesize(0, spec, LayoutMorton)
	for i := range a.Levels[0].Pix {
		if a.Levels[0].Pix[i] != b.Levels[0].Pix[i] {
			t.Fatal("synthesis not deterministic")
		}
	}
}

func TestSynthesizeAllKindsInRange(t *testing.T) {
	for k := SynthKind(0); k < numSynthKinds; k++ {
		spec := SynthSpec{Kind: k, Seed: 3, Size: 16, Primary: RGB(0.6, 0.5, 0.4), Secondary: Gray(0.2), Scale: 4}
		tx := Synthesize(0, spec, LayoutLinear)
		if tx.Name != k.String() {
			t.Errorf("kind %v name %q", k, tx.Name)
		}
		if len(tx.Levels[0].Pix) != 256 {
			t.Errorf("kind %v: wrong pixel count", k)
		}
	}
}
