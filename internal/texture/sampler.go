package texture

import "math"

// FetchFunc is the texel-fetch callback. The functional renderer passes a
// direct array read; the timing designs wrap it with cache lookups, memory
// transactions and (for A-TFIM) in-memory approximation.
type FetchFunc func(t *Texture, level, x, y int) Color

// Gradients are the screen-space derivatives of the texture coordinates,
// computed analytically by the rasterizer per fragment.
type Gradients struct {
	DUDX, DVDX float32
	DUDY, DVDY float32
}

// Footprint is the anisotropic sampling decision for one texture request:
// the fine LOD used for trilinear filtering, the number of anisotropic
// probes N (the paper's "level of anisotropic"), and the major-axis step in
// UV space. With N == 1 the request degenerates to plain trilinear.
type Footprint struct {
	// Lod is the trilinear level-of-detail (log2 of the minor axis length).
	Lod float32
	// N is the anisotropy degree (1..MaxAniso).
	N int
	// AxisU, AxisV is the full major-axis extent in UV space; probe i sits
	// at offset Axis * ((i+0.5)/N - 0.5).
	AxisU, AxisV float32
	// Angle is the camera angle proxy (radians) associated with this
	// footprint; A-TFIM tags cached parent texels with it.
	Angle float32
}

// IsoLod returns the isotropic LOD (log2 of the major axis) used when
// anisotropic filtering is disabled — blurrier but cheap (Section II-C).
func (f Footprint) IsoLod() float32 {
	return f.Lod + Log2(float32(f.N))
}

// TexelFetches returns how many texels the conventional order fetches
// (N probes x 2 mip levels x 4 bilinear corners), e.g. 32 for 4x anisotropy
// as in the paper's Fig. 7(A).
func (f Footprint) TexelFetches() int { return f.N * 8 }

// ParentFetches returns how many parent texels A-TFIM fetches from the GPU
// side (2 levels x 4 corners = 8, Fig. 7(B)).
func (f Footprint) ParentFetches() int { return 8 }

// ComputeFootprint derives the anisotropic footprint from UV gradients for
// texture t, capping anisotropy at maxAniso (>= 1).
func ComputeFootprint(t *Texture, g Gradients, maxAniso int) Footprint {
	if maxAniso < 1 {
		maxAniso = 1
	}
	w := float32(t.Levels[0].W)
	h := float32(t.Levels[0].H)
	// Gradient lengths in base-level texel space.
	lx := float32(math.Hypot(float64(g.DUDX*w), float64(g.DVDX*h)))
	ly := float32(math.Hypot(float64(g.DUDY*w), float64(g.DVDY*h)))

	majorU, majorV := g.DUDX, g.DVDX
	major, minor := lx, ly
	if ly > lx {
		majorU, majorV = g.DUDY, g.DVDY
		major, minor = ly, lx
	}
	const eps = 1e-6
	if major < eps {
		major = eps
	}
	if minor < eps {
		minor = eps
	}
	ratio := major / minor
	if ratio > float32(maxAniso) {
		ratio = float32(maxAniso)
	}
	n := int(math.Ceil(float64(ratio)))
	if n < 1 {
		n = 1
	}
	// Trilinear LOD covers the minor axis; probes cover the major axis.
	lodLen := major / float32(n)
	if lodLen < 1 {
		lodLen = 1
	}
	lod := Log2(lodLen)
	maxLod := float32(t.NumLevels() - 1)
	if lod > maxLod {
		lod = maxLod
	}
	if lod < 0 {
		lod = 0
	}
	return Footprint{Lod: lod, N: n, AxisU: majorU, AxisV: majorV}
}

// probeStep returns the normalized probe position s_i in [-0.5, 0.5).
func probeStep(i, n int) float32 {
	return (float32(i)+0.5)/float32(n) - 0.5
}

// ChildOffset returns the integer texel offset of child probe i at the given
// mip level: the major-axis step scaled into level texel space and rounded.
// These are exactly the child texels the A-TFIM Texel Generator produces in
// the HMC logic layer (Fig. 8).
func (f Footprint) ChildOffset(t *Texture, level, i int) (dx, dy int) {
	level = t.ClampLevel(level)
	l := &t.Levels[level]
	s := probeStep(i, f.N)
	dx = int(math.Round(float64(f.AxisU * float32(l.W) * s)))
	dy = int(math.Round(float64(f.AxisV * float32(l.H) * s)))
	return dx, dy
}

// bilinearSetup computes the base corner and fractional weights of a
// bilinear fetch at (u, v) on the given level.
func bilinearSetup(t *Texture, level int, u, v float32) (x0, y0 int, fx, fy float32) {
	l := &t.Levels[t.ClampLevel(level)]
	tu := u*float32(l.W) - 0.5
	tv := v*float32(l.H) - 0.5
	x0 = int(math.Floor(float64(tu)))
	y0 = int(math.Floor(float64(tv)))
	fx = tu - float32(x0)
	fy = tv - float32(y0)
	return x0, y0, fx, fy
}

// trilinearLevels returns the two mip levels and the blend weight for a LOD.
func trilinearLevels(t *Texture, lod float32) (l0, l1 int, w float32) {
	if lod <= 0 {
		return 0, 0, 0
	}
	maxL := t.NumLevels() - 1
	fl := int(lod)
	if fl >= maxL {
		return maxL, maxL, 0
	}
	return fl, fl + 1, lod - float32(fl)
}

// Sampler executes the texture-filtering pipeline. Fetch may be nil, in
// which case texels are read directly from the texture (pure functional
// rendering with no timing side effects).
type Sampler struct {
	// MaxAniso caps the anisotropy degree (16 in Table I-class GPUs);
	// 1 disables anisotropic filtering.
	MaxAniso int
	// Fetch is the texel-fetch callback (nil = direct array read).
	Fetch FetchFunc
}

func (s *Sampler) fetch(t *Texture, level, x, y int) Color {
	if s.Fetch != nil {
		return s.Fetch(t, level, x, y)
	}
	return t.Texel(level, x, y)
}

// SampleBilinear performs one bilinear fetch at (u, v) on a single level
// (4 texels).
func (s *Sampler) SampleBilinear(t *Texture, level int, u, v float32) Color {
	x0, y0, fx, fy := bilinearSetup(t, level, u, v)
	c00 := s.fetch(t, level, x0, y0)
	c10 := s.fetch(t, level, x0+1, y0)
	c01 := s.fetch(t, level, x0, y0+1)
	c11 := s.fetch(t, level, x0+1, y0+1)
	top := LerpColor(c00, c10, fx)
	bot := LerpColor(c01, c11, fx)
	return LerpColor(top, bot, fy)
}

// SampleTrilinear blends bilinear fetches from the two levels bracketing
// lod (8 texels), smoothing the mipmap-level boundaries (Fig. 3, step 2).
func (s *Sampler) SampleTrilinear(t *Texture, u, v, lod float32) Color {
	l0, l1, w := trilinearLevels(t, lod)
	c0 := s.SampleBilinear(t, l0, u, v)
	if l1 == l0 || w == 0 {
		return c0
	}
	c1 := s.SampleBilinear(t, l1, u, v)
	return LerpColor(c0, c1, w)
}

// SampleIsotropic samples with anisotropic filtering disabled: plain
// trilinear at the isotropic (major-axis) LOD. This is the Fig. 4
// "anisotropic filtering disabled" configuration — cheap but blurry on
// oblique surfaces.
func (s *Sampler) SampleIsotropic(t *Texture, u, v float32, f Footprint) Color {
	return s.SampleTrilinear(t, u, v, f.IsoLod())
}

// SampleAniso performs full anisotropic filtering in the conventional order
// of Fig. 3/Fig. 7(A): for every child probe, bilinear fetches at both mip
// levels; probe results are averaged last (anisotropic step at the end).
// It fetches f.TexelFetches() texels.
func (s *Sampler) SampleAniso(t *Texture, u, v float32, f Footprint) Color {
	if f.N <= 1 {
		return s.SampleTrilinear(t, u, v, f.Lod)
	}
	l0, l1, w := trilinearLevels(t, f.Lod)
	inv := 1 / float32(f.N)

	sampleLevel := func(level int) Color {
		x0, y0, fx, fy := bilinearSetup(t, level, u, v)
		var acc Color
		for i := 0; i < f.N; i++ {
			dx, dy := f.ChildOffset(t, level, i)
			c00 := s.fetch(t, level, x0+dx, y0+dy)
			c10 := s.fetch(t, level, x0+1+dx, y0+dy)
			c01 := s.fetch(t, level, x0+dx, y0+1+dy)
			c11 := s.fetch(t, level, x0+1+dx, y0+1+dy)
			top := LerpColor(c00, c10, fx)
			bot := LerpColor(c01, c11, fx)
			acc = acc.Add(LerpColor(top, bot, fy))
		}
		return acc.Scale(inv)
	}

	c0 := sampleLevel(l0)
	if l1 == l0 || w == 0 {
		return c0
	}
	c1 := sampleLevel(l1)
	return LerpColor(c0, c1, w)
}

// ParentFetchFunc returns the anisotropically pre-filtered ("approximated")
// parent texel at integer position (level, x, y): the average of that
// corner's N child texels. In A-TFIM this runs in the HMC logic layer.
type ParentFetchFunc func(t *Texture, level, x, y int, f Footprint) Color

// AverageChildren computes a parent texel the way the A-TFIM Combination
// Unit does: fetch the N child texels at the footprint's offsets from
// (x, y) and average them. With fetch == nil texels are read directly.
func AverageChildren(t *Texture, level, x, y int, f Footprint, fetch FetchFunc) Color {
	if f.N <= 1 {
		if fetch != nil {
			return fetch(t, level, x, y)
		}
		return t.Texel(level, x, y)
	}
	var acc Color
	for i := 0; i < f.N; i++ {
		dx, dy := f.ChildOffset(t, level, i)
		if fetch != nil {
			acc = acc.Add(fetch(t, level, x+dx, y+dy))
		} else {
			acc = acc.Add(t.Texel(level, x+dx, y+dy))
		}
	}
	return acc.Scale(1 / float32(f.N))
}

// SampleAnisoReordered performs the A-TFIM reordered pipeline of Fig. 7(B):
// anisotropic filtering first (per parent texel, via parentFetch), then
// bilinear and trilinear on the 8 approximated parent texels. With
// parentFetch == AverageChildren-over-direct-texels this computes exactly
// the same weighted sum as SampleAniso (the paper's Eq. 3 correctness
// argument), reassociated.
func (s *Sampler) SampleAnisoReordered(t *Texture, u, v float32, f Footprint, parentFetch ParentFetchFunc) Color {
	if parentFetch == nil {
		parentFetch = func(t *Texture, level, x, y int, f Footprint) Color {
			return AverageChildren(t, level, x, y, f, s.Fetch)
		}
	}
	if f.N <= 1 {
		// No anisotropy: parent texels are plain texels.
		l0, l1, w := trilinearLevels(t, f.Lod)
		c0 := s.bilinearVia(t, l0, u, v, f, parentFetch)
		if l1 == l0 || w == 0 {
			return c0
		}
		c1 := s.bilinearVia(t, l1, u, v, f, parentFetch)
		return LerpColor(c0, c1, w)
	}
	l0, l1, w := trilinearLevels(t, f.Lod)
	c0 := s.bilinearVia(t, l0, u, v, f, parentFetch)
	if l1 == l0 || w == 0 {
		return c0
	}
	c1 := s.bilinearVia(t, l1, u, v, f, parentFetch)
	return LerpColor(c0, c1, w)
}

func (s *Sampler) bilinearVia(t *Texture, level int, u, v float32, f Footprint, pf ParentFetchFunc) Color {
	x0, y0, fx, fy := bilinearSetup(t, level, u, v)
	c00 := pf(t, level, x0, y0, f)
	c10 := pf(t, level, x0+1, y0, f)
	c01 := pf(t, level, x0, y0+1, f)
	c11 := pf(t, level, x0+1, y0+1, f)
	top := LerpColor(c00, c10, fx)
	bot := LerpColor(c01, c11, fx)
	return LerpColor(top, bot, fy)
}

// ParentTexelCoords enumerates the 8 (level, x, y) parent-texel coordinates
// a reordered sample touches, in deterministic order: level-0 corners then
// level-1 corners. When the LOD needs only one level, 4 coordinates are
// returned.
func ParentTexelCoords(t *Texture, u, v float32, f Footprint) []ParentCoord {
	l0, l1, w := trilinearLevels(t, f.Lod)
	out := make([]ParentCoord, 0, 8)
	appendLevel := func(level int) {
		x0, y0, _, _ := bilinearSetup(t, level, u, v)
		out = append(out,
			ParentCoord{Level: level, X: x0, Y: y0},
			ParentCoord{Level: level, X: x0 + 1, Y: y0},
			ParentCoord{Level: level, X: x0, Y: y0 + 1},
			ParentCoord{Level: level, X: x0 + 1, Y: y0 + 1},
		)
	}
	appendLevel(l0)
	if l1 != l0 && w != 0 {
		appendLevel(l1)
	}
	return out
}

// ParentCoord identifies one parent texel.
type ParentCoord struct {
	Level, X, Y int
}
