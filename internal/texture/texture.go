package texture

import (
	"fmt"
	"math"
)

// WrapMode selects texture-coordinate wrapping behaviour.
type WrapMode uint8

const (
	// WrapRepeat tiles the texture (GL_REPEAT).
	WrapRepeat WrapMode = iota
	// WrapClamp clamps coordinates to the edge (GL_CLAMP_TO_EDGE).
	WrapClamp
)

// Level is one mipmap level.
type Level struct {
	// W and H are the level dimensions in texels (powers of two).
	W, H int
	// Pix holds the texels in layout order (see Layout).
	Pix []uint32
	// Addr is the level's base byte address in the global address space.
	Addr uint64
}

// Texture is a 2D texture with a full mipmap chain down to 1x1.
type Texture struct {
	// ID is the texture's identity within its scene.
	ID int
	// Name describes the procedural source ("brick", "noise", ...).
	Name string
	// Levels is the mip chain; Levels[0] is the base image.
	Levels []Level
	// Layout is the texel address layout.
	Layout Layout
	// Wrap is the coordinate wrap mode.
	Wrap WrapMode
	// Compressed reports whether the texture uses fixed-rate block
	// compression (see Compress).
	Compressed bool
	compressed []compressedLevel
}

// NewTexture allocates a texture of the given power-of-two size with an
// uninitialized base level and a full mip chain (call BuildMipmaps after
// filling level 0). It panics on non-power-of-two sizes.
func NewTexture(id int, name string, w, h int, layout Layout, wrap WrapMode) *Texture {
	if w <= 0 || h <= 0 || w&(w-1) != 0 || h&(h-1) != 0 {
		panic(fmt.Sprintf("texture %q: dimensions %dx%d must be powers of two", name, w, h))
	}
	t := &Texture{ID: id, Name: name, Layout: layout, Wrap: wrap}
	for w > 0 && h > 0 {
		t.Levels = append(t.Levels, Level{W: w, H: h, Pix: make([]uint32, w*h)})
		if w == 1 && h == 1 {
			break
		}
		w = maxInt(1, w/2)
		h = maxInt(1, h/2)
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NumLevels returns the mip chain length.
func (t *Texture) NumLevels() int { return len(t.Levels) }

// SizeBytes returns the total storage of all levels (compressed footprint
// when block compression is enabled).
func (t *Texture) SizeBytes() int {
	s := 0
	for i, l := range t.Levels {
		if t.Compressed {
			s += t.compressedLevelBytes(i)
		} else {
			s += len(l.Pix) * 4
		}
	}
	return s
}

// AssignAddresses lays the mip chain out consecutively starting at base
// (4 KiB aligned per level) and returns the first free address after the
// texture.
func (t *Texture) AssignAddresses(base uint64) uint64 {
	const align = 4096
	for i := range t.Levels {
		base = (base + align - 1) &^ uint64(align-1)
		t.Levels[i].Addr = base
		if t.Compressed {
			base += uint64(t.compressedLevelBytes(i))
		} else {
			base += uint64(len(t.Levels[i].Pix) * 4)
		}
	}
	return base
}

// wrapCoord maps a possibly out-of-range texel coordinate into [0, n).
func wrapCoord(mode WrapMode, v, n int) int {
	if n <= 1 {
		return 0
	}
	switch mode {
	case WrapClamp:
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	default: // repeat
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
}

// SetTexel stores a color at (x, y) of level lv (coordinates must be in
// range; used by the synthesizers).
func (t *Texture) SetTexel(lv, x, y int, c Color) {
	l := &t.Levels[lv]
	l.Pix[texelIndex(t.Layout, l.W, l.H, x, y)] = Pack(c)
}

// TexelWord returns the packed RGBA8 word at (x, y) of level lv, applying
// the wrap mode. Level indices are clamped to the chain.
func (t *Texture) TexelWord(lv, x, y int) uint32 {
	if lv < 0 {
		lv = 0
	}
	if lv >= len(t.Levels) {
		lv = len(t.Levels) - 1
	}
	l := &t.Levels[lv]
	x = wrapCoord(t.Wrap, x, l.W)
	y = wrapCoord(t.Wrap, y, l.H)
	return l.Pix[texelIndex(t.Layout, l.W, l.H, x, y)]
}

// Texel returns the color at (x, y) of level lv with wrapping. Compressed
// textures decode on the fly (lossy).
func (t *Texture) Texel(lv, x, y int) Color {
	if t.Compressed {
		lv = t.ClampLevel(lv)
		l := &t.Levels[lv]
		return t.compressedTexel(lv, wrapCoord(t.Wrap, x, l.W), wrapCoord(t.Wrap, y, l.H))
	}
	return Unpack(t.TexelWord(lv, x, y))
}

// TexelAddr returns the byte address of texel (x, y) at level lv, applying
// the wrap mode so out-of-range coordinates map to real storage. For
// compressed textures this is the containing block's address.
func (t *Texture) TexelAddr(lv, x, y int) uint64 {
	lv = t.ClampLevel(lv)
	l := &t.Levels[lv]
	x = wrapCoord(t.Wrap, x, l.W)
	y = wrapCoord(t.Wrap, y, l.H)
	if t.Compressed {
		return t.compressedTexelAddr(lv, x, y)
	}
	return l.Addr + uint64(texelIndex(t.Layout, l.W, l.H, x, y))*4
}

// LineTexel identifies one texel within a cache line: its coordinates and
// its byte offset from the line base.
type LineTexel struct {
	X, Y int
	Off  int
}

// LineTexels enumerates the texels stored in the 64-byte memory line that
// contains texel (x, y) of level lv, together with the line's base address.
// Under the Morton layout a line is a 4x4 texel block — this is the
// granularity at which the A-TFIM composing stage groups parent texels
// ("the same format as a normal bilinear fetch", Section V-D).
func (t *Texture) LineTexels(lv, x, y int) (lineAddr uint64, texels []LineTexel) {
	lv = t.ClampLevel(lv)
	l := &t.Levels[lv]
	x = wrapCoord(t.Wrap, x, l.W)
	y = wrapCoord(t.Wrap, y, l.H)
	idx := texelIndex(t.Layout, l.W, l.H, x, y)
	const perLine = 16 // 64B line / 4B texel
	base := idx &^ (perLine - 1)
	lineAddr = l.Addr + uint64(base)*4
	n := perLine
	if base+n > len(l.Pix) {
		n = len(l.Pix) - base
	}
	texels = make([]LineTexel, 0, n)
	for k := 0; k < n; k++ {
		tx, ty := inverseTexelIndex(t.Layout, l.W, l.H, base+k)
		texels = append(texels, LineTexel{X: tx, Y: ty, Off: k * 4})
	}
	return lineAddr, texels
}

// ClampLevel clamps a mip level index into the chain.
func (t *Texture) ClampLevel(lv int) int {
	if lv < 0 {
		return 0
	}
	if lv >= len(t.Levels) {
		return len(t.Levels) - 1
	}
	return lv
}

// BuildMipmaps regenerates levels 1..n from level 0 with a 2x2 box filter
// (the standard mipmap construction the paper's footnote 1 describes).
func (t *Texture) BuildMipmaps() {
	for lv := 1; lv < len(t.Levels); lv++ {
		src := &t.Levels[lv-1]
		dst := &t.Levels[lv]
		for y := 0; y < dst.H; y++ {
			for x := 0; x < dst.W; x++ {
				x0, y0 := x*2, y*2
				x1 := minInt(x0+1, src.W-1)
				y1 := minInt(y0+1, src.H-1)
				c := t.levelTexel(src, x0, y0).
					Add(t.levelTexel(src, x1, y0)).
					Add(t.levelTexel(src, x0, y1)).
					Add(t.levelTexel(src, x1, y1)).
					Scale(0.25)
				dst.Pix[texelIndex(t.Layout, dst.W, dst.H, x, y)] = Pack(c)
			}
		}
	}
}

func (t *Texture) levelTexel(l *Level, x, y int) Color {
	return Unpack(l.Pix[texelIndex(t.Layout, l.W, l.H, x, y)])
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Log2 returns log2(v) for float32 inputs (used for LOD computation).
func Log2(v float32) float32 {
	return float32(math.Log2(float64(v)))
}
