package texture

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCompressIdempotent(t *testing.T) {
	tx := noiseTexture(32)
	tx.Compress()
	size := tx.SizeBytes()
	tx.Compress()
	if tx.SizeBytes() != size {
		t.Fatal("double compression changed size")
	}
}

func TestCompressedFootprintRatio(t *testing.T) {
	tx := noiseTexture(64)
	raw := tx.SizeBytes()
	tx.Compress()
	if got := tx.SizeBytes(); got*8 != raw && got*8 > raw+1024 {
		t.Fatalf("compression ratio wrong: %d -> %d (want ~8:1)", raw, got)
	}
}

func TestCompressedSolidBlockExact(t *testing.T) {
	// A solid-color texture must decode exactly (up to RGB565
	// quantization).
	tx := NewTexture(0, "solid", 16, 16, LayoutLinear, WrapRepeat)
	c := Color{R: 8.0 / 31, G: 16.0 / 63, B: 24.0 / 31, A: 1}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			tx.SetTexel(0, x, y, c)
		}
	}
	tx.Compress()
	got := tx.Texel(0, 7, 7)
	if math.Abs(float64(got.R-c.R)) > 0.02 || math.Abs(float64(got.G-c.G)) > 0.02 ||
		math.Abs(float64(got.B-c.B)) > 0.02 {
		t.Fatalf("solid block decoded to %+v want %+v", got, c)
	}
}

func TestCompressedTwoToneBlockExact(t *testing.T) {
	// A block with only the two endpoint colors decodes to those colors.
	tx := NewTexture(0, "2tone", 4, 4, LayoutLinear, WrapRepeat)
	dark := Color{R: 0, G: 0, B: 0, A: 1}
	light := Color{R: 1, G: 1, B: 1, A: 1}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if (x+y)%2 == 0 {
				tx.SetTexel(0, x, y, dark)
			} else {
				tx.SetTexel(0, x, y, light)
			}
		}
	}
	tx.Compress()
	if got := tx.Texel(0, 0, 0); got.R > 0.01 {
		t.Fatalf("dark texel decoded to %+v", got)
	}
	if got := tx.Texel(0, 1, 0); got.R < 0.99 {
		t.Fatalf("light texel decoded to %+v", got)
	}
}

func TestCompressionErrorBounded(t *testing.T) {
	// Lossy, but each decoded texel must stay within the block's own
	// color range plus quantization slack.
	tx := noiseTexture(32)
	ref := make([]Color, 32*32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			ref[y*32+x] = tx.Texel(0, x, y)
		}
	}
	tx.Compress()
	var worst float64
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			got := tx.Texel(0, x, y)
			want := ref[y*32+x]
			d := math.Abs(float64(got.R-want.R)) + math.Abs(float64(got.G-want.G)) + math.Abs(float64(got.B-want.B))
			if d > worst {
				worst = d
			}
		}
	}
	if worst > 1.2 {
		t.Fatalf("worst per-texel error %.3f too large", worst)
	}
}

func TestCompressedAddressesBlockGranular(t *testing.T) {
	tx := noiseTexture(32)
	tx.Compress()
	tx.AssignAddresses(0)
	// All 16 texels of a block share one 8-byte address.
	base := tx.TexelAddr(0, 4, 4)
	for dy := 0; dy < 4; dy++ {
		for dx := 0; dx < 4; dx++ {
			if tx.TexelAddr(0, 4+dx, 4+dy) != base {
				t.Fatalf("texel (%d,%d) not in its block", 4+dx, 4+dy)
			}
		}
	}
	// The next block is 8 bytes away.
	if tx.TexelAddr(0, 8, 4) != base+8 {
		t.Fatalf("adjacent block stride %d want 8", tx.TexelAddr(0, 8, 4)-base)
	}
}

func TestPack565RoundTrip(t *testing.T) {
	err := quick.Check(func(v uint16) bool {
		c := unpack565(v)
		return pack565(c) == v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompressedSamplingStillWorks(t *testing.T) {
	tx := noiseTexture(64)
	s := Sampler{MaxAniso: 16}
	ref := s.SampleAniso(tx, 0.4, 0.6, Footprint{N: 4, Lod: 1, AxisU: 0.05})
	tx.Compress()
	got := s.SampleAniso(tx, 0.4, 0.6, Footprint{N: 4, Lod: 1, AxisU: 0.05})
	// Filtered result must be near the uncompressed reference.
	if math.Abs(float64(got.R-ref.R)) > 0.25 {
		t.Fatalf("compressed filtering diverged: %+v vs %+v", got, ref)
	}
}
