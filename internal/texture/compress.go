package texture

// Fixed-rate lossy block compression in the style the paper's Section VIII
// surveys (S3TC/iPackman/ASTC): 4x4 texel blocks stored as two RGB565
// endpoints plus 16 2-bit palette indices — 8 bytes per block, a fixed 8:1
// ratio against RGBA8. The paper calls texture compression orthogonal to
// A-TFIM; the ablation benches quantify how the two compose.

// blockBytes is the compressed size of one 4x4 block.
const blockBytes = 8

// compressedLevel holds one mip level's compressed blocks.
type compressedLevel struct {
	blocksX, blocksY int
	blocks           []uint64
}

// Compress converts the texture to fixed-rate compressed storage. Texel
// reads transparently decode (lossy); addresses and sizes reflect the
// compressed footprint. Compressing an already-compressed texture is a
// no-op.
func (t *Texture) Compress() {
	if t.Compressed {
		return
	}
	t.compressed = make([]compressedLevel, len(t.Levels))
	for lv := range t.Levels {
		t.compressed[lv] = t.compressLevel(lv)
	}
	t.Compressed = true
}

func (t *Texture) compressLevel(lv int) compressedLevel {
	l := &t.Levels[lv]
	bx := (l.W + 3) / 4
	by := (l.H + 3) / 4
	cl := compressedLevel{blocksX: bx, blocksY: by, blocks: make([]uint64, bx*by)}
	var texels [16]Color
	for byi := 0; byi < by; byi++ {
		for bxi := 0; bxi < bx; bxi++ {
			for i := 0; i < 16; i++ {
				x := bxi*4 + i%4
				y := byi*4 + i/4
				if x >= l.W {
					x = l.W - 1
				}
				if y >= l.H {
					y = l.H - 1
				}
				texels[i] = Unpack(l.Pix[texelIndex(t.Layout, l.W, l.H, x, y)])
			}
			cl.blocks[byi*bx+bxi] = encodeBlock(&texels)
		}
	}
	return cl
}

// luma returns the perceptual brightness used for endpoint selection.
func luma(c Color) float32 {
	return 0.299*c.R + 0.587*c.G + 0.114*c.B
}

// encodeBlock picks the brightest and darkest texels as endpoints,
// quantizes them to RGB565, and maps every texel to the nearest of the
// four palette entries.
func encodeBlock(texels *[16]Color) uint64 {
	lo, hi := 0, 0
	for i := 1; i < 16; i++ {
		if luma(texels[i]) < luma(texels[lo]) {
			lo = i
		}
		if luma(texels[i]) > luma(texels[hi]) {
			hi = i
		}
	}
	e0 := pack565(texels[hi])
	e1 := pack565(texels[lo])
	palette := buildPalette(e0, e1)

	var indices uint32
	for i := 0; i < 16; i++ {
		best, bestD := 0, distSq(texels[i], palette[0])
		for p := 1; p < 4; p++ {
			if d := distSq(texels[i], palette[p]); d < bestD {
				best, bestD = p, d
			}
		}
		indices |= uint32(best) << (2 * i)
	}
	return uint64(e0) | uint64(e1)<<16 | uint64(indices)<<32
}

// decodeBlockTexel extracts texel i (0..15) from a compressed block.
func decodeBlockTexel(block uint64, i int) Color {
	e0 := uint16(block)
	e1 := uint16(block >> 16)
	idx := (uint32(block>>32) >> (2 * i)) & 3
	palette := buildPalette(e0, e1)
	return palette[idx]
}

func buildPalette(e0, e1 uint16) [4]Color {
	c0 := unpack565(e0)
	c1 := unpack565(e1)
	return [4]Color{
		c0,
		c1,
		LerpColor(c0, c1, 1.0/3).withAlpha(1),
		LerpColor(c0, c1, 2.0/3).withAlpha(1),
	}
}

func (c Color) withAlpha(a float32) Color {
	c.A = a
	return c
}

func distSq(a, b Color) float32 {
	dr := a.R - b.R
	dg := a.G - b.G
	db := a.B - b.B
	return dr*dr + dg*dg + db*db
}

func pack565(c Color) uint16 {
	r := uint16(Clamp01Tex(c.R)*31 + 0.5)
	g := uint16(Clamp01Tex(c.G)*63 + 0.5)
	b := uint16(Clamp01Tex(c.B)*31 + 0.5)
	return r<<11 | g<<5 | b
}

func unpack565(v uint16) Color {
	return Color{
		R: float32(v>>11&0x1f) / 31,
		G: float32(v>>5&0x3f) / 63,
		B: float32(v&0x1f) / 31,
		A: 1,
	}
}

// Clamp01Tex limits v to [0,1].
func Clamp01Tex(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// compressedTexel decodes texel (x, y) of level lv (coordinates already
// wrapped into range).
func (t *Texture) compressedTexel(lv, x, y int) Color {
	cl := &t.compressed[lv]
	block := cl.blocks[(y/4)*cl.blocksX+x/4]
	return decodeBlockTexel(block, (y%4)*4+x%4)
}

// compressedTexelAddr returns the byte address of the block containing
// texel (x, y): fetching any texel of a block reads its 8 bytes.
func (t *Texture) compressedTexelAddr(lv, x, y int) uint64 {
	cl := &t.compressed[lv]
	blockIdx := (y/4)*cl.blocksX + x/4
	return t.Levels[lv].Addr + uint64(blockIdx)*blockBytes
}

// compressedLevelBytes returns the compressed storage of level lv.
func (t *Texture) compressedLevelBytes(lv int) int {
	cl := &t.compressed[lv]
	return cl.blocksX * cl.blocksY * blockBytes
}
