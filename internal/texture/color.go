// Package texture implements the texture subsystem: texture images with
// mipmap chains, texel address layouts (linear and Morton-tiled), procedural
// texture synthesis for the workloads, and the three-stage filtering
// pipeline of the paper — bilinear, trilinear and anisotropic — in both the
// conventional order (Fig. 3) and the reordered anisotropic-first form used
// by A-TFIM (Fig. 7(B), Eq. 2–3).
package texture

// Color is a four-component RGBA color in filtering (float) space.
// Components are nominally in [0, 1].
type Color struct {
	R, G, B, A float32
}

// Add returns c+o component-wise.
func (c Color) Add(o Color) Color {
	return Color{c.R + o.R, c.G + o.G, c.B + o.B, c.A + o.A}
}

// Scale returns c*s component-wise.
func (c Color) Scale(s float32) Color {
	return Color{c.R * s, c.G * s, c.B * s, c.A * s}
}

// Mul returns the component-wise product c*o (modulate blending).
func (c Color) Mul(o Color) Color {
	return Color{c.R * o.R, c.G * o.G, c.B * o.B, c.A * o.A}
}

// LerpColor returns a + t*(b-a).
func LerpColor(a, b Color, t float32) Color {
	return Color{
		a.R + t*(b.R-a.R),
		a.G + t*(b.G-a.G),
		a.B + t*(b.B-a.B),
		a.A + t*(b.A-a.A),
	}
}

// Pack packs a Color into an RGBA8 word (R in the low byte). Components are
// clamped to [0, 1].
func Pack(c Color) uint32 {
	return uint32(clampByte(c.R)) |
		uint32(clampByte(c.G))<<8 |
		uint32(clampByte(c.B))<<16 |
		uint32(clampByte(c.A))<<24
}

// Unpack expands an RGBA8 word into a Color.
func Unpack(v uint32) Color {
	const inv = 1.0 / 255.0
	return Color{
		R: float32(v&0xff) * inv,
		G: float32((v>>8)&0xff) * inv,
		B: float32((v>>16)&0xff) * inv,
		A: float32((v>>24)&0xff) * inv,
	}
}

func clampByte(v float32) uint8 {
	x := v*255 + 0.5
	if x <= 0 {
		return 0
	}
	if x >= 255 {
		return 255
	}
	return uint8(x)
}

// Gray returns an opaque gray color of the given intensity.
func Gray(v float32) Color { return Color{v, v, v, 1} }

// RGB returns an opaque color.
func RGB(r, g, b float32) Color { return Color{r, g, b, 1} }
