package texture

import (
	"math"

	"repro/internal/xrand"
)

// SynthKind names a procedural texture family. The workloads compose these
// to approximate each game's art style (brick corridors, noisy concrete,
// marble floors, metal panels...).
type SynthKind uint8

const (
	// SynthChecker is a two-tone checkerboard.
	SynthChecker SynthKind = iota
	// SynthBrick is a brick-and-mortar pattern.
	SynthBrick
	// SynthNoise is fBm value noise.
	SynthNoise
	// SynthMarble is sine-warped noise (marble veins).
	SynthMarble
	// SynthMetal is brushed-metal banding with speckle.
	SynthMetal
	// SynthWood is concentric-ring wood grain.
	SynthWood
	// SynthGrate is a regular grille/grate pattern with high frequency
	// detail (the worst case for aliasing, i.e. where anisotropic filtering
	// matters most).
	SynthGrate
	numSynthKinds
)

// String returns the family name.
func (k SynthKind) String() string {
	switch k {
	case SynthChecker:
		return "checker"
	case SynthBrick:
		return "brick"
	case SynthNoise:
		return "noise"
	case SynthMarble:
		return "marble"
	case SynthMetal:
		return "metal"
	case SynthWood:
		return "wood"
	case SynthGrate:
		return "grate"
	default:
		return "synth"
	}
}

// SynthSpec describes one procedural texture.
type SynthSpec struct {
	Kind SynthKind
	// Seed makes each instance unique and deterministic.
	Seed uint64
	// Size is the (square) base-level dimension; must be a power of two.
	Size int
	// Primary and Secondary are the two dominant colors.
	Primary, Secondary Color
	// Scale is the feature frequency multiplier.
	Scale float32
}

// Synthesize builds the texture (base level plus mipmaps) for spec.
func Synthesize(id int, spec SynthSpec, layout Layout) *Texture {
	t := NewTexture(id, spec.Kind.String(), spec.Size, spec.Size, layout, WrapRepeat)
	n := spec.Size
	scale := spec.Scale
	if scale <= 0 {
		scale = 8
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			u := float32(x) / float32(n)
			v := float32(y) / float32(n)
			c := synthTexel(spec, u, v, scale)
			t.SetTexel(0, x, y, c)
		}
	}
	t.BuildMipmaps()
	return t
}

func synthTexel(spec SynthSpec, u, v, scale float32) Color {
	switch spec.Kind {
	case SynthChecker:
		iu := int(u * scale)
		iv := int(v * scale)
		if (iu+iv)%2 == 0 {
			return spec.Primary
		}
		return spec.Secondary

	case SynthBrick:
		// Bricks of 2:1 aspect with thin mortar lines; odd rows offset.
		bu := u * scale
		bv := v * scale * 2
		row := int(bv)
		if row%2 == 1 {
			bu += 0.5
		}
		fu := bu - float32(int(bu))
		fv := bv - float32(int(bv))
		const mortar = 0.06
		if fu < mortar || fv < mortar*2 {
			return spec.Secondary
		}
		// Per-brick tonal variation.
		shade := 0.85 + 0.3*xrand.Hash2D(spec.Seed, int32(bu), int32(bv)+int32(row)*131)
		return spec.Primary.Scale(shade)

	case SynthNoise:
		n := xrand.FBM2D(spec.Seed, u*scale, v*scale, 5)
		return LerpColor(spec.Secondary, spec.Primary, n)

	case SynthMarble:
		n := xrand.FBM2D(spec.Seed, u*scale, v*scale, 5)
		vein := float32(0.5 + 0.5*math.Sin(float64(u*scale*2+n*6)))
		vein = vein * vein
		return LerpColor(spec.Primary, spec.Secondary, vein)

	case SynthMetal:
		band := xrand.FBM2D(spec.Seed, u*scale*6, v*2, 3)
		speck := xrand.Hash2D(spec.Seed^0xbeef, int32(u*1024), int32(v*1024))
		base := LerpColor(spec.Primary, spec.Secondary, band*0.6)
		if speck > 0.985 {
			return Gray(0.95)
		}
		return base

	case SynthWood:
		cx := u - 0.5
		cy := v - 0.5
		r := float32(math.Sqrt(float64(cx*cx+cy*cy))) * scale
		n := xrand.FBM2D(spec.Seed, u*scale, v*scale, 3)
		ring := float32(0.5 + 0.5*math.Sin(float64(r*6+n*3)))
		return LerpColor(spec.Primary, spec.Secondary, ring)

	case SynthGrate:
		gu := u * scale * 4
		gv := v * scale * 4
		fu := gu - float32(int(gu))
		fv := gv - float32(int(gv))
		if fu < 0.35 || fv < 0.35 {
			return spec.Secondary
		}
		return spec.Primary

	default:
		return spec.Primary
	}
}

// DefaultPalette returns deterministic primary/secondary colors for a
// texture index, cycling through a muted game-like palette.
func DefaultPalette(i int) (primary, secondary Color) {
	palette := [][2]Color{
		{RGB(0.55, 0.32, 0.22), RGB(0.35, 0.33, 0.31)}, // brick red / mortar
		{RGB(0.42, 0.42, 0.45), RGB(0.22, 0.22, 0.25)}, // concrete
		{RGB(0.65, 0.60, 0.50), RGB(0.30, 0.26, 0.22)}, // sand / dirt
		{RGB(0.35, 0.42, 0.32), RGB(0.16, 0.20, 0.15)}, // mossy green
		{RGB(0.50, 0.48, 0.52), RGB(0.75, 0.74, 0.78)}, // steel
		{RGB(0.48, 0.34, 0.20), RGB(0.28, 0.18, 0.10)}, // wood
		{RGB(0.60, 0.58, 0.55), RGB(0.12, 0.12, 0.13)}, // tile / grout
		{RGB(0.38, 0.30, 0.42), RGB(0.18, 0.14, 0.22)}, // purple shade
	}
	p := palette[i%len(palette)]
	return p[0], p[1]
}
