package texture

// Layout selects how texels map to byte addresses within a mip level.
// GPUs store textures in tiled/swizzled layouts so that a cache line holds
// a 2D block of texels; the simulator models both for the ablation study.
type Layout uint8

const (
	// LayoutMorton interleaves the x/y bits (Z-order). A 64-byte line holds
	// a 4x4 texel block, which is what gives texture caches their 2D reuse.
	LayoutMorton Layout = iota
	// LayoutLinear is simple row-major order.
	LayoutLinear
)

// String returns "morton" or "linear".
func (l Layout) String() string {
	if l == LayoutLinear {
		return "linear"
	}
	return "morton"
}

// MortonEncode interleaves the low 16 bits of x and y into a Z-order index:
// bit i of x lands at bit 2i, bit i of y at bit 2i+1.
func MortonEncode(x, y uint32) uint32 {
	return part1By1(x) | part1By1(y)<<1
}

// MortonDecode inverts MortonEncode.
func MortonDecode(m uint32) (x, y uint32) {
	return compact1By1(m), compact1By1(m >> 1)
}

func part1By1(v uint32) uint32 {
	v &= 0x0000ffff
	v = (v | v<<8) & 0x00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

func compact1By1(v uint32) uint32 {
	v &= 0x55555555
	v = (v | v>>1) & 0x33333333
	v = (v | v>>2) & 0x0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff
	v = (v | v>>8) & 0x0000ffff
	return v
}

// inverseTexelIndex maps a texel index back to (x, y) coordinates within a
// level of width w and height h — the inverse of texelIndex.
func inverseTexelIndex(layout Layout, w, h, idx int) (x, y int) {
	if layout == LayoutLinear {
		return idx % w, idx / w
	}
	sq := w
	if h < sq {
		sq = h
	}
	if sq <= 1 {
		return idx % w, idx / w
	}
	tile := idx / (sq * sq)
	within := idx % (sq * sq)
	tilesPerRow := w / sq
	tileX := tile % tilesPerRow
	tileY := tile / tilesPerRow
	inX, inY := MortonDecode(uint32(within))
	return tileX*sq + int(inX), tileY*sq + int(inY)
}

// texelIndex returns the texel's index (in texels, not bytes) within a
// level of width w and height h under the given layout. For Morton order on
// non-square levels, the square Morton block covers min(w,h) and the longer
// axis is tiled.
func texelIndex(layout Layout, w, h, x, y int) int {
	if layout == LayoutLinear {
		return y*w + x
	}
	// Morton over the square min dimension, tiles of sq x sq along the
	// longer axis.
	sq := w
	if h < sq {
		sq = h
	}
	if sq <= 1 {
		return y*w + x
	}
	tileX := x / sq
	tileY := y / sq
	inX := uint32(x % sq)
	inY := uint32(y % sq)
	tilesPerRow := w / sq
	tile := tileY*tilesPerRow + tileX
	return tile*sq*sq + int(MortonEncode(inX, inY))
}
