package stats

import "sort"

// Distribution collects individual float64 samples for percentile queries
// (Summary keeps only moments; occupancy/latency diagnostics also need
// tails). The zero value is ready to use.
type Distribution struct {
	samples []float64
	sorted  bool
}

// Observe adds a sample.
func (d *Distribution) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the number of samples observed.
func (d *Distribution) N() int { return len(d.samples) }

// Reset discards all samples.
func (d *Distribution) Reset() {
	d.samples = d.samples[:0]
	d.sorted = false
}

func (d *Distribution) sortSamples() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100], clamped) with
// linear interpolation between order statistics. An empty distribution
// returns 0; a single sample is returned for every p.
func (d *Distribution) Percentile(p float64) float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return d.samples[0]
	}
	d.sortSamples()
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return d.samples[n-1]
	}
	return d.samples[lo]*(1-frac) + d.samples[lo+1]*frac
}

// Median returns the 50th percentile.
func (d *Distribution) Median() float64 { return d.Percentile(50) }
