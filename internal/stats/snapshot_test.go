package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestCounterCreationOrderStability: Names() must report counters in the
// exact order they were first created, independent of access pattern, and
// the order must survive Merge and Reset.
func TestCounterCreationOrderStability(t *testing.T) {
	var s Set
	names := []string{"zeta", "alpha", "mid", "alpha", "zeta", "beta"}
	for _, n := range names {
		s.Counter(n).Inc()
	}
	want := []string{"zeta", "alpha", "mid", "beta"}
	if got := s.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("creation order %v, want %v", got, want)
	}

	// Reset keeps the registry and its order.
	s.Reset()
	if got := s.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("order after Reset %v, want %v", got, want)
	}

	// Merge appends unseen counters after existing ones, in the source's
	// creation order.
	var o Set
	o.Counter("beta").Add(2)
	o.Counter("new1").Add(3)
	o.Counter("new0").Add(4)
	s.Merge(&o)
	want = []string{"zeta", "alpha", "mid", "beta", "new1", "new0"}
	if got := s.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("order after Merge %v, want %v", got, want)
	}
	if s.Get("beta") != 2 || s.Get("new0") != 4 {
		t.Fatalf("merge values wrong: beta=%d new0=%d", s.Get("beta"), s.Get("new0"))
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	var s Set
	s.Counter("c.first").Add(10)
	s.Counter("a.second").Add(20)
	s.Counter("b.third") // zero-valued counters must survive too

	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}

	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Names(), s.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("order lost in round trip: %v, want %v", got, want)
	}
	for _, n := range s.Names() {
		if back.Get(n) != s.Get(n) {
			t.Errorf("counter %s = %d, want %d", n, back.Get(n), s.Get(n))
		}
	}

	// Marshaling must be byte-stable.
	data2, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("Set JSON not deterministic")
	}

	// An empty set round-trips to an empty array, not null-breakage.
	var empty Set
	data, err = json.Marshal(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Errorf("empty set marshals to %s, want []", data)
	}
	var backEmpty Set
	if err := json.Unmarshal(data, &backEmpty); err != nil {
		t.Fatal(err)
	}
	if len(backEmpty.Names()) != 0 {
		t.Errorf("empty round trip produced counters: %v", backEmpty.Names())
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var d Distribution
	// Empty distribution.
	if got := d.Percentile(50); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if d.N() != 0 {
		t.Errorf("empty N = %d", d.N())
	}

	// Single sample: every percentile returns it.
	d.Observe(42)
	for _, p := range []float64{-10, 0, 50, 100, 250} {
		if got := d.Percentile(p); got != 42 {
			t.Errorf("single-sample P%v = %v, want 42", p, got)
		}
	}

	// Two samples: interpolation and clamping.
	d.Observe(44)
	if got := d.Percentile(0); got != 42 {
		t.Errorf("P0 = %v, want 42", got)
	}
	if got := d.Percentile(100); got != 44 {
		t.Errorf("P100 = %v, want 44", got)
	}
	if got := d.Percentile(50); math.Abs(got-43) > 1e-9 {
		t.Errorf("P50 = %v, want 43", got)
	}
	if got := d.Percentile(-5); got != 42 {
		t.Errorf("P-5 = %v, want clamp to 42", got)
	}
	if got := d.Percentile(500); got != 44 {
		t.Errorf("P500 = %v, want clamp to 44", got)
	}

	// Observing after a query must invalidate the sorted cache.
	d.Observe(40)
	if got := d.Percentile(0); got != 40 {
		t.Errorf("P0 after new min = %v, want 40", got)
	}
	if got := d.Median(); math.Abs(got-42) > 1e-9 {
		t.Errorf("median = %v, want 42", got)
	}

	d.Reset()
	if d.N() != 0 || d.Percentile(50) != 0 {
		t.Error("Reset did not clear samples")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var d Distribution
	for _, v := range []float64{10, 20, 30, 40, 50} {
		d.Observe(v)
	}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {12.5, 15},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestTableRows(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("x", "1")
	tab.AddRow("y")
	rows := tab.Rows()
	want := [][]string{{"x", "1"}, {"y", ""}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("Rows() = %v, want %v", rows, want)
	}
	// Mutating the copy must not affect the table.
	rows[0][0] = "mutated"
	if tab.Rows()[0][0] != "x" {
		t.Fatal("Rows() returned aliased storage")
	}
}
