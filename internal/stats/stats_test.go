package stats

import (
	"math"
	"strings"
	"testing"
)

func TestCounterSet(t *testing.T) {
	var s Set
	s.Counter("reads").Add(5)
	s.Counter("writes").Inc()
	s.Counter("reads").Inc()
	if s.Get("reads") != 6 || s.Get("writes") != 1 {
		t.Fatalf("counts wrong: %v", s.String())
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Fatalf("creation order lost: %v", names)
	}
}

func TestSetMergeAndReset(t *testing.T) {
	var a, b Set
	a.Counter("x").Add(2)
	b.Counter("x").Add(3)
	b.Counter("y").Add(7)
	a.Merge(&b)
	if a.Get("x") != 5 || a.Get("y") != 7 {
		t.Fatalf("merge wrong: %s", a.String())
	}
	a.Reset()
	if a.Get("x") != 0 || a.Get("y") != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 6} {
		s.Observe(v)
	}
	if s.Mean() != 4 {
		t.Errorf("mean %g want 4", s.Mean())
	}
	if s.MinV != 2 || s.MaxV != 6 {
		t.Errorf("min/max %g/%g", s.MinV, s.MaxV)
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.StdDev()-want) > 1e-9 {
		t.Errorf("stddev %g want %g", s.StdDev(), want)
	}
	var empty Summary
	if empty.Mean() != 0 || empty.StdDev() != 0 {
		t.Error("empty summary should read 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean(1,4)=%g want 2", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Errorf("geomean of non-positive should be 0, got %g", g)
	}
	// Non-positive entries are skipped.
	if g := GeoMean([]float64{0, 8, 2}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean skipping zeros = %g, want 4", g)
	}
}

func TestMeanMaxMin(t *testing.T) {
	v := []float64{3, 1, 2}
	if Mean(v) != 2 || Max(v) != 3 || Min(v) != 1 {
		t.Fatal("aggregate helpers broken")
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowF("beta", 2.5)
	out := tab.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "beta", "2.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tab.NumRows() != 2 {
		t.Errorf("NumRows=%d want 2", tab.NumRows())
	}
}

func TestTableCellOverflowTruncated(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("1", "2", "3", "4") // extra cells dropped
	if !strings.Contains(tab.String(), "1") || strings.Contains(tab.String(), "3") {
		t.Errorf("overflow cells not truncated:\n%s", tab.String())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "x", "y")
	tab.AddRow("1", "2")
	csv := tab.CSV()
	if csv != "x,y\n1,2\n" {
		t.Errorf("csv = %q", csv)
	}
}

func TestFmt(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		1.2345: "1.234",
		123.45: "123.5",
	}
	for in, want := range cases {
		if got := Fmt(in); got != want {
			t.Errorf("Fmt(%g)=%q want %q", in, got, want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("sorted keys wrong: %v", keys)
	}
}
