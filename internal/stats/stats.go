// Package stats provides the counters, aggregates and table formatting used
// by the simulator's evaluation harness.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing event counter.
type Counter struct {
	Name  string
	Value uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.Value += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Value++ }

// Set is a registry of named counters. The zero value is ready to use.
type Set struct {
	order    []string
	counters map[string]*Counter
}

// Counter returns the counter with the given name, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{Name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Get returns the value of a counter, or 0 if it was never created.
func (s *Set) Get(name string) uint64 {
	if s.counters == nil {
		return 0
	}
	if c, ok := s.counters[name]; ok {
		return c.Value
	}
	return 0
}

// Names returns the counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Merge adds all counters from o into s.
func (s *Set) Merge(o *Set) {
	for _, name := range o.order {
		s.Counter(name).Add(o.counters[name].Value)
	}
}

// Reset zeroes every counter while keeping the registry.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.Value = 0
	}
}

// String renders the counters as "name=value" lines in creation order.
func (s *Set) String() string {
	var b strings.Builder
	for _, name := range s.order {
		fmt.Fprintf(&b, "%s=%d\n", name, s.counters[name].Value)
	}
	return b.String()
}

// counterJSON is the wire form of one counter: an array of these keeps
// creation order across a JSON round trip (object keys would not).
type counterJSON struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// MarshalJSON encodes the set as an array of {name, value} pairs in
// creation order, so the snapshot schema is stable and order-preserving.
func (s *Set) MarshalJSON() ([]byte, error) {
	out := make([]counterJSON, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, counterJSON{Name: name, Value: s.counters[name].Value})
	}
	return json.Marshal(out)
}

// UnmarshalJSON rebuilds the registry from the array form, preserving the
// encoded order. Existing counters are merged (matching Merge semantics).
func (s *Set) UnmarshalJSON(data []byte) error {
	var in []counterJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	for _, c := range in {
		s.Counter(c.Name).Add(c.Value)
	}
	return nil
}

// Summary aggregates a stream of float64 samples.
type Summary struct {
	N          int
	Sum        float64
	SumSquares float64
	MinV       float64
	MaxV       float64
}

// Observe adds a sample to the summary.
func (s *Summary) Observe(v float64) {
	if s.N == 0 || v < s.MinV {
		s.MinV = v
	}
	if s.N == 0 || v > s.MaxV {
		s.MaxV = v
	}
	s.N++
	s.Sum += v
	s.SumSquares += v * v
}

// Mean returns the arithmetic mean of the observed samples (0 when empty).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// StdDev returns the population standard deviation of the samples.
func (s *Summary) StdDev() float64 {
	if s.N == 0 {
		return 0
	}
	m := s.Mean()
	v := s.SumSquares/float64(s.N) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// GeoMean returns the geometric mean of a slice of positive values; zero or
// negative entries are skipped. Returns 0 for an empty/filtered-empty slice.
func GeoMean(vals []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vals {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean of vals (0 when empty).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Max returns the maximum of vals (0 when empty).
func Max(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of vals (0 when empty).
func Min(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Table accumulates rows of values under named columns and renders them as
// an aligned text table (the harness uses this to print paper figures as
// rows, one workload per row).
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond len(Columns) are dropped, and missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowF appends a row where float cells are formatted with %.3g-style
// compact formatting via Fmt.
func (t *Table) AddRowF(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, Fmt(v))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the data rows (machine-readable export).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		row := make([]string, len(r))
		copy(row, r)
		out[i] = row
	}
	return out
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Fmt formats a float compactly for tables: integers without decimals,
// otherwise three significant decimals.
func Fmt(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// SortedKeys returns the map keys in sorted order; used for deterministic
// iteration when printing maps.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
