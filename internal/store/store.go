// Package store is the durable experiment store: a content-addressed,
// crash-safe on-disk cache of simulation results plus the golden-baseline
// regression checker built on top of it (baseline.go).
//
// Entries are opaque byte payloads keyed by a stable string (the farm and
// core key results by core.CacheKey); the key is hashed to a file path, so
// the store never trusts or parses keys. Each entry file is a one-line JSON
// header (schema version, key, payload checksum and size, caller manifest)
// followed by the raw payload. Writes go through a temp file, fsync and an
// atomic rename, so a crash mid-write can never leave a half-visible entry;
// reads verify the header and checksum and treat any corrupt, truncated or
// schema-mismatched file as a miss — the caller recomputes and rewrites,
// and the bad file is deleted. A size/count-bounded GC evicts the
// least-recently-used entries (file mtime, refreshed on every hit).
//
// All operations are safe under concurrent use from multiple goroutines
// and, thanks to the atomic-rename protocol, from multiple processes
// sharing one directory.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/telem"
)

// SchemaVersion identifies the entry-file layout. A file whose header
// carries any other value (e.g. one written by a future release) is
// treated as a miss, never an error.
const SchemaVersion = "pim-render/store/v1"

// Defaults used when Config fields are zero.
const (
	// DefaultMaxBytes bounds the store's total payload+header bytes.
	DefaultMaxBytes = 2 << 30 // 2 GiB
	// DefaultMaxEntries bounds the entry count.
	DefaultMaxEntries = 4096
)

const (
	entryExt  = ".ent"
	tmpPrefix = "tmp-"
	// tmpOrphanAge is how old a temp file must be before a scan treats it as
	// an orphan from a crashed writer. Live writers hold their temp file for
	// milliseconds; deleting only stale ones keeps GC rescans from racing an
	// in-flight Put (in this process or another sharing the directory).
	tmpOrphanAge = 15 * time.Minute
)

// Manifest is the caller-supplied description of an entry, stored in the
// header so entries are identifiable without decoding the payload.
type Manifest struct {
	// Key is the full cache key (set by Put; file names only carry its hash).
	Key string `json:"key"`
	// Workload and Design describe the simulated cell, when applicable.
	Workload string `json:"workload,omitempty"`
	Design   string `json:"design,omitempty"`
	// PayloadSchema names the payload encoding (e.g. pim-render/result/v1).
	PayloadSchema string `json:"payload_schema,omitempty"`
	// SimVersion is the simulator revision that produced the payload;
	// consumers treat a mismatch as a miss and recompute.
	SimVersion string `json:"sim_version,omitempty"`
	// CreatedUnix is the write time (seconds); informational only — GC uses
	// file mtimes, which hits refresh.
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// header is the first line of an entry file.
type header struct {
	Schema        string   `json:"schema"`
	Key           string   `json:"key"`
	PayloadSHA256 string   `json:"payload_sha256"`
	PayloadSize   int64    `json:"payload_size"`
	Manifest      Manifest `json:"manifest"`
}

// Config configures a Store.
type Config struct {
	// Dir is the store root; it is created if missing.
	Dir string
	// MaxBytes bounds total on-disk bytes; <= 0 selects DefaultMaxBytes.
	MaxBytes int64
	// MaxEntries bounds the entry count; <= 0 selects DefaultMaxEntries.
	MaxEntries int
	// Tracer, when non-nil, receives hit/miss/put/evict instants on the
	// "store" track (wall-clock microseconds since Open).
	Tracer *obs.Tracer
	// Metrics is the live-telemetry registry the store publishes
	// pim_store_* series into; nil selects telem.Default().
	Metrics *telem.Registry
}

// storeMetrics holds the store's live-telemetry instruments.
type storeMetrics struct {
	hits, misses, corrupt    *telem.Counter
	puts, putErrs, evictions *telem.Counter
	entries, bytes           *telem.Gauge
}

func newStoreMetrics(r *telem.Registry) storeMetrics {
	ops := func(op string) *telem.Counter {
		return r.Counter("pim_store_ops_total",
			"Durable result-store operations by outcome (hit, miss, corrupt, put, put_error, evict).",
			telem.Labels{"op": op})
	}
	return storeMetrics{
		hits:      ops("hit"),
		misses:    ops("miss"),
		corrupt:   ops("corrupt"),
		puts:      ops("put"),
		putErrs:   ops("put_error"),
		evictions: ops("evict"),
		entries: r.Gauge("pim_store_entries",
			"Entries currently in the durable result store.", nil),
		bytes: r.Gauge("pim_store_bytes",
			"Bytes currently on disk in the durable result store.", nil),
	}
}

// Counters is a point-in-time snapshot of store activity.
type Counters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Corrupt   uint64 `json:"corrupt"`
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"put_errors"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// Store is a content-addressed on-disk cache. Safe for concurrent use.
type Store struct {
	cfg Config
	t0  time.Time
	met storeMetrics

	mu      sync.Mutex
	entries int
	bytes   int64

	hits      uint64
	misses    uint64
	corrupt   uint64
	puts      uint64
	putErrors uint64
	evictions uint64
}

// Open builds a store rooted at cfg.Dir, creating the directory tree if
// needed, sweeping orphaned temp files from crashed writers, and counting
// the surviving entries toward the GC bounds.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: no directory configured")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telem.Default()
	}
	s := &Store{cfg: cfg, t0: time.Now(), met: newStoreMetrics(reg)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.scanLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store root directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// EntryPath returns the file path an entry for key lives at (whether or
// not it exists). Exposed so tests can inject corruption.
func (s *Store) EntryPath(key string) string {
	h := sha256.Sum256([]byte(key))
	hx := hex.EncodeToString(h[:])
	return filepath.Join(s.cfg.Dir, "objects", hx[:2], hx+entryExt)
}

// Get returns the payload and manifest stored for key. Any defect — a
// missing file, truncation, checksum or key mismatch, or an unknown schema
// version — is a miss (corrupt files are also deleted so the caller's
// rewrite starts clean). A hit refreshes the entry's mtime for LRU GC.
func (s *Store) Get(key string) ([]byte, Manifest, bool) {
	path := s.EntryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		s.met.misses.Inc()
		s.trace("miss", 0)
		return nil, Manifest{}, false
	}
	payload, man, err := decodeEntry(key, raw)
	if err != nil {
		s.discardCorrupt(path, int64(len(raw)))
		s.trace("corrupt", int64(len(raw)))
		return nil, Manifest{}, false
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // best-effort LRU recency
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	s.met.hits.Inc()
	s.trace("hit", int64(len(payload)))
	return payload, man, true
}

// Put atomically writes an entry for key: temp file in the target
// directory, fsync, rename. An existing entry is replaced. When the write
// pushes the store over its bounds, the least-recently-used entries are
// evicted.
func (s *Store) Put(key string, man Manifest, payload []byte) error {
	man.Key = key
	if man.CreatedUnix == 0 {
		man.CreatedUnix = time.Now().Unix()
	}
	sum := sha256.Sum256(payload)
	hdr, err := json.Marshal(header{
		Schema:        SchemaVersion,
		Key:           key,
		PayloadSHA256: hex.EncodeToString(sum[:]),
		PayloadSize:   int64(len(payload)),
		Manifest:      man,
	})
	if err != nil {
		return s.putErr(fmt.Errorf("store: marshal header: %w", err))
	}
	data := make([]byte, 0, len(hdr)+1+len(payload))
	data = append(data, hdr...)
	data = append(data, '\n')
	data = append(data, payload...)

	path := s.EntryPath(key)
	var oldSize int64
	replaced := false
	if fi, err := os.Stat(path); err == nil {
		oldSize, replaced = fi.Size(), true
	}
	if err := writeFileAtomic(path, data); err != nil {
		return s.putErr(fmt.Errorf("store: %w", err))
	}

	s.mu.Lock()
	s.puts++
	s.bytes += int64(len(data)) - oldSize
	if !replaced {
		s.entries++
	}
	over := s.entries > s.cfg.MaxEntries || s.bytes > s.cfg.MaxBytes
	if over {
		s.gcLocked()
	}
	s.syncGaugesLocked()
	s.mu.Unlock()
	s.met.puts.Inc()
	s.trace("put", int64(len(data)))
	return nil
}

// Len returns the tracked entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries
}

// Size returns the tracked on-disk byte total.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Counters snapshots store activity.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Hits:      s.hits,
		Misses:    s.misses,
		Corrupt:   s.corrupt,
		Puts:      s.puts,
		PutErrors: s.putErrors,
		Evictions: s.evictions,
		Entries:   s.entries,
		Bytes:     s.bytes,
	}
}

// GC rescans the directory (correcting for other processes sharing it) and
// evicts least-recently-used entries until the store is within its bounds.
// It returns how many entries were evicted.
func (s *Store) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked()
}

// entryInfo is one on-disk entry seen by a scan.
type entryInfo struct {
	path  string
	size  int64
	mtime time.Time
}

// scanLocked walks the objects tree, deletes orphaned temp files, resets
// the tracked entry/byte totals and returns the entries found.
// Caller holds s.mu.
func (s *Store) scanLocked() ([]entryInfo, error) {
	var ents []entryInfo
	root := filepath.Join(s.cfg.Dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // a vanished file is not an error; GC races are fine
		}
		name := d.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			if fi, err := d.Info(); err == nil && time.Since(fi.ModTime()) > tmpOrphanAge {
				_ = os.Remove(path) // orphan from a crashed writer
			}
			return nil
		}
		if !strings.HasSuffix(name, entryExt) {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		ents = append(ents, entryInfo{path: path, size: fi.Size(), mtime: fi.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	s.entries = len(ents)
	s.bytes = 0
	for _, e := range ents {
		s.bytes += e.size
	}
	s.syncGaugesLocked()
	return ents, nil
}

// gcLocked evicts oldest-mtime entries until within bounds. Caller holds
// s.mu.
func (s *Store) gcLocked() int {
	ents, err := s.scanLocked()
	if err != nil {
		return 0
	}
	if s.entries <= s.cfg.MaxEntries && s.bytes <= s.cfg.MaxBytes {
		return 0
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mtime.Before(ents[j].mtime) })
	evicted := 0
	for _, e := range ents {
		if s.entries <= s.cfg.MaxEntries && s.bytes <= s.cfg.MaxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			s.entries--
			s.bytes -= e.size
			s.evictions++
			evicted++
			s.met.evictions.Inc()
			s.trace("evict", e.size)
		}
	}
	s.syncGaugesLocked()
	return evicted
}

// syncGaugesLocked mirrors the tracked entry/byte totals into the live
// gauges. Caller holds s.mu.
func (s *Store) syncGaugesLocked() {
	s.met.entries.Set(float64(s.entries))
	s.met.bytes.Set(float64(s.bytes))
}

// discardCorrupt deletes a defective entry file and counts it as a miss.
func (s *Store) discardCorrupt(path string, size int64) {
	removed := os.Remove(path) == nil
	s.mu.Lock()
	s.misses++
	s.corrupt++
	if removed {
		s.entries--
		s.bytes -= size
	}
	s.syncGaugesLocked()
	s.mu.Unlock()
	s.met.misses.Inc()
	s.met.corrupt.Inc()
}

func (s *Store) putErr(err error) error {
	s.mu.Lock()
	s.putErrors++
	s.mu.Unlock()
	s.met.putErrs.Inc()
	return err
}

// decodeEntry validates an entry file against the requested key and
// returns its payload and manifest.
func decodeEntry(key string, raw []byte) ([]byte, Manifest, error) {
	nl := -1
	for i, b := range raw {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, Manifest{}, fmt.Errorf("store: truncated entry (no header)")
	}
	var h header
	if err := json.Unmarshal(raw[:nl], &h); err != nil {
		return nil, Manifest{}, fmt.Errorf("store: corrupt header: %w", err)
	}
	if h.Schema != SchemaVersion {
		return nil, Manifest{}, fmt.Errorf("store: schema %q (want %q)", h.Schema, SchemaVersion)
	}
	if h.Key != key {
		return nil, Manifest{}, fmt.Errorf("store: entry key %q does not match %q", h.Key, key)
	}
	payload := raw[nl+1:]
	if int64(len(payload)) != h.PayloadSize {
		return nil, Manifest{}, fmt.Errorf("store: truncated payload: %d bytes, header says %d",
			len(payload), h.PayloadSize)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.PayloadSHA256 {
		return nil, Manifest{}, fmt.Errorf("store: payload checksum mismatch")
	}
	return payload, h.Manifest, nil
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync and rename, then best-effort fsyncs the directory so the rename
// itself is durable.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, tmpPrefix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// trace emits one store lifecycle instant when a tracer is attached.
func (s *Store) trace(name string, bytes int64) {
	if !s.cfg.Tracer.On() {
		return
	}
	at := time.Since(s.t0).Microseconds()
	s.cfg.Tracer.SpanArg("store", name, at, at, "bytes", bytes)
}
