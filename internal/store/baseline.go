package store

// Golden-baseline regression checking: paperbench -write-baseline snapshots
// every experiment's table and summary metrics into a directory of small
// JSON documents, and -check diffs a fresh run against them within
// per-metric tolerances, producing a readable per-experiment report and a
// non-zero exit on drift. The committed golden/ directory plus a CI job
// guard the paper's reproduced shapes (the A-TFIM filtering speedup, the
// S-TFIM traffic blow-up, the Fig. 14-16 threshold knee) against silent
// regression.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// BaselineSchema identifies the golden-baseline document layout.
const BaselineSchema = "pim-render/baseline/v1"

// Default tolerances for metric comparison. The simulator is deterministic,
// so the defaults are tight; per-metric overrides loosen individual
// comparisons (see TolerancesFile).
const (
	DefaultRelTol = 1e-6
	DefaultAbsTol = 1e-9
)

// TolerancesFile, when present in the baseline directory, maps
// "<experiment>.<metric>" to a relative tolerance overriding the default
// for that one comparison.
const TolerancesFile = "tolerances.json"

// BaselineDoc is one committed golden baseline (one experiment).
type BaselineDoc struct {
	Schema string `json:"schema"`
	// Set names the workload set the baseline was recorded on.
	Set        string               `json:"set,omitempty"`
	Experiment obs.ExperimentResult `json:"experiment"`
}

// WriteBaselines writes one golden-baseline file per experiment in set
// (atomically, so an interrupted write never corrupts a committed golden
// directory) and returns how many it wrote.
func WriteBaselines(dir string, set *obs.ExperimentSet) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	n := 0
	for _, e := range set.Experiments {
		if strings.ContainsAny(e.Name, `/\`) {
			return n, fmt.Errorf("baseline: unsafe experiment name %q", e.Name)
		}
		doc := BaselineDoc{Schema: BaselineSchema, Set: set.Set, Experiment: e}
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return n, fmt.Errorf("baseline: %s: %w", e.Name, err)
		}
		data = append(data, '\n')
		if err := writeFileAtomic(filepath.Join(dir, e.Name+".json"), data); err != nil {
			return n, fmt.Errorf("baseline: %s: %w", e.Name, err)
		}
		n++
	}
	return n, nil
}

// LoadBaseline reads one golden baseline by experiment name.
func LoadBaseline(dir, name string) (*BaselineDoc, error) {
	data, err := os.ReadFile(filepath.Join(dir, name+".json"))
	if err != nil {
		return nil, err
	}
	var doc BaselineDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("baseline: %s: %w", name, err)
	}
	if doc.Schema != BaselineSchema {
		return nil, fmt.Errorf("baseline: %s: schema %q (want %q)", name, doc.Schema, BaselineSchema)
	}
	return &doc, nil
}

// Tolerance configures metric comparison for Check.
type Tolerance struct {
	// Rel is the relative tolerance; <= 0 selects DefaultRelTol.
	Rel float64
	// Abs is the absolute floor (guards near-zero baselines); <= 0 selects
	// DefaultAbsTol.
	Abs float64
	// PerMetric maps "<experiment>.<metric>" to a relative tolerance
	// overriding Rel for that comparison.
	PerMetric map[string]float64
}

// allowed returns the permitted absolute deviation for one metric.
func (t Tolerance) allowed(exp, metric string, baseline float64) float64 {
	rel := t.Rel
	if rel <= 0 {
		rel = DefaultRelTol
	}
	abs := t.Abs
	if abs <= 0 {
		abs = DefaultAbsTol
	}
	if o, ok := t.PerMetric[exp+"."+metric]; ok {
		rel = o
	}
	d := rel * math.Abs(baseline)
	if d < abs {
		d = abs
	}
	return d
}

// Drift is one detected divergence from a golden baseline.
type Drift struct {
	Experiment string `json:"experiment"`
	// Metric is the summary metric that drifted ("" for structural drift:
	// changed columns, row counts or row labels).
	Metric   string  `json:"metric,omitempty"`
	Reason   string  `json:"reason"`
	Baseline float64 `json:"baseline,omitempty"`
	Current  float64 `json:"current,omitempty"`
}

// CheckReport is the outcome of one baseline check.
type CheckReport struct {
	Dir string `json:"dir"`
	// OK lists experiments that matched their baselines.
	OK []string `json:"ok,omitempty"`
	// Missing lists experiments that ran but have no committed baseline.
	Missing []string `json:"missing,omitempty"`
	// Drifts lists every divergence found.
	Drifts []Drift `json:"drifts,omitempty"`
	// Metrics counts the metric comparisons performed.
	Metrics int `json:"metrics"`
}

// Failed reports whether the check should fail the run.
func (r *CheckReport) Failed() bool { return len(r.Missing) > 0 || len(r.Drifts) > 0 }

// Write renders the readable per-experiment report.
func (r *CheckReport) Write(w io.Writer) {
	drifted := map[string][]Drift{}
	for _, d := range r.Drifts {
		drifted[d.Experiment] = append(drifted[d.Experiment], d)
	}
	names := append([]string{}, r.OK...)
	for name := range drifted {
		names = append(names, name)
	}
	names = append(names, r.Missing...)
	sort.Strings(names)
	missing := map[string]bool{}
	for _, name := range r.Missing {
		missing[name] = true
	}
	fmt.Fprintf(w, "baseline check against %s (%d experiments, %d metrics):\n",
		r.Dir, len(names), r.Metrics)
	for _, name := range names {
		switch {
		case missing[name]:
			fmt.Fprintf(w, "  %-10s MISSING (no committed baseline; run -write-baseline)\n", name)
		case len(drifted[name]) > 0:
			fmt.Fprintf(w, "  %-10s DRIFT\n", name)
			for _, d := range drifted[name] {
				if d.Metric != "" {
					fmt.Fprintf(w, "    %s: baseline %.6g, current %.6g — %s\n",
						d.Metric, d.Baseline, d.Current, d.Reason)
				} else {
					fmt.Fprintf(w, "    %s\n", d.Reason)
				}
			}
		default:
			fmt.Fprintf(w, "  %-10s OK\n", name)
		}
	}
	if r.Failed() {
		fmt.Fprintf(w, "baseline check: FAIL (%d drifted, %d missing)\n",
			len(drifted), len(r.Missing))
	} else {
		fmt.Fprintf(w, "baseline check: PASS\n")
	}
}

// Check compares every experiment in set against the golden baselines in
// dir. Experiments without a baseline are reported as Missing; committed
// baselines for experiments that did not run are ignored (so -exp
// selections check only what ran). A tolerances.json file in dir supplies
// per-metric overrides (entries already present in tol.PerMetric win).
func Check(dir string, set *obs.ExperimentSet, tol Tolerance) (*CheckReport, error) {
	if overrides, err := loadTolerances(dir); err != nil {
		return nil, err
	} else if len(overrides) > 0 {
		merged := make(map[string]float64, len(overrides)+len(tol.PerMetric))
		for k, v := range overrides {
			merged[k] = v
		}
		for k, v := range tol.PerMetric {
			merged[k] = v
		}
		tol.PerMetric = merged
	}
	rep := &CheckReport{Dir: dir}
	for _, cur := range set.Experiments {
		doc, err := LoadBaseline(dir, cur.Name)
		if err != nil {
			if os.IsNotExist(err) {
				rep.Missing = append(rep.Missing, cur.Name)
				continue
			}
			return nil, err
		}
		drifts, metrics := compareExperiment(&doc.Experiment, &cur, tol)
		rep.Metrics += metrics
		if len(drifts) == 0 {
			rep.OK = append(rep.OK, cur.Name)
		} else {
			rep.Drifts = append(rep.Drifts, drifts...)
		}
	}
	return rep, nil
}

// compareExperiment diffs one current experiment against its baseline:
// table structure (columns, row count, row labels) exactly, summary
// metrics within tolerance.
func compareExperiment(base, cur *obs.ExperimentResult, tol Tolerance) ([]Drift, int) {
	var drifts []Drift
	structural := func(reason string) {
		drifts = append(drifts, Drift{Experiment: cur.Name, Reason: reason})
	}
	if strings.Join(base.Columns, "|") != strings.Join(cur.Columns, "|") {
		structural(fmt.Sprintf("columns changed: baseline %v, current %v", base.Columns, cur.Columns))
	}
	if len(base.Rows) != len(cur.Rows) {
		structural(fmt.Sprintf("row count changed: baseline %d, current %d", len(base.Rows), len(cur.Rows)))
	} else {
		for i := range base.Rows {
			if len(base.Rows[i]) == 0 || len(cur.Rows[i]) == 0 {
				continue
			}
			if base.Rows[i][0] != cur.Rows[i][0] {
				structural(fmt.Sprintf("row %d label changed: baseline %q, current %q",
					i, base.Rows[i][0], cur.Rows[i][0]))
			}
		}
	}

	metrics := 0
	for _, name := range sortedMetricNames(base.Summary) {
		want := base.Summary[name]
		got, ok := cur.Summary[name]
		if !ok {
			drifts = append(drifts, Drift{
				Experiment: cur.Name, Metric: name, Baseline: want,
				Reason: "metric missing from current run",
			})
			continue
		}
		metrics++
		allowed := tol.allowed(cur.Name, name, want)
		if diff := math.Abs(got - want); diff > allowed || math.IsNaN(got) {
			drifts = append(drifts, Drift{
				Experiment: cur.Name, Metric: name, Baseline: want, Current: got,
				Reason: fmt.Sprintf("|Δ| %.6g exceeds tolerance %.6g", diff, allowed),
			})
		}
	}
	for _, name := range sortedMetricNames(cur.Summary) {
		if _, ok := base.Summary[name]; !ok {
			drifts = append(drifts, Drift{
				Experiment: cur.Name, Metric: name, Current: cur.Summary[name],
				Reason: "metric not in baseline (re-record with -write-baseline)",
			})
		}
	}
	return drifts, metrics
}

// loadTolerances reads the optional per-metric override file.
func loadTolerances(dir string) (map[string]float64, error) {
	data, err := os.ReadFile(filepath.Join(dir, TolerancesFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("baseline: %s: %w", TolerancesFile, err)
	}
	return m, nil
}

func sortedMetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
