package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleSet() *obs.ExperimentSet {
	set := obs.NewExperimentSet("mini")
	set.Experiments = append(set.Experiments, obs.ExperimentResult{
		Name:    "fig10",
		Title:   "Filtering time",
		Columns: []string{"workload", "baseline", "atfim"},
		Rows: [][]string{
			{"doom3-320x240", "1.00", "0.42"},
			{"fear-320x240", "1.00", "0.45"},
		},
		Summary: map[string]float64{"speedup.geomean": 2.31, "traffic.ratio": 0.87},
	}, obs.ExperimentResult{
		Name:    "fig12",
		Title:   "Traffic",
		Columns: []string{"workload", "bytes"},
		Rows:    [][]string{{"doom3-320x240", "123"}},
		Summary: map[string]float64{"traffic.total": 123456},
	})
	return set
}

func TestBaselineWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	set := sampleSet()
	n, err := WriteBaselines(dir, set)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("wrote %d baselines, want 2", n)
	}
	doc, err := LoadBaseline(dir, "fig10")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != BaselineSchema || doc.Set != "mini" {
		t.Fatalf("doc header: %+v", doc)
	}
	if doc.Experiment.Summary["speedup.geomean"] != 2.31 {
		t.Fatalf("summary did not round-trip: %+v", doc.Experiment.Summary)
	}
}

func TestBaselineRejectsUnsafeNames(t *testing.T) {
	set := obs.NewExperimentSet("mini")
	set.Experiments = append(set.Experiments, obs.ExperimentResult{Name: "../escape"})
	if _, err := WriteBaselines(t.TempDir(), set); err == nil {
		t.Fatal("WriteBaselines accepted a path-traversal name")
	}
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteBaselines(dir, sampleSet()); err != nil {
		t.Fatal(err)
	}
	cur := sampleSet()
	cur.Experiments[0].Summary["speedup.geomean"] *= 1 + 1e-9 // well inside 1e-6

	rep, err := Check(dir, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("check failed: %+v", rep)
	}
	if len(rep.OK) != 2 || rep.Metrics != 3 {
		t.Fatalf("ok=%v metrics=%d", rep.OK, rep.Metrics)
	}
}

func TestCheckDetectsDrift(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteBaselines(dir, sampleSet()); err != nil {
		t.Fatal(err)
	}
	cur := sampleSet()
	cur.Experiments[0].Summary["speedup.geomean"] = 2.5 // ~8% off

	rep, err := Check(dir, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || len(rep.Drifts) != 1 {
		t.Fatalf("drifts: %+v", rep.Drifts)
	}
	d := rep.Drifts[0]
	if d.Experiment != "fig10" || d.Metric != "speedup.geomean" || d.Baseline != 2.31 || d.Current != 2.5 {
		t.Fatalf("drift: %+v", d)
	}

	// The readable report names the drift and ends with FAIL.
	var sb strings.Builder
	rep.Write(&sb)
	out := sb.String()
	for _, want := range []string{"fig10", "DRIFT", "speedup.geomean", "FAIL", "fig12"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCheckStructuralDrift(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteBaselines(dir, sampleSet()); err != nil {
		t.Fatal(err)
	}
	cur := sampleSet()
	cur.Experiments[0].Columns = []string{"workload", "baseline"}  // column dropped
	cur.Experiments[1].Rows = append(cur.Experiments[1].Rows, nil) // row added
	delete(cur.Experiments[0].Summary, "traffic.ratio")            // metric vanished
	cur.Experiments[0].Summary["speedup.arith"] = 2.0              // metric appeared

	rep, err := Check(dir, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Drifts) != 4 {
		t.Fatalf("drifts = %d, want 4: %+v", len(rep.Drifts), rep.Drifts)
	}
}

func TestCheckMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	set := sampleSet()
	// Only fig10 is committed; fig12 ran without a baseline.
	one := obs.NewExperimentSet("mini")
	one.Experiments = set.Experiments[:1]
	if _, err := WriteBaselines(dir, one); err != nil {
		t.Fatal(err)
	}

	rep, err := Check(dir, set, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || len(rep.Missing) != 1 || rep.Missing[0] != "fig12" {
		t.Fatalf("missing = %v", rep.Missing)
	}

	// The reverse is fine: a committed baseline for an experiment that did
	// not run (e.g. -exp selection) is ignored.
	rep, err = Check(dir, one, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("selection check failed: %+v", rep)
	}
}

func TestCheckPerMetricToleranceFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteBaselines(dir, sampleSet()); err != nil {
		t.Fatal(err)
	}
	cur := sampleSet()
	cur.Experiments[0].Summary["speedup.geomean"] = 2.33 // ~0.9% off

	rep, err := Check(dir, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("0.9%% drift passed the default 1e-6 tolerance")
	}

	// A tolerances.json override loosens just that metric.
	overrides := []byte(`{"fig10.speedup.geomean": 0.05}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, TolerancesFile), overrides, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Check(dir, cur, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("override did not apply: %+v", rep.Drifts)
	}
}
