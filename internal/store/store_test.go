package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	key := "doom3-320x240/3/0.50000/false/false/false/false/4/0/1/1"
	man := Manifest{Workload: "doom3-320x240", Design: "A-TFIM", PayloadSchema: "pim-render/result/v1", SimVersion: "1"}
	payload := []byte("payload bytes, not parsed by the store\x00\x01\x02")

	if _, _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, man, payload); err != nil {
		t.Fatal(err)
	}
	got, gotMan, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round-trip: got %q", got)
	}
	if gotMan.Key != key || gotMan.Workload != man.Workload || gotMan.SimVersion != man.SimVersion {
		t.Fatalf("manifest round-trip: %+v", gotMan)
	}
	if gotMan.CreatedUnix == 0 {
		t.Error("Put did not stamp CreatedUnix")
	}

	// Replacing a key keeps one entry and the byte total consistent.
	bigger := append(payload, payload...)
	if err := s.Put(key, man, bigger); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("entries = %d after replace, want 1", s.Len())
	}
	got, _, _ = s.Get(key)
	if !bytes.Equal(got, bigger) {
		t.Fatal("replace did not take")
	}

	c := s.Counters()
	if c.Hits != 2 || c.Misses != 1 || c.Puts != 2 || c.Corrupt != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestCrashSafety injects the damage a crash or a future release can leave
// behind; every variant must load cleanly as a miss, be deleted, and be
// recomputable via a fresh Put.
func TestCrashSafety(t *testing.T) {
	key := "the-key"
	man := Manifest{Workload: "w"}
	payload := []byte("the payload, long enough to truncate meaningfully")

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated payload", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated header", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(`{"schema":"pim-`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty file", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"checksum flip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"future schema version", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw = bytes.Replace(raw, []byte("pim-render/store/v1"), []byte("pim-render/store/v9"), 1)
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"header for a different key", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw = bytes.ReplaceAll(raw, []byte(`"the-key"`), []byte(`"not-key"`))
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openTest(t, Config{})
			if err := s.Put(key, man, payload); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, s.EntryPath(key))

			if _, _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if c := s.Counters(); c.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1 (%+v)", c.Corrupt, c)
			}
			if _, err := os.Stat(s.EntryPath(key)); !os.IsNotExist(err) {
				t.Error("corrupt entry file was not deleted")
			}

			// The caller's recompute-and-rewrite path fully recovers.
			if err := s.Put(key, man, payload); err != nil {
				t.Fatal(err)
			}
			got, _, ok := s.Get(key)
			if !ok || !bytes.Equal(got, payload) {
				t.Fatal("rewrite after corruption did not recover the entry")
			}
		})
	}
}

// TestOpenSweepsOrphanedTempFiles simulates a writer killed mid-Put: the
// temp file it left behind is removed by the next Open and never counted.
func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, Config{Dir: dir})
	if err := s.Put("k", Manifest{}, []byte("v")); err != nil {
		t.Fatal(err)
	}
	bucket := filepath.Dir(s.EntryPath("k"))
	orphan := filepath.Join(bucket, tmpPrefix+"123456")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-2 * tmpOrphanAge)
	if err := os.Chtimes(orphan, stale, stale); err != nil {
		t.Fatal(err)
	}
	// A fresh temp file could belong to a live writer in another process;
	// the sweep must leave it alone.
	fresh := filepath.Join(bucket, tmpPrefix+"654321")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, Config{Dir: dir})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("Open left the stale orphaned temp file in place")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("Open swept a fresh temp file that may belong to a live writer")
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store counts %d entries, want 1", s2.Len())
	}
	if _, _, ok := s2.Get("k"); !ok {
		t.Fatal("entry lost across reopen")
	}
}

func TestGCEvictsLRU(t *testing.T) {
	s := openTest(t, Config{MaxEntries: 3})
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := s.Put(key, Manifest{}, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		// Deterministic recency: key-0 oldest … key-2 newest.
		at := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.EntryPath(key), at, at); err != nil {
			t.Fatal(err)
		}
	}

	// A Get refreshes recency, so key-0 is no longer the eviction victim.
	if _, _, ok := s.Get("key-0"); !ok {
		t.Fatal("miss on key-0")
	}

	if err := s.Put("key-3", Manifest{}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("entries = %d after GC, want 3", s.Len())
	}
	if _, _, ok := s.Get("key-1"); ok {
		t.Error("key-1 (least recently used) survived GC")
	}
	for _, k := range []string{"key-0", "key-2", "key-3"} {
		if _, _, ok := s.Get(k); !ok {
			t.Errorf("%s was evicted, want key-1 only", k)
		}
	}
	if c := s.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
}

func TestGCBoundsBytes(t *testing.T) {
	s := openTest(t, Config{MaxBytes: 4096})
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), Manifest{}, payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Size(); got > 4096 {
		t.Fatalf("store size %d exceeds MaxBytes 4096 after GC", got)
	}
	if s.Len() == 0 || s.Len() >= 8 {
		t.Fatalf("entries = %d, want some evicted and some kept", s.Len())
	}
}

// TestConcurrentAccess hammers one store from many goroutines (run under
// -race in CI) mixing puts, gets, corruption and GC.
func TestConcurrentAccess(t *testing.T) {
	s := openTest(t, Config{MaxEntries: 16})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", i%20)
				switch i % 4 {
				case 0, 1:
					if err := s.Put(key, Manifest{}, []byte(strings.Repeat("v", i+1))); err != nil {
						t.Error(err)
					}
				case 2:
					s.Get(key)
				case 3:
					if w == 0 {
						s.GC()
					} else {
						s.Get(key)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 16 {
		t.Fatalf("entries = %d, want <= MaxEntries", s.Len())
	}
	// GC rescans the directory, so the tracked totals agree with disk after
	// the dust settles.
	s.GC()
	if c := s.Counters(); c.Entries > 16 {
		t.Fatalf("entries after GC = %d", c.Entries)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with no dir succeeded")
	}
}
