// Package area reproduces the paper's Section VII-E design-overhead
// analysis with a small CACTI/McPAT-style model at 28 nm: SRAM area per KB,
// floating-point vector ALU area, and the reference die areas the paper
// uses (8 Gb DRAM die ~ 226.1 mm^2, GPU ~ 136.7 mm^2).
package area

import "repro/internal/config"

// Constants of the 28 nm model and the paper's reference areas.
const (
	// SRAMmm2PerKB is the estimated SRAM macro area per KB at 28 nm,
	// including peripheral overhead.
	SRAMmm2PerKB = 0.0045
	// FPALUmm2 is one 32-bit floating-point ALU lane.
	FPALUmm2 = 0.19
	// DRAMDiemm2 is the 8 Gb stacked DRAM die area the paper cites.
	DRAMDiemm2 = 226.1
	// GPUDiemm2 is the host GPU die area the paper cites.
	GPUDiemm2 = 136.7
)

// HMCOverhead is the logic-layer cost of A-TFIM.
type HMCOverhead struct {
	// ParentTexelBufferKB is the PTB storage (256 x 45 bits = 1.41 KB).
	ParentTexelBufferKB float64
	// ConsolidationKB is the Child Texel Consolidation pair buffer (0.5 KB).
	ConsolidationKB float64
	// StorageMM2 is the buffer area.
	StorageMM2 float64
	// LogicMM2 is the Texel Generator + Combination Unit ALU area.
	LogicMM2 float64
	// TotalMM2 and FractionOfDie summarize the overhead.
	TotalMM2      float64
	FractionOfDie float64
}

// GPUOverhead is the host-GPU cost of A-TFIM's camera-angle tags.
type GPUOverhead struct {
	// AngleBitsPerLine is the per-cache-line angle tag width (7 bits for
	// 1-degree accuracy).
	AngleBitsPerLine int
	// L1ExtraKB / L2ExtraKB are per-cache additions.
	L1ExtraKB, L2ExtraKB float64
	// TotalKB is the whole-GPU storage addition (all texture units).
	TotalKB float64
	// TotalMM2 and FractionOfDie summarize the overhead.
	TotalMM2      float64
	FractionOfDie float64
}

// entryBits is the Parent Texel Buffer entry width: parent texel ID (8) +
// temporary value (32) + filtered flag (1) + unfetched-child count (4).
const entryBits = 8 + 32 + 1 + 4

// ComputeHMC evaluates the logic-layer overhead for a configuration.
func ComputeHMC(cfg config.Config) HMCOverhead {
	var o HMCOverhead
	o.ParentTexelBufferKB = float64(cfg.TFIM.ParentTexelBufferEntries*entryBits) / (1024 * 8)
	// Consolidation: one child-parent pair ID (16 bits) per entry.
	o.ConsolidationKB = float64(cfg.TFIM.ParentTexelBufferEntries*16) / (1024 * 8)
	o.StorageMM2 = (o.ParentTexelBufferKB + o.ConsolidationKB) * SRAMmm2PerKB * 100
	// The paper reports 1.12 mm^2 for ~1.9 KB of buffering: small SRAMs are
	// dominated by periphery, hence the x100 small-macro factor above.
	o.LogicMM2 = float64(cfg.TFIM.TexelGenALUs+cfg.TFIM.CombineALUs) * FPALUmm2
	o.TotalMM2 = o.StorageMM2 + o.LogicMM2
	o.FractionOfDie = o.TotalMM2 / DRAMDiemm2
	return o
}

// ComputeGPU evaluates the host-GPU overhead for a configuration.
func ComputeGPU(cfg config.Config) GPUOverhead {
	var o GPUOverhead
	o.AngleBitsPerLine = 7
	l1Lines := cfg.GPU.TexL1KB * 1024 / 64
	l2Lines := cfg.GPU.TexL2KB * 1024 / 64
	o.L1ExtraKB = float64(l1Lines*o.AngleBitsPerLine) / (1024 * 8)
	o.L2ExtraKB = float64(l2Lines*o.AngleBitsPerLine) / (1024 * 8)
	o.TotalKB = o.L1ExtraKB*float64(cfg.GPU.TextureUnits) + o.L2ExtraKB
	// Tag bits integrate into existing arrays: plain SRAM density applies,
	// with a 16x routing factor for distributed small additions.
	o.TotalMM2 = o.TotalKB * SRAMmm2PerKB * 16
	o.FractionOfDie = o.TotalMM2 / GPUDiemm2
	return o
}
