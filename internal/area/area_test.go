package area

import (
	"math"
	"testing"

	"repro/internal/config"
)

func TestParentTexelBufferMatchesPaper(t *testing.T) {
	// Section VII-E: 256 entries x 45 bits = 1.41 KB.
	o := ComputeHMC(config.Default(config.ATFIM))
	if math.Abs(o.ParentTexelBufferKB-1.41) > 0.01 {
		t.Fatalf("PTB %.3f KB, paper says 1.41 KB", o.ParentTexelBufferKB)
	}
	if math.Abs(o.ConsolidationKB-0.5) > 0.01 {
		t.Fatalf("consolidation buffer %.3f KB, paper says 0.5 KB", o.ConsolidationKB)
	}
}

func TestHMCOverheadFractionInPaperBand(t *testing.T) {
	// The paper reports 3.18% of an 8Gb DRAM die; our CACTI-like model
	// should land in the same low-single-digit band.
	o := ComputeHMC(config.Default(config.ATFIM))
	if o.FractionOfDie < 0.01 || o.FractionOfDie > 0.06 {
		t.Fatalf("HMC overhead %.2f%% outside the paper's band", 100*o.FractionOfDie)
	}
	if o.TotalMM2 != o.StorageMM2+o.LogicMM2 {
		t.Fatal("total != storage + logic")
	}
}

func TestGPUAngleTagStorageMatchesPaper(t *testing.T) {
	// Section VII-E: 7 bits per line; 0.21 KB per L1, 1.75 KB for L2,
	// 4.2 KB total with 16 texture units.
	o := ComputeGPU(config.Default(config.ATFIM))
	if o.AngleBitsPerLine != 7 {
		t.Fatalf("angle bits %d want 7", o.AngleBitsPerLine)
	}
	if math.Abs(o.L1ExtraKB-0.21) > 0.02 {
		t.Fatalf("L1 extra %.3f KB, paper says 0.21 KB", o.L1ExtraKB)
	}
	if math.Abs(o.L2ExtraKB-1.75) > 0.02 {
		t.Fatalf("L2 extra %.3f KB, paper says 1.75 KB", o.L2ExtraKB)
	}
	if math.Abs(o.TotalKB-(0.21*16+1.75)) > 0.2 {
		t.Fatalf("total %.2f KB, paper says ~5.1 KB across the GPU", o.TotalKB)
	}
}

func TestGPUOverheadTiny(t *testing.T) {
	// The paper reports 0.23% of the GPU die; ours must stay well under 1%.
	o := ComputeGPU(config.Default(config.ATFIM))
	if o.FractionOfDie > 0.01 {
		t.Fatalf("GPU overhead %.3f%% too large", 100*o.FractionOfDie)
	}
}

func TestOverheadScalesWithConfig(t *testing.T) {
	small := config.Default(config.ATFIM)
	big := config.Default(config.ATFIM)
	big.TFIM.ParentTexelBufferEntries *= 2
	big.TFIM.TexelGenALUs *= 2
	if ComputeHMC(big).TotalMM2 <= ComputeHMC(small).TotalMM2 {
		t.Fatal("doubling structures did not grow area")
	}
}
