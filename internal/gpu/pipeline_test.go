package gpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/scene"
	"repro/internal/texture"
)

// nullPath is a minimal texture path returning a fixed color with unit
// latency, isolating pipeline behavior from the designs.
type nullPath struct {
	act PathActivity
}

func (n *nullPath) Name() string { return "null" }
func (n *nullPath) Sample(now int64, req *TexRequest) TexResult {
	n.act.TexRequests++
	n.act.LatencySum++
	n.act.LatencyCount++
	return TexResult{Color: texture.Color{R: 0.5, G: 0.5, B: 0.5, A: 1}, Done: now + 1}
}
func (n *nullPath) EndFrame(now int64) int64           { return now }
func (n *nullPath) Activity() PathActivity             { return n.act }
func (n *nullPath) CacheStats() map[string]cache.Stats { return nil }
func (n *nullPath) Reset()                             { n.act = PathActivity{} }

func testScene() *scene.Scene {
	sc := scene.Generate(scene.Spec{
		Name: "t", Seed: 1, CorridorSegments: 3, Props: 5,
		TextureCount: 2, TextureSize: 32, Frames: 2, ObliqueBias: 0.5,
	})
	sc.AssignTextureAddresses(mem.RegionTexture)
	return sc
}

func newTestPipeline() (*Pipeline, *nullPath) {
	cfg := config.Default(config.Baseline)
	backend := dram.New(dram.DefaultConfig())
	path := &nullPath{}
	return NewPipeline(cfg, 160, 120, backend, path), path
}

func TestRenderFrameProducesImage(t *testing.T) {
	p, _ := newTestPipeline()
	sc := testScene()
	res, err := p.RenderFrame(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles accounted")
	}
	if len(res.Image) != 160*120 {
		t.Fatalf("image %d pixels", len(res.Image))
	}
	if res.Activity.FragmentCount == 0 {
		t.Fatal("no fragments shaded")
	}
	// Three texture layers per fragment (merged across tile groups; the
	// path's own counter is reset around each hermetic group).
	if res.Activity.Path.TexRequests != 3*res.Activity.FragmentCount {
		t.Errorf("tex requests %d, want 3 per fragment (%d)",
			res.Activity.Path.TexRequests, 3*res.Activity.FragmentCount)
	}
	nonBG := 0
	for _, px := range res.Image {
		if px != res.Image[len(res.Image)-1] {
			nonBG++
		}
	}
	if nonBG < len(res.Image)/20 {
		t.Errorf("frame mostly background: %d varied pixels", nonBG)
	}
}

func TestFrameOutOfRange(t *testing.T) {
	p, _ := newTestPipeline()
	sc := testScene()
	if _, err := p.RenderFrame(sc, 99); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
}

func TestRenderDeterministic(t *testing.T) {
	p, _ := newTestPipeline()
	sc := testScene()
	a, err := p.RenderFrame(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RenderFrame(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ across identical renders: %d vs %d", a.Cycles, b.Cycles)
	}
	for i := range a.Image {
		if a.Image[i] != b.Image[i] {
			t.Fatalf("pixel %d differs across identical renders", i)
		}
	}
}

func TestDifferentFramesDiffer(t *testing.T) {
	p, _ := newTestPipeline()
	sc := testScene()
	a, _ := p.RenderFrame(sc, 0)
	b, _ := p.RenderFrame(sc, 1)
	same := 0
	for i := range a.Image {
		if a.Image[i] == b.Image[i] {
			same++
		}
	}
	if same == len(a.Image) {
		t.Fatal("camera movement did not change the frame")
	}
}

func TestTrafficClassesAllPresent(t *testing.T) {
	p, _ := newTestPipeline()
	sc := testScene()
	res, _ := p.RenderFrame(sc, 0)
	for _, c := range []mem.Class{mem.ClassGeometry, mem.ClassZ, mem.ClassColor, mem.ClassFrame} {
		if res.Traffic.ClassTotal(c) == 0 {
			t.Errorf("no %s traffic recorded", c)
		}
	}
}

func TestDepthBufferOrdering(t *testing.T) {
	// Render a frame and check every visible pixel carries a depth < 1.
	p, _ := newTestPipeline()
	sc := testScene()
	if _, err := p.RenderFrame(sc, 0); err != nil {
		t.Fatal(err)
	}
	fb := p.Framebuffer()
	covered := 0
	for i, d := range fb.Depth {
		if d < 1 {
			covered++
		}
		if d < 0 || d > 1 {
			t.Fatalf("depth[%d]=%g out of range", i, d)
		}
	}
	if covered < len(fb.Depth)/20 {
		t.Errorf("only %d pixels covered", covered)
	}
}

func TestFramebufferAddressing(t *testing.T) {
	fb := NewFramebuffer(16, 16)
	if fb.DepthAddr(0, 0) != mem.RegionDepth {
		t.Error("depth base wrong")
	}
	if fb.ColorAddr(1, 0)-fb.ColorAddr(0, 0) != 4 {
		t.Error("color stride wrong")
	}
	if fb.DepthAddr(0, 1)-fb.DepthAddr(0, 0) != 16*4 {
		t.Error("depth row stride wrong")
	}
}

func TestFramebufferClear(t *testing.T) {
	fb := NewFramebuffer(4, 4)
	fb.Color[5] = 0x12345678
	fb.Depth[5] = 0.5
	fb.Clear(texture.Color{R: 1, A: 1})
	if fb.Depth[5] != 1 {
		t.Error("depth not cleared")
	}
	if c := fb.Pixel(1, 1); c.R < 0.99 {
		t.Error("color not cleared")
	}
}

func TestAccumulate(t *testing.T) {
	p, _ := newTestPipeline()
	sc := testScene()
	a, _ := p.RenderFrame(sc, 0)
	b, _ := p.RenderFrame(sc, 1)
	total := a.Cycles + b.Cycles
	frags := a.Activity.FragmentCount + b.Activity.FragmentCount
	a.Accumulate(b)
	if a.Cycles != total {
		t.Errorf("accumulated cycles %d want %d", a.Cycles, total)
	}
	if a.Activity.FragmentCount != frags {
		t.Errorf("accumulated fragments %d want %d", a.Activity.FragmentCount, frags)
	}
}

func TestViewAngleVariesAcrossScreen(t *testing.T) {
	// The per-pixel camera angle (Section V-C) must vary across a flat
	// surface — this is what drives the recalculation mechanism.
	cfg := config.Default(config.Baseline)
	backend := dram.New(dram.DefaultConfig())
	angles := map[float32]bool{}
	path := &anglePath{angles: angles}
	p := NewPipeline(cfg, 160, 120, backend, path)
	sc := testScene()
	if _, err := p.RenderFrame(sc, 0); err != nil {
		t.Fatal(err)
	}
	if len(angles) < 100 {
		t.Fatalf("only %d distinct camera angles across the frame", len(angles))
	}
}

type anglePath struct {
	nullPath
	angles map[float32]bool
}

func (a *anglePath) Sample(now int64, req *TexRequest) TexResult {
	a.angles[req.Foot.Angle] = true
	return a.nullPath.Sample(now, req)
}
