package gpu

import (
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/raster"
	"repro/internal/scene"
	"repro/internal/shader"
	"repro/internal/texture"
	"repro/internal/vmath"
)

// vertexBytes is the fetched size of one vertex (pos 12 + uv 8 + color 16 +
// normal 12) and indexBytes the size of one triangle's indices.
const (
	vertexBytes = 48
	indexBytes  = 12
	// triSetupCycles is the rasterizer's per-triangle setup cost.
	triSetupCycles = 8
	// maxInflightPerCluster bounds latency hiding per shader cluster:
	// 16 shaders x 4 elements x 4-deep warp queues.
	maxInflightPerCluster = 256
)

// Pipeline renders scenes under one design configuration.
type Pipeline struct {
	Cfg     config.Config
	Backend mem.Backend
	Path    TexturePath

	fb      *Framebuffer
	rast    *raster.Rasterizer
	vs      *shader.Program
	fs      *shader.Program
	machine shader.Machine

	zCache     *cache.Cache
	colorCache *cache.Cache

	// Per-cluster state.
	cursor   []float64 // compute-cycle cursor per cluster
	horizon  []int64   // completion horizon per cluster
	inflight [][]int64 // ring of outstanding completions per cluster
	inflHead []int

	traffic  mem.Traffic
	activity Activity

	// Per-frame camera terms for the per-pixel view-ray computation.
	tanHalfFovY float32
	tanHalfFovX float32

	// Current fragment context for the TEX callback.
	curFrag    *raster.Fragment
	curTex     int
	curDone    int64
	curNow     int64
	curCluster int

	scene *scene.Scene

	// trace, when attached, records stage/tile/draw spans; clusterTrack
	// caches the per-cluster track labels so the hot path does not format.
	trace        *obs.Tracer
	clusterTrack []string
}

// NewPipeline builds a pipeline for a WxH target. Backend and Path are
// created by the caller (internal/core wires the design together).
func NewPipeline(cfg config.Config, w, h int, backend mem.Backend, path TexturePath) *Pipeline {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Pipeline{
		Cfg:     cfg,
		Backend: backend,
		Path:    path,
		fb:      NewFramebuffer(w, h),
		rast:    raster.New(w, h),
		vs:      shader.NewVertexProgram(),
	}
	p.rast.Depth = p.fb.Depth
	p.zCache = cache.New(cache.Config{
		Name: "zcache", SizeBytes: cfg.GPU.ZCacheKB * 1024, Ways: 8,
		LineBytes: mem.LineSize, WriteBack: true,
	})
	p.colorCache = cache.New(cache.Config{
		Name: "colorcache", SizeBytes: cfg.GPU.ColorCacheKB * 1024, Ways: 8,
		LineBytes: mem.LineSize, WriteBack: true,
	})
	n := cfg.GPU.Clusters
	p.cursor = make([]float64, n)
	p.horizon = make([]int64, n)
	p.inflight = make([][]int64, n)
	for i := range p.inflight {
		p.inflight[i] = make([]int64, maxInflightPerCluster)
	}
	p.inflHead = make([]int, n)
	return p
}

// Framebuffer exposes the render target (for image dumps).
func (p *Pipeline) Framebuffer() *Framebuffer { return p.fb }

// SetTracer attaches a cycle-timeline tracer (obs.TraceAttacher). The
// tracer only observes timestamps the timing model already produced, so
// simulated cycle counts are identical with and without it.
func (p *Pipeline) SetTracer(t *obs.Tracer) {
	p.trace = t
	p.clusterTrack = make([]string, p.Cfg.GPU.Clusters)
	for i := range p.clusterTrack {
		p.clusterTrack[i] = fmt.Sprintf("cluster%02d", i)
	}
}

// RenderFrame renders frame index `frame` of the scene and returns its
// measurements. Texture addresses must already be assigned
// (Scene.AssignTextureAddresses).
func (p *Pipeline) RenderFrame(s *scene.Scene, frame int) (*FrameResult, error) {
	if frame < 0 || frame >= len(s.Cameras) {
		return nil, fmt.Errorf("gpu: frame %d out of range (%d cameras)", frame, len(s.Cameras))
	}
	p.scene = s
	p.fb.Clear(texture.Color{R: 0.05, G: 0.05, B: 0.08, A: 1})
	p.rast.ResetHiZ()
	p.rast.ResetStats()
	p.Backend.Reset()
	p.Path.Reset()
	p.zCache.Reset()
	p.colorCache.Reset()
	p.traffic = mem.Traffic{}
	p.activity = Activity{}
	for i := range p.cursor {
		p.cursor[i] = 0
		p.horizon[i] = 0
		p.inflHead[i] = 0
		for j := range p.inflight[i] {
			p.inflight[i][j] = 0
		}
	}
	p.machine = shader.Machine{}
	p.machine.TexSample = p.texSample

	cam := s.Cameras[frame]
	aspect := float32(p.fb.W) / float32(p.fb.H)
	p.tanHalfFovY = float32(math.Tan(float64(cam.FovY) / 2))
	p.tanHalfFovX = p.tanHalfFovY * aspect
	mvp := cam.ViewProj(aspect)
	view := vmath.LookAt(cam.Eye, cam.Center, cam.Up)
	shader.SetMVP(p.vs, [4]shader.Vec{
		vecOf(mvp.Row(0)), vecOf(mvp.Row(1)), vecOf(mvp.Row(2)), vecOf(mvp.Row(3)),
	})
	// Light direction in eye space for the fragment program.
	ld := view.MulVec(vmath.Vec4{X: s.LightDir.X, Y: s.LightDir.Y, Z: s.LightDir.Z, W: 0})
	p.fs = shader.NewFragmentProgram(shader.Vec{ld.X, ld.Y, ld.Z, 0}, s.Ambient)

	// --- Geometry stage ---
	geomDone := p.runGeometry(s, view)

	// --- Rasterization + fragment stage ---
	fragStart := geomDone
	p.runFragments(s, view, fragStart)

	// --- End of frame: drain caches, resolve ---
	endCompute := fragStart
	for c := range p.cursor {
		t := fragStart + int64(math.Ceil(p.cursor[c]))
		if t > endCompute {
			endCompute = t
		}
		if p.horizon[c] > endCompute {
			endCompute = p.horizon[c]
		}
	}
	pathDone := p.Path.EndFrame(endCompute)
	if pathDone > endCompute {
		endCompute = pathDone
	}
	flushDone := p.flushROPCaches(endCompute)
	resolveDone := p.resolveFrame(flushDone)
	total := resolveDone
	if b := p.Backend.BusyUntil(); b > total {
		total = b
	}
	if p.trace.On() {
		p.trace.Span("pipeline", "geometry", 0, geomDone)
		p.trace.Span("pipeline", "fragment", fragStart, endCompute)
		p.trace.Span("pipeline", "rop-flush", endCompute, flushDone)
		p.trace.Span("pipeline", "resolve", flushDone, resolveDone)
		p.trace.SpanArg("frame", fmt.Sprintf("frame %d", frame), 0, total,
			"fragments", int64(p.activity.FragmentCount))
	}

	res := &FrameResult{
		Width:          p.fb.W,
		Height:         p.fb.H,
		Cycles:         total,
		GeometryCycles: geomDone,
		FragmentCycles: endCompute - fragStart,
		Traffic:        p.traffic,
		Raster:         p.rast.Stats(),
		Caches:         map[string]cache.Stats{"zcache": p.zCache.Stats(), "colorcache": p.colorCache.Stats()},
	}
	for k, v := range p.Path.CacheStats() {
		res.Caches[k] = v
	}
	p.activity.Path = p.Path.Activity()
	p.activity.ShaderInstrs = p.machine.InstrCount
	p.activity.Cycles = total
	res.Activity = p.activity
	res.Image = make([]uint32, len(p.fb.Color))
	copy(res.Image, p.fb.Color)
	return res, nil
}

func vecOf(v vmath.Vec4) shader.Vec { return shader.Vec{v.X, v.Y, v.Z, v.W} }

// runGeometry fetches and shades every vertex, returning the stage's
// completion cycle (compute and fetch overlap; the max dominates).
func (p *Pipeline) runGeometry(s *scene.Scene, view vmath.Mat4) int64 {
	nVerts := len(s.Mesh.Vertices)
	nTris := len(s.Mesh.Triangles)
	p.activity.VertexCount = uint64(nVerts)

	// Vertex + index fetch: streamed from the vertex region.
	var fetchDone int64
	bytesTotal := uint64(nVerts*vertexBytes + nTris*indexBytes)
	addr := mem.RegionVertex
	var now int64
	for off := uint64(0); off < bytesTotal; off += mem.LineSize {
		req := mem.Request{Addr: addr + off, Size: mem.LineSize, Class: mem.ClassGeometry, Kind: mem.Read}
		done := p.Backend.Access(now, req)
		p.traffic.Record(mem.ClassGeometry, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
		if done > fetchDone {
			fetchDone = done
		}
		// Pace issue at one line per cycle to avoid unbounded queueing.
		now++
	}

	// Vertex shading: run the ISA program per vertex (functional result is
	// stored by the caller in transformVertices); the cycle cost is the
	// program cost divided across all shaders.
	vsCost := float64(p.vs.CycleCost())
	shaders := float64(p.Cfg.GPU.Clusters * p.Cfg.GPU.ShadersPerCluster)
	computeDone := int64(math.Ceil(float64(nVerts) * vsCost / shaders))

	if fetchDone > computeDone {
		return fetchDone
	}
	return computeDone
}

// transformVertices runs the vertex program over the mesh, producing
// clip-space raster vertices. Normals are taken to eye space for the
// camera-angle computation.
func (p *Pipeline) transformVertices(s *scene.Scene, view vmath.Mat4) []raster.Vertex {
	out := make([]raster.Vertex, len(s.Mesh.Vertices))
	for i, v := range s.Mesh.Vertices {
		p.machine.SetInput(0, shader.Vec{v.Pos.X, v.Pos.Y, v.Pos.Z, 1})
		p.machine.SetInput(1, shader.Vec{v.UV.X, v.UV.Y, 0, 0})
		p.machine.SetInput(2, shader.Vec{v.Color.X, v.Color.Y, v.Color.Z, v.Color.W})
		p.machine.SetInput(3, shader.Vec{v.Normal.X, v.Normal.Y, v.Normal.Z, 0})
		if err := p.machine.Run(p.vs); err != nil {
			panic(err)
		}
		pos := p.machine.Output(0)
		uv := p.machine.Output(1)
		col := p.machine.Output(2)
		// Eye-space normal (w=0 direction transform).
		en := view.MulVec(vmath.Vec4{X: v.Normal.X, Y: v.Normal.Y, Z: v.Normal.Z, W: 0})
		out[i] = raster.Vertex{
			Pos:    vmath.Vec4{X: pos[0], Y: pos[1], Z: pos[2], W: pos[3]},
			UV:     vmath.Vec2{X: uv[0], Y: uv[1]},
			Color:  vmath.Vec4{X: col[0], Y: col[1], Z: col[2], W: col[3]},
			Normal: vmath.Vec3{X: en.X, Y: en.Y, Z: en.Z},
		}
	}
	return out
}

// runFragments rasterizes every triangle tile by tile and shades the
// fragments on the clusters. fragStart is the cycle when the stage begins.
func (p *Pipeline) runFragments(s *scene.Scene, view vmath.Mat4, fragStart int64) {
	verts := p.transformVertices(s, view)

	// Triangle setup cost, spread over clusters.
	setup := float64(len(s.Mesh.Triangles)*triSetupCycles) / float64(p.Cfg.GPU.Clusters)
	for c := range p.cursor {
		p.cursor[c] = setup / float64(len(p.cursor))
	}

	// Draw-call spans group consecutive same-texture triangles; tile spans
	// cover one cluster's work on one tile batch. Both are derived from the
	// per-cluster compute cursors the timing model advances anyway.
	tracing := p.trace.On()
	maxCursor := func() int64 {
		m := 0.0
		for _, c := range p.cursor {
			if c > m {
				m = c
			}
		}
		return fragStart + int64(m)
	}
	drawTex := -1
	var drawStart int64
	var drawTris int64
	endDraw := func() {
		if drawTex >= 0 && drawTris > 0 {
			p.trace.SpanArg("draws", fmt.Sprintf("draw tex%d", drawTex),
				drawStart, maxCursor(), "triangles", drawTris)
		}
	}

	nextCluster := 0
	for _, tri := range s.Mesh.Triangles {
		if tracing && tri.TexID != drawTex {
			endDraw()
			drawTex = tri.TexID
			drawStart = maxCursor()
			drawTris = 0
		}
		drawTris++
		tv := [3]raster.Vertex{verts[tri.V[0]], verts[tri.V[1]], verts[tri.V[2]]}
		for _, st := range p.rast.Setup(tv, tri.TexID) {
			stCopy := st
			for _, tile := range stCopy.Tiles() {
				cluster := nextCluster
				nextCluster = (nextCluster + 1) % p.Cfg.GPU.Clusters
				tileStart := fragStart + int64(p.cursor[cluster])
				p.rast.ScanTile(&stCopy, tile, func(f *raster.Fragment) {
					p.shadeFragment(f, cluster, fragStart)
				})
				if tracing {
					if tileEnd := fragStart + int64(p.cursor[cluster]); tileEnd > tileStart {
						p.trace.Span(p.clusterTrack[cluster], "tile", tileStart, tileEnd)
					}
				}
			}
		}
	}
	if tracing {
		endDraw()
	}
}

// shadeFragment runs the fragment program (issuing the texture request) and
// the ROP for one fragment on the given cluster.
func (p *Pipeline) shadeFragment(f *raster.Fragment, cluster int, fragStart int64) {
	p.activity.FragmentCount++
	cfg := &p.Cfg.GPU

	// Per-fragment shader issue cost: the cluster's shaders process
	// ShadersPerCluster fragments in parallel.
	fsCost := float64(p.fs.CycleCost()) / float64(cfg.ShadersPerCluster)
	p.cursor[cluster] += fsCost
	now := fragStart + int64(p.cursor[cluster])

	// Bounded in-flight window: if full, the cluster stalls until the
	// oldest outstanding request completes.
	ring := p.inflight[cluster]
	head := p.inflHead[cluster]
	if oldest := ring[head]; oldest > now {
		stall := oldest - now
		p.cursor[cluster] += float64(stall)
		now = oldest
	}

	// Per-pixel camera angle: the angle between the view ray through this
	// pixel and the surface normal (the quantity A-TFIM tags texels with;
	// Section V-C). It varies across a flat surface because the ray
	// direction varies across the screen.
	f.ViewAngle = p.viewAngle(f)

	// Fragment shading (TEX routed through texSample).
	p.curFrag = f
	p.curTex = f.TexID
	p.curNow = now
	p.curCluster = cluster
	p.curDone = now
	p.machine.SetInput(0, shader.Vec{f.UV.X, f.UV.Y, 0, 0})
	p.machine.SetInput(1, shader.Vec{f.Color.X, f.Color.Y, f.Color.Z, f.Color.W})
	n := f.Normal.Normalize()
	p.machine.SetInput(2, shader.Vec{n.X, n.Y, n.Z, 0})
	if err := p.machine.Run(p.fs); err != nil {
		panic(err)
	}
	out := p.machine.Output(0)

	done := p.curDone
	ring[head] = done
	p.inflHead[cluster] = (head + 1) % len(ring)
	if done > p.horizon[cluster] {
		p.horizon[cluster] = done
	}

	// ROP: Z test + color write, through the ROP caches.
	p.ropFragment(f, out, now)
}

// viewAngle computes the angle (radians) between the eye-space view ray
// through the fragment's pixel and the fragment's surface normal.
func (p *Pipeline) viewAngle(f *raster.Fragment) float32 {
	rx := (2*(float32(f.X)+0.5)/float32(p.fb.W) - 1) * p.tanHalfFovX
	ry := (1 - 2*(float32(f.Y)+0.5)/float32(p.fb.H)) * p.tanHalfFovY
	ray := vmath.Vec3{X: rx, Y: ry, Z: -1}.Normalize()
	n := f.Normal.Normalize()
	cosA := vmath.Abs(ray.Dot(n))
	return float32(math.Acos(float64(vmath.Clamp(cosA, 0, 1))))
}

// samplerUVScale maps a sampler index to the UV scale its layer applies in
// the standard fragment program (gradients must scale with the UVs).
func samplerUVScale(sampler uint8) float32 {
	switch sampler {
	case 1:
		return shader.DetailUVScale
	case 2:
		return shader.LightmapUVScale
	default:
		return 1
	}
}

// texSample is the TEX instruction hook: it builds the texture request for
// the current fragment and forwards it to the design's texture path.
// Sampler 0 binds the draw call's texture; samplers 1 and 2 bind the
// detail and light-map layers (neighboring textures in the scene's
// inventory, with gradients scaled by the layer's UV tiling).
func (p *Pipeline) texSample(sampler uint8, coords shader.Vec) shader.Vec {
	f := p.curFrag
	texID := (p.curTex + int(sampler)) % len(p.scene.Textures)
	tex := p.scene.Textures[texID]
	scale := samplerUVScale(sampler)
	grads := textureGradients(f)
	grads.DUDX *= scale
	grads.DVDX *= scale
	grads.DUDY *= scale
	grads.DVDY *= scale
	foot := computeFootprint(tex, grads, p.effectiveMaxAniso())
	foot.Angle = f.ViewAngle
	req := TexRequest{
		Tex:     tex,
		U:       coords[0],
		V:       coords[1],
		Foot:    foot,
		Cluster: p.curCluster,
	}
	res := p.Path.Sample(p.curNow, &req)
	if res.Done > p.curDone {
		p.curDone = res.Done
	}
	return shader.Vec{res.Color.R, res.Color.G, res.Color.B, res.Color.A}
}

func (p *Pipeline) effectiveMaxAniso() int {
	if !p.Cfg.AnisoEnabled {
		return 1
	}
	return p.Cfg.GPU.MaxAniso
}

// ropFragment performs the late Z test and color write with cache-modelled
// memory traffic.
func (p *Pipeline) ropFragment(f *raster.Fragment, colorOut shader.Vec, now int64) {
	idx := f.Y*p.fb.W + f.X
	p.activity.ZAccesses++

	// Z read (the early-Z already compared; the ROP re-checks and writes).
	zAddr := p.fb.DepthAddr(f.X, f.Y)
	if r := p.zCache.Access(zAddr, false); !r.Hit {
		done := p.Backend.Access(now, mem.Request{Addr: mem.LineAddr(zAddr), Size: mem.LineSize, Class: mem.ClassZ, Kind: mem.Read})
		p.traffic.Record(mem.ClassZ, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
		p.noteBackendDone(done)
	} else if r.Writeback {
		p.writeback(r.VictimAddr, mem.ClassZ, now)
	}
	if f.Depth >= p.fb.Depth[idx] {
		return // occluded
	}
	// Z write.
	if r := p.zCache.Access(zAddr, true); r.Writeback {
		p.writeback(r.VictimAddr, mem.ClassZ, now)
	}
	p.fb.Depth[idx] = f.Depth
	p.rast.UpdateHiZ(raster.Tile{X0: f.X &^ (raster.TileSize - 1), Y0: f.Y &^ (raster.TileSize - 1)}, tileMaxDepth(p.fb, f.X, f.Y))

	// Color write.
	p.activity.ColorAccesses++
	cAddr := p.fb.ColorAddr(f.X, f.Y)
	if r := p.colorCache.Access(cAddr, true); !r.Hit {
		// Allocate-on-write fill read.
		done := p.Backend.Access(now, mem.Request{Addr: mem.LineAddr(cAddr), Size: mem.LineSize, Class: mem.ClassColor, Kind: mem.Read})
		p.traffic.Record(mem.ClassColor, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
		p.noteBackendDone(done)
		if r.Writeback {
			p.writeback(r.VictimAddr, mem.ClassColor, now)
		}
	} else if r.Writeback {
		p.writeback(r.VictimAddr, mem.ClassColor, now)
	}
	p.fb.Color[idx] = packShaderColor(colorOut)
}

func (p *Pipeline) writeback(addr uint64, class mem.Class, now int64) {
	done := p.Backend.Access(now, mem.Request{Addr: addr, Size: mem.LineSize, Class: class, Kind: mem.Write})
	p.traffic.Record(class, mem.Write, mem.LineSize+mem.RequestOverheadBytes)
	p.noteBackendDone(done)
}

func (p *Pipeline) noteBackendDone(int64) {
	// Backend completion feeds the frame total via Backend.BusyUntil();
	// per-access results are not individually tracked for ROP traffic.
}

// tileMaxDepth scans the fragment's tile for its maximum depth (HiZ bound).
// To keep the scan cheap it samples the tile's corners and center.
func tileMaxDepth(fb *Framebuffer, x, y int) float32 {
	x0 := x &^ (raster.TileSize - 1)
	y0 := y &^ (raster.TileSize - 1)
	maxD := float32(0)
	for _, d := range [5][2]int{{0, 0}, {raster.TileSize - 1, 0}, {0, raster.TileSize - 1}, {raster.TileSize - 1, raster.TileSize - 1}, {raster.TileSize / 2, raster.TileSize / 2}} {
		px := x0 + d[0]
		py := y0 + d[1]
		if px >= fb.W {
			px = fb.W - 1
		}
		if py >= fb.H {
			py = fb.H - 1
		}
		v := fb.Depth[py*fb.W+px]
		if v > maxD {
			maxD = v
		}
	}
	return maxD
}

// flushROPCaches drains dirty Z/color lines at frame end.
func (p *Pipeline) flushROPCaches(now int64) int64 {
	end := now
	for _, addr := range p.zCache.FlushDirty() {
		done := p.Backend.Access(now, mem.Request{Addr: addr, Size: mem.LineSize, Class: mem.ClassZ, Kind: mem.Write})
		p.traffic.Record(mem.ClassZ, mem.Write, mem.LineSize+mem.RequestOverheadBytes)
		if done > end {
			end = done
		}
	}
	for _, addr := range p.colorCache.FlushDirty() {
		done := p.Backend.Access(now, mem.Request{Addr: addr, Size: mem.LineSize, Class: mem.ClassColor, Kind: mem.Write})
		p.traffic.Record(mem.ClassColor, mem.Write, mem.LineSize+mem.RequestOverheadBytes)
		if done > end {
			end = done
		}
	}
	return end
}

// resolveFrame models the present/scan-out pass: the full color buffer is
// read and written to the frame region.
func (p *Pipeline) resolveFrame(now int64) int64 {
	end := now
	bytes := uint64(p.fb.W * p.fb.H * 4)
	t := now
	for off := uint64(0); off < bytes; off += mem.LineSize {
		done := p.Backend.Access(t, mem.Request{Addr: mem.RegionColor + off, Size: mem.LineSize, Class: mem.ClassFrame, Kind: mem.Read})
		p.traffic.Record(mem.ClassFrame, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
		done2 := p.Backend.Access(t, mem.Request{Addr: mem.RegionFrame + off, Size: mem.LineSize, Class: mem.ClassFrame, Kind: mem.Write})
		p.traffic.Record(mem.ClassFrame, mem.Write, mem.LineSize+mem.RequestOverheadBytes)
		if done2 > done {
			done = done2
		}
		if done > end {
			end = done
		}
		t += 2
	}
	return end
}

func packShaderColor(v shader.Vec) uint32 {
	return packColor(v[0], v[1], v[2], v[3])
}

func packColor(r, g, b, a float32) uint32 {
	cb := func(x float32) uint32 {
		y := x*255 + 0.5
		if y <= 0 {
			return 0
		}
		if y >= 255 {
			return 255
		}
		return uint32(y)
	}
	return cb(r) | cb(g)<<8 | cb(b)<<16 | cb(a)<<24
}
