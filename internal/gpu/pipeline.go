package gpu

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/raster"
	"repro/internal/scene"
	"repro/internal/shader"
	"repro/internal/texture"
	"repro/internal/vmath"
)

// vertexBytes is the fetched size of one vertex (pos 12 + uv 8 + color 16 +
// normal 12) and indexBytes the size of one triangle's indices.
const (
	vertexBytes = 48
	indexBytes  = 12
	// triSetupCycles is the rasterizer's per-triangle setup cost.
	triSetupCycles = 8
	// maxInflightPerCluster bounds latency hiding per shader cluster:
	// 16 shaders x 4 elements x 4-deep warp queues.
	maxInflightPerCluster = 256
)

// Pipeline renders scenes under one design configuration.
//
// The frame is a fork/join machine: geometry, triangle setup, and binning
// run serially on the frame-level Backend/Path; the fragment stage is a
// fixed list of 64x64-pixel tile groups, each simulated hermetically on a
// worker's private backend/path/caches, merged back in fixed group order.
// Shards picks the goroutine count; NewWorker supplies each worker's
// private memory system. The rendered image and every counter are
// byte-identical at any shard count.
type Pipeline struct {
	Cfg     config.Config
	Backend mem.Backend
	Path    TexturePath

	// Shards is the number of worker goroutines draining the group list
	// (<=1 means serial). It never changes simulated results.
	Shards int
	// Progress, when set, receives stage-boundary and per-group completion
	// reports while a frame is in flight. Fragment-stage reports arrive
	// from worker goroutines concurrently; the callback must be safe for
	// concurrent use and must not block. It never changes simulated
	// results.
	Progress func(Progress)
	// NewWorker builds a private (backend, path, internal-byte counter)
	// triple for one worker. The counter may be nil (no internal memory).
	// When NewWorker is nil the groups run serially on Backend/Path.
	NewWorker func() (mem.Backend, TexturePath, func() uint64)
	// Profiler, when set, collects a pim-render/frameprofile/v1 anatomy
	// for every rendered frame: merged bandwidth timelines, per-supertile
	// attribution, and stage spans. Like Progress it only reads values the
	// timing model already produced and never changes simulated results.
	Profiler *FrameProfiler

	fb      *Framebuffer
	rast    *raster.Rasterizer
	vs      *shader.Program
	fs      *shader.Program
	machine shader.Machine // vertex-stage machine (fragment machines live in workers)

	traffic  mem.Traffic
	activity Activity

	// Per-frame camera terms for the per-pixel view-ray computation.
	tanHalfFovY float32
	tanHalfFovX float32

	scene *scene.Scene

	// trace, when attached, records stage/group/cluster spans.
	trace *obs.Tracer
}

// NewPipeline builds a pipeline for a WxH target. Backend and Path are
// created by the caller (internal/core wires the design together).
func NewPipeline(cfg config.Config, w, h int, backend mem.Backend, path TexturePath) *Pipeline {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Pipeline{
		Cfg:     cfg,
		Backend: backend,
		Path:    path,
		fb:      NewFramebuffer(w, h),
		rast:    raster.New(w, h),
		vs:      shader.NewVertexProgram(),
	}
	p.rast.Depth = p.fb.Depth
	return p
}

// Framebuffer exposes the render target (for image dumps).
func (p *Pipeline) Framebuffer() *Framebuffer { return p.fb }

// SetTracer attaches a cycle-timeline tracer (obs.TraceAttacher). The
// tracer only observes timestamps the timing model already produced, so
// simulated cycle counts are identical with and without it.
func (p *Pipeline) SetTracer(t *obs.Tracer) {
	p.trace = t
}

// RenderFrame renders frame index `frame` of the scene and returns its
// measurements. It is RenderFrameContext without cancellation.
func (p *Pipeline) RenderFrame(s *scene.Scene, frame int) (*FrameResult, error) {
	return p.RenderFrameContext(context.Background(), s, frame)
}

// RenderFrameContext renders frame index `frame` of the scene and returns
// its measurements. Texture addresses must already be assigned
// (Scene.AssignTextureAddresses). Cancellation is observed at tile-group
// boundaries; a canceled frame returns ctx.Err() with no partial result.
func (p *Pipeline) RenderFrameContext(ctx context.Context, s *scene.Scene, frame int) (*FrameResult, error) {
	if frame < 0 || frame >= len(s.Cameras) {
		return nil, fmt.Errorf("gpu: frame %d out of range (%d cameras)", frame, len(s.Cameras))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.scene = s
	p.fb.Clear(texture.Color{R: 0.05, G: 0.05, B: 0.08, A: 1})
	p.rast.ResetHiZ()
	p.rast.ResetStats()
	p.Backend.Reset()
	p.Path.Reset()
	p.traffic = mem.Traffic{}
	p.activity = Activity{}
	p.machine = shader.Machine{}

	cam := s.Cameras[frame]
	aspect := float32(p.fb.W) / float32(p.fb.H)
	p.tanHalfFovY = float32(math.Tan(float64(cam.FovY) / 2))
	p.tanHalfFovX = p.tanHalfFovY * aspect
	mvp := cam.ViewProj(aspect)
	view := vmath.LookAt(cam.Eye, cam.Center, cam.Up)
	shader.SetMVP(p.vs, [4]shader.Vec{
		vecOf(mvp.Row(0)), vecOf(mvp.Row(1)), vecOf(mvp.Row(2)), vecOf(mvp.Row(3)),
	})
	// Light direction in eye space for the fragment program.
	ld := view.MulVec(vmath.Vec4{X: s.LightDir.X, Y: s.LightDir.Y, Z: s.LightDir.Z, W: 0})
	p.fs = shader.NewFragmentProgram(shader.Vec{ld.X, ld.Y, ld.Z, 0}, s.Ambient)

	if p.Profiler != nil {
		p.Profiler.beginFrame()
	}

	// --- Geometry stage (serial, frame-level backend) ---
	p.report(Progress{Frame: frame, Stage: StageGeometry})
	geomDone := p.runGeometry(s, view)
	verts := p.transformVertices(s, view)

	// --- Triangle setup + supertile binning (serial) ---
	p.report(Progress{Frame: frame, Stage: StageSetup, Cycles: geomDone})
	setupCycles, sts, groups := p.binTriangles(s, verts)
	fragBase := geomDone + setupCycles

	// Serial fallback runs the groups on the frame-level backend, which
	// resetForGroup wipes — capture the geometry-stage timelines before
	// they disappear. (With a worker factory the frame backend survives
	// untouched until resolve, so one capture at frame end covers it.)
	if p.Profiler != nil && p.NewWorker == nil {
		p.Profiler.addSource(0, captureBackend(p.Backend, p.Profiler.bucketCount()))
	}

	// --- Fragment stage: hermetic tile groups, fork/join ---
	p.report(Progress{Frame: frame, Stage: StageFragment, GroupsTotal: len(groups), Cycles: fragBase})
	var onGroup func(int64)
	if p.Progress != nil {
		// Per-group completion reports from worker goroutines. Group
		// durations add commutatively, so the running cycle total is
		// order-independent even though completion order is not.
		var gdone, gcycles atomic.Int64
		onGroup = func(dur int64) {
			d := gdone.Add(1)
			c := gcycles.Add(dur)
			p.report(Progress{
				Frame: frame, Stage: StageFragment,
				GroupsDone: int(d), GroupsTotal: len(groups),
				Cycles: fragBase + c,
			})
		}
	}
	results, err := p.runGroups(ctx, sts, groups, onGroup)
	if err != nil {
		return nil, err
	}

	// --- Deterministic merge in fixed group order ---
	tracing := p.trace.On()
	profiling := p.Profiler != nil
	frameCaches := map[string]cache.Stats{}
	offset := fragBase
	for gi := range results {
		gr := &results[gi]
		p.traffic.Add(&gr.traffic)
		p.activity.FragmentCount += gr.activity.FragmentCount
		p.activity.ShaderInstrs += gr.activity.ShaderInstrs
		p.activity.ZAccesses += gr.activity.ZAccesses
		p.activity.ColorAccesses += gr.activity.ColorAccesses
		p.activity.InternalBytes += gr.activity.InternalBytes
		p.activity.Path.Add(gr.activity.Path)
		p.rast.AddStats(gr.raster)
		for k, v := range gr.caches {
			cur := frameCaches[k]
			cur.Accesses += v.Accesses
			cur.Hits += v.Hits
			cur.Misses += v.Misses
			cur.Evictions += v.Evictions
			cur.Writebacks += v.Writebacks
			cur.AngleRejects += v.AngleRejects
			frameCaches[k] = cur
		}
		if tracing {
			for _, e := range gr.events {
				if e.ArgName != "" {
					p.trace.SpanArg(e.Track, e.Name, e.Start+offset, e.End+offset, e.ArgName, e.Arg)
				} else {
					p.trace.Span(e.Track, e.Name, e.Start+offset, e.End+offset)
				}
			}
			p.trace.SpanArg("groups", fmt.Sprintf("group %d", gi), offset, offset+gr.duration,
				"fragments", int64(gr.activity.FragmentCount))
		}
		if profiling {
			p.Profiler.addGroup(obs.GroupProfile{
				Index:        gi,
				X:            groups[gi].x0,
				Y:            groups[gi].y0,
				StartCycle:   offset,
				EndCycle:     offset + gr.duration,
				Fragments:    gr.activity.FragmentCount,
				TexRequests:  gr.activity.Path.TexRequests,
				TexelFetches: gr.activity.Path.GPUTexelFetches + gr.activity.Path.PIMTexelFetches,
				OffChipBytes: gr.traffic.Total(),
			})
			p.Profiler.addSource(offset, gr.timelines)
		}
		offset += gr.duration
	}
	endCompute := offset

	// --- End of frame: resolve on the frame-level backend ---
	p.report(Progress{Frame: frame, Stage: StageResolve, GroupsDone: len(groups), GroupsTotal: len(groups), Cycles: endCompute})
	resolveDone := p.resolveFrame(endCompute)
	total := resolveDone
	if b := p.Backend.BusyUntil(); b > total {
		total = b
	}
	if tracing {
		p.trace.Span("pipeline", "geometry", 0, geomDone)
		p.trace.Span("pipeline", "setup", geomDone, fragBase)
		p.trace.Span("pipeline", "fragment", fragBase, endCompute)
		p.trace.Span("pipeline", "resolve", endCompute, resolveDone)
		p.trace.SpanArg("frame", fmt.Sprintf("frame %d", frame), 0, total,
			"fragments", int64(p.activity.FragmentCount))
	}
	if profiling {
		// The frame-level backend's meters are already in absolute frame
		// time: geometry traffic at its true cycles (factory mode) or just
		// resolve traffic (serial fallback, where geometry was captured
		// before the groups wiped the backend).
		p.Profiler.addSource(0, captureBackend(p.Backend, p.Profiler.bucketCount()))
		p.Profiler.addStage("geometry", 0, geomDone)
		p.Profiler.addStage("setup", geomDone, fragBase)
		p.Profiler.addStage("fragment", fragBase, endCompute)
		p.Profiler.addStage("resolve", endCompute, total)
		p.Profiler.endFrame(frame, p.fb.W, p.fb.H, total)
	}

	res := &FrameResult{
		Width:          p.fb.W,
		Height:         p.fb.H,
		Cycles:         total,
		GeometryCycles: geomDone,
		FragmentCycles: endCompute - geomDone,
		Traffic:        p.traffic,
		Raster:         p.rast.Stats(),
		Caches:         frameCaches,
	}
	p.activity.Cycles = total
	res.Activity = p.activity
	res.Image = make([]uint32, len(p.fb.Color))
	copy(res.Image, p.fb.Color)
	p.report(Progress{Frame: frame, Stage: StageDone, GroupsDone: len(groups), GroupsTotal: len(groups), Cycles: total})
	return res, nil
}

func vecOf(v vmath.Vec4) shader.Vec { return shader.Vec{v.X, v.Y, v.Z, v.W} }

// runGeometry fetches and shades every vertex, returning the stage's
// completion cycle (compute and fetch overlap; the max dominates).
func (p *Pipeline) runGeometry(s *scene.Scene, view vmath.Mat4) int64 {
	nVerts := len(s.Mesh.Vertices)
	nTris := len(s.Mesh.Triangles)
	p.activity.VertexCount = uint64(nVerts)

	// Vertex + index fetch: streamed from the vertex region.
	var fetchDone int64
	bytesTotal := uint64(nVerts*vertexBytes + nTris*indexBytes)
	addr := mem.RegionVertex
	var now int64
	for off := uint64(0); off < bytesTotal; off += mem.LineSize {
		req := mem.Request{Addr: addr + off, Size: mem.LineSize, Class: mem.ClassGeometry, Kind: mem.Read}
		done := p.Backend.Access(now, req)
		p.traffic.Record(mem.ClassGeometry, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
		if done > fetchDone {
			fetchDone = done
		}
		// Pace issue at one line per cycle to avoid unbounded queueing.
		now++
	}

	// Vertex shading: run the ISA program per vertex (functional result is
	// stored by the caller in transformVertices); the cycle cost is the
	// program cost divided across all shaders.
	vsCost := float64(p.vs.CycleCost())
	shaders := float64(p.Cfg.GPU.Clusters * p.Cfg.GPU.ShadersPerCluster)
	computeDone := int64(math.Ceil(float64(nVerts) * vsCost / shaders))

	if fetchDone > computeDone {
		return fetchDone
	}
	return computeDone
}

// transformVertices runs the vertex program over the mesh, producing
// clip-space raster vertices. Normals are taken to eye space for the
// camera-angle computation.
func (p *Pipeline) transformVertices(s *scene.Scene, view vmath.Mat4) []raster.Vertex {
	out := make([]raster.Vertex, len(s.Mesh.Vertices))
	for i, v := range s.Mesh.Vertices {
		p.machine.SetInput(0, shader.Vec{v.Pos.X, v.Pos.Y, v.Pos.Z, 1})
		p.machine.SetInput(1, shader.Vec{v.UV.X, v.UV.Y, 0, 0})
		p.machine.SetInput(2, shader.Vec{v.Color.X, v.Color.Y, v.Color.Z, v.Color.W})
		p.machine.SetInput(3, shader.Vec{v.Normal.X, v.Normal.Y, v.Normal.Z, 0})
		if err := p.machine.Run(p.vs); err != nil {
			panic(err)
		}
		pos := p.machine.Output(0)
		uv := p.machine.Output(1)
		col := p.machine.Output(2)
		// Eye-space normal (w=0 direction transform).
		en := view.MulVec(vmath.Vec4{X: v.Normal.X, Y: v.Normal.Y, Z: v.Normal.Z, W: 0})
		out[i] = raster.Vertex{
			Pos:    vmath.Vec4{X: pos[0], Y: pos[1], Z: pos[2], W: pos[3]},
			UV:     vmath.Vec2{X: uv[0], Y: uv[1]},
			Color:  vmath.Vec4{X: col[0], Y: col[1], Z: col[2], W: col[3]},
			Normal: vmath.Vec3{X: en.X, Y: en.Y, Z: en.Z},
		}
	}
	// Fold the vertex-stage instruction count in now; fragment-stage
	// instructions are merged from the group results.
	p.activity.ShaderInstrs += p.machine.InstrCount
	return out
}

// viewAngle computes the angle (radians) between the eye-space view ray
// through the fragment's pixel and the fragment's surface normal.
func (p *Pipeline) viewAngle(f *raster.Fragment) float32 {
	rx := (2*(float32(f.X)+0.5)/float32(p.fb.W) - 1) * p.tanHalfFovX
	ry := (1 - 2*(float32(f.Y)+0.5)/float32(p.fb.H)) * p.tanHalfFovY
	ray := vmath.Vec3{X: rx, Y: ry, Z: -1}.Normalize()
	n := f.Normal.Normalize()
	cosA := vmath.Abs(ray.Dot(n))
	return float32(math.Acos(float64(vmath.Clamp(cosA, 0, 1))))
}

// samplerUVScale maps a sampler index to the UV scale its layer applies in
// the standard fragment program (gradients must scale with the UVs).
func samplerUVScale(sampler uint8) float32 {
	switch sampler {
	case 1:
		return shader.DetailUVScale
	case 2:
		return shader.LightmapUVScale
	default:
		return 1
	}
}

func (p *Pipeline) effectiveMaxAniso() int {
	if !p.Cfg.AnisoEnabled {
		return 1
	}
	return p.Cfg.GPU.MaxAniso
}

// tileMaxDepth scans the fragment's tile for its maximum depth (HiZ bound).
// To keep the scan cheap it samples the tile's corners and center.
func tileMaxDepth(fb *Framebuffer, x, y int) float32 {
	x0 := x &^ (raster.TileSize - 1)
	y0 := y &^ (raster.TileSize - 1)
	maxD := float32(0)
	for _, d := range [5][2]int{{0, 0}, {raster.TileSize - 1, 0}, {0, raster.TileSize - 1}, {raster.TileSize - 1, raster.TileSize - 1}, {raster.TileSize / 2, raster.TileSize / 2}} {
		px := x0 + d[0]
		py := y0 + d[1]
		if px >= fb.W {
			px = fb.W - 1
		}
		if py >= fb.H {
			py = fb.H - 1
		}
		v := fb.Depth[py*fb.W+px]
		if v > maxD {
			maxD = v
		}
	}
	return maxD
}

// resolveFrame models the present/scan-out pass: the full color buffer is
// read and written to the frame region.
func (p *Pipeline) resolveFrame(now int64) int64 {
	end := now
	bytes := uint64(p.fb.W * p.fb.H * 4)
	t := now
	for off := uint64(0); off < bytes; off += mem.LineSize {
		done := p.Backend.Access(t, mem.Request{Addr: mem.RegionColor + off, Size: mem.LineSize, Class: mem.ClassFrame, Kind: mem.Read})
		p.traffic.Record(mem.ClassFrame, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
		done2 := p.Backend.Access(t, mem.Request{Addr: mem.RegionFrame + off, Size: mem.LineSize, Class: mem.ClassFrame, Kind: mem.Write})
		p.traffic.Record(mem.ClassFrame, mem.Write, mem.LineSize+mem.RequestOverheadBytes)
		if done2 > done {
			done = done2
		}
		if done > end {
			end = done
		}
		t += 2
	}
	return end
}

func packShaderColor(v shader.Vec) uint32 {
	return packColor(v[0], v[1], v[2], v[3])
}

func packColor(r, g, b, a float32) uint32 {
	cb := func(x float32) uint32 {
		y := x*255 + 0.5
		if y <= 0 {
			return 0
		}
		if y >= 255 {
			return 255
		}
		return uint32(y)
	}
	return cb(r) | cb(g)<<8 | cb(b)<<16 | cb(a)<<24
}
