// Package gpu integrates the rendering pipeline of the baseline
// architecture (Fig. 1): vertex fetch and shading, primitive assembly and
// clipping, tile-based rasterization with early-Z, fragment shading on
// unified shader clusters, texture filtering through a pluggable texture
// path (the four designs live in internal/tfim), and a ROP stage with Z and
// color caches. Rendering is functional (real frames come out) and timed
// (every stage and memory transaction advances cycle accounting).
package gpu

import (
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/raster"
	"repro/internal/texture"
)

// TexRequest is one texture-filtering request sent from a unified shader
// cluster to its texture unit.
type TexRequest struct {
	// Tex is the bound texture.
	Tex *texture.Texture
	// U, V are the fragment's texture coordinates.
	U, V float32
	// Foot is the anisotropic footprint (includes the camera angle).
	Foot texture.Footprint
	// Cluster is the issuing shader cluster (selects the texture unit/MTU).
	Cluster int
}

// TexResult is the outcome of one texture request.
type TexResult struct {
	// Color is the filtered texture color.
	Color texture.Color
	// Done is the GPU cycle when the shader receives the result.
	Done int64
}

// TexturePath is the design-specific texture subsystem: Baseline/B-PIM keep
// the whole filter chain on the GPU; S-TFIM runs it in memory; A-TFIM
// splits it (Sections III-V of the paper).
type TexturePath interface {
	// Name identifies the path ("baseline", "s-tfim", "a-tfim").
	Name() string
	// Sample filters one request issued at cycle now.
	Sample(now int64, req *TexRequest) TexResult
	// EndFrame drains any path-internal state at frame end and returns the
	// path's completion horizon.
	EndFrame(now int64) int64
	// Activity reports the path's accumulated energy-relevant event counts.
	Activity() PathActivity
	// CacheStats returns per-cache statistics keyed by cache name.
	CacheStats() map[string]cache.Stats
	// Reset clears all accumulated state between frames/runs.
	Reset()
}

// PathActivity counts energy-relevant events inside a texture path.
type PathActivity struct {
	// TexRequests is the number of texture requests filtered.
	TexRequests uint64
	// GPUTexelFetches counts texels fetched by GPU-side texture units.
	GPUTexelFetches uint64
	// GPUFilterOps counts GPU-side filtering ALU operations.
	GPUFilterOps uint64
	// PIMTexelFetches counts texels fetched inside the HMC logic layer.
	PIMTexelFetches uint64
	// PIMFilterOps counts logic-layer filtering ALU operations (MTU or
	// Texel Generator + Combination Unit).
	PIMFilterOps uint64
	// L1Accesses/L2Accesses count texture cache activity.
	L1Accesses, L2Accesses uint64
	// OffloadPackets/ResponsePackets count TFIM link packages.
	OffloadPackets, ResponsePackets uint64
	// AngleRecalcs counts parent texels recalculated due to camera-angle
	// threshold misses (A-TFIM, Section V-C).
	AngleRecalcs uint64
	// ParentTexelsServed counts parent texels returned to bilinear/
	// trilinear filtering (A-TFIM).
	ParentTexelsServed uint64
	// ConsolidatedFetches counts child fetches removed by the Child Texel
	// Consolidation unit.
	ConsolidatedFetches uint64
	// LatencySum/LatencyCount accumulate per-request filter latency, the
	// paper's texture-filtering performance metric (Section VII-A).
	LatencySum   int64
	LatencyCount uint64
	// QueueCycles accumulates per-request queueing delay before unit issue
	// and MemCycles the memory portion after issue (diagnostics).
	QueueCycles int64
	MemCycles   int64
	// OffloadLatencySum accumulates per-offload round-trip cycles
	// (diagnostics for the TFIM paths).
	OffloadLatencySum int64
	// BusyCycles accumulates texture-subsystem busy time: per-request unit
	// occupancy plus memory stalls the outstanding-miss window could not
	// hide. The Fig. 10 texture-filtering speedup is the ratio of this
	// quantity between designs — it measures how long the filtering
	// hardware itself is tied up per frame.
	BusyCycles float64
}

// MeanLatency returns the average texture filtering latency in cycles.
func (a PathActivity) MeanLatency() float64 {
	if a.LatencyCount == 0 {
		return 0
	}
	return float64(a.LatencySum) / float64(a.LatencyCount)
}

// FilterTime returns the texture-subsystem busy time (see BusyCycles); the
// Fig. 10 speedup between two designs is baseline.FilterTime() /
// design.FilterTime().
func (a PathActivity) FilterTime() float64 { return a.BusyCycles }

// Add merges o into a.
func (a *PathActivity) Add(o PathActivity) {
	a.TexRequests += o.TexRequests
	a.GPUTexelFetches += o.GPUTexelFetches
	a.GPUFilterOps += o.GPUFilterOps
	a.PIMTexelFetches += o.PIMTexelFetches
	a.PIMFilterOps += o.PIMFilterOps
	a.L1Accesses += o.L1Accesses
	a.L2Accesses += o.L2Accesses
	a.OffloadPackets += o.OffloadPackets
	a.ResponsePackets += o.ResponsePackets
	a.AngleRecalcs += o.AngleRecalcs
	a.ParentTexelsServed += o.ParentTexelsServed
	a.ConsolidatedFetches += o.ConsolidatedFetches
	a.LatencySum += o.LatencySum
	a.LatencyCount += o.LatencyCount
	a.QueueCycles += o.QueueCycles
	a.MemCycles += o.MemCycles
	a.OffloadLatencySum += o.OffloadLatencySum
	a.BusyCycles += o.BusyCycles
}

// Activity aggregates energy-relevant event counts for a frame.
type Activity struct {
	// VertexCount and FragmentCount size the geometry and fragment work.
	VertexCount, FragmentCount uint64
	// ShaderInstrs counts executed shader ISA instructions.
	ShaderInstrs uint64
	// ZAccesses/ColorAccesses count ROP cache activity.
	ZAccesses, ColorAccesses uint64
	// ExternalBytes counts bytes crossing the GPU<->memory boundary.
	ExternalBytes uint64
	// InternalBytes counts HMC-internal (vault) bytes.
	InternalBytes uint64
	// Path is the texture path's activity.
	Path PathActivity
	// Cycles is the frame's total cycle count.
	Cycles int64
}

// FrameResult is everything measured while rendering one frame.
type FrameResult struct {
	// Width, Height are the frame dimensions.
	Width, Height int
	// Cycles is the total frame time in GPU cycles.
	Cycles int64
	// GeometryCycles, FragmentCycles break the frame down by stage.
	GeometryCycles, FragmentCycles int64
	// Traffic is the GPU<->memory traffic by class.
	Traffic mem.Traffic
	// Activity holds the energy-model inputs.
	Activity Activity
	// Raster holds rasterizer statistics.
	Raster raster.Stats
	// Caches holds per-cache hit statistics (texture path + ROP caches).
	Caches map[string]cache.Stats
	// Image is the rendered RGBA8 frame (row-major, W*H words).
	Image []uint32
}

// TexFilterLatency returns the mean texture filtering latency.
func (r *FrameResult) TexFilterLatency() float64 { return r.Activity.Path.MeanLatency() }

// FPS returns frames per second at the given GPU clock.
func (r *FrameResult) FPS(clockGHz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return clockGHz * 1e9 / float64(r.Cycles)
}

// Accumulate merges another frame's measurements (for multi-frame runs).
func (r *FrameResult) Accumulate(o *FrameResult) {
	r.Cycles += o.Cycles
	r.GeometryCycles += o.GeometryCycles
	r.FragmentCycles += o.FragmentCycles
	r.Traffic.Add(&o.Traffic)
	r.Activity.VertexCount += o.Activity.VertexCount
	r.Activity.FragmentCount += o.Activity.FragmentCount
	r.Activity.ShaderInstrs += o.Activity.ShaderInstrs
	r.Activity.ZAccesses += o.Activity.ZAccesses
	r.Activity.ColorAccesses += o.Activity.ColorAccesses
	r.Activity.ExternalBytes += o.Activity.ExternalBytes
	r.Activity.InternalBytes += o.Activity.InternalBytes
	r.Activity.Cycles += o.Activity.Cycles
	r.Activity.Path.Add(o.Activity.Path)
	if r.Caches == nil {
		r.Caches = map[string]cache.Stats{}
	}
	for k, v := range o.Caches {
		cur := r.Caches[k]
		cur.Accesses += v.Accesses
		cur.Hits += v.Hits
		cur.Misses += v.Misses
		cur.Evictions += v.Evictions
		cur.Writebacks += v.Writebacks
		cur.AngleRejects += v.AngleRejects
		r.Caches[k] = cur
	}
	// Keep the last frame's image.
	r.Image = o.Image
	r.Width, r.Height = o.Width, o.Height
}
