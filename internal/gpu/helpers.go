package gpu

import (
	"repro/internal/raster"
	"repro/internal/texture"
)

// textureGradients extracts the fragment's analytic UV derivatives.
func textureGradients(f *raster.Fragment) texture.Gradients {
	return texture.Gradients{
		DUDX: f.DUDX, DVDX: f.DVDX,
		DUDY: f.DUDY, DVDY: f.DVDY,
	}
}

// computeFootprint wraps texture.ComputeFootprint (kept as a seam for the
// ablation benches that vary footprint policy).
func computeFootprint(t *texture.Texture, g texture.Gradients, maxAniso int) texture.Footprint {
	return texture.ComputeFootprint(t, g, maxAniso)
}
