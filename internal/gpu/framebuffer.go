package gpu

import (
	"repro/internal/mem"
	"repro/internal/texture"
)

// Framebuffer holds the render target: an RGBA8 color buffer and a float32
// depth buffer, with the address mapping used by the ROP caches.
type Framebuffer struct {
	W, H  int
	Color []uint32
	Depth []float32
}

// NewFramebuffer allocates a WxH target cleared to black / far depth.
func NewFramebuffer(w, h int) *Framebuffer {
	fb := &Framebuffer{W: w, H: h,
		Color: make([]uint32, w*h),
		Depth: make([]float32, w*h),
	}
	fb.Clear(texture.Color{A: 1})
	return fb
}

// Clear resets color and depth.
func (fb *Framebuffer) Clear(c texture.Color) {
	packed := texture.Pack(c)
	for i := range fb.Color {
		fb.Color[i] = packed
		fb.Depth[i] = 1
	}
}

// DepthAddr returns the memory address of pixel (x, y)'s depth value.
func (fb *Framebuffer) DepthAddr(x, y int) uint64 {
	return mem.RegionDepth + uint64(y*fb.W+x)*4
}

// ColorAddr returns the memory address of pixel (x, y)'s color value.
func (fb *Framebuffer) ColorAddr(x, y int) uint64 {
	return mem.RegionColor + uint64(y*fb.W+x)*4
}

// Pixel returns the color at (x, y).
func (fb *Framebuffer) Pixel(x, y int) texture.Color {
	return texture.Unpack(fb.Color[y*fb.W+x])
}
