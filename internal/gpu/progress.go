package gpu

// Stage identifies where a frame currently is in the pipeline.
type Stage string

const (
	// StageGeometry is vertex fetch + shading.
	StageGeometry Stage = "geometry"
	// StageSetup is triangle setup + supertile binning.
	StageSetup Stage = "setup"
	// StageFragment is the fork/join tile-group fragment stage.
	StageFragment Stage = "fragment"
	// StageResolve is the end-of-frame present/scan-out pass.
	StageResolve Stage = "resolve"
	// StageDone marks a fully simulated frame.
	StageDone Stage = "done"
)

// Progress is a point-in-time report of a frame simulation in flight:
// which stage is running, how many supertile groups have completed out of
// the frame's fixed group list, and how many cycles of the frame timeline
// are accounted for so far. During the fragment stage Cycles grows by
// each finished group's duration as it completes; group durations merge
// commutatively, so the running total is deterministic at the end even
// though the in-flight ordering is not.
//
// Reports are observational only — they are derived from values the
// timing model already produced and can never feed back into it — so
// simulated results are byte-identical with and without a callback.
type Progress struct {
	Frame       int   `json:"frame"`
	Stage       Stage `json:"stage"`
	GroupsDone  int   `json:"groups_done"`
	GroupsTotal int   `json:"groups_total"`
	Cycles      int64 `json:"cycles"`
}

// report invokes the pipeline's progress callback if one is attached.
// During the fragment stage it is called from worker goroutines
// concurrently, so callbacks must be safe for concurrent use (publish to
// atomics, channels, or instruments — never into simulator state).
func (p *Pipeline) report(pr Progress) {
	if p.Progress != nil {
		p.Progress(pr)
	}
}
