package gpu

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/raster"
	"repro/internal/scene"
	"repro/internal/shader"
)

// groupTiles is the supertile edge in raster tiles: a group of
// groupTiles x groupTiles tiles (64x64 pixels) is the hermetic unit of
// parallel fragment work. The group size is a model constant — it does NOT
// change with Options.Shards — so the partitioning, and therefore every
// counter, is identical at any shard count; Shards only decides how many
// host goroutines drain the fixed group list.
const groupTiles = 4

// groupPx is the supertile edge in pixels.
const groupPx = groupTiles * raster.TileSize

// workerTraceCap bounds each worker's private span ring. Workers trace
// into a private ring so group-local cycle stamps can be rebased onto the
// frame timeline at merge time regardless of which goroutine ran the group.
const workerTraceCap = 1 << 15

// workItem is one tile of one setup triangle. Items within a group keep
// the global triangle-then-tile scan order, so a tile's fragment sequence
// is identical to a serial scan of the whole frame.
type workItem struct {
	st   int32
	tile raster.Tile
}

// tileGroup is one supertile group's work list plus its pixel origin on
// screen (the identity per-group attribution profiles key heatmaps by).
type tileGroup struct {
	x0, y0 int
	items  []workItem
}

// groupResult captures one hermetically simulated tile group: the group's
// duration on the frame's fragment timeline, and every counter it
// accumulated from local time zero.
type groupResult struct {
	duration int64
	traffic  mem.Traffic
	activity Activity
	raster   raster.Stats
	caches   map[string]cache.Stats
	events   []obs.Event
	// timelines holds the worker backend's group-local bandwidth
	// timelines when the frame is being profiled; the merge rebases them
	// onto the frame timeline at the group's offset.
	timelines map[string]obs.Timeline
}

// trafficSource matches texture paths that account their own memory
// traffic separately from the pipeline's (mirrors internal/core).
type trafficSource interface{ Traffic() *mem.Traffic }

// shardWorker owns the complete mutable per-fragment machine state: a
// private memory backend and texture path, private ROP caches, private
// shader-cluster cursors/in-flight windows, and private statistic
// accumulators. Each tile group is simulated hermetically: the worker is
// fully reset, the group runs from local cycle zero, and the group's
// counters are captured into a groupResult for the deterministic merge.
type shardWorker struct {
	p             *Pipeline
	backend       mem.Backend
	path          TexturePath
	internalBytes func() uint64 // HMC-internal byte counter; nil when absent

	rast       *raster.Rasterizer
	machine    shader.Machine
	zCache     *cache.Cache
	colorCache *cache.Cache

	// Per-cluster state.
	cursor   []float64
	horizon  []int64
	inflight [][]int64
	inflHead []int

	traffic  mem.Traffic
	activity Activity

	// Current fragment context for the TEX callback.
	curFrag    *raster.Fragment
	curTex     int
	curDone    int64
	curNow     int64
	curCluster int

	// trace is a private ring holding group-local spans; nil when the
	// frame is not being traced or the worker shares the frame backend.
	trace        *obs.Tracer
	clusterTrack []string
}

// newShardWorker builds a worker around a backend/path pair. ownsUnits is
// true when backend/path are private to this worker (factory mode): only
// then may a private tracer be attached to them for span rebasing.
func newShardWorker(p *Pipeline, backend mem.Backend, path TexturePath, internalBytes func() uint64, ownsUnits bool) *shardWorker {
	w := &shardWorker{
		p:             p,
		backend:       backend,
		path:          path,
		internalBytes: internalBytes,
		rast:          p.rast.ShardView(),
	}
	cfg := p.Cfg
	w.zCache = cache.New(cache.Config{
		Name: "zcache", SizeBytes: cfg.GPU.ZCacheKB * 1024, Ways: 8,
		LineBytes: mem.LineSize, WriteBack: true,
	})
	w.colorCache = cache.New(cache.Config{
		Name: "colorcache", SizeBytes: cfg.GPU.ColorCacheKB * 1024, Ways: 8,
		LineBytes: mem.LineSize, WriteBack: true,
	})
	n := cfg.GPU.Clusters
	w.cursor = make([]float64, n)
	w.horizon = make([]int64, n)
	w.inflight = make([][]int64, n)
	for i := range w.inflight {
		w.inflight[i] = make([]int64, maxInflightPerCluster)
	}
	w.inflHead = make([]int, n)
	if p.trace.On() && ownsUnits {
		w.trace = obs.NewTracer(workerTraceCap)
		w.clusterTrack = make([]string, n)
		for i := range w.clusterTrack {
			w.clusterTrack[i] = fmt.Sprintf("cluster%02d", i)
		}
		if ta, ok := backend.(obs.TraceAttacher); ok {
			ta.SetTracer(w.trace)
		}
		if ta, ok := path.(obs.TraceAttacher); ok {
			ta.SetTracer(w.trace)
		}
	}
	return w
}

// resetForGroup restores the worker to its initial state so the next group
// is simulated as if on freshly powered-on hardware — the property that
// makes group results independent of which worker runs which group.
func (w *shardWorker) resetForGroup() {
	w.backend.Reset()
	w.path.Reset()
	w.zCache.Reset()
	w.colorCache.Reset()
	w.rast.ResetStats()
	for i := range w.cursor {
		w.cursor[i] = 0
		w.horizon[i] = 0
		w.inflHead[i] = 0
		ring := w.inflight[i]
		for j := range ring {
			ring[j] = 0
		}
	}
	w.traffic = mem.Traffic{}
	w.activity = Activity{}
	w.machine = shader.Machine{}
	w.machine.TexSample = w.texSample
	w.trace.Reset()
}

// runGroup simulates one tile group from local cycle zero and captures its
// duration and counters. sts is the frame's shared, read-only setup-
// triangle table.
func (w *shardWorker) runGroup(items []workItem, sts []raster.SetupTriangle) groupResult {
	w.resetForGroup()
	tracing := w.trace.On()
	clusters := w.p.Cfg.GPU.Clusters
	nextCluster := 0
	for i := range items {
		it := &items[i]
		cluster := nextCluster
		nextCluster = (nextCluster + 1) % clusters
		tileStart := int64(w.cursor[cluster])
		w.rast.ScanTile(&sts[it.st], it.tile, func(f *raster.Fragment) {
			w.shadeFragment(f, cluster)
		})
		if tracing {
			if tileEnd := int64(w.cursor[cluster]); tileEnd > tileStart {
				w.trace.Span(w.clusterTrack[cluster], "tile", tileStart, tileEnd)
			}
		}
	}

	endCompute := int64(0)
	for c := range w.cursor {
		if t := int64(math.Ceil(w.cursor[c])); t > endCompute {
			endCompute = t
		}
		if w.horizon[c] > endCompute {
			endCompute = w.horizon[c]
		}
	}
	if pathDone := w.path.EndFrame(endCompute); pathDone > endCompute {
		endCompute = pathDone
	}
	flushDone := w.flushROPCaches(endCompute)
	dur := flushDone
	if b := w.backend.BusyUntil(); b > dur {
		dur = b
	}

	gr := groupResult{duration: dur, traffic: w.traffic, raster: w.rast.Stats()}
	if tr, ok := w.path.(trafficSource); ok {
		gr.traffic.Add(tr.Traffic())
	}
	gr.activity = w.activity
	gr.activity.Path = w.path.Activity()
	gr.activity.ShaderInstrs = w.machine.InstrCount
	if w.internalBytes != nil {
		gr.activity.InternalBytes = w.internalBytes()
	}
	gr.caches = map[string]cache.Stats{
		"zcache":     w.zCache.Stats(),
		"colorcache": w.colorCache.Stats(),
	}
	for k, v := range w.path.CacheStats() {
		gr.caches[k] = v
	}
	if tracing {
		gr.events = w.trace.Events()
	}
	// Profiling: capture the backend's group-local bandwidth timelines
	// before the next group resets the worker. Reading meters never
	// mutates them, so profiled and unprofiled runs stay byte-identical.
	if w.p.Profiler != nil {
		gr.timelines = captureBackend(w.backend, profileGroupBuckets)
	}
	return gr
}

// shadeFragment runs the fragment program (issuing the texture request)
// and the ROP for one fragment on the given cluster, in group-local time.
func (w *shardWorker) shadeFragment(f *raster.Fragment, cluster int) {
	w.activity.FragmentCount++
	cfg := &w.p.Cfg.GPU

	// Per-fragment shader issue cost: the cluster's shaders process
	// ShadersPerCluster fragments in parallel.
	fsCost := float64(w.p.fs.CycleCost()) / float64(cfg.ShadersPerCluster)
	w.cursor[cluster] += fsCost
	now := int64(w.cursor[cluster])

	// Bounded in-flight window: if full, the cluster stalls until the
	// oldest outstanding request completes.
	ring := w.inflight[cluster]
	head := w.inflHead[cluster]
	if oldest := ring[head]; oldest > now {
		stall := oldest - now
		w.cursor[cluster] += float64(stall)
		now = oldest
	}

	// Per-pixel camera angle (the quantity A-TFIM tags texels with).
	f.ViewAngle = w.p.viewAngle(f)

	// Fragment shading (TEX routed through texSample).
	w.curFrag = f
	w.curTex = f.TexID
	w.curNow = now
	w.curCluster = cluster
	w.curDone = now
	w.machine.SetInput(0, shader.Vec{f.UV.X, f.UV.Y, 0, 0})
	w.machine.SetInput(1, shader.Vec{f.Color.X, f.Color.Y, f.Color.Z, f.Color.W})
	n := f.Normal.Normalize()
	w.machine.SetInput(2, shader.Vec{n.X, n.Y, n.Z, 0})
	if err := w.machine.Run(w.p.fs); err != nil {
		panic(err)
	}
	out := w.machine.Output(0)

	done := w.curDone
	ring[head] = done
	w.inflHead[cluster] = (head + 1) % len(ring)
	if done > w.horizon[cluster] {
		w.horizon[cluster] = done
	}

	// ROP: Z test + color write, through the ROP caches.
	w.ropFragment(f, out, now)
}

// texSample is the TEX instruction hook: it builds the texture request for
// the current fragment and forwards it to the worker's texture path.
func (w *shardWorker) texSample(sampler uint8, coords shader.Vec) shader.Vec {
	p := w.p
	f := w.curFrag
	texID := (w.curTex + int(sampler)) % len(p.scene.Textures)
	tex := p.scene.Textures[texID]
	scale := samplerUVScale(sampler)
	grads := textureGradients(f)
	grads.DUDX *= scale
	grads.DVDX *= scale
	grads.DUDY *= scale
	grads.DVDY *= scale
	foot := computeFootprint(tex, grads, p.effectiveMaxAniso())
	foot.Angle = f.ViewAngle
	req := TexRequest{
		Tex:     tex,
		U:       coords[0],
		V:       coords[1],
		Foot:    foot,
		Cluster: w.curCluster,
	}
	res := w.path.Sample(w.curNow, &req)
	if res.Done > w.curDone {
		w.curDone = res.Done
	}
	return shader.Vec{res.Color.R, res.Color.G, res.Color.B, res.Color.A}
}

// ropFragment performs the late Z test and color write with cache-modelled
// memory traffic. Framebuffer, depth, and HiZ writes touch only the
// fragment's own tile, so concurrent groups never overlap.
func (w *shardWorker) ropFragment(f *raster.Fragment, colorOut shader.Vec, now int64) {
	fb := w.p.fb
	idx := f.Y*fb.W + f.X
	w.activity.ZAccesses++

	// Z read (the early-Z already compared; the ROP re-checks and writes).
	zAddr := fb.DepthAddr(f.X, f.Y)
	if r := w.zCache.Access(zAddr, false); !r.Hit {
		w.backend.Access(now, mem.Request{Addr: mem.LineAddr(zAddr), Size: mem.LineSize, Class: mem.ClassZ, Kind: mem.Read})
		w.traffic.Record(mem.ClassZ, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
	} else if r.Writeback {
		w.writeback(r.VictimAddr, mem.ClassZ, now)
	}
	if f.Depth >= fb.Depth[idx] {
		return // occluded
	}
	// Z write.
	if r := w.zCache.Access(zAddr, true); r.Writeback {
		w.writeback(r.VictimAddr, mem.ClassZ, now)
	}
	fb.Depth[idx] = f.Depth
	w.rast.UpdateHiZ(raster.Tile{X0: f.X &^ (raster.TileSize - 1), Y0: f.Y &^ (raster.TileSize - 1)}, tileMaxDepth(fb, f.X, f.Y))

	// Color write.
	w.activity.ColorAccesses++
	cAddr := fb.ColorAddr(f.X, f.Y)
	if r := w.colorCache.Access(cAddr, true); !r.Hit {
		// Allocate-on-write fill read.
		w.backend.Access(now, mem.Request{Addr: mem.LineAddr(cAddr), Size: mem.LineSize, Class: mem.ClassColor, Kind: mem.Read})
		w.traffic.Record(mem.ClassColor, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
		if r.Writeback {
			w.writeback(r.VictimAddr, mem.ClassColor, now)
		}
	} else if r.Writeback {
		w.writeback(r.VictimAddr, mem.ClassColor, now)
	}
	fb.Color[idx] = packShaderColor(colorOut)
}

func (w *shardWorker) writeback(addr uint64, class mem.Class, now int64) {
	w.backend.Access(now, mem.Request{Addr: addr, Size: mem.LineSize, Class: class, Kind: mem.Write})
	w.traffic.Record(class, mem.Write, mem.LineSize+mem.RequestOverheadBytes)
}

// flushROPCaches drains dirty Z/color lines at group end.
func (w *shardWorker) flushROPCaches(now int64) int64 {
	end := now
	for _, addr := range w.zCache.FlushDirty() {
		done := w.backend.Access(now, mem.Request{Addr: addr, Size: mem.LineSize, Class: mem.ClassZ, Kind: mem.Write})
		w.traffic.Record(mem.ClassZ, mem.Write, mem.LineSize+mem.RequestOverheadBytes)
		if done > end {
			end = done
		}
	}
	for _, addr := range w.colorCache.FlushDirty() {
		done := w.backend.Access(now, mem.Request{Addr: addr, Size: mem.LineSize, Class: mem.ClassColor, Kind: mem.Write})
		w.traffic.Record(mem.ClassColor, mem.Write, mem.LineSize+mem.RequestOverheadBytes)
		if done > end {
			end = done
		}
	}
	return end
}

// binTriangles performs serial triangle setup and bins every covered tile
// into its supertile group, preserving the global triangle-then-tile scan
// order within each group. It returns the setup stage's cycle cost, the
// shared read-only setup-triangle table, and the non-empty groups in fixed
// screen order.
func (p *Pipeline) binTriangles(s *scene.Scene, verts []raster.Vertex) (int64, []raster.SetupTriangle, []tileGroup) {
	clusters := p.Cfg.GPU.Clusters
	setupCycles := int64(math.Ceil(float64(len(s.Mesh.Triangles)*triSetupCycles) / float64(clusters*clusters)))

	groupsX := (p.fb.W + groupPx - 1) / groupPx
	groupsY := (p.fb.H + groupPx - 1) / groupPx
	bins := make([][]workItem, groupsX*groupsY)
	var sts []raster.SetupTriangle
	for _, tri := range s.Mesh.Triangles {
		tv := [3]raster.Vertex{verts[tri.V[0]], verts[tri.V[1]], verts[tri.V[2]]}
		for _, st := range p.rast.Setup(tv, tri.TexID) {
			stIdx := int32(len(sts))
			sts = append(sts, st)
			for _, tile := range st.Tiles() {
				g := (tile.Y0/groupPx)*groupsX + tile.X0/groupPx
				bins[g] = append(bins[g], workItem{st: stIdx, tile: tile})
			}
		}
	}
	groups := make([]tileGroup, 0, len(bins))
	for g, b := range bins {
		if len(b) > 0 {
			groups = append(groups, tileGroup{
				x0:    (g % groupsX) * groupPx,
				y0:    (g / groupsX) * groupPx,
				items: b,
			})
		}
	}
	return setupCycles, sts, groups
}

// runGroups drains the fixed group list with p.Shards worker goroutines
// and returns per-group results indexed in group order. Cancellation is
// observed at group boundaries. onGroup, when non-nil, is called with
// each group's duration as it completes (from worker goroutines in the
// parallel path); it must not touch simulator state.
func (p *Pipeline) runGroups(ctx context.Context, sts []raster.SetupTriangle, groups []tileGroup, onGroup func(int64)) ([]groupResult, error) {
	results := make([]groupResult, len(groups))
	if len(groups) == 0 {
		return results, ctx.Err()
	}

	if p.NewWorker == nil {
		// No worker factory: run every group serially on the frame-level
		// backend/path. Still hermetic and deterministic (the units are
		// reset around each group), but a single goroutine regardless of
		// Shards since the units cannot be replicated.
		w := newShardWorker(p, p.Backend, p.Path, nil, false)
		for g := range groups {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[g] = w.runGroup(groups[g].items, sts)
			if onGroup != nil {
				onGroup(results[g].duration)
			}
		}
		// Leave the shared units clean so frame-level consumers (resolve,
		// path traffic readers) do not observe — or double count — the
		// last group's state.
		w.backend.Reset()
		w.path.Reset()
		return results, nil
	}

	shards := p.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > len(groups) {
		shards = len(groups)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			backend, path, internalBytes := p.NewWorker()
			w := newShardWorker(p, backend, path, internalBytes, true)
			for {
				if ctx.Err() != nil {
					return
				}
				g := int(next.Add(1)) - 1
				if g >= len(groups) {
					return
				}
				results[g] = w.runGroup(groups[g].items, sts)
				if onGroup != nil {
					onGroup(results[g].duration)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
