package gpu

import (
	"sort"

	"repro/internal/obs"
)

// profileGroupBuckets is the per-group meter-timeline resolution captured
// by shard workers. Group-local timelines are resampled onto the frame
// timeline at merge, so this only bounds the capture granularity inside
// one group's span.
const profileGroupBuckets = 64

// FrameProfiler assembles pim-render/frameprofile/v1 frame anatomies while
// a pipeline renders. The profiler is fed exclusively from the pipeline's
// serial sections (stage boundaries and the deterministic merge loop);
// shard workers capture their group-local meter timelines into the
// groupResult instead, so profiling needs no locking and the artifact is
// byte-identical at any shard count. Attach one via Pipeline.Profiler;
// like tracing, it only reads values the timing model already produced
// and can never perturb simulated results.
type FrameProfiler struct {
	// Buckets is the frame-timeline resolution (<= 0 selects
	// obs.DefaultTimelineBuckets).
	Buckets int

	frames []obs.FrameAnatomy

	// Per-frame scratch, reset by beginFrame.
	sources []obs.PlacedTimeline
	groups  []obs.GroupProfile
	stages  []obs.StageSpan
}

// Frames returns the anatomies of every frame completed so far, in render
// order.
func (fp *FrameProfiler) Frames() []obs.FrameAnatomy {
	if fp == nil {
		return nil
	}
	return fp.frames
}

// bucketCount resolves the configured frame-timeline resolution.
func (fp *FrameProfiler) bucketCount() int {
	if fp.Buckets > 0 {
		return fp.Buckets
	}
	return obs.DefaultTimelineBuckets
}

// beginFrame clears the per-frame scratch.
func (fp *FrameProfiler) beginFrame() {
	fp.sources = fp.sources[:0]
	fp.groups = fp.groups[:0]
	fp.stages = fp.stages[:0]
}

// addSource places a backend's meter timelines at offset on the frame
// timeline. Meter names are iterated sorted, so the float accumulation
// order in the final merge — and therefore the artifact — is
// deterministic.
func (fp *FrameProfiler) addSource(offset int64, timelines map[string]obs.Timeline) {
	if len(timelines) == 0 {
		return
	}
	names := make([]string, 0, len(timelines))
	for name := range timelines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fp.sources = append(fp.sources, obs.PlacedTimeline{
			Meter: name, Offset: offset, Timeline: timelines[name],
		})
	}
}

// addGroup records one merged supertile group's attribution.
func (fp *FrameProfiler) addGroup(g obs.GroupProfile) {
	fp.groups = append(fp.groups, g)
}

// addStage records one pipeline stage span.
func (fp *FrameProfiler) addStage(name string, start, end int64) {
	fp.stages = append(fp.stages, obs.StageSpan{Name: name, Start: start, End: end})
}

// endFrame merges the collected sources onto the frame timeline and
// appends the finished anatomy.
func (fp *FrameProfiler) endFrame(frame, width, height int, total int64) {
	buckets := fp.bucketCount()
	a := obs.FrameAnatomy{
		Frame:     frame,
		Width:     width,
		Height:    height,
		Cycles:    total,
		GroupPx:   groupPx,
		Stages:    append([]obs.StageSpan(nil), fp.stages...),
		Timelines: obs.MergeTimelines(fp.sources, total, buckets),
		Groups:    append([]obs.GroupProfile(nil), fp.groups...),
	}
	fp.frames = append(fp.frames, a)
}

// captureBackend reads a backend's meter timelines, when it has any.
func captureBackend(backend any, buckets int) map[string]obs.Timeline {
	ts, ok := backend.(obs.TimelineSource)
	if !ok {
		return nil
	}
	return ts.BandwidthTimelines(buckets)
}
