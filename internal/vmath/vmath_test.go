package vmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float32) bool {
	return float32(math.Abs(float64(a-b))) <= eps
}

func TestIdentityMul(t *testing.T) {
	id := Identity()
	m := Translate(1, 2, 3).Mul(RotateY(0.7)).Mul(Scale3(2, 2, 2))
	left := id.Mul(m)
	right := m.Mul(id)
	for i := 0; i < 16; i++ {
		if left[i] != m[i] || right[i] != m[i] {
			t.Fatalf("identity multiplication changed element %d", i)
		}
	}
}

func TestMatMulAssociativity(t *testing.T) {
	a := Translate(1, -2, 3)
	b := RotateX(0.4)
	c := Perspective(1.0, 1.5, 0.1, 100)
	ab_c := a.Mul(b).Mul(c)
	a_bc := a.Mul(b.Mul(c))
	for i := 0; i < 16; i++ {
		if !almostEq(ab_c[i], a_bc[i], 1e-4) {
			t.Fatalf("associativity violated at %d: %g vs %g", i, ab_c[i], a_bc[i])
		}
	}
}

func TestMatVecMatchesComposition(t *testing.T) {
	m := Translate(5, 0, 0)
	n := Scale3(2, 2, 2)
	v := Vec4{X: 1, Y: 1, Z: 1, W: 1}
	// (m*n)*v == m*(n*v)
	lhs := m.Mul(n).MulVec(v)
	rhs := m.MulVec(n.MulVec(v))
	if lhs != rhs {
		t.Fatalf("composition mismatch: %v vs %v", lhs, rhs)
	}
	if rhs.X != 7 || rhs.Y != 2 || rhs.Z != 2 {
		t.Fatalf("translate(scale(v)) wrong: %v", rhs)
	}
}

func TestRotationPreservesLength(t *testing.T) {
	err := quick.Check(func(x, y, z float32, angle float32) bool {
		v := Vec4{X: clampT(x), Y: clampT(y), Z: clampT(z), W: 0}
		r := RotateY(clampT(angle)).MulVec(v)
		lv := math.Sqrt(float64(v.Dot3(v)))
		lr := math.Sqrt(float64(r.Dot3(r)))
		return math.Abs(lv-lr) < 1e-3*(lv+1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// clampT maps arbitrary floats into a sane test range.
func clampT(v float32) float32 {
	if v != v || v > 100 || v < -100 { // NaN or huge
		return 1
	}
	return v
}

func TestTransposeInvolution(t *testing.T) {
	err := quick.Check(func(seed uint8) bool {
		m := RotateZ(float32(seed) / 40).Mul(Translate(float32(seed), 1, 2))
		return m.Transpose().Transpose() == m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	err := quick.Check(func(ax, ay, az, bx, by, bz float32) bool {
		a := Vec3{clampT(ax), clampT(ay), clampT(az)}
		b := Vec3{clampT(bx), clampT(by), clampT(bz)}
		c := a.Cross(b)
		return almostEq(c.Dot(a), 0, 1e-2) && almostEq(c.Dot(b), 0, 1e-2)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeUnitLength(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalize()
	if !almostEq(v.Len(), 1, 1e-6) {
		t.Fatalf("normalized length %g", v.Len())
	}
	zero := Vec3{}.Normalize()
	if zero != (Vec3{}) {
		t.Fatalf("zero vector should normalize to itself")
	}
}

func TestLookAtMapsEyeToOrigin(t *testing.T) {
	eye := Vec3{X: 3, Y: 2, Z: 5}
	m := LookAt(eye, Vec3{X: 0, Y: 0, Z: 0}, Vec3{Y: 1})
	p := m.MulVec(Vec4{X: eye.X, Y: eye.Y, Z: eye.Z, W: 1})
	if !almostEq(p.X, 0, 1e-4) || !almostEq(p.Y, 0, 1e-4) || !almostEq(p.Z, 0, 1e-4) {
		t.Fatalf("eye maps to %v, want origin", p)
	}
}

func TestLookAtForwardIsMinusZ(t *testing.T) {
	m := LookAt(Vec3{Z: 10}, Vec3{}, Vec3{Y: 1})
	// A point in front of the camera should land at negative eye-space Z.
	p := m.MulVec(Vec4{X: 0, Y: 0, Z: 0, W: 1})
	if p.Z >= 0 {
		t.Fatalf("look-at target has z=%g, want negative", p.Z)
	}
}

func TestPerspectiveDepthRange(t *testing.T) {
	proj := Perspective(1.0, 1.0, 1, 100)
	near := proj.MulVec(Vec4{Z: -1, W: 1})
	far := proj.MulVec(Vec4{Z: -100, W: 1})
	if !almostEq(near.Z/near.W, -1, 1e-4) {
		t.Errorf("near plane maps to %g, want -1", near.Z/near.W)
	}
	if !almostEq(far.Z/far.W, 1, 1e-4) {
		t.Errorf("far plane maps to %g, want 1", far.Z/far.W)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a := Vec4{X: 1, Y: 2, Z: 3, W: 4}
	b := Vec4{X: -1, Y: 0, Z: 7, W: 2}
	if Lerp(a, b, 0) != a {
		t.Error("lerp(0) != a")
	}
	if Lerp(a, b, 1) != b {
		t.Error("lerp(1) != b")
	}
	mid := Lerp(a, b, 0.5)
	if !almostEq(mid.X, 0, 1e-6) || !almostEq(mid.Z, 5, 1e-6) {
		t.Errorf("midpoint wrong: %v", mid)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float32 }{
		{5, 0, 1, 1}, {-5, 0, 1, 0}, {0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g)=%g want %g", c.v, got, c.want)
		}
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Max(2, 3) != 3 || Min(2, 3) != 2 || Abs(-4) != 4 || Abs(4) != 4 {
		t.Fatal("Min/Max/Abs broken")
	}
}
