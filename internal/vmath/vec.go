// Package vmath provides the small linear-algebra kernel used by the
// renderer: 2/3/4-component float32 vectors, 4x4 matrices, and the
// projection/view transforms needed for 3D rendering.
package vmath

import "math"

// Vec2 is a 2-component float32 vector (used for texture coordinates).
type Vec2 struct {
	X, Y float32
}

// Vec3 is a 3-component float32 vector.
type Vec3 struct {
	X, Y, Z float32
}

// Vec4 is a 4-component float32 vector (homogeneous positions, RGBA colors).
type Vec4 struct {
	X, Y, Z, W float32
}

// Add returns a+b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a-b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Scale returns a*s.
func (a Vec2) Scale(s float32) Vec2 { return Vec2{a.X * s, a.Y * s} }

// Dot returns the dot product of a and b.
func (a Vec2) Dot(b Vec2) float32 { return a.X*b.X + a.Y*b.Y }

// Len returns the Euclidean length of a.
func (a Vec2) Len() float32 { return float32(math.Sqrt(float64(a.Dot(a)))) }

// Add returns a+b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a-b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a*s.
func (a Vec3) Scale(s float32) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product of a and b.
func (a Vec3) Dot(b Vec3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a x b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length of a.
func (a Vec3) Len() float32 { return float32(math.Sqrt(float64(a.Dot(a)))) }

// Normalize returns a unit-length copy of a. The zero vector is returned
// unchanged.
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Add returns a+b.
func (a Vec4) Add(b Vec4) Vec4 {
	return Vec4{a.X + b.X, a.Y + b.Y, a.Z + b.Z, a.W + b.W}
}

// Sub returns a-b.
func (a Vec4) Sub(b Vec4) Vec4 {
	return Vec4{a.X - b.X, a.Y - b.Y, a.Z - b.Z, a.W - b.W}
}

// Scale returns a*s.
func (a Vec4) Scale(s float32) Vec4 {
	return Vec4{a.X * s, a.Y * s, a.Z * s, a.W * s}
}

// Mul returns the component-wise product of a and b.
func (a Vec4) Mul(b Vec4) Vec4 {
	return Vec4{a.X * b.X, a.Y * b.Y, a.Z * b.Z, a.W * b.W}
}

// Dot returns the 4-component dot product of a and b.
func (a Vec4) Dot(b Vec4) float32 {
	return a.X*b.X + a.Y*b.Y + a.Z*b.Z + a.W*b.W
}

// Dot3 returns the dot product of the XYZ components only.
func (a Vec4) Dot3(b Vec4) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// XYZ returns the first three components as a Vec3.
func (a Vec4) XYZ() Vec3 { return Vec3{a.X, a.Y, a.Z} }

// Lerp returns a + t*(b-a), the linear interpolation between a and b.
func Lerp(a, b Vec4, t float32) Vec4 {
	return Vec4{
		a.X + t*(b.X-a.X),
		a.Y + t*(b.Y-a.Y),
		a.Z + t*(b.Z-a.Z),
		a.W + t*(b.W-a.W),
	}
}

// Lerp2 returns the linear interpolation between two Vec2 values.
func Lerp2(a, b Vec2, t float32) Vec2 {
	return Vec2{a.X + t*(b.X-a.X), a.Y + t*(b.Y-a.Y)}
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp01 limits v to [0, 1].
func Clamp01(v float32) float32 { return Clamp(v, 0, 1) }

// Abs returns the absolute value of v.
func Abs(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// Max returns the larger of a and b.
func Max(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}
