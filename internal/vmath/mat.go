package vmath

import "math"

// Mat4 is a 4x4 row-major float32 matrix.
type Mat4 [16]float32

// Identity returns the 4x4 identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m*n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// MulVec returns the matrix-vector product m*v.
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// Row returns row i of the matrix as a Vec4.
func (m Mat4) Row(i int) Vec4 {
	return Vec4{m[i*4], m[i*4+1], m[i*4+2], m[i*4+3]}
}

// Transpose returns the transpose of m.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[j*4+i] = m[i*4+j]
		}
	}
	return r
}

// Translate returns a translation matrix by (x, y, z).
func Translate(x, y, z float32) Mat4 {
	return Mat4{
		1, 0, 0, x,
		0, 1, 0, y,
		0, 0, 1, z,
		0, 0, 0, 1,
	}
}

// Scale3 returns a scaling matrix by (x, y, z).
func Scale3(x, y, z float32) Mat4 {
	return Mat4{
		x, 0, 0, 0,
		0, y, 0, 0,
		0, 0, z, 0,
		0, 0, 0, 1,
	}
}

// RotateX returns a rotation matrix about the X axis by angle radians.
func RotateX(angle float32) Mat4 {
	s, c := sincos(angle)
	return Mat4{
		1, 0, 0, 0,
		0, c, -s, 0,
		0, s, c, 0,
		0, 0, 0, 1,
	}
}

// RotateY returns a rotation matrix about the Y axis by angle radians.
func RotateY(angle float32) Mat4 {
	s, c := sincos(angle)
	return Mat4{
		c, 0, s, 0,
		0, 1, 0, 0,
		-s, 0, c, 0,
		0, 0, 0, 1,
	}
}

// RotateZ returns a rotation matrix about the Z axis by angle radians.
func RotateZ(angle float32) Mat4 {
	s, c := sincos(angle)
	return Mat4{
		c, -s, 0, 0,
		s, c, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

func sincos(a float32) (s, c float32) {
	sd, cd := math.Sincos(float64(a))
	return float32(sd), float32(cd)
}

// Perspective returns a right-handed perspective projection matrix with the
// given vertical field of view (radians), aspect ratio (width/height) and
// near/far clip distances. Depth maps to [-1, 1] NDC (OpenGL convention).
func Perspective(fovY, aspect, near, far float32) Mat4 {
	f := float32(1 / math.Tan(float64(fovY)/2))
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// LookAt returns a view matrix placing the camera at eye, looking toward
// center, with the given up direction.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	m := Mat4{
		s.X, s.Y, s.Z, 0,
		u.X, u.Y, u.Z, 0,
		-f.X, -f.Y, -f.Z, 0,
		0, 0, 0, 1,
	}
	return m.Mul(Translate(-eye.X, -eye.Y, -eye.Z))
}
