package hmc

import (
	"testing"

	"repro/internal/mem"
)

func TestIdleExternalReadLatency(t *testing.T) {
	h := New(DefaultConfig())
	done := h.Access(0, mem.Request{Addr: 0x1000, Size: 64, Kind: mem.Read})
	if done <= 0 || done > 80 {
		t.Errorf("idle external read latency %d out of range (0, 80]", done)
	}
	t.Logf("idle external read: %d cycles", done)
}

func TestInternalFasterThanExternal(t *testing.T) {
	hExt := New(DefaultConfig())
	hInt := New(DefaultConfig())
	ext := hExt.Access(0, mem.Request{Addr: 0x1000, Size: 64, Kind: mem.Read})
	intl := hInt.InternalAccess(0, mem.Request{Addr: 0x1000, Size: 64, Kind: mem.Read})
	t.Logf("external=%d internal=%d", ext, intl)
	if intl >= ext {
		t.Errorf("internal access (%d) should beat external (%d)", intl, ext)
	}
}

func TestExternalStreamBandwidth(t *testing.T) {
	h := New(DefaultConfig())
	const n = 200000
	var last int64
	for i := 0; i < n; i++ {
		done := h.Access(0, mem.Request{Addr: uint64(i) * 64, Size: 64, Kind: mem.Read})
		if done > last {
			last = done
		}
	}
	bw := float64(n*64) / float64(last)
	t.Logf("external sustained %.1f B/cy (peak %.1f)", bw, h.PeakBandwidth())
	if bw < 100 {
		t.Errorf("external sustained bandwidth %.1f too low", bw)
	}
}

func TestInternalStreamBandwidth(t *testing.T) {
	h := New(DefaultConfig())
	const n = 200000
	var last int64
	for i := 0; i < n; i++ {
		done := h.InternalAccess(0, mem.Request{Addr: uint64(i) * 64, Size: 64, Kind: mem.Read})
		if done > last {
			last = done
		}
	}
	bw := float64(n*64) / float64(last)
	t.Logf("internal sustained %.1f B/cy (peak %.1f)", bw, h.InternalPeakBandwidth())
	if bw < 0.7*h.InternalPeakBandwidth() {
		t.Errorf("internal sustained bandwidth %.1f below 70%% of peak %.1f", bw, h.InternalPeakBandwidth())
	}
	if bw <= h.PeakBandwidth() {
		t.Errorf("internal bandwidth %.1f should exceed external peak %.1f", bw, h.PeakBandwidth())
	}
}

// TestSTFIMLikeRoundTrip emulates the S-TFIM request pattern: package in,
// a few internal line fetches, package out — at a modest arrival rate —
// and checks the mean round trip stays bounded.
func TestSTFIMLikeRoundTrip(t *testing.T) {
	h := New(DefaultConfig())
	const n = 50000
	var sum int64
	seed := uint64(99)
	for i := 0; i < n; i++ {
		now := int64(i * 5)
		arrive := h.SendPacket(now, 64)
		var maxMem int64 = arrive
		for k := 0; k < 5; k++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			addr := (seed >> 18) % (1 << 28) &^ 63
			done := h.InternalAccess(arrive, mem.Request{Addr: addr, Size: 64, Kind: mem.Read})
			if done > maxMem {
				maxMem = done
			}
		}
		done := h.ReturnPacket(maxMem+4, 16)
		sum += done - now
	}
	meanLat := float64(sum) / n
	t.Logf("S-TFIM-like round trip mean latency: %.1f cycles", meanLat)
	if meanLat > 400 {
		t.Errorf("round trip latency %.1f looks unbounded", meanLat)
	}
}
