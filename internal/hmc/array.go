package hmc

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/obs"
)

// Cube is the interface the texture-filtering-in-memory paths program
// against: a single HMC or an Array of them. Packet sends carry the
// address they concern so an array can route them — Section V-E: "a parent
// texel fetch package from a texture unit will be mapped to a single HMC
// because the requested parent texels and their generated child texels
// access different mipmap levels of the same texture".
type Cube interface {
	mem.Backend
	// InternalAccess performs a logic-layer access (no external links).
	InternalAccess(now int64, req mem.Request) int64
	// SendPacketTo ships a host->cube package concerning addr.
	SendPacketTo(now int64, addr uint64, payloadBytes int) int64
	// ReturnPacketFrom ships a cube->host package concerning addr.
	ReturnPacketFrom(now int64, addr uint64, payloadBytes int) int64
	// Config returns the per-cube configuration.
	Config() Config
	// TotalStats aggregates statistics across all cubes.
	TotalStats() Stats
}

// SendPacketTo implements Cube for a single HMC.
func (h *HMC) SendPacketTo(now int64, _ uint64, payloadBytes int) int64 {
	return h.SendPacket(now, payloadBytes)
}

// ReturnPacketFrom implements Cube for a single HMC.
func (h *HMC) ReturnPacketFrom(now int64, _ uint64, payloadBytes int) int64 {
	return h.ReturnPacket(now, payloadBytes)
}

// TotalStats implements Cube for a single HMC.
func (h *HMC) TotalStats() Stats { return h.Stats() }

// arrayGranularityBits is the address-interleave granularity across cubes:
// 64 MiB regions, large enough that a texture's whole mip chain lives in
// one cube (the Section V-E mapping requirement).
const arrayGranularityBits = 26

// Array is several cubes attached to one host, interleaved at coarse
// address granularity. Each cube has its own links, switch and vaults, so
// both external and internal bandwidth scale with the cube count.
type Array struct {
	cubes []*HMC
}

// NewArray builds n identically-configured cubes. n must be positive.
func NewArray(n int, cfg Config) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("hmc: invalid cube count %d", n))
	}
	a := &Array{}
	for i := 0; i < n; i++ {
		a.cubes = append(a.cubes, New(cfg))
	}
	return a
}

// NumCubes returns the number of cubes.
func (a *Array) NumCubes() int { return len(a.cubes) }

// SetTracer implements obs.TraceAttacher, giving each cube its own set of
// timeline tracks ("cube0.hmc.link.tx", ...).
func (a *Array) SetTracer(t *obs.Tracer) {
	for i, c := range a.cubes {
		c.SetTrace(t, fmt.Sprintf("cube%d.", i))
	}
}

// UtilizationHistograms implements obs.HistogramSource across all cubes.
func (a *Array) UtilizationHistograms(bins int) map[string][]float64 {
	out := map[string][]float64{}
	for i, c := range a.cubes {
		prefix := fmt.Sprintf("cube%d.", i)
		for name, hist := range c.UtilizationHistograms(bins) {
			if c.tracePrefix == "" {
				name = prefix + name
			}
			out[name] = hist
		}
	}
	return out
}

// BandwidthTimelines implements obs.TimelineSource across all cubes.
func (a *Array) BandwidthTimelines(buckets int) map[string]obs.Timeline {
	out := map[string]obs.Timeline{}
	for i, c := range a.cubes {
		prefix := fmt.Sprintf("cube%d.", i)
		for name, t := range c.BandwidthTimelines(buckets) {
			if c.tracePrefix == "" {
				name = prefix + name
			}
			out[name] = t
		}
	}
	return out
}

func (a *Array) route(addr uint64) *HMC {
	return a.cubes[(addr>>arrayGranularityBits)%uint64(len(a.cubes))]
}

// Name implements mem.Backend.
func (a *Array) Name() string { return "hmc" }

// PeakBandwidth implements mem.Backend (aggregate external peak).
func (a *Array) PeakBandwidth() float64 {
	return float64(len(a.cubes)) * a.cubes[0].PeakBandwidth()
}

// BusyUntil implements mem.Backend.
func (a *Array) BusyUntil() int64 {
	var m int64
	for _, c := range a.cubes {
		if b := c.BusyUntil(); b > m {
			m = b
		}
	}
	return m
}

// Reset implements mem.Backend.
func (a *Array) Reset() {
	for _, c := range a.cubes {
		c.Reset()
	}
}

// Access implements mem.Backend, routing by address.
func (a *Array) Access(now int64, req mem.Request) int64 {
	return a.route(req.Addr).Access(now, req)
}

// InternalAccess implements Cube, routing by address.
func (a *Array) InternalAccess(now int64, req mem.Request) int64 {
	return a.route(req.Addr).InternalAccess(now, req)
}

// SendPacketTo implements Cube.
func (a *Array) SendPacketTo(now int64, addr uint64, payloadBytes int) int64 {
	return a.route(addr).SendPacket(now, payloadBytes)
}

// ReturnPacketFrom implements Cube.
func (a *Array) ReturnPacketFrom(now int64, addr uint64, payloadBytes int) int64 {
	return a.route(addr).ReturnPacket(now, payloadBytes)
}

// Config implements Cube (per-cube configuration).
func (a *Array) Config() Config { return a.cubes[0].Config() }

// TotalStats implements Cube.
func (a *Array) TotalStats() Stats {
	var s Stats
	for _, c := range a.cubes {
		cs := c.Stats()
		s.ExternalReads += cs.ExternalReads
		s.ExternalWrites += cs.ExternalWrites
		s.InternalReads += cs.InternalReads
		s.InternalWrites += cs.InternalWrites
		s.RowHits += cs.RowHits
		s.RowMisses += cs.RowMisses
		s.LinkBytesTx += cs.LinkBytesTx
		s.LinkBytesRx += cs.LinkBytesRx
		s.VaultBytes += cs.VaultBytes
		s.LinkBusyCycles += cs.LinkBusyCycles
		s.VaultBusyCycles += cs.VaultBusyCycles
	}
	return s
}
