package hmc

import (
	"testing"

	"repro/internal/mem"
)

func TestArrayRoutingDeterministic(t *testing.T) {
	a := NewArray(2, DefaultConfig())
	// Addresses within one 64MiB region route to the same cube; the next
	// region routes to the other.
	r0a := a.route(0x0000_0000)
	r0b := a.route(0x0000_1000)
	r1 := a.route(1 << arrayGranularityBits)
	if r0a != r0b {
		t.Fatal("same region routed to different cubes")
	}
	if r0a == r1 {
		t.Fatal("adjacent regions routed to the same cube")
	}
}

func TestArrayAggregateBandwidth(t *testing.T) {
	one := New(DefaultConfig())
	arr := NewArray(4, DefaultConfig())
	if arr.PeakBandwidth() != 4*one.PeakBandwidth() {
		t.Fatalf("array peak %.0f, want 4x single cube %.0f",
			arr.PeakBandwidth(), one.PeakBandwidth())
	}
	if arr.NumCubes() != 4 {
		t.Fatal("cube count wrong")
	}
}

func TestArrayImplementsCube(t *testing.T) {
	var _ Cube = New(DefaultConfig())
	var _ Cube = NewArray(2, DefaultConfig())
}

func TestArrayStatsAggregate(t *testing.T) {
	a := NewArray(2, DefaultConfig())
	// One external read per region (distinct cubes).
	a.Access(0, mem.Request{Addr: 0, Size: 64, Kind: mem.Read})
	a.Access(0, mem.Request{Addr: 1 << arrayGranularityBits, Size: 64, Kind: mem.Read})
	s := a.TotalStats()
	if s.ExternalReads != 2 {
		t.Fatalf("aggregate reads %d want 2", s.ExternalReads)
	}
	a.Reset()
	if a.TotalStats().ExternalReads != 0 {
		t.Fatal("reset did not clear cube stats")
	}
}

func TestArrayPacketsRouteByAddress(t *testing.T) {
	a := NewArray(2, DefaultConfig())
	a.SendPacketTo(0, 0, 64)
	a.ReturnPacketFrom(0, 1<<arrayGranularityBits, 64)
	s0 := a.cubes[0].Stats()
	s1 := a.cubes[1].Stats()
	if s0.LinkBytesTx == 0 || s1.LinkBytesRx == 0 {
		t.Fatalf("packets not routed: cube0 tx=%d, cube1 rx=%d", s0.LinkBytesTx, s1.LinkBytesRx)
	}
	if s0.LinkBytesRx != 0 || s1.LinkBytesTx != 0 {
		t.Fatal("packets leaked to the wrong cube")
	}
}

func TestArrayParallelismBeatsSingleCube(t *testing.T) {
	// Saturating traffic spread over two regions drains faster through
	// two cubes than one.
	run := func(c Cube) int64 {
		var last int64
		for i := 0; i < 20000; i++ {
			addr := uint64(i) * 64
			if i%2 == 1 {
				addr += 1 << arrayGranularityBits
			}
			done := c.Access(0, mem.Request{Addr: addr, Size: 64, Kind: mem.Read})
			if done > last {
				last = done
			}
		}
		return last
	}
	single := run(New(DefaultConfig()))
	double := run(NewArray(2, DefaultConfig()))
	if double >= single {
		t.Fatalf("two cubes (%d cycles) not faster than one (%d)", double, single)
	}
}

func TestNewArrayPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArray(0) did not panic")
		}
	}()
	NewArray(0, DefaultConfig())
}
