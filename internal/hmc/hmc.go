// Package hmc models a Hybrid Memory Cube as described in the paper's
// Section III and the HMC 2.0 specification the paper cites: DRAM dies
// stacked over a CMOS logic layer, partitioned into 32 vaults (each a
// controller plus 8 banks reached over TSVs), with the cube attached to the
// host GPU through full-duplex high-speed serial links.
//
// Two access paths are exposed:
//
//   - External: host GPU -> link (serialized packet) -> switch -> vault ->
//     TSV -> bank, then the response returns over the link. Peak external
//     bandwidth defaults to 320 GB/s (HMC 2.0).
//   - Internal: logic layer -> switch -> vault -> TSV -> bank. No link
//     serialization; peak internal bandwidth defaults to 512 GB/s. This is
//     the path the S-TFIM MTUs and the A-TFIM filtering units use.
package hmc

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config describes one cube.
type Config struct {
	// Vaults is the number of vaults (controller + bank stack).
	Vaults int
	// BanksPerVault is the number of DRAM banks in each vault.
	BanksPerVault int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// LineBytes is the transaction granularity.
	LineBytes int
	// Links is the number of full-duplex serial links to the host.
	Links int
	// ExternalGBs is the aggregate external link bandwidth (GB/s, both
	// directions combined as in the paper's "320 GB/s of peak external
	// memory bandwidth").
	ExternalGBs float64
	// InternalGBs is the aggregate vault/TSV bandwidth (GB/s).
	InternalGBs float64
	// MemClockGHz and GPUClockGHz convert memory cycles to GPU cycles.
	MemClockGHz float64
	GPUClockGHz float64
	// TSVLatencyCycles is the TSV traversal latency in memory cycles
	// (1 cycle per the paper, citing CACTI-3DD).
	TSVLatencyCycles int
	// SwitchLatencyCycles is the logic-layer switch traversal latency in
	// GPU cycles.
	SwitchLatencyCycles int
	// LinkLatencyCycles is the fixed serialization/deserialization latency
	// of a link traversal in GPU cycles (SerDes + flight).
	LinkLatencyCycles int
	// PacketHeaderBytes is the header+tail framing overhead per packet.
	PacketHeaderBytes int
	// ReadRequestBytes is the size of a plain read-request packet payload.
	ReadRequestBytes int
	// Timing are the DRAM core timings of the stacked dies.
	TRCD, TRP, TCAS, TBurst, TWR, TCCD int
	// QueueDepth bounds outstanding requests per vault.
	QueueDepth int
}

// DefaultConfig returns the paper's Table I HMC: 32 vaults, 8 banks/vault,
// 320 GB/s external, 512 GB/s internal, 1 cycle TSV latency.
func DefaultConfig() Config {
	return Config{
		Vaults:              32,
		BanksPerVault:       8,
		RowBytes:            2048,
		LineBytes:           mem.LineSize,
		Links:               4,
		ExternalGBs:         320,
		InternalGBs:         512,
		MemClockGHz:         1.25,
		GPUClockGHz:         1.0,
		TSVLatencyCycles:    1,
		SwitchLatencyCycles: 2,
		LinkLatencyCycles:   8,
		PacketHeaderBytes:   16,
		ReadRequestBytes:    16,
		TRCD:                11,
		TRP:                 11,
		TCAS:                11,
		TBurst:              4,
		TWR:                 11,
		TCCD:                4,
		QueueDepth:          64,
	}
}

// Validate checks structural parameters.
func (c Config) Validate() error {
	if c.Vaults <= 0 || c.BanksPerVault <= 0 || c.Links <= 0 {
		return fmt.Errorf("hmc: non-positive geometry")
	}
	if c.ExternalGBs <= 0 || c.InternalGBs <= 0 {
		return fmt.Errorf("hmc: non-positive bandwidth")
	}
	if c.MemClockGHz <= 0 || c.GPUClockGHz <= 0 {
		return fmt.Errorf("hmc: non-positive clocks")
	}
	return nil
}

// Stats counts cube events.
type Stats struct {
	ExternalReads   uint64
	ExternalWrites  uint64
	InternalReads   uint64
	InternalWrites  uint64
	RowHits         uint64
	RowMisses       uint64
	LinkBytesTx     uint64 // host -> cube
	LinkBytesRx     uint64 // cube -> host
	VaultBytes      uint64
	LinkBusyCycles  int64
	VaultBusyCycles int64
}

// vaultBank tracks row-buffer state; throughput is enforced by the vault's
// TSV meter (see the dram package's bank comment for the rationale).
type vaultBank struct {
	openRow   int64
	rowOpened bool
}

type vault struct {
	banks []vaultBank
	// tsv meters the vault's TSV bandwidth with backfill.
	tsv *sim.BandwidthMeter
}

// HMC is the cube model. It implements mem.Backend for the external path
// (B-PIM uses it as a drop-in replacement for GDDR5) and exposes
// InternalAccess for logic-layer units.
type HMC struct {
	cfg       Config
	vaults    []vault
	linkTx    *sim.BandwidthMeter // host -> cube (all links aggregated)
	linkRx    *sim.BandwidthMeter // cube -> host
	stats     Stats
	cyclesPer float64 // GPU cycles per memory cycle
	linkBPC   float64 // bytes per GPU cycle, aggregate per direction
	tsvBPC    float64 // bytes per GPU cycle per vault
	busyMax   int64

	tracer      *obs.Tracer
	tracePrefix string // distinguishes cubes within an Array
}

// New builds a cube; panics on invalid configuration.
func New(cfg Config) *HMC {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &HMC{cfg: cfg, cyclesPer: cfg.GPUClockGHz / cfg.MemClockGHz}
	// Full duplex: each direction carries the full aggregate link
	// bandwidth (the "320 GB/s of peak external memory bandwidth" of the
	// HMC 2.0 spec is per-direction at full width).
	h.linkBPC = cfg.ExternalGBs / cfg.GPUClockGHz
	h.tsvBPC = cfg.InternalGBs / float64(cfg.Vaults) / cfg.GPUClockGHz
	h.Reset()
	return h
}

// Name implements mem.Backend.
func (h *HMC) Name() string { return "hmc" }

// PeakBandwidth returns the external peak in bytes/GPU-cycle.
func (h *HMC) PeakBandwidth() float64 {
	return h.cfg.ExternalGBs / h.cfg.GPUClockGHz
}

// InternalPeakBandwidth returns the internal peak in bytes/GPU-cycle.
func (h *HMC) InternalPeakBandwidth() float64 {
	return h.cfg.InternalGBs / h.cfg.GPUClockGHz
}

// BusyUntil implements mem.Backend.
func (h *HMC) BusyUntil() int64 { return h.busyMax }

// Reset implements mem.Backend.
func (h *HMC) Reset() {
	h.vaults = make([]vault, h.cfg.Vaults)
	for i := range h.vaults {
		h.vaults[i].banks = make([]vaultBank, h.cfg.BanksPerVault)
		for b := range h.vaults[i].banks {
			h.vaults[i].banks[b].openRow = -1
		}
		h.vaults[i].tsv = sim.NewBandwidthMeter(32, h.tsvBPC)
	}
	h.linkTx = sim.NewBandwidthMeter(32, h.linkBPC)
	h.linkRx = sim.NewBandwidthMeter(32, h.linkBPC)
	h.stats = Stats{}
	h.busyMax = 0
	h.attachMeterTraces()
}

// SetTracer routes link and vault-TSV reservations into the tracer as
// cycle spans. Implements obs.TraceAttacher; survives Reset.
func (h *HMC) SetTracer(t *obs.Tracer) { h.SetTrace(t, "") }

// SetTrace attaches a tracer with a track prefix ("cube0." etc.) so cubes
// in an Array keep distinct timeline rows.
func (h *HMC) SetTrace(t *obs.Tracer, prefix string) {
	h.tracer = t
	h.tracePrefix = prefix
	h.attachMeterTraces()
}

func (h *HMC) attachMeterTraces() {
	if h.tracer == nil {
		return
	}
	h.linkTx.AttachTrace(h.tracer, h.tracePrefix+"hmc.link.tx")
	h.linkRx.AttachTrace(h.tracer, h.tracePrefix+"hmc.link.rx")
	for i := range h.vaults {
		h.vaults[i].tsv.AttachTrace(h.tracer, fmt.Sprintf("%shmc.vault%02d.tsv", h.tracePrefix, i))
	}
}

// UtilizationHistograms implements obs.HistogramSource: link and per-vault
// TSV utilization over time.
func (h *HMC) UtilizationHistograms(bins int) map[string][]float64 {
	out := map[string][]float64{}
	if hist := h.linkTx.UtilizationHistogram(bins); hist != nil {
		out[h.tracePrefix+"hmc.link.tx"] = hist
	}
	if hist := h.linkRx.UtilizationHistogram(bins); hist != nil {
		out[h.tracePrefix+"hmc.link.rx"] = hist
	}
	for i := range h.vaults {
		if hist := h.vaults[i].tsv.UtilizationHistogram(bins); hist != nil {
			out[fmt.Sprintf("%shmc.vault%02d.tsv", h.tracePrefix, i)] = hist
		}
	}
	return out
}

// BandwidthTimelines implements obs.TimelineSource: link and per-vault
// TSV byte series over time, named exactly like UtilizationHistograms.
func (h *HMC) BandwidthTimelines(buckets int) map[string]obs.Timeline {
	out := map[string]obs.Timeline{}
	if t := h.linkTx.Timeline(buckets); !t.Empty() {
		out[h.tracePrefix+"hmc.link.tx"] = t
	}
	if t := h.linkRx.Timeline(buckets); !t.Empty() {
		out[h.tracePrefix+"hmc.link.rx"] = t
	}
	for i := range h.vaults {
		if t := h.vaults[i].tsv.Timeline(buckets); !t.Empty() {
			out[fmt.Sprintf("%shmc.vault%02d.tsv", h.tracePrefix, i)] = t
		}
	}
	return out
}

// Stats returns a copy of the counters.
func (h *HMC) Stats() Stats { return h.stats }

// Config returns the cube configuration.
func (h *HMC) Config() Config { return h.cfg }

func (h *HMC) mc(n int) int64 {
	v := float64(n) * h.cyclesPer
	i := int64(v)
	if float64(i) < v {
		i++
	}
	return i
}

func (h *HMC) serCycles(bytes int, bpc float64) int64 {
	if bytes <= 0 {
		return 0
	}
	v := float64(bytes) / bpc
	i := int64(v)
	if float64(i) < v {
		i++
	}
	if i < 1 {
		i = 1
	}
	return i
}

// vaultAccess schedules one line-granular DRAM access inside a vault,
// starting no earlier than `start`, and returns its completion cycle.
// Vaults interleave at line granularity (maximum parallelism for the child
// texel bursts the logic-layer units issue).
func (h *HMC) vaultAccess(start int64, addr uint64, size uint32, write bool) int64 {
	lineAddr := addr / uint64(h.cfg.LineBytes)
	vIdx := int(lineAddr % uint64(h.cfg.Vaults))
	rest := lineAddr / uint64(h.cfg.Vaults)
	bIdx := int(rest % uint64(h.cfg.BanksPerVault))
	rowLines := uint64(h.cfg.RowBytes / h.cfg.LineBytes)
	row := int64(rest / uint64(h.cfg.BanksPerVault) / rowLines)

	v := &h.vaults[vIdx]
	bk := &v.banks[bIdx]

	var coreLat int64
	if bk.rowOpened && bk.openRow == row {
		h.stats.RowHits++
		coreLat = h.mc(h.cfg.TCAS)
	} else {
		h.stats.RowMisses++
		pre := 0
		if bk.rowOpened {
			pre = h.cfg.TRP
		}
		coreLat = h.mc(pre + h.cfg.TRCD + h.cfg.TCAS)
		bk.rowOpened = true
		bk.openRow = row
	}

	// TSV bandwidth enforced per vault with backfill. Unlike the external
	// path (which moves whole cache lines), vault accesses are charged at
	// their actual size: fine-grained access is one of the PIM advantages
	// the logic-layer units exploit (16-byte granules for child texels).
	bytes := int(size)
	if bytes < 16 {
		bytes = 16
	}
	tsvOcc := h.serCycles(bytes, h.tsvBPC)
	dataStart := start + coreLat + h.mc(h.cfg.TSVLatencyCycles)
	done := v.tsv.Reserve(dataStart, bytes)
	if done < dataStart+tsvOcc {
		done = dataStart + tsvOcc
	}
	h.stats.VaultBusyCycles += tsvOcc
	h.stats.VaultBytes += uint64(bytes)

	if write {
		// Write recovery charges extra TSV occupancy.
		v.tsv.Reserve(done, h.cfg.LineBytes/4)
	}

	if done > h.busyMax {
		h.busyMax = done
	}
	return done
}

// sendTx schedules a host->cube packet of the given total byte size on the
// transmit direction (full duplex, bandwidth-metered with backfill) and
// returns its arrival cycle at the switch.
func (h *HMC) sendTx(now int64, bytes int) int64 {
	done := h.linkTx.Reserve(now, bytes)
	h.stats.LinkBytesTx += uint64(bytes)
	arrive := done + int64(h.cfg.LinkLatencyCycles) + int64(h.cfg.SwitchLatencyCycles)
	if arrive > h.busyMax {
		h.busyMax = arrive
	}
	return arrive
}

// sendRx schedules a cube->host packet on the receive direction and
// returns its arrival at the host.
func (h *HMC) sendRx(now int64, bytes int) int64 {
	done := h.linkRx.Reserve(now, bytes)
	h.stats.LinkBytesRx += uint64(bytes)
	arrive := done + int64(h.cfg.LinkLatencyCycles)
	if arrive > h.busyMax {
		h.busyMax = arrive
	}
	return arrive
}

// Access implements mem.Backend: the external path used when the HMC serves
// as a plain main memory (B-PIM). A read sends a request packet out, crosses
// the switch, performs the vault access, and returns header+data; a write
// sends header+data out and completes at the vault.
func (h *HMC) Access(now int64, req mem.Request) int64 {
	switch req.Kind {
	case mem.Read:
		h.stats.ExternalReads++
		arrive := h.sendTx(now, h.cfg.PacketHeaderBytes+h.cfg.ReadRequestBytes)
		vdone := h.vaultAccess(arrive, req.Addr, req.Size, false)
		return h.sendRx(vdone+int64(h.cfg.SwitchLatencyCycles), h.cfg.PacketHeaderBytes+int(req.Size))
	default:
		h.stats.ExternalWrites++
		arrive := h.sendTx(now, h.cfg.PacketHeaderBytes+int(req.Size))
		return h.vaultAccess(arrive, req.Addr, req.Size, true)
	}
}

// InternalAccess performs a logic-layer access that never crosses the
// external links: switch -> vault -> TSV -> bank. Used by the S-TFIM MTUs
// and the A-TFIM Texel Generator / Combination Unit.
func (h *HMC) InternalAccess(now int64, req mem.Request) int64 {
	if req.Kind == mem.Read {
		h.stats.InternalReads++
	} else {
		h.stats.InternalWrites++
	}
	start := now + int64(h.cfg.SwitchLatencyCycles)
	return h.vaultAccess(start, req.Addr, req.Size, req.Kind == mem.Write)
}

// SendPacket models an explicit host->cube packet carrying payloadBytes of
// live data (plus framing); returns the arrival cycle at the logic layer.
// Used for the TFIM request packages.
func (h *HMC) SendPacket(now int64, payloadBytes int) int64 {
	return h.sendTx(now, h.cfg.PacketHeaderBytes+payloadBytes)
}

// ReturnPacket models an explicit cube->host packet; returns arrival at the
// host. Used for the TFIM response packages.
func (h *HMC) ReturnPacket(now int64, payloadBytes int) int64 {
	return h.sendRx(now, h.cfg.PacketHeaderBytes+payloadBytes)
}
