package hmc

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/xrand"
)

// TestCubeCompletionNeverPrecedesArrival fuzzes external, internal and
// packet paths together with jittered timestamps.
func TestCubeCompletionNeverPrecedesArrival(t *testing.T) {
	h := New(DefaultConfig())
	rng := xrand.New(0x4C3)
	var now int64
	for i := 0; i < 100000; i++ {
		now += int64(rng.Intn(6))
		at := now - int64(rng.Intn(1500))
		if at < 0 {
			at = 0
		}
		addr := uint64(rng.Intn(1<<28)) &^ 15
		var done int64
		switch rng.Intn(4) {
		case 0:
			done = h.Access(at, mem.Request{Addr: addr &^ 63, Size: 64, Kind: mem.Read})
		case 1:
			done = h.Access(at, mem.Request{Addr: addr &^ 63, Size: 64, Kind: mem.Write})
		case 2:
			done = h.InternalAccess(at, mem.Request{Addr: addr, Size: 16, Kind: mem.Read})
		default:
			done = h.SendPacket(at, 48)
		}
		if done < at {
			t.Fatalf("op %d completed at %d before arrival %d", i, done, at)
		}
		if done-at > 1_000_000 {
			t.Fatalf("op %d latency %d unbounded", i, done-at)
		}
	}
	s := h.Stats()
	if s.ExternalReads == 0 || s.ExternalWrites == 0 || s.InternalReads == 0 {
		t.Fatalf("fuzz did not exercise all paths: %+v", s)
	}
}

// TestInternalBytesAccounting: internal accesses are charged at their
// actual (fine-grained) size, not whole lines.
func TestInternalBytesAccounting(t *testing.T) {
	h := New(DefaultConfig())
	for i := 0; i < 64; i++ {
		h.InternalAccess(int64(i), mem.Request{Addr: uint64(i) * 16, Size: 16, Kind: mem.Read})
	}
	if got := h.Stats().VaultBytes; got != 64*16 {
		t.Fatalf("internal bytes %d want %d (fine-grained accounting)", got, 64*16)
	}
}

// TestExternalChargesWholeLines: the external path always moves lines.
func TestExternalChargesWholeLines(t *testing.T) {
	h := New(DefaultConfig())
	h.Access(0, mem.Request{Addr: 0, Size: 64, Kind: mem.Read})
	if got := h.Stats().VaultBytes; got != 64 {
		t.Fatalf("external access moved %d vault bytes, want 64", got)
	}
	if h.Stats().LinkBytesRx == 0 || h.Stats().LinkBytesTx == 0 {
		t.Fatal("external access did not use both link directions")
	}
}

// TestDeterministicAcrossReset mirrors the DRAM determinism check.
func TestDeterministicAcrossReset(t *testing.T) {
	h := New(DefaultConfig())
	run := func() []int64 {
		var out []int64
		for i := 0; i < 1000; i++ {
			out = append(out, h.Access(int64(i*2), mem.Request{
				Addr: uint64(i*211) &^ 63, Size: 64, Kind: mem.Read}))
		}
		return out
	}
	a := run()
	h.Reset()
	b := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs after reset", i)
		}
	}
}
