package core

import (
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/obs/telem"
)

// Live telemetry for simulations in flight. Every instrument lives in the
// process-wide telem registry (cmd/pimfarm serves it as /metrics) and is
// fed exclusively from the gpu.Progress callback and end-of-frame
// summaries — values the timing model already produced — so scraping a
// running farm never perturbs simulated results.

// bwGaugeBins is the histogram resolution used to summarize a bandwidth
// meter's busy span into one mean-utilization gauge sample.
const bwGaugeBins = 16

// simTelemetry returns a gpu.Progress callback that mirrors one run's
// in-flight state into per-design gauges/counters, plus a frame-end hook
// that publishes the backend's bandwidth-meter utilizations. Both are
// no-ops against an empty registry.
func simTelemetry(design config.Design) (onProgress func(gpu.Progress), onFrameEnd func(backend interface{})) {
	r := telem.Default()
	labels := telem.Labels{"design": design.String()}
	inflight := r.Gauge("pim_sim_frames_inflight",
		"Frames currently being simulated, by design.", labels)
	stageG := r.Gauge("pim_sim_frame_stage",
		"Current pipeline stage of the latest in-flight frame (0=geometry 1=setup 2=fragment 3=resolve 4=done).", labels)
	groupsDone := r.Gauge("pim_sim_frame_groups_done",
		"Supertile groups merged so far in the latest in-flight frame.", labels)
	groupsTotal := r.Gauge("pim_sim_frame_groups_total",
		"Supertile groups in the latest in-flight frame.", labels)
	cyclesG := r.Gauge("pim_sim_frame_cycles",
		"Frame-timeline cycles accounted for so far in the latest in-flight frame.", labels)
	groupsCompleted := r.Counter("pim_sim_groups_completed_total",
		"Supertile groups simulated to completion, by design.", labels)
	framesCompleted := r.Counter("pim_sim_frames_completed_total",
		"Frames simulated to completion, by design.", labels)

	onProgress = func(pr gpu.Progress) {
		switch pr.Stage {
		case gpu.StageGeometry:
			inflight.Inc()
			stageG.Set(0)
		case gpu.StageSetup:
			stageG.Set(1)
		case gpu.StageFragment:
			stageG.Set(2)
			if pr.GroupsDone > 0 {
				groupsCompleted.Inc()
			}
		case gpu.StageResolve:
			stageG.Set(3)
		case gpu.StageDone:
			stageG.Set(4)
			inflight.Dec()
			framesCompleted.Inc()
		}
		groupsDone.Set(float64(pr.GroupsDone))
		groupsTotal.Set(float64(pr.GroupsTotal))
		cyclesG.Set(float64(pr.Cycles))
	}

	onFrameEnd = func(backend interface{}) {
		hs, ok := backend.(obs.HistogramSource)
		if !ok {
			return
		}
		for name, bins := range hs.UtilizationHistograms(bwGaugeBins) {
			var mean float64
			for _, v := range bins {
				mean += v
			}
			if len(bins) > 0 {
				mean /= float64(len(bins))
			}
			r.Gauge("pim_sim_bw_utilization_ratio",
				"Mean bandwidth-meter utilization over the last completed frame's busy span, by design and meter.",
				telem.Labels{"design": design.String(), "meter": name}).Set(mean)
		}
	}
	return onProgress, onFrameEnd
}

// runCacheTiers are the outcomes runCacheOutcome can record.
var runCacheTiers = []string{"memory", "disk", "compute"}

func runCacheCounter(outcome string) *telem.Counter {
	return telem.Default().Counter("pim_runcache_requests_total",
		"core.RunCached lookups by satisfying tier (memory LRU, durable disk store, or fresh compute).",
		telem.Labels{"outcome": outcome})
}

// runCacheOutcome counts one RunCached lookup by where it was satisfied:
// "memory" (in-process LRU), "disk" (durable store), or "compute".
func runCacheOutcome(outcome string) { runCacheCounter(outcome).Inc() }

// RunCacheCounters snapshots the RunCached tier counters (memory / disk /
// compute lookups so far in this process), for cmd/pimfarm's /varz.
func RunCacheCounters() map[string]uint64 {
	out := make(map[string]uint64, len(runCacheTiers))
	for _, tier := range runCacheTiers {
		out[tier] = runCacheCounter(tier).Value()
	}
	return out
}
