package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
	"repro/internal/workload"
)

func miniWorkload(t testing.TB) workload.Workload {
	t.Helper()
	wl, err := workload.Get("doom3", 320, 240)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// TestTraceChromeExport renders a frame with tracing on and asserts that the
// exported file is valid Chrome trace-event JSON containing spans from at
// least four distinct pipeline units (the ISSUE acceptance criterion).
func TestTraceChromeExport(t *testing.T) {
	wl := miniWorkload(t)
	tr := obs.NewTracer(0)
	if _, err := Run(wl, Options{Design: config.ATFIM, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer recorded no events")
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc obs.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}

	// Collect the named tracks and classify them into pipeline units.
	units := map[string]bool{}
	spansByTid := map[int]int{}
	tidName := map[int]string{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				tidName[e.Tid], _ = e.Args["name"].(string)
			}
		case "X":
			spansByTid[e.Tid]++
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	for tid, n := range spansByTid {
		if n == 0 {
			continue
		}
		name := tidName[tid]
		if name == "" {
			t.Fatalf("spans on unnamed tid %d", tid)
		}
		switch {
		case name == "pipeline":
			units["pipeline"] = true
		case name == "frame" || name == "groups":
			units["frontend"] = true
		case strings.HasPrefix(name, "cluster"):
			units["shader-cluster"] = true
		case strings.HasPrefix(name, "offload"):
			units["offload-unit"] = true
		case strings.HasPrefix(name, "texunit") || strings.HasPrefix(name, "mtu"):
			units["texture-unit"] = true
		case strings.HasPrefix(name, "hmc.") || strings.Contains(name, "hmc."):
			units["hmc"] = true
		case strings.HasPrefix(name, "dram."):
			units["dram"] = true
		default:
			t.Fatalf("span on unclassified track %q", name)
		}
	}
	if len(units) < 4 {
		t.Fatalf("spans from %d distinct pipeline units %v, want >= 4", len(units), units)
	}
}

// TestTraceDoesNotPerturbTiming asserts tracing only observes the timing
// model: simulated cycle counts are identical with and without a tracer.
func TestTraceDoesNotPerturbTiming(t *testing.T) {
	wl := miniWorkload(t)
	for _, d := range config.AllDesigns() {
		plain, err := Run(wl, Options{Design: d})
		if err != nil {
			t.Fatal(err)
		}
		traced, err := Run(wl, Options{Design: d, Trace: obs.NewTracer(1024)})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Cycles() != traced.Cycles() {
			t.Errorf("%v: tracing changed cycles: %d vs %d",
				d, plain.Cycles(), traced.Cycles())
		}
		if plain.TotalTraffic() != traced.TotalTraffic() {
			t.Errorf("%v: tracing changed traffic: %d vs %d",
				d, plain.TotalTraffic(), traced.TotalTraffic())
		}
	}
}

// TestMetricsSnapshotRoundTrip asserts the -json document round-trips
// through encoding/json unchanged and is byte-stable across marshals.
func TestMetricsSnapshotRoundTrip(t *testing.T) {
	wl := miniWorkload(t)
	res, err := Run(wl, Options{Design: config.ATFIM})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics()
	if snap.Schema != obs.SchemaVersion {
		t.Fatalf("schema = %q, want %q", snap.Schema, obs.SchemaVersion)
	}
	if snap.Cycles != res.Cycles() {
		t.Fatalf("cycles = %d, want %d", snap.Cycles, res.Cycles())
	}
	if snap.Counters["traffic.total.bytes"] != res.TotalTraffic() {
		t.Fatal("traffic.total.bytes does not match Result.TotalTraffic")
	}
	if len(snap.Histograms) == 0 {
		t.Fatal("HMC-backed run exported no bandwidth histograms")
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, &back) {
		t.Fatal("snapshot did not round-trip through JSON")
	}
	var buf2 bytes.Buffer
	if err := snap.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot JSON is not byte-stable across marshals")
	}
}

// TestExperimentJSONRoundTrip asserts the paperbench -json rows mirror the
// printed table and survive a JSON round trip.
func TestExperimentJSONRoundTrip(t *testing.T) {
	e := Table1Config()
	jr := e.JSONResult()
	if jr.Name != e.Name || len(jr.Rows) != e.Table.NumRows() {
		t.Fatalf("JSONResult lost rows: %d vs %d", len(jr.Rows), e.Table.NumRows())
	}
	doc := obs.NewExperimentSet("mini")
	doc.Experiments = append(doc.Experiments, jr)
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back obs.ExperimentSet
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != obs.ExperimentSchemaVersion {
		t.Fatalf("schema = %q, want %q", back.Schema, obs.ExperimentSchemaVersion)
	}
	if !reflect.DeepEqual(doc.Experiments, back.Experiments) {
		t.Fatal("experiment set did not round-trip through JSON")
	}
}

// BenchmarkRenderTraceOff/On measure the tracing overhead; the observability
// acceptance criterion is < 5% wall-clock overhead with tracing disabled
// (TraceOff vs the pre-instrumentation baseline — in-tree, compare the two
// and confirm TraceOff carries no tracer cost beyond nil checks).
func BenchmarkRenderTraceOff(b *testing.B) {
	benchRender(b, nil)
}

func BenchmarkRenderTraceOn(b *testing.B) {
	benchRender(b, obs.NewTracer(0))
}

func benchRender(b *testing.B, tr *obs.Tracer) {
	wl := miniWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, err := Run(wl, Options{Design: config.ATFIM, Trace: tr}); err != nil {
			b.Fatal(err)
		}
	}
}
