package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/obs"
)

// Metrics flattens a Result into the stable observability snapshot exported
// by `pimsim -json`. Counters cover traffic (per class and direction),
// pipeline activity and per-cache statistics; gauges cover energy, rates and
// latencies; histograms carry the memory backend's bandwidth-utilization
// profile when the backend exposes one.
func (r *Result) Metrics() *obs.Snapshot {
	// A result restored from the durable store carries the snapshot its
	// original run produced (including backend histograms no restored
	// result could recompute); serve it verbatim.
	if r.storedMetrics != nil {
		return r.storedMetrics
	}
	s := obs.NewSnapshot("run")
	s.Workload = r.Workload.Name()
	s.Design = r.Design.String()
	s.Cycles = r.Frame.Cycles
	s.SimVersion = SimVersion
	build := obs.Build()
	s.Build = &build

	// Traffic by class and direction plus the headline totals.
	for c := mem.Class(0); c < mem.NumClasses; c++ {
		for _, k := range []mem.Kind{mem.Read, mem.Write} {
			s.Counter(fmt.Sprintf("traffic.%s.%s.bytes", c, k),
				r.Frame.Traffic.Bytes(c, k))
		}
	}
	s.Counter("traffic.total.bytes", r.Frame.Traffic.Total())
	s.Counter("traffic.texture.bytes", r.Frame.Traffic.TextureBytes())

	// Frame/pipeline activity.
	a := r.Frame.Activity
	s.Counter("frame.vertices", a.VertexCount)
	s.Counter("frame.fragments", a.FragmentCount)
	s.Counter("frame.shader_instrs", a.ShaderInstrs)
	s.Counter("frame.z_accesses", a.ZAccesses)
	s.Counter("frame.color_accesses", a.ColorAccesses)
	s.Counter("frame.external_bytes", a.ExternalBytes)
	s.Counter("frame.internal_bytes", a.InternalBytes)
	s.Counter("frame.geometry_cycles", uint64(r.Frame.GeometryCycles))
	s.Counter("frame.fragment_cycles", uint64(r.Frame.FragmentCycles))

	// Texture-path activity.
	p := a.Path
	s.Counter("texpath.requests", p.TexRequests)
	s.Counter("texpath.gpu_texel_fetches", p.GPUTexelFetches)
	s.Counter("texpath.gpu_filter_ops", p.GPUFilterOps)
	s.Counter("texpath.pim_texel_fetches", p.PIMTexelFetches)
	s.Counter("texpath.pim_filter_ops", p.PIMFilterOps)
	s.Counter("texpath.l1_accesses", p.L1Accesses)
	s.Counter("texpath.l2_accesses", p.L2Accesses)
	s.Counter("texpath.offload_packets", p.OffloadPackets)
	s.Counter("texpath.response_packets", p.ResponsePackets)
	s.Counter("texpath.angle_recalcs", p.AngleRecalcs)
	s.Counter("texpath.parent_texels_served", p.ParentTexelsServed)
	s.Counter("texpath.consolidated_fetches", p.ConsolidatedFetches)

	// Per-cache statistics.
	for name, cs := range r.Frame.Caches {
		s.Counter("cache."+name+".accesses", cs.Accesses)
		s.Counter("cache."+name+".hits", cs.Hits)
		s.Counter("cache."+name+".misses", cs.Misses)
		s.Counter("cache."+name+".evictions", cs.Evictions)
	}

	// Energy breakdown (joules) and headline rates.
	s.Gauge("energy.shader_j", r.Energy.Shader)
	s.Gauge("energy.texture_gpu_j", r.Energy.TextureGPU)
	s.Gauge("energy.caches_j", r.Energy.Caches)
	s.Gauge("energy.rop_j", r.Energy.ROP)
	s.Gauge("energy.links_j", r.Energy.Links)
	s.Gauge("energy.dram_j", r.Energy.DRAM)
	s.Gauge("energy.pim_logic_j", r.Energy.PIMLogic)
	s.Gauge("energy.background_j", r.Energy.Background)
	s.Gauge("energy.leakage_j", r.Energy.Leakage)
	s.Gauge("energy.total_j", r.Energy.Total())

	cfg := buildConfig(r.Options)
	s.Gauge("rate.fps", r.Frame.FPS(cfg.GPU.ClockGHz))
	s.Gauge("latency.tex_filter_cycles", r.Frame.TexFilterLatency())
	s.Gauge("latency.tex_queue_cycles_per_req", perReq(p.QueueCycles, p.TexRequests))
	s.Gauge("latency.tex_mem_cycles_per_req", perReq(p.MemCycles, p.TexRequests))
	s.Gauge("texpath.busy_cycles", p.BusyCycles)

	// Bandwidth-utilization histograms from the backend, when available.
	if hs, ok := r.backend.(obs.HistogramSource); ok {
		for name, bins := range hs.UtilizationHistograms(metricsHistogramBins) {
			s.Histogram("bw."+name, bins)
		}
	}
	return s
}

// metricsHistogramBins is the bandwidth-utilization histogram resolution in
// the exported snapshot.
const metricsHistogramBins = 16

func perReq(sum int64, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// JSONResult converts an Experiment into its stable wire form for
// `paperbench -json`.
func (e *Experiment) JSONResult() obs.ExperimentResult {
	return obs.ExperimentResult{
		Name:    e.Name,
		Title:   e.Table.Title,
		Columns: e.Table.Columns,
		Rows:    e.Table.Rows(),
		Summary: e.Summary,
	}
}
