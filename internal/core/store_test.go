package core

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/config"
	"repro/internal/store"
	"repro/internal/workload"
)

// withStore attaches a fresh durable store for one test and detaches it on
// cleanup, leaving the process-wide state as it found it.
func withStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	prev := ResultStore()
	SetResultStore(st)
	ClearRunCache()
	t.Cleanup(func() {
		SetResultStore(prev)
		ClearRunCache()
	})
	return st
}

// TestStoredResultRoundTrip pins the codec: a restored Result reproduces
// every aggregate and the full metrics/v1 document of the original run.
func TestStoredResultRoundTrip(t *testing.T) {
	wl := workload.MustGet("doom3", 320, 240)
	opts := Options{Design: config.ATFIM}
	r, err := Run(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey(wl, opts)
	man, payload, err := encodeStoredResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if man.Workload != "doom3-320x240" || man.SimVersion != SimVersion || man.PayloadSchema != StoredResultSchema {
		t.Fatalf("manifest: %+v", man)
	}

	back, err := decodeStoredResult(key, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Restored() {
		t.Error("decoded result does not report Restored")
	}
	if back.Cycles() != r.Cycles() || back.TextureTraffic() != r.TextureTraffic() ||
		back.TotalTraffic() != r.TotalTraffic() {
		t.Fatalf("aggregates drifted: cycles %d/%d traffic %d/%d",
			back.Cycles(), r.Cycles(), back.TotalTraffic(), r.TotalTraffic())
	}
	if back.Energy.Total() != r.Energy.Total() {
		t.Fatalf("energy drifted: %v vs %v", back.Energy.Total(), r.Energy.Total())
	}
	if len(back.Image) != len(r.Image) {
		t.Fatalf("image length %d, want %d", len(back.Image), len(r.Image))
	}
	for i := range back.Image {
		if back.Image[i] != r.Image[i] {
			t.Fatalf("image pixel %d differs", i)
		}
	}
	origJSON, err := json.Marshal(r.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	backJSON, err := json.Marshal(back.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if string(origJSON) != string(backJSON) {
		t.Fatal("restored metrics/v1 document differs from the original")
	}

	// The codec refuses payloads keyed for another cell.
	if _, err := decodeStoredResult(key+"/tampered", payload); err == nil {
		t.Fatal("decode accepted a payload under the wrong key")
	}
}

// TestRunCachedUsesStore is the cold→warm contract: after a memory-cache
// wipe (a "restart"), RunCached serves the persisted result instead of
// re-simulating, and a corrupted entry is recomputed and rewritten.
func TestRunCachedUsesStore(t *testing.T) {
	st := withStore(t)
	wl := workload.MustGet("doom3", 320, 240)
	opts := Options{Design: config.BPIM}

	cold, err := RunCached(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.Puts != 1 || c.Hits != 0 {
		t.Fatalf("cold counters: %+v", c)
	}

	ClearRunCache()
	warm, err := RunCached(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.Hits != 1 {
		t.Fatalf("warm run missed the store: %+v", c)
	}
	if !warm.Restored() {
		t.Error("warm result was re-simulated, not restored")
	}
	if warm.Cycles() != cold.Cycles() {
		t.Fatalf("warm cycles %d != cold %d", warm.Cycles(), cold.Cycles())
	}

	// Corrupt the entry on disk: the next restart-read treats it as a miss,
	// recomputes, and rewrites a good entry.
	ClearRunCache()
	path := st.EntryPath(cacheKey(wl, opts))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	redone, err := RunCached(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if redone.Restored() {
		t.Error("corrupt entry was served instead of recomputed")
	}
	if c := st.Counters(); c.Corrupt != 1 || c.Puts != 2 {
		t.Fatalf("recovery counters: %+v", c)
	}
	ClearRunCache()
	again, err := RunCached(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Restored() {
		t.Error("rewritten entry not served on the following run")
	}
	if again.Cycles() != cold.Cycles() {
		t.Fatalf("recovered cycles %d != original %d", again.Cycles(), cold.Cycles())
	}
}

// TestStoreTierAdapts exercises the farm-facing adapter directly.
func TestStoreTierAdapts(t *testing.T) {
	st := withStore(t)
	tier := StoreTier(st)
	if tier == nil {
		t.Fatal("nil tier for a live store")
	}
	if StoreTier(nil) != nil {
		t.Fatal("nil store should yield a nil Tier")
	}

	wl := workload.MustGet("doom3", 320, 240)
	opts := Options{Design: config.Baseline}
	key := cacheKey(wl, opts)
	if _, ok := tier.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	r, err := Run(wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	tier.Put(key, r)
	tier.Put("other-key", "not a result") // silently ignored, wrong type
	v, ok := tier.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	back, ok := v.(*Result)
	if !ok || back.Cycles() != r.Cycles() {
		t.Fatalf("tier returned %T", v)
	}
	if _, ok := tier.Get("other-key"); ok {
		t.Fatal("non-Result Put produced an entry")
	}
}
