package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/quality"
	"repro/internal/workload"
)

// TestFunctionalIdentityAcrossMemoryDesigns is the end-to-end counterpart
// of the paper's "without sacrificing image quality" claims: B-PIM and
// S-TFIM change WHERE filtering happens and over WHAT memory, but compute
// the identical filtering math — their rendered frames must be bit
// identical to the baseline's.
func TestFunctionalIdentityAcrossMemoryDesigns(t *testing.T) {
	wl := workload.MustGet("fear", 320, 240)
	base, err := Run(wl, Options{Design: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []config.Design{config.BPIM, config.STFIM} {
		res, err := Run(wl, Options{Design: d})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Image {
			if base.Image[i] != res.Image[i] {
				psnr, _ := quality.PSNR(base.Image, res.Image)
				t.Fatalf("%s frame differs from baseline at pixel %d (PSNR %.1f); "+
					"these designs must be functionally identical", d, i, psnr)
			}
		}
	}
}

// TestATFIMQualityBounded checks A-TFIM's approximation stays in the
// quality band the paper's Section VII-D operates in.
func TestATFIMQualityBounded(t *testing.T) {
	wl := workload.MustGet("fear", 320, 240)
	base, err := Run(wl, Options{Design: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Run(wl, Options{Design: config.ATFIM, AngleThreshold: config.Angle0005Pi})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(wl, Options{Design: config.ATFIM, AngleThreshold: config.AngleNoRecalc})
	if err != nil {
		t.Fatal(err)
	}
	pStrict, _ := quality.PSNR(base.Image, strict.Image)
	pLoose, _ := quality.PSNR(base.Image, loose.Image)
	t.Logf("PSNR strict=%.1f loose=%.1f", pStrict, pLoose)
	if pStrict < 35 {
		t.Errorf("strict-threshold PSNR %.1f below the plausible band", pStrict)
	}
	if pLoose > pStrict+0.5 {
		t.Errorf("loosening the threshold improved quality (%.1f -> %.1f)", pStrict, pLoose)
	}
	// A-TFIM at loose thresholds is approximate but must not destroy the
	// image.
	if pLoose < 25 {
		t.Errorf("no-recalc PSNR %.1f implies a broken image", pLoose)
	}
}
