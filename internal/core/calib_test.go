package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/quality"
	"repro/internal/workload"
)

// TestCalibHighRes compares Baseline vs A-TFIM at 1280x1024 (where the
// paper's largest gains appear) and sweeps the camera-angle thresholds.
func TestCalibHighRes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration diagnostics")
	}
	wl := workload.MustGet("doom3", 1280, 1024)
	base, err := Run(wl, Options{Design: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	bp := base.Frame.Activity.Path
	t.Logf("baseline: cycles=%d texLat=%.1f traffic=%dKB (tex %dKB)",
		base.Cycles(), bp.MeanLatency(), base.TotalTraffic()/1024, base.TextureTraffic()/1024)

	for _, th := range config.AngleThresholds() {
		res, err := Run(wl, Options{Design: config.ATFIM, AngleThreshold: th.Value})
		if err != nil {
			t.Fatal(err)
		}
		p := res.Frame.Activity.Path
		psnr, _ := quality.PSNR(base.Image, res.Image)
		t.Logf("%s: renderX=%.2f texX=%.2f trafficX=%.2f recalcs=%d offloads=%d psnr=%.1f lat=%.0f(q=%.0f m=%.0f) dbg[%s]",
			th.Label,
			float64(base.Cycles())/float64(res.Cycles()),
			bp.FilterTime()/p.FilterTime(),
			float64(res.TextureTraffic())/float64(base.TextureTraffic()),
			p.AngleRecalcs, p.OffloadPackets, psnr,
			p.MeanLatency(),
			float64(p.QueueCycles)/float64(p.TexRequests),
			float64(p.MemCycles)/float64(p.TexRequests),
			res.PathDebug())
		t.Logf("   internalBytes=%dMB (%.0f B/cy) pimTexels=%d consolidated=%d",
			res.Frame.Activity.InternalBytes/(1<<20),
			float64(res.Frame.Activity.InternalBytes)/float64(res.Cycles()),
			p.PIMTexelFetches, p.ConsolidatedFetches)
	}
}
