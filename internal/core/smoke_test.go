package core

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestSmokeAllDesigns renders one small frame under each design and checks
// the gross invariants: non-zero cycles, texture traffic recorded, and a
// non-empty image.
func TestSmokeAllDesigns(t *testing.T) {
	wl := workload.MustGet("doom3", 320, 240)
	for _, d := range config.AllDesigns() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			start := time.Now()
			res, err := Run(wl, Options{Design: d})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			t.Logf("%s: cycles=%d texLat=%.1f texTraffic=%d total=%d energy=%.4fJ elapsed=%v",
				d, res.Cycles(), res.TexFilterLatency(), res.TextureTraffic(),
				res.TotalTraffic(), res.Energy.Total(), time.Since(start))
			if res.Cycles() <= 0 {
				t.Errorf("no cycles accounted")
			}
			if res.TextureTraffic() == 0 {
				t.Errorf("no texture traffic recorded")
			}
			if len(res.Image) != wl.Pixels() {
				t.Errorf("image size %d != %d", len(res.Image), wl.Pixels())
			}
			nonBG := 0
			for _, p := range res.Image {
				if p != res.Image[0] {
					nonBG++
				}
			}
			if nonBG < wl.Pixels()/10 {
				t.Errorf("frame looks empty: only %d non-background pixels", nonBG)
			}
		})
	}
}
