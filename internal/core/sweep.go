package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/workload"
)

// The experiment sweeps (designSweep, thresholdSweep, and the per-figure
// loops) are embarrassingly parallel: every (workload, Options) cell is an
// independent simulation. They all funnel through one shared farm scheduler
// so duplicate cells collapse (farm singleflight + RunCached) and the
// worker count is a single process-wide knob (paperbench -parallel).

var (
	sweepMu      sync.Mutex
	sweepFarmVar *farm.Farm
	sweepWorkers int // 0 selects GOMAXPROCS
	sweepTracer  *obs.Tracer
)

// SetSweepParallelism sets the worker count used for experiment sweeps;
// n <= 0 restores the default (GOMAXPROCS). Any existing scheduler is
// drained in the background and a fresh one is built on next use.
func SetSweepParallelism(n int) {
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if f := sweepFarmVar; f != nil {
		sweepFarmVar = nil
		go f.Close(context.Background())
	}
	sweepWorkers = n
}

// SetSweepTracer routes sweep-farm job lifecycle spans into tr (nil
// detaches). Takes effect when the next scheduler is built, so call it
// before the first sweep (or after SetSweepParallelism).
func SetSweepTracer(tr *obs.Tracer) {
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if f := sweepFarmVar; f != nil {
		sweepFarmVar = nil
		go f.Close(context.Background())
	}
	sweepTracer = tr
}

// SweepFarm returns the shared sweep scheduler, building it on first use.
// Its result cache is disabled: RunCached is the memoization layer, the
// farm adds scheduling and in-flight dedup.
func SweepFarm() *farm.Farm {
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if sweepFarmVar == nil {
		sweepFarmVar = farm.New(farm.Config{
			Workers:  sweepWorkers,
			CacheCap: -1,
			Tracer:   sweepTracer,
		})
	}
	return sweepFarmVar
}

// runSpec is one independent simulation cell of a sweep.
type runSpec struct {
	wl   workload.Workload
	opts Options
}

// prefetch warms the run cache by executing the given cells on the sweep
// farm. Identical cells (within this call or racing with another sweep)
// collapse into one simulation via the farm's singleflight plus
// RunCached's. After prefetch returns nil, serial aggregation loops hit
// the cache; if an entry was evicted meanwhile, RunCached simply
// recomputes it, so correctness never depends on cache residency.
func prefetch(ctx context.Context, specs []runSpec) error {
	if len(specs) < 2 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f := SweepFarm()
	jobs := make([]*farm.Job, 0, len(specs))
	for _, sp := range specs {
		sp := sp
		j, err := f.Submit(ctx, farm.Task{
			Key:   cacheKey(sp.wl, sp.opts),
			Label: fmt.Sprintf("%s/%s", sp.wl.Name(), sp.opts.Design),
			Run: func(runCtx context.Context) (any, error) {
				r, err := RunCachedContext(runCtx, sp.wl, sp.opts)
				if err != nil {
					return nil, err
				}
				return r, nil
			},
		})
		if err != nil {
			return err
		}
		jobs = append(jobs, j)
	}
	var firstErr error
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
