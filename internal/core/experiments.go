package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/area"
	"repro/internal/config"
	"repro/internal/farm/flight"
	"repro/internal/farm/lru"
	"repro/internal/mem"
	"repro/internal/quality"
	"repro/internal/stats"
	"repro/internal/texture"
	"repro/internal/workload"
)

// Workload sets used by the evaluation harness. The paper runs the full
// Table II; the bench harness defaults to a quick set (five games at
// 640x480 plus one high-resolution capture) to keep turnaround reasonable,
// and a mini set under -short.

// FullSet returns the complete Table II catalog.
func FullSet() []workload.Workload { return workload.TableII() }

// QuickSet returns the five games at 640x480 plus doom3 at 1280x1024.
func QuickSet() []workload.Workload {
	wls := workload.FiveGames()
	wls = append(wls, workload.MustGet("doom3", 1280, 1024))
	return wls
}

// MiniSet returns three small captures for -short test runs.
func MiniSet() []workload.Workload {
	return []workload.Workload{
		workload.MustGet("doom3", 320, 240),
		workload.MustGet("fear", 320, 240),
		workload.MustGet("hl2", 320, 240),
	}
}

// DefaultRunCacheCap bounds the cross-experiment memoization cache. The
// quick workload set needs ~60 distinct cells; the full Table II sweep
// stays comfortably under this too.
const DefaultRunCacheCap = 512

// runCache memoizes simulation results across experiments (Figs 10-13
// share one sweep; Figs 14-16 share the threshold sweep). It is LRU-
// bounded, and runFlight collapses concurrent computations of the same
// key into one simulation (the farm's singleflight primitive), so
// duplicate in-flight work is impossible even under parallel sweeps.
var (
	runFlight flight.Group[*Result]
	runCache  = lru.New[*Result](DefaultRunCacheCap)
)

// CacheKey returns the memoization key identifying a (workload, Options)
// simulation — the identity the farm dedups and caches on (cmd/pimfarm
// keys its jobs with it).
func CacheKey(wl workload.Workload, opts Options) string { return cacheKey(wl, opts) }

func cacheKey(wl workload.Workload, opts Options) string {
	return fmt.Sprintf("%s/%d/%.5f/%v/%v/%v/%v/%d/%d/%d/%d",
		wl.Name(), opts.Design, opts.AngleThreshold, opts.DisableAniso,
		opts.LinearLayout, opts.DisableConsolidation, opts.Compressed,
		opts.MTUs, opts.FrameIndex, opts.Frames, opts.HMCCubes)
}

// RunCached is Run with cross-experiment memoization and optional durable
// persistence: memory LRU → durable store (when one is attached via
// SetResultStore) → compute, with the singleflight group spanning all
// three tiers so at most one lookup-or-simulation per key is ever in
// flight. Computed results are written through to the store; corrupt or
// stale store entries simply miss and are recomputed and rewritten.
func RunCached(wl workload.Workload, opts Options) (*Result, error) {
	return RunCachedContext(context.Background(), wl, opts)
}

// RunCachedContext is RunCached with cancellation. The caller's context is
// checked before any tier is consulted and threaded into the simulation; a
// follower whose singleflight leader was canceled retries with its own
// live context instead of inheriting the foreign cancellation.
func RunCachedContext(ctx context.Context, wl workload.Workload, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := cacheKey(wl, opts)
	if r, ok := runCache.Get(key); ok {
		runCacheOutcome("memory")
		return r, nil
	}
	for {
		r, err, shared := runFlight.Do(key, func() (*Result, error) {
			// Re-check under the flight: a call that completed between our
			// cache miss and winning the flight may have filled the entry.
			if r, ok := runCache.Get(key); ok {
				runCacheOutcome("memory")
				return r, nil
			}
			st := ResultStore()
			if st != nil {
				if r, ok := loadStoredResult(st, key); ok {
					runCache.Add(key, r)
					runCacheOutcome("disk")
					return r, nil
				}
			}
			r, err := RunContext(ctx, wl, opts)
			if err != nil {
				return nil, err
			}
			runCacheOutcome("compute")
			runCache.Add(key, r)
			if st != nil {
				saveStoredResult(st, key, r)
			}
			return r, nil
		})
		if err != nil && shared && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The leader we shared was canceled but we were not: retry.
			continue
		}
		return r, err
	}
}

// ClearRunCache empties the memoization cache (tests use it to bound
// memory).
func ClearRunCache() { runCache.Clear() }

// Experiment bundles a rendered table with headline summary numbers
// (keyed aggregates the tests and EXPERIMENTS.md assert on).
type Experiment struct {
	Name    string
	Table   *stats.Table
	Summary map[string]float64
}

// Fig2MemoryBreakdown reproduces Fig. 2: the share of memory traffic by
// access class under the baseline, per workload. The paper reports texture
// fetches averaging ~60% of total traffic.
func Fig2MemoryBreakdown(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	tab := stats.NewTable("Fig 2: memory bandwidth usage breakdown (Baseline)",
		"workload", "texture%", "frame%", "geometry%", "z-test%", "color%")
	var specs []runSpec
	for _, wl := range wls {
		specs = append(specs, runSpec{wl, Options{Design: config.Baseline}})
	}
	if err := prefetch(ctx, specs); err != nil {
		return nil, err
	}
	var texShare []float64
	for _, wl := range wls {
		res, err := RunCachedContext(ctx, wl, Options{Design: config.Baseline})
		if err != nil {
			return nil, err
		}
		tr := &res.Frame.Traffic
		tab.AddRowF(wl.Name(),
			100*tr.Share(mem.ClassTexture),
			100*tr.Share(mem.ClassFrame),
			100*tr.Share(mem.ClassGeometry),
			100*tr.Share(mem.ClassZ),
			100*tr.Share(mem.ClassColor))
		texShare = append(texShare, tr.Share(mem.ClassTexture))
	}
	return &Experiment{
		Name:  "fig2",
		Table: tab,
		Summary: map[string]float64{
			"avg_texture_share": stats.Mean(texShare),
		},
	}, nil
}

// Fig4AnisoOff reproduces Fig. 4: texture-filtering speedup and texture
// memory traffic when anisotropic filtering is disabled on the baseline.
func Fig4AnisoOff(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	tab := stats.NewTable("Fig 4: anisotropic filtering disabled (Baseline)",
		"workload", "filter speedup", "normalized traffic")
	var specs []runSpec
	for _, wl := range wls {
		specs = append(specs,
			runSpec{wl, Options{Design: config.Baseline}},
			runSpec{wl, Options{Design: config.Baseline, DisableAniso: true}})
	}
	if err := prefetch(ctx, specs); err != nil {
		return nil, err
	}
	var sp, tr []float64
	for _, wl := range wls {
		on, err := RunCachedContext(ctx, wl, Options{Design: config.Baseline})
		if err != nil {
			return nil, err
		}
		off, err := RunCachedContext(ctx, wl, Options{Design: config.Baseline, DisableAniso: true})
		if err != nil {
			return nil, err
		}
		s := on.Frame.Activity.Path.FilterTime() / off.Frame.Activity.Path.FilterTime()
		n := float64(off.TextureTraffic()) / float64(on.TextureTraffic())
		tab.AddRowF(wl.Name(), s, n)
		sp = append(sp, s)
		tr = append(tr, n)
	}
	return &Experiment{
		Name:  "fig4",
		Table: tab,
		Summary: map[string]float64{
			"avg_filter_speedup":     stats.Mean(sp),
			"max_filter_speedup":     stats.Max(sp),
			"avg_traffic_normalized": stats.Mean(tr),
			"min_traffic_normalized": stats.Min(tr),
		},
	}, nil
}

// Fig5BPIM reproduces Fig. 5: B-PIM's 3D-rendering and texture-filtering
// speedups over the baseline.
func Fig5BPIM(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	tab := stats.NewTable("Fig 5: B-PIM speedup over Baseline",
		"workload", "render speedup", "filter speedup")
	var specs []runSpec
	for _, wl := range wls {
		specs = append(specs,
			runSpec{wl, Options{Design: config.Baseline}},
			runSpec{wl, Options{Design: config.BPIM}})
	}
	if err := prefetch(ctx, specs); err != nil {
		return nil, err
	}
	var rsp, fsp []float64
	for _, wl := range wls {
		base, err := RunCachedContext(ctx, wl, Options{Design: config.Baseline})
		if err != nil {
			return nil, err
		}
		bpim, err := RunCachedContext(ctx, wl, Options{Design: config.BPIM})
		if err != nil {
			return nil, err
		}
		r := float64(base.Cycles()) / float64(bpim.Cycles())
		f := base.Frame.Activity.Path.FilterTime() / bpim.Frame.Activity.Path.FilterTime()
		tab.AddRowF(wl.Name(), r, f)
		rsp = append(rsp, r)
		fsp = append(fsp, f)
	}
	return &Experiment{
		Name:  "fig5",
		Table: tab,
		Summary: map[string]float64{
			"avg_render_speedup": stats.Mean(rsp),
			"max_render_speedup": stats.Max(rsp),
			"avg_filter_speedup": stats.Mean(fsp),
			"max_filter_speedup": stats.Max(fsp),
		},
	}, nil
}

// Fig7TexelFetches reproduces the Fig. 7 fetch-count comparison at the
// unit level: for a 4x anisotropic footprint, the conventional order
// fetches 32 texels to the GPU while A-TFIM fetches 8 parent texels.
func Fig7TexelFetches() *Experiment {
	tab := stats.NewTable("Fig 7: texel fetches per texture request",
		"anisotropy", "baseline fetches", "A-TFIM parent fetches", "reduction")
	sum := map[string]float64{}
	for _, n := range []int{2, 4, 8, 16} {
		f := texture.Footprint{N: n, Lod: 1.5}
		base := f.TexelFetches()
		par := f.ParentFetches()
		tab.AddRowF(fmt.Sprintf("%dx", n), float64(base), float64(par), float64(base)/float64(par))
		if n == 4 {
			sum["baseline_fetches_4x"] = float64(base)
			sum["atfim_fetches_4x"] = float64(par)
		}
	}
	return &Experiment{Name: "fig7", Table: tab, Summary: sum}
}

// designSweep runs every design on every workload (memoized) and returns
// results indexed [workload][design]. The cells execute in parallel on the
// sweep farm; the aggregation below stays in workload order, so output is
// byte-identical to a serial sweep.
func designSweep(ctx context.Context, wls []workload.Workload) (map[string]map[config.Design]*Result, error) {
	var specs []runSpec
	for _, wl := range wls {
		for _, d := range config.AllDesigns() {
			specs = append(specs, runSpec{wl, Options{Design: d}})
		}
	}
	if err := prefetch(ctx, specs); err != nil {
		return nil, err
	}
	out := make(map[string]map[config.Design]*Result, len(wls))
	for _, wl := range wls {
		row := make(map[config.Design]*Result, 4)
		for _, d := range config.AllDesigns() {
			res, err := RunCachedContext(ctx, wl, Options{Design: d})
			if err != nil {
				return nil, err
			}
			row[d] = res
		}
		out[wl.Name()] = row
	}
	return out, nil
}

// Fig10TextureSpeedup reproduces Fig. 10: normalized texture-filtering
// speedup of the four designs (plus A-TFIM at 0.05pi for reference).
func Fig10TextureSpeedup(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	sweep, err := designSweep(ctx, wls)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Fig 10: texture filtering speedup (normalized to Baseline)",
		"workload", "Baseline", "B-PIM", "S-TFIM", "A-TFIM-001pi")
	agg := map[config.Design][]float64{}
	for _, wl := range wls {
		row := sweep[wl.Name()]
		base := row[config.Baseline].Frame.Activity.Path.FilterTime()
		vals := make([]float64, 0, 4)
		for _, d := range config.AllDesigns() {
			v := base / row[d].Frame.Activity.Path.FilterTime()
			vals = append(vals, v)
			agg[d] = append(agg[d], v)
		}
		tab.AddRowF(wl.Name(), vals...)
	}
	return &Experiment{
		Name:  "fig10",
		Table: tab,
		Summary: map[string]float64{
			"avg_speedup_bpim":  stats.Mean(agg[config.BPIM]),
			"avg_speedup_stfim": stats.Mean(agg[config.STFIM]),
			"avg_speedup_atfim": stats.Mean(agg[config.ATFIM]),
			"max_speedup_atfim": stats.Max(agg[config.ATFIM]),
		},
	}, nil
}

// Fig11RenderSpeedup reproduces Fig. 11: normalized 3D-rendering speedup
// of the four designs.
func Fig11RenderSpeedup(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	sweep, err := designSweep(ctx, wls)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Fig 11: 3D rendering speedup (normalized to Baseline)",
		"workload", "Baseline", "B-PIM", "S-TFIM", "A-TFIM-001pi")
	agg := map[config.Design][]float64{}
	for _, wl := range wls {
		row := sweep[wl.Name()]
		base := float64(row[config.Baseline].Cycles())
		vals := make([]float64, 0, 4)
		for _, d := range config.AllDesigns() {
			v := base / float64(row[d].Cycles())
			vals = append(vals, v)
			agg[d] = append(agg[d], v)
		}
		tab.AddRowF(wl.Name(), vals...)
	}
	return &Experiment{
		Name:  "fig11",
		Table: tab,
		Summary: map[string]float64{
			"avg_speedup_bpim":  stats.Mean(agg[config.BPIM]),
			"avg_speedup_stfim": stats.Mean(agg[config.STFIM]),
			"avg_speedup_atfim": stats.Mean(agg[config.ATFIM]),
			"max_speedup_atfim": stats.Max(agg[config.ATFIM]),
		},
	}, nil
}

// Fig12MemoryTraffic reproduces Fig. 12: texture memory traffic normalized
// to the baseline, including both A-TFIM thresholds the paper plots.
func Fig12MemoryTraffic(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	sweep, err := designSweep(ctx, wls)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Fig 12: texture memory traffic (normalized to Baseline)",
		"workload", "Baseline", "B-PIM", "S-TFIM", "A-TFIM-001pi", "A-TFIM-005pi")
	var specs []runSpec
	for _, wl := range wls {
		specs = append(specs, runSpec{wl, Options{Design: config.ATFIM, AngleThreshold: config.Angle005Pi}})
	}
	if err := prefetch(ctx, specs); err != nil {
		return nil, err
	}
	agg := map[string][]float64{}
	for _, wl := range wls {
		row := sweep[wl.Name()]
		base := float64(row[config.Baseline].TextureTraffic())
		a5, err := RunCachedContext(ctx, wl, Options{Design: config.ATFIM, AngleThreshold: config.Angle005Pi})
		if err != nil {
			return nil, err
		}
		vals := []float64{
			1,
			float64(row[config.BPIM].TextureTraffic()) / base,
			float64(row[config.STFIM].TextureTraffic()) / base,
			float64(row[config.ATFIM].TextureTraffic()) / base,
			float64(a5.TextureTraffic()) / base,
		}
		tab.AddRowF(wl.Name(), vals...)
		agg["stfim"] = append(agg["stfim"], vals[2])
		agg["atfim001"] = append(agg["atfim001"], vals[3])
		agg["atfim005"] = append(agg["atfim005"], vals[4])
	}
	return &Experiment{
		Name:  "fig12",
		Table: tab,
		Summary: map[string]float64{
			"avg_traffic_stfim":    stats.Mean(agg["stfim"]),
			"avg_traffic_atfim001": stats.Mean(agg["atfim001"]),
			"avg_traffic_atfim005": stats.Mean(agg["atfim005"]),
			"min_traffic_atfim005": stats.Min(agg["atfim005"]),
		},
	}, nil
}

// Fig13Energy reproduces Fig. 13: whole-GPU energy normalized to the
// baseline.
func Fig13Energy(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	sweep, err := designSweep(ctx, wls)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Fig 13: energy consumption (normalized to Baseline)",
		"workload", "Baseline", "B-PIM", "S-TFIM", "A-TFIM-001pi")
	agg := map[config.Design][]float64{}
	for _, wl := range wls {
		row := sweep[wl.Name()]
		base := row[config.Baseline].Energy.Total()
		vals := make([]float64, 0, 4)
		for _, d := range config.AllDesigns() {
			v := row[d].Energy.Total() / base
			vals = append(vals, v)
			agg[d] = append(agg[d], v)
		}
		tab.AddRowF(wl.Name(), vals...)
	}
	return &Experiment{
		Name:  "fig13",
		Table: tab,
		Summary: map[string]float64{
			"avg_energy_bpim":  stats.Mean(agg[config.BPIM]),
			"avg_energy_stfim": stats.Mean(agg[config.STFIM]),
			"avg_energy_atfim": stats.Mean(agg[config.ATFIM]),
		},
	}, nil
}

// thresholdSweep runs A-TFIM at each camera-angle threshold, in parallel
// on the sweep farm. The Baseline cell per workload is prefetched too:
// Figs 14 and 15 normalize against it right after this sweep.
func thresholdSweep(ctx context.Context, wls []workload.Workload) (map[string]map[string]*Result, error) {
	var specs []runSpec
	for _, wl := range wls {
		specs = append(specs, runSpec{wl, Options{Design: config.Baseline}})
		for _, th := range config.AngleThresholds() {
			specs = append(specs, runSpec{wl, Options{Design: config.ATFIM, AngleThreshold: th.Value}})
		}
	}
	if err := prefetch(ctx, specs); err != nil {
		return nil, err
	}
	out := map[string]map[string]*Result{}
	for _, wl := range wls {
		row := map[string]*Result{}
		for _, th := range config.AngleThresholds() {
			res, err := RunCachedContext(ctx, wl, Options{Design: config.ATFIM, AngleThreshold: th.Value})
			if err != nil {
				return nil, err
			}
			row[th.Label] = res
		}
		out[wl.Name()] = row
	}
	return out, nil
}

// Fig14ThresholdSpeedup reproduces Fig. 14: A-TFIM rendering speedup under
// different camera-angle thresholds.
func Fig14ThresholdSpeedup(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	sweep, err := thresholdSweep(ctx, wls)
	if err != nil {
		return nil, err
	}
	labels := config.AngleThresholds()
	cols := []string{"workload"}
	for _, th := range labels {
		cols = append(cols, th.Label)
	}
	tab := stats.NewTable("Fig 14: A-TFIM rendering speedup vs camera-angle threshold", cols...)
	agg := map[string][]float64{}
	for _, wl := range wls {
		base, err := RunCachedContext(ctx, wl, Options{Design: config.Baseline})
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, len(labels))
		for _, th := range labels {
			v := float64(base.Cycles()) / float64(sweep[wl.Name()][th.Label].Cycles())
			vals = append(vals, v)
			agg[th.Label] = append(agg[th.Label], v)
		}
		tab.AddRowF(wl.Name(), vals...)
	}
	sum := map[string]float64{}
	for _, th := range labels {
		sum["avg_"+th.Label] = stats.Mean(agg[th.Label])
	}
	return &Experiment{Name: "fig14", Table: tab, Summary: sum}, nil
}

// Fig15ThresholdQuality reproduces Fig. 15: PSNR of A-TFIM frames against
// the baseline render under different camera-angle thresholds.
func Fig15ThresholdQuality(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	sweep, err := thresholdSweep(ctx, wls)
	if err != nil {
		return nil, err
	}
	labels := config.AngleThresholds()
	cols := []string{"workload"}
	for _, th := range labels {
		cols = append(cols, th.Label)
	}
	tab := stats.NewTable("Fig 15: A-TFIM image quality (PSNR) vs camera-angle threshold", cols...)
	agg := map[string][]float64{}
	for _, wl := range wls {
		base, err := RunCachedContext(ctx, wl, Options{Design: config.Baseline})
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, len(labels))
		for _, th := range labels {
			p, err := quality.PSNR(base.Image, sweep[wl.Name()][th.Label].Image)
			if err != nil {
				return nil, err
			}
			vals = append(vals, p)
			agg[th.Label] = append(agg[th.Label], p)
		}
		tab.AddRowF(wl.Name(), vals...)
	}
	sum := map[string]float64{}
	for _, th := range labels {
		sum["avg_"+th.Label] = stats.Mean(agg[th.Label])
	}
	return &Experiment{Name: "fig15", Table: tab, Summary: sum}, nil
}

// Fig16Tradeoff reproduces Fig. 16: the averaged performance-quality
// tradeoff across thresholds.
func Fig16Tradeoff(ctx context.Context, wls []workload.Workload) (*Experiment, error) {
	f14, err := Fig14ThresholdSpeedup(ctx, wls)
	if err != nil {
		return nil, err
	}
	f15, err := Fig15ThresholdQuality(ctx, wls)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Fig 16: performance-quality tradeoff (averages)",
		"threshold", "speedup", "PSNR")
	sum := map[string]float64{}
	for _, th := range config.AngleThresholds() {
		sp := f14.Summary["avg_"+th.Label]
		ps := f15.Summary["avg_"+th.Label]
		tab.AddRowF(th.Label, sp, ps)
		sum["speedup_"+th.Label] = sp
		sum["psnr_"+th.Label] = ps
	}
	return &Experiment{Name: "fig16", Table: tab, Summary: sum}, nil
}

// Table1Config renders the paper's Table I.
func Table1Config() *Experiment {
	cfg := config.Default(config.ATFIM)
	tab := stats.NewTable("Table I: simulator configuration", "parameter", "value")
	for _, row := range cfg.TableI() {
		tab.AddRow(row[0], row[1])
	}
	return &Experiment{Name: "table1", Table: tab, Summary: map[string]float64{
		"clusters":      float64(cfg.GPU.Clusters),
		"texture_units": float64(cfg.GPU.TextureUnits),
		"hmc_vaults":    float64(cfg.HMCVaults),
	}}
}

// Table2Workloads renders the paper's Table II.
func Table2Workloads() *Experiment {
	tab := stats.NewTable("Table II: gaming benchmarks",
		"name", "resolution", "library", "3D engine", "triangles", "textures")
	for _, wl := range workload.TableII() {
		sc := wl.Scene()
		tab.AddRow(wl.Game,
			fmt.Sprintf("%dx%d", wl.Width, wl.Height),
			wl.Library, wl.Engine,
			fmt.Sprintf("%d", sc.NumTriangles()),
			fmt.Sprintf("%d", len(sc.Textures)))
	}
	return &Experiment{Name: "table2", Table: tab, Summary: map[string]float64{
		"workloads": float64(len(workload.TableII())),
	}}
}

// OverheadAnalysis reproduces Section VII-E: the area overhead of A-TFIM.
func OverheadAnalysis() *Experiment {
	cfg := config.Default(config.ATFIM)
	h := area.ComputeHMC(cfg)
	g := area.ComputeGPU(cfg)
	tab := stats.NewTable("Section VII-E: design overhead",
		"component", "value")
	tab.AddRow("Parent Texel Buffer", fmt.Sprintf("%.2f KB", h.ParentTexelBufferKB))
	tab.AddRow("Child Texel Consolidation", fmt.Sprintf("%.2f KB", h.ConsolidationKB))
	tab.AddRow("HMC logic units area", fmt.Sprintf("%.2f mm^2", h.LogicMM2))
	tab.AddRow("HMC storage area", fmt.Sprintf("%.2f mm^2", h.StorageMM2))
	tab.AddRow("HMC total overhead", fmt.Sprintf("%.2f mm^2 (%.2f%% of DRAM die)", h.TotalMM2, 100*h.FractionOfDie))
	tab.AddRow("GPU angle-tag storage", fmt.Sprintf("%.2f KB", g.TotalKB))
	tab.AddRow("GPU total overhead", fmt.Sprintf("%.2f mm^2 (%.2f%% of GPU die)", g.TotalMM2, 100*g.FractionOfDie))
	return &Experiment{Name: "overhead", Table: tab, Summary: map[string]float64{
		"ptb_kb":         h.ParentTexelBufferKB,
		"hmc_fraction":   h.FractionOfDie,
		"gpu_fraction":   g.FractionOfDie,
		"gpu_storage_kb": g.TotalKB,
		"angle_bits":     float64(g.AngleBitsPerLine),
	}}
}
