package core

// Durable result-store wiring: a process-wide *store.Store acts as the
// second cache tier behind the in-memory run cache (memory → disk →
// compute, with RunCached's singleflight spanning all three), and
// StoreTier adapts the same store into farm.Tier so cmd/pimfarm serves
// completed jobs from disk across restarts. The payload codec serializes a
// Result — frame measurements, energy breakdown, rendered image and the
// pim-render/metrics/v1 snapshot — as gzipped JSON; a restored Result
// reproduces every aggregate the experiments read (cycles, traffic,
// filter time, energy, PSNR inputs) bit-for-bit, so a warm-store sweep is
// byte-identical to the cold run that populated it.

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/energy"
	"repro/internal/farm"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"
)

// SimVersion identifies the simulator's behavioral revision. It is stamped
// into every store entry; bump it when cycle accounting, the energy model
// or scene generation changes so stale persisted results are recomputed
// instead of silently served.
//
// "2": hermetic tile-group fragment model (shard-count-independent fork/
// join execution) replaced the single sequential frame machine.
const SimVersion = "2"

// StoredResultSchema identifies the store payload encoding produced by
// this package.
const StoredResultSchema = "pim-render/result/v1"

var (
	resultStoreMu  sync.RWMutex
	resultStoreVar *store.Store
)

// SetResultStore attaches (or with nil detaches) the durable result store
// consulted by RunCached after a memory-cache miss and written through
// after every computed cell.
func SetResultStore(st *store.Store) {
	resultStoreMu.Lock()
	defer resultStoreMu.Unlock()
	resultStoreVar = st
}

// ResultStore returns the attached durable result store, if any.
func ResultStore() *store.Store {
	resultStoreMu.RLock()
	defer resultStoreMu.RUnlock()
	return resultStoreVar
}

// StoreTier adapts st into the farm's second cache tier, decoding stored
// payloads back into *Result values. A nil store yields a nil Tier.
func StoreTier(st *store.Store) farm.Tier {
	if st == nil {
		return nil
	}
	return storeTier{st}
}

type storeTier struct{ st *store.Store }

func (t storeTier) Get(key string) (any, bool) {
	r, ok := loadStoredResult(t.st, key)
	if !ok {
		return nil, false
	}
	return r, true
}

func (t storeTier) Put(key string, v any) {
	if r, ok := v.(*Result); ok {
		saveStoredResult(t.st, key, r)
	}
}

// storedResult is the store payload: everything needed to rebuild a Result
// without re-simulating. The image is packed as little-endian bytes (JSON
// base64) instead of a numeric array; the metrics snapshot is embedded so
// a restored Result serves the exact document the live run produced,
// including backend histograms a restored Result could not recompute.
type storedResult struct {
	Schema     string           `json:"schema"`
	SimVersion string           `json:"sim_version"`
	Game       string           `json:"game"`
	Width      int              `json:"width"`
	Height     int              `json:"height"`
	Options    Options          `json:"options"`
	Frame      *gpu.FrameResult `json:"frame"`
	Energy     energy.Breakdown `json:"energy"`
	Metrics    *obs.Snapshot    `json:"metrics,omitempty"`
	Image      []byte           `json:"image,omitempty"`
}

// encodeStoredResult serializes r into a store manifest and gzipped JSON
// payload.
func encodeStoredResult(r *Result) (store.Manifest, []byte, error) {
	opts := r.Options
	opts.Trace = nil    // runtime-only; not part of the cell's identity
	opts.Progress = nil // likewise (and func values cannot be serialized)
	opts.Profile = nil  // likewise
	frame := *r.Frame
	frame.Image = nil // packed separately
	sr := storedResult{
		Schema:     StoredResultSchema,
		SimVersion: SimVersion,
		Game:       r.Workload.Game,
		Width:      r.Workload.Width,
		Height:     r.Workload.Height,
		Options:    opts,
		Frame:      &frame,
		Energy:     r.Energy,
		Metrics:    r.Metrics(),
		Image:      packWords(r.Image),
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(&sr); err != nil {
		return store.Manifest{}, nil, err
	}
	if err := zw.Close(); err != nil {
		return store.Manifest{}, nil, err
	}
	man := store.Manifest{
		Workload:      r.Workload.Name(),
		Design:        r.Design.String(),
		PayloadSchema: StoredResultSchema,
		SimVersion:    SimVersion,
	}
	return man, buf.Bytes(), nil
}

// decodeStoredResult rebuilds a Result from a store payload, verifying the
// payload schema, simulator version and that the entry really describes
// key. Restored results have no live texture path or memory backend; their
// Metrics() serves the embedded snapshot.
func decodeStoredResult(key string, payload []byte) (*Result, error) {
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("core: stored result: %w", err)
	}
	var sr storedResult
	if err := json.NewDecoder(zr).Decode(&sr); err != nil {
		zr.Close()
		return nil, fmt.Errorf("core: stored result: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("core: stored result: %w", err)
	}
	if sr.Schema != StoredResultSchema {
		return nil, fmt.Errorf("core: stored result schema %q (want %q)", sr.Schema, StoredResultSchema)
	}
	if sr.SimVersion != SimVersion {
		return nil, fmt.Errorf("core: stored result from sim version %q (running %q)", sr.SimVersion, SimVersion)
	}
	if sr.Frame == nil {
		return nil, fmt.Errorf("core: stored result has no frame")
	}
	wl, err := workload.Get(sr.Game, sr.Width, sr.Height)
	if err != nil {
		return nil, fmt.Errorf("core: stored result: %w", err)
	}
	if got := cacheKey(wl, sr.Options); got != key {
		return nil, fmt.Errorf("core: stored result keyed %q, expected %q", got, key)
	}
	img := unpackWords(sr.Image)
	frame := sr.Frame
	frame.Image = img
	return &Result{
		Workload:      wl,
		Design:        sr.Options.Design,
		Options:       sr.Options,
		Frame:         frame,
		Energy:        sr.Energy,
		Image:         img,
		storedMetrics: sr.Metrics,
	}, nil
}

// loadStoredResult fetches and decodes key from st; any defect (store-level
// corruption, schema or sim-version mismatch, undecodable payload) is a
// miss — the caller recomputes and the rewrite replaces the entry.
func loadStoredResult(st *store.Store, key string) (*Result, bool) {
	payload, _, ok := st.Get(key)
	if !ok {
		return nil, false
	}
	r, err := decodeStoredResult(key, payload)
	if err != nil {
		return nil, false
	}
	return r, true
}

// saveStoredResult writes r through to the durable store; persistence is
// best-effort and never fails the run (store counters record put errors).
func saveStoredResult(st *store.Store, key string, r *Result) {
	man, payload, err := encodeStoredResult(r)
	if err != nil {
		return
	}
	_ = st.Put(key, man, payload)
}

// EncodeResultPayload serializes r as a self-contained
// pim-render/result/v1 document — the same encoding store entries carry —
// for transport between farm nodes. Distributed workers return their
// results this way, so a coordinator decoding the payload reproduces
// every aggregate bit-for-bit, exactly as a warm store hit would.
func EncodeResultPayload(r *Result) ([]byte, error) {
	_, payload, err := encodeStoredResult(r)
	return payload, err
}

// DecodeResultPayload rebuilds a Result from a pim-render/result/v1
// document, verifying the schema, simulator version, and that the
// payload really describes key (the job's CacheKey) — a worker running a
// different simulator revision is rejected rather than trusted.
func DecodeResultPayload(key string, payload []byte) (*Result, error) {
	return decodeStoredResult(key, payload)
}

// packWords encodes RGBA8 words as little-endian bytes (JSON base64 is ~3x
// smaller than a numeric array, and gzip then compresses the raw bytes).
func packWords(w []uint32) []byte {
	if len(w) == 0 {
		return nil
	}
	b := make([]byte, 4*len(w))
	for i, v := range w {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return b
}

// unpackWords reverses packWords (trailing partial words are dropped).
func unpackWords(b []byte) []uint32 {
	if len(b) < 4 {
		return nil
	}
	w := make([]uint32, len(b)/4)
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return w
}
