package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// expSet returns a tiny workload set so experiment tests stay fast.
func expSet() []workload.Workload {
	return []workload.Workload{
		workload.MustGet("doom3", 320, 240),
		workload.MustGet("wolf", 320, 240),
	}
}

func TestFig2Shares(t *testing.T) {
	e, err := Fig2MemoryBreakdown(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	share := e.Summary["avg_texture_share"]
	if share < 0.25 || share > 0.85 {
		t.Errorf("texture share %.2f outside plausible band (paper ~0.60)", share)
	}
	if e.Table.NumRows() != 2 {
		t.Errorf("rows %d", e.Table.NumRows())
	}
}

func TestFig4AnisoOffDirection(t *testing.T) {
	e, err := Fig4AnisoOff(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	if e.Summary["avg_filter_speedup"] <= 1 {
		t.Errorf("disabling anisotropic filtering did not speed up filtering: %.2f",
			e.Summary["avg_filter_speedup"])
	}
	if e.Summary["avg_traffic_normalized"] >= 1 {
		t.Errorf("disabling anisotropic filtering did not cut traffic: %.2f",
			e.Summary["avg_traffic_normalized"])
	}
}

func TestFig5BPIMWins(t *testing.T) {
	e, err := Fig5BPIM(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	if e.Summary["avg_render_speedup"] <= 1 {
		t.Errorf("B-PIM render speedup %.2f, paper reports ~1.27",
			e.Summary["avg_render_speedup"])
	}
}

func TestFig7Counts(t *testing.T) {
	e := Fig7TexelFetches()
	if e.Summary["baseline_fetches_4x"] != 32 || e.Summary["atfim_fetches_4x"] != 8 {
		t.Fatalf("Fig 7 counts %v, paper says 32 vs 8", e.Summary)
	}
}

func TestFig10And11Ordering(t *testing.T) {
	f10, err := Fig10TextureSpeedup(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Fig11RenderSpeedup(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline ordering: A-TFIM beats every other design on
	// texture filtering, and beats the baseline on rendering.
	if f10.Summary["avg_speedup_atfim"] <= 1 {
		t.Errorf("A-TFIM filter speedup %.2f <= 1", f10.Summary["avg_speedup_atfim"])
	}
	if f10.Summary["avg_speedup_atfim"] <= f10.Summary["avg_speedup_stfim"] {
		t.Errorf("A-TFIM (%.2f) should beat S-TFIM (%.2f) on filtering",
			f10.Summary["avg_speedup_atfim"], f10.Summary["avg_speedup_stfim"])
	}
	if f11.Summary["avg_speedup_atfim"] <= 1 {
		t.Errorf("A-TFIM render speedup %.2f <= 1", f11.Summary["avg_speedup_atfim"])
	}
	if f11.Summary["avg_speedup_bpim"] <= 1 {
		t.Errorf("B-PIM render speedup %.2f <= 1", f11.Summary["avg_speedup_bpim"])
	}
}

func TestFig12TrafficShape(t *testing.T) {
	e, err := Fig12MemoryTraffic(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	// S-TFIM blows up texture traffic (paper: 2.79x average).
	if e.Summary["avg_traffic_stfim"] <= 1.5 {
		t.Errorf("S-TFIM traffic %.2fx, paper reports a large increase",
			e.Summary["avg_traffic_stfim"])
	}
	// Loosening the threshold reduces traffic (Fig 12's two A-TFIM bars).
	if e.Summary["avg_traffic_atfim005"] > e.Summary["avg_traffic_atfim001"] {
		t.Errorf("traffic at 0.05pi (%.2f) above 0.01pi (%.2f)",
			e.Summary["avg_traffic_atfim005"], e.Summary["avg_traffic_atfim001"])
	}
}

func TestFig13EnergyShape(t *testing.T) {
	e, err := Fig13Energy(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	if e.Summary["avg_energy_atfim"] >= 1 {
		t.Errorf("A-TFIM energy %.2fx baseline, paper reports 0.78x",
			e.Summary["avg_energy_atfim"])
	}
	if e.Summary["avg_energy_stfim"] <= e.Summary["avg_energy_atfim"] {
		t.Errorf("S-TFIM (%.2f) should cost more energy than A-TFIM (%.2f)",
			e.Summary["avg_energy_stfim"], e.Summary["avg_energy_atfim"])
	}
}

func TestFig14And15Tradeoffs(t *testing.T) {
	f14, err := Fig14ThresholdSpeedup(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	f15, err := Fig15ThresholdQuality(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	// Loosening the threshold must not slow rendering down...
	strict := f14.Summary["avg_A-TFIM-0005pi"]
	loose := f14.Summary["avg_A-TFIM-no"]
	if loose < strict*0.98 {
		t.Errorf("speedup fell when loosening threshold: %.3f -> %.3f", strict, loose)
	}
	// ...and must not improve quality.
	qStrict := f15.Summary["avg_A-TFIM-0005pi"]
	qLoose := f15.Summary["avg_A-TFIM-no"]
	if qLoose > qStrict+0.5 {
		t.Errorf("PSNR rose when loosening threshold: %.1f -> %.1f", qStrict, qLoose)
	}
	if qStrict < 30 || qStrict > 99 {
		t.Errorf("strict-threshold PSNR %.1f implausible", qStrict)
	}
}

func TestFig16Combines(t *testing.T) {
	e, err := Fig16Tradeoff(context.Background(), expSet())
	if err != nil {
		t.Fatal(err)
	}
	if e.Table.NumRows() != 5 {
		t.Errorf("tradeoff rows %d want 5", e.Table.NumRows())
	}
	for _, th := range config.AngleThresholds() {
		if e.Summary["speedup_"+th.Label] == 0 || e.Summary["psnr_"+th.Label] == 0 {
			t.Errorf("missing summary for %s", th.Label)
		}
	}
}

func TestStaticExperiments(t *testing.T) {
	t1 := Table1Config()
	if t1.Summary["clusters"] != 16 || t1.Summary["hmc_vaults"] != 32 {
		t.Errorf("Table I summary %v", t1.Summary)
	}
	t2 := Table2Workloads()
	if t2.Summary["workloads"] != 10 {
		t.Errorf("Table II rows %v", t2.Summary["workloads"])
	}
	ov := OverheadAnalysis()
	if ov.Summary["ptb_kb"] < 1.40 || ov.Summary["ptb_kb"] > 1.42 {
		t.Errorf("PTB size %v, paper says 1.41 KB", ov.Summary["ptb_kb"])
	}
	if !strings.Contains(ov.Table.String(), "Parent Texel Buffer") {
		t.Error("overhead table missing PTB row")
	}
}

func TestRunCachedMemoizes(t *testing.T) {
	wl := workload.MustGet("doom3", 320, 240)
	a, err := RunCached(wl, Options{Design: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCached(wl, Options{Design: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs not memoized")
	}
	ClearRunCache()
	c, err := RunCached(wl, Options{Design: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("cache not cleared")
	}
	if c.Cycles() != a.Cycles() {
		t.Fatal("re-run not deterministic")
	}
}
