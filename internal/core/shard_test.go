package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/config"
)

// TestShardedFrameMatchesSerial is the tentpole acceptance criterion: the
// sharded tile-group scan is a pure host-speed knob, so for every design a
// frame simulated at any shard count is byte-identical to the serial run —
// same framebuffer bytes, same metrics snapshot (cycles, traffic, cache
// stats, energy, histograms). Runs go through RunContext directly because
// the run cache deliberately ignores Shards (equal results, equal key).
func TestShardedFrameMatchesSerial(t *testing.T) {
	wl := miniWorkload(t)
	for _, d := range config.AllDesigns() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			serial, err := RunContext(context.Background(), wl, Options{Design: d, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			var serialSnap bytes.Buffer
			if err := serial.Metrics().WriteJSON(&serialSnap); err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 8} {
				sharded, err := RunContext(context.Background(), wl, Options{Design: d, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if len(sharded.Image) != len(serial.Image) {
					t.Fatalf("shards=%d: image length %d vs %d", shards, len(sharded.Image), len(serial.Image))
				}
				for i := range sharded.Image {
					if sharded.Image[i] != serial.Image[i] {
						t.Fatalf("shards=%d: framebuffer diverges at pixel %d: %08x vs %08x",
							shards, i, sharded.Image[i], serial.Image[i])
					}
				}
				if sharded.Cycles() != serial.Cycles() {
					t.Fatalf("shards=%d: cycles %d vs serial %d", shards, sharded.Cycles(), serial.Cycles())
				}
				var snap bytes.Buffer
				if err := sharded.Metrics().WriteJSON(&snap); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(snap.Bytes(), serialSnap.Bytes()) {
					t.Fatalf("shards=%d: metrics snapshot differs from serial run", shards)
				}
			}
		})
	}
}

// TestRunContextCanceled: a canceled context aborts the run before any
// simulation work and surfaces the context's error.
func TestRunContextCanceled(t *testing.T) {
	wl := miniWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, wl, Options{Design: config.ATFIM}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx err = %v, want context.Canceled", err)
	}
	if _, err := RunCachedContext(ctx, wl, Options{Design: config.ATFIM}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCachedContext on canceled ctx err = %v, want context.Canceled", err)
	}
}

// TestDefaultShards pins the process-wide default: 0 or negative restores
// GOMAXPROCS, positive values stick.
func TestDefaultShards(t *testing.T) {
	old := DefaultShards()
	defer SetDefaultShards(0)
	SetDefaultShards(3)
	if got := DefaultShards(); got != 3 {
		t.Fatalf("DefaultShards after Set(3) = %d", got)
	}
	SetDefaultShards(0)
	if got := DefaultShards(); got < 1 {
		t.Fatalf("DefaultShards after Set(0) = %d, want >= 1", got)
	}
	_ = old
}
