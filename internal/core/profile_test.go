package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/obs"
)

// TestFrameProfileArtifact is the tentpole acceptance criterion: a profiled
// run emits a valid frameprofile/v1 artifact with at least two meter
// timelines and per-supertile attribution, stamped with provenance.
func TestFrameProfileArtifact(t *testing.T) {
	wl := miniWorkload(t)
	for _, d := range []config.Design{config.Baseline, config.BPIM} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			var fp obs.FrameProfile
			res, err := RunContext(context.Background(), wl, Options{Design: d, Profile: &fp})
			if err != nil {
				t.Fatal(err)
			}
			if fp.Schema != obs.FrameProfileSchema {
				t.Fatalf("schema %q, want %q", fp.Schema, obs.FrameProfileSchema)
			}
			if fp.Workload != wl.Name() || fp.Design != d.String() {
				t.Fatalf("identity %q/%q, want %q/%q", fp.Workload, fp.Design, wl.Name(), d)
			}
			if fp.SimVersion != SimVersion || fp.Build == nil || fp.Build.GoVersion == "" {
				t.Fatalf("provenance missing: sim=%q build=%+v", fp.SimVersion, fp.Build)
			}
			if len(fp.Frames) != 1 {
				t.Fatalf("got %d frames, want 1", len(fp.Frames))
			}
			f := fp.Frames[0]
			if f.Cycles != res.Cycles() {
				t.Fatalf("anatomy cycles %d, result cycles %d", f.Cycles, res.Cycles())
			}
			if len(f.Timelines) < 2 {
				t.Fatalf("got %d meter timelines, want >= 2", len(f.Timelines))
			}
			for _, tl := range f.Timelines {
				if tl.Meter == "" || tl.EndCycle != f.Cycles || len(tl.Bytes) == 0 {
					t.Fatalf("malformed timeline %+v", tl)
				}
			}
			if len(f.Groups) == 0 {
				t.Fatal("no supertile groups attributed")
			}
			var frags uint64
			prevEnd := int64(-1)
			for _, g := range f.Groups {
				frags += g.Fragments
				if g.EndCycle < g.StartCycle || g.X < 0 || g.Y < 0 || g.X >= f.Width || g.Y >= f.Height {
					t.Fatalf("malformed group %+v", g)
				}
				if g.StartCycle < prevEnd {
					t.Fatalf("group spans overlap: %+v starts before %d", g, prevEnd)
				}
				prevEnd = g.EndCycle
			}
			if frags != res.Frame.Activity.FragmentCount {
				t.Fatalf("group fragments sum %d, frame total %d", frags, res.Frame.Activity.FragmentCount)
			}
			if len(f.Stages) != 4 {
				t.Fatalf("got %d stages, want 4 (geometry/setup/fragment/resolve)", len(f.Stages))
			}
			if len(f.TrafficBytes) == 0 {
				t.Fatal("traffic breakdown missing")
			}
		})
	}
}

// TestProfileDoesNotPerturbResults: profiling is observational only — the
// metrics snapshot and framebuffer of a profiled run are byte-identical to
// an unprofiled one.
func TestProfileDoesNotPerturbResults(t *testing.T) {
	wl := miniWorkload(t)
	plain, err := RunContext(context.Background(), wl, Options{Design: config.BPIM})
	if err != nil {
		t.Fatal(err)
	}
	var fp obs.FrameProfile
	profiled, err := RunContext(context.Background(), wl, Options{Design: config.BPIM, Profile: &fp})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.Metrics().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := profiled.Metrics().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("metrics snapshot differs with profiling on")
	}
	for i := range plain.Image {
		if plain.Image[i] != profiled.Image[i] {
			t.Fatalf("framebuffer diverges at pixel %d", i)
		}
	}
}

// TestProfileDeterministicAcrossShards: the artifact itself — not just the
// simulated results — is byte-identical at any shard count.
func TestProfileDeterministicAcrossShards(t *testing.T) {
	wl := miniWorkload(t)
	artifact := func(shards int) []byte {
		var fp obs.FrameProfile
		if _, err := RunContext(context.Background(), wl,
			Options{Design: config.ATFIM, Shards: shards, Profile: &fp}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fp.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := artifact(1)
	for _, shards := range []int{2, 8} {
		if !bytes.Equal(artifact(shards), serial) {
			t.Fatalf("shards=%d: profile artifact differs from serial run", shards)
		}
	}
}

// TestProfileExcludedFromCacheKey: Profile is runtime-only, so it must not
// split the run cache (same key with and without).
func TestProfileExcludedFromCacheKey(t *testing.T) {
	wl := miniWorkload(t)
	var fp obs.FrameProfile
	with := cacheKey(wl, Options{Design: config.BPIM, Profile: &fp})
	without := cacheKey(wl, Options{Design: config.BPIM})
	if with != without {
		t.Fatalf("cache key differs with profiling: %q vs %q", with, without)
	}
}
