// Package core wires the paper's four designs together (memory backend +
// texture path + GPU pipeline), runs workloads under them, and implements
// every evaluation experiment (the figures and tables of Section VII).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/energy"
	"repro/internal/gpu"
	"repro/internal/hmc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/scene"
	"repro/internal/texture"
	"repro/internal/tfim"
	"repro/internal/workload"
)

// Options configures one simulation run.
type Options struct {
	// Design selects the architecture.
	Design config.Design
	// AngleThreshold overrides the A-TFIM camera-angle threshold when > 0.
	AngleThreshold float32
	// DisableAniso reproduces the Fig. 4 study (anisotropic filtering off).
	DisableAniso bool
	// FrameIndex selects the camera frame (default: mid-flythrough).
	FrameIndex int
	// Frames renders this many consecutive frames (default 1).
	Frames int
	// LinearLayout forces row-major texel addressing (ablation).
	LinearLayout bool
	// DisableConsolidation turns off Child Texel Consolidation (ablation).
	DisableConsolidation bool
	// MTUs overrides the S-TFIM MTU count when > 0 (ablation).
	MTUs int
	// Compressed enables fixed-rate texture block compression (ablation;
	// not supported with A-TFIM).
	Compressed bool
	// HMCCubes sets the number of HMC cubes attached to the GPU (Section
	// V-E's multi-HMC scenario); 0 or 1 means a single cube.
	HMCCubes int
	// Shards is the number of worker goroutines sharding one frame's
	// tile-group scan (0 = DefaultShards, 1 = serial). Sharding is a host
	// parallelization knob only: simulated results are byte-identical at
	// any shard count, so Shards is excluded from cache and store keys.
	Shards int
	// Trace, when non-nil, receives cycle-timeline spans from every
	// instrumented unit (pipeline stages, texture units, offload packages,
	// DRAM/HMC bandwidth meters). Tracing never perturbs simulated cycle
	// counts. Export with Trace.WriteChromeTrace.
	Trace *obs.Tracer
	// Progress, when non-nil, receives in-flight reports (stage, supertile
	// groups merged, cycles simulated) while each frame runs. Fragment-
	// stage reports arrive from worker goroutines concurrently; the
	// callback must be safe for concurrent use and must not block. Like
	// Trace it is runtime-only: excluded from cache/store keys and never
	// serialized, and it cannot perturb simulated results.
	Progress func(Progress) `json:"-"`
	// Profile, when non-nil, is filled with a pim-render/frameprofile/v1
	// frame-anatomy artifact after the run: per-meter bandwidth timelines
	// merged onto the frame timeline, per-supertile-group attribution, and
	// stage spans. Runtime-only like Trace/Progress: excluded from cache
	// and store keys, never serialized, and incapable of perturbing
	// simulated results (it only reads meters the timing model already
	// populated).
	Profile *obs.FrameProfile `json:"-"`
}

// Progress is a point-in-time report of a frame simulation in flight.
type Progress = gpu.Progress

// Result is the outcome of one run.
type Result struct {
	Workload workload.Workload
	Design   config.Design
	Options  Options
	// Frame holds the (accumulated) measurements.
	Frame *gpu.FrameResult
	// Energy is the estimated energy of the run.
	Energy energy.Breakdown
	// Image is the last rendered frame.
	Image []uint32

	path    gpu.TexturePath
	backend mem.Backend

	// storedMetrics is the embedded pim-render/metrics/v1 snapshot of a
	// Result restored from the durable store (which has no live path or
	// backend to recompute one from); Metrics serves it verbatim.
	storedMetrics *obs.Snapshot
}

// Restored reports whether the result was loaded from the durable store
// rather than simulated in this process.
func (r *Result) Restored() bool { return r.storedMetrics != nil }

// PathDebug returns the texture path's diagnostic string, if it has one.
func (r *Result) PathDebug() string {
	if d, ok := r.path.(interface{ DebugString() string }); ok {
		return d.DebugString()
	}
	return ""
}

// TextureTraffic returns the texture-class bytes moved between GPU and
// memory (the Fig. 12 metric).
func (r *Result) TextureTraffic() uint64 { return r.Frame.Traffic.TextureBytes() }

// TotalTraffic returns all GPU<->memory bytes.
func (r *Result) TotalTraffic() uint64 { return r.Frame.Traffic.Total() }

// TexFilterLatency returns the mean texture-filtering latency in cycles.
func (r *Result) TexFilterLatency() float64 { return r.Frame.TexFilterLatency() }

// Cycles returns the total render time in GPU cycles.
func (r *Result) Cycles() int64 { return r.Frame.Cycles }

// trafficReporter is implemented by texture paths that track their own
// GPU<->memory traffic.
type trafficReporter interface{ Traffic() *mem.Traffic }

// ValidateOptions reports whether opts form a runnable configuration.
// cmd/pimfarm uses it to reject bad submissions with a 400 at submit time
// instead of queuing a job that is guaranteed to fail.
func ValidateOptions(opts Options) error { return buildConfig(opts).Validate() }

// buildConfig derives the design configuration from options.
func buildConfig(opts Options) config.Config {
	cfg := config.Default(opts.Design)
	if opts.AngleThreshold > 0 {
		cfg.TFIM.AngleThreshold = opts.AngleThreshold
	}
	if opts.DisableAniso {
		cfg.AnisoEnabled = false
	}
	if opts.LinearLayout {
		cfg.MortonLayout = false
	}
	if opts.DisableConsolidation {
		cfg.TFIM.Consolidate = false
	}
	if opts.MTUs > 0 {
		cfg.TFIM.MTUs = opts.MTUs
	}
	if opts.Compressed {
		cfg.TextureCompression = true
	}
	return cfg
}

// buildDesign constructs the backend and texture path for a configuration.
func buildDesign(cfg config.Config, cubes int) (mem.Backend, gpu.TexturePath, hmc.Cube) {
	switch cfg.Design {
	case config.Baseline:
		d := dram.DefaultConfig()
		d.MemClockGHz = cfg.MemClockGHz
		backend := dram.New(d)
		return backend, tfim.NewBaselinePath(cfg, backend), nil
	case config.BPIM:
		cube := newCube(cfg, cubes)
		return cube, tfim.NewBaselinePath(cfg, cube), cube
	case config.STFIM:
		cube := newCube(cfg, cubes)
		return cube, tfim.NewSTFIMPath(cfg, cube), cube
	case config.ATFIM:
		cube := newCube(cfg, cubes)
		return cube, tfim.NewATFIMPath(cfg, cube), cube
	default:
		panic(fmt.Sprintf("core: unknown design %v", cfg.Design))
	}
}

func newCube(cfg config.Config, cubes int) hmc.Cube {
	h := hmc.DefaultConfig()
	h.Vaults = cfg.HMCVaults
	h.BanksPerVault = cfg.HMCBanksPerVault
	h.ExternalGBs = cfg.HMCExternalGBs
	h.InternalGBs = cfg.HMCInternalGBs
	h.MemClockGHz = cfg.MemClockGHz
	if cubes > 1 {
		return hmc.NewArray(cubes, h)
	}
	return hmc.New(h)
}

// sceneCache memoizes generated scenes; generation is deterministic per
// spec and scenes are immutable once addresses are assigned, so runs of
// different designs share them.
var (
	sceneCacheMu sync.Mutex
	sceneCache   = map[string]*scene.Scene{}
)

func cachedScene(spec scene.Spec, compressed bool) *scene.Scene {
	key := fmt.Sprintf("%s/%d/%v/%v", spec.Name, spec.Seed, spec.Layout, compressed)
	sceneCacheMu.Lock()
	defer sceneCacheMu.Unlock()
	if sc, ok := sceneCache[key]; ok {
		return sc
	}
	sc := scene.Generate(spec)
	if compressed {
		for _, tx := range sc.Textures {
			tx.Compress()
		}
	}
	sc.AssignTextureAddresses(mem.RegionTexture)
	sceneCache[key] = sc
	return sc
}

// defaultShards is the Shards value applied when Options.Shards is zero;
// non-positive means runtime.GOMAXPROCS(0).
var defaultShards atomic.Int32

// SetDefaultShards sets the process-wide shard count used when
// Options.Shards is zero. Non-positive restores the GOMAXPROCS default.
func SetDefaultShards(n int) { defaultShards.Store(int32(n)) }

// DefaultShards returns the shard count applied when Options.Shards is
// zero: the SetDefaultShards override, else GOMAXPROCS.
func DefaultShards() int {
	if n := int(defaultShards.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run simulates a workload under the given options and returns its
// measurements.
func Run(wl workload.Workload, opts Options) (*Result, error) {
	return RunContext(context.Background(), wl, opts)
}

// RunContext is Run with cancellation: the context is checked between
// frames and at tile-group boundaries inside each frame, so an abandoned
// run stops within one group's worth of work.
func RunContext(ctx context.Context, wl workload.Workload, opts Options) (*Result, error) {
	cfg := buildConfig(opts)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec := wl.Spec
	if !cfg.MortonLayout {
		spec.Layout = texture.LayoutLinear
	}
	return runScene(ctx, cachedScene(spec, cfg.TextureCompression), wl, cfg, opts)
}

// RunScene simulates a pre-built scene (used by trace replay and tests).
func RunScene(sc *scene.Scene, wl workload.Workload, opts Options) (*Result, error) {
	cfg := buildConfig(opts)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return runScene(context.Background(), sc, wl, cfg, opts)
}

func runScene(ctx context.Context, sc *scene.Scene, wl workload.Workload, cfg config.Config, opts Options) (*Result, error) {
	backend, path, cube := buildDesign(cfg, opts.HMCCubes)
	pipe := gpu.NewPipeline(cfg, wl.Width, wl.Height, backend, path)
	shards := opts.Shards
	if shards == 0 {
		shards = DefaultShards()
	}
	if shards < 1 {
		shards = 1
	}
	pipe.Shards = shards
	onProgress, onFrameEnd := simTelemetry(cfg.Design)
	if user := opts.Progress; user != nil {
		pipe.Progress = func(pr gpu.Progress) {
			onProgress(pr)
			user(pr)
		}
	} else {
		pipe.Progress = onProgress
	}
	pipe.NewWorker = func() (mem.Backend, gpu.TexturePath, func() uint64) {
		wb, wp, wcube := buildDesign(cfg, opts.HMCCubes)
		var internal func() uint64
		if wcube != nil {
			internal = func() uint64 { return wcube.TotalStats().VaultBytes }
		}
		return wb, wp, internal
	}
	var profiler *gpu.FrameProfiler
	if opts.Profile != nil {
		profiler = &gpu.FrameProfiler{}
		pipe.Profiler = profiler
	}
	if opts.Trace != nil {
		pipe.SetTracer(opts.Trace)
		if ta, ok := backend.(obs.TraceAttacher); ok {
			ta.SetTracer(opts.Trace)
		}
		if ta, ok := path.(obs.TraceAttacher); ok {
			ta.SetTracer(opts.Trace)
		}
	}

	frames := opts.Frames
	if frames < 1 {
		frames = 1
	}
	start := opts.FrameIndex
	if start == 0 {
		start = len(sc.Cameras) / 2
	}
	if start >= len(sc.Cameras) {
		start = len(sc.Cameras) - 1
	}

	var acc *gpu.FrameResult
	for f := 0; f < frames; f++ {
		idx := start + f
		if idx >= len(sc.Cameras) {
			idx = len(sc.Cameras) - 1
		}
		res, err := pipe.RenderFrameContext(ctx, sc, idx)
		if err != nil {
			return nil, err
		}
		onFrameEnd(backend)
		// Merge the frame-level texture path's traffic into the frame
		// traffic (worker-path traffic is already folded in per group).
		if tr, ok := path.(trafficReporter); ok {
			res.Traffic.Add(tr.Traffic())
		}
		// Fill the external/internal byte counts for the energy model; the
		// pipeline already merged the worker cubes' internal bytes, the
		// frame-level cube adds the geometry/resolve share.
		res.Activity.ExternalBytes = res.Traffic.Total()
		if cube != nil {
			res.Activity.InternalBytes += cube.TotalStats().VaultBytes
		}
		// Stamp the finished frame's off-chip traffic breakdown into its
		// anatomy (named like the metrics/v1 traffic counters).
		if profiler != nil {
			if frames := profiler.Frames(); len(frames) > 0 {
				tb := map[string]uint64{}
				for c := mem.Class(0); c < mem.NumClasses; c++ {
					for _, k := range []mem.Kind{mem.Read, mem.Write} {
						if b := res.Traffic.Bytes(c, k); b > 0 {
							tb[fmt.Sprintf("%s.%s", c, k)] = b
						}
					}
				}
				frames[len(frames)-1].TrafficBytes = tb
			}
		}
		if acc == nil {
			acc = res
		} else {
			acc.Accumulate(res)
		}
	}

	model := energy.DefaultModel()
	model.ClockGHz = cfg.GPU.ClockGHz
	bd := model.Estimate(acc, cfg.UsesHMC())

	if opts.Profile != nil {
		build := obs.Build()
		*opts.Profile = obs.FrameProfile{
			Schema:     obs.FrameProfileSchema,
			Workload:   wl.Name(),
			Design:     cfg.Design.String(),
			SimVersion: SimVersion,
			Build:      &build,
			Frames:     profiler.Frames(),
		}
	}

	return &Result{
		Workload: wl,
		Design:   cfg.Design,
		Options:  opts,
		Frame:    acc,
		Energy:   bd,
		Image:    acc.Image,
		path:     path,
		backend:  backend,
	}, nil
}
