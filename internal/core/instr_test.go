package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

// TestInstrumentation prints the detailed per-design counters used to
// calibrate the model against the paper's shapes. Run with -v.
func TestInstrumentation(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration diagnostics")
	}
	wl := workload.MustGet("doom3", 640, 480)
	for _, d := range config.AllDesigns() {
		res, err := Run(wl, Options{Design: d})
		if err != nil {
			t.Fatal(err)
		}
		f := res.Frame
		p := f.Activity.Path
		t.Logf("=== %s ===", d)
		t.Logf("cycles=%d geom=%d frag=%d", f.Cycles, f.GeometryCycles, f.FragmentCycles)
		t.Logf("fragments=%d texReqs=%d meanTexLat=%.1f queue=%.1f mem=%.1f",
			f.Activity.FragmentCount, p.TexRequests, p.MeanLatency(),
			float64(p.QueueCycles)/float64(p.TexRequests),
			float64(p.MemCycles)/float64(p.TexRequests))
		t.Logf("gpuTexels=%d pimTexels=%d consolidated=%d", p.GPUTexelFetches, p.PIMTexelFetches, p.ConsolidatedFetches)
		offLat := 0.0
		if p.OffloadPackets > 0 {
			offLat = float64(p.OffloadLatencySum) / float64(p.OffloadPackets)
		}
		t.Logf("offloads=%d offLat=%.1f responses=%d angleRecalcs=%d", p.OffloadPackets, offLat, p.ResponsePackets, p.AngleRecalcs)
		if dbg := res.PathDebug(); dbg != "" {
			t.Logf("offload stages: %s", dbg)
		}
		t.Logf("texTrafficKB=%d totalTrafficKB=%d", f.Traffic.TextureBytes()/1024, f.Traffic.Total()/1024)
		for name, cs := range f.Caches {
			t.Logf("cache %s: acc=%d hit=%.3f angleRej=%d", name, cs.Accesses, cs.HitRate(), cs.AngleRejects)
		}
	}
}
