package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

func TestCompressedOptionCutsTraffic(t *testing.T) {
	wl := workload.MustGet("wolf", 320, 240)
	raw, err := Run(wl, Options{Design: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(wl, Options{Design: config.Baseline, Compressed: true})
	if err != nil {
		t.Fatal(err)
	}
	if comp.TextureTraffic() >= raw.TextureTraffic()/2 {
		t.Fatalf("compression cut traffic %d -> %d, expected a large reduction",
			raw.TextureTraffic(), comp.TextureTraffic())
	}
	// Lossy but recognizable.
	if len(comp.Image) != len(raw.Image) {
		t.Fatal("image sizes differ")
	}
}

func TestCompressedRejectedForATFIM(t *testing.T) {
	wl := workload.MustGet("wolf", 320, 240)
	if _, err := Run(wl, Options{Design: config.ATFIM, Compressed: true}); err == nil {
		t.Fatal("compressed A-TFIM accepted; the design assumes raw texel storage")
	}
}

func TestMultiCubeOption(t *testing.T) {
	wl := workload.MustGet("wolf", 320, 240)
	one, err := Run(wl, Options{Design: config.ATFIM})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(wl, Options{Design: config.ATFIM, HMCCubes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two cubes must never be slower, and the functional image must be
	// identical (routing changes timing only).
	if two.Cycles() > one.Cycles() {
		t.Errorf("two cubes slower: %d vs %d", two.Cycles(), one.Cycles())
	}
	for i := range one.Image {
		if one.Image[i] != two.Image[i] {
			t.Fatalf("pixel %d differs between cube counts", i)
		}
	}
}

func TestLinearLayoutOption(t *testing.T) {
	wl := workload.MustGet("wolf", 320, 240)
	morton, err := Run(wl, Options{Design: config.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	linear, err := Run(wl, Options{Design: config.Baseline, LinearLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	// Morton tiling exists to improve 2D locality; linear must not beat it
	// on texture traffic.
	if linear.TextureTraffic() < morton.TextureTraffic() {
		t.Errorf("linear layout traffic %d below morton %d",
			linear.TextureTraffic(), morton.TextureTraffic())
	}
}

func TestMultiFrameAccumulates(t *testing.T) {
	wl := workload.MustGet("wolf", 320, 240)
	one, err := Run(wl, Options{Design: config.Baseline, Frames: 1})
	if err != nil {
		t.Fatal(err)
	}
	three, err := Run(wl, Options{Design: config.Baseline, Frames: 3})
	if err != nil {
		t.Fatal(err)
	}
	if three.Cycles() <= one.Cycles() {
		t.Fatalf("3 frames (%d cycles) not longer than 1 (%d)", three.Cycles(), one.Cycles())
	}
	if three.Frame.Activity.FragmentCount <= one.Frame.Activity.FragmentCount {
		t.Fatal("fragment counts did not accumulate")
	}
}

func TestFrameIndexSelectsCamera(t *testing.T) {
	wl := workload.MustGet("wolf", 320, 240)
	a, err := Run(wl, Options{Design: config.Baseline, FrameIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(wl, Options{Design: config.Baseline, FrameIndex: 6})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Image {
		if a.Image[i] == b.Image[i] {
			same++
		}
	}
	if same == len(a.Image) {
		t.Fatal("different frame indices rendered identical images")
	}
}
