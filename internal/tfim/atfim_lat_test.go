package tfim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/hmc"
	"repro/internal/texture"
)

// TestATFIMOffloadLatencyBounded drives the A-TFIM path directly with a
// stream of requests marching across a texture (every request missing) and
// checks that offload round trips stay bounded — i.e., no runaway queueing
// inside the cube model or the Parent Texel Buffer.
func TestATFIMOffloadLatencyBounded(t *testing.T) {
	cfg := config.Default(config.ATFIM)
	cube := hmc.New(hmc.DefaultConfig())
	path := NewATFIMPath(cfg, cube)

	tex := texture.NewTexture(0, "test", 1024, 1024, texture.LayoutMorton, texture.WrapRepeat)
	for y := 0; y < 1024; y++ {
		for x := 0; x < 1024; x++ {
			tex.SetTexel(0, x, y, texture.Gray(float32(x%7)/7))
		}
	}
	tex.BuildMipmaps()
	tex.AssignAddresses(0)

	const n = 20000
	now := int64(0)
	for i := 0; i < n; i++ {
		u := float32(i%1024) / 1024
		v := float32(i/64) / 1024
		req := gpu.TexRequest{
			Tex: tex, U: u, V: v,
			Foot:    texture.Footprint{Lod: 0.5, N: 4, AxisU: 4.0 / 1024, Angle: 0.3},
			Cluster: i % 16,
		}
		res := path.Sample(now, &req)
		if res.Done < now {
			t.Fatalf("request %d completed before issue", i)
		}
		now += 3 // arrival rate ~0.33/cycle
	}
	act := path.Activity()
	t.Logf("requests=%d offloads=%d meanLat=%.1f queue=%.1f mem=%.1f offLat=%.1f",
		act.TexRequests, act.OffloadPackets, act.MeanLatency(),
		float64(act.QueueCycles)/float64(act.TexRequests),
		float64(act.MemCycles)/float64(act.TexRequests),
		float64(act.OffloadLatencySum)/float64(act.OffloadPackets))
	if mean := act.MeanLatency(); mean > 500 {
		t.Errorf("mean latency %.1f looks unbounded", mean)
	}
}
