package tfim

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/texture"
)

// BaselinePath keeps the entire texture-filtering chain in the GPU texture
// units behind per-unit L1 caches and a shared L2, fetching missed lines
// from the memory backend. Used for both the Baseline design (GDDR5) and
// B-PIM (HMC as plain memory, Section III) — only the backend differs.
type BaselinePath struct {
	cfg     config.Config
	backend mem.Backend
	l1      []*cache.Cache
	l2      *cache.Cache
	units   []*unitTiming
	sampler texture.Sampler

	act     gpu.PathActivity
	traffic mem.Traffic

	trace     *obs.Tracer
	unitTrack []string

	// Per-request transient state used by the fetch callback.
	curUnit   int
	curIssue  int64
	curMaxMem int64
	curTexels int
}

// NewBaselinePath builds the on-chip filtering path over the given backend.
func NewBaselinePath(cfg config.Config, backend mem.Backend) *BaselinePath {
	b := &BaselinePath{cfg: cfg, backend: backend}
	nUnits := cfg.GPU.TextureUnits
	for i := 0; i < nUnits; i++ {
		b.l1 = append(b.l1, cache.New(cache.Config{
			Name:      "texL1",
			SizeBytes: cfg.GPU.TexL1KB * 1024,
			Ways:      cfg.GPU.TexL1Ways,
			LineBytes: mem.LineSize,
		}))
		b.units = append(b.units, newUnitTiming(cfg.GPU.MSHRs))
	}
	b.l2 = cache.New(cache.Config{
		Name:      "texL2",
		SizeBytes: cfg.GPU.TexL2KB * 1024,
		Ways:      cfg.GPU.TexL2Ways,
		LineBytes: mem.LineSize,
	})
	b.sampler = texture.Sampler{MaxAniso: cfg.GPU.MaxAniso, Fetch: b.fetchTexel}
	return b
}

// Name implements gpu.TexturePath.
func (b *BaselinePath) Name() string {
	if b.backend.Name() == "hmc" {
		return "b-pim"
	}
	return "baseline"
}

// SetTracer implements obs.TraceAttacher: texture-unit miss windows become
// spans on per-unit tracks.
func (b *BaselinePath) SetTracer(t *obs.Tracer) {
	b.trace = t
	b.unitTrack = unitTracks("texunit", len(b.units))
}

// fetchTexel is the sampler callback: it routes one texel read through the
// cache hierarchy, charging memory latency on misses.
func (b *BaselinePath) fetchTexel(t *texture.Texture, level, x, y int) texture.Color {
	b.curTexels++
	b.act.GPUTexelFetches++
	addr := t.TexelAddr(level, x, y)
	unit := b.curUnit
	b.act.L1Accesses++
	if r := b.l1[unit].Access(addr, false); r.Hit {
		if done := b.curIssue + l1HitLatency; done > b.curMaxMem {
			b.curMaxMem = done
		}
		return t.Texel(level, x, y)
	}
	b.act.L2Accesses++
	if r := b.l2.Access(addr, false); r.Hit {
		if done := b.curIssue + l2HitLatency; done > b.curMaxMem {
			b.curMaxMem = done
		}
		return t.Texel(level, x, y)
	}
	// L2 miss: fetch the line from memory.
	line := mem.LineAddr(addr)
	done := b.backend.Access(b.curIssue, mem.Request{
		Addr: line, Size: mem.LineSize, Class: mem.ClassTexture, Kind: mem.Read,
	})
	b.traffic.Record(mem.ClassTexture, mem.Read, mem.LineSize+mem.RequestOverheadBytes)
	if done > b.curMaxMem {
		b.curMaxMem = done
	}
	return t.Texel(level, x, y)
}

// Sample implements gpu.TexturePath: the conventional filter order of
// Fig. 7(A) — all child texels are fetched to the GPU.
func (b *BaselinePath) Sample(now int64, req *gpu.TexRequest) gpu.TexResult {
	unit := req.Cluster % len(b.units)
	u := b.units[unit]
	accepted, issue := u.admit2(now)

	b.curUnit = unit
	b.curIssue = issue
	b.curMaxMem = issue
	b.curTexels = 0

	color := b.sampler.SampleAniso(req.Tex, req.U, req.V, req.Foot)

	texels := b.curTexels
	addrCost := aluCost(texels, b.cfg.GPU.AddrALUs)
	filterCost := aluCost(texels, b.cfg.GPU.FilterALUs)
	b.act.GPUFilterOps += uint64(texels)
	occ := addrCost
	if filterCost > occ {
		occ = filterCost
	}
	pipeDone := issue + pipeBaseCycles + ceilI64(addrCost+filterCost)
	done := b.curMaxMem + ceilI64(filterCost)
	if pipeDone > done {
		done = pipeDone
	}
	missed := b.curMaxMem > issue+l2HitLatency
	u.retire(issue, occ, done, missed)
	if missed && b.trace.On() {
		// The miss window: from unit issue until the last texel line
		// arrived from memory.
		b.trace.SpanArg(b.unitTrack[unit], "miss", issue, b.curMaxMem,
			"texels", int64(texels))
	}

	b.act.TexRequests++
	b.act.QueueCycles += accepted - now
	if m := b.curMaxMem - issue; m > 0 {
		b.act.MemCycles += m
	}
	b.act.BusyCycles += occ + float64(issue-accepted)
	recordLatency(&b.act, accepted, done)
	return gpu.TexResult{Color: color, Done: done}
}

// EndFrame implements gpu.TexturePath (texture data is read-only; nothing
// to drain).
func (b *BaselinePath) EndFrame(now int64) int64 { return now }

// Activity implements gpu.TexturePath.
func (b *BaselinePath) Activity() gpu.PathActivity { return b.act }

// Traffic returns the texture traffic recorded so far.
func (b *BaselinePath) Traffic() *mem.Traffic { return &b.traffic }

// CacheStats implements gpu.TexturePath.
func (b *BaselinePath) CacheStats() map[string]cache.Stats {
	agg := cache.Stats{}
	for _, c := range b.l1 {
		s := c.Stats()
		agg.Accesses += s.Accesses
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Evictions += s.Evictions
	}
	return map[string]cache.Stats{"texL1": agg, "texL2": b.l2.Stats()}
}

// Reset implements gpu.TexturePath.
func (b *BaselinePath) Reset() {
	for _, c := range b.l1 {
		c.Reset()
	}
	b.l2.Reset()
	for _, u := range b.units {
		u.reset()
	}
	b.act = gpu.PathActivity{}
	b.traffic = mem.Traffic{}
}
