// Package tfim implements the paper's four texture-filtering architectures
// as gpu.TexturePath implementations:
//
//   - Baseline / B-PIM: the full filter chain (bilinear, trilinear,
//     anisotropic) runs in GPU texture units behind L1/L2 texture caches;
//     the two differ only in the memory backend (GDDR5 vs. HMC).
//   - S-TFIM (Section IV): every texture unit moves into the HMC logic
//     layer as a Memory Texture Unit (MTU); the GPU loses its texture
//     caches and exchanges request/response packages over the links.
//   - A-TFIM (Section V): anisotropic filtering moves into the HMC logic
//     layer AND is reordered to run first; the GPU fetches approximated
//     "parent texels" (cached with a per-line camera angle) and finishes
//     with bilinear + trilinear filtering on chip.
package tfim

import (
	"fmt"

	"repro/internal/gpu"
)

// unitTracks pre-formats per-unit trace track labels ("texunit00", ...)
// so tracing's hot path never calls fmt.
func unitTracks(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i)
	}
	return out
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// unitTiming tracks one texture unit's (or MTU's) pipeline occupancy and
// its bounded outstanding-miss window (MSHR-style latency hiding).
// Occupancy accumulates fractionally so sub-cycle throughput differences
// between designs (e.g. 8 vs. 14 texels on 16-lane address ALUs) are not
// erased by integer quantization.
type unitTiming struct {
	free float64
	ring []int64
	head int
}

func newUnitTiming(mshrs int) *unitTiming {
	if mshrs < 1 {
		mshrs = 1
	}
	return &unitTiming{ring: make([]int64, mshrs)}
}

// admit returns the issue cycle for a request arriving at `now`, honoring
// pipeline occupancy and the outstanding window.
func (u *unitTiming) admit(now int64) int64 {
	_, issue := u.admit2(now)
	return issue
}

// admit2 splits admission into its two delays: `accepted` is when the
// unit's pipeline takes the request (occupancy — shader-side congestion),
// and `issue` additionally waits for an outstanding-miss slot (memory
// back-pressure, which belongs to the texture-filtering latency metric).
func (u *unitTiming) admit2(now int64) (accepted, issue int64) {
	accepted = now
	if f := int64(u.free); f > accepted {
		accepted = f
	}
	issue = accepted
	if oldest := u.ring[u.head]; oldest > issue {
		issue = oldest
	}
	return accepted, issue
}

// retire records a request that issued at `issue` and occupies the
// pipeline for occ cycles (fractional). Only requests that went to memory
// (missed) consume an outstanding-miss slot; hits drain through the
// pipeline without holding an MSHR.
func (u *unitTiming) retire(issue int64, occ float64, done int64, missed bool) {
	u.free = float64(issue) + occ
	if missed {
		u.ring[u.head] = done
		u.head = (u.head + 1) % len(u.ring)
	}
}

func (u *unitTiming) reset() {
	u.free = 0
	u.head = 0
	for i := range u.ring {
		u.ring[i] = 0
	}
}

// bufferTiming models a fixed-capacity buffer shared by out-of-order
// producers (the Parent Texel Buffer): an admission may not start before
// the entry `capacity` admissions ago has drained. Unlike unitTiming it has
// no pipeline-occupancy ratchet, so producers with lagging timestamps are
// not serialized behind the global frontier.
type bufferTiming struct {
	ring []int64
	head int
}

func newBufferTiming(capacity int) *bufferTiming {
	if capacity < 1 {
		capacity = 1
	}
	return &bufferTiming{ring: make([]int64, capacity)}
}

// admit returns the start cycle for an entry arriving at now.
func (b *bufferTiming) admit(now int64) int64 {
	if r := b.ring[b.head]; r > now {
		return r
	}
	return now
}

// retire records the entry's drain time.
func (b *bufferTiming) retire(done int64) {
	b.ring[b.head] = done
	b.head = (b.head + 1) % len(b.ring)
}

func (b *bufferTiming) reset() {
	b.head = 0
	for i := range b.ring {
		b.ring[i] = 0
	}
}

// quadCoalesce is the request-coalescing factor of the texture front end:
// texture units operate on fragment quads/tiles (ATTILA texture requests
// cover a whole fragment tile), so package framing is shared by groups of
// four requests. The first request of each group pays the full package;
// the rest ride along.
const quadCoalesce = 4

// packageMeter amortizes package bytes across coalesced requests: every
// quadCoalesce-th call pays fullBytes, the others incrementBytes.
type packageMeter struct {
	count int
}

func (p *packageMeter) bytes(fullBytes, incrementBytes int) int {
	p.count++
	if (p.count-1)%quadCoalesce == 0 {
		return fullBytes
	}
	return incrementBytes
}

func (p *packageMeter) reset() { p.count = 0 }

// latency hit costs (GPU cycles) for the on-chip texture cache hierarchy.
const (
	l1HitLatency   = 4
	l2HitLatency   = 18
	pipeBaseCycles = 4
)

// ceilI64 rounds a fractional cycle cost up to whole cycles (latency
// additions stay integral; occupancy stays fractional).
func ceilI64(f float64) int64 {
	i := int64(f)
	if float64(i) < f {
		i++
	}
	return i
}

// aluCost returns the (fractional) cycles to process n scalar operations
// on `alus` simd4 ALUs (Table I's "simd4-scale" units: 4 ops per
// ALU-cycle).
func aluCost(n, alus int) float64 {
	if alus <= 0 {
		return float64(n)
	}
	return float64(n) / float64(alus*4)
}

// recordLatency accumulates the paper's texture-filtering latency metric:
// from when the texture machinery accepts the request to when the shader
// receives the final filtered texture. Shader-side admission queueing is
// reported separately (PathActivity.QueueCycles); for S-TFIM the request
// package leaves the shader immediately, so its latency includes the MTU
// queue and both link transits — exactly the cost Section IV identifies.
func recordLatency(act *gpu.PathActivity, accepted, done int64) {
	act.LatencySum += done - accepted
	act.LatencyCount++
}
