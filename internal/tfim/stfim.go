package tfim

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/hmc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/texture"
)

// STFIMPath implements the simple texture-filtering-in-memory design of
// Section IV: every texture unit becomes a Memory Texture Unit (MTU) in the
// HMC logic layer. The GPU keeps no texture caches; each texture request is
// packed into a package (texture coordinates, request ID, start cycle,
// shader ID — 4x the size of a normal read request) and sent over the
// transmit links; the MTU fetches texels through the cube's internal
// bandwidth, filters them, and returns the result package over the receive
// links. The live-texture package traffic is exactly what the paper found
// to erase S-TFIM's benefit.
type STFIMPath struct {
	cfg  config.Config
	cube hmc.Cube
	mtus []*unitTiming

	sampler texture.Sampler
	act     gpu.PathActivity
	traffic mem.Traffic
	upPkg   []packageMeter
	downPkg []packageMeter

	trace    *obs.Tracer
	mtuTrack []string

	// Per-request transient state.
	curArrive int64
	curMaxMem int64
	curTexels int
	// lineSeen consolidates per-request texel fetches into unique lines
	// (the MTU coalesces fetches belonging to one request).
	lineSeen map[uint64]int64
}

// NewSTFIMPath builds the S-TFIM path over the cube.
func NewSTFIMPath(cfg config.Config, cube hmc.Cube) *STFIMPath {
	s := &STFIMPath{cfg: cfg, cube: cube, lineSeen: make(map[uint64]int64, 64)}
	for i := 0; i < cfg.TFIM.MTUs; i++ {
		s.mtus = append(s.mtus, newUnitTiming(cfg.TFIM.RequestQueueEntries))
	}
	s.upPkg = make([]packageMeter, cfg.TFIM.MTUs)
	s.downPkg = make([]packageMeter, cfg.TFIM.MTUs)
	s.sampler = texture.Sampler{MaxAniso: cfg.GPU.MaxAniso, Fetch: s.fetchTexel}
	return s
}

// Name implements gpu.TexturePath.
func (s *STFIMPath) Name() string { return "s-tfim" }

// SetTracer implements obs.TraceAttacher: each MTU round trip (package
// out, in-memory filtering, package back) becomes one span.
func (s *STFIMPath) SetTracer(t *obs.Tracer) {
	s.trace = t
	s.mtuTrack = unitTracks("mtu", len(s.mtus))
}

// internalGranule is the logic-layer fetch granularity in bytes: 2x2 texel
// blocks, exploiting HMC's fine-grained access (the external path still
// moves whole 64-byte cache lines).
const internalGranule = 16

// fetchTexel routes one texel read through the cube's internal path at
// sub-line granularity. Texels in a granule already fetched for this
// request are coalesced.
func (s *STFIMPath) fetchTexel(t *texture.Texture, level, x, y int) texture.Color {
	s.curTexels++
	s.act.PIMTexelFetches++
	g := t.TexelAddr(level, x, y) &^ uint64(internalGranule-1)
	if done, ok := s.lineSeen[g]; ok {
		if done > s.curMaxMem {
			s.curMaxMem = done
		}
		s.act.ConsolidatedFetches++
		return t.Texel(level, x, y)
	}
	done := s.cube.InternalAccess(s.curArrive, mem.Request{
		Addr: g, Size: internalGranule, Class: mem.ClassTexture, Kind: mem.Read,
	})
	s.lineSeen[g] = done
	if done > s.curMaxMem {
		s.curMaxMem = done
	}
	return t.Texel(level, x, y)
}

// Sample implements gpu.TexturePath: package out, filter in memory,
// package back.
func (s *STFIMPath) Sample(now int64, req *gpu.TexRequest) gpu.TexResult {
	mtu := req.Cluster % len(s.mtus)
	u := s.mtus[mtu]

	// Request package: 4x a normal read request in total size (Section VI),
	// shared by a coalesced quad of requests.
	reqBytes := s.cfg.TFIM.OffloadPackageFactor * s.cube.Config().ReadRequestBytes
	reqPayload := reqBytes - s.cube.Config().PacketHeaderBytes
	if reqPayload < 0 {
		reqPayload = 0
	}
	routeAddr := req.Tex.Levels[0].Addr
	arrive := s.cube.SendPacketTo(now, routeAddr, reqPayload/quadCoalesce)
	s.traffic.Record(mem.ClassTexture, mem.Write, uint32(s.upPkg[mtu].bytes(reqBytes, reqBytes/quadCoalesce)))
	s.act.OffloadPackets++

	accepted, issue := u.admit2(arrive)
	s.curArrive = issue
	s.curMaxMem = issue
	s.curTexels = 0
	clear(s.lineSeen)

	color := s.sampler.SampleAniso(req.Tex, req.U, req.V, req.Foot)

	texels := s.curTexels
	addrCost := aluCost(texels, s.cfg.TFIM.MTUAddrALUs)
	filterCost := aluCost(texels, s.cfg.TFIM.MTUFilterALUs)
	s.act.PIMFilterOps += uint64(texels)
	occ := addrCost
	if filterCost > occ {
		occ = filterCost
	}
	pipeDone := issue + pipeBaseCycles + ceilI64(addrCost+filterCost)
	filtered := s.curMaxMem + ceilI64(filterCost)
	if pipeDone > filtered {
		filtered = pipeDone
	}
	u.retire(issue, occ, filtered, true)

	// Response package: the filtered texture (16 bytes of RGBA), framed
	// once per coalesced quad.
	respPayload := 16
	hdr := s.cube.Config().PacketHeaderBytes
	done := s.cube.ReturnPacketFrom(filtered, routeAddr, respPayload)
	s.traffic.Record(mem.ClassTexture, mem.Read, uint32(s.downPkg[mtu].bytes(respPayload+hdr, respPayload)))
	s.act.ResponsePackets++

	s.act.TexRequests++
	s.act.QueueCycles += accepted - arrive
	if m := s.curMaxMem - issue; m > 0 {
		s.act.MemCycles += m
	}
	// S-TFIM busy time includes the package transits: the MTU round trip
	// is the design's filtering process (Section IV).
	s.act.BusyCycles += occ + float64(issue-accepted) + float64(arrive-now) + float64(done-filtered)
	if s.trace.On() {
		s.trace.SpanArg(s.mtuTrack[mtu], "filter", arrive, filtered,
			"texels", int64(texels))
	}
	recordLatency(&s.act, now, done)
	return gpu.TexResult{Color: color, Done: done}
}

// EndFrame implements gpu.TexturePath.
func (s *STFIMPath) EndFrame(now int64) int64 { return now }

// Activity implements gpu.TexturePath.
func (s *STFIMPath) Activity() gpu.PathActivity { return s.act }

// Traffic returns the texture package traffic.
func (s *STFIMPath) Traffic() *mem.Traffic { return &s.traffic }

// CacheStats implements gpu.TexturePath (S-TFIM has no texture caches —
// that is precisely its problem).
func (s *STFIMPath) CacheStats() map[string]cache.Stats { return nil }

// Reset implements gpu.TexturePath.
func (s *STFIMPath) Reset() {
	for _, u := range s.mtus {
		u.reset()
	}
	for i := range s.upPkg {
		s.upPkg[i].reset()
		s.downPkg[i].reset()
	}
	s.act = gpu.PathActivity{}
	s.traffic = mem.Traffic{}
	clear(s.lineSeen)
}
