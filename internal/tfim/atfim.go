package tfim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/hmc"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/texture"
)

// ATFIMPath implements the advanced texture-filtering-in-memory design of
// Section V. The filtering sequence is reordered so anisotropic filtering
// runs first, inside the HMC logic layer:
//
//  1. The GPU texture unit computes the 8 "parent texel" addresses as if
//     anisotropic filtering were disabled and probes the texture caches.
//     Cache lines carry a camera angle; a hit whose stored angle differs
//     from the fragment's by more than the threshold is demoted to a miss
//     (recalculation, Section V-C).
//  2. Missing parent texels are packed by the Offloading Unit into one
//     package (4x a read request) and sent to the cube.
//  3. In the logic layer, the Texel Generator derives each parent's child
//     texels, the Child Texel Consolidation merges duplicate fetches, the
//     vaults serve them over internal bandwidth, and the Combination Unit
//     averages children into approximated parent texels (tracked through
//     the Parent Texel Buffer).
//  4. The parent texels return to the GPU, are cached with their camera
//     angle, and feed the on-chip bilinear + trilinear filters.
type ATFIMPath struct {
	cfg     config.Config
	cube    hmc.Cube
	l1      []*cache.Cache
	l2      *cache.Cache
	units   []*unitTiming
	sampler texture.Sampler

	act     gpu.PathActivity
	traffic mem.Traffic
	upPkg   []packageMeter
	downPkg []packageMeter

	// parentValues resolves parent coords to colors for the reordered
	// sampler; reused across requests to avoid allocation.
	parentValues map[texture.ParentCoord]texture.Color

	// ptb models Parent Texel Buffer back-pressure, banked by requesting
	// texture unit so one unit's burst does not block the others (the
	// paper sizes the PTB to match the memory request queue precisely so
	// it does not become a bottleneck).
	ptb []*bufferTiming

	// Offload stage-latency diagnostics (cycles summed per stage).
	dbgPTBWait, dbgLinkUp, dbgVault, dbgLinkDown int64

	trace        *obs.Tracer
	offloadTrack []string
}

// parentMiss records one parent texel that must be computed in memory,
// together with the cache slots its value will be stored into. fullLine
// marks compulsory/capacity misses, for which the composing stage computes
// and returns the whole 16-texel line; angle recalculations recompute only
// the requested parent texel (Section V-C: "re-fetch from the HMC so that
// the parent texel can be recalculated").
type parentMiss struct {
	coord    texture.ParentCoord
	l1Line   int
	l1Off    int
	l2Line   int
	l2Off    int
	fullLine bool
}

// NewATFIMPath builds the A-TFIM path over the cube.
func NewATFIMPath(cfg config.Config, cube hmc.Cube) *ATFIMPath {
	a := &ATFIMPath{
		cfg:          cfg,
		cube:         cube,
		parentValues: make(map[texture.ParentCoord]texture.Color, 16),
	}
	a.upPkg = make([]packageMeter, cfg.GPU.TextureUnits)
	a.downPkg = make([]packageMeter, cfg.GPU.TextureUnits)
	perUnit := cfg.TFIM.ParentTexelBufferEntries / cfg.GPU.TextureUnits * 2
	for i := 0; i < cfg.GPU.TextureUnits; i++ {
		a.ptb = append(a.ptb, newBufferTiming(perUnit))
		a.l1 = append(a.l1, cache.New(cache.Config{
			Name:      "texL1",
			SizeBytes: cfg.GPU.TexL1KB * 1024,
			Ways:      cfg.GPU.TexL1Ways,
			LineBytes: mem.LineSize,
			AngleTags: true,
			DataLines: true,
		}))
		a.units = append(a.units, newUnitTiming(cfg.GPU.MSHRs))
	}
	a.l2 = cache.New(cache.Config{
		Name:      "texL2",
		SizeBytes: cfg.GPU.TexL2KB * 1024,
		Ways:      cfg.GPU.TexL2Ways,
		LineBytes: mem.LineSize,
		AngleTags: true,
		DataLines: true,
	})
	a.sampler = texture.Sampler{MaxAniso: cfg.GPU.MaxAniso}
	return a
}

// Name implements gpu.TexturePath.
func (a *ATFIMPath) Name() string { return "a-tfim" }

// SetTracer implements obs.TraceAttacher: every offload package round trip
// (Offloading Unit -> Texel Generator -> vaults -> Combination Unit ->
// response) becomes one span on its texture unit's offload track.
func (a *ATFIMPath) SetTracer(t *obs.Tracer) {
	a.trace = t
	a.offloadTrack = unitTracks("offload", len(a.units))
}

// Sample implements gpu.TexturePath: the Fig. 7(B)/Fig. 9 walkthrough.
func (a *ATFIMPath) Sample(now int64, req *gpu.TexRequest) gpu.TexResult {
	unit := req.Cluster % len(a.units)
	u := a.units[unit]
	accepted, issue := u.admit2(now)
	thr := a.cfg.TFIM.AngleThreshold
	angle := req.Foot.Angle

	// 1. Parent texel addresses with anisotropic filtering disabled.
	parents := texture.ParentTexelCoords(req.Tex, req.U, req.V, req.Foot)
	a.act.ParentTexelsServed += uint64(len(parents))
	a.act.GPUTexelFetches += uint64(len(parents))

	clear(a.parentValues)
	var missing []parentMiss
	maxHitLat := int64(0)

	for _, pc := range parents {
		addr := req.Tex.TexelAddr(pc.Level, pc.X, pc.Y)
		off := int(addr % mem.LineSize)
		a.act.L1Accesses++
		r1 := a.l1[unit].AccessAngle(addr, false, angle, thr)
		if r1.AngleRejected {
			a.act.AngleRecalcs++
		}
		if r1.Hit && a.l1[unit].WordValid(r1.LineIndex, off) {
			a.parentValues[pc] = texture.Unpack(a.l1[unit].Word(r1.LineIndex, off))
			if l1HitLatency > maxHitLat {
				maxHitLat = l1HitLatency
			}
			continue
		}
		a.act.L2Accesses++
		r2 := a.l2.AccessAngle(addr, false, angle, thr)
		if r2.AngleRejected {
			a.act.AngleRecalcs++
		}
		if r2.Hit && a.l2.WordValid(r2.LineIndex, off) {
			c := texture.Unpack(a.l2.Word(r2.LineIndex, off))
			a.parentValues[pc] = c
			// Promote into L1.
			a.l1[unit].SetWord(r1.LineIndex, off, texture.Pack(c))
			if l2HitLatency > maxHitLat {
				maxHitLat = l2HitLatency
			}
			continue
		}
		missing = append(missing, parentMiss{
			coord: pc, l1Line: r1.LineIndex, l1Off: off,
			l2Line: r2.LineIndex, l2Off: off,
			// Recalculations refresh the whole line: the line carries one
			// camera angle (Section V-D), so all of its texels are
			// recomputed under the new angle together.
			fullLine: true,
		})
	}

	memDone := issue + maxHitLat
	if len(missing) > 0 {
		memDone = a.offload(issue, unit, req, missing)
		if hd := issue + maxHitLat; hd > memDone {
			memDone = hd
		}
	}

	// 4. On-chip bilinear + trilinear over the approximated parent texels.
	color := a.sampler.SampleAnisoReordered(req.Tex, req.U, req.V, req.Foot,
		func(_ *texture.Texture, level, x, y int, _ texture.Footprint) texture.Color {
			return a.parentValues[texture.ParentCoord{Level: level, X: x, Y: y}]
		})

	nParents := len(parents)
	addrCost := aluCost(nParents, a.cfg.GPU.AddrALUs)
	filterCost := aluCost(nParents, a.cfg.GPU.FilterALUs)
	a.act.GPUFilterOps += uint64(nParents)
	occ := addrCost
	if filterCost > occ {
		occ = filterCost
	}
	pipeDone := issue + pipeBaseCycles + ceilI64(addrCost+filterCost)
	done := memDone + ceilI64(filterCost)
	if pipeDone > done {
		done = pipeDone
	}
	u.retire(issue, occ, done, len(missing) > 0)

	a.act.TexRequests++
	a.act.QueueCycles += accepted - now
	if m := memDone - issue; m > 0 {
		a.act.MemCycles += m
	}
	a.act.BusyCycles += occ + float64(issue-accepted)
	recordLatency(&a.act, accepted, done)
	return gpu.TexResult{Color: color, Done: done}
}

// offload models steps 2-3 of the walkthrough: one Offloading Unit package
// carries the missing parent texels to the cube; the Texel Generator
// derives child texels; the Child Texel Consolidation merges duplicate
// fetches; the vaults serve the children internally; the Combination Unit
// averages children into parents. The composing stage groups results at
// normal-bilinear-fetch (cache line) granularity, so the whole 4x4 texel
// block of each missing line is computed and returned — one response line
// per missing line, filled into L1 and L2 with the request's camera angle.
// Returns the cycle the response reaches the GPU.
func (a *ATFIMPath) offload(now int64, unit int, req *gpu.TexRequest, missing []parentMiss) int64 {
	cubeCfg := a.cube.Config()

	// Parent Texel Buffer back-pressure.
	ptb := a.ptb[unit%len(a.ptb)]
	start := ptb.admit(now)

	// Offload package: 4x a normal read request in total size regardless
	// of parent count — the Offloading Unit's hash table packs parents as
	// offsets to the first parent's address (Section V-D) and coalesces
	// the offloads of a fragment quad into one framed package.
	reqBytes := a.cfg.TFIM.OffloadPackageFactor * cubeCfg.ReadRequestBytes
	reqPayload := reqBytes - cubeCfg.PacketHeaderBytes
	if reqPayload < 0 {
		reqPayload = 0
	}
	routeAddr := req.Tex.TexelAddr(missing[0].coord.Level, missing[0].coord.X, missing[0].coord.Y)
	arrive := a.cube.SendPacketTo(start, routeAddr, reqPayload/quadCoalesce)
	a.traffic.Record(mem.ClassTexture, mem.Write, uint32(a.upPkg[unit].bytes(reqBytes, reqBytes/quadCoalesce)))
	a.act.OffloadPackets++

	foot := req.Foot
	tex := req.Tex

	// Group compulsory misses by their containing memory line — each
	// unique line is computed once, in full (the composing stage returns
	// whole bilinear-fetch-shaped blocks). Angle recalculations recompute
	// only their single parent texel.
	type lineJob struct {
		level  int
		texels []texture.LineTexel
		l1Line int
		l2Line int
	}
	jobs := make(map[uint64]*lineJob, len(missing))
	order := make([]uint64, 0, len(missing))
	var singles []parentMiss
	for _, m := range missing {
		if !m.fullLine {
			singles = append(singles, m)
			continue
		}
		lineAddr, texels := tex.LineTexels(m.coord.Level, m.coord.X, m.coord.Y)
		if _, ok := jobs[lineAddr]; ok {
			// Same cache line; indices agree.
			continue
		}
		jobs[lineAddr] = &lineJob{level: m.coord.Level, texels: texels, l1Line: m.l1Line, l2Line: m.l2Line}
		order = append(order, lineAddr)
	}

	// Texel Generator: one address computation per child texel.
	children := len(singles) * foot.N
	for _, la := range order {
		children += len(jobs[la].texels) * foot.N
	}
	genCost := ceilI64(aluCost(children, a.cfg.TFIM.TexelGenALUs))

	// Child Texel Consolidation + vault fetches over internal bandwidth,
	// at the fine internal granularity (2x2 texel blocks).
	granuleSeen := make(map[uint64]int64, 16)
	maxMem := arrive + genCost
	fetch := func(t *texture.Texture, level, x, y int) texture.Color {
		a.act.PIMTexelFetches++
		g := t.TexelAddr(level, x, y) &^ uint64(internalGranule-1)
		if a.cfg.TFIM.Consolidate {
			if done, ok := granuleSeen[g]; ok {
				a.act.ConsolidatedFetches++
				if done > maxMem {
					maxMem = done
				}
				return t.Texel(level, x, y)
			}
		}
		done := a.cube.InternalAccess(arrive+genCost, mem.Request{
			Addr: g, Size: internalGranule, Class: mem.ClassTexture, Kind: mem.Read,
		})
		if a.cfg.TFIM.Consolidate {
			granuleSeen[g] = done
		}
		if done > maxMem {
			maxMem = done
		}
		return t.Texel(level, x, y)
	}

	// Combination Unit: average children into every parent texel of each
	// missing line, then write the line into the GPU texture caches.
	for _, la := range order {
		j := jobs[la]
		for _, lt := range j.texels {
			c := texture.AverageChildren(tex, j.level, lt.X, lt.Y, foot, fetch)
			packed := texture.Pack(c)
			a.l1[unit].SetWord(j.l1Line, lt.Off, packed)
			a.l2.SetWord(j.l2Line, lt.Off, packed)
		}
	}
	// Recalculated single parents (angle mismatches).
	for _, m := range singles {
		c := texture.AverageChildren(tex, m.coord.Level, m.coord.X, m.coord.Y, foot, fetch)
		packed := texture.Pack(c)
		a.l1[unit].SetWord(m.l1Line, m.l1Off, packed)
		a.l2.SetWord(m.l2Line, m.l2Off, packed)
	}
	combCost := ceilI64(aluCost(children, a.cfg.TFIM.CombineALUs))
	a.act.PIMFilterOps += uint64(children)

	// Resolve the requested parents' values from the freshly filled lines.
	for _, m := range missing {
		a.parentValues[m.coord] = texture.Unpack(a.l1[unit].Word(m.l1Line, m.l1Off))
	}

	filtered := maxMem + combCost

	// Response: one line-sized payload per computed line plus one texel
	// per recalculated parent (grouped by the composing stage to look
	// like normal bilinear fetch results), framed once per coalesced quad.
	respPayload := len(order)*mem.LineSize + len(singles)*4
	done := a.cube.ReturnPacketFrom(filtered, routeAddr, respPayload)
	a.traffic.Record(mem.ClassTexture, mem.Read,
		uint32(a.downPkg[unit].bytes(respPayload+cubeCfg.PacketHeaderBytes, respPayload)))
	a.act.ResponsePackets++

	ptb.retire(done)
	if a.trace.On() {
		a.trace.SpanArg(a.offloadTrack[unit], "offload", start, done,
			"parents", int64(len(missing)))
	}
	a.act.OffloadLatencySum += done - now
	a.dbgPTBWait += start - now
	a.dbgLinkUp += arrive - start
	a.dbgVault += filtered - arrive
	a.dbgLinkDown += done - filtered
	return done
}

// EndFrame implements gpu.TexturePath.
func (a *ATFIMPath) EndFrame(now int64) int64 { return now }

// DebugString reports per-stage mean offload latencies (diagnostics).
func (a *ATFIMPath) DebugString() string {
	n := a.act.OffloadPackets
	if n == 0 {
		return ""
	}
	f := float64(n)
	return fmt.Sprintf("ptbWait=%.1f linkUp=%.1f vault=%.1f linkDown=%.1f",
		float64(a.dbgPTBWait)/f, float64(a.dbgLinkUp)/f,
		float64(a.dbgVault)/f, float64(a.dbgLinkDown)/f)
}

// Activity implements gpu.TexturePath.
func (a *ATFIMPath) Activity() gpu.PathActivity { return a.act }

// Traffic returns the parent-texel package traffic.
func (a *ATFIMPath) Traffic() *mem.Traffic { return &a.traffic }

// CacheStats implements gpu.TexturePath.
func (a *ATFIMPath) CacheStats() map[string]cache.Stats {
	agg := cache.Stats{}
	for _, c := range a.l1 {
		s := c.Stats()
		agg.Accesses += s.Accesses
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Evictions += s.Evictions
		agg.AngleRejects += s.AngleRejects
	}
	return map[string]cache.Stats{"texL1": agg, "texL2": a.l2.Stats()}
}

// Reset implements gpu.TexturePath.
func (a *ATFIMPath) Reset() {
	for _, c := range a.l1 {
		c.Reset()
	}
	a.l2.Reset()
	for _, u := range a.units {
		u.reset()
	}
	for _, p := range a.ptb {
		p.reset()
	}
	for i := range a.upPkg {
		a.upPkg[i].reset()
		a.downPkg[i].reset()
	}
	a.act = gpu.PathActivity{}
	a.traffic = mem.Traffic{}
	clear(a.parentValues)
}
