package tfim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/gpu"
	"repro/internal/hmc"
	"repro/internal/texture"
	"repro/internal/xrand"
)

// pathTexture builds a deterministic texture with addresses assigned.
func pathTexture(size int) *texture.Texture {
	tx := texture.NewTexture(0, "t", size, size, texture.LayoutMorton, texture.WrapRepeat)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := xrand.Hash2D(0xabc, int32(x), int32(y))
			tx.SetTexel(0, x, y, texture.Color{R: v, G: 1 - v, B: 0.5, A: 1})
		}
	}
	tx.BuildMipmaps()
	tx.AssignAddresses(0)
	return tx
}

func request(tx *texture.Texture, u, v float32, n int, angle float32) gpu.TexRequest {
	return gpu.TexRequest{
		Tex: tx, U: u, V: v,
		Foot: texture.Footprint{
			Lod: 0.7, N: n, AxisU: float32(n) / float32(tx.Levels[0].W), Angle: angle,
		},
	}
}

func colorsCloseT(a, b texture.Color, eps float32) bool {
	abs := func(x float32) float32 {
		if x < 0 {
			return -x
		}
		return x
	}
	return abs(a.R-b.R) <= eps && abs(a.G-b.G) <= eps && abs(a.B-b.B) <= eps && abs(a.A-b.A) <= eps
}

// refColor computes the reference filtered color with a plain sampler.
func refColor(tx *texture.Texture, req *gpu.TexRequest) texture.Color {
	s := texture.Sampler{MaxAniso: 16}
	return s.SampleAniso(tx, req.U, req.V, req.Foot)
}

func TestBaselinePathFunctionalCorrectness(t *testing.T) {
	cfg := config.Default(config.Baseline)
	b := NewBaselinePath(cfg, dram.New(dram.DefaultConfig()))
	tx := pathTexture(64)
	rng := xrand.New(4)
	for i := 0; i < 300; i++ {
		req := request(tx, rng.Float32(), rng.Float32(), 1+rng.Intn(8), 0.2)
		res := b.Sample(int64(i*3), &req)
		if want := refColor(tx, &req); !colorsCloseT(res.Color, want, 1e-5) {
			t.Fatalf("baseline color diverges at %d: %+v want %+v", i, res.Color, want)
		}
	}
	act := b.Activity()
	if act.TexRequests != 300 || act.GPUTexelFetches == 0 {
		t.Fatalf("activity wrong: %+v", act)
	}
}

func TestBaselineVsBPIMNames(t *testing.T) {
	cfg := config.Default(config.Baseline)
	if NewBaselinePath(cfg, dram.New(dram.DefaultConfig())).Name() != "baseline" {
		t.Error("baseline name")
	}
	if NewBaselinePath(config.Default(config.BPIM), hmc.New(hmc.DefaultConfig())).Name() != "b-pim" {
		t.Error("b-pim name")
	}
}

func TestSTFIMFunctionalCorrectness(t *testing.T) {
	// S-TFIM computes the same filtering math as the baseline — only the
	// location changes — so its colors must match exactly.
	cfg := config.Default(config.STFIM)
	s := NewSTFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)
	rng := xrand.New(5)
	for i := 0; i < 300; i++ {
		req := gpu.TexRequest{Tex: tx, U: rng.Float32(), V: rng.Float32(),
			Foot: texture.Footprint{Lod: 1.2, N: 1 + rng.Intn(8), AxisU: 0.05}}
		res := s.Sample(int64(i*3), &req)
		if want := refColor(tx, &req); !colorsCloseT(res.Color, want, 1e-5) {
			t.Fatalf("s-tfim color diverges at %d", i)
		}
	}
	act := s.Activity()
	if act.OffloadPackets != 300 || act.ResponsePackets != 300 {
		t.Fatalf("package counts wrong: %+v", act)
	}
	if act.PIMTexelFetches == 0 || act.GPUTexelFetches != 0 {
		t.Fatal("S-TFIM must fetch texels in memory, not on the GPU")
	}
}

func TestSTFIMTrafficExceedsDataMoved(t *testing.T) {
	// The live-texture packages are the point of Section IV: request +
	// response bytes per texture request dwarf a baseline cache fill.
	cfg := config.Default(config.STFIM)
	s := NewSTFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)
	req := request(tx, 0.3, 0.3, 4, 0)
	for i := 0; i < 100; i++ {
		s.Sample(int64(i*5), &req)
	}
	perRequest := float64(s.Traffic().Total()) / 100
	if perRequest < 30 {
		t.Fatalf("S-TFIM package traffic %.1f B/request implausibly low", perRequest)
	}
}

func TestATFIMMatchesReorderedReference(t *testing.T) {
	// With a fresh cache and consistent angles, A-TFIM's output equals
	// the reordered sampler over exact child averages, which in turn
	// matches the conventional order (Eq. 3) up to RGBA8 quantization of
	// the cached parent texels.
	cfg := config.Default(config.ATFIM)
	a := NewATFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)
	rng := xrand.New(6)
	// Fixed footprint shape across requests: cached parent texels are then
	// exact for every consumer (varying footprints under one camera angle
	// are the design's deliberate approximation, tested separately).
	for i := 0; i < 300; i++ {
		req := request(tx, rng.Float32(), rng.Float32(), 4, 0.3)
		res := a.Sample(int64(i*4), &req)
		want := refColor(tx, &req)
		// Parent texels cross the cache as RGBA8: allow quantization.
		if !colorsCloseT(res.Color, want, 2.5/255) {
			t.Fatalf("a-tfim color diverges at %d: %+v want %+v", i, res.Color, want)
		}
	}
	act := a.Activity()
	if act.GPUTexelFetches != 300*8 {
		t.Fatalf("A-TFIM fetched %d parent texels, want %d (8 per request)",
			act.GPUTexelFetches, 300*8)
	}
}

func TestATFIMCacheReuseReducesOffloads(t *testing.T) {
	cfg := config.Default(config.ATFIM)
	a := NewATFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)
	req := request(tx, 0.5, 0.5, 4, 0.3)
	a.Sample(0, &req)
	first := a.Activity().OffloadPackets
	for i := 0; i < 50; i++ {
		a.Sample(int64(100+i*4), &req)
	}
	if got := a.Activity().OffloadPackets; got != first {
		t.Fatalf("repeated identical request re-offloaded: %d -> %d", first, got)
	}
}

func TestATFIMAngleThresholdForcesRecalc(t *testing.T) {
	cfg := config.Default(config.ATFIM)
	cfg.TFIM.AngleThreshold = 0.01
	a := NewATFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)

	req := request(tx, 0.5, 0.5, 4, 0.30)
	a.Sample(0, &req)
	base := a.Activity()

	// Same address, angle within threshold: reuse.
	req2 := request(tx, 0.5, 0.5, 4, 0.305)
	a.Sample(100, &req2)
	if got := a.Activity(); got.AngleRecalcs != base.AngleRecalcs {
		t.Fatalf("within-threshold angle triggered recalcs")
	}

	// Beyond threshold: recalculation.
	req3 := request(tx, 0.5, 0.5, 4, 0.50)
	a.Sample(200, &req3)
	if got := a.Activity(); got.AngleRecalcs == base.AngleRecalcs {
		t.Fatal("beyond-threshold angle did not recalculate")
	}
}

// TestATFIMStaleAngleIsApproximate shows the quality mechanism of Figs
// 14-16: with a loose threshold, a parent texel computed under one camera
// angle is reused for a fragment whose correct footprint axis differs,
// producing a (bounded) color error.
func TestATFIMStaleAngleIsApproximate(t *testing.T) {
	cfg := config.Default(config.ATFIM)
	cfg.TFIM.AngleThreshold = 3.14 // no recalculation
	a := NewATFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)

	// Prime the cache with a horizontal anisotropy axis.
	prime := request(tx, 0.5, 0.5, 8, 0.2)
	a.Sample(0, &prime)

	// Request the same parents with a vertical axis: the correct answer
	// differs, but the stale cached parents are reused.
	crossFoot := texture.Footprint{Lod: 0.7, N: 8, AxisV: 8.0 / 64, Angle: 1.2}
	cross := gpu.TexRequest{Tex: tx, U: 0.5, V: 0.5, Foot: crossFoot}
	res := a.Sample(100, &cross)
	want := refColor(tx, &cross)
	if colorsCloseT(res.Color, want, 1.0/255) {
		t.Log("note: stale reuse happened to match the correct color here")
	}
	if a.Activity().AngleRecalcs != 0 {
		t.Fatal("no-recalc threshold still recalculated")
	}
	// Sanity: the approximate result is still a valid color.
	if res.Color.A < 0.99 {
		t.Fatalf("approximated color corrupted: %+v", res.Color)
	}
}

func TestATFIMConsolidationCountsMerges(t *testing.T) {
	cfg := config.Default(config.ATFIM)
	a := NewATFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)
	req := request(tx, 0.37, 0.41, 8, 0.3)
	a.Sample(0, &req)
	act := a.Activity()
	if act.ConsolidatedFetches == 0 {
		t.Fatal("child texel consolidation merged nothing for an 8x footprint")
	}
	if act.PIMTexelFetches <= act.ConsolidatedFetches {
		t.Fatal("consolidated more fetches than issued")
	}
}

func TestATFIMConsolidationDisabled(t *testing.T) {
	cfg := config.Default(config.ATFIM)
	cfg.TFIM.Consolidate = false
	a := NewATFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)
	req := request(tx, 0.37, 0.41, 8, 0.3)
	a.Sample(0, &req)
	if a.Activity().ConsolidatedFetches != 0 {
		t.Fatal("disabled consolidation still merged fetches")
	}
}

func TestPathResets(t *testing.T) {
	cfg := config.Default(config.ATFIM)
	a := NewATFIMPath(cfg, hmc.New(hmc.DefaultConfig()))
	tx := pathTexture(64)
	req := request(tx, 0.5, 0.5, 4, 0.3)
	a.Sample(0, &req)
	a.Reset()
	if a.Activity().TexRequests != 0 || a.Traffic().Total() != 0 {
		t.Fatal("reset did not clear activity/traffic")
	}
	if len(a.CacheStats()) == 0 {
		t.Fatal("cache stats missing")
	}
}

func TestUnitTimingWindow(t *testing.T) {
	u := newUnitTiming(2)
	// Two outstanding misses fill the window; the third must wait for the
	// first to complete.
	a, i1 := u.admit2(0)
	if a != 0 || i1 != 0 {
		t.Fatal("first admit should be immediate")
	}
	u.retire(0, 1, 100, true)
	_, i2 := u.admit2(1)
	if i2 != 1 {
		t.Fatalf("second admit at %d want 1", i2)
	}
	u.retire(i2, 1, 200, true)
	_, i3 := u.admit2(2)
	if i3 != 100 {
		t.Fatalf("third admit at %d, want 100 (oldest outstanding miss)", i3)
	}
}

func TestBufferTimingCapacity(t *testing.T) {
	b := newBufferTiming(2)
	if b.admit(5) != 5 {
		t.Fatal("empty buffer delayed admission")
	}
	b.retire(50)
	b.retire(60)
	// Third admission waits for the oldest (50).
	if got := b.admit(10); got != 50 {
		t.Fatalf("admit %d want 50", got)
	}
}

func TestPackageMeterQuadCoalescing(t *testing.T) {
	var m packageMeter
	total := 0
	for i := 0; i < 8; i++ {
		total += m.bytes(64, 16)
	}
	// Two full packages + six increments.
	if total != 2*64+6*16 {
		t.Fatalf("coalesced bytes %d want %d", total, 2*64+6*16)
	}
}
