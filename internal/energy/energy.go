// Package energy estimates whole-GPU energy per frame in the spirit of the
// paper's McPAT-based methodology (Section VI): per-event dynamic energies
// for shader ALUs, caches, texture/filtering units and the PIM logic, link
// energy at 5 pJ/bit and DRAM access energy at 4 pJ/bit (the paper's
// constants), a GDDR5 interface premium, and a 10% leakage uplift plus
// clock-scaled background power so that faster frames also save static
// energy.
package energy

import (
	"repro/internal/gpu"
)

// Model holds the per-event energy constants. Values are picojoules unless
// noted. Defaults are calibrated for a 28 nm-class GPU; the figures only
// use ratios between designs.
type Model struct {
	// ShaderInstrPJ is the energy of one shader ISA instruction on a
	// simd4 ALU.
	ShaderInstrPJ float64
	// TexelFetchPJ is a GPU texture-unit texel fetch (address + read).
	TexelFetchPJ float64
	// FilterOpPJ is one filtering ALU operation (GPU or logic layer).
	FilterOpPJ float64
	// L1AccessPJ / L2AccessPJ are texture cache access energies.
	L1AccessPJ, L2AccessPJ float64
	// ROPAccessPJ is a Z/color cache access.
	ROPAccessPJ float64
	// LinkPJPerBit is the serial link energy (5 pJ/bit per the paper).
	LinkPJPerBit float64
	// DRAMPJPerBit is the DRAM access energy for data crossing the device
	// boundary (4 pJ/bit per the paper).
	DRAMPJPerBit float64
	// InternalPJPerBit is the energy of vault-internal accesses: array +
	// TSV only, with no SerDes or board I/O — the reason near-data
	// processing saves energy per bit moved.
	InternalPJPerBit float64
	// GDDR5InterfacePJPerBit is the extra per-bit cost of the long GDDR5
	// board traces vs. TSVs (why HMC is more efficient, Section VII-C).
	GDDR5InterfacePJPerBit float64
	// PIMLogicPJ is one logic-layer ALU op (MTU / Texel Generator /
	// Combination Unit); slightly cheaper than the GPU's due to locality.
	PIMLogicPJ float64
	// BackgroundWatts is the chip's static + clocking power; multiplied by
	// frame time so performance improvements save energy.
	BackgroundWatts float64
	// LeakageFraction is added on top of dynamic energy (10% per the
	// paper's methodology).
	LeakageFraction float64
	// ClockGHz converts cycles to seconds.
	ClockGHz float64
}

// DefaultModel returns the calibrated constants.
func DefaultModel() Model {
	return Model{
		ShaderInstrPJ:          12,
		TexelFetchPJ:           6,
		FilterOpPJ:             8,
		L1AccessPJ:             4,
		L2AccessPJ:             10,
		ROPAccessPJ:            6,
		LinkPJPerBit:           5,
		DRAMPJPerBit:           4,
		InternalPJPerBit:       1.2,
		GDDR5InterfacePJPerBit: 8,
		PIMLogicPJ:             6,
		BackgroundWatts:        18,
		LeakageFraction:        0.10,
		ClockGHz:               1.0,
	}
}

// Breakdown is the per-component energy of one frame, in joules.
type Breakdown struct {
	Shader     float64
	TextureGPU float64
	Caches     float64
	ROP        float64
	Links      float64
	DRAM       float64
	PIMLogic   float64
	Background float64
	Leakage    float64
}

// Total returns the frame's total energy in joules.
func (b Breakdown) Total() float64 {
	return b.Shader + b.TextureGPU + b.Caches + b.ROP + b.Links + b.DRAM +
		b.PIMLogic + b.Background + b.Leakage
}

// Estimate computes the energy breakdown of a frame. usesHMC selects link
// energy vs. the GDDR5 interface premium for external bytes.
func (m Model) Estimate(res *gpu.FrameResult, usesHMC bool) Breakdown {
	a := res.Activity
	p := a.Path
	var b Breakdown

	b.Shader = float64(a.ShaderInstrs) * m.ShaderInstrPJ
	b.TextureGPU = float64(p.GPUTexelFetches)*m.TexelFetchPJ +
		float64(p.GPUFilterOps)*m.FilterOpPJ
	b.Caches = float64(p.L1Accesses)*m.L1AccessPJ + float64(p.L2Accesses)*m.L2AccessPJ
	b.ROP = float64(a.ZAccesses+a.ColorAccesses) * m.ROPAccessPJ
	b.PIMLogic = float64(p.PIMFilterOps)*m.PIMLogicPJ + float64(p.PIMTexelFetches)*m.PIMLogicPJ*0.5

	extBits := float64(a.ExternalBytes) * 8
	intBits := float64(a.InternalBytes) * 8
	if usesHMC {
		b.Links = extBits * m.LinkPJPerBit
		b.DRAM = extBits*m.DRAMPJPerBit + intBits*m.InternalPJPerBit
	} else {
		b.Links = extBits * m.GDDR5InterfacePJPerBit
		b.DRAM = extBits * m.DRAMPJPerBit
	}

	seconds := float64(res.Cycles) / (m.ClockGHz * 1e9)
	b.Background = m.BackgroundWatts * seconds

	dynamic := b.Shader + b.TextureGPU + b.Caches + b.ROP + b.Links + b.DRAM + b.PIMLogic
	b.Leakage = dynamic * m.LeakageFraction
	// Convert picojoules to joules for the dynamic terms.
	b.Shader *= 1e-12
	b.TextureGPU *= 1e-12
	b.Caches *= 1e-12
	b.ROP *= 1e-12
	b.Links *= 1e-12
	b.DRAM *= 1e-12
	b.PIMLogic *= 1e-12
	b.Leakage *= 1e-12
	return b
}

// AveragePower returns the frame's mean power draw in watts.
func (m Model) AveragePower(res *gpu.FrameResult, usesHMC bool) float64 {
	seconds := float64(res.Cycles) / (m.ClockGHz * 1e9)
	if seconds == 0 {
		return 0
	}
	return m.Estimate(res, usesHMC).Total() / seconds
}
