package energy

import (
	"testing"

	"repro/internal/gpu"
)

func sampleFrame() *gpu.FrameResult {
	res := &gpu.FrameResult{Cycles: 100000}
	res.Activity = gpu.Activity{
		ShaderInstrs:  1_000_000,
		ZAccesses:     100_000,
		ColorAccesses: 100_000,
		ExternalBytes: 10 << 20,
		InternalBytes: 5 << 20,
		Cycles:        100000,
	}
	res.Activity.Path = gpu.PathActivity{
		GPUTexelFetches: 2_000_000,
		GPUFilterOps:    2_000_000,
		L1Accesses:      2_000_000,
		L2Accesses:      100_000,
	}
	return res
}

func TestEstimatePositiveComponents(t *testing.T) {
	m := DefaultModel()
	b := m.Estimate(sampleFrame(), false)
	if b.Total() <= 0 {
		t.Fatal("total energy not positive")
	}
	for name, v := range map[string]float64{
		"shader": b.Shader, "textureGPU": b.TextureGPU, "caches": b.Caches,
		"rop": b.ROP, "dram": b.DRAM, "background": b.Background, "leakage": b.Leakage,
	} {
		if v < 0 {
			t.Errorf("%s energy negative: %g", name, v)
		}
		if v > b.Total() {
			t.Errorf("%s energy exceeds total", name)
		}
	}
}

func TestGDDR5InterfaceCostsMoreThanLinks(t *testing.T) {
	m := DefaultModel()
	f := sampleFrame()
	gddr := m.Estimate(f, false)
	hmc := m.Estimate(f, true)
	// Same external bytes: GDDR5's long board traces must cost more per
	// bit than HMC links (the paper's Section VII-C finding that HMC is
	// more energy efficient).
	if gddr.Links <= hmc.Links {
		t.Fatalf("GDDR5 interface %.3e <= HMC links %.3e", gddr.Links, hmc.Links)
	}
}

func TestLeakageIsTenPercentOfDynamic(t *testing.T) {
	m := DefaultModel()
	b := m.Estimate(sampleFrame(), false)
	dynamic := b.Shader + b.TextureGPU + b.Caches + b.ROP + b.Links + b.DRAM + b.PIMLogic
	ratio := b.Leakage / dynamic
	if ratio < 0.099 || ratio > 0.101 {
		t.Fatalf("leakage fraction %.4f want 0.10", ratio)
	}
}

func TestFasterFrameSavesBackgroundEnergy(t *testing.T) {
	m := DefaultModel()
	slow := sampleFrame()
	fast := sampleFrame()
	fast.Cycles = slow.Cycles / 2
	bs := m.Estimate(slow, true)
	bf := m.Estimate(fast, true)
	if bf.Background >= bs.Background {
		t.Fatal("halving frame time did not halve background energy")
	}
	if bf.Total() >= bs.Total() {
		t.Fatal("faster frame not cheaper overall at equal activity")
	}
}

func TestAveragePower(t *testing.T) {
	m := DefaultModel()
	f := sampleFrame()
	p := m.AveragePower(f, true)
	if p <= 0 || p > 1000 {
		t.Fatalf("average power %g W implausible", p)
	}
	zero := &gpu.FrameResult{}
	if m.AveragePower(zero, true) != 0 {
		t.Fatal("zero-cycle frame should report zero power")
	}
}

func TestPIMLogicCharged(t *testing.T) {
	m := DefaultModel()
	f := sampleFrame()
	f.Activity.Path.PIMFilterOps = 1_000_000
	f.Activity.Path.PIMTexelFetches = 1_000_000
	b := m.Estimate(f, true)
	if b.PIMLogic <= 0 {
		t.Fatal("PIM logic activity not charged")
	}
}
