package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scene"
	"repro/internal/texture"
	"repro/internal/workload"
)

func captureScene(t *testing.T) (*scene.Scene, Header) {
	t.Helper()
	wl := workload.MustGet("riddick", 320, 240)
	sc := wl.Scene()
	return sc, Header{Name: wl.Name(), Width: wl.Width, Height: wl.Height}
}

func TestRoundTrip(t *testing.T) {
	sc, hdr := captureScene(t)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, sc, sc.TextureSpecs); err != nil {
		t.Fatal(err)
	}
	rhdr, rsc, err := Read(&buf, texture.LayoutMorton)
	if err != nil {
		t.Fatal(err)
	}
	if rhdr != hdr {
		t.Fatalf("header %+v want %+v", rhdr, hdr)
	}
	if len(rsc.Mesh.Vertices) != len(sc.Mesh.Vertices) {
		t.Fatalf("vertices %d want %d", len(rsc.Mesh.Vertices), len(sc.Mesh.Vertices))
	}
	for i := range sc.Mesh.Vertices {
		if rsc.Mesh.Vertices[i] != sc.Mesh.Vertices[i] {
			t.Fatalf("vertex %d differs", i)
		}
	}
	for i := range sc.Mesh.Triangles {
		if rsc.Mesh.Triangles[i] != sc.Mesh.Triangles[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
	for i := range sc.Cameras {
		if rsc.Cameras[i] != sc.Cameras[i] {
			t.Fatalf("camera %d differs", i)
		}
	}
	if rsc.Ambient != sc.Ambient || rsc.LightDir != sc.LightDir {
		t.Fatal("lighting differs")
	}
	// Textures must re-synthesize bit-identically from their recipes.
	for ti := range sc.Textures {
		a := sc.Textures[ti].Levels[0].Pix
		b := rsc.Textures[ti].Levels[0].Pix
		for pi := range a {
			if a[pi] != b[pi] {
				t.Fatalf("texture %d texel %d differs after replay", ti, pi)
			}
		}
	}
}

func TestSpecCountMismatch(t *testing.T) {
	sc, hdr := captureScene(t)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, sc, sc.TextureSpecs[:1]); err == nil {
		t.Fatal("mismatched spec count accepted")
	}
}

func TestBadMagic(t *testing.T) {
	_, _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), texture.LayoutMorton)
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
}

func TestTruncatedFile(t *testing.T) {
	sc, hdr := captureScene(t)
	var buf bytes.Buffer
	if err := Write(&buf, hdr, sc, sc.TextureSpecs); err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{2, 4, 10} {
		data := buf.Bytes()[:buf.Len()/frac]
		if _, _, err := Read(bytes.NewReader(data), texture.LayoutMorton); err == nil {
			t.Fatalf("truncated trace (1/%d) accepted", frac)
		}
	}
}

func TestCorruptIndicesRejected(t *testing.T) {
	sc, hdr := captureScene(t)
	// Corrupt a triangle index beyond the vertex count.
	sc2 := *sc
	sc2.Mesh.Triangles = append([]scene.Triangle{}, sc.Mesh.Triangles...)
	sc2.Mesh.Triangles[0].V[0] = len(sc.Mesh.Vertices) + 100
	var buf bytes.Buffer
	if err := Write(&buf, hdr, &sc2, sc.TextureSpecs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(&buf, texture.LayoutMorton); err == nil {
		t.Fatal("out-of-range vertex index accepted")
	}
}
