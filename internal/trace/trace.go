// Package trace implements a binary capture format for rendering
// workloads, playing the role ATTILA's game traces play in the paper:
// scenes (geometry, procedural texture specs, camera paths) are serialized
// once and replayed deterministically by the simulator. Textures are
// stored as their procedural recipes, not pixels, so traces stay small and
// bit-identical across machines.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/scene"
	"repro/internal/texture"
	"repro/internal/vmath"
)

// magic and version identify the file format.
const (
	magic   = 0x54464952 // "RIFT"
	version = 2
)

// Header describes a trace file.
type Header struct {
	// Name is the workload name the trace was captured from.
	Name string
	// Width, Height are the intended render resolution.
	Width, Height int
}

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u32(v uint32) {
	if w.err != nil {
		return
	}
	w.err = binary.Write(w.w, binary.LittleEndian, v)
}

func (w *writer) u64(v uint64) {
	if w.err != nil {
		return
	}
	w.err = binary.Write(w.w, binary.LittleEndian, v)
}

func (w *writer) f32(v float32) { w.u32(math.Float32bits(v)) }

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

func (w *writer) vec3(v vmath.Vec3) { w.f32(v.X); w.f32(v.Y); w.f32(v.Z) }
func (w *writer) vec4(v vmath.Vec4) { w.f32(v.X); w.f32(v.Y); w.f32(v.Z); w.f32(v.W) }

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var v uint32
	r.err = binary.Read(r.r, binary.LittleEndian, &v)
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	r.err = binary.Read(r.r, binary.LittleEndian, &v)
	return v
}

func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("trace: string length %d too large", n)
		return ""
	}
	buf := make([]byte, n)
	_, r.err = io.ReadFull(r.r, buf)
	return string(buf)
}

func (r *reader) vec3() vmath.Vec3 { return vmath.Vec3{X: r.f32(), Y: r.f32(), Z: r.f32()} }
func (r *reader) vec4() vmath.Vec4 {
	return vmath.Vec4{X: r.f32(), Y: r.f32(), Z: r.f32(), W: r.f32()}
}

// Write serializes a scene (with its texture recipes reconstructed from
// texture metadata) to out.
func Write(out io.Writer, hdr Header, sc *scene.Scene, specs []texture.SynthSpec) error {
	if len(specs) != len(sc.Textures) {
		return fmt.Errorf("trace: %d texture specs for %d textures", len(specs), len(sc.Textures))
	}
	w := &writer{w: bufio.NewWriter(out)}
	w.u32(magic)
	w.u32(version)
	w.str(hdr.Name)
	w.u32(uint32(hdr.Width))
	w.u32(uint32(hdr.Height))

	// Texture recipes.
	w.u32(uint32(len(specs)))
	for _, s := range specs {
		w.u32(uint32(s.Kind))
		w.u64(s.Seed)
		w.u32(uint32(s.Size))
		w.f32(s.Primary.R)
		w.f32(s.Primary.G)
		w.f32(s.Primary.B)
		w.f32(s.Primary.A)
		w.f32(s.Secondary.R)
		w.f32(s.Secondary.G)
		w.f32(s.Secondary.B)
		w.f32(s.Secondary.A)
		w.f32(s.Scale)
	}

	// Geometry.
	w.u32(uint32(len(sc.Mesh.Vertices)))
	for _, v := range sc.Mesh.Vertices {
		w.vec3(v.Pos)
		w.f32(v.UV.X)
		w.f32(v.UV.Y)
		w.vec4(v.Color)
		w.vec3(v.Normal)
	}
	w.u32(uint32(len(sc.Mesh.Triangles)))
	for _, t := range sc.Mesh.Triangles {
		w.u32(uint32(t.V[0]))
		w.u32(uint32(t.V[1]))
		w.u32(uint32(t.V[2]))
		w.u32(uint32(t.TexID))
	}

	// Cameras.
	w.u32(uint32(len(sc.Cameras)))
	for _, c := range sc.Cameras {
		w.vec3(c.Eye)
		w.vec3(c.Center)
		w.vec3(c.Up)
		w.f32(c.FovY)
		w.f32(c.Near)
		w.f32(c.Far)
	}

	// Lighting.
	w.f32(sc.Ambient)
	w.vec3(sc.LightDir)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Read deserializes a trace, re-synthesizing its textures.
func Read(in io.Reader, layout texture.Layout) (Header, *scene.Scene, error) {
	r := &reader{r: bufio.NewReader(in)}
	if m := r.u32(); r.err == nil && m != magic {
		return Header{}, nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := r.u32(); r.err == nil && v != version {
		return Header{}, nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	var hdr Header
	hdr.Name = r.str()
	hdr.Width = int(r.u32())
	hdr.Height = int(r.u32())

	sc := &scene.Scene{Name: hdr.Name}

	nTex := r.u32()
	if r.err == nil && nTex > 4096 {
		return hdr, nil, fmt.Errorf("trace: texture count %d too large", nTex)
	}
	for i := uint32(0); i < nTex && r.err == nil; i++ {
		spec := texture.SynthSpec{
			Kind: texture.SynthKind(r.u32()),
			Seed: r.u64(),
			Size: int(r.u32()),
			Primary: texture.Color{
				R: r.f32(), G: r.f32(), B: r.f32(), A: r.f32(),
			},
			Secondary: texture.Color{
				R: r.f32(), G: r.f32(), B: r.f32(), A: r.f32(),
			},
			Scale: r.f32(),
		}
		if r.err != nil {
			break
		}
		sc.Textures = append(sc.Textures, texture.Synthesize(int(i), spec, layout))
	}

	nVerts := r.u32()
	if r.err == nil && nVerts > 1<<24 {
		return hdr, nil, fmt.Errorf("trace: vertex count %d too large", nVerts)
	}
	for i := uint32(0); i < nVerts && r.err == nil; i++ {
		v := scene.VertexIn{
			Pos:    r.vec3(),
			UV:     vmath.Vec2{X: r.f32(), Y: r.f32()},
			Color:  r.vec4(),
			Normal: r.vec3(),
		}
		sc.Mesh.Vertices = append(sc.Mesh.Vertices, v)
	}
	nTris := r.u32()
	if r.err == nil && nTris > 1<<24 {
		return hdr, nil, fmt.Errorf("trace: triangle count %d too large", nTris)
	}
	for i := uint32(0); i < nTris && r.err == nil; i++ {
		t := scene.Triangle{
			V:     [3]int{int(r.u32()), int(r.u32()), int(r.u32())},
			TexID: int(r.u32()),
		}
		if r.err == nil {
			for _, idx := range t.V {
				if idx < 0 || idx >= len(sc.Mesh.Vertices) {
					return hdr, nil, fmt.Errorf("trace: triangle %d references vertex %d of %d", i, idx, len(sc.Mesh.Vertices))
				}
			}
			if t.TexID < 0 || t.TexID >= len(sc.Textures) {
				return hdr, nil, fmt.Errorf("trace: triangle %d references texture %d of %d", i, t.TexID, len(sc.Textures))
			}
		}
		sc.Mesh.Triangles = append(sc.Mesh.Triangles, t)
	}

	nCams := r.u32()
	if r.err == nil && nCams > 1<<16 {
		return hdr, nil, fmt.Errorf("trace: camera count %d too large", nCams)
	}
	for i := uint32(0); i < nCams && r.err == nil; i++ {
		sc.Cameras = append(sc.Cameras, scene.Camera{
			Eye: r.vec3(), Center: r.vec3(), Up: r.vec3(),
			FovY: r.f32(), Near: r.f32(), Far: r.f32(),
		})
	}
	sc.Ambient = r.f32()
	sc.LightDir = r.vec3()
	if r.err != nil {
		return hdr, nil, fmt.Errorf("trace: %w", r.err)
	}
	return hdr, sc, nil
}
