package raster

import (
	"math"
	"testing"

	"repro/internal/vmath"
	"repro/internal/xrand"
)

// TestInterpolationStaysInVertexHull fuzzes random visible triangles and
// checks every interpolated fragment attribute lies within the convex hull
// of the vertex values (a property of barycentric interpolation that also
// holds perspective-corrected).
func TestInterpolationStaysInVertexHull(t *testing.T) {
	r := New(128, 128)
	r.EarlyZ = false
	r.HiZ = false
	rng := xrand.New(0x9A57)
	checked := 0
	for tri := 0; tri < 300; tri++ {
		var v [3]Vertex
		var minU, maxU, minC, maxC float32 = 1e9, -1e9, 1e9, -1e9
		for i := range v {
			w := rng.Range(0.5, 6)
			u := rng.Range(-3, 3)
			col := rng.Float32()
			v[i] = Vertex{
				Pos:   vmath.Vec4{X: rng.Range(-1, 1) * w, Y: rng.Range(-1, 1) * w, Z: 0, W: w},
				UV:    vmath.Vec2{X: u, Y: 0},
				Color: vmath.Vec4{X: col, W: 1},
			}
			minU = vmath.Min(minU, u)
			maxU = vmath.Max(maxU, u)
			minC = vmath.Min(minC, col)
			maxC = vmath.Max(maxC, col)
		}
		for _, st := range r.Setup(v, 0) {
			st := st
			for _, tile := range st.Tiles() {
				r.ScanTile(&st, tile, func(f *Fragment) {
					const eps = 1e-3
					if f.UV.X < minU-eps || f.UV.X > maxU+eps {
						t.Fatalf("U %g outside hull [%g, %g]", f.UV.X, minU, maxU)
					}
					if f.Color.X < minC-eps || f.Color.X > maxC+eps {
						t.Fatalf("color %g outside hull [%g, %g]", f.Color.X, minC, maxC)
					}
					checked++
				})
			}
		}
	}
	if checked < 10000 {
		t.Fatalf("only %d fragments checked; fuzz ineffective", checked)
	}
}

// TestFragmentsWithinBounds: no fragment may ever land outside the render
// target, for arbitrary (partially off-screen) triangles.
func TestFragmentsWithinBounds(t *testing.T) {
	r := New(64, 48)
	r.EarlyZ = false
	r.HiZ = false
	rng := xrand.New(0xB0B)
	for tri := 0; tri < 500; tri++ {
		var v [3]Vertex
		for i := range v {
			w := rng.Range(0.2, 4)
			v[i] = Vertex{Pos: vmath.Vec4{
				X: rng.Range(-4, 4) * w, Y: rng.Range(-4, 4) * w,
				Z: rng.Range(-1, 1) * w, W: w}}
		}
		for _, st := range r.Setup(v, 0) {
			st := st
			for _, tile := range st.Tiles() {
				r.ScanTile(&st, tile, func(f *Fragment) {
					if f.X < 0 || f.X >= 64 || f.Y < 0 || f.Y >= 48 {
						t.Fatalf("fragment at (%d,%d) outside 64x48", f.X, f.Y)
					}
					if math.IsNaN(float64(f.Depth)) {
						t.Fatal("NaN depth")
					}
				})
			}
		}
	}
}

// TestStatsConservation: emitted + earlyZ-rejected fragments equal the
// covered fragments counted in.
func TestStatsConservation(t *testing.T) {
	r := New(64, 64)
	depth := make([]float32, 64*64)
	for i := range depth {
		if i%2 == 0 {
			depth[i] = 1 // pass
		} // odd pixels: 0 -> reject
	}
	r.Depth = depth
	r.HiZ = false
	st := r.Setup(fullscreenTri(), 0)
	countFragments(r, st)
	s := r.Stats()
	if s.FragmentsEmitted+s.FragmentsEarlyZ != s.FragmentsIn {
		t.Fatalf("conservation violated: %d + %d != %d",
			s.FragmentsEmitted, s.FragmentsEarlyZ, s.FragmentsIn)
	}
	if s.FragmentsEarlyZ == 0 || s.FragmentsEmitted == 0 {
		t.Fatal("expected both accepted and rejected fragments")
	}
}
