package raster

import (
	"testing"

	"repro/internal/vmath"
)

// fullscreenTri returns a clip-space triangle covering the whole viewport.
func fullscreenTri() [3]Vertex {
	mk := func(x, y float32) Vertex {
		return Vertex{
			Pos:    vmath.Vec4{X: x, Y: y, Z: 0, W: 1},
			UV:     vmath.Vec2{X: (x + 1) / 2, Y: (y + 1) / 2},
			Color:  vmath.Vec4{X: 1, Y: 1, Z: 1, W: 1},
			Normal: vmath.Vec3{Z: 1},
		}
	}
	// Counter-clockwise in NDC (front-facing).
	return [3]Vertex{mk(-3, -1), mk(3, -1), mk(0, 3)}
}

func countFragments(r *Rasterizer, st []SetupTriangle) int {
	n := 0
	for i := range st {
		for _, tile := range st[i].Tiles() {
			n += r.ScanTile(&st[i], tile, func(*Fragment) {})
		}
	}
	return n
}

func TestFullscreenCoverage(t *testing.T) {
	r := New(64, 64)
	r.EarlyZ = false
	r.HiZ = false
	st := r.Setup(fullscreenTri(), 0)
	if len(st) != 1 {
		t.Fatalf("setup returned %d triangles", len(st))
	}
	if n := countFragments(r, st); n != 64*64 {
		t.Fatalf("fullscreen triangle covered %d pixels, want %d", n, 64*64)
	}
}

func TestBackfaceCulled(t *testing.T) {
	r := New(64, 64)
	tri := fullscreenTri()
	tri[1], tri[2] = tri[2], tri[1] // reverse winding
	if st := r.Setup(tri, 0); len(st) != 0 {
		t.Fatal("back-facing triangle survived culling")
	}
	if r.Stats().Culled != 1 {
		t.Errorf("culled stat %d", r.Stats().Culled)
	}
}

func TestAdjacentTrianglesNoDoubleCoverage(t *testing.T) {
	// Two triangles sharing a diagonal edge must cover each pixel exactly
	// once (top-left fill rule approximated by the >= 0 edge test plus
	// shared-edge orientation).
	r := New(32, 32)
	r.EarlyZ = false
	r.HiZ = false
	mk := func(x, y float32) Vertex {
		return Vertex{Pos: vmath.Vec4{X: x, Y: y, Z: 0, W: 1}, Normal: vmath.Vec3{Z: 1}}
	}
	v00 := mk(-1, -1)
	v10 := mk(1, -1)
	v01 := mk(-1, 1)
	v11 := mk(1, 1)
	counts := map[[2]int]int{}
	emit := func(f *Fragment) { counts[[2]int{f.X, f.Y}]++ }
	for _, tri := range [][3]Vertex{{v00, v10, v11}, {v00, v11, v01}} {
		for _, st := range r.Setup(tri, 0) {
			st := st
			for _, tile := range st.Tiles() {
				r.ScanTile(&st, tile, emit)
			}
		}
	}
	over := 0
	for _, c := range counts {
		if c > 1 {
			over++
		}
	}
	// The shared diagonal may double-cover under the inclusive edge rule;
	// it must stay a thin line (<= diagonal length), not an area.
	if over > 32 {
		t.Fatalf("%d pixels double-covered (inclusive edges leaking)", over)
	}
	if len(counts) != 32*32 {
		t.Fatalf("quad covered %d pixels, want %d", len(counts), 32*32)
	}
}

func TestNearPlaneClipping(t *testing.T) {
	r := New(64, 64)
	r.EarlyZ = false
	r.HiZ = false
	mkClip := func(x, y, w float32) Vertex {
		return Vertex{Pos: vmath.Vec4{X: x, Y: y, Z: 0, W: w}}
	}
	// Two vertices near the top of the screen in front of the camera, one
	// behind it with positive clip-space Y: the visible wedge extends
	// upward past the screen top and must rasterize fragments.
	tri := [3]Vertex{mkClip(-0.9, 0.5, 1), mkClip(0.9, 0.5, 1), mkClip(0, 2, -1)}
	st := r.Setup(tri, 0)
	st2 := r.Setup([3]Vertex{tri[0], tri[2], tri[1]}, 0) // either winding
	frags := countFragments(r, st) + countFragments(r, st2)
	if frags == 0 {
		t.Fatal("near-clipped triangle produced no fragments")
	}
	if r.Stats().Clipped == 0 {
		t.Error("clip stat not incremented")
	}
}

func TestFullyBehindCulled(t *testing.T) {
	r := New(64, 64)
	mk := func(x, y float32) Vertex {
		return Vertex{Pos: vmath.Vec4{X: x, Y: y, Z: 0, W: -1}}
	}
	if st := r.Setup([3]Vertex{mk(0, 0), mk(1, 0), mk(0, 1)}, 0); len(st) != 0 {
		t.Fatal("fully-behind triangle rasterized")
	}
}

func TestEarlyZRejects(t *testing.T) {
	r := New(64, 64)
	r.HiZ = false
	depth := make([]float32, 64*64)
	r.Depth = depth
	// Depth buffer already holds nearer geometry (0.0); incoming triangle
	// at z=0 maps to depth 0.5 and must be rejected everywhere.
	st := r.Setup(fullscreenTri(), 0)
	if n := countFragments(r, st); n != 0 {
		t.Fatalf("early-Z passed %d fragments against a nearer buffer", n)
	}
	if r.Stats().FragmentsEarlyZ == 0 {
		t.Error("early-Z stat not incremented")
	}
}

func TestHiZRejectsTiles(t *testing.T) {
	r := New(64, 64)
	depth := make([]float32, 64*64)
	r.Depth = depth // all zero: everything occluded
	// Mark every tile's HiZ as fully near.
	for ty := 0; ty < 4; ty++ {
		for tx := 0; tx < 4; tx++ {
			r.UpdateHiZ(Tile{X0: tx * TileSize, Y0: ty * TileSize}, 0)
		}
	}
	st := r.Setup(fullscreenTri(), 0)
	countFragments(r, st)
	if r.Stats().HiZRejectedTiles == 0 {
		t.Fatal("HiZ rejected no tiles")
	}
}

func TestPerspectiveCorrectInterpolation(t *testing.T) {
	// A triangle with strongly varying W: UV interpolation must be
	// hyperbolic (perspective-correct), not linear in screen space.
	r := New(64, 64)
	r.EarlyZ = false
	r.HiZ = false
	mkw := func(x, y, w, u float32) Vertex {
		return Vertex{
			Pos: vmath.Vec4{X: x * w, Y: y * w, Z: 0, W: w},
			UV:  vmath.Vec2{X: u, Y: 0},
		}
	}
	tri := [3]Vertex{mkw(-1, -1, 1, 0), mkw(1, -1, 10, 1), mkw(-1, 3, 1, 0)}
	var mid *Fragment
	for _, st := range r.Setup(tri, 0) {
		st := st
		for _, tile := range st.Tiles() {
			r.ScanTile(&st, tile, func(f *Fragment) {
				if f.Y == 48 && f.X == 31 {
					c := *f
					mid = &c
				}
			})
		}
	}
	if mid == nil {
		t.Skip("midpoint not covered under this clipping")
	}
	// Linear interpolation would give ~0.5 at the screen midpoint; the
	// perspective-correct value is pulled toward the low-W vertex.
	if mid.UV.X > 0.4 {
		t.Fatalf("U at screen midpoint = %g, not perspective-correct", mid.UV.X)
	}
}

func TestTilesCoverBoundingBox(t *testing.T) {
	r := New(128, 128)
	st := r.Setup(fullscreenTri(), 0)
	if len(st) != 1 {
		t.Fatal("setup failed")
	}
	tiles := st[0].Tiles()
	want := (128 / TileSize) * (128 / TileSize)
	if len(tiles) != want {
		t.Fatalf("fullscreen triangle touches %d tiles, want %d", len(tiles), want)
	}
}

func TestDepthRange(t *testing.T) {
	r := New(32, 32)
	r.EarlyZ = false
	r.HiZ = false
	st := r.Setup(fullscreenTri(), 0)
	for i := range st {
		for _, tile := range st[i].Tiles() {
			r.ScanTile(&st[i], tile, func(f *Fragment) {
				if f.Depth < 0 || f.Depth > 1 {
					t.Fatalf("depth %g out of [0,1]", f.Depth)
				}
			})
		}
	}
}
