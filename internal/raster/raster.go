// Package raster implements the fixed-function rasterization stage of the
// baseline GPU (Fig. 1): triangle setup with edge functions, near-plane
// clipping, perspective-correct attribute interpolation with analytic
// screen-space gradients (needed for texture LOD/anisotropy), a 16x16
// tile-based scan order (Table I's tile size), and a hierarchical-Z
// structure used for early-Z rejection.
package raster

import (
	"math"

	"repro/internal/vmath"
)

// TileSize is the rasterizer tile edge in pixels (16x16 per Table I).
const TileSize = 16

// Vertex is a post-vertex-shading vertex: clip-space position plus the
// attributes interpolated across the triangle.
type Vertex struct {
	// Pos is the clip-space position (before perspective divide).
	Pos vmath.Vec4
	// UV is the texture coordinate.
	UV vmath.Vec2
	// Color is the vertex color.
	Color vmath.Vec4
	// Normal is the (eye-space) surface normal.
	Normal vmath.Vec3
}

// Fragment is one covered pixel produced by the rasterizer.
type Fragment struct {
	// X, Y are the pixel coordinates.
	X, Y int
	// Depth is the interpolated NDC depth in [0, 1] (0 = near).
	Depth float32
	// UV is the perspective-correct texture coordinate.
	UV vmath.Vec2
	// DUDX, DVDX, DUDY, DVDY are the analytic screen-space UV derivatives.
	DUDX, DVDX, DUDY, DVDY float32
	// Color is the interpolated vertex color.
	Color vmath.Vec4
	// Normal is the interpolated normal (unnormalized).
	Normal vmath.Vec3
	// ViewAngle is the angle (radians) between the view direction and the
	// surface normal — the "camera angle" the A-TFIM design tags texels
	// with (Section V-C).
	ViewAngle float32
	// TexID selects the draw call's texture (copied by the pipeline).
	TexID int
}

// Tile identifies one 16x16 screen tile.
type Tile struct {
	X0, Y0 int // top-left pixel
}

// Stats counts rasterizer events.
type Stats struct {
	Triangles        uint64
	Clipped          uint64
	Culled           uint64
	TilesTouched     uint64
	FragmentsIn      uint64
	FragmentsEarlyZ  uint64
	FragmentsEmitted uint64
	HiZRejectedTiles uint64
}

// Add merges o into s (used to reduce per-shard counters).
func (s *Stats) Add(o Stats) {
	s.Triangles += o.Triangles
	s.Clipped += o.Clipped
	s.Culled += o.Culled
	s.TilesTouched += o.TilesTouched
	s.FragmentsIn += o.FragmentsIn
	s.FragmentsEarlyZ += o.FragmentsEarlyZ
	s.FragmentsEmitted += o.FragmentsEmitted
	s.HiZRejectedTiles += o.HiZRejectedTiles
}

// Rasterizer scans triangles into fragments over a WxH render target.
type Rasterizer struct {
	W, H int
	// EarlyZ enables per-fragment early depth rejection against Depth.
	EarlyZ bool
	// HiZ enables hierarchical-Z tile rejection.
	HiZ bool
	// Depth is the depth buffer (owned by the caller/ROP); used read-only
	// for early-Z when non-nil.
	Depth []float32
	// hiZ holds the per-tile maximum depth for hierarchical rejection.
	hiZ   []float32
	tw    int
	th    int
	stats Stats
}

// New creates a rasterizer for a WxH target.
func New(w, h int) *Rasterizer {
	tw := (w + TileSize - 1) / TileSize
	th := (h + TileSize - 1) / TileSize
	r := &Rasterizer{W: w, H: h, EarlyZ: true, HiZ: true, tw: tw, th: th}
	r.hiZ = make([]float32, tw*th)
	r.ResetHiZ()
	return r
}

// Stats returns a copy of the counters.
func (r *Rasterizer) Stats() Stats { return r.stats }

// ResetStats zeroes the counters.
func (r *Rasterizer) ResetStats() { r.stats = Stats{} }

// AddStats folds externally accumulated counters (a shard view's) into r.
func (r *Rasterizer) AddStats(o Stats) { r.stats.Add(o) }

// ShardView returns a rasterizer that shares r's depth and hierarchical-Z
// storage but keeps private statistics. Concurrent views are safe as long
// as each scans a disjoint set of tiles: ScanTile and UpdateHiZ only touch
// the depth/HiZ entries of the tile being scanned.
func (r *Rasterizer) ShardView() *Rasterizer {
	v := *r
	v.stats = Stats{}
	return &v
}

// ResetHiZ clears the hierarchical-Z buffer to the far plane.
func (r *Rasterizer) ResetHiZ() {
	for i := range r.hiZ {
		r.hiZ[i] = 1
	}
}

// UpdateHiZ lowers the tile's max-depth bound after the ROP writes depth.
func (r *Rasterizer) UpdateHiZ(tile Tile, maxDepth float32) {
	idx := (tile.Y0/TileSize)*r.tw + tile.X0/TileSize
	if maxDepth < r.hiZ[idx] {
		r.hiZ[idx] = maxDepth
	}
}

// clipNear clips a triangle against the near plane (w >= wEps) in clip
// space, returning 0, 1 or 2 triangles. The clip distance is kept well
// above zero so post-divide screen coordinates stay in a numerically
// stable range (it sits closer than any camera near plane in use).
func clipNear(v [3]Vertex) [][3]Vertex {
	const wEps = 0.05
	inside := func(p Vertex) bool { return p.Pos.W >= wEps }
	var in, out []Vertex
	for _, p := range v {
		if inside(p) {
			in = append(in, p)
		} else {
			out = append(out, p)
		}
	}
	switch len(in) {
	case 3:
		return [][3]Vertex{v}
	case 0:
		return nil
	}
	lerpV := func(a, b Vertex) Vertex {
		t := (wEps - a.Pos.W) / (b.Pos.W - a.Pos.W)
		return Vertex{
			Pos:    vmath.Lerp(a.Pos, b.Pos, t),
			UV:     vmath.Lerp2(a.UV, b.UV, t),
			Color:  vmath.Lerp(a.Color, b.Color, t),
			Normal: a.Normal.Add(b.Normal.Sub(a.Normal).Scale(t)),
		}
	}
	if len(in) == 1 {
		a := in[0]
		b := lerpV(a, out[0])
		c := lerpV(a, out[1])
		return [][3]Vertex{{a, b, c}}
	}
	// Two inside: quad -> two triangles.
	a, b := in[0], in[1]
	c := lerpV(a, out[0])
	d := lerpV(b, out[0])
	return [][3]Vertex{{a, b, c}, {b, d, c}}
}

// screenVertex is a post-divide vertex with perspective-correct setup data.
type screenVertex struct {
	x, y  float32 // window coordinates
	z     float32 // NDC depth remapped to [0,1]
	invW  float32
	uvW   vmath.Vec2 // uv * invW
	colW  vmath.Vec4 // color * invW
	nrmW  vmath.Vec3 // normal * invW
	angle float32
}

// SetupTriangle holds everything needed to scan one triangle.
type SetupTriangle struct {
	sv                     [3]screenVertex
	area2                  float32 // twice the signed area
	minX, maxX, minY, maxY int
	// Attribute plane gradients for u/w, v/w and 1/w in screen space.
	duwDX, duwDY float32
	dvwDX, dvwDY float32
	dwDX, dwDY   float32
	TexID        int
}

// Setup performs clipping, perspective divide, viewport mapping, back-face
// culling and gradient setup. It returns zero or more scan-ready triangles.
func (r *Rasterizer) Setup(v [3]Vertex, texID int) []SetupTriangle {
	r.stats.Triangles++
	tris := clipNear(v)
	if len(tris) == 0 {
		r.stats.Culled++
		return nil
	}
	if len(tris) > 1 || tris[0] != v {
		r.stats.Clipped++
	}
	var out []SetupTriangle
	for _, t := range tris {
		if st, ok := r.setupOne(t, texID); ok {
			out = append(out, st)
		} else {
			r.stats.Culled++
		}
	}
	return out
}

func (r *Rasterizer) setupOne(t [3]Vertex, texID int) (SetupTriangle, bool) {
	var st SetupTriangle
	st.TexID = texID
	for i, p := range t {
		invW := 1 / p.Pos.W
		ndcX := p.Pos.X * invW
		ndcY := p.Pos.Y * invW
		ndcZ := p.Pos.Z * invW
		sv := screenVertex{
			x:    (ndcX*0.5 + 0.5) * float32(r.W),
			y:    (0.5 - ndcY*0.5) * float32(r.H),
			z:    ndcZ*0.5 + 0.5,
			invW: invW,
		}
		sv.uvW = p.UV.Scale(invW)
		sv.colW = p.Color.Scale(invW)
		sv.nrmW = p.Normal.Scale(invW)
		st.sv[i] = sv
	}
	// Counter-clockwise (front-facing) world winding appears clockwise in
	// window coordinates because the viewport maps NDC +Y to screen -Y,
	// yielding negative signed area. Cull non-negative (back-facing or
	// degenerate) triangles, then swap two vertices so the scan loop can
	// assume positive edge functions.
	{
		a, b, c := st.sv[0], st.sv[1], st.sv[2]
		st.area2 = (b.x-a.x)*(c.y-a.y) - (b.y-a.y)*(c.x-a.x)
	}
	if st.area2 >= 0 {
		return st, false
	}
	st.sv[1], st.sv[2] = st.sv[2], st.sv[1]
	st.area2 = -st.area2
	a, b, c := st.sv[0], st.sv[1], st.sv[2]

	minX := int(math.Floor(float64(min3(a.x, b.x, c.x))))
	maxX := int(math.Ceil(float64(max3(a.x, b.x, c.x))))
	minY := int(math.Floor(float64(min3(a.y, b.y, c.y))))
	maxY := int(math.Ceil(float64(max3(a.y, b.y, c.y))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > r.W-1 {
		maxX = r.W - 1
	}
	if maxY > r.H-1 {
		maxY = r.H - 1
	}
	if minX > maxX || minY > maxY {
		return st, false
	}
	st.minX, st.maxX, st.minY, st.maxY = minX, maxX, minY, maxY

	// Screen-space gradients of the perspective-corrected attributes via
	// the plane equation: for attribute f with vertex values f0..f2,
	// df/dx = ((f1-f0)(y2-y0) - (f2-f0)(y1-y0)) / area2, etc.
	grad := func(f0, f1, f2 float32) (gx, gy float32) {
		gx = ((f1-f0)*(c.y-a.y) - (f2-f0)*(b.y-a.y)) / st.area2
		gy = ((f2-f0)*(b.x-a.x) - (f1-f0)*(c.x-a.x)) / st.area2
		return
	}
	st.duwDX, st.duwDY = grad(a.uvW.X, b.uvW.X, c.uvW.X)
	st.dvwDX, st.dvwDY = grad(a.uvW.Y, b.uvW.Y, c.uvW.Y)
	st.dwDX, st.dwDY = grad(a.invW, b.invW, c.invW)
	return st, true
}

func min3(a, b, c float32) float32 { return vmath.Min(a, vmath.Min(b, c)) }
func max3(a, b, c float32) float32 { return vmath.Max(a, vmath.Max(b, c)) }

// Tiles returns the screen tiles the triangle's bounding box touches, in
// row-major (scanning) order.
func (st *SetupTriangle) Tiles() []Tile {
	var tiles []Tile
	for ty := st.minY / TileSize; ty <= st.maxY/TileSize; ty++ {
		for tx := st.minX / TileSize; tx <= st.maxX/TileSize; tx++ {
			tiles = append(tiles, Tile{X0: tx * TileSize, Y0: ty * TileSize})
		}
	}
	return tiles
}

// ScanTile rasterizes the triangle within one tile, invoking emit for every
// covered (and early-Z surviving) fragment. It returns the number of
// fragments emitted.
func (r *Rasterizer) ScanTile(st *SetupTriangle, tile Tile, emit func(*Fragment)) int {
	x0 := maxInt(tile.X0, st.minX)
	x1 := minInt(tile.X0+TileSize-1, st.maxX)
	y0 := maxInt(tile.Y0, st.minY)
	y1 := minInt(tile.Y0+TileSize-1, st.maxY)
	if x0 > x1 || y0 > y1 {
		return 0
	}
	r.stats.TilesTouched++

	// Hierarchical Z: reject the whole tile if the triangle's nearest
	// depth is behind the tile's farthest stored depth.
	if r.HiZ && r.Depth != nil {
		tIdx := (tile.Y0/TileSize)*r.tw + tile.X0/TileSize
		zMin := min3(st.sv[0].z, st.sv[1].z, st.sv[2].z)
		if zMin > r.hiZ[tIdx] {
			r.stats.HiZRejectedTiles++
			return 0
		}
	}

	a, b, c := st.sv[0], st.sv[1], st.sv[2]
	invArea := 1 / st.area2
	emitted := 0
	var frag Fragment
	for y := y0; y <= y1; y++ {
		py := float32(y) + 0.5
		for x := x0; x <= x1; x++ {
			px := float32(x) + 0.5
			// Edge functions (barycentric numerators).
			w0 := (b.x-px)*(c.y-py) - (b.y-py)*(c.x-px)
			w1 := (c.x-px)*(a.y-py) - (c.y-py)*(a.x-px)
			w2 := (a.x-px)*(b.y-py) - (a.y-py)*(b.x-px)
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			r.stats.FragmentsIn++
			l0 := w0 * invArea
			l1 := w1 * invArea
			l2 := w2 * invArea

			z := l0*a.z + l1*b.z + l2*c.z
			if r.EarlyZ && r.Depth != nil && z >= r.Depth[y*r.W+x] {
				r.stats.FragmentsEarlyZ++
				continue
			}

			invW := l0*a.invW + l1*b.invW + l2*c.invW
			w := 1 / invW
			uOverW := l0*a.uvW.X + l1*b.uvW.X + l2*c.uvW.X
			vOverW := l0*a.uvW.Y + l1*b.uvW.Y + l2*c.uvW.Y

			frag = Fragment{
				X: x, Y: y,
				Depth: z,
				UV:    vmath.Vec2{X: uOverW * w, Y: vOverW * w},
				TexID: st.TexID,
			}
			// Analytic perspective-correct derivatives:
			// d(u)/dx = ( d(u/w)/dx - u * d(1/w)/dx ) * w
			frag.DUDX = (st.duwDX - frag.UV.X*st.dwDX) * w
			frag.DUDY = (st.duwDY - frag.UV.X*st.dwDY) * w
			frag.DVDX = (st.dvwDX - frag.UV.Y*st.dwDX) * w
			frag.DVDY = (st.dvwDY - frag.UV.Y*st.dwDY) * w

			col := st.sv[0].colW.Scale(l0).
				Add(st.sv[1].colW.Scale(l1)).
				Add(st.sv[2].colW.Scale(l2)).Scale(w)
			frag.Color = col
			nrm := st.sv[0].nrmW.Scale(l0).
				Add(st.sv[1].nrmW.Scale(l1)).
				Add(st.sv[2].nrmW.Scale(l2)).Scale(w)
			frag.Normal = nrm

			// Camera angle: angle between the view direction (along -Z in
			// eye space; the pipeline provides eye-space normals) and the
			// surface normal, folded into [0, pi/2].
			n := nrm.Normalize()
			cosA := vmath.Abs(n.Z)
			frag.ViewAngle = float32(math.Acos(float64(vmath.Clamp(cosA, 0, 1))))

			r.stats.FragmentsEmitted++
			emitted++
			emit(&frag)
		}
	}
	return emitted
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
