package raster

import (
	"math"
	"testing"

	"repro/internal/texture"
	"repro/internal/vmath"
)

// buildFloor returns a large floor quad triangle (world-space y=0) under a
// grazing camera, returning its setup triangles.
func buildFloorSetup(t *testing.T, r *Rasterizer) []SetupTriangle {
	t.Helper()
	cam := struct {
		eye, center, up vmath.Vec3
	}{vmath.Vec3{X: 0, Y: 1.7, Z: 0}, vmath.Vec3{X: 0, Y: 1.5, Z: -8}, vmath.Vec3{Y: 1}}
	proj := vmath.Perspective(1.1, float32(r.W)/float32(r.H), 0.1, 300)
	view := vmath.LookAt(cam.eye, cam.center, cam.up)
	mvp := proj.Mul(view)

	mk := func(x, z, u, v float32) Vertex {
		p := mvp.MulVec(vmath.Vec4{X: x, Y: 0, Z: z, W: 1})
		return Vertex{Pos: p, UV: vmath.Vec2{X: u, Y: v}, Color: vmath.Vec4{X: 1, Y: 1, Z: 1, W: 1},
			Normal: vmath.Vec3{Y: 1}}
	}
	const uvScale = 32
	v0 := mk(-20, -1, 0, 0)
	v1 := mk(20, -1, uvScale, 0)
	v2 := mk(20, -120, uvScale, uvScale)
	v3 := mk(-20, -120, 0, uvScale)
	var out []SetupTriangle
	out = append(out, r.Setup([3]Vertex{v0, v1, v2}, 0)...)
	out = append(out, r.Setup([3]Vertex{v0, v2, v3}, 0)...)
	if len(out) == 0 {
		t.Fatal("floor quad fully culled")
	}
	return out
}

// TestGradientsMatchFiniteDifferences verifies the analytic UV derivatives
// against finite differences between horizontally adjacent fragments.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	r := New(320, 240)
	r.EarlyZ = false
	r.HiZ = false
	frags := map[[2]int]*Fragment{}
	for _, st := range buildFloorSetup(t, r) {
		st := st
		for _, tile := range st.Tiles() {
			r.ScanTile(&st, tile, func(f *Fragment) {
				c := *f
				frags[[2]int{f.X, f.Y}] = &c
			})
		}
	}
	if len(frags) < 1000 {
		t.Fatalf("too few fragments rasterized: %d", len(frags))
	}
	checked := 0
	for pos, f := range frags {
		nx, ok := frags[[2]int{pos[0] + 1, pos[1]}]
		if !ok {
			continue
		}
		fdU := nx.UV.X - f.UV.X
		fdV := nx.UV.Y - f.UV.Y
		// The analytic derivative at the midpoint should approximate the
		// finite difference within 25% (perspective curvature).
		if math.Abs(float64(f.DUDX-fdU)) > 0.25*math.Abs(float64(fdU))+1e-4 {
			t.Fatalf("DUDX mismatch at %v: analytic %g vs fd %g", pos, f.DUDX, fdU)
		}
		if math.Abs(float64(f.DVDX-fdV)) > 0.25*math.Abs(float64(fdV))+1e-4 {
			t.Fatalf("DVDX mismatch at %v: analytic %g vs fd %g", pos, f.DVDX, fdV)
		}
		checked++
		if checked > 3000 {
			break
		}
	}
	if checked < 500 {
		t.Fatalf("too few horizontally adjacent pairs checked: %d", checked)
	}
}

// TestFloorAnisotropyDegree checks that a grazing floor produces high
// anisotropy degrees (the premise of the paper's Section II-C): the mean N
// across floor fragments should be well above 2 and many fragments should
// reach the 16x cap.
func TestFloorAnisotropyDegree(t *testing.T) {
	r := New(320, 240)
	r.EarlyZ = false
	r.HiZ = false
	tex := texture.NewTexture(0, "floor", 1024, 1024, texture.LayoutMorton, texture.WrapRepeat)
	tex.BuildMipmaps()

	var sumN, count float64
	hist := map[int]int{}
	for _, st := range buildFloorSetup(t, r) {
		st := st
		for _, tile := range st.Tiles() {
			r.ScanTile(&st, tile, func(f *Fragment) {
				g := texture.Gradients{DUDX: f.DUDX, DVDX: f.DVDX, DUDY: f.DUDY, DVDY: f.DVDY}
				foot := texture.ComputeFootprint(tex, g, 16)
				sumN += float64(foot.N)
				count++
				hist[foot.N]++
			})
		}
	}
	meanN := sumN / count
	t.Logf("floor fragments=%d meanN=%.2f hist=%v", int(count), meanN, hist)
	if meanN < 3 {
		t.Errorf("mean anisotropy degree %.2f too low for a grazing floor", meanN)
	}
	if hist[16] == 0 {
		t.Errorf("no fragment reached the 16x anisotropy cap")
	}
}
