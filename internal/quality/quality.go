// Package quality measures rendering quality: PSNR (the paper's Fig. 15/16
// metric) and SSIM between rendered frames, plus PPM/PNG frame export.
package quality

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// PSNRCap is the PSNR reported for identical images; the paper states "the
// PSNR of the baseline is 99 (comparing two identical images)".
const PSNRCap = 99.0

// PSNR computes the peak signal-to-noise ratio (dB) between two RGBA8
// frames of equal size, over the RGB channels. Identical frames return
// PSNRCap.
func PSNR(a, b []uint32) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("quality: frame size mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("quality: empty frames")
	}
	var sse float64
	for i := range a {
		pa, pb := a[i], b[i]
		for sh := 0; sh < 24; sh += 8 {
			d := float64(int64((pa>>sh)&0xff) - int64((pb>>sh)&0xff))
			sse += d * d
		}
	}
	n := float64(len(a) * 3)
	mse := sse / n
	if mse == 0 {
		return PSNRCap, nil
	}
	p := 10 * math.Log10(255*255/mse)
	if p > PSNRCap {
		p = PSNRCap
	}
	return p, nil
}

// MSE returns the mean squared error over RGB channels.
func MSE(a, b []uint32) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("quality: frame size mismatch")
	}
	var sse float64
	for i := range a {
		pa, pb := a[i], b[i]
		for sh := 0; sh < 24; sh += 8 {
			d := float64(int64((pa>>sh)&0xff) - int64((pb>>sh)&0xff))
			sse += d * d
		}
	}
	return sse / float64(len(a)*3), nil
}

// SSIM computes the global Structural Similarity index between the
// luminance planes of two RGBA8 frames (single-window variant; the paper
// discusses SSIM as the alternative metric it decided against).
func SSIM(a, b []uint32) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("quality: frame size mismatch")
	}
	la := make([]float64, len(a))
	lb := make([]float64, len(b))
	for i := range a {
		la[i] = luma(a[i])
		lb[i] = luma(b[i])
	}
	meanA := mean(la)
	meanB := mean(lb)
	var varA, varB, cov float64
	for i := range la {
		da := la[i] - meanA
		db := lb[i] - meanB
		varA += da * da
		varB += db * db
		cov += da * db
	}
	n := float64(len(la) - 1)
	if n < 1 {
		n = 1
	}
	varA /= n
	varB /= n
	cov /= n
	const (
		c1 = (0.01 * 255) * (0.01 * 255)
		c2 = (0.03 * 255) * (0.03 * 255)
	)
	num := (2*meanA*meanB + c1) * (2*cov + c2)
	den := (meanA*meanA + meanB*meanB + c1) * (varA + varB + c2)
	return num / den, nil
}

func luma(p uint32) float64 {
	r := float64(p & 0xff)
	g := float64((p >> 8) & 0xff)
	b := float64((p >> 16) & 0xff)
	return 0.299*r + 0.587*g + 0.114*b
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// WritePPM writes the frame as a binary PPM (P6) image.
func WritePPM(w io.Writer, pix []uint32, width, height int) error {
	if len(pix) != width*height {
		return fmt.Errorf("quality: pixel count %d != %dx%d", len(pix), width, height)
	}
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	row := make([]byte, width*3)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			p := pix[y*width+x]
			row[x*3] = byte(p & 0xff)
			row[x*3+1] = byte((p >> 8) & 0xff)
			row[x*3+2] = byte((p >> 16) & 0xff)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// WritePNG writes the frame as a PNG image.
func WritePNG(w io.Writer, pix []uint32, width, height int) error {
	if len(pix) != width*height {
		return fmt.Errorf("quality: pixel count %d != %dx%d", len(pix), width, height)
	}
	img := image.NewNRGBA(image.Rect(0, 0, width, height))
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			p := pix[y*width+x]
			img.SetNRGBA(x, y, color.NRGBA{
				R: uint8(p & 0xff),
				G: uint8((p >> 8) & 0xff),
				B: uint8((p >> 16) & 0xff),
				A: 255,
			})
		}
	}
	return png.Encode(w, img)
}
