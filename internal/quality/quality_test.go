package quality

import (
	"bytes"
	"image/png"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func solid(n int, p uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestPSNRIdenticalIsCapped(t *testing.T) {
	a := solid(100, 0xff112233)
	p, err := PSNR(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if p != PSNRCap {
		t.Fatalf("identical PSNR %g want %g (the paper reports 99)", p, PSNRCap)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// All channels differ by exactly 1: MSE=1 -> PSNR = 10*log10(255^2).
	a := solid(64, 0xff101010)
	b := solid(64, 0xff111111)
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("PSNR %g want %g", p, want)
	}
}

func TestPSNRMonotoneInError(t *testing.T) {
	a := solid(64, 0xff000000)
	small := solid(64, 0xff050505)
	big := solid(64, 0xff404040)
	ps, _ := PSNR(a, small)
	pb, _ := PSNR(a, big)
	if ps <= pb {
		t.Fatalf("PSNR not monotone: small err %g <= big err %g", ps, pb)
	}
}

func TestPSNRSizeMismatch(t *testing.T) {
	if _, err := PSNR(solid(4, 0), solid(5, 0)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := PSNR(nil, nil); err == nil {
		t.Fatal("empty frames accepted")
	}
}

func TestPSNRSymmetry(t *testing.T) {
	err := quick.Check(func(a8, b8 [16]uint32) bool {
		a := a8[:]
		b := b8[:]
		pa, _ := PSNR(a, b)
		pb, _ := PSNR(b, a)
		return pa == pb
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMSE(t *testing.T) {
	a := solid(10, 0xff000000)
	b := solid(10, 0xff020202)
	m, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m != 4 {
		t.Fatalf("MSE %g want 4", m)
	}
}

func TestSSIMIdentity(t *testing.T) {
	// A frame with some variance compared to itself: SSIM = 1.
	a := make([]uint32, 64)
	for i := range a {
		a[i] = uint32(i*4) | 0xff000000
	}
	s, err := SSIM(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("self-SSIM %g want 1", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	a := make([]uint32, 256)
	b := make([]uint32, 256)
	for i := range a {
		v := uint32(i) & 0xff
		a[i] = v | v<<8 | v<<16 | 0xff000000
		w := (v + 60) & 0xff
		b[i] = w | w<<8 | w<<16 | 0xff000000
	}
	s, err := SSIM(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 0.99 {
		t.Fatalf("noisy SSIM %g should be below identity", s)
	}
}

func TestWritePPM(t *testing.T) {
	var buf bytes.Buffer
	pix := solid(6, 0xff0000ff) // red
	if err := WritePPM(&buf, pix, 3, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P6\n3 2\n255\n") {
		t.Fatalf("ppm header wrong: %q", out[:20])
	}
	if buf.Len() != len("P6\n3 2\n255\n")+3*2*3 {
		t.Fatalf("ppm size %d", buf.Len())
	}
	if err := WritePPM(&buf, pix, 4, 2); err == nil {
		t.Fatal("wrong dimensions accepted")
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pix := []uint32{0xff0000ff, 0xff00ff00, 0xffff0000, 0xff888888}
	if err := WritePNG(&buf, pix, 2, 2); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b, _ := img.At(0, 0).RGBA()
	if r>>8 != 0xff || g>>8 != 0 || b>>8 != 0 {
		t.Fatalf("pixel (0,0) = %d,%d,%d want red", r>>8, g>>8, b>>8)
	}
	r, g, _, _ = img.At(1, 0).RGBA()
	if r>>8 != 0 || g>>8 != 0xff {
		t.Fatal("pixel (1,0) not green")
	}
}
