package mem

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestTrafficAccounting(t *testing.T) {
	var tr Traffic
	tr.Record(ClassTexture, Read, 64)
	tr.Record(ClassTexture, Write, 16)
	tr.Record(ClassZ, Read, 64)
	if tr.Bytes(ClassTexture, Read) != 64 {
		t.Errorf("texture reads %d", tr.Bytes(ClassTexture, Read))
	}
	if tr.ClassTotal(ClassTexture) != 80 {
		t.Errorf("texture total %d", tr.ClassTotal(ClassTexture))
	}
	if tr.Total() != 144 {
		t.Errorf("total %d", tr.Total())
	}
	if tr.TextureBytes() != 80 {
		t.Errorf("TextureBytes %d", tr.TextureBytes())
	}
}

func TestTrafficShare(t *testing.T) {
	var tr Traffic
	if tr.Share(ClassTexture) != 0 {
		t.Error("empty traffic share should be 0")
	}
	tr.Record(ClassTexture, Read, 75)
	tr.Record(ClassColor, Write, 25)
	if s := tr.Share(ClassTexture); s != 0.75 {
		t.Errorf("texture share %g want 0.75", s)
	}
}

func TestTrafficAdd(t *testing.T) {
	var a, b Traffic
	a.Record(ClassFrame, Write, 10)
	b.Record(ClassFrame, Write, 20)
	b.Record(ClassGeometry, Read, 5)
	a.Add(&b)
	if a.ClassTotal(ClassFrame) != 30 || a.ClassTotal(ClassGeometry) != 5 {
		t.Fatalf("add wrong: frame=%d geo=%d", a.ClassTotal(ClassFrame), a.ClassTotal(ClassGeometry))
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 64 || LineAddr(130) != 128 {
		t.Fatal("LineAddr rounding wrong")
	}
}

func TestLinesCovered(t *testing.T) {
	cases := []struct {
		addr uint64
		size uint32
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{60, 8, 2}, // straddles a boundary
		{64, 128, 2},
	}
	for _, c := range cases {
		if got := LinesCovered(c.addr, c.size); got != c.want {
			t.Errorf("LinesCovered(%d,%d)=%d want %d", c.addr, c.size, got, c.want)
		}
	}
}

func TestLinesCoveredProperty(t *testing.T) {
	// Property: every byte of [addr, addr+size) lies within the counted
	// line span, and the count is minimal.
	err := quick.Check(func(addrRaw uint32, sizeRaw uint16) bool {
		addr := uint64(addrRaw)
		size := uint32(sizeRaw)
		n := LinesCovered(addr, size)
		if size == 0 {
			return n == 0
		}
		first := LineAddr(addr)
		last := LineAddr(addr + uint64(size) - 1)
		return uint64(n) == (last-first)/LineSize+1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestClassStrings(t *testing.T) {
	names := map[Class]string{
		ClassTexture:  "texture",
		ClassGeometry: "geometry",
		ClassZ:        "z-test",
		ClassColor:    "color",
		ClassFrame:    "frame",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String()=%q want %q", c, c.String(), want)
		}
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("kind strings wrong")
	}
}

func TestRegionsDisjoint(t *testing.T) {
	regions := []uint64{RegionTexture, RegionVertex, RegionDepth, RegionColor, RegionFrame}
	for i := 1; i < len(regions); i++ {
		if regions[i] <= regions[i-1] {
			t.Fatalf("regions not strictly increasing at %d", i)
		}
		if regions[i]-regions[i-1] < 1<<30 {
			t.Fatalf("regions %d and %d closer than 1GiB", i-1, i)
		}
	}
}

func TestTrafficJSONRoundTrip(t *testing.T) {
	var tr Traffic
	tr.Record(ClassTexture, Read, 64)
	tr.Record(ClassTexture, Write, 16)
	tr.Record(ClassZ, Read, 128)
	tr.Record(ClassColor, Write, 32)

	data, err := json.Marshal(&tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Traffic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != tr {
		t.Fatalf("round-trip mismatch: doc %s restored to %v, want %v", data, back, tr)
	}

	// Unknown classes in the document are skipped, not an error (forward
	// compatibility with documents from a newer class set).
	var fut Traffic
	if err := json.Unmarshal([]byte(`{"texture":[1,2],"holograms":[3,4]}`), &fut); err != nil {
		t.Fatal(err)
	}
	if fut.Bytes(ClassTexture, Read) != 1 || fut.Bytes(ClassTexture, Write) != 2 {
		t.Fatalf("known class not restored: %+v", fut)
	}
	if fut.Total() != 3 {
		t.Fatalf("unknown class leaked into totals: %d", fut.Total())
	}
}
