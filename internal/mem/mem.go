// Package mem defines the memory transaction model shared by every memory
// backend in the simulator: request/response types, traffic accounting by
// access class (the breakdown of Fig. 2 in the paper), and the global
// address-space layout used to place textures, vertex buffers, the depth
// buffer and the color/frame buffers.
package mem

import (
	"encoding/json"
	"fmt"
)

// Class labels a memory access with the pipeline stage that produced it.
// These are the five categories of the paper's Fig. 2 bandwidth breakdown.
type Class uint8

const (
	// ClassTexture is a texel fetch issued during texture filtering.
	ClassTexture Class = iota
	// ClassGeometry is a vertex/index fetch issued by the vertex fetcher.
	ClassGeometry
	// ClassZ is a depth-buffer read or write issued by the Z test.
	ClassZ
	// ClassColor is a color-buffer read or write issued per fragment.
	ClassColor
	// ClassFrame is a frame-buffer resolve/present access.
	ClassFrame
	// NumClasses is the number of access classes.
	NumClasses
)

// String returns the human-readable class name used in tables.
func (c Class) String() string {
	switch c {
	case ClassTexture:
		return "texture"
	case ClassGeometry:
		return "geometry"
	case ClassZ:
		return "z-test"
	case ClassColor:
		return "color"
	case ClassFrame:
		return "frame"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a memory read.
	Read Kind = iota
	// Write is a memory write.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Request is one memory transaction presented to a backend.
type Request struct {
	// Addr is the byte address of the first byte accessed.
	Addr uint64
	// Size is the transaction size in bytes (usually one cache line).
	Size uint32
	// Class labels the producing pipeline stage.
	Class Class
	// Kind is Read or Write.
	Kind Kind
}

// Traffic accounts bytes moved between the GPU and the memory device,
// split by class and direction. It is the measurement behind Fig. 2 and
// Fig. 12 of the paper.
type Traffic struct {
	bytes [NumClasses][2]uint64
}

// Record adds a transaction of the given class/kind/size.
func (t *Traffic) Record(class Class, kind Kind, size uint32) {
	t.bytes[class][kind] += uint64(size)
}

// Bytes returns the byte count for one class and direction.
func (t *Traffic) Bytes(class Class, kind Kind) uint64 {
	return t.bytes[class][kind]
}

// ClassTotal returns read+write bytes for one class.
func (t *Traffic) ClassTotal(class Class) uint64 {
	return t.bytes[class][Read] + t.bytes[class][Write]
}

// Total returns all bytes moved across every class.
func (t *Traffic) Total() uint64 {
	var s uint64
	for c := Class(0); c < NumClasses; c++ {
		s += t.ClassTotal(c)
	}
	return s
}

// TextureBytes returns the texture-class byte total (the Fig. 12 metric).
func (t *Traffic) TextureBytes() uint64 { return t.ClassTotal(ClassTexture) }

// Add merges the counts of o into t.
func (t *Traffic) Add(o *Traffic) {
	for c := 0; c < int(NumClasses); c++ {
		t.bytes[c][0] += o.bytes[c][0]
		t.bytes[c][1] += o.bytes[c][1]
	}
}

// MarshalJSON encodes the per-class [read, write] byte counts keyed by
// class name, so traffic accounting survives the durable result-store
// round trip despite the unexported array.
func (t Traffic) MarshalJSON() ([]byte, error) {
	m := make(map[string][2]uint64, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		m[c.String()] = [2]uint64{t.bytes[c][Read], t.bytes[c][Write]}
	}
	return json.Marshal(m)
}

// UnmarshalJSON restores counts written by MarshalJSON. Unknown class
// names are ignored and absent classes stay zero, so documents from older
// or newer class sets still load.
func (t *Traffic) UnmarshalJSON(data []byte) error {
	var m map[string][2]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*t = Traffic{}
	for c := Class(0); c < NumClasses; c++ {
		if v, ok := m[c.String()]; ok {
			t.bytes[c][Read], t.bytes[c][Write] = v[0], v[1]
		}
	}
	return nil
}

// Share returns the fraction (0..1) of total traffic contributed by class c;
// 0 when no traffic has been recorded.
func (t *Traffic) Share(c Class) float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return float64(t.ClassTotal(c)) / float64(total)
}

// Address-space layout. The simulator places every surface in one flat
// physical address space; region bases are spaced far apart so streams map
// to distinct rows/banks like separate surfaces would on real hardware.
const (
	// LineSize is the memory transaction granularity in bytes.
	LineSize = 64

	// RequestOverheadBytes is the command/address packet cost accounted
	// per transaction: the paper's traffic metric counts "total transmit
	// bytes of the texture requests", i.e. requests as well as data.
	RequestOverheadBytes = 16

	// RegionTexture is the base address of texture storage.
	RegionTexture uint64 = 0x0000_0000_0000
	// RegionVertex is the base address of vertex/index buffers.
	RegionVertex uint64 = 0x0040_0000_0000
	// RegionDepth is the base address of the depth buffer.
	RegionDepth uint64 = 0x0060_0000_0000
	// RegionColor is the base address of the color buffer.
	RegionColor uint64 = 0x0070_0000_0000
	// RegionFrame is the base address of the resolved frame buffer.
	RegionFrame uint64 = 0x0078_0000_0000
)

// LineAddr rounds addr down to its containing line.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(LineSize-1) }

// LinesCovered returns how many LineSize lines the byte range
// [addr, addr+size) touches.
func LinesCovered(addr uint64, size uint32) int {
	if size == 0 {
		return 0
	}
	first := LineAddr(addr)
	last := LineAddr(addr + uint64(size) - 1)
	return int((last-first)/LineSize) + 1
}

// Backend is a timing model for a memory device. Requests must be presented
// with non-decreasing `now` values (the simulator's global cycle cursor);
// the backend returns the cycle at which the transaction's data is available
// (reads) or accepted (writes).
type Backend interface {
	// Access performs one transaction at GPU cycle `now` and returns its
	// completion cycle.
	Access(now int64, req Request) int64
	// Name identifies the backend ("gddr5", "hmc").
	Name() string
	// PeakBandwidth returns the theoretical external peak in bytes/GPU-cycle.
	PeakBandwidth() float64
	// BusyUntil returns the latest completion horizon scheduled so far.
	BusyUntil() int64
	// Reset clears all scheduling state and statistics.
	Reset()
}
