package suite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Schema identifies the suite document layout.
const Schema = "pim-render/suite/v1"

// Tiers a case may declare. The zero value (no tier) is always selected
// unless a filter asks for a specific tier.
const (
	TierSmoke    = "smoke"
	TierStandard = "standard"
	TierExtended = "extended"
)

// Suite is a declarative scenario set: named cases, each carrying one
// canonical Spec plus selection metadata, with optional per-metric golden
// tolerances. Scenario coverage grows by adding suite files, not Go code.
type Suite struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Defaults, when present, seeds every case's spec: a case field with a
	// zero value inherits the default. Resolution ladders set game knobs
	// once and let cases override only width/height.
	Defaults *Spec `json:"defaults,omitempty"`
	// Tolerances maps "<case-id>.<metric>" to a relative tolerance for
	// golden-baseline checking, overriding the checker default for that one
	// comparison (same shape as golden tolerances.json files).
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
	Cases      []Case             `json:"cases"`
}

// Case is one scenario of a suite.
type Case struct {
	// ID names the case uniquely within the suite; it becomes the golden
	// baseline filename and the per-case label in farm job listings.
	ID string `json:"id"`
	// Tags are free-form selection labels ("doom3", "ladder", "aniso").
	Tags []string `json:"tags,omitempty"`
	// Tier buckets the case by cost ("smoke", "standard", "extended").
	Tier string `json:"tier,omitempty"`
	// Difficulty buckets the case by how hard the scenario stresses the
	// simulator ("easy", "medium", "hard").
	Difficulty string `json:"difficulty,omitempty"`
	// Spec is the canonical simulation spec the case runs.
	Spec Spec `json:"spec"`
}

// HasTag reports whether the case carries the tag (case-insensitive).
func (c *Case) HasTag(tag string) bool {
	for _, t := range c.Tags {
		if strings.EqualFold(t, tag) {
			return true
		}
	}
	return false
}

// Parse decodes and validates a suite/v1 document. Decoding is strict:
// unknown fields anywhere in the document are rejected, so a misspelled
// knob fails the load instead of silently running the default.
func Parse(data []byte) (*Suite, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("suite: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a suite file.
func Load(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("suite: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// validate checks the structural invariants the loaders guarantee: schema,
// a name, at least one case, unique well-formed case IDs, resolvable
// specs, and tolerance overrides that reference real cases with positive
// values.
func (s *Suite) validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("suite: schema %q (want %q)", s.Schema, Schema)
	}
	if s.Name == "" {
		return fmt.Errorf("suite: missing name")
	}
	if len(s.Cases) == 0 {
		return fmt.Errorf("suite %s: no cases", s.Name)
	}
	ids := make(map[string]bool, len(s.Cases))
	for i := range s.Cases {
		c := &s.Cases[i]
		if c.ID == "" {
			return fmt.Errorf("suite %s: case %d has no id", s.Name, i)
		}
		if strings.ContainsAny(c.ID, `/\ `) {
			return fmt.Errorf("suite %s: case id %q must not contain slashes or spaces (it names a golden baseline file)", s.Name, c.ID)
		}
		if ids[c.ID] {
			return fmt.Errorf("suite %s: duplicate case id %q", s.Name, c.ID)
		}
		ids[c.ID] = true
		spec := s.caseSpec(c)
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("suite %s: case %s: %w", s.Name, c.ID, err)
		}
	}
	for key, tol := range s.Tolerances {
		caseID, metric, ok := strings.Cut(key, ".")
		if !ok || metric == "" {
			return fmt.Errorf("suite %s: tolerance key %q is not \"<case-id>.<metric>\"", s.Name, key)
		}
		if !ids[caseID] {
			return fmt.Errorf("suite %s: tolerance %q references unknown case %q", s.Name, key, caseID)
		}
		if tol <= 0 {
			return fmt.Errorf("suite %s: tolerance %q must be positive, got %g", s.Name, key, tol)
		}
	}
	return nil
}

// caseSpec materializes a case's effective spec: the suite defaults with
// the case's non-zero fields layered on top.
func (s *Suite) caseSpec(c *Case) Spec {
	if s.Defaults == nil {
		return c.Spec
	}
	spec := *s.Defaults
	spec.Schema = "" // the envelope already identified the document
	overlaySpec(&spec, &c.Spec)
	return spec
}

// overlaySpec copies every non-zero field of src over dst. Boolean knobs
// are or-ed: a default of true cannot be un-set per case (declare such
// knobs per case instead of in defaults).
func overlaySpec(dst, src *Spec) {
	if src.Game != "" {
		dst.Game = src.Game
	}
	if src.Width != 0 {
		dst.Width = src.Width
	}
	if src.Height != 0 {
		dst.Height = src.Height
	}
	if src.Design != "" {
		dst.Design = src.Design
	}
	if src.AngleThreshold != 0 {
		dst.AngleThreshold = src.AngleThreshold
	}
	if src.FrameIndex != 0 {
		dst.FrameIndex = src.FrameIndex
	}
	if src.Frames != 0 {
		dst.Frames = src.Frames
	}
	if src.MTUs != 0 {
		dst.MTUs = src.MTUs
	}
	if src.HMCCubes != 0 {
		dst.HMCCubes = src.HMCCubes
	}
	if src.Shards != 0 {
		dst.Shards = src.Shards
	}
	if src.Class != "" {
		dst.Class = src.Class
	}
	dst.DisableAniso = dst.DisableAniso || src.DisableAniso
	dst.LinearLayout = dst.LinearLayout || src.LinearLayout
	dst.DisableConsolidation = dst.DisableConsolidation || src.DisableConsolidation
	dst.Compressed = dst.Compressed || src.Compressed
	dst.Profile = dst.Profile || src.Profile
}

// Filter selects cases by metadata. Zero-value fields match everything;
// set fields must all match (AND semantics). Tags require every listed tag
// to be present on the case.
type Filter struct {
	// Tags the case must carry (all of them, case-insensitive).
	Tags []string
	// Tier the case must declare (case-insensitive exact match).
	Tier string
	// Difficulty the case must declare (case-insensitive exact match).
	Difficulty string
}

// Matches reports whether the case passes the filter.
func (f Filter) Matches(c *Case) bool {
	for _, tag := range f.Tags {
		if !c.HasTag(tag) {
			return false
		}
	}
	if f.Tier != "" && !strings.EqualFold(f.Tier, c.Tier) {
		return false
	}
	if f.Difficulty != "" && !strings.EqualFold(f.Difficulty, c.Difficulty) {
		return false
	}
	return true
}

// Select returns the suite's cases passing the filter, in declaration
// order, each with its effective (defaults-merged) spec materialized.
func (s *Suite) Select(f Filter) []Case {
	var out []Case
	for i := range s.Cases {
		c := s.Cases[i]
		if !f.Matches(&c) {
			continue
		}
		c.Spec = s.caseSpec(&s.Cases[i])
		out = append(out, c)
	}
	return out
}
