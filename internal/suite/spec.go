// Package suite is the declarative scenario layer: a canonical
// pim-render/spec/v1 simulation-spec type that every surface (pimsim and
// paperbench flags, pimfarm job bodies and journal records, pimload
// generators, distributed-worker grants) constructs and consumes, plus the
// pim-render/suite/v1 suite format that bundles many specs into a named,
// filterable scenario set with golden-baseline tolerances.
//
// The one-true-mapping rule: Spec.Resolve is the only place in the tree
// where a declarative spec becomes a (workload.Workload, core.Options,
// core.CacheKey) triple. Surfaces never hand-map their own structs onto
// core.Options — they build a Spec and resolve it, so two surfaces given
// the same spec always key, dedup, and cache identically.
package suite

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/workload"
)

// SpecSchema identifies the canonical simulation-spec document.
const SpecSchema = "pim-render/spec/v1"

// Spec is the canonical declarative description of one simulation: which
// workload, which design, and every ablation knob the simulator exposes.
// Its JSON form is the pimfarm POST /v1/jobs body, the dist lease grant
// spec, the journal record spec, and the per-case "spec" object in suite
// files — one wire format everywhere.
//
// Shards, Profile and Class are host/scheduling knobs: they never change
// simulated results and are excluded from the cache identity, so equal
// specs differing only in them collapse onto one computation.
type Spec struct {
	// Schema optionally self-identifies the document (SpecSchema). Empty is
	// accepted everywhere a Spec is embedded in a larger document; when set
	// it must match SpecSchema.
	Schema string `json:"schema,omitempty"`

	// Game and the render resolution select the workload.
	Game   string `json:"game"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	// Design names the architecture (config.ParseDesign spellings; empty =
	// baseline).
	Design string `json:"design,omitempty"`

	AngleThreshold       float32 `json:"angle_threshold,omitempty"`
	DisableAniso         bool    `json:"disable_aniso,omitempty"`
	FrameIndex           int     `json:"frame_index,omitempty"`
	Frames               int     `json:"frames,omitempty"`
	LinearLayout         bool    `json:"linear_layout,omitempty"`
	DisableConsolidation bool    `json:"disable_consolidation,omitempty"`
	MTUs                 int     `json:"mtus,omitempty"`
	Compressed           bool    `json:"compressed,omitempty"`
	HMCCubes             int     `json:"hmc_cubes,omitempty"`

	// Shards is the host-parallelism knob (worker goroutines per frame);
	// results are byte-identical at any value.
	Shards int `json:"shards,omitempty"`
	// Profile opts a pimfarm job into frame-anatomy capture. Runtime-only.
	Profile bool `json:"profile,omitempty"`
	// Class is the admission priority-class label ("interactive", "batch");
	// scheduling-only, empty lets the server infer one.
	Class string `json:"class,omitempty"`
}

// Resolved is a spec bound to the simulator: the concrete workload, the
// options the simulator runs, and the cache identity the farm, run cache
// and durable store all key on.
type Resolved struct {
	Workload workload.Workload
	Options  core.Options
	// Key is core.CacheKey(Workload, Options) — the dedup/cache identity.
	Key string
}

// Resolve validates the spec and maps it onto the simulator. This is the
// single Spec → core.Options/CacheKey construction path in the tree; every
// surface that accepts a declarative spec funnels through it.
func (s *Spec) Resolve() (Resolved, error) {
	if s.Schema != "" && s.Schema != SpecSchema {
		return Resolved{}, fmt.Errorf("spec schema %q (want %q)", s.Schema, SpecSchema)
	}
	design, err := config.ParseDesign(s.Design)
	if err != nil {
		return Resolved{}, err
	}
	wl, err := workload.Get(s.Game, s.Width, s.Height)
	if err != nil {
		return Resolved{}, err
	}
	opts := core.Options{
		Design:               design,
		AngleThreshold:       s.AngleThreshold,
		DisableAniso:         s.DisableAniso,
		FrameIndex:           s.FrameIndex,
		Frames:               s.Frames,
		LinearLayout:         s.LinearLayout,
		DisableConsolidation: s.DisableConsolidation,
		MTUs:                 s.MTUs,
		Compressed:           s.Compressed,
		HMCCubes:             s.HMCCubes,
		Shards:               s.Shards,
	}
	if err := core.ValidateOptions(opts); err != nil {
		return Resolved{}, err
	}
	return Resolved{Workload: wl, Options: opts, Key: core.CacheKey(wl, opts)}, nil
}

// Validate reports whether the spec resolves to a runnable configuration.
func (s *Spec) Validate() error {
	_, err := s.Resolve()
	return err
}

// Label names the spec in job listings and trace spans ("game@WxH/Design").
func (s *Spec) Label() string {
	design, err := config.ParseDesign(s.Design)
	if err != nil {
		return fmt.Sprintf("%s@%dx%d/%s", s.Game, s.Width, s.Height, s.Design)
	}
	return fmt.Sprintf("%s@%dx%d/%s", s.Game, s.Width, s.Height, design)
}

// ParseSpec decodes a standalone spec/v1 JSON document strictly: unknown
// fields are rejected so typos ("frame_idx") fail loudly instead of
// silently simulating the wrong configuration.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("suite: spec: %w", err)
	}
	return &sp, nil
}
