package suite

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestSuiteRunMatchesSerial is the byte-identity contract of the runner:
// a suite run (farm fan-out + cached aggregation) must produce exactly the
// results of resolving each case's spec and simulating it directly, and
// the rendered experiment document must be deterministic.
func TestSuiteRunMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates three frames")
	}
	doc := `{
	  "schema": "pim-render/suite/v1",
	  "name": "identity",
	  "defaults": {"width": 160, "height": 120},
	  "cases": [
	    {"id": "wolf-base", "spec": {"game": "wolf"}},
	    {"id": "riddick-bpim", "spec": {"game": "riddick", "design": "bpim"}},
	    {"id": "doom3-atfim", "spec": {"game": "doom3", "design": "atfim"}}
	  ]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	r := Runner{}
	results, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, cr := range results {
		if cr.Case.ID != s.Cases[i].ID {
			t.Fatalf("result %d is case %s, want declaration order", i, cr.Case.ID)
		}
		// The serial reference: an uncached direct simulation of the same
		// resolved spec.
		ref, err := core.RunContext(context.Background(), cr.Resolved.Workload, cr.Resolved.Options)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pix(ref.Image), pix(cr.Result.Image)) {
			t.Fatalf("case %s: image differs from serial run", cr.Case.ID)
		}
		if !reflect.DeepEqual(ref.Metrics(), cr.Result.Metrics()) {
			t.Fatalf("case %s: metrics differ from serial run", cr.Case.ID)
		}
	}

	// Rendering determinism: encoding the document twice is byte-identical
	// (the golden checker depends on stable row order).
	var a, b bytes.Buffer
	if err := json.NewEncoder(&a).Encode(results.ExperimentSet(s.Name)); err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(&b).Encode(results.ExperimentSet(s.Name)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("experiment document rendering is not deterministic")
	}
}

// pix flattens a frame to bytes for comparison.
func pix(img []uint32) []byte {
	out := make([]byte, 0, len(img)*4)
	for _, p := range img {
		out = append(out, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	return out
}

func TestRunnerRejectsEmptySelection(t *testing.T) {
	s, err := Parse([]byte(validSuite))
	if err != nil {
		t.Fatal(err)
	}
	r := Runner{Filter: Filter{Tier: "extended"}}
	if _, err := r.Run(context.Background(), s); err == nil {
		t.Fatal("empty selection accepted")
	}
}
