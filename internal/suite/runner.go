package suite

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/farm"
	"repro/internal/obs"
	"repro/internal/store"
)

// CaseResult is one completed suite case.
type CaseResult struct {
	Case     Case
	Resolved Resolved
	Result   *core.Result
}

// CaseResults is a completed suite run: every selected case, in suite
// declaration order.
type CaseResults []CaseResult

// Runner executes suites on the shared sweep farm. Cases fan out across
// the farm's workers (deduped by cache key, memoized through the run
// cache and durable store), then aggregate serially in declaration order,
// so a suite run is byte-identical to running each case's spec alone —
// at any parallelism.
type Runner struct {
	// Filter selects which cases run; the zero value runs all of them.
	Filter Filter
}

// Run executes the suite's selected cases and returns their results in
// declaration order. All specs are resolved (and thus validated) before
// any simulation starts, so a bad case fails the run without burning
// compute on its siblings.
func (r *Runner) Run(ctx context.Context, s *Suite) (CaseResults, error) {
	cases := s.Select(r.Filter)
	if len(cases) == 0 {
		return nil, fmt.Errorf("suite %s: no cases match the filter", s.Name)
	}
	resolved := make([]Resolved, len(cases))
	for i := range cases {
		rv, err := cases[i].Spec.Resolve()
		if err != nil {
			return nil, fmt.Errorf("suite %s: case %s: %w", s.Name, cases[i].ID, err)
		}
		resolved[i] = rv
	}

	// Fan out: warm the run cache through the sweep farm. Identical cases
	// (within this suite or racing with a concurrent sweep) collapse via
	// the farm's singleflight plus RunCached's.
	if len(cases) > 1 {
		f := core.SweepFarm()
		jobs := make([]*farm.Job, 0, len(cases))
		for i := range cases {
			rv := resolved[i]
			j, err := f.Submit(ctx, farm.Task{
				Key:   rv.Key,
				Label: s.Name + "/" + cases[i].ID,
				Run: func(runCtx context.Context) (any, error) {
					return core.RunCachedContext(runCtx, rv.Workload, rv.Options)
				},
			})
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
		for _, j := range jobs {
			if _, err := j.Wait(ctx); err != nil {
				return nil, err
			}
		}
	}

	// Aggregate serially in declaration order. These are cache hits after
	// the fan-out; if an entry was evicted meanwhile RunCached recomputes
	// it, so correctness never depends on cache residency.
	out := make(CaseResults, 0, len(cases))
	for i := range cases {
		res, err := core.RunCachedContext(ctx, resolved[i].Workload, resolved[i].Options)
		if err != nil {
			return nil, fmt.Errorf("suite %s: case %s: %w", s.Name, cases[i].ID, err)
		}
		out = append(out, CaseResult{Case: cases[i], Resolved: resolved[i], Result: res})
	}
	return out, nil
}

// ExperimentSet renders the run as a pim-render/experiments/v1 document:
// one experiment per case (named by case ID) whose rows and summary carry
// every counter and gauge of the case's metrics snapshot. The rendering is
// deterministic, so equal results produce byte-identical documents and the
// golden-baseline machinery (store.WriteBaselines / store.Check) applies
// to suites unchanged.
func (rs CaseResults) ExperimentSet(suiteName string) *obs.ExperimentSet {
	set := obs.NewExperimentSet(suiteName)
	for _, cr := range rs {
		set.Experiments = append(set.Experiments, cr.Experiment())
	}
	return set
}

// Experiment renders one case result as an experiment table.
func (cr *CaseResult) Experiment() obs.ExperimentResult {
	m := cr.Result.Metrics()
	exp := obs.ExperimentResult{
		Name:    cr.Case.ID,
		Title:   cr.Case.Spec.Label(),
		Columns: []string{"Metric", "Value"},
		Summary: map[string]float64{},
	}
	counters := make([]string, 0, len(m.Counters))
	for name := range m.Counters {
		counters = append(counters, name)
	}
	sort.Strings(counters)
	gauges := make([]string, 0, len(m.Gauges))
	for name := range m.Gauges {
		gauges = append(gauges, name)
	}
	sort.Strings(gauges)

	exp.Rows = append(exp.Rows, []string{"cycles", strconv.FormatInt(m.Cycles, 10)})
	exp.Summary["cycles"] = float64(m.Cycles)
	for _, name := range counters {
		v := m.Counters[name]
		exp.Rows = append(exp.Rows, []string{name, strconv.FormatUint(v, 10)})
		exp.Summary[name] = float64(v)
	}
	for _, name := range gauges {
		v := m.Gauges[name]
		exp.Rows = append(exp.Rows, []string{name, strconv.FormatFloat(v, 'g', -1, 64)})
		exp.Summary[name] = v
	}
	return exp
}

// Tolerance merges the suite's per-metric overrides into base for golden
// checking. Entries already present in base.PerMetric win, so a
// tolerances.json in the golden directory or an explicit caller override
// still takes precedence over the suite file.
func (s *Suite) Tolerance(base store.Tolerance) store.Tolerance {
	if len(s.Tolerances) == 0 {
		return base
	}
	merged := make(map[string]float64, len(s.Tolerances)+len(base.PerMetric))
	for k, v := range s.Tolerances {
		merged[k] = v
	}
	for k, v := range base.PerMetric {
		merged[k] = v
	}
	base.PerMetric = merged
	return base
}
