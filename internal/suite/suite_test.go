package suite

import (
	"strings"
	"testing"

	"repro/internal/store"
)

// minimal valid suite document used as the mutation base in error tests.
const validSuite = `{
  "schema": "pim-render/suite/v1",
  "name": "t",
  "defaults": {"width": 160, "height": 120},
  "cases": [
    {"id": "a", "tags": ["doom3", "fast"], "tier": "smoke", "spec": {"game": "doom3"}},
    {"id": "b", "tags": ["hl2"], "tier": "standard", "difficulty": "hard",
     "spec": {"game": "hl2", "design": "atfim", "width": 320, "height": 240}}
  ]
}`

func TestParseValidSuite(t *testing.T) {
	s, err := Parse([]byte(validSuite))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "t" || len(s.Cases) != 2 {
		t.Fatalf("parsed %q with %d cases", s.Name, len(s.Cases))
	}
	// Defaults overlay: case "a" inherits the resolution, case "b"
	// overrides it.
	sel := s.Select(Filter{})
	if got := sel[0].Spec; got.Width != 160 || got.Height != 120 || got.Game != "doom3" {
		t.Fatalf("case a effective spec %+v", got)
	}
	if got := sel[1].Spec; got.Width != 320 || got.Height != 240 || got.Design != "atfim" {
		t.Fatalf("case b effective spec %+v", got)
	}
}

func TestParseRejectsBadSuites(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown top-level field",
			strings.Replace(validSuite, `"name": "t",`, `"name": "t", "casez": [],`, 1),
			"casez"},
		{"unknown spec field",
			strings.Replace(validSuite, `"game": "doom3"`, `"game": "doom3", "frame_idx": 2`, 1),
			"frame_idx"},
		{"wrong schema",
			strings.Replace(validSuite, "suite/v1", "suite/v2", 1),
			"schema"},
		{"missing name",
			strings.Replace(validSuite, `"name": "t",`, "", 1),
			"missing name"},
		{"no cases",
			`{"schema": "pim-render/suite/v1", "name": "t", "cases": []}`,
			"no cases"},
		{"duplicate case id",
			strings.Replace(validSuite, `"id": "b"`, `"id": "a"`, 1),
			"duplicate case id"},
		{"case id with slash",
			strings.Replace(validSuite, `"id": "a"`, `"id": "a/x"`, 1),
			"slashes or spaces"},
		{"missing case id",
			strings.Replace(validSuite, `"id": "a"`, `"id": ""`, 1),
			"no id"},
		{"unknown game",
			strings.Replace(validSuite, `"game": "doom3"`, `"game": "quake"`, 1),
			"unknown game"},
		{"unresolvable design",
			strings.Replace(validSuite, `"design": "atfim"`, `"design": "gddr7"`, 1),
			"unknown design"},
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c.doc)); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestToleranceValidation(t *testing.T) {
	with := func(tol string) string {
		return strings.Replace(validSuite, `"cases":`, `"tolerances": `+tol+`, "cases":`, 1)
	}
	if _, err := Parse([]byte(with(`{"a.cycles": 0.01}`))); err != nil {
		t.Fatalf("valid tolerance rejected: %v", err)
	}
	bad := []struct{ name, tol, wantErr string }{
		{"no metric part", `{"a": 0.01}`, "<case-id>.<metric>"},
		{"unknown case", `{"zz.cycles": 0.01}`, "unknown case"},
		{"non-positive", `{"a.cycles": 0}`, "must be positive"},
		{"negative", `{"a.cycles": -0.5}`, "must be positive"},
	}
	for _, c := range bad {
		if _, err := Parse([]byte(with(c.tol))); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestToleranceMerge(t *testing.T) {
	s, err := Parse([]byte(strings.Replace(validSuite, `"cases":`,
		`"tolerances": {"a.cycles": 0.05, "b.energy_j": 0.2}, "cases":`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// Explicit base entries win over the suite's overrides.
	base := store.Tolerance{Rel: 1e-6, PerMetric: map[string]float64{"a.cycles": 0.5}}
	got := s.Tolerance(base)
	if got.Rel != 1e-6 {
		t.Fatalf("base Rel clobbered: %g", got.Rel)
	}
	if got.PerMetric["a.cycles"] != 0.5 {
		t.Fatalf("base per-metric entry overridden: %g", got.PerMetric["a.cycles"])
	}
	if got.PerMetric["b.energy_j"] != 0.2 {
		t.Fatalf("suite tolerance not merged: %+v", got.PerMetric)
	}
	if base.PerMetric["b.energy_j"] != 0 {
		t.Fatal("Tolerance mutated the base map")
	}
}

func TestFilterSemantics(t *testing.T) {
	s, err := Parse([]byte(validSuite))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    Filter
		want []string
	}{
		{"everything", Filter{}, []string{"a", "b"}},
		{"one tag", Filter{Tags: []string{"doom3"}}, []string{"a"}},
		{"tag case-insensitive", Filter{Tags: []string{"DOOM3"}}, []string{"a"}},
		{"all tags required", Filter{Tags: []string{"doom3", "hl2"}}, nil},
		{"both tags on one case", Filter{Tags: []string{"doom3", "fast"}}, []string{"a"}},
		{"tier", Filter{Tier: "smoke"}, []string{"a"}},
		{"tier case-insensitive", Filter{Tier: "SMOKE"}, []string{"a"}},
		{"difficulty", Filter{Difficulty: "hard"}, []string{"b"}},
		{"AND across fields", Filter{Tags: []string{"hl2"}, Tier: "smoke"}, nil},
		{"no match", Filter{Tier: "extended"}, nil},
	}
	for _, c := range cases {
		sel := s.Select(c.f)
		var got []string
		for _, cs := range sel {
			got = append(got, cs.ID)
		}
		if len(got) != len(c.want) {
			t.Errorf("%s: selected %v want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: selected %v want %v", c.name, got, c.want)
				break
			}
		}
	}
}

func TestDefaultsBoolOr(t *testing.T) {
	doc := `{
	  "schema": "pim-render/suite/v1",
	  "name": "t",
	  "defaults": {"width": 160, "height": 120, "disable_aniso": true},
	  "cases": [{"id": "a", "spec": {"game": "wolf"}}]
	}`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sp := s.Select(Filter{})[0].Spec; !sp.DisableAniso {
		t.Fatal("boolean default not inherited")
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"game": "doom3", "width": 320, "height": 240, "frame_idx": 1}`)); err == nil {
		t.Fatal("unknown spec field accepted")
	}
	sp, err := ParseSpec([]byte(`{"schema": "pim-render/spec/v1", "game": "doom3", "width": 320, "height": 240}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	sp.Schema = "pim-render/spec/v2"
	if err := sp.Validate(); err == nil {
		t.Fatal("wrong spec schema accepted")
	}
}

func TestSpecLabel(t *testing.T) {
	sp := Spec{Game: "doom3", Width: 640, Height: 480, Design: "atfim"}
	if got := sp.Label(); got != "doom3@640x480/A-TFIM" {
		t.Fatalf("Label()=%q", got)
	}
}
