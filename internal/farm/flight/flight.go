// Package flight implements singleflight call deduplication: concurrent
// calls with the same key collapse into one execution whose result every
// caller shares. It is the primitive behind the farm's job-level dedup and
// core.RunCached's exactly-once in-flight guarantee; it deliberately has no
// dependencies so both layers can use it without import cycles.
package flight

import "sync"

// call is one in-flight (or finished) execution.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group collapses concurrent Do calls with equal keys into a single
// execution. The zero value is ready to use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// Do executes fn once per key among concurrent callers: the first caller
// with a key runs fn; callers arriving while it is in flight wait and
// receive the same result. shared reports whether the result was produced
// by another caller's execution. Once the call completes the key is
// forgotten, so later Do calls run fn again (persistent memoization is the
// caller's job — see farm/lru).
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(call[V])
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}

// InFlight reports how many keys are currently executing.
func (g *Group[V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
