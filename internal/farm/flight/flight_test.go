package flight

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoSequential(t *testing.T) {
	var g Group[int]
	v, err, shared := g.Do("k", func() (int, error) { return 42, nil })
	if v != 42 || err != nil || shared {
		t.Fatalf("Do = (%v, %v, %v), want (42, nil, false)", v, err, shared)
	}
	// The key is forgotten after completion: fn runs again.
	v, _, _ = g.Do("k", func() (int, error) { return 7, nil })
	if v != 7 {
		t.Fatalf("second Do = %d, want 7 (key should be forgotten)", v)
	}
}

func TestDoError(t *testing.T) {
	var g Group[int]
	want := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestDoCollapsesConcurrentCalls(t *testing.T) {
	var g Group[int]
	var execs atomic.Int32
	gate := make(chan struct{})
	started := make(chan struct{})

	// The leader enters fn and blocks on the gate; every other caller must
	// then collapse onto it.
	var wg sync.WaitGroup
	fn := func() (int, error) {
		execs.Add(1)
		close(started)
		<-gate
		return 99, nil
	}
	const callers = 32
	var sharedCount atomic.Int32
	results := make([]int, callers)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := g.Do("k", fn)
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0] = v
	}()
	<-started // leader is inside fn, holding the key in flight

	var entered atomic.Int32
	wg.Add(callers - 1)
	for i := 1; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			entered.Add(1)
			v, err, shared := g.Do("k", fn)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Give every follower time to reach Do before releasing the leader; a
	// straggler arriving after completion would re-execute fn and fail the
	// exactly-once assertion below, so this wait is load-bearing.
	for int(entered.Load()) < callers-1 {
		runtime.Gosched()
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", n)
	}
	if n := sharedCount.Load(); n != callers-1 {
		t.Fatalf("shared for %d callers, want %d", n, callers-1)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d, want 99", i, v)
		}
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after completion, want 0", g.InFlight())
	}
}

func TestDistinctKeysDoNotCollapse(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	var execs atomic.Int32
	for _, k := range []string{"a", "b", "c"} {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, _ := g.Do(k, func() (string, error) {
				execs.Add(1)
				return k, nil
			})
			if v != k {
				t.Errorf("Do(%q) = %q", k, v)
			}
		}()
	}
	wg.Wait()
	if n := execs.Load(); n != 3 {
		t.Fatalf("execs = %d, want 3", n)
	}
}
