package farm

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs/dtrace"
)

// State is a job's position in the queued → running → done lifecycle.
type State int

const (
	// Queued: accepted, waiting for a worker (or for a dedup leader).
	Queued State = iota
	// Running: a worker is executing the task.
	Running
	// Done: finished successfully; Value holds the result.
	Done
	// Failed: finished with an error after exhausting retries.
	Failed
	// Canceled: the farm shut down before the job could run, or the job
	// was canceled (Farm.Cancel) while queued or running.
	Canceled
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Event capacities. The subscriber channel is deeper than the replay log
// so preloading history into a fresh subscription can never block.
const (
	// evLogCap bounds the per-job replay ring: a late subscriber sees at
	// most this many historical events before the live tail.
	evLogCap = 256
	// evSubChanCap is each subscriber channel's buffer; a subscriber this
	// far behind loses events rather than stalling the publisher.
	evSubChanCap = 512
)

// Event is one entry in a job's lifecycle/progress stream (what pimfarm
// serves over GET /v1/jobs/{id}/events). Seq increases by one per event
// within a job, so consumers can detect drops.
type Event struct {
	Seq  int64     `json:"seq"`
	Type string    `json:"type"` // "state", "progress", ...
	Time time.Time `json:"time"`
	Data any       `json:"data,omitempty"`
}

// Job is one submitted task tracked through its lifecycle. All fields are
// guarded; read them through the accessor methods or View.
type Job struct {
	id        string
	label     string
	key       string
	origin    string
	tenant    string
	class     string
	admitWait time.Duration
	trace     string
	meta      any
	run       func(ctx context.Context) (any, error)

	// ctx is the job's execution context, derived from the farm's root at
	// submission; cancel aborts this job alone (Farm.Cancel).
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	value    any
	err      error
	attempts int
	deduped  bool
	cacheHit bool
	tierHit  bool
	canceled bool // Farm.Cancel was called before the job finished
	enqueued time.Time
	started  time.Time
	finished time.Time

	done chan struct{}

	// Event stream state, under its own lock so publishers (worker
	// goroutines, progress callbacks) never contend with job-state reads.
	evMu     sync.Mutex
	evSeq    int64
	evLog    []Event
	evSubs   map[chan Event]struct{}
	evClosed bool
}

// ID returns the farm-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Label returns the human-readable task label.
func (j *Job) Label() string { return j.label }

// Key returns the dedup/cache key ("" when the task opted out).
func (j *Job) Key() string { return j.key }

// Meta returns the caller payload attached at submission.
func (j *Job) Meta() any { return j.meta }

// Origin returns the request origin tag attached at submission ("" when
// the caller set none).
func (j *Job) Origin() string { return j.origin }

// Tenant returns the tenant the job was admitted for ("" when admission
// control is not in front of this farm).
func (j *Job) Tenant() string { return j.tenant }

// Class returns the job's priority class label ("" when unset).
func (j *Job) Class() string { return j.class }

// AdmitWait returns how long the submission waited in the admission
// queue before entering the farm (zero when admission was immediate or
// absent).
func (j *Job) AdmitWait() time.Duration { return j.admitWait }

// Trace returns the job's traceparent context ("" when unsampled).
func (j *Job) Trace() string { return j.trace }

// spanName is the label used in trace spans, qualified with the origin
// and tenant/class so a span in a farm trace can be tied back to the
// request — and the tenant — that caused it.
func (j *Job) spanName() string {
	name := j.label
	if j.origin != "" {
		name += " [" + j.origin + "]"
	}
	if j.tenant != "" {
		name += " {" + j.tenant + "/" + j.class + "}"
	}
	return name
}

// Publish appends an event to the job's stream: it is recorded in the
// bounded replay ring and fanned out to live subscribers (a subscriber
// whose buffer is full loses the event rather than blocking the
// publisher). Publishing to a job whose stream has closed is a no-op.
// Safe for concurrent use; task Run closures may call it freely.
func (j *Job) Publish(typ string, data any) {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	if j.evClosed {
		return
	}
	j.evSeq++
	ev := Event{Seq: j.evSeq, Type: typ, Time: time.Now(), Data: data}
	j.evLog = append(j.evLog, ev)
	if len(j.evLog) > evLogCap {
		j.evLog = append(j.evLog[:0], j.evLog[len(j.evLog)-evLogCap:]...)
	}
	for ch := range j.evSubs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than stall
		}
	}
}

// publishState emits a "state" event carrying the job's current View.
func (j *Job) publishState() { j.Publish("state", j.View()) }

// Subscribe returns a channel of the job's events, starting with a replay
// of the retained history, and a cancel func releasing the subscription.
// The channel is closed when the job reaches a terminal state (after the
// terminal "state" event is delivered) or when cancel is called.
// Subscribing to an already-terminal job replays history and returns an
// already-closed channel.
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.evMu.Lock()
	ch := make(chan Event, evSubChanCap)
	for _, ev := range j.evLog {
		ch <- ev // buffer cap exceeds evLogCap; never blocks
	}
	if j.evClosed {
		close(ch)
		j.evMu.Unlock()
		return ch, func() {}
	}
	if j.evSubs == nil {
		j.evSubs = make(map[chan Event]struct{})
	}
	j.evSubs[ch] = struct{}{}
	j.evMu.Unlock()
	cancel := func() {
		j.evMu.Lock()
		if _, ok := j.evSubs[ch]; ok {
			delete(j.evSubs, ch)
			close(ch)
		}
		j.evMu.Unlock()
	}
	return ch, cancel
}

// closeEvents marks the stream terminal and closes every subscriber
// channel. Later Publish and Subscribe calls observe the closed state.
func (j *Job) closeEvents() {
	j.evMu.Lock()
	j.evClosed = true
	for ch := range j.evSubs {
		close(ch)
	}
	j.evSubs = nil
	j.evMu.Unlock()
}

// compactEvents shrinks a terminal job's replay ring to its final event
// (the terminal "state" record), so long-retained finished jobs stop
// holding their full progress history. A late SSE subscriber still sees
// the job's outcome followed by the stream's "end" event; only the
// per-frame progress trail is gone. No-op while the stream is live.
func (j *Job) compactEvents() {
	j.evMu.Lock()
	defer j.evMu.Unlock()
	if !j.evClosed || len(j.evLog) <= 1 {
		return
	}
	j.evLog = append([]Event(nil), j.evLog[len(j.evLog)-1])
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is canceled, returning the
// task's value and error.
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err
}

// Result returns the value and error of a finished job (zero values while
// the job is still pending).
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err
}

// isCanceled reports whether Farm.Cancel targeted this job.
func (j *Job) isCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// View is a point-in-time, JSON-marshalable summary of a job (what
// pimfarm's GET /v1/jobs endpoints return, minus the result body).
type View struct {
	ID     string `json:"id"`
	Label  string `json:"label,omitempty"`
	Key    string `json:"key,omitempty"`
	Origin string `json:"origin,omitempty"`
	// Tenant and Class identify who the job was admitted for and at what
	// priority; AdmitWaitMS is the time the submission spent in the
	// admission queue (the SLO quantity cmd/pimload aggregates).
	Tenant      string  `json:"tenant,omitempty"`
	Class       string  `json:"class,omitempty"`
	AdmitWaitMS float64 `json:"admit_wait_ms,omitempty"`
	// TraceID is the job's distributed-trace ID (GET /v1/jobs/{id}/trace
	// serves the assembled timeline); empty when the job was unsampled.
	TraceID  string     `json:"trace_id,omitempty"`
	State    string     `json:"state"`
	Error    string     `json:"error,omitempty"`
	Attempts int        `json:"attempts,omitempty"`
	Deduped  bool       `json:"deduped,omitempty"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	TierHit  bool       `json:"tier_hit,omitempty"`
	Enqueued time.Time  `json:"enqueued"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// traceID extracts the trace-ID component of a traceparent context.
func traceID(trace string) string {
	c, ok := dtrace.Parse(trace)
	if !ok {
		return ""
	}
	return c.TraceID
}

// View snapshots the job.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:          j.id,
		Label:       j.label,
		Key:         j.key,
		Origin:      j.origin,
		Tenant:      j.tenant,
		Class:       j.class,
		AdmitWaitMS: float64(j.admitWait) / float64(time.Millisecond),
		TraceID:     traceID(j.trace),
		State:       j.state.String(),
		Attempts:    j.attempts,
		Deduped:     j.deduped,
		CacheHit:    j.cacheHit,
		TierHit:     j.tierHit,
		Enqueued:    j.enqueued,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
