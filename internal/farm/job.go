package farm

import (
	"context"
	"sync"
	"time"
)

// State is a job's position in the queued → running → done lifecycle.
type State int

const (
	// Queued: accepted, waiting for a worker (or for a dedup leader).
	Queued State = iota
	// Running: a worker is executing the task.
	Running
	// Done: finished successfully; Value holds the result.
	Done
	// Failed: finished with an error after exhausting retries.
	Failed
	// Canceled: the farm shut down before the job could run, or the job
	// was canceled (Farm.Cancel) while queued or running.
	Canceled
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Job is one submitted task tracked through its lifecycle. All fields are
// guarded; read them through the accessor methods or View.
type Job struct {
	id    string
	label string
	key   string
	meta  any
	run   func(ctx context.Context) (any, error)

	// ctx is the job's execution context, derived from the farm's root at
	// submission; cancel aborts this job alone (Farm.Cancel).
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	value    any
	err      error
	attempts int
	deduped  bool
	cacheHit bool
	tierHit  bool
	canceled bool // Farm.Cancel was called before the job finished
	enqueued time.Time
	started  time.Time
	finished time.Time

	done chan struct{}
}

// ID returns the farm-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Label returns the human-readable task label.
func (j *Job) Label() string { return j.label }

// Key returns the dedup/cache key ("" when the task opted out).
func (j *Job) Key() string { return j.key }

// Meta returns the caller payload attached at submission.
func (j *Job) Meta() any { return j.meta }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is canceled, returning the
// task's value and error.
func (j *Job) Wait(ctx context.Context) (any, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err
}

// Result returns the value and error of a finished job (zero values while
// the job is still pending).
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err
}

// isCanceled reports whether Farm.Cancel targeted this job.
func (j *Job) isCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// View is a point-in-time, JSON-marshalable summary of a job (what
// pimfarm's GET /v1/jobs endpoints return, minus the result body).
type View struct {
	ID       string     `json:"id"`
	Label    string     `json:"label,omitempty"`
	Key      string     `json:"key,omitempty"`
	State    string     `json:"state"`
	Error    string     `json:"error,omitempty"`
	Attempts int        `json:"attempts,omitempty"`
	Deduped  bool       `json:"deduped,omitempty"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	TierHit  bool       `json:"tier_hit,omitempty"`
	Enqueued time.Time  `json:"enqueued"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// View snapshots the job.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:       j.id,
		Label:    j.label,
		Key:      j.key,
		State:    j.state.String(),
		Attempts: j.attempts,
		Deduped:  j.deduped,
		CacheHit: j.cacheHit,
		TierHit:  j.tierHit,
		Enqueued: j.enqueued,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
