package farm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCancelQueuedJob: canceling a job that never reached a worker
// completes it Canceled immediately, and the worker that later dequeues
// it skips it.
func TestCancelQueuedJob(t *testing.T) {
	f := New(Config{Workers: 1, QueueDepth: 8})
	defer f.Close(context.Background())

	release := make(chan struct{})
	blocker, err := f.Submit(context.Background(), Task{
		Label: "blocker",
		Run: func(context.Context) (any, error) {
			<-release
			return "done", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := f.Submit(context.Background(), Task{
		Label: "queued",
		Run:   func(context.Context) (any, error) { return "never", nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	if !f.Cancel(queued.ID()) {
		t.Fatal("Cancel(queued) = false, want true")
	}
	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job Wait err = %v, want context.Canceled", err)
	}
	if s := queued.State(); s != Canceled {
		t.Fatalf("canceled job state = %v, want Canceled", s)
	}
	// Second cancel of a terminal job is a no-op.
	if f.Cancel(queued.ID()) {
		t.Fatal("Cancel of terminal job = true, want false")
	}

	close(release)
	if v, err := blocker.Wait(context.Background()); err != nil || v != "done" {
		t.Fatalf("blocker = %v, %v", v, err)
	}
	if c := f.Counters(); c.Canceled != 1 || c.Done != 1 {
		t.Fatalf("counters canceled=%d done=%d, want 1/1", c.Canceled, c.Done)
	}
}

// TestCancelRunningJob: canceling a running job fires its context; when
// the Run returns the error, the job completes Canceled (not Failed).
func TestCancelRunningJob(t *testing.T) {
	f := New(Config{Workers: 1})
	defer f.Close(context.Background())

	started := make(chan struct{})
	j, err := f.Submit(context.Background(), Task{
		Label: "running",
		Run: func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !f.Cancel(j.ID()) {
		t.Fatal("Cancel(running) = false, want true")
	}
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	if s := j.State(); s != Canceled {
		t.Fatalf("state = %v, want Canceled", s)
	}
	if c := f.Counters(); c.Canceled != 1 || c.Failed != 0 {
		t.Fatalf("counters canceled=%d failed=%d, want 1/0", c.Canceled, c.Failed)
	}
}

// TestCancelDoesNotRetry: a canceled job is never retried, even with a
// generous retry budget.
func TestCancelDoesNotRetry(t *testing.T) {
	f := New(Config{Workers: 1, Retries: 5, Backoff: time.Millisecond})
	defer f.Close(context.Background())

	started := make(chan struct{})
	j, err := f.Submit(context.Background(), Task{
		Label: "cancel-no-retry",
		Run: func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, errors.New("transient-looking failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !f.Cancel(j.ID()) {
		t.Fatal("Cancel = false, want true")
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("canceled job reported no error")
	}
	if s := j.State(); s != Canceled {
		t.Fatalf("state = %v, want Canceled", s)
	}
	v := j.View()
	if v.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (canceled jobs must not retry)", v.Attempts)
	}
	if c := f.Counters(); c.Retries != 0 {
		t.Fatalf("farm retries = %d, want 0", c.Retries)
	}
}

// TestCancelUnknownJob: unknown ids are rejected without effect.
func TestCancelUnknownJob(t *testing.T) {
	f := New(Config{Workers: 1})
	defer f.Close(context.Background())
	if f.Cancel("job-999999") {
		t.Fatal("Cancel(unknown) = true, want false")
	}
}

// TestCancelCompletedJobKeepsResult: canceling after completion neither
// flips the state nor clobbers the value.
func TestCancelCompletedJobKeepsResult(t *testing.T) {
	f := New(Config{Workers: 1})
	defer f.Close(context.Background())

	j, err := f.Submit(context.Background(), Task{
		Label: "done",
		Run:   func(context.Context) (any, error) { return 42, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.Cancel(j.ID()) {
		t.Fatal("Cancel(done) = true, want false")
	}
	if v, err := j.Result(); err != nil || v != 42 {
		t.Fatalf("result = %v, %v after cancel attempt", v, err)
	}
}
