// Package lru is a small mutex-guarded LRU cache used to bound the farm's
// result cache and core's run memoization. Like flight, it is dependency-
// free so any layer can use it.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded least-recently-used cache. A nil *Cache is valid and
// caches nothing, so callers can disable caching by passing nil.
type Cache[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *entry[V]
	items map[string]*list.Element
	hits  uint64
	miss  uint64
	evict uint64
}

type entry[V any] struct {
	key string
	val V
}

// New builds a cache holding up to capacity entries; capacity <= 0 returns
// nil (a valid, inert cache).
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	return &Cache[V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (v V, ok bool) {
	if c == nil {
		return v, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.miss++
		return v, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Add inserts or refreshes key, evicting the least recently used entry
// when over capacity.
func (c *Cache[V]) Add(key string, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[V]{key: key, val: v})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*entry[V]).key)
		c.evict++
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap returns the capacity (0 for a nil cache).
func (c *Cache[V]) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Clear drops every entry, keeping capacity and counters.
func (c *Cache[V]) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element, c.cap)
}

// Stats returns cumulative hit/miss/eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss, c.evict
}
