package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestAddGetEvict(t *testing.T) {
	c := New[int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = (%d, %v), want (1, true)", v, ok)
	}
	c.Add("c", 3) // evicts "b": "a" was refreshed by the Get above
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; want LRU to evict it")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted; want it retained (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestAddRefreshesExisting(t *testing.T) {
	c := New[string](2)
	c.Add("k", "v1")
	c.Add("k", "v2")
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (same key)", c.Len())
	}
	if v, _ := c.Get("k"); v != "v2" {
		t.Fatalf("Get = %q, want v2", v)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache[int]
	c.Add("k", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache returned a value")
	}
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatal("nil cache has nonzero size")
	}
	c.Clear() // must not panic
	if New[int](0) != nil || New[int](-1) != nil {
		t.Fatal("New with non-positive capacity should return nil")
	}
}

func TestClear(t *testing.T) {
	c := New[int](4)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Clear")
	}
	c.Add("c", 3)
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatal("cache unusable after Clear")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Add(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds capacity 16", c.Len())
	}
}
