package farm_test

import (
	"context"
	"runtime"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/store"
)

// benchmarkFarmSweep times one full fig10 design sweep over core.MiniSet
// (12 simulations) at the given farm parallelism. The run cache is cleared
// every iteration so each one really simulates; the serial/parallel pair
// captures the farm's wall-clock win in the perf trajectory.
func benchmarkFarmSweep(b *testing.B, workers int) {
	wls := core.MiniSet()
	core.SetSweepParallelism(workers)
	b.Cleanup(func() { core.SetSweepParallelism(0) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ClearRunCache()
		if _, err := repro.Registry().Run(context.Background(), "fig10", wls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFarmSweepSerial(b *testing.B) { benchmarkFarmSweep(b, 1) }

func BenchmarkFarmSweepParallel(b *testing.B) {
	benchmarkFarmSweep(b, runtime.GOMAXPROCS(0))
}

// BenchmarkFarmSweepColdStore measures the durable store's write-through
// overhead: every iteration simulates the full sweep into a fresh store
// directory. Compare against BenchmarkFarmSweepSerial for the persistence
// tax and BenchmarkFarmSweepWarmStore for the payoff.
func BenchmarkFarmSweepColdStore(b *testing.B) {
	wls := core.MiniSet()
	core.SetSweepParallelism(1)
	b.Cleanup(func() {
		core.SetSweepParallelism(0)
		core.SetResultStore(nil)
		core.ClearRunCache()
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(store.Config{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		core.SetResultStore(st)
		core.ClearRunCache()
		b.StartTimer()
		if _, err := repro.Registry().Run(context.Background(), "fig10", wls); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarmSweepWarmStore measures a fully persisted rerun: the store
// is populated once, then every iteration wipes the memory cache (a
// simulated restart) and sweeps again, so all results load from disk and
// no simulation runs.
func BenchmarkFarmSweepWarmStore(b *testing.B) {
	wls := core.MiniSet()
	core.SetSweepParallelism(1)
	st, err := store.Open(store.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	core.SetResultStore(st)
	core.ClearRunCache()
	b.Cleanup(func() {
		core.SetSweepParallelism(0)
		core.SetResultStore(nil)
		core.ClearRunCache()
	})
	if _, err := repro.Registry().Run(context.Background(), "fig10", wls); err != nil {
		b.Fatal(err)
	}
	if st.Counters().Puts == 0 {
		b.Fatal("warm-up populated nothing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core.ClearRunCache()
		b.StartTimer()
		if _, err := repro.Registry().Run(context.Background(), "fig10", wls); err != nil {
			b.Fatal(err)
		}
	}
	if c := st.Counters(); c.Hits == 0 {
		b.Fatal("warm sweep never hit the store")
	}
}
