package farm_test

import (
	"runtime"
	"testing"

	"repro"
	"repro/internal/core"
)

// benchmarkFarmSweep times one full fig10 design sweep over core.MiniSet
// (12 simulations) at the given farm parallelism. The run cache is cleared
// every iteration so each one really simulates; the serial/parallel pair
// captures the farm's wall-clock win in the perf trajectory.
func benchmarkFarmSweep(b *testing.B, workers int) {
	wls := core.MiniSet()
	core.SetSweepParallelism(workers)
	b.Cleanup(func() { core.SetSweepParallelism(0) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ClearRunCache()
		if _, err := repro.RunExperiment("fig10", wls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFarmSweepSerial(b *testing.B) { benchmarkFarmSweep(b, 1) }

func BenchmarkFarmSweepParallel(b *testing.B) {
	benchmarkFarmSweep(b, runtime.GOMAXPROCS(0))
}
