// Package farm is the concurrent render-farm service layer: a bounded-queue
// job scheduler with a fixed worker pool, singleflight deduplication of
// identical in-flight work, an LRU-bounded result cache, per-job retry with
// exponential backoff, and graceful drain on shutdown.
//
// The farm is deliberately independent of the simulator: a Task carries an
// opaque Run closure plus a dedup Key, so internal/core can route its design
// and threshold sweeps through a farm (and cmd/pimfarm can serve arbitrary
// render jobs) without an import cycle. Job lifecycle transitions
// (queued → running → done) are recorded as obs spans when a tracer is
// attached, so farm behaviour shows up in the same Chrome trace export as
// the simulator's cycle timeline.
package farm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/farm/lru"
	"repro/internal/obs"
	"repro/internal/obs/telem"
)

// Defaults used when Config fields are zero.
const (
	// DefaultQueueDepth bounds the pending-job queue.
	DefaultQueueDepth = 256
	// DefaultCacheCap bounds the result cache (entries).
	DefaultCacheCap = 512
	// DefaultRetainDone bounds how many finished jobs the registry keeps
	// for listing; the oldest are pruned first.
	DefaultRetainDone = 1024
	// DefaultBackoff seeds the exponential retry backoff.
	DefaultBackoff = 10 * time.Millisecond
	// DefaultEventRetention is how long finished jobs keep their full SSE
	// replay rings before the janitor compacts them to the terminal event.
	DefaultEventRetention = 10 * time.Minute
)

// Errors returned by the farm.
var (
	// ErrClosed is returned by Submit after Close has begun.
	ErrClosed = errors.New("farm: closed")
	// ErrShutdown completes jobs that were still queued when a forced
	// shutdown canceled them.
	ErrShutdown = errors.New("farm: shut down before job ran")
)

// Tier is a secondary result cache consulted after the in-memory LRU
// misses — typically a durable on-disk store (internal/store via
// core.StoreTier), so completed jobs survive restarts. Implementations
// must be safe for concurrent use; Put is best-effort (a tier that drops
// writes only costs recomputation).
type Tier interface {
	// Get returns the cached value for key, if present and valid.
	Get(key string) (any, bool)
	// Put stores a computed value for key.
	Put(key string, v any)
}

// Task is one unit of work.
type Task struct {
	// Key identifies equal work: concurrent tasks with the same non-empty
	// Key collapse into one execution (singleflight) and completed values
	// are served from the LRU cache. An empty Key opts out of both.
	Key string
	// Label names the task in job listings and trace spans.
	Label string
	// Origin tags the task with where it came from (e.g. an HTTP request
	// ID). It is appended to trace span names and surfaced in job views,
	// tying a span or log line back to the request that caused it.
	Origin string
	// Tenant names who the work was admitted for; it is carried into job
	// views, SSE "state" events and trace span names. Empty when the
	// caller runs without admission control.
	Tenant string
	// Class is the admission priority-class label ("interactive",
	// "batch"); informational at this layer — ordering is enforced by the
	// admission controller in front of Submit, not by the farm queue.
	Class string
	// AdmitWait is how long the submission waited for admission before
	// Submit was called; surfaced on the job view as admit_wait_ms.
	AdmitWait time.Duration
	// Trace is the job's distributed-trace context in traceparent wire
	// form ("" when the submission was unsampled). Observational-only:
	// it never participates in Key, dedup, or caching.
	Trace string
	// Meta is an opaque caller payload surfaced on the Job (pimfarm stores
	// the parsed request here).
	Meta any
	// Run executes the work. The context is the job's own, derived from
	// the farm's root: it is canceled on forced shutdown and by
	// Farm.Cancel. Run must be safe to call concurrently with other
	// tasks' Run.
	Run func(ctx context.Context) (any, error)
}

// Config configures a Farm.
type Config struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds pending jobs; <= 0 selects DefaultQueueDepth.
	QueueDepth int
	// CacheCap bounds the result cache; < 0 disables caching, 0 selects
	// DefaultCacheCap.
	CacheCap int
	// Retries is how many times a failed Run is retried (0 = no retries).
	Retries int
	// Backoff is the first retry delay, doubling per attempt; <= 0 selects
	// DefaultBackoff.
	Backoff time.Duration
	// Retryable decides whether an error is transient; nil retries every
	// error (when Retries > 0).
	Retryable func(error) bool
	// RetainDone bounds how many finished jobs stay listable; <= 0 selects
	// DefaultRetainDone.
	RetainDone int
	// EventRetention is how long a finished job keeps its full SSE replay
	// ring; once a job has been terminal this long, the ring is compacted
	// to the terminal "state" event so long-running servers do not hold
	// every retained job's progress history. 0 selects
	// DefaultEventRetention; < 0 disables compaction.
	EventRetention time.Duration
	// Tier, when non-nil, is the second cache tier behind the in-memory
	// LRU (memory → tier → compute). It is consulted on a worker just
	// before a task would run — never on the Submit path — and computed
	// results are written through. Singleflight spans tiers: followers of
	// an in-flight key ride the leader whether its result came from the
	// tier or was computed.
	Tier Tier
	// Tracer, when non-nil, receives job lifecycle spans (wall-clock
	// microseconds since the farm started).
	Tracer *obs.Tracer
	// Metrics is the live-telemetry registry the farm publishes pimfarm_*
	// series into; nil selects telem.Default().
	Metrics *telem.Registry
}

// farmMetrics holds the farm's live-telemetry instruments. They mirror
// the atomic counters behind Counters — the atomics stay authoritative
// for /varz; these exist so /metrics exposes the same activity in
// Prometheus form without a registry scrape touching farm internals.
type farmMetrics struct {
	submitted                              *telem.Counter
	done, failed, canceled                 *telem.Counter
	deduped, cacheHits, tierHits, tierPuts *telem.Counter
	retries                                *telem.Counter
	queued, running                        *telem.Gauge
	queueWait, runDur                      *telem.Histogram
}

func newFarmMetrics(r *telem.Registry) farmMetrics {
	completed := func(state string) *telem.Counter {
		return r.Counter("pimfarm_jobs_completed_total",
			"Jobs reaching a terminal state, by outcome.", telem.Labels{"state": state})
	}
	return farmMetrics{
		submitted: r.Counter("pimfarm_jobs_submitted_total",
			"Jobs accepted by Submit (including cache hits and dedup followers).", nil),
		done:     completed("done"),
		failed:   completed("failed"),
		canceled: completed("canceled"),
		deduped: r.Counter("pimfarm_jobs_deduped_total",
			"Submissions that attached to an in-flight job with the same key.", nil),
		cacheHits: r.Counter("pimfarm_cache_hits_total",
			"Submissions served from the in-memory result cache.", nil),
		tierHits: r.Counter("pimfarm_tier_hits_total",
			"Jobs served from the durable store tier.", nil),
		tierPuts: r.Counter("pimfarm_tier_puts_total",
			"Computed results written through to the durable store tier.", nil),
		retries: r.Counter("pimfarm_job_retries_total",
			"Task retry attempts after transient failures.", nil),
		queued: r.Gauge("pimfarm_jobs_queued",
			"Jobs waiting in the farm queue.", nil),
		running: r.Gauge("pimfarm_jobs_running",
			"Jobs currently executing on workers.", nil),
		queueWait: r.Histogram("pimfarm_job_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", nil, nil),
		runDur: r.Histogram("pimfarm_job_run_seconds",
			"Task execution time (including retries) for computed jobs.", nil, nil),
	}
}

// Counters is a point-in-time snapshot of farm activity (the /varz body).
type Counters struct {
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueLen      int     `json:"queue_len"`
	Submitted     uint64  `json:"submitted"`
	Running       int64   `json:"running"`
	Done          uint64  `json:"done"`
	Failed        uint64  `json:"failed"`
	Canceled      uint64  `json:"canceled"`
	Deduped       uint64  `json:"deduped"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheSize     int     `json:"cache_size"`
	TierHits      uint64  `json:"tier_hits"`
	TierPuts      uint64  `json:"tier_puts"`
	Retries       uint64  `json:"retries"`
	BusySeconds   float64 `json:"busy_seconds"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Utilization is busy worker-seconds over available worker-seconds
	// since the farm started, in [0,1].
	Utilization float64 `json:"utilization"`
}

// Farm schedules Tasks over a worker pool.
type Farm struct {
	cfg   Config
	met   farmMetrics
	queue chan *Job
	t0    time.Time

	root   context.Context
	cancel context.CancelFunc

	cache *lru.Cache[any]

	mu       sync.Mutex
	closed   bool
	inflight map[string]*leader // key → leader among queued/running jobs
	jobs     map[string]*Job    // id → job
	order    []*Job             // submission order, pruned to RetainDone
	nextID   uint64

	jobsWG    sync.WaitGroup // accepted jobs not yet terminal
	workersWG sync.WaitGroup

	submitted atomic.Uint64
	running   atomic.Int64
	done      atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	deduped   atomic.Uint64
	cacheHits atomic.Uint64
	tierHits  atomic.Uint64
	tierPuts  atomic.Uint64
	retries   atomic.Uint64
	busyNs    atomic.Int64
}

// leader tracks one in-flight execution and the duplicate submissions
// riding on it.
type leader struct {
	job       *Job
	followers []*Job
}

// New builds a farm and starts its workers.
func New(cfg Config) *Farm {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	switch {
	case cfg.CacheCap == 0:
		cfg.CacheCap = DefaultCacheCap
	case cfg.CacheCap < 0:
		cfg.CacheCap = 0 // lru.New returns a nil (inert) cache
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.RetainDone <= 0 {
		cfg.RetainDone = DefaultRetainDone
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telem.Default()
	}
	root, cancel := context.WithCancel(context.Background())
	f := &Farm{
		cfg:      cfg,
		met:      newFarmMetrics(reg),
		queue:    make(chan *Job, cfg.QueueDepth),
		t0:       time.Now(),
		root:     root,
		cancel:   cancel,
		cache:    lru.New[any](cfg.CacheCap),
		inflight: make(map[string]*leader),
		jobs:     make(map[string]*Job),
	}
	f.workersWG.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go f.worker(w)
	}
	if cfg.EventRetention >= 0 {
		if cfg.EventRetention == 0 {
			f.cfg.EventRetention = DefaultEventRetention
		}
		go f.janitor()
	}
	return f
}

// janitor periodically compacts the SSE replay rings of jobs that have
// been terminal longer than EventRetention, bounding what a long-running
// server retains per finished job. It exits with the root context.
func (f *Farm) janitor() {
	every := f.cfg.EventRetention / 4
	if every < time.Second {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-f.root.Done():
			return
		case now := <-t.C:
			cut := now.Add(-f.cfg.EventRetention)
			for _, j := range f.Jobs() {
				j.mu.Lock()
				stale := j.state.Terminal() && !j.finished.IsZero() && j.finished.Before(cut)
				j.mu.Unlock()
				if stale {
					j.compactEvents()
				}
			}
		}
	}
}

// Workers returns the pool size.
func (f *Farm) Workers() int { return f.cfg.Workers }

// Submit enqueues a task and returns its Job immediately. ctx bounds only
// the wait for queue space (execution uses the farm's root context).
// Duplicate keys of in-flight jobs attach to the leader without consuming
// a queue slot; cached keys complete immediately.
func (f *Farm) Submit(ctx context.Context, t Task) (*Job, error) {
	if t.Run == nil {
		return nil, errors.New("farm: task has no Run")
	}
	now := time.Now()

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	j := &Job{
		id:        fmt.Sprintf("job-%06d", f.nextID+1),
		label:     t.Label,
		key:       t.Key,
		origin:    t.Origin,
		tenant:    t.Tenant,
		class:     t.Class,
		admitWait: t.AdmitWait,
		trace:     t.Trace,
		meta:      t.Meta,
		state:     Queued,
		enqueued:  now,
		done:      make(chan struct{}),
	}
	// The job rides in its own context so Run closures can reach it
	// (JobFromContext) to publish progress events before Submit returns.
	j.ctx, j.cancel = context.WithCancel(context.WithValue(f.root, jobCtxKey{}, j))
	f.nextID++
	f.jobsWG.Add(1)
	f.register(j)
	f.submitted.Add(1)
	f.met.submitted.Inc()

	// Cache hit: complete without touching the queue.
	if t.Key != "" {
		if v, ok := f.cache.Get(t.Key); ok {
			f.mu.Unlock()
			j.mu.Lock()
			j.cacheHit = true
			j.mu.Unlock()
			f.cacheHits.Add(1)
			f.met.cacheHits.Inc()
			j.publishState()
			f.cfg.Tracer.Instant("farm/cache", j.spanName(), f.us(time.Now()))
			f.finish(j, Done, v, nil)
			return j, nil
		}
		// Singleflight: ride the in-flight leader.
		if ld, ok := f.inflight[t.Key]; ok {
			ld.followers = append(ld.followers, j)
			f.mu.Unlock()
			j.mu.Lock()
			j.deduped = true
			j.mu.Unlock()
			f.deduped.Add(1)
			f.met.deduped.Inc()
			j.publishState()
			return j, nil
		}
		f.inflight[t.Key] = &leader{job: j}
	}
	j.run = t.Run
	f.mu.Unlock()
	j.publishState()

	select {
	case f.queue <- j:
		f.met.queued.Set(float64(len(f.queue)))
		return j, nil
	case <-ctx.Done():
		f.finish(j, Canceled, nil, ctx.Err())
		return nil, ctx.Err()
	case <-f.root.Done():
		f.finish(j, Canceled, nil, ErrShutdown)
		return nil, ErrShutdown
	}
}

// jobCtxKey keys the *Job carried by each job's execution context.
type jobCtxKey struct{}

// JobFromContext returns the job whose Run is executing under ctx, if
// any. Task closures use it to publish progress events onto their own
// job without needing the *Job handle (which Submit has not returned yet
// when a worker may already be running the task).
func JobFromContext(ctx context.Context) (*Job, bool) {
	j, ok := ctx.Value(jobCtxKey{}).(*Job)
	return j, ok
}

// Do submits a task and waits for its result.
func (f *Farm) Do(ctx context.Context, t Task) (any, error) {
	j, err := f.Submit(ctx, t)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// Cancel requests cancellation of a job by id. A still-queued job
// completes Canceled immediately (a worker that later dequeues it skips
// it); a running job has its context canceled and completes Canceled when
// its Run returns. Cancel reports whether the request took effect — false
// for unknown ids and jobs already in a terminal state.
func (f *Farm) Cancel(id string) bool {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.canceled = true
	queued := j.state == Queued
	j.mu.Unlock()
	j.cancel()
	if queued {
		f.finish(j, Canceled, nil, context.Canceled)
	}
	return true
}

// Job returns a submitted job by id.
func (f *Farm) Job(id string) (*Job, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	return j, ok
}

// Jobs returns the retained jobs in submission order.
func (f *Farm) Jobs() []*Job {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Job, len(f.order))
	copy(out, f.order)
	return out
}

// Counters snapshots farm activity.
func (f *Farm) Counters() Counters {
	up := time.Since(f.t0).Seconds()
	busy := time.Duration(f.busyNs.Load()).Seconds()
	util := 0.0
	if avail := up * float64(f.cfg.Workers); avail > 0 {
		util = busy / avail
	}
	return Counters{
		Workers:       f.cfg.Workers,
		QueueDepth:    f.cfg.QueueDepth,
		QueueLen:      len(f.queue),
		Submitted:     f.submitted.Load(),
		Running:       f.running.Load(),
		Done:          f.done.Load(),
		Failed:        f.failed.Load(),
		Canceled:      f.canceled.Load(),
		Deduped:       f.deduped.Load(),
		CacheHits:     f.cacheHits.Load(),
		CacheSize:     f.cache.Len(),
		TierHits:      f.tierHits.Load(),
		TierPuts:      f.tierPuts.Load(),
		Retries:       f.retries.Load(),
		BusySeconds:   busy,
		UptimeSeconds: up,
		Utilization:   util,
	}
}

// BusyTime returns cumulative worker-busy time (the serial-equivalent
// wall clock of all completed work; paperbench derives its parallel
// speedup from this).
func (f *Farm) BusyTime() time.Duration { return time.Duration(f.busyNs.Load()) }

// Close drains the farm: no new submissions are accepted, queued jobs run
// to completion, then workers exit. If ctx expires first the shutdown is
// forced — the root context is canceled and still-queued jobs complete as
// Canceled with ErrShutdown. Close returns ctx.Err() on a forced shutdown.
func (f *Farm) Close(ctx context.Context) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		f.jobsWG.Wait()
		close(drained)
	}()

	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		f.cancel()
		f.drainCanceled()
		<-drained
	}
	f.cancel()
	f.workersWG.Wait()
	return err
}

// register indexes a job and prunes the oldest finished jobs beyond the
// retention bound. Caller holds f.mu.
func (f *Farm) register(j *Job) {
	f.jobs[j.id] = j
	f.order = append(f.order, j)
	if len(f.order) <= f.cfg.RetainDone {
		return
	}
	kept := f.order[:0]
	excess := len(f.order) - f.cfg.RetainDone
	for _, old := range f.order {
		if excess > 0 && old.State().Terminal() {
			delete(f.jobs, old.id)
			excess--
			continue
		}
		kept = append(kept, old)
	}
	f.order = kept
}

// worker is one pool goroutine: pull, execute, repeat until the root
// context is canceled and (on graceful drain) the queue is empty.
func (f *Farm) worker(id int) {
	defer f.workersWG.Done()
	track := fmt.Sprintf("farm/worker-%02d", id)
	for {
		select {
		case j := <-f.queue:
			f.execute(track, j)
		case <-f.root.Done():
			// Forced shutdown may leave queued jobs; cancel them.
			f.drainCanceled()
			return
		}
	}
}

// execute runs one job with retry/backoff and completes it (and any
// singleflight followers).
func (f *Farm) execute(track string, j *Job) {
	start := time.Now()
	f.met.queued.Set(float64(len(f.queue)))
	j.mu.Lock()
	if j.state.Terminal() { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = start
	j.mu.Unlock()
	f.met.queueWait.Observe(start.Sub(j.enqueued).Seconds())
	j.publishState()

	// Second-tier lookup (memory → tier → compute): a persisted result
	// completes the job — and its singleflight followers — without
	// running the task, and refills the memory LRU.
	if j.key != "" && f.cfg.Tier != nil {
		if v, ok := f.cfg.Tier.Get(j.key); ok {
			f.tierHits.Add(1)
			f.met.tierHits.Inc()
			j.mu.Lock()
			j.tierHit = true
			j.mu.Unlock()
			f.cache.Add(j.key, v)
			f.cfg.Tracer.Instant("farm/store", j.spanName(), f.us(time.Now()))
			f.finish(j, Done, v, nil)
			return
		}
	}

	f.running.Add(1)
	f.met.running.Inc()
	v, err := f.runWithRetry(j)
	f.running.Add(-1)
	f.met.running.Dec()

	end := time.Now()
	f.busyNs.Add(int64(end.Sub(start)))
	f.met.runDur.Observe(end.Sub(start).Seconds())

	if f.cfg.Tracer.On() {
		f.cfg.Tracer.Span("farm/queue", j.spanName(), f.us(j.enqueued), f.us(start))
		f.cfg.Tracer.SpanArg(track, j.spanName(), f.us(start), f.us(end),
			"attempts", int64(f.attempts(j)))
	}

	if err != nil {
		// Only an explicit Farm.Cancel makes a run's failure a
		// cancellation; a forced shutdown mid-run still records Failed.
		if j.isCanceled() {
			f.finish(j, Canceled, nil, err)
			return
		}
		f.finish(j, Failed, nil, err)
		return
	}
	if j.key != "" {
		f.cache.Add(j.key, v)
		if f.cfg.Tier != nil {
			f.cfg.Tier.Put(j.key, v)
			f.tierPuts.Add(1)
			f.met.tierPuts.Inc()
		}
	}
	f.finish(j, Done, v, nil)
}

// runWithRetry executes the task, retrying transient failures with
// exponential backoff while both the farm and the job's own context are
// alive — a canceled job is never retried.
func (f *Farm) runWithRetry(j *Job) (any, error) {
	backoff := f.cfg.Backoff
	for attempt := 0; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt + 1
		j.mu.Unlock()
		v, err := j.run(j.ctx)
		if err == nil || attempt >= f.cfg.Retries {
			return v, err
		}
		if j.ctx.Err() != nil {
			return v, err
		}
		if f.cfg.Retryable != nil && !f.cfg.Retryable(err) {
			return v, err
		}
		f.retries.Add(1)
		f.met.retries.Inc()
		select {
		case <-time.After(backoff):
		case <-j.ctx.Done():
			if f.root.Err() != nil {
				return nil, fmt.Errorf("%w (after %d attempts: %v)", ErrShutdown, attempt+1, err)
			}
			return nil, fmt.Errorf("farm: job canceled (after %d attempts: %v)", attempt+1, err)
		}
		backoff *= 2
	}
}

// finish completes a job and its singleflight followers, updating counters
// and the inflight table exactly once per job.
func (f *Farm) finish(j *Job, s State, v any, err error) {
	now := time.Now()
	var followers []*Job
	if j.key != "" {
		f.mu.Lock()
		if ld, ok := f.inflight[j.key]; ok && ld.job == j {
			followers = ld.followers
			delete(f.inflight, j.key)
		}
		f.mu.Unlock()
	}
	f.completeOne(j, s, v, err, now)
	for _, fo := range followers {
		f.completeOne(fo, s, v, err, now)
	}
}

func (f *Farm) completeOne(j *Job, s State, v any, err error, now time.Time) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.value = v
	j.err = err
	j.finished = now
	j.mu.Unlock()
	// Publish the terminal state, then close every event subscriber: an
	// SSE consumer always sees the terminal "state" event before EOF.
	j.publishState()
	j.closeEvents()
	close(j.done)
	if j.cancel != nil {
		j.cancel() // release the job context's resources
	}

	switch s {
	case Done:
		f.done.Add(1)
		f.met.done.Inc()
	case Failed:
		f.failed.Add(1)
		f.met.failed.Inc()
	case Canceled:
		f.canceled.Add(1)
		f.met.canceled.Inc()
	}
	f.jobsWG.Done()
}

// drainCanceled empties the queue, completing leftover jobs as Canceled.
func (f *Farm) drainCanceled() {
	for {
		select {
		case j := <-f.queue:
			f.finish(j, Canceled, nil, ErrShutdown)
		default:
			return
		}
	}
}

func (f *Farm) attempts(j *Job) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// us converts a wall-clock instant to microseconds since farm start (the
// trace time base; one trace "cycle" = 1 µs of wall clock).
func (f *Farm) us(t time.Time) int64 { return t.Sub(f.t0).Microseconds() }
