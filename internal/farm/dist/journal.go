package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// JournalSchema identifies the journal record layout. A record carrying
// any other value is skipped on replay (a journal written by a future
// release never crashes an older coordinator).
const JournalSchema = "pim-render/journal/v1"

// journalFile is the append-only log's name inside the journal directory.
const journalFile = "journal.jsonl"

// compactMinTerminal is how many settled records must accumulate before a
// compaction rewrite is worth the IO.
const compactMinTerminal = 256

// Journal ops.
const (
	// OpEnqueue records a job entering the queue, with its full spec.
	OpEnqueue = "enqueue"
	// OpDone / OpFailed / OpCanceled settle a previously enqueued job.
	OpDone     = "done"
	OpFailed   = "failed"
	OpCanceled = "canceled"
)

// Record is one journal line. Enqueue records carry the job identity and
// spec; terminal records carry only the id they settle.
type Record struct {
	Schema string          `json:"schema"`
	Seq    uint64          `json:"seq"`
	Op     string          `json:"op"`
	ID     string          `json:"id"`
	Time   time.Time       `json:"time"`
	Key    string          `json:"key,omitempty"`
	Label  string          `json:"label,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
}

// Journal is the coordinator's durable job log: an append-only JSONL file
// with one fsynced record per state change, following the same
// crash-safety discipline as internal/store. An enqueue record without a
// matching terminal record is a job the process died owing; Pending
// returns those for replay after a restart. When settled records pile up
// the file is compacted — the surviving enqueue records are rewritten
// through a temp file, fsync and atomic rename, so a crash mid-compaction
// leaves either the old or the new journal, never a torn one. A torn
// final line (the crash interrupting an append) is truncated away on
// open. Safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	seq      uint64
	pending  map[string]Record // id → enqueue record awaiting a terminal
	settled  int               // terminal records currently in the file
	appends  uint64
	compacts uint64
}

// OpenJournal opens (creating if needed) the journal in dir and replays
// the existing log into memory: Pending then lists the jobs a previous
// process never settled.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("dist: journal: no directory configured")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: journal: %w", err)
	}
	j := &Journal{dir: dir, pending: make(map[string]Record)}
	if err := j.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(j.path(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: journal: %w", err)
	}
	j.f = f
	return j, nil
}

func (j *Journal) path() string { return filepath.Join(j.dir, journalFile) }

// load reads the log, tolerating (and truncating away) a torn final line
// from a crashed append so later appends start on a clean boundary.
func (j *Journal) load() error {
	raw, err := os.ReadFile(j.path())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dist: journal: %w", err)
	}
	good := 0 // byte offset past the last intact record
	for good < len(raw) {
		nl := bytes.IndexByte(raw[good:], '\n')
		if nl < 0 {
			break // no newline: a torn append from a crash
		}
		var rec Record
		if err := json.Unmarshal(raw[good:good+nl], &rec); err != nil {
			break // corrupt line: everything from here is discarded
		}
		good += nl + 1
		j.apply(rec)
	}
	if good < len(raw) {
		if err := os.Truncate(j.path(), int64(good)); err != nil {
			return fmt.Errorf("dist: journal: truncate torn tail: %w", err)
		}
	}
	return nil
}

// apply folds one record into the in-memory pending set.
func (j *Journal) apply(rec Record) {
	if rec.Schema != JournalSchema {
		return // future or foreign record: ignore, never fail
	}
	if rec.Seq > j.seq {
		j.seq = rec.Seq
	}
	switch rec.Op {
	case OpEnqueue:
		j.pending[rec.ID] = rec
	case OpDone, OpFailed, OpCanceled:
		if _, ok := j.pending[rec.ID]; ok {
			delete(j.pending, rec.ID)
			j.settled++
		}
	}
}

// Enqueue appends (and fsyncs) an enqueue record and returns its journal
// id. The id is stable across restarts: a replayed job settles the same
// record its original submission opened.
func (j *Journal) Enqueue(key, label string, spec json.RawMessage) (string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	rec := Record{
		Schema: JournalSchema,
		Seq:    j.seq,
		Op:     OpEnqueue,
		ID:     fmt.Sprintf("j-%08d", j.seq),
		Time:   time.Now().UTC(),
		Key:    key,
		Label:  label,
		Spec:   spec,
	}
	if err := j.appendLocked(rec); err != nil {
		return "", err
	}
	j.pending[rec.ID] = rec
	return rec.ID, nil
}

// Terminal appends (and fsyncs) a terminal record settling id. Settling
// an id the journal does not hold pending is a no-op (the job was already
// settled, or predates the journal). When enough settled records
// accumulate the file is compacted in place.
func (j *Journal) Terminal(id, op string) error {
	switch op {
	case OpDone, OpFailed, OpCanceled:
	default:
		return fmt.Errorf("dist: journal: invalid terminal op %q", op)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.pending[id]; !ok {
		return nil
	}
	j.seq++
	rec := Record{Schema: JournalSchema, Seq: j.seq, Op: op, ID: id, Time: time.Now().UTC()}
	if err := j.appendLocked(rec); err != nil {
		return err
	}
	delete(j.pending, id)
	j.settled++
	if j.settled >= compactMinTerminal && j.settled >= len(j.pending) {
		return j.compactLocked()
	}
	return nil
}

// appendLocked writes one record line and fsyncs. Caller holds j.mu.
func (j *Journal) appendLocked(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dist: journal: marshal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("dist: journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dist: journal: sync: %w", err)
	}
	j.appends++
	return nil
}

// compactLocked rewrites the journal with only the pending enqueue
// records (temp file, fsync, atomic rename, directory fsync) and reopens
// the append handle. Caller holds j.mu.
func (j *Journal) compactLocked() error {
	recs := j.pendingLocked()
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("dist: journal: compact marshal: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(j.dir, "tmp-journal-")
	if err != nil {
		return fmt.Errorf("dist: journal: compact: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("dist: journal: compact: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("dist: journal: compact: %w", err)
	}
	if err := os.Rename(tmpName, j.path()); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("dist: journal: compact: %w", err)
	}
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	f, err := os.OpenFile(j.path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dist: journal: reopen after compact: %w", err)
	}
	j.f.Close()
	j.f = f
	j.settled = 0
	j.compacts++
	return nil
}

// Pending returns the enqueue records with no terminal record, in
// original submission order — the jobs a restarted coordinator must
// replay.
func (j *Journal) Pending() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pendingLocked()
}

func (j *Journal) pendingLocked() []Record {
	out := make([]Record, 0, len(j.pending))
	for _, rec := range j.pending {
		out = append(out, rec)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Len returns the number of pending (unsettled) records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close releases the journal's file handle. Records already appended stay
// durable; a journal is safe to reopen from another process afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
