package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/dtrace"
	"repro/internal/obs/telem"
)

// Defaults used when Config fields are zero.
const (
	// DefaultTTL is the lease duration workers must renew within.
	DefaultTTL = 15 * time.Second
	// DefaultMaxRequeues bounds how many expired leases one dispatch
	// survives before it resolves as failed (the farm's retry budget then
	// decides whether to dispatch it again — lease expiries themselves
	// never consume that budget).
	DefaultMaxRequeues = 8
)

// Errors returned by the coordinator.
var (
	// ErrGone rejects operations on a lease the coordinator no longer
	// holds: it expired and was requeued, its job completed on another
	// worker, or the job was abandoned. Workers drop the work on ErrGone.
	ErrGone = errors.New("dist: lease gone")
	// ErrClosed rejects enqueues after Close.
	ErrClosed = errors.New("dist: coordinator closed")
)

// Config configures a Coordinator.
type Config struct {
	// TTL is the lease duration; <= 0 selects DefaultTTL.
	TTL time.Duration
	// SweepEvery is the expiry-scan interval; <= 0 selects TTL/4.
	SweepEvery time.Duration
	// LivenessWindow is how recently a worker must have spoken to count
	// as live; <= 0 selects 3*TTL.
	LivenessWindow time.Duration
	// MaxRequeues bounds expired-lease requeues per dispatch; <= 0
	// selects DefaultMaxRequeues.
	MaxRequeues int
	// Metrics is the live-telemetry registry the coordinator publishes
	// pim_farm_lease_* and pim_farm_workers_live into; nil selects
	// telem.Default().
	Metrics *telem.Registry
}

// coordMetrics holds the coordinator's live-telemetry instruments; the
// atomics behind Stats stay authoritative for /varz.
type coordMetrics struct {
	grants, renews, expires, requeues *telem.Counter
	workersLive                       *telem.Gauge
	leaseAge                          *telem.Histogram
}

func newCoordMetrics(r *telem.Registry) coordMetrics {
	op := func(op string) *telem.Counter {
		return r.Counter("pim_farm_lease_ops_total",
			"Distributed lease-protocol operations by type.", telem.Labels{"op": op})
	}
	return coordMetrics{
		grants:   op("grant"),
		renews:   op("renew"),
		expires:  op("expire"),
		requeues: op("requeue"),
		workersLive: r.Gauge("pim_farm_workers_live",
			"Workers that leased, renewed or completed within the liveness window.", nil),
		leaseAge: r.Histogram("pim_farm_lease_age_seconds",
			"Lease lifetime from grant to completion or expiry.", nil, nil),
	}
}

// Class-queue indexes: interactive work is always leased first.
const (
	classInteractive = iota
	classBatch
	numClassQueues
)

// classIndex maps a job's class label to its lease queue.
func classIndex(class string) int {
	if class == "interactive" {
		return classInteractive
	}
	return classBatch
}

// pending is one job waiting in the queue or out on a lease.
type pending struct {
	id       string
	job      Job
	ch       chan Outcome // buffered 1; resolved exactly once
	enqueued time.Time
	requeues int
	lease    *lease // nil while queued
	gone     bool   // abandoned by the dispatcher (job canceled)
}

// lease is one grant out to a worker.
type lease struct {
	id      string
	p       *pending
	worker  string
	granted time.Time
	expires time.Time
	renews  int
}

// workerInfo is one worker's liveness record.
type workerInfo struct {
	id        string
	firstSeen time.Time
	lastSeen  time.Time
	completed uint64
	failed    uint64
	expired   uint64
}

// Coordinator owns the distributed job queue and the lease table. Jobs
// enter through Enqueue (called from farm Task Run closures), leave
// through worker Lease/Complete calls, and come back on lease expiry.
// Safe for concurrent use.
type Coordinator struct {
	cfg Config
	met coordMetrics

	mu     sync.Mutex
	closed bool
	// queues holds the two class-ordered FIFO lease queues (gone entries
	// skipped lazily): index 0 is interactive, drained completely before
	// index 1 (batch) is touched, so interactive jobs preempt queued
	// batch work at the lease layer exactly as they do at admission.
	queues    [numClassQueues][]*pending
	byID      map[string]*pending // unresolved jobs (queued or leased)
	leases    map[string]*lease
	workers   map[string]*workerInfo
	nextJob   uint64
	nextLease uint64

	grants   atomic.Uint64
	renews   atomic.Uint64
	expires  atomic.Uint64
	requeues atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	swept    chan struct{} // closed when the sweeper exits
}

// NewCoordinator builds a coordinator and starts its expiry sweeper.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.TTL / 4
	}
	if cfg.LivenessWindow <= 0 {
		cfg.LivenessWindow = 3 * cfg.TTL
	}
	if cfg.MaxRequeues <= 0 {
		cfg.MaxRequeues = DefaultMaxRequeues
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telem.Default()
	}
	c := &Coordinator{
		cfg:     cfg,
		met:     newCoordMetrics(reg),
		byID:    make(map[string]*pending),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerInfo),
		stop:    make(chan struct{}),
		swept:   make(chan struct{}),
	}
	go c.sweeper()
	return c
}

// TTL returns the configured lease duration.
func (c *Coordinator) TTL() time.Duration { return c.cfg.TTL }

// Enqueue queues a job for the next free worker and returns its dispatch
// id plus the channel its Outcome arrives on (buffered; never blocks the
// resolver). The caller that stops waiting must Abandon the id so the
// coordinator does not dispatch dead work.
func (c *Coordinator) Enqueue(job Job) (string, <-chan Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", nil, ErrClosed
	}
	c.nextJob++
	p := &pending{
		id:       fmt.Sprintf("dj-%08d", c.nextJob),
		job:      job,
		ch:       make(chan Outcome, 1),
		enqueued: time.Now(),
	}
	c.byID[p.id] = p
	q := classIndex(job.Class)
	c.queues[q] = append(c.queues[q], p)
	return p.id, p.ch, nil
}

// Abandon withdraws a dispatched job (its farm-side context was
// canceled): a queued job is dropped; a leased one has its lease
// invalidated, so the worker's next renew answers ErrGone and it stops
// wasting cycles.
func (c *Coordinator) Abandon(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.byID[id]
	if !ok {
		return
	}
	p.gone = true
	delete(c.byID, id)
	if p.lease != nil {
		delete(c.leases, p.lease.id)
		p.lease = nil
	}
}

// Lease grants the oldest queued job to workerID, or reports no work.
// The interactive queue is drained completely before any batch job is
// granted.
func (c *Coordinator) Lease(workerID string) (*Grant, bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(workerID, now)
	var p *pending
scan:
	for q := 0; q < numClassQueues; q++ {
		for len(c.queues[q]) > 0 {
			head := c.queues[q][0]
			c.queues[q] = c.queues[q][1:]
			if head.gone || head.lease != nil {
				continue // abandoned, or a stale queue entry from a requeue
			}
			p = head
			break scan
		}
	}
	if p == nil {
		return nil, false
	}
	c.nextLease++
	l := &lease{
		id:      fmt.Sprintf("lease-%08d", c.nextLease),
		p:       p,
		worker:  workerID,
		granted: now,
		expires: now.Add(c.cfg.TTL),
	}
	p.lease = l
	c.leases[l.id] = l
	c.grants.Add(1)
	c.met.grants.Inc()
	return &Grant{
		Lease:     l.id,
		Job:       p.id,
		Key:       p.job.Key,
		Label:     p.job.Label,
		Class:     p.job.Class,
		Spec:      p.job.Spec,
		TTLMillis: c.cfg.TTL.Milliseconds(),
		Origin:    p.job.Origin,
		Trace:     p.job.Trace,
		// The grant stamp is t0 of the NTP-style clock-skew estimate the
		// trace assembly uses to put worker spans on this clock.
		GrantUnixUS: now.UnixMicro(),
	}, true
}

// Renew extends a held lease by one TTL (the heartbeat). ErrGone tells
// the worker the lease was lost — expired and requeued, completed
// elsewhere, or its job abandoned — and the work should be dropped.
func (c *Coordinator) Renew(leaseID, workerID string) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(workerID, now)
	l, ok := c.leases[leaseID]
	if !ok {
		return ErrGone
	}
	l.expires = now.Add(c.cfg.TTL)
	l.renews++
	c.renews.Add(1)
	c.met.renews.Inc()
	return nil
}

// Progress forwards one worker-reported progress document onto the
// leased job's OnProgress sink. Progress on a lost lease is ErrGone.
func (c *Coordinator) Progress(leaseID, workerID string, data json.RawMessage) error {
	now := time.Now()
	c.mu.Lock()
	c.touchWorkerLocked(workerID, now)
	l, ok := c.leases[leaseID]
	if !ok {
		c.mu.Unlock()
		return ErrGone
	}
	// Progress implicitly proves the worker is alive; count it as a renew
	// so a chatty worker needs no separate heartbeat traffic.
	l.expires = now.Add(c.cfg.TTL)
	sink := l.p.job.OnProgress
	c.mu.Unlock()
	if sink != nil {
		sink(data)
	}
	return nil
}

// Complete resolves a leased job with the worker's payload or error and
// releases the lease. report, when non-nil, is the worker's trace half;
// the outcome carries it alongside the lease's coordinator-clock grant
// and receipt stamps so the dispatcher can skew-correct worker spans.
// ErrGone means the result arrived too late (the lease expired and the
// job went elsewhere) and was discarded.
func (c *Coordinator) Complete(leaseID, workerID string, payload []byte, execErr string, report *dtrace.WorkerReport) error {
	now := time.Now()
	c.mu.Lock()
	w := c.touchWorkerLocked(workerID, now)
	l, ok := c.leases[leaseID]
	if !ok {
		c.mu.Unlock()
		return ErrGone
	}
	delete(c.leases, leaseID)
	p := l.p
	p.lease = nil
	delete(c.byID, p.id)
	if execErr == "" {
		w.completed++
	} else {
		w.failed++
	}
	requeues := p.requeues
	c.mu.Unlock()

	c.met.leaseAge.Observe(now.Sub(l.granted).Seconds())
	p.ch <- Outcome{Payload: payload, Err: execErr, Worker: workerID, Requeues: requeues,
		Trace: report, Granted: l.granted, Completed: now}
	return nil
}

// sweeper periodically expires overdue leases (requeueing their jobs)
// and refreshes the live-workers gauge.
func (c *Coordinator) sweeper() {
	defer close(c.swept)
	t := time.NewTicker(c.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.sweep(time.Now())
		}
	}
}

// sweep reclaims expired leases: the job goes back on the queue with its
// requeue count bumped (the farm-level retry budget is untouched — an
// expiry is the coordinator's fault, not the job's) unless it has burned
// through MaxRequeues, in which case it resolves as failed and the farm
// decides whether to dispatch it again.
func (c *Coordinator) sweep(now time.Time) {
	type failed struct {
		p      *pending
		worker string
	}
	var fails []failed
	c.mu.Lock()
	for id, l := range c.leases {
		if !now.After(l.expires) {
			continue
		}
		delete(c.leases, id)
		p := l.p
		p.lease = nil
		if w, ok := c.workers[l.worker]; ok {
			w.expired++
		}
		c.expires.Add(1)
		c.met.expires.Inc()
		c.met.leaseAge.Observe(now.Sub(l.granted).Seconds())
		if p.gone {
			continue
		}
		p.requeues++
		if p.requeues > c.cfg.MaxRequeues {
			delete(c.byID, p.id)
			fails = append(fails, failed{p: p, worker: l.worker})
			continue
		}
		q := classIndex(p.job.Class)
		c.queues[q] = append(c.queues[q], p)
		c.requeues.Add(1)
		c.met.requeues.Inc()
	}
	c.met.workersLive.Set(float64(c.liveWorkersLocked(now)))
	c.mu.Unlock()
	for _, f := range fails {
		f.p.ch <- Outcome{
			Err:      fmt.Sprintf("lease expired %d times (last worker %s)", f.p.requeues-1, f.worker),
			Worker:   f.worker,
			Requeues: f.p.requeues - 1,
		}
	}
}

// touchWorkerLocked records worker activity and refreshes the live-worker
// gauge (the sweeper refreshes it too, so it also decays while workers
// are silent). Caller holds c.mu.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerInfo {
	if id == "" {
		id = "anonymous"
	}
	w, ok := c.workers[id]
	if !ok {
		w = &workerInfo{id: id, firstSeen: now}
		c.workers[id] = w
	}
	w.lastSeen = now
	c.met.workersLive.Set(float64(c.liveWorkersLocked(now)))
	return w
}

// liveWorkersLocked counts workers seen within the liveness window.
// Caller holds c.mu.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	live := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.cfg.LivenessWindow {
			live++
		}
	}
	return live
}

// Workers returns every known worker's liveness view, sorted by id.
func (c *Coordinator) Workers() []WorkerView {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	held := make(map[string]int, len(c.workers))
	for _, l := range c.leases {
		held[l.worker]++
	}
	out := make([]WorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerView{
			ID:           w.id,
			Live:         now.Sub(w.lastSeen) <= c.cfg.LivenessWindow,
			FirstSeen:    w.firstSeen,
			LastSeen:     w.lastSeen,
			ActiveLeases: held[w.id],
			Completed:    w.completed,
			Failed:       w.failed,
			Expired:      w.expired,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Stats snapshots coordinator activity (the "workers" block in /varz).
func (c *Coordinator) Stats() Stats {
	now := time.Now()
	c.mu.Lock()
	queued := 0
	byClass := map[string]int{"interactive": 0, "batch": 0}
	for q := 0; q < numClassQueues; q++ {
		n := 0
		for _, p := range c.queues[q] {
			if !p.gone && p.lease == nil {
				n++
			}
		}
		queued += n
		if q == classInteractive {
			byClass["interactive"] = n
		} else {
			byClass["batch"] = n
		}
	}
	leased := len(c.leases)
	live := c.liveWorkersLocked(now)
	c.mu.Unlock()
	return Stats{
		Queued:        queued,
		QueuedByClass: byClass,
		Leased:        leased,
		WorkersLive:   live,
		LeaseOps: LeaseOps{
			Grants:   c.grants.Load(),
			Renews:   c.renews.Load(),
			Expires:  c.expires.Load(),
			Requeues: c.requeues.Load(),
		},
		Workers: c.Workers(),
	}
}

// Close stops the sweeper and resolves every unresolved job with a
// shutdown error so no dispatcher waits forever. Idempotent.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.swept
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	orphans := make([]*pending, 0, len(c.byID))
	for _, p := range c.byID {
		orphans = append(orphans, p)
	}
	c.byID = make(map[string]*pending)
	c.leases = make(map[string]*lease)
	for q := range c.queues {
		c.queues[q] = nil
	}
	c.mu.Unlock()
	for _, p := range orphans {
		p.ch <- Outcome{Err: "coordinator shut down"}
	}
}
